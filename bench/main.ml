(* Benchmark harness (see DESIGN.md §3, B1-B6).

   Two kinds of output:
   - Bechamel micro-benchmarks: cost of the CAL/linearizability checkers,
     agreement, exploration, and end-to-end verification (B1, B2, B3, B5,
     B6); estimates are printed as a table, one row per benchmark.
   - "Figure" tables (B4 and companions): simulated-time throughput sweeps
     that reproduce the shape of the elimination-stack motivation (HSY'04)
     and the exchanger/synchronous-queue success-rate curves.

   Run: dune exec bench/main.exe            (everything)
        dune exec bench/main.exe -- quick   (fewer samples)
        dune exec bench/main.exe -- faults  (only B10-B14, full fuel,
                                             regenerates BENCH_*.json)
        dune exec bench/main.exe -- smoke   (only B10-B14, low fuel — CI)
        dune exec bench/main.exe -- crash   (only B13, full fuel,
                                             regenerates BENCH_crash.json)
        dune exec bench/main.exe -- parallel (only B14, full fuel,
                                             regenerates BENCH_parallel.json)
        dune exec bench/main.exe -- sampling (only B15, full budgets,
                                             regenerates BENCH_sampling.json)
        dune exec bench/main.exe -- dpor    (only B18, full fuel,
                                             regenerates BENCH_dpor.json)
        dune exec bench/main.exe -- serve   (only B16, full budget,
                                             regenerates BENCH_serve.json)
        dune exec bench/main.exe -- serve-smoke (B16 at a reduced CI
                                             budget, same assertions)
        dune exec bench/main.exe -- serve-durable (B17, full budget,
                                             regenerates
                                             BENCH_serve_durable.json)
        dune exec bench/main.exe -- serve-durable-smoke (B17 at a
                                             reduced CI budget, same
                                             assertions)
        dune exec bench/main.exe -- fuzz    (fixed-seed sampled pass over
                                             every scenario; fails on any
                                             verdict mismatch) *)

open Bechamel
open Toolkit
open Cal
module S = Workloads.Scenarios

let mode =
  if Array.exists (fun a -> a = "faults") Sys.argv then `Faults
  else if Array.exists (fun a -> a = "smoke") Sys.argv then `Smoke
  else if Array.exists (fun a -> a = "crash") Sys.argv then `Crash
  else if Array.exists (fun a -> a = "parallel") Sys.argv then `Parallel
  else if Array.exists (fun a -> a = "sampling") Sys.argv then `Sampling
  else if Array.exists (fun a -> a = "dpor") Sys.argv then `Dpor
  else if Array.exists (fun a -> a = "serve-smoke") Sys.argv then `Serve_smoke
  else if Array.exists (fun a -> a = "serve-durable-smoke") Sys.argv then
    `Serve_durable_smoke
  else if Array.exists (fun a -> a = "serve-durable") Sys.argv then
    `Serve_durable
  else if Array.exists (fun a -> a = "serve") Sys.argv then `Serve
  else if Array.exists (fun a -> a = "fuzz") Sys.argv then `Fuzz
  else `Full

let quick = Array.exists (fun a -> a = "quick") Sys.argv || mode = `Smoke

(* ---------------------------------------------------------- fixtures -- *)

let e_oid = Ids.Oid.v "E"
let s_oid = Ids.Oid.v "S"
let ex_spec = Spec_exchanger.spec ()
let stack_spec = Spec_stack.spec ~oid:s_oid ~allow_spurious_failure:true ()

let exchanger_history ~elements seed =
  let g = Workloads.Gen.create ~seed in
  let tr = Workloads.Gen.exchanger_trace g ~oid:e_oid ~threads:4 ~elements in
  Workloads.Gen.history_of_trace g tr

let stack_history ~elements seed =
  let g = Workloads.Gen.create ~seed in
  let tr = Workloads.Gen.stack_trace g ~oid:s_oid ~threads:4 ~elements in
  Workloads.Gen.history_of_trace g tr

(* B1 — CAL checker cost vs history length. *)
let b1 =
  List.map
    (fun elements ->
      let h = exchanger_history ~elements 11L in
      Test.make
        ~name:(Fmt.str "cal-checker/exchanger-%d-elems" elements)
        (Staged.stage (fun () -> ignore (Cal_checker.check ~spec:ex_spec h))))
    [ 2; 4; 6; 8 ]

(* B2 — CAL vs classic linearizability on the same stack histories: for
   singleton-element specs the two decide the same question. *)
let b2 =
  List.concat_map
    (fun elements ->
      let h = stack_history ~elements 13L in
      [
        Test.make
          ~name:(Fmt.str "lin-vs-cal/lin-stack-%d" elements)
          (Staged.stage (fun () -> ignore (Lin_checker.check ~spec:stack_spec h)));
        Test.make
          ~name:(Fmt.str "lin-vs-cal/cal-stack-%d" elements)
          (Staged.stage (fun () -> ignore (Cal_checker.check ~spec:stack_spec h)));
      ])
    [ 4; 8 ]

(* B3 — exploration cost: the full pair and the preemption-bounded trio. *)
let b3 =
  let pair = S.exchanger_pair () in
  let trio = S.exchanger_trio () in
  [
    Test.make ~name:"explore/exchanger-pair-full"
      (Staged.stage (fun () ->
           ignore
             (Conc.Explore.exhaustive ~setup:pair.setup ~fuel:pair.fuel
                ~f:(fun _ -> ())
                ())));
    Test.make ~name:"explore/exchanger-trio-pb2"
      (Staged.stage (fun () ->
           ignore
             (Conc.Explore.exhaustive ~setup:trio.setup ~fuel:trio.fuel
                ~preemption_bound:2
                ~f:(fun _ -> ())
                ())));
    Test.make ~name:"explore/random-100-runs"
      (Staged.stage (fun () ->
           ignore
             (Conc.Explore.random ~setup:trio.setup ~fuel:trio.fuel ~runs:100 ~seed:3L
                ~f:(fun _ -> ())
                ())));
  ]

(* B5 — modularity payoff: verifying the elimination stack against the
   concrete vs the abstract exchanger. *)
let b5 =
  let conc = S.elim_stack_push_pop ~k:1 () in
  let abs = S.elim_stack_push_pop ~abstract:true ~k:1 () in
  let verify (s : S.t) () =
    ignore
      (Verify.Obligations.check_object ~setup:s.setup ~spec:s.spec ~view:s.view
         ~fuel:s.fuel ())
  in
  [
    Test.make ~name:"modularity/elim-stack-concrete" (Staged.stage (verify conc));
    Test.make ~name:"modularity/elim-stack-abstract" (Staged.stage (verify abs));
  ]

(* B6 — agreement cost vs overlap-class size: one big element of n
   pairwise-concurrent failing ops; identical arguments are the worst case
   for the multiset matcher. *)
let b6 =
  List.map
    (fun n ->
      let ops =
        List.init n (fun i ->
            Spec_exchanger.failure ~oid:e_oid (Ids.Tid.of_int i) (Value.int 1))
      in
      let h =
        History.of_list
          (List.init n (fun i ->
               Action.inv ~tid:(Ids.Tid.of_int i) ~oid:e_oid
                 ~fid:Spec_exchanger.fid_exchange (Value.int 1))
          @ List.init n (fun i ->
                Action.res ~tid:(Ids.Tid.of_int i) ~oid:e_oid
                  ~fid:Spec_exchanger.fid_exchange
                  (Value.fail (Value.int 1))))
      in
      Test.make
        ~name:(Fmt.str "agreement/%d-identical-concurrent-ops" n)
        (Staged.stage (fun () -> ignore (Agreement.agrees h ops))))
    [ 2; 4; 6; 8 ]

(* B7 — interval-linearizability checker cost vs operation count. *)
let b7 =
  let w_oid = Ids.Oid.v "W" in
  let spec = Interval_lin.observer_of_ticks ~oid:w_oid in
  List.map
    (fun ticks ->
      let inv_watch =
        Action.inv ~tid:(Ids.Tid.of_int 9) ~oid:w_oid ~fid:(Ids.Fid.v "watch")
          Value.unit
      in
      let res_watch =
        Action.res ~tid:(Ids.Tid.of_int 9) ~oid:w_oid ~fid:(Ids.Fid.v "watch")
          (Value.int ticks)
      in
      let tick_ops i =
        [
          Action.inv ~tid:(Ids.Tid.of_int i) ~oid:w_oid ~fid:(Ids.Fid.v "tick")
            (Value.int i);
          Action.res ~tid:(Ids.Tid.of_int i) ~oid:w_oid ~fid:(Ids.Fid.v "tick")
            Value.unit;
        ]
      in
      let h =
        History.of_list
          ((inv_watch :: List.concat_map tick_ops (List.init ticks (fun i -> i + 1)))
          @ [ res_watch ])
      in
      Test.make
        ~name:(Fmt.str "interval-lin/watch-over-%d-ticks" ticks)
        (Staged.stage (fun () ->
             ignore (Interval_lin.is_interval_linearizable ~spec h))))
    [ 2; 3; 4 ]

(* B8 — blocking structures: dual queue and elimination queue end-to-end
   verification. *)
let b8 =
  let verify (s : S.t) () =
    ignore
      (Verify.Obligations.check_object ~setup:s.setup ~spec:s.spec ~view:s.view
         ~fuel:s.fuel ?preemption_bound:s.bound ())
  in
  [
    Test.make ~name:"blocking/dual-queue-enq-deq"
      (Staged.stage (verify (S.dual_queue_enq_deq ())));
    Test.make ~name:"blocking/dual-queue-two-consumers"
      (Staged.stage (verify (S.dual_queue_two_consumers ())));
    Test.make ~name:"blocking/elim-queue-enq-deq"
      (Staged.stage (verify (S.elim_queue_enq_deq ())));
    Test.make ~name:"blocking/elim-queue-fifo-pb3"
      (Staged.stage (verify (S.elim_queue_fifo ())));
  ]

(* ------------------------------------------------------------ driver -- *)

let run_bechamel tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let quota = if quick then 0.2 else 0.6 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false () in
  let grouped = Test.make_grouped ~name:"bench" ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Fmt.pr "@.%-55s %15s@." "benchmark" "ns/run";
  List.iter
    (fun (name, est) ->
      if Float.is_nan est then Fmt.pr "%-55s %15s@." name "-"
      else Fmt.pr "%-55s %15.0f@." name est)
    rows

(* B4 — the HSY'04-shaped figure: stack throughput under contention. *)
let figure_stack_throughput () =
  let fuel = if quick then 40_000 else 200_000 in
  Fmt.pr
    "@.# B4: simulated stack throughput (completed ops / 1000 scheduler steps)@.";
  Fmt.pr "# the paper's motivation: elimination recovers throughput under contention@.";
  Fmt.pr "%8s %16s %16s %16s@." "threads" "treiber-retry" "elim(k=1)" "elim(k=4)";
  List.iter
    (fun threads ->
      let tp impl =
        (Workloads.Metrics.stack_throughput ~impl ~threads ~fuel ~seed:42L).throughput
      in
      Fmt.pr "%8d %16.2f %16.2f %16.2f@." threads
        (tp Workloads.Metrics.Treiber_retry)
        (tp (Workloads.Metrics.Elimination 1))
        (tp (Workloads.Metrics.Elimination 4)))
    [ 1; 2; 4; 8; 16; 32 ]

let figure_exchanger_success () =
  let fuel = if quick then 40_000 else 150_000 in
  Fmt.pr "@.# B4b: exchanger success rate vs concurrency (the CA behaviour)@.";
  Fmt.pr "%8s %12s %12s %12s@." "threads" "completed" "succeeded" "rate";
  List.iter
    (fun threads ->
      let r =
        Workloads.Metrics.exchanger_success_rate ~threads ~rounds:50 ~fuel ~seed:7L
      in
      Fmt.pr "%8d %12d %12d %11.0f%%@." threads r.ops_completed r.ops_succeeded
        (if r.ops_completed = 0 then 0.
         else 100. *. float_of_int r.ops_succeeded /. float_of_int r.ops_completed))
    [ 1; 2; 4; 8; 16 ]

let figure_sync_queue () =
  let fuel = if quick then 40_000 else 150_000 in
  Fmt.pr "@.# B4c: synchronous queue rendezvous rate (producers vs consumers)@.";
  Fmt.pr "%8s %10s %12s %12s %12s@." "prod" "cons" "completed" "rendezvous" "rate";
  List.iter
    (fun (p, c) ->
      let r =
        Workloads.Metrics.sync_queue_handoffs ~producers:p ~consumers:c ~rounds:40
          ~fuel ~seed:9L
      in
      Fmt.pr "%8d %10d %12d %12d %11.0f%%@." p c r.ops_completed r.ops_succeeded
        (if r.ops_completed = 0 then 0.
         else 100. *. float_of_int r.ops_succeeded /. float_of_int r.ops_completed))
    [ (1, 1); (2, 2); (4, 4); (8, 8); (4, 1); (1, 4) ]

(* B10 — fault sweep: throughput and retry behaviour of the two stacks as
   threads are crashed mid-run. A crashed thread's operation stays pending
   forever; the figure shows what the survivors still deliver. Results
   also land in BENCH_faults.json for machine consumption. *)
let figure_fault_sweep () =
  let fuel = if quick then 40_000 else 150_000 in
  let threads = 8 in
  let crashes = [ 0; 1; 2 ] in
  let impls =
    [
      ("treiber-backoff", Workloads.Metrics.Treiber_backoff);
      ("elim(k=4)", Workloads.Metrics.Elimination 4);
    ]
  in
  Fmt.pr "@.# B10: fault sweep — stack throughput with crashed threads (of %d)@."
    threads;
  Fmt.pr "%-18s %8s %12s %10s %10s %14s@." "impl" "crashes" "ops" "retries"
    "crashed" "throughput";
  let rows =
    List.concat_map
      (fun (name, impl) ->
        List.map
          (fun c ->
            let r =
              Workloads.Metrics.stack_fault_sweep ~impl ~threads ~crashes:c ~fuel
                ~seed:42L
            in
            Fmt.pr "%-18s %8d %12d %10d %10d %14.2f@." name c r.ops_completed
              r.retries r.ops_crashed r.throughput;
            (name, c, r))
          crashes)
      impls
  in
  let oc = open_out "BENCH_faults.json" in
  let json_row (name, c, (r : Workloads.Metrics.result)) =
    Printf.sprintf
      "    {\"impl\": %S, \"threads\": %d, \"crashes\": %d, \"fuel\": %d, \
       \"ops_completed\": %d, \"ops_succeeded\": %d, \"retries\": %d, \
       \"ops_crashed\": %d, \"throughput\": %.4f}"
      name threads c fuel r.ops_completed r.ops_succeeded r.retries r.ops_crashed
      r.throughput
  in
  Printf.fprintf oc "{\n  \"bench\": \"fault_sweep\",\n  \"rows\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map json_row rows));
  close_out oc;
  Fmt.pr "# rows written to BENCH_faults.json@."

(* B11 — timeout/liveness sweep. Two parts: (i) the timed exchanger's
   swap-vs-timeout rate as the per-round deadline grows, with and without a
   clock-skewing Delay fault on thread 0; (ii) the liveness watchdog's
   verdict census over the bounded timed-pair scenario's fault sweep —
   livelocked must be 0. Results land in BENCH_timeouts.json. *)
let figure_timeouts () =
  let fuel = if quick then 30_000 else 100_000 in
  let threads = 4 in
  let plans =
    [ ("none", []); ("delay(t0*4)", [ Conc.Fault.delay ~thread:0 ~factor:4 ]) ]
  in
  Fmt.pr "@.# B11: timed exchanger — swaps vs timeouts by deadline (threads=%d)@."
    threads;
  Fmt.pr "%10s %14s %12s %12s %12s@." "deadline" "plan" "completed" "swapped"
    "timed-out";
  let rows =
    List.concat_map
      (fun deadline ->
        List.map
          (fun (pname, plan) ->
            let r =
              Workloads.Metrics.exchanger_timed_rate ~plan ~threads ~deadline
                ~fuel ~seed:17L ()
            in
            Fmt.pr "%10d %14s %12d %12d %12d@." deadline pname r.ops_completed
              r.ops_succeeded r.ops_timed_out;
            (deadline, pname, r))
          plans)
      [ 2; 4; 8; 16; 32 ]
  in
  let scen = S.exchanger_timed_pair () in
  let window = 8 in
  let plans_explored, live =
    Conc.Explore.liveness_with_faults ~delay_factors:[ 2 ] ~setup:scen.setup
      ~fuel:scen.fuel ~window
      ~max_plans:(if quick then 40 else 200)
      ~fault_bound:1 ()
  in
  Fmt.pr
    "# liveness watchdog over %s (window %d, %d fault plans): %d runs — %d \
     completed, %d deadlocked, %d starved, %d livelocked@."
    scen.S.name window plans_explored live.Conc.Explore.live_runs
    live.Conc.Explore.live_completed live.Conc.Explore.live_deadlocked
    live.Conc.Explore.live_starved live.Conc.Explore.live_livelocked;
  let oc = open_out "BENCH_timeouts.json" in
  let json_row (deadline, pname, (r : Workloads.Metrics.result)) =
    Printf.sprintf
      "    {\"deadline\": %d, \"plan\": %S, \"threads\": %d, \"fuel\": %d, \
       \"ops_completed\": %d, \"ops_succeeded\": %d, \"ops_timed_out\": %d, \
       \"ops_cancelled\": %d, \"throughput\": %.4f}"
      deadline pname threads fuel r.ops_completed r.ops_succeeded r.ops_timed_out
      r.ops_cancelled r.throughput
  in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"timeout_sweep\",\n\
    \  \"rows\": [\n\
     %s\n\
    \  ],\n\
    \  \"liveness\": {\"scenario\": %S, \"window\": %d, \"plans\": %d, \
     \"runs\": %d, \"completed\": %d, \"deadlocked\": %d, \"starved\": %d, \
     \"livelocked\": %d}\n\
     }\n"
    (String.concat ",\n" (List.map json_row rows))
    scen.S.name window plans_explored live.Conc.Explore.live_runs
    live.Conc.Explore.live_completed live.Conc.Explore.live_deadlocked
    live.Conc.Explore.live_starved live.Conc.Explore.live_livelocked;
  close_out oc;
  Fmt.pr "# rows written to BENCH_timeouts.json@."

(* B12 — exploration engine cost: the same bounded state spaces explored by
   the seed's whole-prefix-replay engine, the incremental engine, and the
   incremental engine with fingerprint/sleep-set pruning, across a
   fuel × preemption-bound grid. The headline column is steps-executed:
   the replay engine re-runs the whole prefix at every DFS node
   (O(nodes × depth)); the incremental engine pays one step per tree edge
   plus a single prefix replay per backtrack (O(runs × depth)). Identical
   run counts between the two unpruned engines are asserted here — the
   speedup must not change what is explored. Results land in
   BENCH_explore.json. *)
let figure_explore () =
  let scenarios =
    [ S.exchanger_pair (); S.elim_stack_push_pop ~k:1 () ]
  in
  let fuels = if quick then [ 8; 12 ] else [ 8; 12; 16 ] in
  let bounds = [ Some 2; None ] in
  Fmt.pr "@.# B12: exploration engine cost (steps executed, replay vs incremental)@.";
  Fmt.pr "%-26s %5s %6s %-18s %8s %10s %10s %8s@." "scenario" "fuel" "bound"
    "engine" "runs" "nodes" "steps" "ms";
  let rows =
    List.concat_map
      (fun (s : S.t) ->
        List.concat_map
          (fun fuel ->
            List.concat_map
              (fun bound ->
                let cost engine =
                  let t0 = Sys.time () in
                  let c =
                    Workloads.Metrics.explore_cost ~engine ~setup:s.setup ~fuel
                      ?preemption_bound:bound ()
                  in
                  (c, (Sys.time () -. t0) *. 1000.)
                in
                let replay, replay_ms = cost `Replay in
                let incr_, incr_ms = cost `Incremental in
                let pruned, pruned_ms = cost `Pruned in
                if replay.explored_runs <> incr_.explored_runs then
                  Fmt.failwith
                    "B12: engine mismatch on %s fuel=%d: replay %d runs vs \
                     incremental %d"
                    s.name fuel replay.explored_runs incr_.explored_runs;
                let bound_str =
                  match bound with None -> "-" | Some b -> string_of_int b
                in
                List.iter
                  (fun ((c : Workloads.Metrics.explore_cost), ms) ->
                    Fmt.pr "%-26s %5d %6s %-18s %8d %10d %10d %8.1f@." s.name
                      fuel bound_str c.engine c.explored_runs c.nodes
                      c.steps_executed ms)
                  [ (replay, replay_ms); (incr_, incr_ms); (pruned, pruned_ms) ];
                Fmt.pr "%-26s %5d %6s %-18s %8s %10s %9.1fx@." s.name fuel
                  bound_str "(steps ratio)" "" ""
                  (float_of_int replay.steps_executed
                  /. float_of_int (max 1 incr_.steps_executed));
                List.map
                  (fun ((c : Workloads.Metrics.explore_cost), ms) ->
                    (s.S.name, fuel, bound, c, ms))
                  [ (replay, replay_ms); (incr_, incr_ms); (pruned, pruned_ms) ])
              bounds)
          fuels)
      scenarios
  in
  let max_fuel = List.fold_left max 0 fuels in
  List.iter
    (fun (s : S.t) ->
      let steps engine =
        List.find_map
          (fun (n, f, b, (c : Workloads.Metrics.explore_cost), _) ->
            if n = s.S.name && f = max_fuel && b = None && c.engine = engine
            then Some c.steps_executed
            else None)
          rows
        |> Option.value ~default:1
      in
      let replay = steps "replay" in
      Fmt.pr
        "# %-26s fuel=%d: %5.1fx fewer steps incremental, %5.1fx with pruning@."
        s.name max_fuel
        (float_of_int replay /. float_of_int (max 1 (steps "incremental")))
        (float_of_int replay /. float_of_int (max 1 (steps "incremental+prune"))))
    scenarios;
  let oc = open_out "BENCH_explore.json" in
  let json_row (name, fuel, bound, (c : Workloads.Metrics.explore_cost), ms) =
    Printf.sprintf
      "    {\"scenario\": %S, \"fuel\": %d, \"preemption_bound\": %s, \
       \"engine\": %S, \"runs\": %d, \"nodes\": %d, \"steps_executed\": %d, \
       \"replayed_steps\": %d, \"fingerprint_hits\": %d, \"sleep_pruned\": %d, \
       \"wall_ms\": %.3f}"
      name fuel
      (match bound with None -> "null" | Some b -> string_of_int b)
      c.engine c.explored_runs c.nodes c.steps_executed c.replayed_steps
      c.fingerprint_hits c.sleep_pruned ms
  in
  Printf.fprintf oc
    "{\n  \"bench\": \"explore_engines\",\n  \"rows\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map json_row rows));
  close_out oc;
  Fmt.pr "# rows written to BENCH_explore.json@."

(* B18 — source-DPOR reduction and bounded iterative deepening. Two claims,
   asserted in-process so the benchmark doubles as a regression gate:
   - reduction: on the tracked-cell scenarios at full fuel, source-DPOR
     delivers at least 5x fewer runs than B12's sleep-set pruner while the
     black-box verdict is unchanged;
   - bug-finding: delay-bounded iterative deepening finds every
     deliberately injected violation within bound <= 2.
   Results land in BENCH_dpor.json. *)
let figure_dpor () =
  let fuel = if quick then 12 else 16 in
  let scenarios = [ S.treiber_push_pop (); S.exchanger_pair () ] in
  Fmt.pr "@.# B18: source-DPOR reduction vs sleep-set pruning (fuel %d)@."
    fuel;
  Fmt.pr "%-26s %-18s %8s %10s %8s %10s %8s@." "scenario" "engine" "runs"
    "nodes" "races" "backtracks" "ms";
  let cost ~(s : S.t) engine =
    let t0 = Sys.time () in
    let c = Workloads.Metrics.explore_cost ~engine ~setup:s.setup ~fuel () in
    (c, (Sys.time () -. t0) *. 1000.)
  in
  let reduction_rows =
    List.concat_map
      (fun (s : S.t) ->
        let pruned, pruned_ms = cost ~s `Pruned in
        let dpor, dpor_ms = cost ~s `Dpor in
        List.iter
          (fun ((c : Workloads.Metrics.explore_cost), ms) ->
            Fmt.pr "%-26s %-18s %8d %10d %8d %10d %8.1f@." s.name c.engine
              c.explored_runs c.nodes c.races_found c.backtrack_points ms)
          [ (pruned, pruned_ms); (dpor, dpor_ms) ];
        Fmt.pr "%-26s %-18s %7.1fx fewer runs@." s.name "(reduction)"
          (float_of_int pruned.explored_runs
          /. float_of_int (max 1 dpor.explored_runs));
        if dpor.explored_runs * 5 > pruned.explored_runs then
          Fmt.failwith
            "B18: source-DPOR on %s explored %d runs vs %d sleep-set-pruned \
             — less than the required 5x reduction"
            s.name dpor.explored_runs pruned.explored_runs;
        (* the reduction must not change what is decided *)
        let verdict strategy =
          Verify.Obligations.ok
            (Verify.Obligations.check_black_box ?strategy ~setup:s.setup
               ~spec:s.spec ~fuel ())
        in
        let v_dfs = verdict None and v_dpor = verdict (Some Conc.Explore.Dpor) in
        if v_dfs <> v_dpor then
          Fmt.failwith "B18: DPOR changed the verdict on %s: dfs=%b dpor=%b"
            s.name v_dfs v_dpor;
        [ (s.name, pruned, pruned_ms); (s.name, dpor, dpor_ms) ])
      scenarios
  in
  Fmt.pr "@.# B18b: delay-bounded deepening on the injected bugs@.";
  let bound_rows =
    List.map
      (fun (s : S.t) ->
        let rec find b =
          if b > 2 then
            Fmt.failwith
              "B18: delay-bounded deepening missed the %s violation within \
               bound 2"
              s.name
          else
            let r =
              Verify.Obligations.check_object
                ~strategy:(Conc.Explore.Delay_bounded { bound = b })
                ~setup:s.setup ~spec:s.spec ~view:s.view ~fuel:s.fuel ()
            in
            if Verify.Obligations.ok r then find (b + 1)
            else (b, r.Verify.Obligations.runs)
        in
        let b, runs = find 0 in
        Fmt.pr "%-28s violation at delay bound %d (%d runs)@." s.name b runs;
        (s.name, b, runs))
      (S.faulty ())
  in
  let oc = open_out "BENCH_dpor.json" in
  let engine_row (name, (c : Workloads.Metrics.explore_cost), ms) =
    Printf.sprintf
      "    {\"scenario\": %S, \"fuel\": %d, \"engine\": %S, \"runs\": %d, \
       \"nodes\": %d, \"replayed_steps\": %d, \"sleep_pruned\": %d, \
       \"races_found\": %d, \"backtrack_points\": %d, \"wall_ms\": %.3f}"
      name fuel c.engine c.explored_runs c.nodes c.replayed_steps
      c.sleep_pruned c.races_found c.backtrack_points ms
  in
  let bound_row (name, b, runs) =
    Printf.sprintf
      "    {\"scenario\": %S, \"delay_bound\": %d, \"runs\": %d}" name b runs
  in
  Printf.fprintf oc
    "{\n  \"bench\": \"dpor\",\n  \"rows\": [\n%s\n  ],\n  \"bound_rows\": \
     [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map engine_row reduction_rows))
    (String.concat ",\n" (List.map bound_row bound_rows));
  close_out oc;
  Fmt.pr "# rows written to BENCH_dpor.json@."

(* B13 — crash-recovery sweep: durable Treiber stack throughput as whole-
   system crashes and recovery cost grow. Every flush is an extra step on
   the hot top cell and every crash discards in-flight work and pays
   [recovery_cost] scan steps before the workload resumes — the figure
   quantifies the durability tax. Results land in BENCH_crash.json. *)
let figure_crash () =
  let fuel = if quick then 30_000 else 100_000 in
  let threads = 8 in
  Fmt.pr
    "@.# B13: durable stack — throughput under system crashes (threads=%d)@."
    threads;
  Fmt.pr "%8s %14s %12s %12s %14s %14s@." "crashes" "recovery-cost" "ops"
    "sys-crashes" "recovery-steps" "throughput";
  let rows =
    List.concat_map
      (fun crashes ->
        List.map
          (fun recovery_cost ->
            let r =
              Workloads.Metrics.durable_stack_crash_sweep ~threads ~crashes
                ~recovery_cost ~fuel ~seed:42L
            in
            Fmt.pr "%8d %14d %12d %12d %14d %14.2f@." crashes recovery_cost
              r.ops_completed r.sys_crashes r.recovery_steps r.throughput;
            (crashes, recovery_cost, r))
          [ 0; 16; 64 ])
      [ 0; 1; 2; 4 ]
  in
  let oc = open_out "BENCH_crash.json" in
  let json_row (crashes, recovery_cost, (r : Workloads.Metrics.result)) =
    Printf.sprintf
      "    {\"crashes\": %d, \"recovery_cost\": %d, \"threads\": %d, \
       \"fuel\": %d, \"ops_completed\": %d, \"ops_succeeded\": %d, \
       \"sys_crashes\": %d, \"recovery_steps\": %d, \"retries\": %d, \
       \"throughput\": %.4f}"
      crashes recovery_cost threads fuel r.ops_completed r.ops_succeeded
      r.sys_crashes r.recovery_steps r.retries r.throughput
  in
  Printf.fprintf oc
    "{\n  \"bench\": \"crash_recovery_sweep\",\n  \"rows\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map json_row rows));
  close_out oc;
  Fmt.pr "# rows written to BENCH_crash.json@."

(* B14 — parallel exploration with the canonical-history verdict cache:
   black-box verification wall-clock across worker-domain counts, cache on
   and off. Verdict equality with the sequential cache-less baseline is
   asserted on every row — runs, complete runs and problems must match
   byte-for-byte — so the speedup cannot change what is verified. On a
   single hardware core the domain axis shows the coordination overhead
   is small; the headline speedup comes from the verdict cache, which
   collapses the checker work of schedule-permuted-but-canonically-equal
   histories into one computation shared across domains. Wall-clock uses
   Unix.gettimeofday: Sys.time sums CPU time over every domain, which
   would misreport any multi-domain run. Results land in
   BENCH_parallel.json.

   The B14 preamble also micro-asserts that the accumulator-based
   [Cal_checker.subsets_up_to] rewrite preserved the checker's search
   exactly: [states_explored] on fixed seeded exchanger histories must
   equal the values recorded before the rewrite. *)
let figure_parallel () =
  (* recorded with the pre-rewrite quadratic subsets_up_to; the rewrite
     must not change the enumeration, hence not the search *)
  List.iter
    (fun (elements, expect) ->
      let h = exchanger_history ~elements 11L in
      let stats =
        match Cal_checker.check ~spec:ex_spec h with
        | Cal_checker.Accepted { stats; _ } -> stats
        | Cal_checker.Rejected { stats; _ } -> stats
      in
      if stats.Cal_checker.states_explored <> expect then
        Fmt.failwith
          "B14: subsets_up_to rewrite changed the checker search: %d elements \
           explored %d states (expected %d)"
          elements stats.Cal_checker.states_explored expect)
    [ (2, 2); (4, 4); (6, 6) ];
  let fuel = if quick then 12 else 16 in
  let domain_counts = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let cores = Domain.recommended_domain_count () in
  (* On a single-core box every multi-domain request would silently cap to
     one worker and the stealing machinery would never run. Oversubscribe
     instead: wall-clock speedups then mean nothing (the rows say so via
     the [oversubscribed] flag, and the speedup asserts below are gated on
     real hardware), but the engine genuinely distributes work, so the
     nonzero-steal and byte-identical-report asserts still bite. *)
  let oversub = cores < 2 in
  let prev_oversub = Sys.getenv_opt "CAL_EXPLORE_OVERSUBSCRIBE" in
  if oversub then Unix.putenv "CAL_EXPLORE_OVERSUBSCRIBE" "1";
  Fmt.pr
    "@.# B14: parallel black-box verification + verdict cache (%d hw cores%s)@."
    cores
    (if oversub then ", oversubscribed" else "");
  Fmt.pr "%-26s %5s %8s %5s %6s %9s %11s %8s %9s %9s@." "scenario" "fuel"
    "domains" "used" "cache" "runs" "cache-hits" "stolen" "ms" "speedup";
  (* One measured cell: run the check, assert its report is byte-identical
     to the sequential uncached baseline (verdict-cache hit counts may
     differ by a benign compute race, nothing else may), print and record
     it. [reps] takes the best of several runs to tame GC/scheduler
     noise. *)
  let cell ~(s : S.t) ~fuel ~bound ~reps ~base ~base_ms ~domains ~cache () =
    let run () =
      (* Level the major heap between cells: the allocation left behind by
         one cell otherwise drifts the GC cost of the next. *)
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      let r =
        Verify.Obligations.check_black_box ~domains ~cache ~setup:s.setup
          ~spec:s.spec ~fuel ?preemption_bound:bound ()
      in
      (r, (Unix.gettimeofday () -. t0) *. 1000.)
    in
    let r, ms =
      List.init reps (fun _ -> run ())
      |> List.fold_left
           (fun acc c ->
             match acc with
             | Some (_, best) when best <= snd c -> acc
             | _ -> Some c)
           None
      |> Option.get
    in
    let messages (rep : Verify.Obligations.report) =
      List.map (fun (p : Verify.Obligations.problem) -> p.message) rep.problems
    in
    (match base with
    | None -> ()
    | Some (base : Verify.Obligations.report) ->
        if
          r.Verify.Obligations.runs <> base.Verify.Obligations.runs
          || r.complete_runs <> base.complete_runs
          || messages r <> messages base
        then
          Fmt.failwith
            "B14: %s domains=%d cache=%b diverged from the sequential \
             baseline (%d runs vs %d)"
            s.name domains cache r.Verify.Obligations.runs
            base.Verify.Obligations.runs);
    let hits, stolen, used =
      match r.exploration with
      | Some e ->
          (e.Conc.Explore.cache_hits, e.Conc.Explore.tasks_stolen,
           e.Conc.Explore.domains_used)
      | None -> (0, 0, 1)
    in
    if cache && hits = 0 && r.Verify.Obligations.runs > 1 then
      Fmt.failwith "B14: %s domains=%d: cache enabled but 0 hits" s.name domains;
    (* the tentpole regression: whenever several workers actually ran, work
       must have been distributed — a zero here means the engine degraded
       to static one-task execution *)
    if used > 1 && stolen = 0 then
      Fmt.failwith "B14: %s domains=%d (used %d): no tasks were stolen" s.name
        domains used;
    let speedup =
      if base_ms <= 0. then 1.0 else base_ms /. Float.max 0.001 ms
    in
    Fmt.pr "%-26s %5d %8d %5d %6s %9d %11d %8d %9.1f %8.1fx@." s.name fuel
      domains used
      (if cache then "on" else "off")
      r.Verify.Obligations.runs hits stolen ms speedup;
    ((s.S.name, fuel, domains, used, cache, r.Verify.Obligations.runs, hits,
      stolen, ms, speedup),
     r, ms)
  in
  (* Positive scenarios: the domain axis and the cache hit rates on
     verifications that accept. *)
  let scenarios =
    [ S.treiber_push_pop (); S.exchanger_trio (); S.elim_stack_push_pop ~k:1 () ]
  in
  let rows =
    List.concat_map
      (fun (s : S.t) ->
        let row0, base, base_ms =
          cell ~s ~fuel ~bound:s.bound ~reps:1 ~base:None ~base_ms:0. ~domains:1
            ~cache:false ()
        in
        if not (Verify.Obligations.ok base) then
          Fmt.failwith "B14: %s unexpectedly failed verification" s.name;
        let base = Some base in
        row0
        :: List.concat_map
             (fun domains ->
               List.filter_map
                 (fun cache ->
                   if domains = 1 && not cache then None
                   else
                     let row, _, _ =
                       cell ~s ~fuel ~bound:s.bound ~reps:1 ~base ~base_ms
                         ~domains ~cache ()
                     in
                     Some row)
                 [ false; true ])
             domain_counts)
      scenarios
  in
  (* Headline: the checker-bound sweep. The sticky-slot elimination stack
     rejects on most deep schedules, and a rejection must exhaust every
     drop subset of the pending pops — so the CAL checker, not the
     exploration, dominates the sequential baseline, and the shared
     verdict cache (hit rate ~99%: canonical classes are few) carries the
     speedup. Fuel stays 16 in quick mode: this row is the acceptance
     measurement. *)
  let storm = S.faulty_elim_stack ~pushers:1 ~poppers:4 () in
  let sfuel = 16 and sbound = Some 3 in
  let sbase_row, sbase, sbase_ms =
    cell ~s:storm ~fuel:sfuel ~bound:sbound ~reps:3 ~base:None ~base_ms:0.
      ~domains:1 ~cache:false ()
  in
  if sbase.Verify.Obligations.problems = [] then
    Fmt.failwith "B14: %s found no problems (bug not exercised)" storm.name;
  (* Cache-off domain axis first: raw exploration scaling, the tentpole
     measurement. Then the cached cells, where the verdict cache collapses
     the checker work on top of the parallel exploration. *)
  let storm_raw_cells =
    List.filter_map
      (fun domains ->
        if domains = 1 then None
        else
          Some
            ( domains,
              cell ~s:storm ~fuel:sfuel ~bound:sbound ~reps:3
                ~base:(Some sbase) ~base_ms:sbase_ms ~domains ~cache:false ()
            ))
      domain_counts
  in
  let storm_cells =
    List.map
      (fun domains ->
        (domains,
         cell ~s:storm ~fuel:sfuel ~bound:sbound ~reps:3 ~base:(Some sbase)
           ~base_ms:sbase_ms ~domains ~cache:true ()))
      domain_counts
  in
  (* Wall-clock asserts only where wall-clock is meaningful: a timeshared
     (oversubscribed or capped) run measures scheduler noise, not the
     engine. *)
  (if cores >= 4 then
     match List.assoc_opt 4 storm_raw_cells with
     | None -> ()
     | Some (_, _, ms4) ->
         let speedup = sbase_ms /. Float.max 0.001 ms4 in
         if speedup < 3.0 then
           Fmt.failwith
             "B14: %s at 4 domains cache-off is only %.2fx over the \
              sequential engine (>= 3x required)"
             storm.name speedup);
  (if not oversub then
     match List.assoc_opt 4 storm_cells with
     | None -> ()
     | Some (_, _, ms4) ->
         let speedup = sbase_ms /. Float.max 0.001 ms4 in
         if speedup < 2.0 then
           Fmt.failwith
             "B14: %s at 4 domains + cache is only %.2fx over the sequential \
              engine (>= 2x required)"
             storm.name speedup);
  let rows =
    rows
    @ (sbase_row
       :: (List.map (fun (_, (row, _, _)) -> row) storm_raw_cells
           @ List.map (fun (_, (row, _, _)) -> row) storm_cells))
  in
  let oc = open_out "BENCH_parallel.json" in
  let json_row
      (name, fuel, domains, used, cache, runs, hits, stolen, ms, speedup) =
    Printf.sprintf
      "    {\"scenario\": %S, \"fuel\": %d, \"domains\": %d, \
       \"domains_used\": %d, \"oversubscribed\": %b, \
       \"degraded_no_cores\": %b, \"cache\": %b, \
       \"runs\": %d, \"cache_hits\": %d, \"tasks_stolen\": %d, \
       \"wall_ms\": %.3f, \"speedup\": %.3f}"
      name fuel domains used
      (oversub && domains > 1)
      (* the machine has fewer cores than the requested domains: the
         wall-clock column measures contention, not the engine *)
      (cores < domains) cache runs hits stolen ms speedup
  in
  Printf.fprintf oc
    "{\n  \"bench\": \"parallel_explore\",\n  \"hw_cores\": %d,\n  \
     \"rows\": [\n%s\n  ]\n}\n"
    cores
    (String.concat ",\n" (List.map json_row rows));
  close_out oc;
  (match prev_oversub with
  | Some v -> Unix.putenv "CAL_EXPLORE_OVERSUBSCRIBE" v
  | None -> if oversub then Unix.putenv "CAL_EXPLORE_OVERSUBSCRIBE" "");
  Fmt.pr "# rows written to BENCH_parallel.json@."

(* B15 — sampled checking: detection rate and witness size vs run budget,
   per sampler kind (random walk, PCT, preemption-bounded random), over
   the deliberately faulty scenarios with fixed seeds. Each cell
   aggregates one sampled check per (scenario, seed); the detection rate
   is the fraction of those checks that found a violation within the
   budget, mean-runs the average runs a detection took (early exit), and
   the witness columns the mean ddmin-shrunk schedule length and the mean
   decisions removed. Results land in BENCH_sampling.json. *)
let figure_sampling () =
  let kinds =
    [
      Conc.Sampler.Random_walk;
      Conc.Sampler.Pct { d = 3 };
      Conc.Sampler.Preemption_bounded { bound = 2 };
    ]
  in
  let budgets = if quick then [ 10; 50 ] else [ 10; 50; 250 ] in
  let seeds =
    List.init (if quick then 8 else 20) (fun i -> Int64.of_int (i + 1))
  in
  let scenarios = S.faulty () in
  Fmt.pr "@.# B15: sampled checking — detection rate vs run budget (%d faulty \
          scenarios x %d seeds per cell)@."
    (List.length scenarios) (List.length seeds);
  Fmt.pr "%-14s %8s %10s %12s %14s %14s@." "sampler" "budget" "detected"
    "mean-runs" "mean-witness" "mean-removed";
  let cells =
    List.concat_map
      (fun kind ->
        List.map
          (fun budget ->
            let points =
              List.concat_map
                (fun (s : S.t) ->
                  List.map
                    (fun seed ->
                      Workloads.Metrics.sampling_cost ~kind ~seed ~budget s)
                    seeds)
                scenarios
            in
            let detected =
              List.filter
                (fun (c : Workloads.Metrics.sampling_cost) -> c.sc_detected)
                points
            in
            let mean f = function
              | [] -> 0.
              | l ->
                  List.fold_left (fun a c -> a +. float_of_int (f c)) 0. l
                  /. float_of_int (List.length l)
            in
            let rate =
              float_of_int (List.length detected)
              /. float_of_int (max 1 (List.length points))
            in
            let mean_runs =
              mean (fun (c : Workloads.Metrics.sampling_cost) -> c.sc_runs)
                detected
            in
            let mean_witness =
              mean
                (fun (c : Workloads.Metrics.sampling_cost) -> c.sc_witness_len)
                detected
            in
            let mean_removed =
              mean
                (fun (c : Workloads.Metrics.sampling_cost) ->
                  c.sc_shrink_steps_removed)
                detected
            in
            Fmt.pr "%-14s %8d %9.0f%% %12.1f %14.1f %14.1f@."
              (Conc.Sampler.kind_to_string kind)
              budget (100. *. rate) mean_runs mean_witness mean_removed;
            ( Conc.Sampler.kind_to_string kind,
              budget,
              List.length points,
              List.length detected,
              rate,
              mean_runs,
              mean_witness,
              mean_removed ))
          budgets)
      kinds
  in
  let oc = open_out "BENCH_sampling.json" in
  let json_row (kind, budget, points, detected, rate, mruns, mwitness, mremoved)
      =
    Printf.sprintf
      "    {\"sampler\": %S, \"budget\": %d, \"points\": %d, \"detected\": %d, \
       \"detection_rate\": %.4f, \"mean_runs_to_detect\": %.2f, \
       \"mean_witness_len\": %.2f, \"mean_steps_removed\": %.2f}"
      kind budget points detected rate mruns mwitness mremoved
  in
  Printf.fprintf oc
    "{\n  \"bench\": \"sampling_detection\",\n  \"scenarios\": %d,\n  \
     \"seeds_per_cell\": %d,\n  \"rows\": [\n%s\n  ]\n}\n"
    (List.length scenarios) (List.length seeds)
    (String.concat ",\n" (List.map json_row cells));
  close_out oc;
  Fmt.pr "# rows written to BENCH_sampling.json@."

(* B16 — the streaming monitor service (lib/service): sustained ingest
   rate and verdict latency with >= 1000 concurrent object sessions.
   Three cells:
   - "sequential": one fetch-and-add counter per session, one round =
     every session invokes, then every session responds — so all windows
     are live at the round's midpoint and the retained-action load really
     reaches the session count; every response closes a quiescent point
     on the sequential fast path;
   - "concurrent": one exchanger per session fed overlapping swap pairs,
     so every verdict is an exhaustive resume-from-committed check;
   - "overload": the sequential traffic against a memory budget that is
     deliberately ~8x too small, driving the degradation ladder to
     count-only mid-stream.
   Wall-clock timing, hence Unix.gettimeofday (see the B14 note). *)
let figure_serve ~reduced () =
  Fmt.pr "@.# B16: streaming monitor service (%s)@."
    (if reduced then "reduced CI budget" else "full budget");
  let spec_for oid =
    let name = Ids.Oid.to_string oid in
    if String.length name > 0 && name.[0] = 'E' then
      Some (Spec_exchanger.spec ~oid ())
    else Some (Spec_counter.spec ~oid ())
  in
  let mk config =
    match Service.Core.create ~config ~spec_for () with
    | Ok t -> t
    | Error m -> Fmt.failwith "serve bench: config rejected: %s" m
  in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.
    else
      let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) rank))
  in
  (* Feed every frame; individually time the ones flagged as verdict
     frames (the responses that close a quiescent point). *)
  let drive core frames =
    let lats = ref [] in
    let t0 = Unix.gettimeofday () in
    let core =
      List.fold_left
        (fun core (frame, timed) ->
          if timed then (
            let t1 = Unix.gettimeofday () in
            let core, _ = Service.Core.feed core (Service.Proto.Line frame) in
            lats := (Unix.gettimeofday () -. t1) *. 1e6 :: !lats;
            core)
          else fst (Service.Core.feed core (Service.Proto.Line frame)))
        core frames
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let arr = Array.of_list !lats in
    Array.sort compare arr;
    (core, elapsed, arr)
  in
  let row ~cell ~sessions core elapsed lats =
    let m = Service.Core.metrics core in
    let ops = m.Service.Core.ops in
    let ops_per_sec = float_of_int ops /. elapsed in
    let p50 = percentile lats 0.50 and p99 = percentile lats 0.99 in
    let level = Service.Proto.level_to_string (Service.Core.level core) in
    Fmt.pr
      "%-12s %6d sessions %8d ops %10.0f ops/s  p50 %8.1fus  p99 %8.1fus  \
       level=%-10s changes=%d desyncs=%d@."
      cell sessions ops ops_per_sec p50 p99 level
      m.Service.Core.level_changes m.Service.Core.desyncs;
    ( cell,
      sessions,
      ops,
      elapsed,
      ops_per_sec,
      p50,
      p99,
      level,
      m.Service.Core.level_changes,
      m.Service.Core.desyncs )
  in
  let counter_rounds ~sessions ~rounds =
    List.concat
      (List.init rounds (fun r ->
           List.init sessions (fun i ->
               (Printf.sprintf "t1 inv S%d.incr ()" i, false))
           @ List.init sessions (fun i ->
               (Printf.sprintf "t1 res S%d.incr %d" i r, true))))
  in
  let sessions = if reduced then 1000 else 2000 in
  let sequential =
    let rounds = if reduced then 6 else 40 in
    let config =
      {
        Service.Config.default with
        max_sessions = sessions + 8;
        memory_budget = 4 * sessions;
      }
    in
    let core, elapsed, lats =
      drive (mk config) (counter_rounds ~sessions ~rounds)
    in
    row ~cell:"sequential" ~sessions core elapsed lats
  in
  let concurrent =
    let ex_sessions = if reduced then 128 else 256 in
    let rounds = if reduced then 4 else 16 in
    let config =
      {
        Service.Config.default with
        max_sessions = ex_sessions + 8;
        memory_budget = 8 * ex_sessions;
      }
    in
    let frames =
      List.concat
        (List.init rounds (fun _ ->
             List.concat
               (List.init ex_sessions (fun i ->
                    let o = Printf.sprintf "E%d" i in
                    [
                      (Printf.sprintf "t1 inv %s.exchange 1" o, false);
                      (Printf.sprintf "t2 inv %s.exchange 2" o, false);
                      (Printf.sprintf "t1 res %s.exchange (true, 2)" o, false);
                      (Printf.sprintf "t2 res %s.exchange (true, 1)" o, true);
                    ]))))
    in
    let core, elapsed, lats = drive (mk config) frames in
    row ~cell:"concurrent" ~sessions:ex_sessions core elapsed lats
  in
  let overload =
    let config =
      {
        Service.Config.default with
        max_sessions = sessions + 8;
        memory_budget = max Service.Config.default.window_max (sessions / 8);
      }
    in
    let core, elapsed, lats =
      drive (mk config) (counter_rounds ~sessions ~rounds:3)
    in
    row ~cell:"overload" ~sessions core elapsed lats
  in
  let level_of (_, _, _, _, _, _, _, level, _, _) = level in
  if level_of sequential <> "full" then
    Fmt.failwith
      "serve bench: sequential cell degraded to %s (budget should hold)"
      (level_of sequential);
  if level_of overload = "full" then
    Fmt.failwith "serve bench: overload cell never left the full level";
  let rows = [ sequential; concurrent; overload ] in
  let oc = open_out "BENCH_serve.json" in
  let json_row
      (cell, sessions, ops, elapsed, ops_per_sec, p50, p99, level, changes,
       desyncs) =
    Printf.sprintf
      "    {\"cell\": %S, \"sessions\": %d, \"ops\": %d, \"elapsed_s\": \
       %.4f, \"ops_per_sec\": %.0f, \"p50_verdict_us\": %.2f, \
       \"p99_verdict_us\": %.2f, \"level\": %S, \"level_changes\": %d, \
       \"desyncs\": %d}"
      cell sessions ops elapsed ops_per_sec p50 p99 level changes desyncs
  in
  Printf.fprintf oc
    "{\n  \"bench\": \"streaming_service\",\n  \"reduced\": %b,\n  \
     \"rows\": [\n%s\n  ]\n}\n"
    reduced
    (String.concat ",\n" (List.map json_row rows));
  close_out oc;
  Fmt.pr "# rows written to BENCH_serve.json@."

(* B17 — durability tax and recovery-time scaling of the write-ahead
   journal (lib/service/journal). Two tables in BENCH_serve_durable.json:
   - "overhead": the B16 sequential cell re-driven with journal-before-
     apply at three durability settings (default group commit,
     flush-per-append, fsync-per-append) against a journal-less
     baseline; best-of-N wall clock per variant, and the default setting
     must stay within 25% of baseline;
   - "recovery": a crashed journal of ~N frames at three snapshot
     cadences (never / every N/10 / every N/100), recovered and replayed
     end to end; the replayed suffix must equal the frames past the last
     snapshot exactly, with nothing dropped, and the wall-clock recovery
     time per cell shows the replay-suffix scaling. *)
let figure_serve_durable ~reduced () =
  Fmt.pr "@.# B17: write-ahead journal tax and recovery scaling (%s)@."
    (if reduced then "reduced CI budget" else "full budget");
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let scratch =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cal-b17-%d" (Unix.getpid ()))
  in
  rm_rf scratch;
  Unix.mkdir scratch 0o755;
  let spec_for oid = Some (Spec_counter.spec ~oid ()) in
  let sessions = if reduced then 400 else 1000 in
  let rounds = if reduced then 6 else 12 in
  let config =
    {
      Service.Config.default with
      max_sessions = sessions + 8;
      memory_budget = 4 * sessions;
    }
  in
  let mk () =
    match Service.Core.create ~config ~spec_for () with
    | Ok t -> t
    | Error m -> Fmt.failwith "serve-durable bench: config rejected: %s" m
  in
  let frames =
    List.concat
      (List.init rounds (fun r ->
           List.init sessions (fun i -> Printf.sprintf "t1 inv S%d.incr ()" i)
           @ List.init sessions (fun i ->
                 Printf.sprintf "t1 res S%d.incr %d" i r)))
  in
  let n_frames = List.length frames in
  let drive ?writer () =
    let t0 = Unix.gettimeofday () in
    let core =
      List.fold_left
        (fun core frame ->
          (match writer with
          | None -> ()
          | Some w ->
              ignore (Service.Journal.append w (Service.Journal.Line frame)));
          fst (Service.Core.feed core (Service.Proto.Line frame)))
        (mk ()) frames
    in
    Option.iter Service.Journal.flush writer;
    (core, Unix.gettimeofday () -. t0)
  in
  let d0 = Service.Config.default_durability in
  let variants =
    [
      ("baseline", None);
      ("journal-default", Some d0);
      ("journal-sync", Some { d0 with Service.Config.flush_every = 1 });
      ("journal-fsync",
       Some { d0 with Service.Config.flush_every = 1; fsync_every = 1 });
    ]
  in
  let reps = if reduced then 2 else 3 in
  let run_variant (name, dur) =
    let one () =
      match dur with
      | None -> snd (drive ())
      | Some durability -> (
          let dir = Filename.concat scratch name in
          rm_rf dir;
          match Service.Journal.create ~dir ~durability () with
          | Error m -> Fmt.failwith "serve-durable bench: %s" m
          | Ok w ->
              let _, elapsed = drive ~writer:w () in
              Service.Journal.close w;
              elapsed)
    in
    let elapsed = ref (one ()) in
    for _ = 2 to reps do
      elapsed := min !elapsed (one ())
    done;
    (name, !elapsed)
  in
  let overhead_rows =
    let timed = List.map run_variant variants in
    let base = List.assoc "baseline" timed in
    List.map
      (fun (name, elapsed) ->
        let pct = (elapsed /. base -. 1.) *. 100. in
        let fps = float_of_int n_frames /. elapsed in
        Fmt.pr "%-16s %8d frames %10.0f frames/s  %+6.1f%% vs baseline@."
          name n_frames fps
          (if name = "baseline" then 0. else pct);
        (name, elapsed, fps, pct))
      timed
  in
  let _, _, _, default_pct =
    List.find (fun (n, _, _, _) -> n = "journal-default") overhead_rows
  in
  if default_pct > 25. then
    Fmt.failwith
      "serve-durable bench: default journal tax %.1f%% exceeds the 25%% \
       budget"
      default_pct;
  (* recovery grid: feed + journal n frames with snapshots every
     [cadence] frames, close without a final snapshot (the kill -9
     shape), then time recover + restore + full replay. *)
  let rec_frames n =
    let v = Array.make 100 0 in
    let buf = ref [] in
    for i = 0 to n - 1 do
      let s = i mod 100 in
      let frame =
        if i / 100 mod 2 = 0 then Printf.sprintf "t1 inv S%d.incr ()" s
        else begin
          let r = v.(s) in
          v.(s) <- r + 1;
          Printf.sprintf "t1 res S%d.incr %d" s r
        end
      in
      buf := frame :: !buf
    done;
    List.rev !buf
  in
  let rec_n = (if reduced then 2_000 else 20_000) + 137 in
  let recovery_rows =
    List.map
      (fun cadence ->
        let dir =
          Filename.concat scratch (Printf.sprintf "rec-%d" cadence)
        in
        rm_rf dir;
        let w =
          match Service.Journal.create ~dir ~durability:d0 () with
          | Ok w -> w
          | Error m -> Fmt.failwith "serve-durable bench: %s" m
        in
        let core = ref (mk ()) in
        List.iteri
          (fun i frame ->
            ignore (Service.Journal.append w (Service.Journal.Line frame));
            core := fst (Service.Core.feed !core (Service.Proto.Line frame));
            if cadence > 0 && (i + 1) mod cadence = 0 then
              match
                Service.Journal.snapshot w
                  ~core_snapshot:(Service.Core.snapshot !core)
              with
              | Ok _ -> ()
              | Error m -> Fmt.failwith "serve-durable bench: %s" m)
          (rec_frames rec_n);
        Service.Journal.close w;
        let t0 = Unix.gettimeofday () in
        match Service.Journal.recover ~dir with
        | Error m -> Fmt.failwith "serve-durable bench: recover: %s" m
        | Ok r ->
            let restored =
              match r.Service.Journal.core_snapshot with
              | None -> mk ()
              | Some s -> (
                  match Service.Core.restore ~config ~spec_for s with
                  | Ok c -> c
                  | Error m ->
                      Fmt.failwith "serve-durable bench: restore: %s" m)
            in
            let _final =
              List.fold_left
                (fun c record ->
                  fst
                    (Service.Core.feed c
                       (Service.Journal.input_of_record record)))
                restored r.Service.Journal.records
            in
            let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
            let expect = if cadence = 0 then rec_n else rec_n mod cadence in
            if r.Service.Journal.replayed <> expect then
              Fmt.failwith
                "serve-durable bench: cadence %d replayed %d frames, \
                 expected %d"
                cadence r.Service.Journal.replayed expect;
            if r.Service.Journal.dropped_bytes <> 0 then
              Fmt.failwith "serve-durable bench: clean journal dropped bytes";
            Fmt.pr
              "recover  cadence=%-6d snapshot@%-6d replayed %6d frames in \
               %7.1f ms@."
              cadence r.Service.Journal.snapshot_seq
              r.Service.Journal.replayed ms;
            (cadence, r.Service.Journal.snapshot_seq,
             r.Service.Journal.replayed, ms))
      [ 0; rec_n / 10; rec_n / 100 ]
  in
  let oc = open_out "BENCH_serve_durable.json" in
  let overhead_json (name, elapsed, fps, pct) =
    Printf.sprintf
      "    {\"variant\": %S, \"frames\": %d, \"elapsed_s\": %.4f, \
       \"frames_per_sec\": %.0f, \"overhead_pct\": %.2f}"
      name n_frames elapsed fps
      (if name = "baseline" then 0. else pct)
  in
  let recovery_json (cadence, snap_seq, replayed, ms) =
    Printf.sprintf
      "    {\"snapshot_cadence\": %d, \"frames\": %d, \"snapshot_seq\": %d, \
       \"replayed\": %d, \"recover_ms\": %.2f}"
      cadence rec_n snap_seq replayed ms
  in
  Printf.fprintf oc
    "{\n  \"bench\": \"serve_durable\",\n  \"reduced\": %b,\n  \
     \"overhead\": [\n%s\n  ],\n  \"recovery\": [\n%s\n  ]\n}\n"
    reduced
    (String.concat ",\n" (List.map overhead_json overhead_rows))
    (String.concat ",\n" (List.map recovery_json recovery_rows));
  close_out oc;
  rm_rf scratch;
  Fmt.pr "# rows written to BENCH_serve_durable.json@."

(* The fuzz pass (make fuzz-smoke): one fixed-seed sampled check per
   scenario — every positive must come out clean, every faulty one must be
   detected, within the per-class budget. Prints the first minimized
   failure report in full, as the smoke test of the witness renderer. *)
let fuzz_pass () =
  let failures = ref 0 in
  let printed_witness = ref false in
  let judge name expect_ok (r : Verify.Obligations.report) =
    let ok = Verify.Obligations.ok r in
    let verdict =
      if ok = expect_ok then "ok"
      else begin
        incr failures;
        "MISMATCH"
      end
    in
    Fmt.pr "%-34s expect_ok=%-5b runs=%-5d %s@." name expect_ok
      r.Verify.Obligations.runs verdict;
    if (not ok) && not !printed_witness then begin
      printed_witness := true;
      match r.Verify.Obligations.problems with
      | p :: _ ->
          Fmt.pr "@.# first minimized failure report (witness renderer smoke):@.";
          Fmt.pr "%s@.@." p.Verify.Obligations.message
      | [] -> ()
    end
  in
  Fmt.pr "== fuzz: fixed-seed sampled pass over every scenario ==@.";
  List.iter
    (fun (s : S.t) ->
      let budget = if s.expect_ok then 200 else 2000 in
      judge s.name s.expect_ok
        (Verify.Obligations.check_sampled ~seed:1L ~setup:s.setup ~spec:s.spec
           ~view:s.view ~fuel:s.fuel ~budget ()))
    (S.all ());
  List.iter
    (fun (d : S.durable) ->
      let budget = if d.d_expect_ok then 200 else 3000 in
      judge d.d_name d.d_expect_ok
        (Verify.Obligations.check_sampled_durable ~seed:1L
           ~max_crash_depth:d.d_max_crash_depth ~setup:d.d_setup ~spec:d.d_spec
           ~fuel:d.d_fuel ~budget ()))
    (S.durable_all ());
  if !failures > 0 then
    Fmt.failwith "fuzz: %d scenario(s) mismatched their expected verdict"
      !failures;
  Fmt.pr "@.fuzz: all scenarios matched their expected verdicts.@."

(* B9 — bug preemption depth (iterative context bounding) for the faulty
   objects: how few context switches expose each bug. *)
let figure_bug_depth () =
  Fmt.pr "@.# B9: preemption depth of the injected bugs (CHESS-style)@.";
  let depth (s : S.t) =
    let p (o : Conc.Runner.outcome) =
      Result.is_ok (Verify.Obligations.check_outcome ~spec:s.spec ~view:s.view o)
    in
    match Conc.Explore.failure_depth ~setup:s.setup ~fuel:s.fuel ~max_bound:4 ~p () with
    | `Fails_at (d, _) -> Fmt.str "%d preemptions" d
    | `Holds _ -> "not found within bound 4"
  in
  List.iter
    (fun (s : S.t) -> Fmt.pr "%-28s %s@." s.name (depth s))
    [ S.faulty_counter (); S.faulty_stack (); S.faulty_exchanger (); S.faulty_elim_queue () ]

let figure_verification_cost () =
  Fmt.pr "@.# B5b: verification run counts (modularity payoff, exact)@.";
  let count (s : S.t) =
    let r =
      Verify.Obligations.check_object ~setup:s.setup ~spec:s.spec ~view:s.view
        ~fuel:s.fuel ()
    in
    (r.Verify.Obligations.runs, Verify.Obligations.ok r)
  in
  let rc, okc = count (S.elim_stack_push_pop ~k:1 ()) in
  let ra, oka = count (S.elim_stack_push_pop ~abstract:true ~k:1 ()) in
  Fmt.pr "%-42s %10d interleavings, ok=%b@." "elim-stack over concrete exchanger" rc okc;
  Fmt.pr "%-42s %10d interleavings, ok=%b@." "elim-stack over abstract exchanger" ra oka;
  Fmt.pr "%-42s %9.1fx@." "state-space reduction"
    (float_of_int rc /. float_of_int (max 1 ra))

let () =
  match mode with
  | `Crash ->
      Fmt.pr "== CAL benchmark harness (crash-recovery figure) ==@.";
      figure_crash ();
      Fmt.pr "@.done.@."
  | `Parallel ->
      Fmt.pr "== CAL benchmark harness (parallel-exploration figure) ==@.";
      figure_parallel ();
      Fmt.pr "@.done.@."
  | `Sampling ->
      Fmt.pr "== CAL benchmark harness (sampled-checking figure) ==@.";
      figure_sampling ();
      Fmt.pr "@.done.@."
  | `Dpor ->
      Fmt.pr "== CAL benchmark harness (source-DPOR figure) ==@.";
      figure_dpor ();
      Fmt.pr "@.done.@."
  | `Serve ->
      Fmt.pr "== CAL benchmark harness (streaming-service figure) ==@.";
      figure_serve ~reduced:false ();
      Fmt.pr "@.done.@."
  | `Serve_smoke ->
      Fmt.pr "== CAL benchmark harness (streaming-service figure, reduced) ==@.";
      figure_serve ~reduced:true ();
      Fmt.pr "@.done.@."
  | `Serve_durable ->
      Fmt.pr "== CAL benchmark harness (journal-durability figure) ==@.";
      figure_serve_durable ~reduced:false ();
      Fmt.pr "@.done.@."
  | `Serve_durable_smoke ->
      Fmt.pr
        "== CAL benchmark harness (journal-durability figure, reduced) ==@.";
      figure_serve_durable ~reduced:true ();
      Fmt.pr "@.done.@."
  | `Fuzz -> fuzz_pass ()
  | `Faults | `Smoke ->
      Fmt.pr "== CAL benchmark harness (%s: fault + timeout figures) ==@."
        (if mode = `Smoke then "smoke" else "faults");
      figure_fault_sweep ();
      figure_timeouts ();
      figure_explore ();
      figure_dpor ();
      figure_crash ();
      figure_parallel ();
      figure_sampling ();
      Fmt.pr "@.done.@."
  | `Full ->
      Fmt.pr "== CAL benchmark harness%s ==@." (if quick then " (quick)" else "");
      run_bechamel (b1 @ b2 @ b3 @ b5 @ b6 @ b7 @ b8);
      figure_stack_throughput ();
      figure_exchanger_success ();
      figure_sync_queue ();
      figure_fault_sweep ();
      figure_timeouts ();
      figure_explore ();
      figure_dpor ();
      figure_crash ();
      figure_parallel ();
      figure_sampling ();
      figure_serve ~reduced:quick ();
      figure_serve_durable ~reduced:quick ();
      figure_verification_cost ();
      figure_bug_depth ();
      Fmt.pr "@.done.@."
