(* calc — the concurrency-aware-linearizability command line.

   Subcommands:
     list         enumerate the built-in scenarios
     verify       model-check a scenario (obligations / black box / R-G)
     fig3         reproduce the paper's Fig. 3 histories and verdicts
     check        check a history file against a built-in specification
     explore      interleaving-space growth vs preemption bound
     outline      check Fig. 1's proof-outline assertions
     throughput   simulated-time stack throughput sweep (HSY'04 shape)
     experiments  run the full experiment suite *)

open Cmdliner
open Cal
module S = Workloads.Scenarios

let pr = Fmt.pr

(* ------------------------------------------------------------------ list *)

let list_cmd =
  let run () =
    List.iter
      (fun (s : S.t) ->
        pr "%-32s %d threads, fuel %d, expect %s@.    %s@." s.name s.threads s.fuel
          (if s.expect_ok then "ok" else "FAIL")
          s.description)
      (S.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in verification scenarios")
    Term.(const run $ const ())

(* ---------------------------------------------------------------- verify *)

let scenario_arg =
  let parse name =
    match S.find name with
    | Some s -> Ok s
    | None -> Error (`Msg (Fmt.str "unknown scenario %S (try `calc list')" name))
  in
  let print ppf (s : S.t) = Fmt.string ppf s.name in
  Arg.conv (parse, print)

let fuel_arg =
  Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N" ~doc:"Scheduler fuel")

let max_runs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-runs" ] ~docv:"N" ~doc:"Cap on explored interleavings")

let verify_scenario ~mode ?max_runs ~fuel (s : S.t) =
  let fuel = Option.value fuel ~default:s.fuel in
  let preemption_bound = s.bound in
  let t0 = Unix.gettimeofday () in
  let report =
    match mode with
    | `Obligations ->
        Verify.Obligations.check_object ~setup:s.setup ~spec:s.spec ~view:s.view ~fuel
          ?max_runs ?preemption_bound ()
    | `Black_box ->
        Verify.Obligations.check_black_box ~setup:s.setup ~spec:s.spec ~fuel ?max_runs
          ?preemption_bound ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  pr "%-32s %a%s  (%.2fs)@." s.name Verify.Obligations.pp_report report
    (match s.bound with
    | Some b -> Fmt.str " [<=%d preemptions]" b
    | None -> "")
    dt;
  Verify.Obligations.ok report = s.expect_ok

let verify_cmd =
  let black_box =
    Arg.(
      value & flag
      & info [ "black-box" ]
          ~doc:"Decide CAL on histories alone, ignoring the auxiliary trace")
  in
  let rg =
    Arg.(
      value & flag
      & info [ "rg" ]
          ~doc:
            "Additionally run the Fig. 4 rely/guarantee transition checker (exchanger \
             scenarios only)")
  in
  let scenarios =
    Arg.(
      value
      & pos_all scenario_arg []
      & info [] ~docv:"SCENARIO" ~doc:"Scenario names; default: all")
  in
  let run black_box rg fuel max_runs scenarios =
    let scenarios = if scenarios = [] then S.all () else scenarios in
    let mode = if black_box then `Black_box else `Obligations in
    let ok = List.for_all (verify_scenario ~mode ?max_runs ~fuel) scenarios in
    if rg then begin
      let report =
        Verify.Exchanger_proof.check_program
          ~threads:(fun _ctx ex ->
            [|
              Structures.Exchanger.exchange ex ~tid:(Ids.Tid.of_int 0) (Value.int 3);
              Structures.Exchanger.exchange ex ~tid:(Ids.Tid.of_int 1) (Value.int 4);
              Structures.Exchanger.exchange ex ~tid:(Ids.Tid.of_int 2) (Value.int 7);
            |])
          ~fuel:(Option.value fuel ~default:90)
          ?max_runs ()
      in
      pr "%a@." Verify.Exchanger_proof.pp_report report
    end;
    if ok then `Ok () else `Error (false, "some scenario did not match its expectation")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Model-check scenarios: every interleaving, both CAL obligations")
    Term.(ret (const run $ black_box $ rg $ fuel_arg $ max_runs_arg $ scenarios))

(* ------------------------------------------------------------------ fig3 *)

let fig3_cmd =
  let run () =
    let module P = Workloads.Paper_examples in
    let spec = Spec_exchanger.spec () in
    let show name h expect_cal =
      pr "--- %s ---@.%s@." name (Timeline.render h);
      let cal = Cal_checker.is_cal ~spec h in
      let lin = Lin_checker.is_linearizable ~spec h in
      pr "CAL: %b (expected %b)   classic linearizability: %b@.@." cal expect_cal lin
    in
    pr "Program P = t1: exchg(3) || t2: exchg(4) || t3: exchg(7)@.@.";
    show "H1 (concurrent run of P)" P.h1 true;
    show "H2 (CA-history shaped run)" P.h2 true;
    show "H3 (sequential explanation attempt)" P.h3 false;
    show "H3' (the undesired prefix of H3)" P.h3' false;
    pr "The CA-trace explaining H1 and H2:@.%s@."
      (Timeline.render_trace P.swap_trace);
    pr
      "@.Conclusion (paper §3): histories with successful swaps have no sequential@.\
       explanation — every CAL witness pairs the two exchanges in one CA-element.@."
  in
  Cmd.v
    (Cmd.info "fig3" ~doc:"Reproduce Fig. 3: H1/H2 accepted, H3 and its prefix rejected")
    Term.(const run $ const ())

(* ------------------------------------------------------------ throughput *)

let throughput_cmd =
  let threads =
    Arg.(value & opt (list int) [ 1; 2; 4; 8; 16 ] & info [ "threads" ] ~docv:"N,N,…")
  in
  let fuel = Arg.(value & opt int 200_000 & info [ "fuel" ] ~docv:"STEPS") in
  let k = Arg.(value & opt int 4 & info [ "k" ] ~docv:"SLOTS") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let run threads fuel k seed =
    let seed = Int64.of_int seed in
    pr "# simulated stack throughput (completed ops per 1000 scheduler steps)@.";
    pr "# %8s %16s %16s@." "threads" "treiber-retry" (Fmt.str "elimination(k=%d)" k);
    List.iter
      (fun n ->
        let tr =
          Workloads.Metrics.stack_throughput ~impl:Workloads.Metrics.Treiber_retry
            ~threads:n ~fuel ~seed
        in
        let el =
          Workloads.Metrics.stack_throughput
            ~impl:(Workloads.Metrics.Elimination k) ~threads:n ~fuel ~seed
        in
        pr "  %8d %16.2f %16.2f@." n tr.throughput el.throughput)
      threads
  in
  Cmd.v
    (Cmd.info "throughput"
       ~doc:"Treiber vs elimination stack under rising contention (HSY'04 shape)")
    Term.(const run $ threads $ fuel $ k $ seed)

(* ----------------------------------------------------------------- check *)

let spec_by_name name =
  match name with
  | "exchanger" -> Ok (Spec_exchanger.spec ())
  | "stack" -> Ok (Spec_stack.spec ())
  | "stack-spurious" -> Ok (Spec_stack.spec ~allow_spurious_failure:true ())
  | "queue" -> Ok (Spec_queue.spec ())
  | "register" -> Ok (Spec_register.spec ())
  | "counter" -> Ok (Spec_counter.spec ())
  | "sync-queue" -> Ok (Spec_sync_queue.spec ())
  | _ ->
      Error
        (`Msg
          (Fmt.str
             "unknown spec %S (one of exchanger, stack, stack-spurious, queue,               register, counter, sync-queue)"
             name))

let check_cmd =
  let spec_arg =
    let spec_conv =
      Arg.conv
        ( (fun s -> spec_by_name s),
          (fun ppf (s : Spec.t) -> Fmt.string ppf s.Spec.name) )
    in
    Arg.(required & opt (some spec_conv) None & info [ "spec" ] ~docv:"SPEC")
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"HISTORY-FILE")
  in
  let lin_flag =
    Arg.(value & flag & info [ "linearizability" ] ~doc:"Check classic linearizability instead of CAL")
  in
  let run spec file lin =
    match History_format.load_history file with
    | Error msg -> `Error (false, msg)
    | Ok h ->
        pr "%s@." (Timeline.render h);
        if lin then begin
          let verdict = Lin_checker.check ~spec h in
          pr "%a@." Lin_checker.pp_verdict verdict;
          match verdict with
          | Lin_checker.Linearizable _ -> `Ok ()
          | Lin_checker.Not_linearizable _ -> `Error (false, "not linearizable")
        end
        else begin
          let verdict = Cal_checker.check ~spec h in
          pr "%a@." Cal_checker.pp_verdict verdict;
          match verdict with
          | Cal_checker.Accepted { trace; _ } ->
              pr "@.witness trace:@.%s@." (History_format.print_trace trace);
              `Ok ()
          | Cal_checker.Rejected _ -> `Error (false, "not CAL")
        end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Check a history file (see lib/cal/history_format.mli for the format)           against a built-in specification")
    Term.(ret (const run $ spec_arg $ file_arg $ lin_flag))

(* --------------------------------------------------------------- explore *)

let explore_cmd =
  let scenarios =
    Arg.(
      value
      & pos_all scenario_arg []
      & info [] ~docv:"SCENARIO" ~doc:"Scenario names; default: exchanger-pair")
  in
  let max_bound = Arg.(value & opt int 4 & info [ "max-bound" ] ~docv:"B") in
  let run scenarios max_bound =
    let scenarios = if scenarios = [] then [ S.exchanger_pair () ] else scenarios in
    List.iter
      (fun (s : S.t) ->
        pr "%s (fuel %d):@." s.name s.fuel;
        for b = 0 to max_bound do
          let t0 = Unix.gettimeofday () in
          let stats =
            Conc.Explore.exhaustive ~setup:s.setup ~fuel:s.fuel ~preemption_bound:b
              ~max_runs:2_000_000
              ~f:(fun _ -> ())
              ()
          in
          pr "  <=%d preemptions: %8d runs%s  (%.2fs)@." b stats.runs
            (if stats.truncated then " [truncated]" else "")
            (Unix.gettimeofday () -. t0)
        done)
      scenarios
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Show how the interleaving space grows with the preemption bound")
    Term.(const run $ scenarios $ max_bound)

(* --------------------------------------------------------------- outline *)

let outline_cmd =
  let values =
    Arg.(value & opt (list int) [ 3; 4 ] & info [ "values" ] ~docv:"V,V,…")
  in
  let bound = Arg.(value & opt (some int) None & info [ "preemption-bound" ] ~docv:"B") in
  let run values bound =
    let report =
      Verify.Proof_outline.check_program
        ~values:(List.map Value.int values)
        ~fuel:(30 * List.length values)
        ?preemption_bound:bound ()
    in
    pr "%a@." Verify.Proof_outline.pp_report report;
    if Verify.Proof_outline.ok report then `Ok ()
    else `Error (false, "proof outline violated")
  in
  Cmd.v
    (Cmd.info "outline"
       ~doc:"Check Fig. 1's proof-outline assertions over all interleavings")
    Term.(ret (const run $ values $ bound))

(* ----------------------------------------------------------------- serve *)

(* The streaming front-end is a thin shell around the pure [Service.Core]
   state machine: read frames line by line, print each event line,
   optionally interleave logical ticks, snapshot on exit. Everything
   interesting — containment, degradation, eviction — lives in the core
   and is exercised under dune runtest; this loop only does IO. *)

let spec_builder_by_name name =
  match name with
  | "exchanger" -> Ok (fun oid -> Spec_exchanger.spec ~oid ())
  | "stack" -> Ok (fun oid -> Spec_stack.spec ~oid ())
  | "stack-spurious" ->
      Ok (fun oid -> Spec_stack.spec ~oid ~allow_spurious_failure:true ())
  | "queue" -> Ok (fun oid -> Spec_queue.spec ~oid ())
  | "register" -> Ok (fun oid -> Spec_register.spec ~oid ())
  | "counter" -> Ok (fun oid -> Spec_counter.spec ~oid ())
  | "sync-queue" -> Ok (fun oid -> Spec_sync_queue.spec ~oid ())
  | _ ->
      Error
        (`Msg
          (Fmt.str
             "unknown spec %S (one of exchanger, stack, stack-spurious, queue, \
              register, counter, sync-queue)"
             name))

let journal_has_data dir =
  Sys.file_exists dir && Sys.is_directory dir
  && Array.exists
       (fun n ->
         (String.length n >= 4 && String.sub n 0 4 = "wal-")
         || (String.length n >= 5 && String.sub n 0 5 = "snap-"))
       (try Sys.readdir dir with Sys_error _ -> [||])

let serve_cmd =
  let spec_arg =
    let builder_conv =
      Arg.conv
        ( (fun s -> spec_builder_by_name s),
          fun ppf (_ : Ids.Oid.t -> Spec.t) -> Fmt.string ppf "<spec>" )
    in
    Arg.(
      value
      & opt builder_conv (fun oid -> Spec_counter.spec ~oid ())
      & info [ "spec" ] ~docv:"SPEC"
          ~doc:"Specification instantiated per object id (default counter)")
  in
  let file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"STREAM-FILE" ~doc:"Frame stream; default: stdin")
  in
  let tick_every =
    Arg.(
      value & opt int 0
      & info [ "tick-every" ] ~docv:"N"
          ~doc:"Advance the logical clock after every $(docv) frames (0: never)")
  in
  let budget =
    Arg.(
      value
      & opt int Service.Config.default.Service.Config.memory_budget
      & info [ "budget" ] ~docv:"ACTIONS" ~doc:"Retained-action memory budget")
  in
  let max_sessions =
    Arg.(
      value
      & opt int Service.Config.default.Service.Config.max_sessions
      & info [ "max-sessions" ] ~docv:"N" ~doc:"Admission cap on live sessions")
  in
  let window_max =
    Arg.(
      value
      & opt int Service.Config.default.Service.Config.window_max
      & info [ "window-max" ] ~docv:"ACTIONS" ~doc:"Per-session window bound")
  in
  let idle_timeout =
    Arg.(
      value
      & opt int Service.Config.default.Service.Config.idle_timeout
      & info [ "idle-timeout" ] ~docv:"TICKS" ~doc:"Idle-session reap timeout")
  in
  let summary =
    Arg.(value & flag & info [ "summary" ] ~doc:"Print a metrics summary at end of stream")
  in
  let snapshot_to =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE" ~doc:"Write a session snapshot at end of stream")
  in
  let restore_from =
    Arg.(
      value
      & opt (some file) None
      & info [ "restore" ] ~docv:"FILE" ~doc:"Restore a session snapshot before serving")
  in
  let journal_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Write-ahead journal directory: every frame is journalled \
             before it is applied, and snapshots are cut on the tick \
             cadence, so a killed daemon resumes exactly with --resume")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Recover from the --journal directory (newest snapshot plus \
             journal replay) before serving; with a STREAM-FILE the \
             already-processed prefix is skipped")
  in
  let snapshot_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "snapshot-every" ] ~docv:"TICKS"
          ~doc:"Journal snapshot cadence in logical ticks (0: only at exit)")
  in
  let segment_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "segment-bytes" ] ~docv:"BYTES"
          ~doc:"Journal segment rotation threshold")
  in
  let flush_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "flush-every" ] ~docv:"FRAMES"
          ~doc:
            "Frames per journal flush (1: write-ahead for every frame; \
             larger values batch writes and may lose that many tail \
             frames to a crash, which recovery reports)")
  in
  let fsync_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "fsync-every" ] ~docv:"FLUSHES"
          ~doc:"Flushes per fsync for power-loss durability (0: never)")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"SOCKET"
          ~doc:
            "Serve frames from a Unix-domain socket instead of a file: \
             each connection streams lines in and gets its frames' \
             events back; SIGTERM drains gracefully")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"SOCKET"
          ~doc:
            "Run as a client: stream STREAM-FILE (or stdin) to a daemon \
             started with --listen and print its replies")
  in
  let max_conns =
    Arg.(
      value & opt int 64
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Concurrent-connection cap; extra connections are told busy")
  in
  let crash_after =
    Arg.(
      value & opt int 0
      & info [ "crash-after-frames" ] ~docv:"N"
          ~doc:
            "Testing hook: SIGKILL the process right after journalling \
             frame $(docv) (requires --journal); the crash harness \
             sweeps this to prove kill-anywhere recovery")
  in
  let run spec_of file tick_every budget max_sessions window_max idle_timeout
      summary snapshot_to restore_from journal_dir resume snapshot_every
      segment_bytes flush_every fsync_every listen connect max_conns
      crash_after =
    let err fmt = Fmt.kstr (fun m -> `Error (false, m)) fmt in
    let durability_flag_set =
      snapshot_every <> None || segment_bytes <> None || flush_every <> None
      || fsync_every <> None
    in
    let config =
      {
        Service.Config.default with
        Service.Config.memory_budget = budget;
        max_sessions;
        window_max;
        idle_timeout;
      }
    in
    if tick_every < 0 then err "--tick-every must be >= 0 (0 disables ticks)"
    else if crash_after < 0 then err "--crash-after-frames must be >= 1"
    else
      match Service.Config.validate config with
      | Error msg -> err "%s" msg
      | Ok config -> (
          match connect with
          | Some path ->
              if listen <> None then err "--connect conflicts with --listen"
              else if
                journal_dir <> None || resume || durability_flag_set
                || crash_after > 0
              then
                err
                  "--connect is a plain client: journal/resume/crash flags \
                   live on the --listen side"
              else if restore_from <> None || snapshot_to <> None || summary
              then
                err
                  "--connect is a plain client: --restore/--snapshot/\
                   --summary live on the --listen side"
              else
                let ic, finally =
                  match file with
                  | None -> (In_channel.stdin, fun () -> ())
                  | Some f ->
                      let ic = open_in f in
                      (ic, fun () -> close_in_noerr ic)
                in
                Fun.protect ~finally (fun () ->
                    match Service.Transport.client ~path ic with
                    | Ok () -> `Ok ()
                    | Error msg -> `Error (false, msg))
          | None ->
              if listen <> None && file <> None then
                err
                  "--listen conflicts with a STREAM-FILE argument (frames \
                   arrive over the socket)"
              else if resume && journal_dir = None then
                err "--resume requires --journal"
              else if resume && restore_from <> None then
                err
                  "--restore conflicts with --resume (the journal embeds \
                   its own snapshots)"
              else if crash_after > 0 && journal_dir = None then
                err "--crash-after-frames requires --journal"
              else if durability_flag_set && journal_dir = None then
                err
                  "--snapshot-every/--segment-bytes/--flush-every/\
                   --fsync-every require --journal"
              else
                let d0 = Service.Config.default_durability in
                let durability =
                  {
                    Service.Config.segment_bytes =
                      Option.value segment_bytes
                        ~default:d0.Service.Config.segment_bytes;
                    flush_every =
                      Option.value flush_every
                        ~default:d0.Service.Config.flush_every;
                    fsync_every =
                      Option.value fsync_every
                        ~default:d0.Service.Config.fsync_every;
                    snapshot_every =
                      Option.value snapshot_every
                        ~default:d0.Service.Config.snapshot_every;
                    keep_snapshots = d0.Service.Config.keep_snapshots;
                  }
                in
                match Service.Config.validate_durability durability with
                | Error msg -> err "%s" msg
                | Ok durability -> (
                    let spec_for oid = Some (spec_of oid) in
                    let cache =
                      Option.map
                        (fun capacity -> Verdict_cache.create ~capacity ())
                        (Tuning.verdict_cache_capacity ())
                    in
                    let fresh () =
                      Service.Core.create ?cache ~config ~spec_for ()
                    in
                    let setup =
                      if resume then
                        let dir = Option.get journal_dir in
                        match Service.Journal.recover ~dir with
                        | Error msg -> Error msg
                        | Ok r ->
                            let base =
                              match r.Service.Journal.core_snapshot with
                              | None -> fresh ()
                              | Some s ->
                                  Service.Core.restore ?cache ~config
                                    ~spec_for s
                            in
                            Result.map
                              (fun core ->
                                let core =
                                  List.fold_left
                                    (fun core record ->
                                      fst
                                        (Service.Core.feed core
                                           (Service.Journal.input_of_record
                                              record)))
                                    core r.Service.Journal.records
                                in
                                Fmt.epr "%a@." Service.Journal.pp_recovery r;
                                (core, r.Service.Journal.last_seq + 1))
                              base
                      else
                        let base =
                          match restore_from with
                          | None -> fresh ()
                          | Some f -> (
                              match
                                try
                                  Ok
                                    (In_channel.with_open_text f
                                       In_channel.input_all)
                                with Sys_error e -> Error e
                              with
                              | Error e -> Error e
                              | Ok text ->
                                  Service.Core.restore ?cache ~config
                                    ~spec_for text)
                        in
                        Result.map (fun core -> (core, 1)) base
                    in
                    match setup with
                    | Error msg -> err "%s" msg
                    | Ok (core, next_seq) -> (
                        let journal =
                          match journal_dir with
                          | None -> Ok None
                          | Some dir ->
                              if (not resume) && journal_has_data dir then
                                Error
                                  (Fmt.str
                                     "%s already holds a journal (use \
                                      --resume or a fresh directory)"
                                     dir)
                              else
                                Result.map Option.some
                                  (Service.Journal.create ~dir ~durability
                                     ~next_seq ())
                        in
                        match journal with
                        | Error msg -> err "%s" msg
                        | Ok journal ->
                            let lines_seen =
                              if resume then
                                (Service.Core.metrics core)
                                  .Service.Core.frames
                              else 0
                            in
                            let snapshot_cadence =
                              match journal with
                              | None -> 0
                              | Some _ ->
                                  durability.Service.Config.snapshot_every
                            in
                            let pump =
                              Service.Transport.create_pump ~core ?journal
                                ~tick_every ~snapshot_every:snapshot_cadence
                                ~kill_after:crash_after ~lines_seen ()
                            in
                            let emit e =
                              print_endline (Service.Proto.print_event e)
                            in
                            if resume then
                              List.iter emit
                                (Service.Transport.catch_up_ticks pump);
                            let epilogue () =
                              let core = Service.Transport.pump_core pump in
                              if summary then
                                pr "summary %a level=%s load=%d sessions=%d@."
                                  Service.Core.pp_metrics
                                  (Service.Core.metrics core)
                                  (Service.Proto.level_to_string
                                     (Service.Core.level core))
                                  (Service.Core.load core)
                                  (Service.Core.session_count core);
                              Option.iter
                                (fun f ->
                                  Out_channel.with_open_text f (fun oc ->
                                      Out_channel.output_string oc
                                        (Service.Core.snapshot core)))
                                snapshot_to;
                              match Service.Transport.finalize pump with
                              | Ok _ -> `Ok ()
                              | Error msg -> `Error (false, msg)
                            in
                            (match listen with
                            | Some path -> (
                                match
                                  Service.Transport.serve_socket ~pump ~path
                                    ~max_conns ()
                                with
                                | Error msg -> `Error (false, msg)
                                | Ok () -> epilogue ())
                            | None ->
                                let ic, finally =
                                  match file with
                                  | None -> (In_channel.stdin, fun () -> ())
                                  | Some f ->
                                      let ic = open_in f in
                                      (ic, fun () -> close_in_noerr ic)
                                in
                                Fun.protect ~finally (fun () ->
                                    let rec skip n =
                                      if n > 0 then
                                        match In_channel.input_line ic with
                                        | None -> ()
                                        | Some _ -> skip (n - 1)
                                    in
                                    skip lines_seen;
                                    let rec loop () =
                                      match In_channel.input_line ic with
                                      | None -> ()
                                      | Some line ->
                                          List.iter emit
                                            (Service.Transport.pump_line pump
                                               line);
                                          loop ()
                                    in
                                    loop ();
                                    epilogue ())))))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the streaming CAL monitor over a frame stream (one \
          history-format action per line, from a file, stdin or a Unix \
          socket); prints one event per line and can journal every frame \
          for crash-safe resume")
    Term.(
      ret
        (const run $ spec_arg $ file_arg $ tick_every $ budget $ max_sessions
       $ window_max $ idle_timeout $ summary $ snapshot_to $ restore_from
       $ journal_dir $ resume $ snapshot_every $ segment_bytes $ flush_every
       $ fsync_every $ listen $ connect $ max_conns $ crash_after))

(* ----------------------------------------------------------- experiments *)

let experiments_cmd =
  let run () = Experiments.run_all Format.std_formatter in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Run the full experiment suite (E1-E9 + negative controls) and print the report")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ main *)

let () =
  let doc = "concurrency-aware linearizability: checkers, objects, experiments" in
  let info = Cmd.info "calc" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [
         list_cmd; verify_cmd; fig3_cmd; check_cmd; explore_cmd; outline_cmd;
         throughput_cmd; serve_cmd; experiments_cmd;
       ]))
