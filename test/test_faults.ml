(* Tests for the fault-injection subsystem: fault plans as data, crashed /
   stalled threads, forced CAS failures, systematic single-fault
   exploration (the fault analog of context bounding), crash-tolerant CAL
   checking, and the deterministic backoff policy. *)

open Cal
open Conc
open Structures
open Test_support

let t name f = Alcotest.test_case name `Quick f

(* -------------------------------------------------------------- plans -- *)

let test_validate () =
  let ok p = check_bool "valid" true (Result.is_ok (Fault.validate p)) in
  let bad p = check_bool "invalid" true (Result.is_error (Fault.validate p)) in
  ok [];
  ok [ Fault.crash ~thread:0 ~at_step:0 ];
  ok [ Fault.crash ~thread:0 ~at_step:3; Fault.crash ~thread:1 ~at_step:0 ];
  ok [ Fault.fail_step ~label:"cas" ~nth:1; Fault.stall ~thread:2 ~at_step:0 ~for_steps:1 ];
  bad [ Fault.crash ~thread:(-1) ~at_step:0 ];
  bad [ Fault.crash ~thread:0 ~at_step:(-1) ];
  bad [ Fault.fail_step ~label:"cas" ~nth:0 ];
  bad [ Fault.stall ~thread:0 ~at_step:0 ~for_steps:0 ];
  bad [ Fault.crash ~thread:0 ~at_step:1; Fault.crash ~thread:0 ~at_step:2 ]

let test_validate_crash_system () =
  let ok ?d p = Result.is_ok (Fault.validate ?max_crash_depth:d p) in
  check_bool "single point" true (ok [ Fault.crash_system ~at_step:0 ]);
  check_bool "negative point" false (ok [ Fault.crash_system ~at_step:(-1) ]);
  check_bool "two points exceed the default depth 1" false
    (ok [ Fault.crash_system ~at_step:0; Fault.crash_system ~at_step:3 ]);
  check_bool "two points fit depth 2" true
    (ok ~d:2 [ Fault.crash_system ~at_step:0; Fault.crash_system ~at_step:3 ]);
  check_bool "points must be strictly increasing (equal)" false
    (ok ~d:2 [ Fault.crash_system ~at_step:3; Fault.crash_system ~at_step:3 ]);
  check_bool "points must be strictly increasing (decreasing)" false
    (ok ~d:2 [ Fault.crash_system ~at_step:3; Fault.crash_system ~at_step:1 ]);
  check_bool "composes with thread faults" true
    (ok [ Fault.crash ~thread:0 ~at_step:1; Fault.crash_system ~at_step:2 ])

(* Delay-vs-Crash composition order: the Delay's clock skew is installed at
   run start — before any crash can fire — and per-thread state survives
   the crash transition, so the skewed thread perceives [factor * now] in
   every era. The probe reads its local clock once per decision. *)
let test_delay_applies_before_crash () =
  let open Prog.Infix in
  let seen = ref [] in
  let reader ctx n =
    let rec go k =
      if k = 0 then Prog.return Value.unit
      else
        Prog.atomic ~label:"probe" (fun () ->
            seen := Ctx.local_now ctx ~tid:(tid 0) :: !seen)
        >>= fun () -> go (k - 1)
    in
    go n
  in
  let setup ctx =
    {
      Runner.boot =
        { Runner.threads = [| reader ctx 2 |]; observe = None; on_label = None };
      domain = Pcell.domain ();
      recover =
        (fun ~epoch:_ ->
          { Runner.threads = [| reader ctx 2 |]; observe = None; on_label = None });
    }
  in
  let plan =
    [ Fault.delay ~thread:0 ~factor:3; Fault.crash_system ~at_step:2 ]
  in
  let o =
    Runner.run_random_durable ~plan ~setup ~fuel:10 ~rng:(Rng.create ~seed:1L) ()
  in
  Alcotest.(check int) "crash fired" 2 o.Runner.epochs;
  Alcotest.(check (list int))
    "3x skew in both eras" [ 0; 3; 6; 9 ]
    (List.rev !seen)

let test_matches_label () =
  check_bool "exact" true (Fault.matches_label ~pattern:"push-cas" "push-cas");
  check_bool "location suffix" true
    (Fault.matches_label ~pattern:"push-cas" "push-cas@S.top");
  check_bool "full label" true
    (Fault.matches_label ~pattern:"push-cas@S.top" "push-cas@S.top");
  check_bool "prefix alone is not a match" false
    (Fault.matches_label ~pattern:"push" "push-cas@S.top");
  check_bool "other label" false (Fault.matches_label ~pattern:"push-cas" "pop-cas")

(* ----------------------------------------------------- setup fixtures -- *)

(* The two-thread exchanger client of Fig. 1: exchange(3) ‖ exchange(4). *)
let pair_setup ctx =
  let ex = Exchanger.create ctx in
  {
    Runner.threads =
      [|
        Exchanger.exchange ex ~tid:(tid 0) (vi 3);
        Exchanger.exchange ex ~tid:(tid 1) (vi 4);
      |];
    observe = None;
    on_label = None;
  }

let ex_spec = Spec_exchanger.spec ()

let crashed_tids (o : Runner.outcome) =
  List.map Ids.Tid.of_int (Fault.crashed_threads o.injected)

(* ------------------------------------------------------------ crashes -- *)

(* Crash thread 0 before its first step: in every interleaving the peer
   finds no offer and returns (false, 4); the history with the crashed
   pending operation dropped is CAL. *)
let test_crash_before_init () =
  let plan = [ Fault.crash ~thread:0 ~at_step:0 ] in
  let runs = ref 0 in
  let stats =
    Explore.exhaustive ~plan ~setup:pair_setup ~fuel:60
      ~f:(fun o ->
        incr runs;
        check_bool "thread 0 crashed" true
          (List.exists (function Fault.Crash { thread = 0; _ } -> true | _ -> false)
             o.injected);
        Alcotest.(check (option value))
          "peer exchanges with nobody" (Some (fail_int 4)) o.results.(1);
        check_bool "no result from the crashed thread" true (o.results.(0) = None);
        check_bool "run not complete" false o.complete;
        check_bool "CAL with the crashed op droppable" true
          (Cal_checker.is_cal ~crashed:(crashed_tids o) ~spec:ex_spec o.history))
      ()
  in
  check_bool "explored" true (stats.runs > 0 && stats.runs = !runs)

(* Crash thread 0 right after its INIT CAS (step 1 is the harness's
   invocation log, step 2 the CAS): on schedules where the offer was
   installed, the live peer can still complete the rendezvous — the
   crashed operation took effect. The crash-tolerant checker must accept
   by completing (not dropping) the crashed pending operation. *)
let test_crash_after_init_can_still_pair () =
  let plan = [ Fault.crash ~thread:0 ~at_step:2 ] in
  let witnessed = ref false in
  ignore
    (Explore.exhaustive ~plan ~setup:pair_setup ~fuel:60
       ~f:(fun o ->
         check_bool "CAL under single crash" true
           (Cal_checker.is_cal ~crashed:(crashed_tids o) ~spec:ex_spec o.history);
         if o.results.(1) = Some (ok_int 3) then witnessed := true)
       ());
  check_bool "some schedule pairs with the crashed thread's offer" true !witnessed

(* A live thread's pending operation must NOT be droppable in crashed
   mode: an incomplete fault-free run of the pair (fuel cut) is CAL in the
   default mode but the crashed-mode check with an empty crash list must
   complete every pending operation or reject. *)
let test_crashed_mode_restricts_drops () =
  let h =
    History.of_list
      [
        inv 0 (vi 3);
        (* thread 0 returned a success although nobody else even invoked:
           only droppable-pending can explain it away *)
        res 0 (ok_int 9);
        inv 1 (vi 4);
      ]
  in
  check_bool "default mode drops the pending peer... but the success is
    unexplainable either way" false
    (Cal_checker.is_cal ~spec:ex_spec h);
  let h_fail =
    History.of_list [ inv 0 (vi 3); res 0 (fail_int 3); inv 1 (vi 4) ]
  in
  check_bool "default mode: pending op droppable, accepted" true
    (Cal_checker.is_cal ~spec:ex_spec h_fail);
  check_bool "crashed=[] : pending op of a live thread must complete" true
    (* completing exchange(4) with (false,4) explains it: still accepted *)
    (Cal_checker.is_cal ~crashed:[] ~spec:ex_spec h_fail);
  (* a swap element requires both partners; with one partner pending and
     not crashed, the checker must find its completion — here impossible,
     because the trace would need a swap and the completed op returned a
     failure. Use a history whose only explanation drops the pending op: *)
  let h_needs_drop =
    History.of_list [ inv 0 (vi 3); inv 1 (vi 4); res 0 (ok_int 4) ]
  in
  check_bool "default mode accepts by completing the partner" true
    (Cal_checker.is_cal ~spec:ex_spec h_needs_drop);
  check_bool "crashed mode also accepts (completion, not drop)" true
    (Cal_checker.is_cal ~crashed:[] ~spec:ex_spec h_needs_drop)

(* Lin_checker's crashed mode mirrors Cal_checker's. *)
let test_lin_crashed_mode () =
  let spec = Spec_stack.spec ~oid:s_oid ~allow_spurious_failure:false () in
  let push = Ids.Fid.v "push" and pop = Ids.Fid.v "pop" in
  (* pop(=1) completed, push(1) pending: explainable only if the pending
     push is completed (it must have taken effect), never by dropping. *)
  let h =
    History.of_list
      [
        Action.inv ~tid:(tid 0) ~oid:s_oid ~fid:push (vi 1);
        Action.inv ~tid:(tid 1) ~oid:s_oid ~fid:pop Value.unit;
        Action.res ~tid:(tid 1) ~oid:s_oid ~fid:pop (ok_int 1);
      ]
  in
  check_bool "lin default" true (Lin_checker.is_linearizable ~spec h);
  check_bool "lin crashed=[t0] (completed, not dropped)" true
    (Lin_checker.is_linearizable ~crashed:[ tid 0 ] ~spec h);
  check_bool "lin crashed=[]" true (Lin_checker.is_linearizable ~crashed:[] ~spec h)

(* Regression: in crashed mode a pending operation of a NON-crashed thread
   must be completed, never silently dropped. The library's own operations
   are all total — every one now admits a failure, timeout or cancelled
   singleton, so their pending invocations always complete — which is
   exactly how a buggy "drop anything pending" completion would go
   unnoticed. Pin the semantics with a minimal one-shot token object whose
   only operation, take() => ok(()), succeeds exactly once and has no
   failure answer: once the token is gone, a pending take can neither
   complete nor (in crashed mode, for a live thread) be dropped. *)
let token_oid = Ids.Oid.v "TOK"
let fid_take = Ids.Fid.v "take"

let token_spec =
  Spec.make ~name:"token" ~owns:(Ids.Oid.equal token_oid) ~max_element_size:1
    ~init:true
    ~step:(fun have el ->
      match Ca_trace.element_ops el with
      | [ (o : Op.t) ]
        when Ids.Fid.equal o.fid fid_take
             && Value.equal o.ret (Value.ok Value.unit) ->
          if have then Some false else None
      | _ -> None)
    ~key:string_of_bool
    ~candidates:(fun _ ~universe:_ _ -> [ Value.ok Value.unit ])
    ()

let test_crashed_mode_rejects_dropping_live_pending () =
  let inv t = Action.inv ~tid:(tid t) ~oid:token_oid ~fid:fid_take Value.unit in
  let res t = Action.res ~tid:(tid t) ~oid:token_oid ~fid:fid_take (Value.ok Value.unit) in
  (* t2 consumed the token; t1's take, invoked afterwards, is pending *)
  let h = History.of_list [ inv 2; res 2; inv 1 ] in
  check_bool "cal default: drops the pending take" true
    (Cal_checker.is_cal ~spec:token_spec h);
  check_bool "lin default: drops the pending take" true
    (Lin_checker.is_linearizable ~spec:token_spec h);
  check_bool "cal crashed=[]: live pending take must complete — rejected" false
    (Cal_checker.is_cal ~crashed:[] ~spec:token_spec h);
  check_bool "lin crashed=[]: live pending take must complete — rejected" false
    (Lin_checker.is_linearizable ~crashed:[] ~spec:token_spec h);
  check_bool "cal crashed=[t1]: crashed pending take may vanish" true
    (Cal_checker.is_cal ~crashed:[ tid 1 ] ~spec:token_spec h);
  check_bool "lin crashed=[t1]: crashed pending take may vanish" true
    (Lin_checker.is_linearizable ~crashed:[ tid 1 ] ~spec:token_spec h)

(* ------------------------------------------------- forced CAS failure -- *)

(* Force the first INIT CAS down its failure branch: the forced thread
   behaves as if the slot was occupied, finds g empty, and fails. *)
let test_fail_step_forces_branch () =
  let plan = [ Fault.fail_step ~label:"init-cas" ~nth:1 ] in
  let fired = ref 0 in
  ignore
    (Explore.exhaustive ~plan ~setup:pair_setup ~fuel:60
       ~f:(fun o ->
         check_bool "forced failure fired" true
           (List.exists
              (function Fault.Fail_step _ -> true | _ -> false)
              o.injected);
         incr fired;
         check_bool "complete" true o.complete;
         check_bool "still CAL under the forced failure" true
           (Cal_checker.is_cal ~spec:ex_spec o.history))
       ());
  check_bool "ran" true (!fired > 0)

(* ------------------------------------------------------------- stalls -- *)

let test_stall_freezes_thread () =
  let plan = [ Fault.stall ~thread:0 ~at_step:0 ~for_steps:2 ] in
  let _, frontier = Runner.replay ~plan ~setup:pair_setup [] in
  check_bool "stalled thread not enabled" true
    (List.for_all (fun (d : Runner.decision) -> d.thread <> 0) frontier);
  check_bool "peer still enabled" true
    (List.exists (fun (d : Runner.decision) -> d.thread = 1) frontier);
  (* after the peer advances global time past the window, thread 0 thaws *)
  let o, frontier' =
    Runner.replay ~plan ~setup:pair_setup
      [ { thread = 1; branch = 0 }; { thread = 1; branch = 0 } ]
  in
  check_bool "stall fired" true
    (List.exists (function Fault.Stall _ -> true | _ -> false) o.injected);
  check_bool "thread 0 thawed" true
    (List.exists (fun (d : Runner.decision) -> d.thread = 0) frontier')

(* ------------------------------- systematic single-fault exploration -- *)

(* The headline obligation: under EVERY single crash and EVERY single
   forced CAS failure, in every interleaving, the exchanger pair remains
   CAL (with the crashed thread's operation droppable), and the plan that
   produced each outcome replays byte-for-byte. *)
let test_exhaustive_with_faults_exchanger () =
  let total = ref 0 in
  let faulty_runs = ref 0 in
  let sampled = ref [] in
  let stats =
    Explore.exhaustive_with_faults ~setup:pair_setup ~fuel:60 ~fault_bound:1
      ~f:(fun o ->
        incr total;
        if o.faults <> [] then begin
          incr faulty_runs;
          if List.length !sampled < 25 then sampled := o :: !sampled
        end;
        check_bool "CAL under every single fault" true
          (Cal_checker.is_cal ~crashed:(crashed_tids o) ~spec:ex_spec o.history))
      ()
  in
  check_bool "terminates with multiple plans" true (stats.plans > 1);
  check_bool "not truncated" false stats.fault_truncated;
  check_bool "delivered runs counted" true (stats.fault_runs = !total);
  check_bool "fault-free plan included" true (!total > !faulty_runs);
  check_bool "faulty plans actually ran" true (!faulty_runs > 0);
  (* replay determinism: same (schedule, plan) -> identical outcome *)
  List.iter
    (fun (o : Runner.outcome) ->
      let o', _ = Runner.replay ~plan:o.faults ~setup:pair_setup o.schedule in
      Alcotest.(check string)
        "history replays byte-for-byte"
        (Fmt.str "%a" History.pp o.history)
        (Fmt.str "%a" History.pp o'.history);
      Alcotest.(check string)
        "trace replays byte-for-byte"
        (Fmt.str "%a" Ca_trace.pp o.trace)
        (Fmt.str "%a" Ca_trace.pp o'.trace);
      check_bool "injected faults replay" true (o.injected = o'.injected);
      check_bool "results replay" true (o.results = o'.results))
    !sampled

(* The same sweep must still CATCH a genuinely faulty object: the selfish
   exchanger claims success without a partner. *)
let test_faulty_object_still_caught () =
  let s = Workloads.Scenarios.faulty_exchanger () in
  let report =
    Verify.Obligations.check_object_with_faults ~setup:s.setup ~spec:s.spec
      ~view:s.view ~fuel:s.fuel ~fault_bound:1 ()
  in
  check_bool "faulty exchanger rejected under fault exploration" false
    (Verify.Obligations.ok report);
  (* and the reported problems replay: re-run one failing (schedule, plan) *)
  match report.problems with
  | [] -> Alcotest.fail "expected at least one problem"
  | p :: _ ->
      let o, _ = Runner.replay ~plan:p.plan ~setup:s.setup p.schedule in
      check_bool "reported problem reproduces" true
        (Result.is_error
           (Verify.Obligations.check_outcome ~spec:s.spec ~view:s.view o))

(* The real exchanger passes the full obligation sweep under faults. *)
let test_real_exchanger_ok_with_faults () =
  let s = Workloads.Scenarios.exchanger_pair () in
  let report =
    Verify.Obligations.check_object_with_faults ~setup:s.setup ~spec:s.spec
      ~view:s.view ~fuel:s.fuel ~fault_bound:1 ()
  in
  check_bool "exchanger survives every single fault" true
    (Verify.Obligations.ok report)

(* ------------------------------------------------------------ backoff -- *)

let test_backoff_policy_validation () =
  check_bool "bad init" true
    (try
       ignore (Backoff.policy ~init:0 ());
       false
     with Invalid_argument _ -> true);
  check_bool "bad max" true
    (try
       ignore (Backoff.policy ~init:4 ~max:2 ());
       false
     with Invalid_argument _ -> true)

(* Backoff-equipped structures stay deterministic: the same seed gives the
   same run, a different seed is allowed to differ. *)
let test_backoff_determinism () =
  let run seed =
    let r =
      Workloads.Metrics.stack_fault_sweep ~impl:Workloads.Metrics.Treiber_backoff
        ~threads:4 ~crashes:1 ~fuel:3_000 ~seed
    in
    (r.ops_completed, r.retries, r.ops_crashed, r.steps)
  in
  check_bool "same seed, same run" true (run 5L = run 5L);
  let a = run 5L and b = run 6L in
  let _, _, crashed, _ = a in
  check_bool "the crash fired" true (crashed = 1);
  check_bool "seeds independent (steps differ or equal, no crash)" true
    (a = a && b = b)

(* Exhaustive exploration of a backoff-equipped structure is still
   replay-deterministic: the policy lives inside setup. *)
let test_backoff_replay_determinism () =
  let setup ctx =
    let s = Treiber_stack.create ctx in
    let pol = Backoff.policy ~init:1 ~max:2 ~seed:9L () in
    {
      Runner.threads =
        [|
          Treiber_stack.push_retry ~backoff:pol s ~tid:(tid 0) (vi 1);
          Treiber_stack.push_retry ~backoff:pol s ~tid:(tid 1) (vi 2);
        |];
      observe = None;
      on_label = None;
    }
  in
  let runs = ref 0 in
  let stats =
    Explore.exhaustive ~setup ~fuel:40
      ~f:(fun o ->
        incr runs;
        check_bool "complete" true o.complete;
        let o', _ = Runner.replay ~setup o.schedule in
        check_bool "replays identically" true
          (History.equal o.history o'.history && o.results = o'.results))
      ()
  in
  check_bool "explored" true (stats.runs = !runs && !runs > 0)

(* ------------------------------------------- elimination-stack knobs -- *)

(* With degrade_after:1 every failed rendezvous sends the operation back
   to the central stack only; the object still verifies end-to-end. *)
let test_degraded_elim_stack_verifies () =
  let setup ctx =
    let es =
      Elimination_stack.create ~k:1 ~slot_strategy:Elim_array.All_slots
        ~degrade_after:1 ctx
    in
    {
      Runner.threads =
        [|
          Elimination_stack.push es ~tid:(tid 0) (vi 1);
          Elimination_stack.pop es ~tid:(tid 1);
        |];
      observe = None;
      on_label = None;
    }
  in
  let s = Workloads.Scenarios.elim_stack_push_pop ~k:1 () in
  let report =
    Verify.Obligations.check_object ~setup ~spec:s.spec ~view:s.view ~fuel:s.fuel ()
  in
  check_bool "degraded elimination stack verifies" true
    (Verify.Obligations.ok report);
  check_bool "bad degrade_after rejected" true
    (try
       ignore
         (Elimination_stack.create ~k:1 ~slot_strategy:Elim_array.All_slots
            ~degrade_after:0 (Ctx.create ()));
       false
     with Invalid_argument _ -> true)

(* The elimination stack (k=1) remains CAL under single crashes and single
   forced CAS failures. The full sweep is exact but slow, so routine runs
   bound it: preemption bound 1 per plan and a plan cap — still every
   fault point, many interleavings per fault (an underapproximation, as
   with CHESS context bounding). *)
let test_elim_stack_single_fault_sweep () =
  let s = Workloads.Scenarios.elim_stack_push_pop ~k:1 () in
  let checked = ref 0 in
  let stats =
    Explore.exhaustive_with_faults ~setup:s.setup ~fuel:s.fuel ~fault_bound:1
      ~preemption_bound:1 ~max_plans:12
      ~f:(fun o ->
        incr checked;
        match Verify.Obligations.check_outcome ~spec:s.spec ~view:s.view o with
        | Ok () -> ()
        | Error m -> Alcotest.failf "outcome under %a: %s" Fault.pp_plan o.faults m)
      ()
  in
  check_bool "plans explored" true (stats.plans > 1 && !checked > 0)

(* Satellite check: the online monitor riding exhaustive_with_faults against
   the post-hoc black-box checker, run by run, on the lost-update counter.
   The monitor is white-box — its realised trace is one concrete witness —
   so monitor acceptance must imply checker acceptance on every run, and on
   crash-free runs the two verdicts must coincide exactly. Under a thread
   crash they may legitimately diverge in one direction: the monitor already
   saw the crashed thread's logged element, while the black-box checker may
   drop that pending operation. *)
let test_monitor_agrees_with_checker_under_faults () =
  let s = Workloads.Scenarios.faulty_counter () in
  let wrapped, status = Verify.Monitor.wrap ~spec:s.spec ~view:s.view ~setup:s.setup in
  let runs = ref 0 and violations = ref 0 in
  let (_ : Explore.fault_stats) =
    Explore.exhaustive_with_faults ~setup:wrapped ~fuel:s.fuel ~fault_bound:1
      ~max_plans:10
      ~f:(fun o ->
        incr runs;
        let crashed =
          match crashed_tids o with [] -> None | tids -> Some tids
        in
        let checker_ok = Cal_checker.is_cal ?crashed ~spec:s.spec o.Runner.history in
        let monitor_ok = status () = `Ok in
        if monitor_ok && not checker_ok then
          Alcotest.failf
            "run %d under %a: monitor accepted a run the checker rejects" !runs
            Fault.pp_plan o.Runner.faults;
        if crashed = None && monitor_ok <> checker_ok then
          Alcotest.failf "run %d under %a: monitor says %b, checker says %b"
            !runs Fault.pp_plan o.Runner.faults monitor_ok checker_ok;
        if not monitor_ok then incr violations)
      ()
  in
  check_bool "explored" true (!runs > 0);
  check_bool "the bug was flagged by both" true (!violations > 0)

let () =
  Alcotest.run "faults"
    [
      ( "plans",
        [
          t "validate" test_validate;
          t "validate crash-system plans" test_validate_crash_system;
          t "delay applies before crash" test_delay_applies_before_crash;
          t "matches_label" test_matches_label;
        ] );
      ( "crashes",
        [
          t "crash before init" test_crash_before_init;
          t "crash after init can pair" test_crash_after_init_can_still_pair;
          t "crashed mode restricts drops" test_crashed_mode_restricts_drops;
          t "lin crashed mode" test_lin_crashed_mode;
          t "crashed mode rejects dropping live pending"
            test_crashed_mode_rejects_dropping_live_pending;
        ] );
      ( "forced failures",
        [
          t "fail_step forces branch" test_fail_step_forces_branch;
        ] );
      ( "stalls", [ t "stall freezes thread" test_stall_freezes_thread ] );
      ( "systematic",
        [
          t "exchanger under all single faults" test_exhaustive_with_faults_exchanger;
          t "faulty object still caught" test_faulty_object_still_caught;
          t "real exchanger ok" test_real_exchanger_ok_with_faults;
          t "elim stack single-fault sweep" test_elim_stack_single_fault_sweep;
          t "monitor agrees with post-hoc checker"
            test_monitor_agrees_with_checker_under_faults;
        ] );
      ( "backoff",
        [
          t "policy validation" test_backoff_policy_validation;
          t "determinism" test_backoff_determinism;
          t "replay determinism" test_backoff_replay_determinism;
          t "degraded elim stack" test_degraded_elim_stack_verifies;
        ] );
    ]
