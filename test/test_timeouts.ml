(* Tests for the deterministic logical-time layer: the context clock and
   per-thread skew, Delay faults, timed/cancellable operations on the
   blocking structures (exchanger, synchronous queue, dual queue,
   elimination array), replay determinism under Delay plans, and the
   liveness watchdog with its Completed/Deadlocked/Starved/Livelocked
   classification. *)

open Cal
open Conc
open Conc.Prog.Infix
open Structures
open Test_support
module S = Workloads.Scenarios

let t name f = Alcotest.test_case name `Quick f
let no_observe threads = { Runner.threads; observe = None; on_label = None }
let d thread = { Runner.thread; branch = 0 }

(* drive a single-threaded program to completion and return the outcome *)
let run_solo ?plan ~setup () =
  let rec drive sched =
    let o, frontier = Runner.replay ?plan ~setup sched in
    match frontier with [] -> o | dd :: _ -> drive (sched @ [ dd ])
  in
  drive []

(* ------------------------------------------------------ clock and skew -- *)

let test_clock_ticks () =
  let ctx_ref = ref None in
  let setup ctx =
    ctx_ref := Some ctx;
    no_observe [| Prog.seq [ Prog.yield; Prog.yield; Prog.yield ] >>= fun () ->
                  Prog.return Value.unit |]
  in
  let o = run_solo ~setup () in
  let ctx = Option.get !ctx_ref in
  check_bool "one tick per decision" true (Ctx.now ctx = o.Runner.steps);
  check_bool "clock advanced" true (Ctx.now ctx > 0)

let test_skew () =
  let ctx = Ctx.create () in
  check_bool "starts at zero" true (Ctx.now ctx = 0);
  Ctx.tick ctx;
  Ctx.tick ctx;
  check_bool "ticked twice" true (Ctx.now ctx = 2);
  check_bool "default factor" true (Ctx.skew_factor ctx ~thread:5 = 1);
  Ctx.set_skew ctx ~thread:1 ~factor:3;
  check_bool "skewed local time" true (Ctx.local_now ctx ~tid:(tid 1) = 6);
  check_bool "unskewed local time" true (Ctx.local_now ctx ~tid:(tid 0) = 2);
  Ctx.set_skew ctx ~thread:1 ~factor:5;
  check_bool "skew replaced" true (Ctx.skew_factor ctx ~thread:1 = 5);
  let raises f = try f (); false with Invalid_argument _ -> true in
  check_bool "factor 0 rejected" true
    (raises (fun () -> Ctx.set_skew ctx ~thread:0 ~factor:0));
  check_bool "negative thread rejected" true
    (raises (fun () -> Ctx.set_skew ctx ~thread:(-1) ~factor:2))

let test_delay_validation () =
  let ok p = check_bool "valid" true (Result.is_ok (Fault.validate p)) in
  let bad p = check_bool "invalid" true (Result.is_error (Fault.validate p)) in
  ok [ Fault.delay ~thread:0 ~factor:2 ];
  ok [ Fault.delay ~thread:0 ~factor:2; Fault.delay ~thread:1 ~factor:4 ];
  ok [ Fault.delay ~thread:0 ~factor:2; Fault.crash ~thread:1 ~at_step:1 ];
  bad [ Fault.delay ~thread:0 ~factor:1 ];
  bad [ Fault.delay ~thread:0 ~factor:0 ];
  bad [ Fault.delay ~thread:(-1) ~factor:2 ];
  bad [ Fault.delay ~thread:0 ~factor:2; Fault.delay ~thread:0 ~factor:3 ]

(* --------------------------------------------------- create validation -- *)

let test_exchanger_create_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "negative wait rejected" true
    (raises (fun () -> Exchanger.create ~wait:(-1) (Ctx.create ())));
  check_bool "wait and backoff together rejected" true
    (raises (fun () ->
         Exchanger.create ~wait:1 ~backoff:(Backoff.policy ()) (Ctx.create ())));
  check_bool "zero wait accepted" true
    (try ignore (Exchanger.create ~wait:0 (Ctx.create ())); true
     with Invalid_argument _ -> false);
  check_bool "backoff alone accepted" true
    (try ignore (Exchanger.create ~backoff:(Backoff.policy ()) (Ctx.create ())); true
     with Invalid_argument _ -> false)

(* ------------------------------------------------------ Prog.timed/poll -- *)

let test_prog_timed_guard () =
  let ctx_ref = ref None in
  let setup ctx =
    ctx_ref := Some ctx;
    no_observe
      [|
        Prog.timed
          ~expired:(fun () -> Ctx.now ctx >= 2)
          ~on_timeout:(fun () -> Prog.return (Value.int 99))
          (fun () -> None);
        Prog.seq [ Prog.yield; Prog.yield; Prog.yield ] >>= fun () ->
        Prog.return Value.unit;
      |]
  in
  (* at clock 0 the guard is neither ready nor expired: t0 is blocked *)
  let _, frontier0 = Runner.replay ~setup [] in
  check_bool "waiter blocked before expiry" true
    (List.for_all (fun (dd : Runner.decision) -> dd.thread = 1) frontier0);
  (* two peer decisions push the clock to 2; the guard then times out *)
  let rec drive sched =
    let o, frontier = Runner.replay ~setup sched in
    match frontier with
    | [] -> o
    | ds ->
        let next =
          match List.find_opt (fun (dd : Runner.decision) -> dd.thread = 1) ds with
          | Some dd -> dd
          | None -> List.hd ds
        in
        drive (sched @ [ next ])
  in
  let o = drive [] in
  check_bool "timed guard fired" true
    (o.Runner.results.(0) = Some (Value.int 99))

(* ---------------------------------------------------- timed exchanger -- *)

let solo_timed_setup ~deadline ctx =
  let ex = Exchanger.create ~wait:1 ctx in
  no_observe [| Exchanger.exchange_timed ex ~tid:(tid 0) ~deadline (Value.int 5) |]

let test_solo_timed_exchanger_times_out () =
  let saw = ref 0 in
  let stats =
    Explore.exhaustive ~setup:(solo_timed_setup ~deadline:3) ~fuel:40
      ~f:(fun o ->
        incr saw;
        check_bool "complete" true o.Runner.complete;
        match o.Runner.results.(0) with
        | Some v -> check_bool "timed out" true (Value.is_timeout v)
        | None -> check_bool "has result" true false)
      ()
  in
  check_bool "at least one run" true (!saw >= 1 && stats.Explore.runs = !saw);
  (* the Timeout CA-element satisfies the obligations *)
  let r =
    Verify.Obligations.check_object ~setup:(solo_timed_setup ~deadline:3)
      ~spec:(Spec_exchanger.spec ()) ~view:View.identity ~fuel:40 ()
  in
  check_bool "obligations ok" true (Verify.Obligations.ok r)

let test_delay_shortens_solo_timeout () =
  let steps ~plan =
    let got = ref None in
    let _ =
      Explore.exhaustive ~plan ~setup:(solo_timed_setup ~deadline:8) ~fuel:80
        ~f:(fun o ->
          check_bool "still times out" true
            (match o.Runner.results.(0) with
            | Some v -> Value.is_timeout v
            | None -> false);
          got := Some o.Runner.steps)
        ()
    in
    Option.get !got
  in
  let plain = steps ~plan:[] in
  let delayed = steps ~plan:[ Fault.delay ~thread:0 ~factor:4 ] in
  check_bool "delay makes the deadline fire early" true (delayed < plain)

let test_timed_pair_behaviours () =
  let s = S.exchanger_timed_pair () in
  let saw_swap = ref false and saw_timeout = ref false in
  let _ =
    Explore.exhaustive ~setup:s.S.setup ~fuel:s.S.fuel
      ~f:(fun o ->
        check_bool "complete" true o.Runner.complete;
        match (o.Runner.results.(0), o.Runner.results.(1)) with
        | Some a, Some b ->
            if Value.is_timeout a && Value.is_timeout b then saw_timeout := true
            else if (not (Value.is_timeout a)) && not (Value.is_timeout b) then
              saw_swap := true
            else
              (* a swap pairs both threads; a timeout is its own element —
                 one side can never swap while the other times out *)
              check_bool "mixed swap/timeout outcome" true false
        | _ -> check_bool "results present" true false)
      ()
  in
  check_bool "some schedule swaps" true !saw_swap;
  check_bool "some schedule times out" true !saw_timeout;
  check_bool "obligations hold on every schedule" true (scenario_ok s)

let test_replay_determinism_with_delay () =
  let s = S.exchanger_timed_pair () in
  let plan = [ Fault.delay ~thread:1 ~factor:2 ] in
  let witness = ref None in
  let _ =
    Explore.exhaustive ~plan ~setup:s.S.setup ~fuel:s.S.fuel
      ~f:(fun o -> if !witness = None then witness := Some o)
      ()
  in
  let o = Option.get !witness in
  let o1, _ = Runner.replay ~plan ~setup:s.S.setup o.Runner.schedule in
  let o2, _ = Runner.replay ~plan ~setup:s.S.setup o.Runner.schedule in
  check_bool "same history as the exploration" true
    (History.equal o.Runner.history o1.Runner.history);
  check_bool "replay is reproducible" true
    (History.equal o1.Runner.history o2.Runner.history);
  check_bool "same results" true (o1.Runner.results = o2.Runner.results);
  check_bool "same trace" true (Ca_trace.equal o1.Runner.trace o2.Runner.trace)

let test_timed_with_crash_plan () =
  let s = S.exchanger_timed_pair () in
  let plan = [ Fault.crash ~thread:1 ~at_step:1 ] in
  let spec = s.S.spec and view = s.S.view in
  let survivor_timed_out = ref false in
  let _ =
    Explore.exhaustive ~plan ~setup:s.S.setup ~fuel:s.S.fuel
      ~f:(fun o ->
        check_bool "obligations hold under the crash" true
          (Result.is_ok (Verify.Obligations.check_outcome ~spec ~view o));
        match o.Runner.results.(0) with
        | Some v when Value.is_timeout v -> survivor_timed_out := true
        | _ -> ())
      ()
  in
  check_bool "survivor times out in some run" true !survivor_timed_out

let test_timed_fault_sweep () =
  (* crashes, forced CAS failures (including cancel-cas), and clock delays:
     the obligations hold over the whole single-fault sweep *)
  let s = S.exchanger_timed_pair () in
  let r =
    Verify.Obligations.check_object_with_faults ~delay_factors:[ 2 ]
      ~setup:s.S.setup ~spec:s.S.spec ~view:s.S.view ~fuel:s.S.fuel
      ~max_plans:80 ~fault_bound:1 ()
  in
  check_bool "fault sweep ok" true (Verify.Obligations.ok r);
  check_bool "sweep explored runs" true (r.Verify.Obligations.runs > 0)

(* ------------------------------------------------ timed sync queue ----- *)

let test_sync_queue_take_timed_solo () =
  let setup ctx =
    let q = Sync_queue.create ~wait:1 ctx in
    no_observe [| Sync_queue.take_timed q ~tid:(tid 0) ~deadline:3 |]
  in
  let o = run_solo ~setup () in
  check_bool "solo take times out" true
    (match o.Runner.results.(0) with
    | Some v -> Value.is_timeout v
    | None -> false);
  let probe = Sync_queue.create (Ctx.create ()) in
  let r =
    Verify.Obligations.check_object ~setup ~spec:(Sync_queue.spec probe)
      ~view:(Sync_queue.view probe) ~fuel:40 ()
  in
  check_bool "obligations ok" true (Verify.Obligations.ok r)

let test_sync_queue_timed_pair () =
  let setup ctx =
    let q = Sync_queue.create ~wait:1 ctx in
    no_observe
      [|
        Sync_queue.put_timed q ~tid:(tid 0) ~deadline:5 (Value.int 7);
        Sync_queue.take_timed q ~tid:(tid 1) ~deadline:5;
      |]
  in
  let saw_rendezvous = ref false and saw_timeout = ref false in
  let _ =
    Explore.exhaustive ~setup ~fuel:60
      ~f:(fun o ->
        check_bool "complete" true o.Runner.complete;
        match (o.Runner.results.(0), o.Runner.results.(1)) with
        | Some a, Some b ->
            if Value.is_timeout a || Value.is_timeout b then saw_timeout := true
            else saw_rendezvous := true
        | _ -> check_bool "results present" true false)
      ()
  in
  check_bool "some schedule hands off" true !saw_rendezvous;
  check_bool "some schedule times out" true !saw_timeout;
  let probe = Sync_queue.create (Ctx.create ()) in
  let r =
    Verify.Obligations.check_object ~setup ~spec:(Sync_queue.spec probe)
      ~view:(Sync_queue.view probe) ~fuel:60 ()
  in
  check_bool "obligations ok" true (Verify.Obligations.ok r)

(* ------------------------------------------------- timed dual queue ---- *)

let test_dual_queue_deq_timed_solo () =
  let setup ctx =
    let q = Dual_queue.create ctx in
    no_observe [| Dual_queue.deq_timed q ~tid:(tid 0) ~deadline:3 |]
  in
  let o = run_solo ~setup () in
  check_bool "lone consumer cancels" true
    (match o.Runner.results.(0) with
    | Some v -> Value.is_cancelled v
    | None -> false);
  let probe = Dual_queue.create (Ctx.create ()) in
  let r =
    Verify.Obligations.check_object ~setup ~spec:(Dual_queue.spec probe)
      ~view:(Dual_queue.view probe) ~fuel:40 ()
  in
  check_bool "obligations ok" true (Verify.Obligations.ok r)

let test_dual_queue_deq_timed_raced () =
  let setup ctx =
    let q = Dual_queue.create ctx in
    no_observe
      [|
        Dual_queue.enq q ~tid:(tid 0) (Value.int 7);
        Dual_queue.deq_timed q ~tid:(tid 1) ~deadline:4;
      |]
  in
  let saw_value = ref false and saw_cancel = ref false in
  let probe = Dual_queue.create (Ctx.create ()) in
  let spec = Dual_queue.spec probe and view = Dual_queue.view probe in
  let _ =
    Explore.exhaustive ~setup ~fuel:50
      ~f:(fun o ->
        check_bool "obligations hold" true
          (Result.is_ok (Verify.Obligations.check_outcome ~spec ~view o));
        match o.Runner.results.(1) with
        | Some v when Value.is_cancelled v -> saw_cancel := true
        | Some _ -> saw_value := true
        | None -> ())
      ()
  in
  check_bool "some schedule delivers the value" true !saw_value;
  check_bool "some schedule cancels" true !saw_cancel

(* --------------------------------------------- timed elimination array -- *)

let test_elim_array_timed () =
  let setup ctx =
    let ar = Elim_array.create ~k:1 ~slot_strategy:Elim_array.All_slots ctx in
    no_observe
      [|
        Elim_array.exchange_timed ar ~tid:(tid 0) ~deadline:4 (Value.int 3);
        Elim_array.exchange_timed ar ~tid:(tid 1) ~deadline:4 (Value.int 4);
      |]
  in
  let saw_swap = ref false and saw_timeout = ref false in
  let _ =
    Explore.exhaustive ~setup ~fuel:60
      ~f:(fun o ->
        check_bool "complete" true o.Runner.complete;
        match o.Runner.results.(0) with
        | Some v when Value.is_timeout v -> saw_timeout := true
        | Some _ -> saw_swap := true
        | None -> ())
      ()
  in
  check_bool "array swap" true !saw_swap;
  check_bool "array timeout" true !saw_timeout

let test_elim_array_abstract_timed_rejected () =
  let setup ctx =
    let ar =
      Elim_array.create ~factory:Elim_array.abstract ~k:1
        ~slot_strategy:Elim_array.All_slots ctx
    in
    no_observe
      [| Elim_array.exchange_timed ar ~tid:(tid 0) ~deadline:4 (Value.int 3) |]
  in
  check_bool "abstract slot rejects timed exchange" true
    (try
       ignore (run_solo ~setup ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------- liveness watchdog --- *)

(* two timed exchangers with a far-away deadline and a 1-tick pairing
   window: unless a schedule lines the offers up, both threads
   install/poll/cancel/clean forever — the canonical cancel-and-retry
   livelock *)
let livelock_setup ctx =
  let ex = Exchanger.create ~wait:1 ctx in
  no_observe
    [|
      Exchanger.exchange_timed ex ~tid:(tid 0) ~deadline:100 (Value.int 3);
      Exchanger.exchange_timed ex ~tid:(tid 1) ~deadline:100 (Value.int 4);
    |]

let test_watchdog_flags_livelock () =
  let stats = Explore.liveness ~setup:livelock_setup ~fuel:16 ~window:8 () in
  check_bool "livelocks found" true (stats.Explore.live_livelocked > 0);
  check_bool "witnesses recorded" true (stats.Explore.livelocks <> []);
  let sched, plan = List.hd stats.Explore.livelocks in
  check_bool "watchdog agrees on the witness" true
    (Explore.watchdog ~plan ~setup:livelock_setup ~window:8 sched
    = Explore.Livelocked)

let test_watchdog_starvation_excused () =
  let spin n =
    let rec go k =
      if k = 0 then Prog.return Value.unit else Prog.yield >>= fun () -> go (k - 1)
    in
    go n
  in
  let setup _ctx = no_observe [| spin 20; spin 20 |] in
  (* scheduling only t0 leaves t1 enabled and idle for the whole run *)
  let sched = List.init 10 (fun _ -> d 0) in
  check_bool "unfair schedule classified as starvation" true
    (match Explore.watchdog ~setup ~window:4 sched with
    | Explore.Starved ts -> List.mem 1 ts
    | _ -> false);
  let stats = Explore.liveness ~setup ~fuel:10 ~window:4 () in
  check_bool "liveness sees starved runs" true (stats.Explore.live_starved > 0)

let test_watchdog_deadlock () =
  (* a lone untimed dual-queue consumer blocks on its reservation: the
     clock freezes with it, which is a deadlock, not a livelock *)
  let setup ctx =
    let q = Dual_queue.create ctx in
    no_observe [| Dual_queue.deq q ~tid:(tid 0) |]
  in
  let rec drive sched =
    let _, frontier = Runner.replay ~setup sched in
    match frontier with [] -> sched | dd :: _ -> drive (sched @ [ dd ])
  in
  let sched = drive [] in
  check_bool "blocked waiter is a deadlock" true
    (Explore.watchdog ~setup ~window:4 sched = Explore.Deadlocked);
  let stats = Explore.liveness ~setup ~fuel:20 ~window:4 () in
  check_bool "liveness: all runs deadlock" true
    (stats.Explore.live_deadlocked = stats.Explore.live_runs
    && stats.Explore.live_livelocked = 0)

let test_watchdog_window_validation () =
  check_bool "window 0 rejected" true
    (try
       ignore (Explore.watchdog ~setup:livelock_setup ~window:0 []);
       false
     with Invalid_argument _ -> true)

let test_liveness_obligation_timed_pair () =
  (* with a reachable deadline every run finishes: the timed exchanger
     passes the liveness obligation outright *)
  let s = S.exchanger_timed_pair () in
  let r =
    Verify.Obligations.check_liveness ~setup:s.S.setup ~fuel:s.S.fuel ~window:8 ()
  in
  check_bool "liveness obligation ok" true (Verify.Obligations.ok r);
  check_bool "runs counted" true (r.Verify.Obligations.runs > 0);
  check_bool "every run completes" true
    (r.Verify.Obligations.complete_runs = r.Verify.Obligations.runs)

let test_liveness_degraded_elim_stack () =
  (* graceful degradation bounds the elimination detour: no fair schedule
     spins the push/pop pair forever *)
  let setup ctx =
    let es =
      Elimination_stack.create ~degrade_after:2 ~k:1
        ~slot_strategy:Elim_array.All_slots ctx
    in
    no_observe
      [|
        Elimination_stack.push es ~tid:(tid 0) (Value.int 5);
        Elimination_stack.pop es ~tid:(tid 1);
      |]
  in
  let stats =
    Explore.liveness ~setup ~fuel:26 ~window:8 ~preemption_bound:2 ()
  in
  check_bool "no livelock under degradation" true
    (stats.Explore.live_livelocked = 0);
  check_bool "some runs complete" true (stats.Explore.live_completed > 0)

let test_liveness_with_faults_timed_pair () =
  let s = S.exchanger_timed_pair () in
  let plans, stats =
    Explore.liveness_with_faults ~delay_factors:[ 2 ] ~setup:s.S.setup
      ~fuel:s.S.fuel ~window:8 ~max_plans:40 ~fault_bound:1 ()
  in
  check_bool "several plans" true (plans > 1);
  check_bool "no livelock across the sweep" true
    (stats.Explore.live_livelocked = 0);
  check_bool "starvation never flagged" true (stats.Explore.live_starved = 0)

let () =
  Alcotest.run "timeouts"
    [
      ( "clock",
        [
          t "clock ticks with decisions" test_clock_ticks;
          t "skew and local_now" test_skew;
          t "delay plan validation" test_delay_validation;
        ] );
      ( "primitives",
        [
          t "exchanger create validation" test_exchanger_create_validation;
          t "Prog.timed guard" test_prog_timed_guard;
        ] );
      ( "timed exchanger",
        [
          t "solo times out" test_solo_timed_exchanger_times_out;
          t "delay shortens the wait" test_delay_shortens_solo_timeout;
          t "pair: swap and timeout schedules" test_timed_pair_behaviours;
          t "replay determinism under delay" test_replay_determinism_with_delay;
          t "timed + crash plan" test_timed_with_crash_plan;
          t "single-fault sweep" test_timed_fault_sweep;
        ] );
      ( "timed queues",
        [
          t "sync queue: solo take times out" test_sync_queue_take_timed_solo;
          t "sync queue: timed pair" test_sync_queue_timed_pair;
          t "dual queue: lone consumer cancels" test_dual_queue_deq_timed_solo;
          t "dual queue: raced cancel" test_dual_queue_deq_timed_raced;
        ] );
      ( "timed elimination array",
        [
          t "concrete slots" test_elim_array_timed;
          t "abstract slots rejected" test_elim_array_abstract_timed_rejected;
        ] );
      ( "liveness watchdog",
        [
          t "flags cancel-and-retry livelock" test_watchdog_flags_livelock;
          t "starvation is excused" test_watchdog_starvation_excused;
          t "blocking is a deadlock" test_watchdog_deadlock;
          t "window validation" test_watchdog_window_validation;
          t "liveness obligation: timed pair" test_liveness_obligation_timed_pair;
          t "liveness: degraded elimination stack" test_liveness_degraded_elim_stack;
          t "liveness over the fault sweep" test_liveness_with_faults_timed_pair;
        ] );
    ]
