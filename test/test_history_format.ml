(* Tests for the textual history/trace format: parsing, printing, and
   round-trips (including property-based round-trips on generated data). *)

open Cal
open Test_support

let t name f = Alcotest.test_case name `Quick f

let test_parse_values () =
  let ok s v =
    match History_format.parse_value s with
    | Ok v' -> Alcotest.check value s v v'
    | Error m -> Alcotest.fail (s ^ ": " ^ m)
  in
  ok "42" (vi 42);
  ok "-7" (vi (-7));
  ok "true" (Value.bool true);
  ok "false" (Value.bool false);
  ok "()" Value.unit;
  ok "\"hello\"" (Value.str "hello");
  ok "(1, 2)" (Value.pair (vi 1) (vi 2));
  ok "( true , 3 )" (Value.ok (vi 3));
  ok "[]" (Value.list []);
  ok "[1; 2; 3]" (Value.list [ vi 1; vi 2; vi 3 ]);
  ok "((1, 2), [true; ()])"
    (Value.pair (Value.pair (vi 1) (vi 2)) (Value.list [ Value.bool true; Value.unit ]))

let test_parse_value_errors () =
  let bad s =
    match History_format.parse_value s with
    | Error _ -> ()
    | Ok v -> Alcotest.fail (Fmt.str "%s parsed as %a" s Value.pp v)
  in
  bad "";
  bad "(1, 2";
  bad "[1; 2";
  bad "\"unterminated";
  bad "1 2";
  bad "-";
  bad "truex"

let test_parse_history () =
  let text =
    {|# a swap
t1 inv E.exchange 3
t2 inv E.exchange 4
t1 res E.exchange (true, 4)
t2 res E.exchange (true, 3)
|}
  in
  match History_format.parse_history text with
  | Ok h ->
      Alcotest.(check int) "four actions" 4 (History.length h);
      check_bool "complete" true (History.is_complete h);
      check_bool "CAL" true (is_cal (Spec_exchanger.spec ()) h)
  | Error m -> Alcotest.fail m

let test_parse_history_errors () =
  (match History_format.parse_history "t1 foo E.exchange 3" with
  | Error m -> check_bool "line number" true (String.length m > 0 && String.sub m 0 4 = "line")
  | Ok _ -> Alcotest.fail "expected error");
  (match History_format.parse_history "x1 inv E.exchange 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad tid accepted");
  match History_format.parse_history "t1 inv Eexchange 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad target accepted"

let test_history_roundtrip () =
  let h =
    History.of_list
      [
        inv 1 (vi 3);
        inv ~oid:s_oid ~fid:(fid "push") 2 (Value.str "x");
        res 1 (ok_int 4);
        res ~oid:s_oid ~fid:(fid "push") 2 (Value.bool true);
      ]
  in
  match History_format.parse_history (History_format.print_history h) with
  | Ok h' -> Alcotest.check history "roundtrip" h h'
  | Error m -> Alcotest.fail m

let test_trace_roundtrip () =
  let tr = Workloads.Paper_examples.swap_trace in
  match History_format.parse_trace (History_format.print_trace tr) with
  | Ok tr' -> Alcotest.check trace "roundtrip" tr tr'
  | Error m -> Alcotest.fail m

let test_trace_with_bracketed_oids () =
  let sub = oid "AR[0]" in
  let tr = [ Spec_exchanger.swap ~oid:sub (tid 1) (vi 3) (tid 2) (vi 4) ] in
  match History_format.parse_trace (History_format.print_trace tr) with
  | Ok tr' -> Alcotest.check trace "roundtrip" tr tr'
  | Error m -> Alcotest.fail m

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

let prop_history_roundtrip seed =
  let g = Workloads.Gen.create ~seed:(Int64.of_int (seed + 5)) in
  let tr = Workloads.Gen.exchanger_trace g ~oid:e_oid ~threads:4 ~elements:5 in
  let h = Workloads.Gen.history_of_trace g tr in
  match History_format.parse_history (History_format.print_history h) with
  | Ok h' -> History.equal h h'
  | Error _ -> false

let prop_trace_roundtrip seed =
  let g = Workloads.Gen.create ~seed:(Int64.of_int (seed + 11)) in
  let tr = Workloads.Gen.stack_trace g ~oid:s_oid ~threads:3 ~elements:6 in
  match History_format.parse_trace (History_format.print_trace tr) with
  | Ok tr' -> Ca_trace.equal tr tr'
  | Error _ -> false

(* ------------------------------------- adversarial-input hardening -- *)

(* Every parser entry point is total: any byte string comes back as
   [Ok]/[Error], never an exception. The generator mixes raw bytes with
   format-flavoured fragments so the interesting branches (values,
   targets, crash markers) actually get hit. *)
let arb_hostile =
  let open QCheck.Gen in
  let fragment =
    oneof
      [
        string_size ~gen:(char_range '\000' '\255') (int_bound 30);
        oneofl
          [
            "t1 inv E.exchange "; "t1 res "; "crash "; "crash 99999999999";
            "("; ")"; "["; "]"; ";"; ","; "\""; "=>"; ":"; ".";
            "E: (t1, exchange(3) => "; "-"; "9999999999999999999999";
            "true"; "#"; "\n"; " ";
          ];
      ]
  in
  let gen = map (String.concat "") (list_size (int_bound 12) fragment) in
  QCheck.make ~print:(Printf.sprintf "%S") gen

let prop_no_exceptions s =
  let total f =
    match f s with Ok _ | Error _ -> true | exception _ -> false
  in
  total History_format.parse_value
  && total History_format.parse_action
  && total History_format.parse_history
  && total History_format.parse_trace

let test_deep_nesting_is_error () =
  (* Past the depth cap the parser must answer [Error], not blow the
     stack: 10_000 levels overflowed before the cap existed. *)
  let deep n = String.concat "" [ String.make n '['; "1"; String.make n ']' ] in
  (match History_format.parse_value (deep 10_000) with
  | Error m -> check_bool "mentions nesting" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "10k-deep nesting accepted");
  (match History_format.parse_value (deep History_format.max_value_depth) with
  | Error _ -> Alcotest.fail "nesting at the cap rejected"
  | Ok _ -> ());
  match
    History_format.parse_history
      ("t1 inv E.exchange " ^ deep (2 * History_format.max_value_depth))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "deep nesting accepted inside a history line"

let test_long_line_is_error () =
  let long = "t1 inv E.exchange " ^ String.make History_format.max_line_length 'x' in
  (match History_format.parse_history long with
  | Error m ->
      check_bool "line number" true (String.sub m 0 4 = "line");
      let contains ~sub s =
        let n = String.length sub in
        let rec at i = i + n <= String.length s
          && (String.sub s i n = sub || at (i + 1)) in
        at 0
      in
      check_bool "says too long" true (contains ~sub:"too long" m)
  | Ok _ -> Alcotest.fail "over-long line accepted");
  match History_format.parse_trace long with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "over-long trace line accepted"

let test_int_overflow_is_error () =
  match History_format.parse_value "99999999999999999999999999" with
  | Error m -> check_bool "structured" true (String.length m > 0)
  | Ok v -> Alcotest.fail (Fmt.str "overflowing integer parsed as %a" Value.pp v)

let test_empty_object_name_is_error () =
  match History_format.parse_trace ": (t1, exchange(3) => (true, 4))" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty object name accepted"

let () =
  Alcotest.run "history_format"
    [
      ( "values",
        [ t "parse" test_parse_values; t "errors" test_parse_value_errors ] );
      ( "histories",
        [
          t "parse" test_parse_history;
          t "errors" test_parse_history_errors;
          t "roundtrip" test_history_roundtrip;
        ] );
      ( "traces",
        [
          t "roundtrip" test_trace_roundtrip;
          t "bracketed oids" test_trace_with_bracketed_oids;
        ] );
      ( "properties",
        [
          qtest ~count:200 "history roundtrip" arb_seed prop_history_roundtrip;
          qtest ~count:200 "trace roundtrip" arb_seed prop_trace_roundtrip;
        ] );
      ( "hardening",
        [
          t "deep nesting" test_deep_nesting_is_error;
          t "long line" test_long_line_is_error;
          t "integer overflow" test_int_overflow_is_error;
          t "empty object name" test_empty_object_name_is_error;
          qtest ~count:500 "no fuzzed input raises" arb_hostile
            prop_no_exceptions;
        ] );
    ]
