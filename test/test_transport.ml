(* End-to-end tests of the Unix-domain-socket transport: a forked child
   runs the daemon loop, the parent speaks the wire protocol. Covers the
   happy path (events stream back per connection), per-connection fault
   containment (a hostile over-long line costs only its own connection),
   the bounded-accept busy reply, and graceful SIGTERM drain with a
   journal snapshot on the way down. *)

open Cal
open Test_support
module Config = Service.Config
module Core = Service.Core
module Transport = Service.Transport
module Journal = Service.Journal

let t name f = Alcotest.test_case name `Quick f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then (
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path

let scratch =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "cal-transport-%d-%d" (Unix.getpid ()) !counter)

let spec_for oid = Some (Spec_counter.spec ~oid ())

let small_config =
  { Config.default with
    max_sessions = 8; max_pending = 4; window_max = 12; memory_budget = 64 }

(* Fork a daemon serving [sock]; on drain it writes its final metrics
   line to [result_file]. The child never returns into alcotest. *)
let fork_server ?journal_dir ~sock ~max_conns ~result_file () =
  match Unix.fork () with
  | 0 ->
      let status =
        try
          let core =
            match Core.create ~config:small_config ~spec_for () with
            | Ok c -> c
            | Error _ -> exit 2
          in
          let journal =
            match journal_dir with
            | None -> None
            | Some dir -> (
                match
                  Journal.create ~dir
                    ~durability:Config.default_durability ()
                with
                | Ok w -> Some w
                | Error _ -> exit 2)
          in
          let pump =
            Transport.create_pump ~core ?journal ~tick_every:4 ()
          in
          match Transport.serve_socket ~pump ~path:sock ~max_conns () with
          | Error _ -> 3
          | Ok () -> (
              let m = Core.metrics (Transport.pump_core pump) in
              Out_channel.with_open_text result_file (fun oc ->
                  Fmt.pf
                    (Format.formatter_of_out_channel oc)
                    "frames=%d ops=%d violations=%d@." m.Core.frames
                    m.Core.ops m.Core.violations);
              match Transport.finalize pump with
              | Ok _ -> 0
              | Error _ -> 4)
        with _ -> 5
      in
      Unix._exit status
  | pid ->
      (* wait for the socket to come up *)
      let rec wait n =
        if n = 0 then Alcotest.fail "server socket never appeared"
        else if Sys.file_exists sock then ()
        else (
          Unix.sleepf 0.02;
          wait (n - 1))
      in
      wait 250;
      pid

let stop_server pid =
  Unix.kill pid Sys.sigterm;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code ->
      Alcotest.(check int) "server drained cleanly" 0 code
  | _, _ -> Alcotest.fail "server did not exit"

let connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let send fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let recv_all fd =
  let b = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes b chunk 0 n;
        go ()
  in
  (try go () with Unix.Unix_error _ -> ());
  Buffer.contents b

(* send a whole request, half-close, read the full reply *)
let round_trip sock lines =
  let fd = connect sock in
  send fd (String.concat "" (List.map (fun l -> l ^ "\n") lines));
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let reply = recv_all fd in
  Unix.close fd;
  reply

let counter_lines o n =
  List.concat
    (List.init n (fun i ->
         [ Fmt.str "t1 inv %s.incr ()" o; Fmt.str "t1 res %s.incr %d" o i ]))

let count_lines needle s =
  String.split_on_char '\n' s
  |> List.filter (fun l ->
         String.length l >= String.length needle
         && String.sub l 0 (String.length needle) = needle)
  |> List.length

let test_events_stream_back () =
  let sock = scratch () and result = scratch () in
  let pid = fork_server ~sock ~max_conns:4 ~result_file:result () in
  let reply = round_trip sock (counter_lines "C" 3) in
  Alcotest.(check int) "three commits echoed" 3
    (count_lines "committed oid=C" reply);
  let reply = round_trip sock [ "utter garbage" ] in
  Alcotest.(check int) "structured error echoed" 1
    (count_lines "error frame=" reply);
  stop_server pid;
  let summary = In_channel.with_open_text result In_channel.input_all in
  Alcotest.(check string) "drain summary accounts for every frame"
    "frames=7 ops=3 violations=0\n" summary;
  Sys.remove result

let test_hostile_connection_is_contained () =
  let sock = scratch () and result = scratch () in
  let pid = fork_server ~sock ~max_conns:4 ~result_file:result () in
  (* A sends an unterminated line beyond the transport cap: only A dies. *)
  let a = connect sock in
  let junk = String.make 8192 'x' in
  (try
     for _ = 1 to (Transport.max_line_bytes / 8192) + 2 do
       send a junk
     done
   with Unix.Unix_error _ -> ());
  let b_reply = round_trip sock (counter_lines "D" 2) in
  Alcotest.(check int) "sibling connection still verifies" 2
    (count_lines "committed oid=D" b_reply);
  (* A is gone: its socket reaches EOF. *)
  Alcotest.(check string) "hostile connection dropped" "" (recv_all a);
  Unix.close a;
  stop_server pid;
  Sys.remove result

let test_busy_reject_beyond_max_conns () =
  let sock = scratch () and result = scratch () in
  let pid = fork_server ~sock ~max_conns:1 ~result_file:result () in
  let a = connect sock in
  (* Force the server to register A before B shows up. *)
  send a "t1 inv C.incr ()\n";
  Unix.sleepf 0.3;
  let b = connect sock in
  let b_reply = recv_all b in
  Alcotest.(check string) "over-capacity connection told busy" "busy\n"
    b_reply;
  Unix.close b;
  Unix.close a;
  stop_server pid;
  Sys.remove result

let test_sigterm_drain_cuts_a_snapshot () =
  let sock = scratch () and result = scratch () in
  let jdir = scratch () in
  let pid =
    fork_server ~journal_dir:jdir ~sock ~max_conns:4 ~result_file:result ()
  in
  ignore (round_trip sock (counter_lines "C" 4));
  stop_server pid;
  (* The drain finalized the journal: one snapshot, nothing to replay. *)
  (match Journal.recover ~dir:jdir with
  | Error m -> Alcotest.fail ("journal unreadable after drain: " ^ m)
  | Ok r ->
      check_bool "final snapshot present" true
        (r.Journal.core_snapshot <> None);
      Alcotest.(check int) "journal fully covered by the final snapshot" 0
        r.Journal.replayed;
      Alcotest.(check int) "nothing lost" 0 r.Journal.dropped_bytes);
  rm_rf jdir;
  Sys.remove result

let () =
  Alcotest.run "transport"
    [
      ( "socket",
        [
          t "events stream back per connection" test_events_stream_back;
          t "hostile connection is contained"
            test_hostile_connection_is_contained;
          t "busy reject beyond max-conns" test_busy_reject_beyond_max_conns;
          t "sigterm drain cuts a snapshot" test_sigterm_drain_cuts_a_snapshot;
        ] );
    ]
