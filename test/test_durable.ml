(* Tests for durable CA-linearizability: persistent cells, the runner's
   crash transition and its byte-for-byte replay, crash markers in
   histories and the history format, the durable modes of both checkers
   ("persisted or lost" for crash-pending operations, no CA-element across
   a crash), the crash-point exploration, the end-to-end durable
   obligations on the durable stack / queue and the missing-flush bug, and
   the crash-aware monitor. *)

open Cal
open Conc
open Structures
open Test_support
module S = Workloads.Scenarios

let t name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------- pcell -- *)

let test_pcell_semantics () =
  let dom = Pcell.domain () in
  let c = Pcell.create dom 0 in
  Alcotest.(check int) "initial volatile" 0 (Pcell.read c);
  Alcotest.(check int) "initial durable" 0 (Pcell.persisted c);
  Pcell.write c 5;
  Alcotest.(check int) "write is volatile" 5 (Pcell.read c);
  Alcotest.(check int) "durable unchanged" 0 (Pcell.persisted c);
  check_bool "dirty after write" true (Pcell.dirty c);
  Alcotest.(check int) "one pending persist" 1 (Pcell.pending dom);
  Pcell.flush c;
  Alcotest.(check int) "flush persists" 5 (Pcell.persisted c);
  check_bool "clean after flush" false (Pcell.dirty c);
  Pcell.write c 7;
  Pcell.crash dom;
  Alcotest.(check int) "crash reverts to durable" 5 (Pcell.read c);
  check_bool "clean after crash" false (Pcell.dirty c);
  Alcotest.(check int) "crash counted" 1 (Pcell.crashes dom)

(* ------------------------------------------------- history with eras -- *)

let ds = oid "DS"
let stack_spec = Spec_stack.spec ~oid:ds ~allow_spurious_failure:true ()
let push_inv t v = Action.inv ~tid:(tid t) ~oid:ds ~fid:Spec_stack.fid_push (vi v)

let push_res t =
  Action.res ~tid:(tid t) ~oid:ds ~fid:Spec_stack.fid_push (Value.bool true)

let pop_inv t = Action.inv ~tid:(tid t) ~oid:ds ~fid:Spec_stack.fid_pop Value.unit
let pop_res t v = Action.res ~tid:(tid t) ~oid:ds ~fid:Spec_stack.fid_pop (ok_int v)

let pop_res_empty t =
  Action.res ~tid:(tid t) ~oid:ds ~fid:Spec_stack.fid_pop (Value.fail (vi 0))

let test_history_crash_markers () =
  let h =
    History.of_list
      [
        push_inv 0 1;
        push_res 0;
        pop_inv 1;
        Action.crash ~epoch:1;
        pop_inv 0;
        pop_res 0 1;
      ]
  in
  check_bool "valid" true (Result.is_ok (History.validate h));
  Alcotest.(check int) "crash_count" 1 (History.crash_count h);
  Alcotest.(check int) "eras" 2 (History.eras h);
  let entries = History.entries h in
  Alcotest.(check (list int))
    "eras per op" [ 0; 0; 1 ]
    (List.map (fun (e : History.entry) -> e.History.era) entries);
  (* the era-0 pending pop precedes the era-1 pop even though it never
     responded: a crash is a global synchronisation point *)
  let e_pending = List.nth entries 1 in
  let e_late = List.nth entries 2 in
  check_bool "cross-era precedes" true (History.precedes e_pending e_late);
  check_bool "no reverse precedes" false (History.precedes e_late e_pending)

let test_history_crash_validation () =
  let bad epoch = History.of_list [ push_inv 0 1; Action.crash ~epoch ] in
  check_bool "epoch must count up" true (Result.is_error (History.validate (bad 2)));
  check_bool "epoch 1 fine" true (Result.is_ok (History.validate (bad 1)));
  (* a response for an invocation cut off by the crash is dangling *)
  let orphan =
    History.of_list [ push_inv 0 1; Action.crash ~epoch:1; push_res 0 ]
  in
  check_bool "response across crash rejected" true
    (Result.is_error (History.validate orphan))

let test_history_format_round_trip () =
  let h =
    History.of_list
      [
        push_inv 0 1;
        push_res 0;
        Action.crash ~epoch:1;
        pop_inv 0;
        pop_res 0 1;
        Action.crash ~epoch:2;
        pop_inv 1;
      ]
  in
  match History_format.parse_history (History_format.print_history h) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok h' -> Alcotest.check history "round trip" h h'

(* ---------------------------------------------------- durable checkers -- *)

let cal_ok h = Cal_checker.is_cal ~spec:stack_spec h
let lin_ok h = Lin_checker.is_linearizable ~spec:stack_spec h

let test_checker_state_persists_across_crash () =
  (* a completed push survives the crash: the post-crash pop may return it *)
  let h =
    History.of_list
      [ push_inv 0 1; push_res 0; Action.crash ~epoch:1; pop_inv 0; pop_res 0 1 ]
  in
  check_bool "cal accepts" true (cal_ok h);
  check_bool "lin accepts" true (lin_ok h)

let test_checker_rejects_resurrection () =
  (* both pops completed, only one push: the missing-flush bug's history *)
  let h =
    History.of_list
      [
        push_inv 0 1;
        push_res 0;
        pop_inv 0;
        pop_res 0 1;
        Action.crash ~epoch:1;
        pop_inv 0;
        pop_res 0 1;
      ]
  in
  check_bool "cal rejects resurrected element" false (cal_ok h);
  check_bool "lin rejects resurrected element" false (lin_ok h)

let test_crash_pending_persisted_or_lost () =
  (* a push pending at the crash either persisted... *)
  let persisted =
    History.of_list [ push_inv 0 1; Action.crash ~epoch:1; pop_inv 0; pop_res 0 1 ]
  in
  check_bool "persisted branch accepted" true (cal_ok persisted);
  (* ...or was lost *)
  let lost =
    History.of_list
      [ push_inv 0 1; Action.crash ~epoch:1; pop_inv 0; pop_res_empty 0 ]
  in
  check_bool "lost branch accepted" true (cal_ok lost);
  (* but a COMPLETED pop is never undone: its element must stay explained *)
  let completed_undone =
    History.of_list
      [
        push_inv 0 1;
        push_res 0;
        pop_inv 0;
        pop_res 0 1;
        Action.crash ~epoch:1;
        pop_inv 1;
        pop_res 1 1;
      ]
  in
  check_bool "completed ops are not droppable" false (cal_ok completed_undone)

let test_no_element_straddles_crash () =
  (* an exchange pending at the crash cannot pair with a post-crash
     exchange: CA-elements live inside one era *)
  let ex_spec = Spec_exchanger.spec () in
  let straddle =
    History.of_list
      [ inv 0 (vi 3); Action.crash ~epoch:1; inv 1 (vi 4); res 1 (ok_int 3) ]
  in
  check_bool "cross-era pairing rejected" false (Cal_checker.is_cal ~spec:ex_spec straddle);
  (* the same pair inside one era is the normal swap *)
  let same_era =
    History.of_list
      [ inv 0 (vi 3); inv 1 (vi 4); res 0 (ok_int 4); res 1 (ok_int 3);
        Action.crash ~epoch:1 ]
  in
  check_bool "same-era pairing accepted" true (Cal_checker.is_cal ~spec:ex_spec same_era)

(* ------------------------------------------- runner crash transition -- *)

let stack_scen = S.stack_crash_recovery ()

let test_durable_replay_determinism () =
  let plan = [ Fault.crash_system ~at_step:4 ] in
  let o1 =
    Runner.run_random_durable ~plan ~setup:stack_scen.S.d_setup
      ~fuel:stack_scen.S.d_fuel ~rng:(Rng.create ~seed:5L) ()
  in
  Alcotest.(check int) "crash fired" 2 o1.Runner.epochs;
  Alcotest.(check int) "crash marker logged" 1 (History.crash_count o1.Runner.history);
  check_bool "crash in injected" true
    (List.exists
       (function Fault.Crash_system _ -> true | _ -> false)
       o1.Runner.injected);
  let o2, _ = Runner.replay_durable ~plan ~setup:stack_scen.S.d_setup o1.Runner.schedule in
  Alcotest.check history "replay reproduces the history" o1.Runner.history
    o2.Runner.history;
  Alcotest.(check int) "replay reproduces steps" o1.Runner.steps o2.Runner.steps;
  Alcotest.(check int) "replay reproduces epochs" o1.Runner.epochs o2.Runner.epochs

let test_crash_point_zero () =
  (* a crash before any decision wipes nothing and boots straight into
     recovery: era 1 is the whole run *)
  let plan = [ Fault.crash_system ~at_step:0 ] in
  let o =
    Runner.run_random_durable ~plan ~setup:stack_scen.S.d_setup
      ~fuel:stack_scen.S.d_fuel ~rng:(Rng.create ~seed:1L) ()
  in
  Alcotest.(check int) "two epochs" 2 o.Runner.epochs;
  let entries = History.entries o.Runner.history in
  check_bool "every op in era 1" true
    (List.for_all (fun (e : History.entry) -> e.History.era = 1) entries)

let test_exploration_epochs () =
  let crash_free = ref 0 and crashed = ref 0 in
  let (_ : Explore.fault_stats) =
    Explore.exhaustive_with_crashes ~setup:stack_scen.S.d_setup
      ~fuel:stack_scen.S.d_fuel ~max_runs:200 ~preemption_bound:1 ~max_plans:6
      ~f:(fun o ->
        if o.Runner.epochs = 1 then incr crash_free
        else begin
          incr crashed;
          Alcotest.(check int)
            "epochs match history crash markers"
            (History.crash_count o.Runner.history + 1)
            o.Runner.epochs
        end)
      ()
  in
  check_bool "saw crash-free outcomes" true (!crash_free > 0);
  check_bool "saw crashed outcomes" true (!crashed > 0)

(* --------------------------------------------- durable obligations ---- *)

let durable_scenario_ok ?max_runs ?preemption_bound (s : S.durable) =
  let r =
    Verify.Obligations.check_durable ~setup:s.S.d_setup ~spec:s.S.d_spec
      ~fuel:s.S.d_fuel ?max_runs ?preemption_bound
      ~max_crash_depth:s.S.d_max_crash_depth ()
  in
  Verify.Obligations.ok r = s.S.d_expect_ok

let test_durable_stack_accepted () =
  check_bool "durable Treiber stack is durably CA-linearizable" true
    (durable_scenario_ok ~preemption_bound:2 (S.stack_crash_recovery ()))

let test_durable_queue_accepted () =
  check_bool "durable MS queue is durably CA-linearizable" true
    (durable_scenario_ok ~preemption_bound:2 (S.queue_crash_recovery ()))

let test_durable_lin_mode () =
  let s = S.stack_crash_recovery () in
  let r =
    Verify.Obligations.check_durable ~checker:`Lin ~setup:s.S.d_setup
      ~spec:s.S.d_spec ~fuel:s.S.d_fuel ~preemption_bound:2
      ~max_crash_depth:s.S.d_max_crash_depth ()
  in
  check_bool "durable linearizability agrees" true (Verify.Obligations.ok r)

let test_missing_flush_rejected_with_witness () =
  let s = S.faulty_durable_stack () in
  let r =
    Verify.Obligations.check_durable ~setup:s.S.d_setup ~spec:s.S.d_spec
      ~fuel:s.S.d_fuel ~max_crash_depth:s.S.d_max_crash_depth ()
  in
  check_bool "missing flush rejected" false (Verify.Obligations.ok r);
  match r.Verify.Obligations.problems with
  | [] -> Alcotest.fail "rejection without a witness"
  | p :: _ ->
      (* the (schedule, plan) pair is a replayable witness: re-running it
         reproduces a history both checkers reject *)
      let o, _ =
        Runner.replay_durable ~plan:p.Verify.Obligations.plan
          ~setup:s.S.d_setup p.Verify.Obligations.schedule
      in
      check_bool "witness history is rejected" false
        (Cal_checker.is_cal ~spec:s.S.d_spec o.Runner.history);
      check_bool "witness plan crashes the system" true
        (List.exists
           (function Fault.Crash_system _ -> true | _ -> false)
           p.Verify.Obligations.plan)

let test_exchanger_crash_abort () =
  (* the volatile exchanger under system crashes: every exchange pending at
     the crash is aborted atomically (both sides die with the era), so the
     black-box durable check accepts every crash point *)
  let setup ctx =
    let domain = Pcell.domain () in
    let ex = Exchanger.create ctx in
    {
      Runner.boot =
        {
          Runner.threads =
            [|
              Exchanger.exchange ex ~tid:(tid 0) (vi 3);
              Exchanger.exchange ex ~tid:(tid 1) (vi 4);
            |];
          observe = None;
          on_label = None;
        };
      domain;
      recover =
        (fun ~epoch:_ -> { Runner.threads = [||]; observe = None; on_label = None });
    }
  in
  let r =
    Verify.Obligations.check_durable ~setup ~spec:(Spec_exchanger.spec ())
      ~fuel:60 ~max_crash_depth:1 ()
  in
  check_bool "pending exchanges abort cleanly at every crash point" true
    (Verify.Obligations.ok r)

(* -------------------------------------------------- crash-aware monitor -- *)

let c_oid = oid "C"
let counter_spec = Spec_counter.spec ~oid:c_oid ()
let incr_elem n = Ca_trace.element c_oid [ Spec_counter.incr_op ~oid:c_oid (tid 0) n ]
let dec = { Runner.thread = 0; branch = 0 }

let test_monitor_resets_at_crash () =
  (* control: without a crash, a second incr returning 0 violates the
     (stateful) counter specification *)
  let ctx = Ctx.create () in
  let m = Verify.Monitor.create ~spec:counter_spec ~view:View.identity ~ctx in
  Ctx.log_element ctx (incr_elem 0);
  Verify.Monitor.observer m dec;
  Ctx.log_element ctx (incr_elem 0);
  Verify.Monitor.observer m dec;
  check_bool "no crash: repeat rejected" true (Verify.Monitor.status m <> `Ok);
  (* with a crash in between, the acceptor restarts for the new era *)
  let ctx = Ctx.create () in
  let m = Verify.Monitor.create ~spec:counter_spec ~view:View.identity ~ctx in
  Ctx.log_element ctx (incr_elem 0);
  Verify.Monitor.observer m dec;
  Ctx.record_crash ctx;
  Ctx.log_element ctx (incr_elem 0);
  Verify.Monitor.observer m dec;
  check_bool "crash restarts the acceptor" true (Verify.Monitor.status m = `Ok)

let test_monitor_violation_latches () =
  let ctx = Ctx.create () in
  let m = Verify.Monitor.create ~spec:counter_spec ~view:View.identity ~ctx in
  Ctx.log_element ctx (incr_elem 7);
  (* wrong: first incr must return 0 *)
  Verify.Monitor.observer m dec;
  check_bool "violated" true (Verify.Monitor.status m <> `Ok);
  Ctx.record_crash ctx;
  Ctx.log_element ctx (incr_elem 0);
  Verify.Monitor.observer m dec;
  check_bool "crash does not clear a violation" true
    (Verify.Monitor.status m <> `Ok)

let () =
  Alcotest.run "durable"
    [
      ("pcell", [ t "write-back semantics" test_pcell_semantics ]);
      ( "history",
        [
          t "crash markers partition into eras" test_history_crash_markers;
          t "crash-marker validation" test_history_crash_validation;
          t "format round trip with crashes" test_history_format_round_trip;
        ] );
      ( "checkers",
        [
          t "persisted state carries across crashes"
            test_checker_state_persists_across_crash;
          t "resurrection rejected" test_checker_rejects_resurrection;
          t "crash-pending ops: persisted or lost"
            test_crash_pending_persisted_or_lost;
          t "no CA-element straddles a crash" test_no_element_straddles_crash;
        ] );
      ( "runner",
        [
          t "durable replay determinism" test_durable_replay_determinism;
          t "crash at step 0" test_crash_point_zero;
          t "exploration outcomes carry epochs" test_exploration_epochs;
        ] );
      ( "obligations",
        [
          t "durable stack accepted" test_durable_stack_accepted;
          t "durable queue accepted" test_durable_queue_accepted;
          t "durable lin mode" test_durable_lin_mode;
          t "missing flush rejected, witness replays"
            test_missing_flush_rejected_with_witness;
          t "exchanger: pending exchanges abort at a crash"
            test_exchanger_crash_abort;
        ] );
      ( "monitor",
        [
          t "acceptor resets at crash markers" test_monitor_resets_at_crash;
          t "violations latch across crashes" test_monitor_violation_latches;
        ] );
    ]
