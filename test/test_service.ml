(* Tests for the streaming monitor core: verdict correctness on the fast
   and exhaustive paths, fault containment (malformed frames never kill
   the core nor perturb sibling sessions), the degradation ladder under
   overload, bounded windows with overflow trimming, idle eviction and
   conservative readmission, crash-marker era resets, snapshot/restore
   with latched violations, and byte-for-byte determinism. *)

open Cal
open Test_support
module Config = Service.Config
module Proto = Service.Proto
module Session = Service.Session
module Core = Service.Core

let t name f = Alcotest.test_case name `Quick f

(* Objects named E* are exchangers (concurrency-aware pairs), U* are
   unknown, everything else is a fetch-and-add counter. *)
let spec_for oid =
  let name = Ids.Oid.to_string oid in
  if String.length name > 0 && name.[0] = 'U' then None
  else if String.length name > 0 && name.[0] = 'E' then
    Some (Spec_exchanger.spec ~oid ())
  else Some (Spec_counter.spec ~oid ())

let small_config =
  {
    Config.default with
    max_sessions = 8;
    max_pending = 4;
    window_max = 12;
    memory_budget = 48;
    hi_watermark = 0.5;
    lo_watermark = 0.25;
    cooldown = 2;
    sample_period = 3;
    idle_timeout = 4;
  }

let mk ?cache ?(config = small_config) () =
  match Core.create ?cache ~config ~spec_for () with
  | Ok t -> t
  | Error m -> Alcotest.fail ("config rejected: " ^ m)

let run core inputs =
  List.fold_left
    (fun (core, evs) input ->
      let core, e = Core.feed core input in
      (core, evs @ e))
    (core, []) inputs

let lines ls = List.map (fun l -> Proto.Line l) ls
let transcript evs = String.concat "\n" (List.map Proto.print_event evs)

(* counter frames *)
let cinv ?(t = 1) o = Fmt.str "t%d inv %s.incr ()" t o
let cres ?(t = 1) o n = Fmt.str "t%d res %s.incr %d" t o n

(* a correct sequential burst of [n] increments on counter [o] *)
let counter_burst ?(t = 1) ?(from = 0) o n =
  List.concat (List.init n (fun i -> [ cinv ~t o; cres ~t o (from + i) ]))

let count_events p evs = List.length (List.filter p evs)

let committed_for o =
  function Proto.Committed { oid; _ } -> Ids.Oid.to_string oid = o | _ -> false

let violation_for o =
  function Proto.Violation { oid; _ } -> Ids.Oid.to_string oid = o | _ -> false

let is_error = function Proto.Rejected_frame _ -> true | _ -> false

(* ------------------------------------------------ verdict correctness -- *)

let test_sequential_commits () =
  let core, evs = run (mk ()) (lines (counter_burst "C" 3)) in
  Alcotest.(check int) "three commits" 3
    (count_events (committed_for "C") evs);
  Alcotest.(check int) "no errors" 0 (count_events is_error evs);
  Alcotest.(check int) "load drained" 0 (Core.load core);
  match Core.session core (Ids.Oid.v "C") with
  | Some s -> Alcotest.(check int) "ops counted" 3 (Session.ops s)
  | None -> Alcotest.fail "session missing"

let test_sequential_violation_latches () =
  let core, evs =
    run (mk ())
      (lines
         (counter_burst "C" 2
         @ [ cinv "C"; cres "C" 7 ]  (* previous value is 2, not 7 *)
         @ counter_burst ~from:3 "C" 2))
  in
  Alcotest.(check int) "one violation" 1
    (count_events (violation_for "C") evs);
  Alcotest.(check int) "no commits after the latch" 2
    (count_events (committed_for "C") evs);
  match Core.session core (Ids.Oid.v "C") with
  | None -> Alcotest.fail "session missing"
  | Some s -> (
      match Session.latched s with
      | Some (op, _) -> Alcotest.(check int) "latched at op 3" 3 op
      | None -> Alcotest.fail "violation did not latch");
      Alcotest.(check int) "later frames still counted" 5 (Session.ops s)

(* A concurrent exchange pair is CAL only as a two-op element: the
   sequential fast path cannot apply, so this exercises the exhaustive
   checker resumed from committed state. *)
let exchange_pair o a b =
  [
    Fmt.str "t1 inv %s.exchange %d" o a;
    Fmt.str "t2 inv %s.exchange %d" o b;
    Fmt.str "t1 res %s.exchange (true, %d)" o b;
    Fmt.str "t2 res %s.exchange (true, %d)" o a;
  ]

let test_concurrent_window_accepted () =
  let _, evs =
    run (mk ()) (lines (exchange_pair "E" 3 4 @ exchange_pair "E" 5 6))
  in
  Alcotest.(check int) "both windows commit" 2
    (count_events (committed_for "E") evs);
  Alcotest.(check int) "no violations" 0
    (count_events (violation_for "E") evs)

let test_concurrent_window_rejected () =
  (* Both sides claim success against different partners' values than
     offered: no element explains it. *)
  let bad =
    [
      "t1 inv E.exchange 3";
      "t2 inv E.exchange 4";
      "t1 res E.exchange (true, 9)";
      "t2 res E.exchange (true, 3)";
    ]
  in
  let _, evs = run (mk ()) (lines bad) in
  Alcotest.(check int) "violation flagged" 1
    (count_events (violation_for "E") evs)

(* --------------------------------------------------- fault containment -- *)

let hostile_frames =
  [
    "not a frame at all";
    "t1 foo C.incr ()";
    "x9 inv C.incr ()";
    "t1 inv Cincr ()";
    "t1 inv C.incr (1, 2";
    "t1 inv U.op ()";  (* unknown object *)
    "crash 0";  (* bad epoch *)
    String.make (History_format.max_line_length + 1) 'x';
    "t1 inv C2.incr " ^ String.concat "" (List.init 200 (fun _ -> "["));
    "t3 res C.incr 0";  (* response with no pending invocation *)
  ]

let test_malformed_frames_are_contained () =
  let core, evs = run (mk ()) (lines hostile_frames) in
  Alcotest.(check int) "every hostile frame answered with an error"
    (List.length hostile_frames)
    (count_events is_error evs);
  (* The core is still fully functional afterwards. *)
  let _, evs' = run core (lines (counter_burst "C" 2)) in
  Alcotest.(check int) "still verifying" 2
    (count_events (committed_for "C") evs')

let test_malformed_frames_do_not_perturb_siblings () =
  (* The same healthy stream for C, with and without hostile frames and
     other objects' traffic interleaved, must produce byte-identical
     C-events. *)
  let healthy = counter_burst "C" 4 in
  let interleave xs ys =
    let rec go acc = function
      | [], rest | rest, [] -> List.rev_append acc rest
      | x :: xs, y :: ys -> go (y :: x :: acc) (xs, ys)
    in
    go [] (xs, ys)
  in
  let noisy = interleave healthy (hostile_frames @ counter_burst "D" 3) in
  let _, ref_evs = run (mk ()) (lines healthy) in
  let _, noisy_evs = run (mk ()) (lines noisy) in
  let for_c evs =
    transcript
      (List.filter
         (fun e -> committed_for "C" e || violation_for "C" e)
         evs)
  in
  Alcotest.(check string) "C events byte-identical" (for_c ref_evs)
    (for_c noisy_evs)

let arb_hostile_line =
  let open QCheck.Gen in
  let fragment =
    oneof
      [
        string_size ~gen:(char_range '\000' '\255') (int_bound 20);
        oneofl
          [
            "t1 inv C.incr ()"; "t1 res C.incr 0"; "crash 1"; "crash x";
            "t1 inv E.exchange "; "(("; "))"; "[[["; "\"";
            "t1 inv U.op ()"; " # comment"; "t99 res C.get 7";
          ];
      ]
  in
  QCheck.make
    ~print:(Printf.sprintf "%S")
    (map (String.concat " ") (list_size (int_bound 4) fragment))

let prop_feed_is_total ls =
  let core = mk () in
  match run core (lines ls) with
  | core', _ -> Core.load core' >= 0
  | exception _ -> false

(* ------------------------------------------- degradation under overload -- *)

(* Never-quiescent streams: an open [get] pins each window, so load only
   grows until the ladder sheds it. *)
let pinned_stream o n =
  Fmt.str "t9 inv %s.get ()" o
  :: List.concat
       (List.init n (fun i -> [ cinv ~t:1 o; cres ~t:1 o i ]))

let test_overload_degrades_and_stays_in_budget () =
  let config = small_config in
  let core = mk ~config () in
  let streams = List.concat (List.init 6 (fun i -> pinned_stream (Fmt.str "C%d" i) 5)) in
  let final, evs =
    List.fold_left
      (fun (core, evs) input ->
        let core, e = Core.feed core input in
        check_bool "load within budget after every frame" true
          (Core.load core <= config.Config.memory_budget);
        (core, evs @ e))
      (core, []) (lines streams)
  in
  let levels =
    List.filter_map
      (function Proto.Level_change { level; _ } -> Some level | _ -> None)
      evs
  in
  check_bool "degraded at least to sampled" true
    (List.mem Proto.Sampled levels || List.mem Proto.Count_only levels);
  check_bool "reported count-only under sustained overload" true
    (List.mem Proto.Count_only levels);
  Alcotest.(check string) "final level reported" "count-only"
    (Proto.level_to_string (Core.level final));
  check_bool "count-only shed the retained windows" true (Core.load final = 0)

let test_ladder_recovers_after_cooldown () =
  let core, _ =
    run (mk ())
      (lines (List.concat (List.init 6 (fun i -> pinned_stream (Fmt.str "C%d" i) 5))))
  in
  Alcotest.(check string) "overloaded" "count-only"
    (Proto.level_to_string (Core.level core));
  let core, evs = run core (List.init 6 (fun _ -> Proto.Tick)) in
  Alcotest.(check string) "recovered to full" "full"
    (Proto.level_to_string (Core.level core));
  Alcotest.(check int) "one level change per rung" 2
    (count_events
       (function Proto.Level_change _ -> true | _ -> false)
       evs)

let test_sampled_defers_concurrent_windows () =
  (* Force Sampled with a tiny high watermark, then feed concurrent
     exchange pairs: commits arrive only at every sample_period-th
     quiescent point, sequential counters still commit instantly. *)
  let config =
    { small_config with
      lo_watermark = 0.05; hi_watermark = 0.10; memory_budget = 100 }
  in
  let core = mk ~config () in
  let core, _ = run core (lines (pinned_stream "P" 5)) in
  Alcotest.(check string) "sampled" "sampled"
    (Proto.level_to_string (Core.level core));
  let core, evs = run core (lines (exchange_pair "E" 1 2)) in
  Alcotest.(check int) "first concurrent window deferred" 0
    (count_events (committed_for "E") evs);
  let core, evs = run core (lines (exchange_pair "E" 3 4 @ exchange_pair "E" 5 6)) in
  Alcotest.(check int) "batch committed at the sampled quiescent point" 1
    (count_events (committed_for "E") evs);
  let _, evs = run core (lines (counter_burst "C" 2)) in
  Alcotest.(check int) "sequential fast path unaffected by sampling" 2
    (count_events (committed_for "C") evs)

(* --------------------------------------------- bounded windows, overflow -- *)

let test_overflow_desyncs_after_final_verdict () =
  let config = { small_config with window_max = 8; memory_budget = 64 } in
  let core = mk ~config () in
  let core, evs = run core (lines (pinned_stream "C" 6)) in
  Alcotest.(check int) "overflow desynced the session" 1
    (count_events
       (function Proto.Session_desynced { oid; _ } ->
           Ids.Oid.to_string oid = "C"
         | _ -> false)
       evs);
  Alcotest.(check int) "healthy overflow is not a violation" 0
    (count_events (violation_for "C") evs);
  (match Core.session core (Ids.Oid.v "C") with
  | Some s ->
      check_bool "desynced" true (Session.is_desynced s);
      Alcotest.(check int) "window dropped" 0 (Session.window_len s)
  | None -> Alcotest.fail "session missing");
  (* An era reset resynchronises: verdicts resume. *)
  let _, evs = run core (lines (("crash 1" :: counter_burst "C" 2))) in
  Alcotest.(check int) "verifying again after the era reset" 2
    (count_events (committed_for "C") evs)

let test_overflow_still_catches_violations () =
  let config = { small_config with window_max = 8; memory_budget = 64 } in
  (* Pinned window with a wrong increment inside: the one final verdict
     at overflow must latch it. *)
  let bad =
    Fmt.str "t9 inv C.get ()"
    :: (counter_burst ~t:1 "C" 2
       @ [ cinv ~t:1 "C"; cres ~t:1 "C" 9 ]
       @ counter_burst ~t:1 ~from:3 "C" 2)
  in
  let core, evs = run (mk ~config ()) (lines bad) in
  Alcotest.(check int) "violation latched at overflow" 1
    (count_events (violation_for "C") evs);
  match Core.session core (Ids.Oid.v "C") with
  | Some s -> check_bool "latched" true (Session.latched s <> None)
  | None -> Alcotest.fail "session missing"

let test_pending_cap_rejects_stuck_streams () =
  let core = mk () in
  let invs =
    List.init (small_config.Config.max_pending + 1) (fun i ->
        Fmt.str "t%d inv C.incr ()" (i + 1))
  in
  let _, evs = run core (lines invs) in
  Alcotest.(check int) "inv past the pending cap rejected" 1
    (count_events is_error evs)

(* ------------------------------------------------- eviction, admission -- *)

let test_idle_eviction_and_conservative_readmission () =
  let core, _ = run (mk ()) (lines (counter_burst "C" 1)) in
  let core, evs =
    run core (List.init (small_config.Config.idle_timeout + 1) (fun _ -> Proto.Tick))
  in
  Alcotest.(check int) "idle session reaped" 1
    (count_events
       (function Proto.Session_evicted { reason = Proto.Idle; _ } -> true
         | _ -> false)
       evs);
  (* Readmission distrusts the gap: the object kept running while we
     were not looking, so the session only counts until the next era. *)
  let core, evs = run core (lines (counter_burst ~from:1 "C" 2)) in
  Alcotest.(check int) "readmitted conservatively" 1
    (count_events
       (function Proto.Session_desynced { oid; _ } ->
           Ids.Oid.to_string oid = "C"
         | _ -> false)
       evs);
  Alcotest.(check int) "no verdicts while desynced" 0
    (count_events (committed_for "C") evs);
  let _, evs = run core (lines ("crash 1" :: counter_burst "C" 2)) in
  Alcotest.(check int) "fresh era restores verdicts" 2
    (count_events (committed_for "C") evs)

let test_admission_cap_and_pressure_shedding () =
  let config = { small_config with max_sessions = 2 } in
  let core, _ = run (mk ~config ()) (lines (counter_burst "A" 1 @ counter_burst "B" 1)) in
  (* Both live sessions are healthy: the third object is refused. *)
  let core, evs = run core (lines [ cinv "C" ]) in
  Alcotest.(check int) "table full rejected" 1 (count_events is_error evs);
  (* Idle-evict both, readmit them under distrust (desynced), and the
     third object then displaces one. *)
  let core, _ =
    run core (List.init (config.Config.idle_timeout + 1) (fun _ -> Proto.Tick))
  in
  let core, _ =
    run core (lines [ cinv "A"; cres "A" 1; cinv "B"; cres "B" 1 ])
  in
  let _, evs = run core (lines [ cinv "C" ]) in
  Alcotest.(check int) "desynced session shed under admission pressure" 1
    (count_events
       (function
         | Proto.Session_evicted { reason = Proto.Admission_pressure; _ } ->
             true
         | _ -> false)
       evs);
  Alcotest.(check int) "new object admitted" 0 (count_events is_error evs)

(* --------------------------------------------------- snapshot / restore -- *)

let test_snapshot_restore_preserves_latched_violations () =
  let core, _ =
    run (mk ())
      (lines
         (counter_burst "C" 2
         @ [ cinv "C"; cres "C" 9 ]
         @ counter_burst "D" 3))
  in
  let snap = Core.snapshot core in
  match Core.restore ~config:small_config ~spec_for snap with
  | Error m -> Alcotest.fail ("restore failed: " ^ m)
  | Ok restored -> (
      Alcotest.(check int) "sessions restored" 2 (Core.session_count restored);
      (match Core.session restored (Ids.Oid.v "C") with
      | Some s -> (
          match Session.latched s with
          | Some (op, reason) ->
              Alcotest.(check int) "latched op preserved" 3 op;
              check_bool "latched reason preserved" true
                (String.length reason > 0)
          | None -> Alcotest.fail "latched violation lost across restore")
      | None -> Alcotest.fail "latched session lost");
      (match Core.session restored (Ids.Oid.v "D") with
      | Some s ->
          (* v2 snapshots are exact: the healthy session resumes its
             committed acceptor instead of desyncing. *)
          check_bool "healthy session restored accepting" false
            (Session.is_desynced s);
          Alcotest.(check int) "op count preserved" 3 (Session.ops s)
      | None -> Alcotest.fail "healthy session lost");
      (* The restored daemon keeps verifying without waiting for a new
         era, and still refuses to un-latch across one. *)
      let _, evs = run restored (lines (counter_burst ~from:3 "D" 1)) in
      Alcotest.(check int) "healthy session verifies immediately" 1
        (count_events (committed_for "D") evs);
      let _, evs = run restored (lines (counter_burst ~from:0 "D" 1)) in
      Alcotest.(check int) "resumed committed state still enforced" 1
        (count_events (violation_for "D") evs);
      let _, evs = run restored (lines ("crash 1" :: counter_burst "C" 1 @ counter_burst "D" 1)) in
      Alcotest.(check int) "latch survives the next era" 0
        (count_events (committed_for "C") evs);
      Alcotest.(check int) "healthy session verifies in the next era" 1
        (count_events (committed_for "D") evs))

let test_snapshot_is_stable_and_restore_is_strict () =
  let core, _ = run (mk ()) (lines (counter_burst "C" 2)) in
  Alcotest.(check string) "snapshot bytes are deterministic"
    (Core.snapshot core) (Core.snapshot core);
  (match Core.restore ~config:small_config ~spec_for "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted as a snapshot");
  match
    Core.restore ~config:small_config ~spec_for
      "calserve-snapshot v1\nsession C ops=x era=0 ok\nend"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed session line accepted"

(* ------------------------------------------------------- determinism -- *)

let test_feed_is_byte_deterministic () =
  let inputs =
    lines
      (counter_burst "C" 2 @ hostile_frames @ exchange_pair "E" 3 4
      @ pinned_stream "P" 3 @ [ "crash 1" ] @ counter_burst "C" 1)
    @ [ Proto.Tick; Proto.Tick ]
  in
  let _, a = run (mk ()) inputs in
  let _, b = run (mk ()) inputs in
  Alcotest.(check string) "identical transcripts" (transcript a) (transcript b);
  (* And with a shared verdict cache: memoisation is verdict-transparent,
     so the transcript must not change. *)
  let cache = Verdict_cache.create ~capacity:4 () in
  let _, c = run (mk ~cache ()) inputs in
  let _, d = run (mk ~cache ()) inputs in
  Alcotest.(check string) "cache does not perturb verdicts" (transcript a)
    (transcript c);
  Alcotest.(check string) "warm cache does not perturb verdicts" (transcript a)
    (transcript d)


(* ------------------------------------------------- v2 exact snapshots -- *)

let test_v2_roundtrip_is_exact () =
  (* Mixed mid-flight state: committed counters, a pinned open window,
     a pending invocation, hostile damage already absorbed. The restored
     core must be bisimilar: identical snapshot bytes now, identical
     transcript and snapshot after any continuation. *)
  let prefix =
    counter_burst "C" 3 @ pinned_stream "P" 2 @ hostile_frames
    @ exchange_pair "E" 3 4 @ [ cinv ~t:2 "C" ]
  in
  let continuation =
    lines
      ([ cres ~t:2 "C" 3 ] @ counter_burst ~from:4 "C" 2
      @ exchange_pair "E" 5 6)
    @ [ Proto.Tick; Proto.Tick ]
  in
  let core, _ = run (mk ()) (lines prefix) in
  let snap = Core.snapshot core in
  match Core.restore ~config:small_config ~spec_for snap with
  | Error m -> Alcotest.fail ("v2 restore failed: " ^ m)
  | Ok restored ->
      Alcotest.(check string) "restored snapshot byte-identical" snap
        (Core.snapshot restored);
      let a, evs_a = run core continuation in
      let b, evs_b = run restored continuation in
      Alcotest.(check string) "continuation transcripts identical"
        (transcript evs_a) (transcript evs_b);
      Alcotest.(check string) "final snapshots identical" (Core.snapshot a)
        (Core.snapshot b)

let test_restore_preserves_degradation_ladder () =
  let overload =
    lines
      (List.concat (List.init 6 (fun i -> pinned_stream (Fmt.str "C%d" i) 5)))
  in
  let core, _ = run (mk ()) overload in
  Alcotest.(check string) "count-only before snapshot" "count-only"
    (Proto.level_to_string (Core.level core));
  let snap = Core.snapshot core in
  match Core.restore ~config:small_config ~spec_for snap with
  | Error m -> Alcotest.fail ("restore failed: " ^ m)
  | Ok restored ->
      Alcotest.(check string) "count-only survives restore" "count-only"
        (Proto.level_to_string (Core.level restored));
      (* The hysteresis cooldown survives too: both cores climb back to
         full on exactly the same tick schedule. *)
      let ticks = List.init 6 (fun _ -> Proto.Tick) in
      let a, evs_a = run core ticks in
      let b, evs_b = run restored ticks in
      Alcotest.(check string) "upgrade schedule identical" (transcript evs_a)
        (transcript evs_b);
      Alcotest.(check string) "recovered to full" "full"
        (Proto.level_to_string (Core.level a));
      Alcotest.(check string) "restored core recovered to full" "full"
        (Proto.level_to_string (Core.level b))

let test_restore_preserves_sampled_level () =
  let config =
    { small_config with
      lo_watermark = 0.05; hi_watermark = 0.10; memory_budget = 100 }
  in
  let core, _ = run (mk ~config ()) (lines (pinned_stream "P" 5)) in
  Alcotest.(check string) "sampled before snapshot" "sampled"
    (Proto.level_to_string (Core.level core));
  match Core.restore ~config ~spec_for (Core.snapshot core) with
  | Error m -> Alcotest.fail ("restore failed: " ^ m)
  | Ok restored ->
      Alcotest.(check string) "sampled survives restore" "sampled"
        (Proto.level_to_string (Core.level restored));
      (* The sampling cadence continues from the snapshotted qpoint
         counters, not from zero. *)
      let conc =
        lines
          (exchange_pair "E" 1 2 @ exchange_pair "E" 3 4
          @ exchange_pair "E" 5 6)
      in
      let _, evs_a = run core conc in
      let _, evs_b = run restored conc in
      Alcotest.(check string) "sampling cadence identical" (transcript evs_a)
        (transcript evs_b)

let test_v1_snapshot_still_restores_conservatively () =
  let v1 =
    "calserve-snapshot v1\nclock 3\nlevel full\nunknown-history false\n\
     session C ops=4 era=1 latched op=3 reason=bad increment\n\
     session D ops=2 era=0 ok\nend"
  in
  match Core.restore ~config:small_config ~spec_for v1 with
  | Error m -> Alcotest.fail ("v1 snapshot refused: " ^ m)
  | Ok restored ->
      (match Core.session restored (Ids.Oid.v "C") with
      | Some s ->
          check_bool "v1 latch preserved" true (Session.latched s <> None)
      | None -> Alcotest.fail "latched session lost");
      (match Core.session restored (Ids.Oid.v "D") with
      | Some s ->
          check_bool "v1 healthy session restored desynced" true
            (Session.is_desynced s)
      | None -> Alcotest.fail "healthy session lost")

(* A spec with no [~resume] parser: its committed key cannot be turned
   back into an acceptor, so an exact restore must degrade that one
   session to desynced (honestly) instead of failing the whole boot. *)
let noresume_spec oid =
  Spec.make
    ~name:(Fmt.str "opaque(%a)" Ids.Oid.pp oid)
    ~owns:(Ids.Oid.equal oid) ~max_element_size:1 ~init:0
    ~step:(fun count e ->
      match Ca_trace.element_ops e with
      | [ o ] ->
          if Value.equal o.Op.ret (Value.int count) then Some (count + 1)
          else None
      | _ -> None)
    ~key:string_of_int
    ~candidates:(fun count ~universe:_ _ -> [ Value.int count ])
    ()

let test_restore_without_resume_parser_falls_back () =
  let spec_for oid = Some (noresume_spec oid) in
  let mkc () =
    match Core.create ~config:small_config ~spec_for () with
    | Ok t -> t
    | Error m -> Alcotest.fail ("config rejected: " ^ m)
  in
  let core, _ = run (mkc ()) (lines (counter_burst "C" 2)) in
  match Core.restore ~config:small_config ~spec_for (Core.snapshot core) with
  | Error m -> Alcotest.fail ("fallback restore failed: " ^ m)
  | Ok restored -> (
      match Core.session restored (Ids.Oid.v "C") with
      | Some s ->
          check_bool "non-resumable session restored desynced" true
            (Session.is_desynced s);
          Alcotest.(check int) "ops still preserved" 2 (Session.ops s)
      | None -> Alcotest.fail "session lost")

(* Hostile snapshots: splice random bytes into a real v2 snapshot.
   Restore must return [Ok] or [Error], never raise. *)
let snapshot_base =
  lazy
    (let core, _ =
       run (mk ())
         (lines (counter_burst "C" 2 @ pinned_stream "P" 1 @ hostile_frames))
     in
     Core.snapshot core)

let arb_mutated_snapshot =
  let gen =
    QCheck.Gen.(
      map3
        (fun pos len repl ->
          let base = Lazy.force snapshot_base in
          let n = String.length base in
          let pos = pos mod n in
          let len = min len (n - pos) in
          String.sub base 0 pos ^ repl
          ^ String.sub base (pos + len) (n - pos - len))
        (int_bound 10_000) (int_bound 60)
        (string_size ~gen:(char_range '\000' '\255') (int_bound 30)))
  in
  QCheck.make ~print:(Printf.sprintf "%S") gen

let prop_restore_is_total s =
  match Core.restore ~config:small_config ~spec_for s with
  | Ok _ | Error _ -> true
  | exception _ -> false

let () =
  Alcotest.run "service"
    [
      ( "verdicts",
        [
          t "sequential fast path commits" test_sequential_commits;
          t "violation latches" test_sequential_violation_latches;
          t "concurrent window accepted" test_concurrent_window_accepted;
          t "concurrent window rejected" test_concurrent_window_rejected;
        ] );
      ( "containment",
        [
          t "malformed frames contained" test_malformed_frames_are_contained;
          t "siblings unperturbed" test_malformed_frames_do_not_perturb_siblings;
          qtest ~count:300 "feed is total on fuzzed frame lists"
            QCheck.(list_of_size Gen.(int_bound 10) arb_hostile_line)
            prop_feed_is_total;
        ] );
      ( "degradation",
        [
          t "overload degrades within budget"
            test_overload_degrades_and_stays_in_budget;
          t "ladder recovers after cooldown" test_ladder_recovers_after_cooldown;
          t "sampled defers concurrent windows"
            test_sampled_defers_concurrent_windows;
        ] );
      ( "bounded windows",
        [
          t "overflow desyncs after a final verdict"
            test_overflow_desyncs_after_final_verdict;
          t "overflow still catches violations"
            test_overflow_still_catches_violations;
          t "pending cap rejects stuck streams"
            test_pending_cap_rejects_stuck_streams;
        ] );
      ( "eviction",
        [
          t "idle eviction, conservative readmission"
            test_idle_eviction_and_conservative_readmission;
          t "admission cap with pressure shedding"
            test_admission_cap_and_pressure_shedding;
        ] );
      ( "snapshot",
        [
          t "latched violations survive restore"
            test_snapshot_restore_preserves_latched_violations;
          t "snapshot stable, restore strict"
            test_snapshot_is_stable_and_restore_is_strict;
          t "v2 roundtrip is exact" test_v2_roundtrip_is_exact;
          t "ladder survives restore" test_restore_preserves_degradation_ladder;
          t "sampled level survives restore" test_restore_preserves_sampled_level;
          t "v1 still restores conservatively"
            test_v1_snapshot_still_restores_conservatively;
          t "no-resume spec falls back desynced"
            test_restore_without_resume_parser_falls_back;
          qtest ~count:300 "restore is total on mutated snapshots"
            arb_mutated_snapshot prop_restore_is_total;
        ] );
      ( "determinism",
        [ t "byte-deterministic transcripts" test_feed_is_byte_deterministic ] );
    ]
