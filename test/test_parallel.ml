(* Tests for multicore parallel exploration and the shared verdict cache:
   every report — verdicts, witnesses, run counts — must be byte-identical
   whatever the worker-domain count, the cache must change cost counters
   only, and the first-failure witness of check_all must be the sequential
   one even when workers race to it. *)

open Cal
open Conc
open Test_support
module S = Workloads.Scenarios
module O = Verify.Obligations

(* The engine caps worker domains at [Domain.recommended_domain_count] —
   oversubscribing one hardware thread only adds GC synchronization. These
   tests are about cross-domain determinism, so they opt out: with the
   override, [~domains:4] really spawns four workers even on a one-core CI
   box, and the splitting/stealing/cache-sharing paths genuinely run. *)
let () = Unix.putenv "CAL_EXPLORE_OVERSUBSCRIBE" "1"

let t name f = Alcotest.test_case name `Quick f
let domain_counts = [ 1; 2; 4 ]

(* Everything in a report that must be domain-count-invariant. Exploration
   cost counters (nodes, steals, cache hits) are excluded: two workers can
   benignly race to compute the same cache miss. *)
let fingerprint (r : O.report) =
  ( r.runs,
    r.complete_runs,
    r.truncated,
    List.map (fun (p : O.problem) -> (p.schedule, p.plan, p.message)) r.problems
  )

let check_invariant name reports =
  match reports with
  | [] -> ()
  | (d0, r0) :: rest ->
      List.iter
        (fun (d, r) ->
          check_bool
            (Fmt.str "%s: report at domains=%d matches domains=%d" name d d0)
            true
            (fingerprint r = fingerprint r0))
        rest

(* Both obligations and the black-box check, on every deliberately faulty
   scenario: rejection-heavy searches with nontrivial witness lists are
   where a merge bug would show. *)
let test_faulty_scenarios_domain_invariant () =
  List.iter
    (fun (s : S.t) ->
      let object_reports =
        List.map
          (fun domains ->
            ( domains,
              O.check_object ~domains ~setup:s.setup ~spec:s.spec ~view:s.view
                ~fuel:s.fuel ?preemption_bound:s.bound () ))
          domain_counts
      in
      check_invariant (s.name ^ " (check_object)") object_reports;
      let black_box_reports =
        List.map
          (fun domains ->
            ( domains,
              O.check_black_box ~domains ~setup:s.setup ~spec:s.spec
                ~fuel:s.fuel ?preemption_bound:s.bound () ))
          domain_counts
      in
      check_invariant (s.name ^ " (check_black_box)") black_box_reports;
      List.iter
        (fun (d, r) ->
          check_bool (Fmt.str "%s rejected at domains=%d" s.name d) false
            (O.ok r))
        black_box_reports)
    [
      S.faulty_counter ();
      S.faulty_stack ();
      S.faulty_exchanger ();
      S.faulty_elim_stack ();
      S.faulty_elim_queue ();
    ]

(* Accepting scenarios: same invariance, and the reports must accept. *)
let test_positive_scenarios_domain_invariant () =
  List.iter
    (fun ((s : S.t), fuel) ->
      let reports =
        List.map
          (fun domains ->
            ( domains,
              O.check_black_box ~domains ~setup:s.setup ~spec:s.spec ~fuel
                ?preemption_bound:s.bound () ))
          domain_counts
      in
      check_invariant s.name reports;
      List.iter
        (fun (d, r) ->
          check_bool (Fmt.str "%s accepted at domains=%d" s.name d) true
            (O.ok r))
        reports)
    [ (S.exchanger_pair (), 12); (S.elim_stack_push_pop ~k:1 (), 10) ]

(* The verdict cache may only change cost counters, never the report; it
   must actually hit on a workload with canonical collisions; and with
   several domains the one table is shared — hits still accrue. *)
let test_cache_transparent_and_effective () =
  let s = S.elim_stack_push_pop ~k:1 () in
  let run ~domains ~cache =
    O.check_black_box ~domains ~cache ~setup:s.setup ~spec:s.spec ~fuel:10
      ?preemption_bound:s.bound ()
  in
  let off = run ~domains:1 ~cache:false in
  let hits (r : O.report) =
    match r.exploration with
    | Some e -> e.Explore.cache_hits
    | None -> 0
  in
  Alcotest.(check int) "cache off: 0 hits" 0 (hits off);
  List.iter
    (fun domains ->
      let on = run ~domains ~cache:true in
      check_bool
        (Fmt.str "cached report matches uncached at domains=%d" domains)
        true
        (fingerprint on = fingerprint off);
      check_bool (Fmt.str "cache hits at domains=%d" domains) true
        (hits on > 0))
    domain_counts

(* check_all short-circuits on the first failing outcome; with workers
   racing, the witness must still be the sequential engine's (the
   lowest-bound failure wins the merge). *)
let test_check_all_witness_deterministic () =
  let s = S.faulty_stack () in
  let spec = s.spec in
  let p (o : Runner.outcome) = Cal_checker.is_cal ~spec o.history in
  let witness domains =
    match
      Explore.check_all ~domains ~setup:s.setup ~fuel:s.fuel
        ?preemption_bound:s.bound ~p ()
    with
    | Ok _ -> Alcotest.failf "faulty stack accepted at domains=%d" domains
    | Error (o, _) -> (o.Runner.schedule, o.Runner.history)
  in
  let sched1, hist1 = witness 1 in
  List.iter
    (fun domains ->
      let sched, hist = witness domains in
      check_bool
        (Fmt.str "witness schedule at domains=%d is the sequential one" domains)
        true (sched = sched1);
      Alcotest.check history
        (Fmt.str "witness history at domains=%d" domains)
        hist1 hist)
    [ 2; 4 ]

(* Crash-free durable exploration parallelizes (a single plan's schedule
   tree); the delivered run set must be the sequential one. Callback order
   is nondeterministic across workers, so compare as sorted sets. *)
let test_durable_single_plan_domain_invariant () =
  let d = S.stack_crash_recovery () in
  let runs domains =
    let schedules = ref [] in
    let mu = Mutex.create () in
    let stats =
      Explore.exhaustive_durable ~plan:[] ~domains ~setup:d.d_setup
        ~fuel:d.d_fuel
        ~f:(fun (o : Runner.outcome) ->
          Mutex.lock mu;
          schedules := o.Runner.schedule :: !schedules;
          Mutex.unlock mu)
        ()
    in
    (stats.Explore.runs, List.sort compare !schedules)
  in
  let runs1, schedules1 = runs 1 in
  check_bool "sequential durable exploration is nonempty" true (runs1 > 0);
  List.iter
    (fun domains ->
      let r, s = runs domains in
      Alcotest.(check int)
        (Fmt.str "durable runs at domains=%d" domains)
        runs1 r;
      check_bool
        (Fmt.str "durable schedule set at domains=%d" domains)
        true (s = schedules1))
    [ 2; 4 ]

(* The engine must actually distribute work: with several (oversubscribed)
   workers on an imbalanced tree, donated chunks get claimed — and the
   report stays byte-identical to the 1-domain sweep. *)
let test_stealing_happens () =
  let s = S.faulty_elim_stack ~pushers:1 ~poppers:2 () in
  let run domains =
    O.check_black_box ~domains ~setup:s.setup ~spec:s.spec ~fuel:8
      ?preemption_bound:s.bound ()
  in
  let seq = run 1 in
  List.iter
    (fun domains ->
      let par = run domains in
      check_bool
        (Fmt.str "stolen report matches sequential at domains=%d" domains)
        true
        (fingerprint par = fingerprint seq);
      match par.exploration with
      | None -> Alcotest.fail "exhaustive check lost its exploration stats"
      | Some e ->
          check_bool
            (Fmt.str "tasks_stolen > 0 at domains=%d" domains)
            true
            (e.Explore.tasks_stolen > 0))
    [ 2; 4 ]

(* The shared verdict cache grows a per-domain front table when unbounded;
   a rejection-heavy multi-domain sweep must still produce the sequential
   report, with the front-table hits accounted for. *)
let test_cache_per_domain_deterministic () =
  let s = S.faulty_exchanger () in
  let run ~domains ~cache =
    O.check_black_box ~domains ~cache ~setup:s.setup ~spec:s.spec ~fuel:s.fuel
      ?preemption_bound:s.bound ()
  in
  let off = run ~domains:1 ~cache:false in
  List.iter
    (fun domains ->
      let on = run ~domains ~cache:true in
      check_bool
        (Fmt.str "cached faulty report matches uncached at domains=%d" domains)
        true
        (fingerprint on = fingerprint off);
      match on.exploration with
      | None -> Alcotest.fail "exhaustive check lost its exploration stats"
      | Some e ->
          check_bool
            (Fmt.str "cache hits accrue at domains=%d" domains)
            true
            (e.Explore.cache_hits > 0))
    domain_counts

(* A first-failure search that aborts its tasks must still report the
   failing task's real partial counters — the old engine returned
   [{ empty_stats with runs = 1 }] for it, under-reporting nodes and
   max_steps whenever every other task was abandoned. *)
let test_first_failure_partial_stats () =
  let s = S.faulty_counter () in
  let p (o : Runner.outcome) = Cal_checker.is_cal ~spec:s.spec o.history in
  match
    Explore.check_all ~domains:4 ~setup:s.setup ~fuel:s.fuel
      ?preemption_bound:s.bound ~p ()
  with
  | Ok _ -> Alcotest.fail "faulty counter accepted"
  | Error (o, st) ->
      let depth = List.length o.Runner.schedule in
      check_bool "witness has steps" true (depth > 0);
      check_bool "failing task kept its node count" true
        (st.Explore.nodes > depth);
      check_bool "failing task kept its max_steps" true
        (st.Explore.max_steps >= o.Runner.steps)

(* With the oversubscription override, requested domains really spawn;
   without it, the hardware cap is applied and the report says so. *)
let test_domains_used () =
  let s = S.exchanger_trio () in
  let run () =
    O.check_black_box ~domains:4 ~setup:s.setup ~spec:s.spec ~fuel:8
      ?preemption_bound:s.bound ()
  in
  (match (run ()).exploration with
  | None -> Alcotest.fail "exhaustive check lost its exploration stats"
  | Some e ->
      Alcotest.(check int) "domains_used" 4 e.Explore.domains_used;
      Alcotest.(check int) "domains_requested" 4 e.Explore.domains_requested);
  Unix.putenv "CAL_EXPLORE_OVERSUBSCRIBE" "";
  let capped = min 4 (Domain.recommended_domain_count ()) in
  (match (run ()).exploration with
  | None -> Alcotest.fail "exhaustive check lost its exploration stats"
  | Some e ->
      Alcotest.(check int) "capped domains_used" capped e.Explore.domains_used;
      Alcotest.(check int)
        "capped domains_requested" 4 e.Explore.domains_requested);
  Unix.putenv "CAL_EXPLORE_OVERSUBSCRIBE" "1"

(* The capping policy itself: identity at <= 1 worker, capped at the
   hardware parallelism unless the override is set. *)
let test_effective_domains () =
  Alcotest.(check int) "1 stays 1" 1 (Par_explore.effective_domains 1);
  Alcotest.(check int) "0 normalizes to 1" 1 (Par_explore.effective_domains 0);
  Alcotest.(check int) "override lifts the cap" 64
    (Par_explore.effective_domains 64);
  Unix.putenv "CAL_EXPLORE_OVERSUBSCRIBE" "";
  let cap = Domain.recommended_domain_count () in
  Alcotest.(check int) "capped at recommended_domain_count" (min 64 cap)
    (Par_explore.effective_domains 64);
  Unix.putenv "CAL_EXPLORE_OVERSUBSCRIBE" "1"

(* DPOR composes with the parallel front by root-splitting: one rank-ordered
   task per root decision, applied identically at domains=1, so the whole
   report — verdicts, witnesses, run counts — must be byte-identical across
   domain counts for faulty and accepting scenarios alike. *)
let test_dpor_domain_invariant () =
  List.iter
    (fun ((s : S.t), fuel) ->
      let reports =
        List.map
          (fun domains ->
            ( domains,
              O.check_black_box ~domains ~strategy:Explore.Dpor ~setup:s.setup
                ~spec:s.spec ~fuel () ))
          domain_counts
      in
      check_invariant (s.name ^ " (dpor)") reports;
      List.iter
        (fun (d, r) ->
          check_bool
            (Fmt.str "%s: dpor verdict at domains=%d" s.name d)
            s.expect_ok (O.ok r))
        reports)
    [
      (S.exchanger_pair (), 12);
      (S.treiber_push_pop (), 10);
      (S.faulty_counter (), 10);
      (S.faulty_exchanger (), 10);
    ]

(* The bounded engines share the root-split front; their (honestly bounded)
   run sets must also be domain-count-invariant. *)
let test_bounded_domain_invariant () =
  let s = S.faulty_stack () in
  List.iter
    (fun strategy ->
      let reports =
        List.map
          (fun domains ->
            ( domains,
              O.check_black_box ~domains ~strategy ~setup:s.setup ~spec:s.spec
                ~fuel:12 () ))
          domain_counts
      in
      check_invariant
        (Fmt.str "%s (%s)" s.name (Explore.strategy_to_string strategy))
        reports;
      List.iter
        (fun (d, r) ->
          check_bool
            (Fmt.str "%s: %s rejects at domains=%d" s.name
               (Explore.strategy_to_string strategy) d)
            false (O.ok r))
        reports)
    [
      Explore.Preemption_bounded { bound = 2 };
      Explore.Delay_bounded { bound = 2 };
    ]

(* The accumulator rewrite of the drop-subset enumerator must preserve the
   naive enumeration order exactly: it decides which completion witness
   the checker reports first. *)
let test_subsets_up_to_reference () =
  let rec reference k = function
    | [] -> [ [] ]
    | x :: rest ->
        let without = reference k rest in
        if k = 0 then without
        else List.map (fun s -> x :: s) (reference (k - 1) rest) @ without
  in
  let reference k xs = List.filter (( <> ) []) (reference k xs) in
  List.iter
    (fun (k, n) ->
      let xs = List.init n (fun i -> i) in
      check_bool
        (Fmt.str "subsets_up_to %d on %d elements matches the naive order" k n)
        true
        (Cal_checker.subsets_up_to k xs = reference k xs))
    [ (0, 3); (1, 4); (2, 5); (3, 3); (5, 5); (2, 0); (7, 3) ]

let () =
  Alcotest.run "parallel"
    [
      ( "parallel",
        [
          t "faulty scenarios: reports are domain-count-invariant"
            test_faulty_scenarios_domain_invariant;
          t "positive scenarios: reports are domain-count-invariant"
            test_positive_scenarios_domain_invariant;
          t "verdict cache is transparent and effective"
            test_cache_transparent_and_effective;
          t "check_all witness is deterministic across domains"
            test_check_all_witness_deterministic;
          t "durable single-plan exploration is domain-count-invariant"
            test_durable_single_plan_domain_invariant;
          t "work stealing actually happens on an imbalanced tree"
            test_stealing_happens;
          t "per-domain cache front is deterministic on faulty sweeps"
            test_cache_per_domain_deterministic;
          t "first-failure search keeps the failing task's partial stats"
            test_first_failure_partial_stats;
          t "requested domains spawn under the oversubscription override"
            test_domains_used;
          t "effective_domains capping policy" test_effective_domains;
          t "dpor reports are domain-count-invariant"
            test_dpor_domain_invariant;
          t "bounded-strategy reports are domain-count-invariant"
            test_bounded_domain_invariant;
          t "subsets_up_to matches the naive enumeration order"
            test_subsets_up_to_reference;
        ] );
    ]
