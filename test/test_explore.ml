(* Tests for the incremental exploration engine: equivalence with the
   replay engine (runs, schedules, stats), fingerprint/sleep-set pruning,
   the lazy fault-plan enumeration and its cap, the single fault-free
   candidate-learning pass, the overlapping fail-pattern counter fix,
   check_all's truncation semantics, and watchdog starvation stickiness. *)

open Cal
open Conc
open Conc.Prog.Infix
open Test_support
module S = Workloads.Scenarios

let t name f = Alcotest.test_case name `Quick f

let no_prune_env =
  match Sys.getenv_opt "CAL_EXPLORE_NO_PRUNE" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let d thread = { Runner.thread; branch = 0 }

(* Both engines on the same state space, collecting delivered schedules. *)
let explore_schedules engine ?plan ?preemption_bound ~setup ~fuel () =
  let scheds = ref [] in
  let f (o : Runner.outcome) = scheds := o.Runner.schedule :: !scheds in
  let stats =
    match engine with
    | `Incremental ->
        Explore.exhaustive ?plan ~prune:false ~setup ~fuel ?preemption_bound ~f ()
    | `Replay ->
        Explore.exhaustive_via_replay ?plan ~setup ~fuel ?preemption_bound ~f ()
  in
  (stats, List.rev !scheds)

(* the lost-update client: two read-increment-write threads *)
let counter_setup _ctx =
  let cell = ref 0 in
  let th =
    let* v = Prog.read cell in
    let* () = Prog.write cell (v + 1) in
    Prog.return (Value.int v)
  in
  { Runner.threads = [| th; th |]; observe = None; on_label = None }

let test_engines_agree () =
  List.iter
    (fun ((s : S.t), fuel) ->
      let st_i, sch_i =
        explore_schedules `Incremental ?preemption_bound:s.bound ~setup:s.setup
          ~fuel ()
      in
      let st_r, sch_r =
        explore_schedules `Replay ?preemption_bound:s.bound ~setup:s.setup
          ~fuel ()
      in
      Alcotest.(check int) (s.name ^ ": runs") st_r.Explore.runs st_i.Explore.runs;
      Alcotest.(check int)
        (s.name ^ ": max_steps")
        st_r.Explore.max_steps st_i.Explore.max_steps;
      Alcotest.(check int) (s.name ^ ": nodes") st_r.Explore.nodes st_i.Explore.nodes;
      check_bool (s.name ^ ": identical schedules in order") true (sch_i = sch_r))
    [
      (S.exchanger_pair (), 12);
      (S.elim_stack_push_pop ~k:1 (), 12);
      (S.dual_queue_enq_deq (), 10);
      (S.exchanger_trio (), 8);
    ]

(* Engine cross-check over every deliberately broken object: the faulty
   implementations take unusual step shapes (non-atomic updates, missing
   CAS, selfish returns, unflushed persistent writes), so they are good
   stress inputs for incremental-vs-replay equivalence. *)
let test_engines_agree_on_faulty_objects () =
  let durable_setup ctx =
    let domain = Pcell.domain () in
    let s = Structures.Faulty.Durable_stack_missing_flush.create ~domain ctx in
    {
      Runner.threads =
        [|
          (let* _ = Structures.Faulty.Durable_stack_missing_flush.push s ~tid:(tid 0) (vi 1) in
           Structures.Faulty.Durable_stack_missing_flush.pop s ~tid:(tid 0));
          Structures.Faulty.Durable_stack_missing_flush.pop s ~tid:(tid 1);
        |];
      observe = None;
      on_label = None;
    }
  in
  let cases =
    [
      ("faulty-counter", (S.faulty_counter ()).S.setup, 14);
      ("faulty-stack", (S.faulty_stack ()).S.setup, 16);
      ("faulty-exchanger", (S.faulty_exchanger ()).S.setup, 14);
      ("durable-missing-flush (crash-free)", durable_setup, 18);
    ]
  in
  List.iter
    (fun (name, setup, fuel) ->
      let st_i, sch_i = explore_schedules `Incremental ~setup ~fuel () in
      let st_r, sch_r = explore_schedules `Replay ~setup ~fuel () in
      Alcotest.(check int) (name ^ ": runs") st_r.Explore.runs st_i.Explore.runs;
      Alcotest.(check int) (name ^ ": nodes") st_r.Explore.nodes st_i.Explore.nodes;
      Alcotest.(check int)
        (name ^ ": max_steps")
        st_r.Explore.max_steps st_i.Explore.max_steps;
      check_bool (name ^ ": identical schedules in order") true (sch_i = sch_r))
    cases

let test_engines_agree_under_faults () =
  let plan = [ Fault.crash ~thread:1 ~at_step:1 ] in
  let st_i, sch_i = explore_schedules `Incremental ~plan ~setup:counter_setup ~fuel:10 () in
  let st_r, sch_r = explore_schedules `Replay ~plan ~setup:counter_setup ~fuel:10 () in
  Alcotest.(check int) "runs under crash plan" st_r.Explore.runs st_i.Explore.runs;
  check_bool "schedules under crash plan" true (sch_i = sch_r);
  (* and with a max_runs budget: same truncation point *)
  let st_i, sch_i =
    explore_schedules `Incremental ~setup:counter_setup ~fuel:10 () in
  let st_r, sch_r = explore_schedules `Replay ~setup:counter_setup ~fuel:10 () in
  Alcotest.(check int) "fault-free runs" st_r.Explore.runs st_i.Explore.runs;
  check_bool "fault-free schedules" true (sch_i = sch_r)

(* Overlapping Fail_step patterns: "f" (location-prefix match) and "f@x"
   (exact match) both match every "f@x" step, so every occurrence must bump
   both counters — the seed's List.exists short-circuit skipped the second
   pattern whenever the first matched, shifting its counter. *)
let test_forced_failure_overlapping_patterns () =
  let record = ref [] in
  let setup _ctx =
    record := [];
    let step n =
      Prog.fallible ~label:"f@x"
        ~on_fault:(fun () ->
          Prog.atomic (fun () -> record := (n, `Forced) :: !record))
        (fun () -> Prog.atomic (fun () -> record := (n, `Ok) :: !record))
      >>= fun () -> Prog.return ()
    in
    let th = step 1 >>= fun () -> step 2 >>= fun () -> step 3 >>= fun () ->
      Prog.return Value.unit
    in
    { Runner.threads = [| th |]; observe = None; on_label = None }
  in
  let plan =
    [ Fault.fail_step ~label:"f" ~nth:1; Fault.fail_step ~label:"f@x" ~nth:2 ]
  in
  let rec drive sched =
    let o, frontier = Runner.replay ~plan ~setup sched in
    match frontier with [] -> o | dd :: _ -> drive (sched @ [ dd ])
  in
  let o = drive [] in
  Alcotest.(check int) "both faults fired" 2 (List.length o.Runner.injected);
  check_bool "occurrences 1 and 2 forced, 3 clean" true
    (List.rev !record = [ (1, `Forced); (2, `Forced); (3, `Ok) ])

(* The fault-free state space must be executed exactly once: the pass that
   delivers the empty plan's outcomes is the pass that learns the fault
   candidates (the seed ran it twice). Counted via setup invocations. *)
let test_single_fault_free_pass () =
  let starts = ref 0 in
  let setup ctx =
    incr starts;
    counter_setup ctx
  in
  starts := 0;
  let plain = Explore.exhaustive ~setup ~fuel:10 ~f:ignore () in
  let s0 = !starts in
  check_bool "some executions" true (s0 > 0 && plain.Explore.runs > 0);
  starts := 0;
  let fs =
    Explore.exhaustive_with_faults ~setup ~fuel:10 ~max_plans:1 ~fault_bound:1
      ~f:ignore ()
  in
  Alcotest.(check int) "only the empty plan fits the cap" 1 fs.Explore.plans;
  check_bool "cap recorded as truncation" true fs.Explore.fault_truncated;
  Alcotest.(check int) "fault-free space executed once, not twice" s0 !starts;
  Alcotest.(check int) "its runs are the fault-free runs" plain.Explore.runs
    fs.Explore.fault_runs

(* Plans are enumerated lazily, smallest size first; the cap takes a prefix
   of that order and is reported as truncation. *)
let test_lazy_plan_enumeration () =
  let setup _ctx =
    let mk _ = Prog.yield >>= fun () -> Prog.return Value.unit in
    { Runner.threads = Array.init 2 mk; observe = None; on_label = None }
  in
  let plan_order = ref [] in
  let f (o : Runner.outcome) =
    if not (List.mem o.Runner.faults !plan_order) then
      plan_order := o.Runner.faults :: !plan_order
  in
  (* two 1-step threads: candidates crash(0,1) and crash(1,1); plans are
     [] ; the two singletons ; the pair *)
  let fs =
    Explore.exhaustive_with_faults ~setup ~fuel:10 ~fault_bound:2 ~f ()
  in
  Alcotest.(check int) "full enumeration" 4 fs.Explore.plans;
  check_bool "not truncated" false fs.Explore.fault_truncated;
  let sizes = List.rev_map List.length !plan_order in
  Alcotest.(check (list int)) "smallest plans first" [ 0; 1; 1; 2 ] sizes;
  plan_order := [];
  let fs =
    Explore.exhaustive_with_faults ~setup ~fuel:10 ~max_plans:3 ~fault_bound:2
      ~f ()
  in
  Alcotest.(check int) "capped" 3 fs.Explore.plans;
  check_bool "cap is truncation" true fs.Explore.fault_truncated;
  Alcotest.(check (list int)) "cap takes the enumeration's prefix" [ 0; 1; 1 ]
    (List.rev_map List.length !plan_order)

(* A huge candidate set must not be materialised when the cap is small. *)
let test_lazy_plan_cap_scales () =
  let setup _ctx =
    let mk _ =
      let rec go k =
        if k = 0 then Prog.return Value.unit else Prog.yield >>= fun () -> go (k - 1)
      in
      go 6
    in
    { Runner.threads = Array.init 3 mk; observe = None; on_label = None }
  in
  (* 18 crash candidates; subsets up to size 12 ≈ 2^18 — the lazy
     enumeration must stop after 10 plans without building them *)
  let fs =
    Explore.exhaustive_with_faults ~setup ~fuel:4 ~max_runs:50 ~max_plans:10
      ~fault_bound:12 ~f:ignore ()
  in
  Alcotest.(check int) "capped at 10" 10 fs.Explore.plans;
  check_bool "truncated" true fs.Explore.fault_truncated

let p_no_lost_update (o : Runner.outcome) =
  not (o.Runner.results = [| Some (Value.int 0); Some (Value.int 0) |])

(* A counterexample stop is not a truncation: Error with truncated=false is
   a definitive refutation; Ok with truncated=true is inconclusive. *)
let test_check_all_truncation_semantics () =
  (match Explore.check_all ~setup:counter_setup ~fuel:10 ~p:p_no_lost_update () with
  | Error (o, stats) ->
      check_bool "violation found" false (p_no_lost_update o);
      check_bool "counterexample is not truncation" false stats.Explore.truncated
  | Ok _ -> Alcotest.fail "lost update should be found");
  (match
     Explore.check_all ~setup:counter_setup ~fuel:10 ~max_runs:1
       ~p:p_no_lost_update ()
   with
  | Ok stats ->
      check_bool "budget cap is truncation" true stats.Explore.truncated
  | Error _ ->
      (* the first explored run must be sequential and pass *)
      Alcotest.fail "first run should satisfy p");
  match
    Explore.check_all ~setup:counter_setup ~fuel:10 ~max_runs:1000
      ~p:p_no_lost_update ()
  with
  | Error (_, stats) ->
      check_bool "found before the cap: not truncated" false
        stats.Explore.truncated
  | Ok _ -> Alcotest.fail "lost update should be found within 1000 runs"

(* Starvation is sticky: once a thread's idle stretch reaches the window,
   the run stays excused even if the thread is scheduled afterwards. *)
let test_watchdog_starvation_sticky () =
  let setup _ctx =
    let rec spin k =
      if k = 0 then Prog.return Value.unit else Prog.yield >>= fun () -> spin (k - 1)
    in
    { Runner.threads = [| spin 20; spin 3 |]; observe = None; on_label = None }
  in
  let window = 4 in
  (* t1 idles for [window] decisions, then IS scheduled, then the run ends
     incomplete: the verdict must still be Starved, not Livelocked *)
  let sched = [ d 0; d 0; d 0; d 0; d 1; d 0 ] in
  match Explore.watchdog ~setup ~window sched with
  | Explore.Starved ts ->
      Alcotest.(check (list int)) "thread 1 stays starved" [ 1 ] ts
  | v -> Alcotest.failf "expected Starved, got %a" Explore.pp_verdict v

(* Pruning shrinks the explored run set (fingerprints collapse the
   yield-diamonds, sleep sets collapse commuting location accesses) while
   preserving check_all verdicts. Skipped when CAL_EXPLORE_NO_PRUNE=1
   force-disables pruning — then pruned and unpruned runs must be equal. *)
let test_pruning_shrinks_and_preserves_verdicts () =
  let yields _ctx =
    let mk _ =
      let rec go k =
        if k = 0 then Prog.return Value.unit else Prog.yield >>= fun () -> go (k - 1)
      in
      go 3
    in
    { Runner.threads = Array.init 2 mk; observe = None; on_label = None }
  in
  let full = Explore.exhaustive ~prune:false ~setup:yields ~fuel:100 ~f:ignore () in
  let pruned = Explore.exhaustive ~prune:true ~setup:yields ~fuel:100 ~f:ignore () in
  Alcotest.(check int) "unpruned yield-diamond" 20 full.Explore.runs;
  if no_prune_env then
    Alcotest.(check int) "kill switch: pruning disabled" full.Explore.runs
      pruned.Explore.runs
  else begin
    check_bool "fewer runs" true (pruned.Explore.runs < full.Explore.runs);
    check_bool "some reduction counted" true
      (pruned.Explore.fingerprint_hits + pruned.Explore.sleep_pruned > 0);
    (* same-location steps never commute, so here memoization is the only
       reduction: both read orders reach an indistinguishable state *)
    let memo =
      Explore.exhaustive ~prune:true ~setup:counter_setup ~fuel:10 ~f:ignore ()
    in
    check_bool "fingerprint hits counted" true (memo.Explore.fingerprint_hits > 0)
  end;
  (* disjoint locations: sleep sets fire *)
  let disjoint _ctx =
    let a = ref 0 and b = ref 0 in
    let writer cell loc =
      Prog.atomic ~label:("w" ^ loc) (fun () -> incr cell)
      >>= fun () ->
      Prog.atomic ~label:("w" ^ loc) (fun () -> incr cell)
      >>= fun () -> Prog.return Value.unit
    in
    {
      Runner.threads = [| writer a "@A"; writer b "@B" |];
      observe = None;
      on_label = None;
    }
  in
  let full = Explore.exhaustive ~prune:false ~setup:disjoint ~fuel:100 ~f:ignore () in
  let pruned = Explore.exhaustive ~prune:true ~setup:disjoint ~fuel:100 ~f:ignore () in
  if not no_prune_env then begin
    check_bool "commuting writers pruned" true
      (pruned.Explore.runs < full.Explore.runs);
    check_bool "some reduction counted" true
      (pruned.Explore.fingerprint_hits + pruned.Explore.sleep_pruned > 0)
  end;
  (* verdicts agree, pruned or not *)
  let verdict prune =
    match
      Explore.check_all ~prune ~setup:counter_setup ~fuel:10
        ~p:p_no_lost_update ()
    with
    | Ok _ -> `Holds
    | Error _ -> `Fails
  in
  check_bool "pruning preserves the lost-update verdict" true
    (verdict true = `Fails && verdict false = `Fails)

let test_obligations_surface_exploration_stats () =
  let s = S.exchanger_pair () in
  let r =
    Verify.Obligations.check_object ~setup:s.setup ~spec:s.spec ~view:s.view
      ~fuel:s.fuel ()
  in
  match r.Verify.Obligations.exploration with
  | Some st ->
      check_bool "nodes counted" true (st.Explore.nodes > 0);
      Alcotest.(check int) "stats runs match report runs"
        r.Verify.Obligations.runs st.Explore.runs
  | None -> Alcotest.fail "collect should surface exploration stats"

let test_metrics_explore_cost () =
  let s = S.exchanger_pair () in
  let open Workloads.Metrics in
  let r = explore_cost ~engine:`Replay ~setup:s.setup ~fuel:12 () in
  let i = explore_cost ~engine:`Incremental ~setup:s.setup ~fuel:12 () in
  Alcotest.(check int) "identical run counts" r.explored_runs i.explored_runs;
  Alcotest.(check int) "identical node counts" r.nodes i.nodes;
  check_bool "incremental executes fewer steps" true
    (i.steps_executed < r.steps_executed)

let () =
  Alcotest.run "explore"
    [
      ( "incremental engine",
        [
          t "engines agree on runs, stats, schedules" test_engines_agree;
          t "engines agree under fault plans and budgets"
            test_engines_agree_under_faults;
          t "engines agree on every faulty object"
            test_engines_agree_on_faulty_objects;
          t "metrics explore_cost: same space, fewer steps"
            test_metrics_explore_cost;
          t "obligations surface exploration stats"
            test_obligations_surface_exploration_stats;
        ] );
      ( "pruning",
        [
          t "pruning shrinks runs, preserves verdicts"
            test_pruning_shrinks_and_preserves_verdicts;
        ] );
      ( "fault plans",
        [
          t "overlapping fail patterns count every match"
            test_forced_failure_overlapping_patterns;
          t "fault-free space executed once" test_single_fault_free_pass;
          t "lazy enumeration, smallest first, capped prefix"
            test_lazy_plan_enumeration;
          t "large candidate sets stay lazy under a cap"
            test_lazy_plan_cap_scales;
        ] );
      ( "verdicts",
        [
          t "check_all: counterexample is not truncation"
            test_check_all_truncation_semantics;
          t "watchdog: starvation is sticky" test_watchdog_starvation_sticky;
        ] );
    ]
