(* Tests for the concurrent objects: sequential sanity, instrumentation, and
   exhaustively explored concurrent behaviours. *)

open Cal
open Conc
open Conc.Prog.Infix
open Structures
open Test_support

let t name f = Alcotest.test_case name `Quick f

(* drive a single-threaded program to completion and return the outcome *)
let run_solo ~setup =
  let rec drive sched =
    let o, frontier = Runner.replay ~setup sched in
    match frontier with [] -> o | d :: _ -> drive (sched @ [ d ])
  in
  drive []

let test_exchanger_solo_fails () =
  let setup ctx =
    let ex = Exchanger.create ctx in
    { Runner.threads = [| Exchanger.exchange ex ~tid:(tid 0) (vi 3) |]; observe = None; on_label = None }
  in
  let o = run_solo ~setup in
  check_bool "complete" true o.Runner.complete;
  check_bool "failed" true (o.Runner.results.(0) = Some (fail_int 3));
  (* the failure element was logged *)
  Alcotest.(check int) "one element" 1 (List.length o.Runner.trace);
  check_bool "spec accepts" true (Spec.accepts (Spec_exchanger.spec ()) o.Runner.trace)

let test_exchanger_pair_can_swap () =
  let s = Workloads.Scenarios.exchanger_pair () in
  let swapped = ref false in
  let failed = ref false in
  let _ =
    Explore.exhaustive ~setup:s.setup ~fuel:s.fuel
      ~f:(fun o ->
        match (o.Runner.results.(0), o.Runner.results.(1)) with
        | Some r0, Some r1 ->
            if Value.equal r0 (ok_int 4) then begin
              swapped := true;
              (* swaps are symmetric *)
              check_bool "partner swapped too" true (Value.equal r1 (ok_int 3))
            end;
            if Value.equal r0 (fail_int 3) then failed := true
        | _ -> ())
      ()
  in
  check_bool "some run swaps" true !swapped;
  check_bool "some run fails" true !failed

let test_exchanger_peek_g () =
  let ctx = Ctx.create () in
  let ex = Exchanger.create ctx in
  check_bool "initially null" true (Exchanger.peek_g ex = None);
  (* drive t0 through its INIT cas only: inv + init *)
  let setup ctx =
    let ex = Exchanger.create ctx in
    { Runner.threads = [| Exchanger.exchange ex ~tid:(tid 0) (vi 3) |]; observe = None; on_label = None }
  in
  let o, _ =
    Runner.replay ~setup
      [ { Runner.thread = 0; branch = 0 }; { Runner.thread = 0; branch = 0 } ]
  in
  check_bool "op still pending" true (not o.Runner.complete)

let test_treiber_sequential () =
  let setup ctx =
    let s = Treiber_stack.create ctx in
    {
      Runner.threads =
        [|
          (let* _ = Treiber_stack.push s ~tid:(tid 0) (vi 1) in
           let* _ = Treiber_stack.push s ~tid:(tid 0) (vi 2) in
           let* a = Treiber_stack.pop s ~tid:(tid 0) in
           let* b = Treiber_stack.pop s ~tid:(tid 0) in
           let* c = Treiber_stack.pop s ~tid:(tid 0) in
           Prog.return (Value.list [ a; b; c ]));
        |];
      observe = None;
      on_label = None;
    }
  in
  let o = run_solo ~setup in
  check_bool "lifo with empty" true
    (o.Runner.results.(0)
    = Some (Value.list [ ok_int 2; ok_int 1; fail_int 0 ]))

let test_treiber_contention_failure_possible () =
  (* two concurrent pushes: some interleaving makes one CAS fail *)
  let setup ctx =
    let s = Treiber_stack.create ctx in
    {
      Runner.threads =
        [|
          Treiber_stack.push s ~tid:(tid 0) (vi 1);
          Treiber_stack.push s ~tid:(tid 1) (vi 2);
        |];
      observe = None;
      on_label = None;
    }
  in
  let failed = ref false in
  let _ =
    Explore.exhaustive ~setup ~fuel:40
      ~f:(fun o ->
        if
          Array.exists (fun r -> r = Some (Value.bool false)) o.Runner.results
        then failed := true)
      ()
  in
  check_bool "a push can fail under contention" true !failed

let test_treiber_retry_always_succeeds () =
  let setup ctx =
    let s = Treiber_stack.create ctx in
    {
      Runner.threads =
        [|
          Treiber_stack.push_retry s ~tid:(tid 0) (vi 1);
          Treiber_stack.push_retry s ~tid:(tid 1) (vi 2);
        |];
      observe = None;
      on_label = None;
    }
  in
  let _ =
    Explore.exhaustive ~setup ~fuel:60
      ~f:(fun o ->
        if o.Runner.complete then
          check_bool "both true" true
            (Array.for_all (fun r -> r = Some (Value.bool true)) o.Runner.results))
      ()
  in
  ()

let test_ms_queue_sequential () =
  let setup ctx =
    let q = Ms_queue.create ctx in
    {
      Runner.threads =
        [|
          (let* _ = Ms_queue.enq q ~tid:(tid 0) (vi 1) in
           let* _ = Ms_queue.enq q ~tid:(tid 0) (vi 2) in
           let* a = Ms_queue.deq q ~tid:(tid 0) in
           let* b = Ms_queue.deq q ~tid:(tid 0) in
           let* c = Ms_queue.deq q ~tid:(tid 0) in
           Prog.return (Value.list [ a; b; c ]));
        |];
      observe = None;
      on_label = None;
    }
  in
  let o = run_solo ~setup in
  check_bool "fifo with empty" true
    (o.Runner.results.(0)
    = Some (Value.list [ ok_int 1; ok_int 2; fail_int 0 ]))

let test_counter_concurrent () =
  let s = Workloads.Scenarios.counter_incrs ~n:3 in
  let _ =
    Explore.exhaustive ~setup:s.setup ~fuel:s.fuel
      ~f:(fun o ->
        if o.Runner.complete then begin
          let returns =
            Array.to_list o.Runner.results |> List.filter_map Fun.id
            |> List.map Value.to_int |> List.sort compare
          in
          Alcotest.(check (list int)) "all previous values distinct" [ 0; 1; 2 ] returns
        end)
      ()
  in
  ()

let test_register_last_write_wins () =
  let setup ctx =
    let r = Register.create ctx in
    {
      Runner.threads =
        [|
          (let* _ = Register.write r ~tid:(tid 0) (vi 1) in
           Prog.return Value.unit);
          (let* _ = Register.write r ~tid:(tid 1) (vi 2) in
           Prog.return Value.unit);
        |];
      observe = None;
      on_label = None;
    }
  in
  let finals = ref [] in
  let _ =
    Explore.exhaustive ~setup ~fuel:20
      ~f:(fun o ->
        if o.Runner.complete then
          let v = List.rev o.Runner.trace |> List.hd |> Ca_trace.element_ops in
          match v with
          | [ op ] -> finals := op.Op.arg :: !finals
          | _ -> ())
      ()
  in
  check_bool "both final values occur" true
    (List.exists (Value.equal (vi 1)) !finals && List.exists (Value.equal (vi 2)) !finals)

let test_sync_queue_rendezvous_possible () =
  let s = Workloads.Scenarios.sync_queue_pair () in
  let rendezvous = ref false in
  let gave_up = ref false in
  let _ =
    Explore.exhaustive ~setup:s.setup ~fuel:s.fuel
      ~f:(fun o ->
        match o.Runner.results.(0) with
        | Some (Value.Bool true) ->
            rendezvous := true;
            check_bool "take got 7" true (o.Runner.results.(1) = Some (ok_int 7))
        | Some (Value.Bool false) -> gave_up := true
        | _ -> ())
      ()
  in
  check_bool "rendezvous occurs" true !rendezvous;
  check_bool "giving up occurs" true !gave_up

let test_elim_stack_elimination_happens () =
  (* elimination needs central-stack contention: with one pusher and one
     popper on an empty stack the push CAS can never fail, so we use the
     2x2 workload, where racing pushers fail and divert to the exchanger *)
  let s = Workloads.Scenarios.elim_stack_two_two ~k:1 () in
  let eliminated = ref false in
  let _ =
    Explore.exhaustive ~setup:s.setup ~fuel:s.fuel ~preemption_bound:2
      ~f:(fun o ->
        if List.exists (fun e -> Ca_trace.element_size e = 2) o.Runner.trace then
          eliminated := true)
      ()
  in
  check_bool "elimination path exercised" true !eliminated

let test_abstract_exchanger_behaviours () =
  let s = Workloads.Scenarios.exchanger_abstract_pair () in
  let swapped = ref false in
  let failed = ref false in
  let _ =
    Explore.exhaustive ~setup:s.setup ~fuel:s.fuel
      ~f:(fun o ->
        (match o.Runner.results.(0) with
        | Some (Value.Pair (Value.Bool true, _)) -> swapped := true
        | Some (Value.Pair (Value.Bool false, _)) -> failed := true
        | _ -> ());
        (* every abstract run's trace is already legal *)
        check_bool "trace legal" true (Spec.accepts s.spec o.Runner.trace))
      ()
  in
  check_bool "swap behaviour" true !swapped;
  check_bool "fail behaviour" true !failed

(* ------------------------------------------------------------ backoff -- *)

(* Run [starts] successive backoff loops of [n] pauses each on one policy
   (single-threaded, so the schedule is unique) and return the draw
   sequences: for each start, the pause lengths in yields. The recorder is
   reset in [setup] — exploration replays the program once per extension —
   and only the complete run's groups are kept. *)
let backoff_draws ~seed ~init ~max ~n ~starts =
  let groups = ref [] in
  let record label =
    if label = "start-mark" then groups := [] :: !groups
    else if label = "backoff" then
      (match !groups with
      | g :: rest -> groups := (0 :: g) :: rest
      | [] -> ())
    else if label = "yield" then
      match !groups with
      | (k :: g) :: rest -> groups := ((k + 1) :: g) :: rest
      | _ -> ()
  in
  let setup _ctx =
    groups := [];
    let pol = Backoff.policy ~init ~max ~seed () in
    let one_start () =
      Prog.atomic ~label:"start-mark" (fun () -> Backoff.start pol) >>= fun b ->
      let rec go i =
        if i = 0 then Prog.return () else Backoff.pause b >>= fun () -> go (i - 1)
      in
      go n
    in
    let rec loop s =
      if s = 0 then Prog.return Value.unit
      else one_start () >>= fun () -> loop (s - 1)
    in
    { Runner.threads = [| loop starts |]; observe = None; on_label = Some record }
  in
  let complete = ref [] in
  let _ =
    Explore.exhaustive ~setup ~fuel:10_000 ~f:(fun _ -> complete := !groups) ()
  in
  List.rev_map List.rev !complete

let test_backoff_equal_seeds_equal_draws =
  qtest ~count:25 "equal seeds give equal backoff draw sequences" QCheck.small_int
    (fun s ->
      let seed = Int64.of_int s in
      let run () = backoff_draws ~seed ~init:1 ~max:8 ~n:10 ~starts:1 in
      run () = run ())

let test_backoff_draws_respect_cap =
  qtest ~count:25 "backoff draws stay within the doubling window"
    QCheck.small_int (fun s ->
      let seed = Int64.of_int s in
      let max = 4 in
      match backoff_draws ~seed ~init:1 ~max ~n:8 ~starts:1 with
      | [ draws ] ->
          List.for_all2
            (fun i k -> k >= 0 && k <= min (1 lsl i) max)
            (List.init (List.length draws) Fun.id)
            draws
      | _ -> false)

let test_backoff_decorrelation () =
  (* distinct starts from one policy (distinct operations / tids) jitter
     apart; distinct policy seeds likewise *)
  (match backoff_draws ~seed:5L ~init:1 ~max:16 ~n:12 ~starts:2 with
  | [ a; b ] -> check_bool "distinct starts decorrelate" true (a <> b)
  | _ -> check_bool "two groups" true false);
  let one seed = backoff_draws ~seed ~init:1 ~max:16 ~n:12 ~starts:1 in
  check_bool "distinct seeds decorrelate" true (one 5L <> one 6L)

let test_faulty_counter_misbehaves () =
  let s = Workloads.Scenarios.faulty_counter () in
  let bad_trace = ref false in
  let _ =
    Explore.exhaustive ~setup:s.setup ~fuel:s.fuel
      ~f:(fun o -> if not (Spec.accepts s.spec o.Runner.trace) then bad_trace := true)
      ()
  in
  check_bool "lost update occurs" true !bad_trace

let () =
  Alcotest.run "structures"
    [
      ( "exchanger",
        [
          t "solo fails" test_exchanger_solo_fails;
          t "pair can swap" test_exchanger_pair_can_swap;
          t "peek_g" test_exchanger_peek_g;
          t "abstract behaviours" test_abstract_exchanger_behaviours;
        ] );
      ( "stacks",
        [
          t "treiber sequential" test_treiber_sequential;
          t "treiber contention failure" test_treiber_contention_failure_possible;
          t "treiber retry succeeds" test_treiber_retry_always_succeeds;
          t "elimination happens" test_elim_stack_elimination_happens;
        ] );
      ( "queues",
        [
          t "ms queue sequential" test_ms_queue_sequential;
          t "sync queue rendezvous" test_sync_queue_rendezvous_possible;
        ] );
      ( "simple objects",
        [
          t "counter concurrent" test_counter_concurrent;
          t "register last write wins" test_register_last_write_wins;
        ] );
      ( "backoff",
        [
          test_backoff_equal_seeds_equal_draws;
          test_backoff_draws_respect_cap;
          t "decorrelation" test_backoff_decorrelation;
        ] );
      ("faulty", [ t "counter misbehaves" test_faulty_counter_misbehaves ]);
    ]
