(* Tests for the sampled-checking subsystem: the randomized Sampler
   schedulers on the resumable exec API, replay round-trips of random and
   sampled runs, ddmin witness shrinking (still-failing, locally minimal,
   deterministically replayable), and the Obligations.check_sampled*
   detection sweep over every deliberately faulty scenario. *)

open Conc
open Test_support
module S = Workloads.Scenarios
module O = Verify.Obligations

let t name f = Alcotest.test_case name `Quick f
let kinds = [ Sampler.Random_walk; Sampler.Pct { d = 3 }; Sampler.Preemption_bounded { bound = 2 } ]

(* ------------------------------------------------- replay round-trips -- *)

(* The regression behind Runner.outcome_equal: replaying the schedule of a
   random run reproduces the outcome byte-for-byte. *)
let test_run_random_round_trip () =
  let s = S.exchanger_trio () in
  for seed = 1 to 10 do
    let o =
      Runner.run_random ~setup:s.S.setup ~fuel:s.S.fuel
        ~rng:(Rng.create ~seed:(Int64.of_int seed))
        ()
    in
    let o', _ = Runner.replay ~setup:s.S.setup o.Runner.schedule in
    check_bool
      (Printf.sprintf "seed %d replays byte-identically" seed)
      true
      (Runner.outcome_equal o o')
  done

let test_run_random_durable_round_trip () =
  let d = S.stack_crash_recovery () in
  let plan = [ Fault.crash_system ~at_step:4 ] in
  for seed = 1 to 10 do
    let o =
      Runner.run_random_durable ~plan ~setup:d.S.d_setup ~fuel:d.S.d_fuel
        ~rng:(Rng.create ~seed:(Int64.of_int seed))
        ()
    in
    let o', _ = Runner.replay_durable ~plan ~setup:d.S.d_setup o.Runner.schedule in
    check_bool
      (Printf.sprintf "durable seed %d replays byte-identically" seed)
      true
      (Runner.outcome_equal o o')
  done

(* Every sampler kind is a deterministic function of its seed, and its
   outcomes replay byte-for-byte like any other run. *)
let test_sampler_deterministic_and_replayable () =
  let s = S.elim_stack_push_pop ~k:1 () in
  List.iter
    (fun kind ->
      let sample seed =
        Sampler.run ~kind ~setup:s.S.setup ~fuel:s.S.fuel
          ~rng:(Rng.create ~seed) ()
      in
      let a = sample 7L and b = sample 7L in
      let name = Sampler.kind_to_string kind in
      check_bool (name ^ " same seed, same outcome") true
        (Runner.outcome_equal a b);
      let a', _ = Runner.replay ~setup:s.S.setup a.Runner.schedule in
      check_bool (name ^ " sampled run replays") true (Runner.outcome_equal a a'))
    kinds

(* A preemption-bounded sampler never exceeds its preemption budget:
   Shrink.segments classifies every switch as voluntary or preemptive. *)
let test_preemption_bound_respected () =
  let s = S.exchanger_trio () in
  let target = Shrink.Program s.S.setup in
  List.iter
    (fun bound ->
      let rng = Rng.create ~seed:3L in
      for _ = 1 to 20 do
        let o =
          Sampler.run
            ~kind:(Sampler.Preemption_bounded { bound })
            ~setup:s.S.setup ~fuel:s.S.fuel ~rng ()
        in
        let preemptions =
          Shrink.segments target ~plan:[] o.Runner.schedule
          |> List.filter (fun (_, p, _) -> p)
          |> List.length
        in
        check_bool
          (Printf.sprintf "bound %d: %d preemptions" bound preemptions)
          true (preemptions <= bound)
      done)
    [ 0; 1; 2 ]

(* sample_plan only emits valid plans, across many draws. *)
let test_sample_plan_valid () =
  let s = S.elim_stack_push_pop ~k:1 () in
  let rng = Rng.create ~seed:5L in
  let space = Sampler.probe ~setup:s.S.setup ~fuel:s.S.fuel ~runs:4 ~rng () in
  for _ = 1 to 200 do
    let plan =
      Sampler.sample_plan ~fault_bound:2 ~delay_factors:[ 2 ] ~crash_depth:2
        space ~rng
    in
    check_bool "sampled plan validates" true
      (Result.is_ok (Fault.validate ~max_crash_depth:2 plan))
  done

(* ------------------------------------------------------------ shrinking -- *)

(* Sample until a violating run of the scenario is found (fixed seed). *)
let failing_sample (s : S.t) ~kind ~seed ~tries =
  let rng = Rng.create ~seed in
  let fails o = Result.is_error (O.check_outcome ~spec:s.S.spec ~view:s.S.view o) in
  let rec go n =
    if n = 0 then None
    else
      let o = Sampler.run ~kind ~setup:s.S.setup ~fuel:s.S.fuel ~rng () in
      if fails o then Some o else go (n - 1)
  in
  (go tries, fails)

let test_shrink_properties () =
  let s = S.faulty_counter () in
  let sample, fails =
    failing_sample s ~kind:(Sampler.Pct { d = 3 }) ~seed:1L ~tries:500
  in
  let outcome =
    match sample with
    | Some o -> o
    | None -> Alcotest.fail "no violating sample found on faulty_counter"
  in
  let target = Shrink.Program s.S.setup in
  let m =
    match
      Shrink.minimize ~target ~fails ~schedule:outcome.Runner.schedule ()
    with
    | Ok m -> m
    | Error e -> Alcotest.fail ("minimize failed: " ^ e)
  in
  (* (a) the shrunk witness still fails the same checker *)
  check_bool "shrunk witness still fails" true (fails m.Shrink.m_outcome);
  check_bool "shrunk is no longer than the original" true
    (List.length m.Shrink.m_schedule <= List.length outcome.Runner.schedule);
  (* (b) local minimality: removing any single decision loses the failure *)
  let sched = m.Shrink.m_schedule in
  List.iteri
    (fun i _ ->
      let cand = List.filteri (fun j _ -> j <> i) sched in
      check_bool
        (Printf.sprintf "dropping decision %d loses the failure" i)
        false
        (fails (Shrink.tolerant_replay target ~plan:m.Shrink.m_plan cand)))
    sched;
  (* (c) the witness replays deterministically, twice *)
  let r1 = Shrink.replay target ~plan:m.Shrink.m_plan sched in
  let r2 = Shrink.replay target ~plan:m.Shrink.m_plan sched in
  check_bool "replay #1 = minimized outcome" true
    (Runner.outcome_equal r1 m.Shrink.m_outcome);
  check_bool "replay #2 = replay #1" true (Runner.outcome_equal r1 r2)

let test_shrink_rejects_passing_input () =
  let s = S.exchanger_pair () in
  let o =
    Sampler.run ~kind:Sampler.Random_walk ~setup:s.S.setup ~fuel:s.S.fuel
      ~rng:(Rng.create ~seed:1L) ()
  in
  match
    Shrink.minimize
      ~target:(Shrink.Program s.S.setup)
      ~fails:(fun _ -> false)
      ~schedule:o.Runner.schedule ()
  with
  | Ok _ -> Alcotest.fail "minimize accepted a non-failing input"
  | Error _ -> ()

(* ------------------------------------------------------ sampled checks -- *)

(* Every deliberately faulty object is caught by the sampled mode within a
   fixed-seed budget — the detection-power contract of ISSUE B15. *)
let detect_faulty (s : S.t) =
  t (s.S.name ^ " detected") (fun () ->
      let r =
        O.check_sampled ~seed:1L ~setup:s.S.setup ~spec:s.S.spec ~view:s.S.view
          ~fuel:s.S.fuel ~budget:2000 ()
      in
      check_bool (s.S.name ^ " violation found") false (O.ok r);
      check_bool "early exit spent less than the budget or all of it" true
        (r.O.runs <= 2000))

let detect_faulty_durable (d : S.durable) =
  t (d.S.d_name ^ " detected") (fun () ->
      let r =
        O.check_sampled_durable ~seed:1L
          ~max_crash_depth:d.S.d_max_crash_depth ~setup:d.S.d_setup
          ~spec:d.S.d_spec ~fuel:d.S.d_fuel ~budget:3000 ()
      in
      check_bool (d.S.d_name ^ " violation found") false (O.ok r))

(* Positive scenarios stay clean under sampling, including joint
   fault-plan sampling: the sampled plans are drawn from the same space the
   exhaustive fault sweep enumerates, so the obligations must accept. *)
let test_sampled_positive_clean () =
  let s = S.exchanger_pair () in
  List.iter
    (fun kind ->
      let r =
        O.check_sampled ~kind ~seed:2L ~setup:s.S.setup ~spec:s.S.spec
          ~view:s.S.view ~fuel:s.S.fuel ~budget:150 ()
      in
      check_bool (Sampler.kind_to_string kind ^ " clean") true (O.ok r);
      check_bool "ran the whole budget" true (r.O.runs = 150))
    kinds

let test_sampled_with_faults_positive_clean () =
  let s = S.treiber_push_pop () in
  let r =
    O.check_sampled_with_faults ~seed:2L ~fault_bound:1 ~delay_factors:[ 2 ]
      ~setup:s.S.setup ~spec:s.S.spec ~view:s.S.view ~fuel:s.S.fuel ~budget:200
      ()
  in
  check_bool "treiber clean under sampled faults" true (O.ok r)

let test_sampled_durable_positive_clean () =
  let d = S.stack_crash_recovery () in
  let r =
    O.check_sampled_durable ~seed:2L ~max_crash_depth:d.S.d_max_crash_depth
      ~setup:d.S.d_setup ~spec:d.S.d_spec ~fuel:d.S.d_fuel ~budget:200 ()
  in
  check_bool "durable stack clean under sampled crashes" true (O.ok r)

(* ------------------------------------------------------- failure report -- *)

(* The report and the rendered problem embed the full reproduction recipe:
   sampler kind, seed, budget, the schedule string and the verdict. *)
let test_report_embeds_reproduction_recipe () =
  let s = S.faulty_counter () in
  let kind = Sampler.Pct { d = 3 } in
  let r =
    O.check_sampled ~kind ~seed:1L ~setup:s.S.setup ~spec:s.S.spec
      ~view:s.S.view ~fuel:s.S.fuel ~budget:2000 ()
  in
  (match r.O.sampling with
  | None -> Alcotest.fail "sampled report carries no sampling metadata"
  | Some m ->
      check_bool "kind recorded" true (m.O.s_kind = kind);
      check_bool "seed recorded" true (Int64.equal m.O.s_seed 1L);
      check_bool "budget recorded" true (m.O.s_budget = 2000));
  (match r.O.exploration with
  | None -> Alcotest.fail "sampled report carries no exploration stats"
  | Some e ->
      check_bool "sampled_runs = runs" true (e.Explore.sampled_runs = r.O.runs);
      check_bool "one violation counted" true (e.Explore.violations_found = 1);
      check_bool "shrinking was attempted" true (e.Explore.shrink_candidates > 0));
  match r.O.problems with
  | [ p ] ->
      let has needle =
        let nl = String.length needle and hl = String.length p.O.message in
        let rec go i =
          i + nl <= hl && (String.sub p.O.message i nl = needle || go (i + 1))
        in
        go 0
      in
      check_bool "message names the sampler" true (has "pct:3");
      check_bool "message embeds the seed" true (has "seed 1");
      check_bool "message embeds the verdict" true (has "verdict:");
      check_bool "message renders the history" true (has "-- era 1 --");
      check_bool "message gives the recipe" true (has "reproduce:");
      (* the problem's raw pair replays the violation directly *)
      let o, _ = Runner.replay ~plan:p.O.plan ~setup:s.S.setup p.O.schedule in
      check_bool "printed witness fails on replay" true
        (Result.is_error (O.check_outcome ~spec:s.S.spec ~view:s.S.view o))
  | ps -> Alcotest.fail (Printf.sprintf "expected 1 problem, got %d" (List.length ps))

(* Same kind/seed/budget: the sampled check is reproducible end-to-end. *)
let test_sampled_check_reproducible () =
  let s = S.faulty_stack () in
  let run () =
    O.check_sampled ~seed:4L ~setup:s.S.setup ~spec:s.S.spec ~view:s.S.view
      ~fuel:s.S.fuel ~budget:1000 ()
  in
  let a = run () and b = run () in
  check_bool "same runs" true (a.O.runs = b.O.runs);
  check_bool "same problems" true
    (List.map (fun (p : O.problem) -> (p.O.schedule, p.O.plan, p.O.message))
       a.O.problems
    = List.map (fun (p : O.problem) -> (p.O.schedule, p.O.plan, p.O.message))
        b.O.problems)

(* ---------------------------------------- monitor x sampled witnesses -- *)

(* Replay a sampled witness under a freshly monitored setup and return the
   monitor's verdict for that run. *)
let replay_flag (s : S.t) (p : O.problem) =
  let wrapped, status =
    Verify.Monitor.wrap ~spec:s.S.spec ~view:s.S.view ~setup:s.S.setup
  in
  let (_ : Runner.outcome * Runner.frontier) =
    Runner.replay ~plan:p.O.plan ~setup:wrapped p.O.schedule
  in
  status ()

(* Integration of the online monitor with the sampled detectors: for every
   deliberately faulty object, take the raw (unshrunk) sampled witness and
   replay it under a Monitor.wrap'd setup. The monitor watches the trace
   obligation only, so two behaviours are correct:
   - the witness's trace leaves the specification: the monitor must flag
     it, and at the same decision step on a second replay;
   - the witness's trace is specification-legal and only the agreement
     obligation fails (the selfish exchanger: it logs a legal failure
     element while its history claims success): the monitor must stay
     [`Ok] while the black-box check still rejects the replayed outcome —
     the two obligations genuinely divide the work. *)
let monitor_flags_witness (s : S.t) =
  t (s.S.name ^ " flagged on witness replay") (fun () ->
      let r =
        O.check_sampled ~seed:1L ~shrink:false ~setup:s.S.setup ~spec:s.S.spec
          ~view:s.S.view ~fuel:s.S.fuel ~budget:2000 ()
      in
      let p =
        match r.O.problems with
        | p :: _ -> p
        | [] -> Alcotest.fail (s.S.name ^ ": no sampled witness found")
      in
      let trace_rejected =
        let o, _ = Runner.replay ~plan:p.O.plan ~setup:s.S.setup p.O.schedule in
        Option.is_some
          (Cal.Spec.explain_rejection s.S.spec (s.S.view o.Runner.trace))
      in
      match (trace_rejected, replay_flag s p, replay_flag s p) with
      | true, `Violated (step, _), `Violated (step', _) ->
          check_bool
            (Printf.sprintf "same step on both replays (%d, %d)" step step')
            true (step = step')
      | true, _, _ ->
          Alcotest.fail (s.S.name ^ ": monitor missed the sampled witness")
      | false, `Ok, `Ok ->
          (* agreement-only bug: invisible to a trace monitor by design *)
          let o, _ =
            Runner.replay ~plan:p.O.plan ~setup:s.S.setup p.O.schedule
          in
          check_bool "black-box check still rejects the replay" true
            (Result.is_error
               (O.check_outcome ~spec:s.S.spec ~view:s.S.view o))
      | false, _, _ ->
          Alcotest.fail
            (s.S.name ^ ": monitor flagged a specification-legal trace"))

(* The same round trip through the joint schedule x fault-plan sampler on
   the lost-update counter: the witness may carry a non-trivial fault
   plan, and replaying the (schedule, plan) pair under the monitored setup
   flags the bug while the plan's faults fire. *)
let test_monitor_flags_fault_witness () =
  let s = S.faulty_counter () in
  let r =
    O.check_sampled_with_faults ~seed:1L ~shrink:false ~fault_bound:1
      ~delay_factors:[ 2 ] ~setup:s.S.setup ~spec:s.S.spec ~view:s.S.view
      ~fuel:s.S.fuel ~budget:2000 ()
  in
  let p =
    match r.O.problems with
    | p :: _ -> p
    | [] -> Alcotest.fail "no fault-plan witness found"
  in
  match (replay_flag s p, replay_flag s p) with
  | `Violated (step, _), `Violated (step', _) ->
      check_bool "same step on both replays" true (step = step')
  | `Ok, _ | _, `Ok -> Alcotest.fail "monitor missed the fault-plan witness"

(* Violation latching across Crash_system eras: wrap_durable installs the
   monitor on the boot program and on every recovery program, and a
   violation recorded in one era must survive later era restarts. The
   durable structures are checked black-box (they log no aux trace), so
   the probe here is a self-instrumented durable counter that logs its
   elements the way the volatile structures do — and whose first recovery
   epoch logs [incr => 41], illegal for the freshly restarted acceptor;
   the second recovery epoch behaves. Two-crash plans are swept until a
   run has the shape we need: violated strictly before the second crash,
   and the run entered the third era — the final status still being
   [`Violated] is the latch. *)
let test_monitor_latches_across_crash_eras () =
  let ( let* ) = Prog.bind in
  let oid = Cal.Ids.Oid.v "FC" in
  let t0 = Cal.Ids.Tid.of_int 0 in
  let spec = Cal.Spec_counter.spec ~oid () in
  let setup ctx =
    let pad n = Prog.seq (List.init n (fun _ -> Prog.atomic (fun () -> ()))) in
    let incr ret =
      Harness.call ctx ~tid:t0 ~oid ~fid:Cal.Spec_counter.fid_incr
        ~arg:Cal.Value.unit
        (let* () = pad 2 in
         Prog.atomic (fun () ->
             Ctx.log_element ctx
               (Cal.Ca_trace.singleton (Cal.Spec_counter.incr_op ~oid t0 ret));
             Cal.Value.int ret))
    in
    let thread body =
      { Runner.threads = [| body |]; observe = None; on_label = None }
    in
    {
      Runner.boot = thread (incr 0);
      domain = Pcell.domain ();
      recover =
        (fun ~epoch ->
          if epoch = 1 then
            thread
              (let* v = incr 41 in
               let* () = pad 4 in
               Prog.return v)
          else thread (incr 0));
    }
  in
  let wrapped, status =
    Verify.Monitor.wrap_durable ~spec ~view:Cal.View.identity ~setup
  in
  let found = ref None in
  for a = 1 to 8 do
    for db = 1 to 8 do
      if !found = None then begin
        let b = a + db in
        let plan =
          [ Fault.crash_system ~at_step:a; Fault.crash_system ~at_step:b ]
        in
        let o =
          Runner.run_random_durable ~plan ~setup:wrapped ~fuel:40
            ~rng:(Rng.create ~seed:1L) ()
        in
        match status () with
        | `Violated (step, _)
          when step < b && Cal.History.eras o.Runner.history = 3 ->
            found := Some (plan, o, step)
        | _ -> ()
      end
    done
  done;
  match !found with
  | None ->
      Alcotest.fail
        "no crash-point pair violated before the second crash and reached \
         era 3"
  | Some (plan, o, step) ->
      (* the era-3 acceptor restart did not clear the era-2 violation, and
         the latched step replays deterministically *)
      let o', _ =
        Runner.replay_durable ~plan ~setup:wrapped o.Runner.schedule
      in
      check_bool "replay reproduces the run" true (Runner.outcome_equal o o');
      (match status () with
      | `Violated (step', _) ->
          check_bool "latched step stable on replay" true (step = step')
      | `Ok -> Alcotest.fail "replay lost the latched violation")

(* -------------------------------------------------------------- witness -- *)

let test_schedule_string () =
  let open Cal.Witness in
  check_bool "empty" true (schedule_string [] = "<empty>");
  let s =
    schedule_string
      [
        { thread = 0; preemptive = false; steps = 4 };
        { thread = 1; preemptive = false; steps = 2 };
        { thread = 2; preemptive = true; steps = 3 };
      ]
  in
  Alcotest.(check string) "dejafu style" "S0---S1-P2--" s

let () =
  Alcotest.run "sampling"
    [
      ( "round-trips",
        [
          t "run_random replays" test_run_random_round_trip;
          t "run_random_durable replays" test_run_random_durable_round_trip;
          t "samplers deterministic + replayable"
            test_sampler_deterministic_and_replayable;
          t "preemption bound respected" test_preemption_bound_respected;
          t "sampled plans validate" test_sample_plan_valid;
        ] );
      ( "shrinking",
        [
          t "still fails, 1-minimal, deterministic" test_shrink_properties;
          t "rejects passing input" test_shrink_rejects_passing_input;
        ] );
      ( "detection",
        List.map detect_faulty (S.faulty ())
        @ List.map detect_faulty_durable (S.durable_faulty ()) );
      ( "positives",
        [
          t "fault-free scenarios stay clean" test_sampled_positive_clean;
          t "fault sampling stays clean" test_sampled_with_faults_positive_clean;
          t "durable crash sampling stays clean"
            test_sampled_durable_positive_clean;
        ] );
      ( "reports",
        [
          t "reproduction recipe embedded" test_report_embeds_reproduction_recipe;
          t "sampled check reproducible" test_sampled_check_reproducible;
          t "schedule string" test_schedule_string;
        ] );
      ( "monitor",
        List.map monitor_flags_witness (S.faulty ())
        @ [
            t "fault-plan witness flagged" test_monitor_flags_fault_witness;
            t "violation latches across crash eras"
              test_monitor_latches_across_crash_eras;
          ] );
    ]
