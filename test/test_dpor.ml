(* Tests for the source-DPOR engine and the bounded iterative-deepening
   strategies: vector-clock dependency on hand-built races, race reporting
   on witness schedules, verdict agreement with the unpruned engine on
   every standard scenario, bug-finding under the bounds, exact-partition
   honesty of the deepening levels, and strategy parsing. *)

open Cal
open Conc
open Conc.Prog.Infix
open Test_support
module S = Workloads.Scenarios
module O = Verify.Obligations

let t name f = Alcotest.test_case name `Quick f

(* ----------------------------------------------------- Deps unit tests -- *)

let eff ~thread ?(reads = []) ?(writes = []) () =
  Deps.effect_of ~thread ~label:"step"
    ~recorded:(Some (List.sort compare reads, List.sort compare writes))

let test_conflicts () =
  let w_x = eff ~thread:0 ~writes:[ "x" ] () in
  let r_x = eff ~thread:1 ~reads:[ "x" ] () in
  let w_y = eff ~thread:1 ~writes:[ "y" ] () in
  let yield = Deps.effect_of ~thread:1 ~label:"yield" ~recorded:None in
  let opaque = Deps.effect_of ~thread:1 ~label:"mystery" ~recorded:None in
  let labelled = Deps.effect_of ~thread:1 ~label:"cas@x" ~recorded:None in
  check_bool "write/read same location conflicts" true (Deps.conflicts w_x r_x);
  check_bool "write/write distinct locations commute" false
    (Deps.conflicts w_x w_y);
  check_bool "read/read same location commutes" false
    (Deps.conflicts r_x (eff ~thread:0 ~reads:[ "x" ] ()));
  check_bool "yield is pure" false (Deps.conflicts w_x yield);
  check_bool "unknown label is opaque" true (Deps.conflicts w_x opaque);
  check_bool "opaque vs pure commutes" false (Deps.conflicts yield opaque);
  (* the "…@loc" heuristic keys on the "@loc" suffix: two labelled steps on
     the same suffix conflict, different suffixes commute *)
  check_bool "label fallback reads+writes its @loc" true
    (Deps.conflicts labelled
       (Deps.effect_of ~thread:0 ~label:"read@x" ~recorded:None));
  check_bool "label fallback is per-location" false
    (Deps.conflicts labelled
       (Deps.effect_of ~thread:0 ~label:"read@y" ~recorded:None));
  check_bool "labelled step commutes with disjoint recorded write" false
    (Deps.conflicts labelled w_y);
  check_bool "dependent includes program order" true
    (Deps.dependent w_x (eff ~thread:0 ~writes:[ "z" ] ()))

(* The pinned 3-thread race: A writes x, B writes y, C reads x then y. The
   vector clocks must report exactly (A, C-read-x) and (B, C-read-y) —
   A and B touch different locations and must not race. *)
let test_vector_clock_three_thread_race () =
  let tk = Deps.tracker () in
  let tk, s_a, r_a = Deps.observe tk (eff ~thread:0 ~writes:[ "x" ] ()) in
  let tk, s_b, r_b = Deps.observe tk (eff ~thread:1 ~writes:[ "y" ] ()) in
  let tk, s_cx, r_cx = Deps.observe tk (eff ~thread:2 ~reads:[ "x" ] ()) in
  let _tk, s_cy, r_cy = Deps.observe tk (eff ~thread:2 ~reads:[ "y" ] ()) in
  Alcotest.(check int) "A races with nothing" 0 (List.length r_a);
  Alcotest.(check int) "B races with nothing (disjoint loc)" 0
    (List.length r_b);
  (match r_cx with
  | [ earlier ] ->
      Alcotest.(check int) "C's x-read races with A" s_a.Deps.st_index
        earlier.Deps.st_index
  | l -> Alcotest.failf "C's x-read: %d races (want 1)" (List.length l));
  (match r_cy with
  | [ earlier ] ->
      Alcotest.(check int) "C's y-read races with B" s_b.Deps.st_index
        earlier.Deps.st_index
  | l -> Alcotest.failf "C's y-read: %d races (want 1)" (List.length l));
  (* the race edge orders the pair for the rest of the path *)
  check_bool "A happens-before C's x-read after the race" true
    (Deps.happens_before ~earlier:s_a s_cx);
  check_bool "A and B stay unordered" false
    (Deps.happens_before ~earlier:s_a s_b);
  check_bool "program order: C's reads are ordered" true
    (Deps.happens_before ~earlier:s_cx s_cy)

(* ------------------------------------------- race-annotated witnesses -- *)

let race_setup ctx =
  let x = Cell.make ctx ~loc:"x" 0 in
  let y = Cell.make ctx ~loc:"y" 0 in
  let a =
    let* () = Cell.write x 1 in
    Prog.return (Value.int 0)
  in
  let b =
    let* () = Cell.write y 1 in
    Prog.return (Value.int 0)
  in
  let c =
    let* vx = Cell.read x in
    let* vy = Cell.read y in
    Prog.return (Value.int (vx + vy))
  in
  { Runner.threads = [| a; b; c |]; observe = None; on_label = None }

(* races_of replays a schedule through the same analysis: on the sequential
   schedule of the 3-thread client it must name the (A,C) and (B,C) pairs
   with their locations, and no (A,B) pair. *)
let test_races_of_schedule () =
  let first = ref None in
  let (_ : Explore.stats) =
    Explore.exhaustive ~setup:race_setup ~fuel:12 ~max_runs:1
      ~f:(fun (o : Runner.outcome) ->
        if !first = None then first := Some o.Runner.schedule)
      ()
  in
  let schedule =
    match !first with
    | Some s -> s
    | None -> Alcotest.fail "no run delivered"
  in
  let races = Explore.races_of ~setup:race_setup schedule in
  let pair (r : Witness.race) =
    ((min r.r_thread_a r.r_thread_b, max r.r_thread_a r.r_thread_b), r.r_loc)
  in
  let pairs = List.map pair races in
  check_bool "x race between threads 0 and 2" true
    (List.mem ((0, 2), "x") pairs);
  check_bool "y race between threads 1 and 2" true
    (List.mem ((1, 2), "y") pairs);
  check_bool "no race between the disjoint writers" true
    (List.for_all (fun ((a, b), _) -> not (a = 0 && b = 1)) pairs);
  (* the renderer smoke: every pair prints as tA#i ~ tB#j @ loc *)
  let rendered = Fmt.str "%a" Witness.pp_races races in
  check_bool "pp_races names a location" true
    (String.length rendered > 0
    && races <> []
    && String.contains rendered '@')

let test_pp_races_empty () =
  Alcotest.(check string)
    "empty race list" "races: none detected"
    (Fmt.str "%a" Witness.pp_races [])

(* ------------------------------------------------- strategy selection -- *)

let test_strategy_parsing () =
  let cases =
    [
      ("dfs", Some Explore.Dfs);
      ("dpor", Some Explore.Dpor);
      ("DPOR", Some Explore.Dpor);
      ("preemption:2", Some (Explore.Preemption_bounded { bound = 2 }));
      ("preempt:0", Some (Explore.Preemption_bounded { bound = 0 }));
      ("delay:3", Some (Explore.Delay_bounded { bound = 3 }));
      ("delay:-1", None);
      ("delay:", None);
      ("bogus", None);
    ]
  in
  List.iter
    (fun (s, expect) ->
      check_bool (Fmt.str "parse %S" s) true
        (Explore.strategy_of_string s = expect))
    cases;
  List.iter
    (fun st ->
      check_bool
        (Fmt.str "roundtrip %s" (Explore.strategy_to_string st))
        true
        (Explore.strategy_of_string (Explore.strategy_to_string st) = Some st))
    [
      Explore.Dfs;
      Explore.Dpor;
      Explore.Preemption_bounded { bound = 2 };
      Explore.Delay_bounded { bound = 1 };
    ]

(* ------------------------------------ agreement with the full engine --- *)

(* Scenario fuels trimmed where the unbounded DPOR space would make the
   cross-check slow; the injected bugs all surface well within these. *)
let agreement_cases () =
  [
    (S.exchanger_pair (), 12);
    (S.treiber_push_pop (), 10);
    (S.counter_incrs ~n:1, 12);
    (S.register_write_read (), 10);
    (S.faulty_counter (), 10);
    (S.faulty_stack (), 10);
    (S.faulty_exchanger (), 10);
    (S.faulty_elim_queue (), 10);
  ]

(* DPOR is a complete reduction: the full-obligation verdict must agree
   with the unpruned DFS on every scenario, and a rejection's witness
   schedule must replay to a failing outcome. *)
let test_dpor_agrees_with_dfs () =
  List.iter
    (fun ((s : S.t), fuel) ->
      let dfs =
        O.check_object ~strategy:Explore.Dfs ~setup:s.setup ~spec:s.spec
          ~view:s.view ~fuel ()
      in
      let dpor =
        O.check_object ~strategy:Explore.Dpor ~setup:s.setup ~spec:s.spec
          ~view:s.view ~fuel ()
      in
      check_bool
        (Fmt.str "%s: dpor verdict = dfs verdict" s.name)
        (O.ok dfs) (O.ok dpor);
      check_bool
        (Fmt.str "%s: dpor explores no more runs than dfs" s.name)
        true (dpor.O.runs <= dfs.O.runs);
      (match dpor.O.exploration with
      | Some e when not (O.ok dpor) ->
          check_bool
            (Fmt.str "%s: rejecting dpor run saw races" s.name)
            true
            (e.Explore.races_found > 0 || e.Explore.backtrack_points >= 0)
      | _ -> ());
      match (O.ok dpor, dpor.O.problems) with
      | false, (p : O.problem) :: _ ->
          (* the witness replays to a genuinely failing outcome *)
          let o, _ = Runner.replay ~setup:s.setup p.O.schedule in
          check_bool
            (Fmt.str "%s: dpor witness replays to a violation" s.name)
            true
            (Result.is_error (O.check_outcome ~spec:s.spec ~view:s.view o))
      | _ -> ())
    (agreement_cases ())

(* The bounded strategies are underapproximations: they may never reject an
   accepting space, and at delay bound <= 2 they find every injected bug
   (the B18 claim, pinned here at test fuel). *)
let test_bounded_strategies_verdicts () =
  List.iter
    (fun ((s : S.t), fuel) ->
      let dfs_ok =
        O.ok
          (O.check_object ~strategy:Explore.Dfs ~setup:s.setup ~spec:s.spec
             ~view:s.view ~fuel ())
      in
      List.iter
        (fun strategy ->
          let r =
            O.check_object ~strategy ~setup:s.setup ~spec:s.spec ~view:s.view
              ~fuel ()
          in
          if dfs_ok then
            check_bool
              (Fmt.str "%s: %s accepts an accepting space" s.name
                 (Explore.strategy_to_string strategy))
              true (O.ok r)
          else
            check_bool
              (Fmt.str "%s: %s finds the violation" s.name
                 (Explore.strategy_to_string strategy))
              false (O.ok r))
        [
          Explore.Preemption_bounded { bound = 2 };
          Explore.Delay_bounded { bound = 2 };
        ])
    (agreement_cases ())

(* ------------------------------------------------ deepening honesty ---- *)

(* the lost-update client: two read-increment-write threads over a tracked
   cell — the canonical DPOR smoke (it must NOT be pruned away) *)
let lost_update_setup ctx =
  let c = Cell.make ctx ~loc:"c" 0 in
  let th =
    let* v = Cell.read c in
    let* () = Cell.write c (v + 1) in
    Prog.return (Value.int v)
  in
  { Runner.threads = [| th; th |]; observe = None; on_label = None }

let test_dpor_keeps_lost_update () =
  let lost = ref false in
  let stats =
    Explore.exhaustive_strategy ~strategy:Explore.Dpor ~setup:lost_update_setup
      ~fuel:8
      ~f:(fun (o : Runner.outcome) ->
        match (o.Runner.results.(0), o.Runner.results.(1)) with
        | Some a, Some b ->
            if Value.equal a (Value.int 0) && Value.equal b (Value.int 0) then
              lost := true
        | _ -> ())
      ()
  in
  check_bool "both threads can read 0 (lost update survives reduction)" true
    !lost;
  check_bool "the run set is reduced but nonempty" true (stats.Explore.runs >= 2);
  check_bool "races were found" true (stats.Explore.races_found > 0);
  check_bool "dpor stats are not bounded" false stats.Explore.bounded

(* A bound high enough to never cut an edge must enumerate exactly the DFS
   run set (the deepening levels partition it) and honestly report
   [bounded = false]; a cutting bound reports [bounded = true]. *)
let test_deepening_partitions_exactly () =
  let fuel = 8 in
  let dfs =
    Explore.exhaustive ~prune:false ~setup:lost_update_setup ~fuel ~f:ignore ()
  in
  List.iter
    (fun strategy ->
      let st =
        Explore.exhaustive_strategy ~strategy ~setup:lost_update_setup ~fuel
          ~f:ignore ()
      in
      check_bool
        (Fmt.str "%s: uncut deepening covers the DFS run set exactly"
           (Explore.strategy_to_string strategy))
        true
        (st.Explore.runs = dfs.Explore.runs);
      check_bool
        (Fmt.str "%s: uncut deepening is not 'bounded'"
           (Explore.strategy_to_string strategy))
        false st.Explore.bounded;
      Alcotest.(check int)
        (Fmt.str "%s: no bound hits" (Explore.strategy_to_string strategy))
        0 st.Explore.bound_hits)
    [
      Explore.Preemption_bounded { bound = 64 };
      Explore.Delay_bounded { bound = 64 };
    ];
  let cut =
    Explore.exhaustive_strategy
      ~strategy:(Explore.Delay_bounded { bound = 0 })
      ~setup:lost_update_setup ~fuel ~f:ignore ()
  in
  check_bool "a cutting bound reports bounded=true" true cut.Explore.bounded;
  check_bool "a cutting bound counts its hits" true (cut.Explore.bound_hits > 0);
  check_bool "delay bound 0 is the single default run" true
    (cut.Explore.runs = 1)

(* CAL_EXPLORE_STRATEGY drives the obligation checks; invalid values fall
   back to the DFS. *)
let test_env_strategy () =
  let s = S.exchanger_pair () in
  let ambient =
    Option.value ~default:"" (Sys.getenv_opt "CAL_EXPLORE_STRATEGY")
  in
  let with_env v f =
    Unix.putenv "CAL_EXPLORE_STRATEGY" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "CAL_EXPLORE_STRATEGY" ambient) f
  in
  let dfs_runs =
    with_env "dfs" (fun () ->
        (O.check_black_box ~setup:s.setup ~spec:s.spec ~fuel:10 ()).O.runs)
  in
  with_env "dpor" (fun () ->
      let r = O.check_black_box ~setup:s.setup ~spec:s.spec ~fuel:10 () in
      check_bool "env dpor accepts" true (O.ok r);
      check_bool "env dpor reduces the run count" true (r.O.runs < dfs_runs));
  with_env "no-such-strategy" (fun () ->
      let r = O.check_black_box ~setup:s.setup ~spec:s.spec ~fuel:10 () in
      Alcotest.(check int) "invalid env falls back to dfs" dfs_runs r.O.runs)

let () =
  Alcotest.run "dpor"
    [
      ( "deps",
        [
          t "effect conflicts" test_conflicts;
          t "vector clocks pin the 3-thread race"
            test_vector_clock_three_thread_race;
        ] );
      ( "witness",
        [
          t "races_of annotates a schedule" test_races_of_schedule;
          t "pp_races renders the empty list" test_pp_races_empty;
        ] );
      ( "strategy",
        [
          t "parsing and roundtrip" test_strategy_parsing;
          t "CAL_EXPLORE_STRATEGY selects the engine" test_env_strategy;
        ] );
      ( "agreement",
        [
          t "dpor agrees with dfs on every scenario" test_dpor_agrees_with_dfs;
          t "bounded strategies: sound accepts, bugs within bound 2"
            test_bounded_strategies_verdicts;
        ] );
      ( "deepening",
        [
          t "dpor keeps the lost update" test_dpor_keeps_lost_update;
          t "deepening partitions the run set exactly"
            test_deepening_partitions_exactly;
        ] );
    ]
