(* Cross-cutting property tests tying the formal pieces together:
   - realised histories of legal traces are CAL (soundness of ⊑CAL search);
   - linearizability implies CAL (sequential witnesses are CA-traces of
     singletons);
   - CAL is invariant under response delay (weakening the real-time order);
   - prefix closure of generated specs;
   - corrupted histories are never *wrongly* accepted: whenever the checker
     accepts, an explicit witness exists and is verifiable. *)

open Cal
open Test_support

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)
let ex_spec = Spec_exchanger.spec ()
let stack_spec = Spec_stack.spec ~oid:s_oid ~allow_spurious_failure:true ()

let gen_of seed = Workloads.Gen.create ~seed:(Int64.of_int seed)

let prop_lin_implies_cal seed =
  let g = gen_of (seed + 3) in
  let tr = Workloads.Gen.stack_trace g ~oid:s_oid ~threads:3 ~elements:6 in
  let h = Workloads.Gen.history_of_trace g tr in
  (not (Lin_checker.is_linearizable ~spec:stack_spec h))
  || Cal_checker.is_cal ~spec:stack_spec h

let prop_accepted_witness_verifiable seed =
  let g = gen_of (seed + 17) in
  let tr = Workloads.Gen.exchanger_trace g ~oid:e_oid ~threads:3 ~elements:4 in
  let h = Workloads.Gen.history_of_trace g tr in
  match Cal_checker.check ~spec:ex_spec h with
  | Cal_checker.Accepted { trace; completion; _ } ->
      Spec.accepts ex_spec trace && Agreement.agrees completion trace
  | Cal_checker.Rejected _ -> false (* realised histories must be accepted *)

(* Delaying a response (moving it later, within well-formedness) only
   removes real-time orderings, so a CAL history stays CAL. *)
let delay_last_response h =
  let actions = History.to_list h in
  match List.rev actions with
  | last :: rest_rev when Action.is_res last -> History.of_list (List.rev rest_rev @ [ last ])
  | _ -> h

let prop_cal_stable_under_delay seed =
  let g = gen_of (seed + 29) in
  let tr = Workloads.Gen.exchanger_trace g ~oid:e_oid ~threads:3 ~elements:3 in
  let h = Workloads.Gen.history_of_trace g tr in
  Cal_checker.is_cal ~spec:ex_spec (delay_last_response h)

(* Dropping the last actions of a history keeps it CAL: object systems are
   prefix-closed and the definition handles pending operations. *)
let prop_cal_prefix_closed seed =
  let g = gen_of (seed + 41) in
  let tr = Workloads.Gen.exchanger_trace g ~oid:e_oid ~threads:3 ~elements:3 in
  let h = Workloads.Gen.history_of_trace g tr in
  let n = History.length h in
  n = 0
  ||
  let k = Workloads.Gen.int g n in
  let prefix = History.of_list (List.filteri (fun i _ -> i < k) (History.to_list h)) in
  Cal_checker.is_cal ~spec:ex_spec prefix

(* A mutated history either stays CAL or is rejected — and rejection of the
   original never flips to acceptance of a *corrupted return value* for the
   counter, whose returns are unique. *)
let prop_counter_corrupt_return_rejected seed =
  let g = gen_of (seed + 53) in
  let c = oid "C" in
  let spec = Spec_counter.spec ~oid:c () in
  let tr = Workloads.Gen.counter_trace g ~oid:c ~threads:3 ~elements:5 in
  let h = Workloads.Gen.history_of_trace ~delay:0.0 g tr in
  (* corrupt one incr return to a wildly out-of-range value *)
  let actions = Array.of_list (History.to_list h) in
  let res_indices =
    Array.to_list actions
    |> List.mapi (fun i a -> (i, a))
    |> List.filter_map (fun (i, a) ->
           match a with
           | Action.Res { fid; _ } when Ids.Fid.equal fid Spec_counter.fid_incr ->
               Some i
           | _ -> None)
  in
  match res_indices with
  | [] -> true
  | i :: _ ->
      (match actions.(i) with
      | Action.Res { tid; oid; fid; _ } ->
          actions.(i) <- Action.res ~tid ~oid ~fid (vi 424242)
      | Action.Inv _ | Action.Crash _ -> ());
      not (Cal_checker.is_cal ~spec (History.of_list (Array.to_list actions)))

(* The union spec accepts exactly the interleavings whose per-object
   projections are accepted. *)
let prop_union_projections seed =
  let g = gen_of (seed + 67) in
  let tr_e = Workloads.Gen.exchanger_trace g ~oid:e_oid ~threads:3 ~elements:3 in
  let tr_s = Workloads.Gen.stack_trace g ~oid:s_oid ~threads:3 ~elements:3 in
  (* random interleaving of the two traces *)
  let rec weave a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | x :: a', y :: b' ->
        if Workloads.Gen.int g 2 = 0 then x :: weave a' (y :: b')
        else y :: weave (x :: a') b'
  in
  let mixed = weave tr_e tr_s in
  let u = Spec.union [ ex_spec; stack_spec ] in
  Spec.accepts u mixed
  && Spec.accepts ex_spec (Ca_trace.proj_object mixed e_oid)
  && Spec.accepts stack_spec (Ca_trace.proj_object mixed s_oid)

let () =
  Alcotest.run "props"
    [
      ( "cross-cutting",
        [
          qtest ~count:120 "lin implies CAL" arb_seed prop_lin_implies_cal;
          qtest ~count:120 "accepted witnesses verify" arb_seed
            prop_accepted_witness_verifiable;
          qtest ~count:120 "CAL stable under response delay" arb_seed
            prop_cal_stable_under_delay;
          qtest ~count:80 "CAL prefix-closed" arb_seed prop_cal_prefix_closed;
          qtest ~count:80 "corrupted counter returns rejected" arb_seed
            prop_counter_corrupt_return_rejected;
          qtest ~count:80 "union accepts iff projections do" arb_seed
            prop_union_projections;
        ] );
    ]
