(* Tests for the write-ahead journal and snapshot store: frame-codec
   roundtrips, segment rotation, recovery from truncated and corrupted
   tails (never raising, honestly reporting drops), hostile giant
   declared lengths, snapshot retention/compaction with fallback to an
   older generation, and a fuzz property that recovery is total on
   arbitrary directory contents. *)

open Test_support
module Journal = Service.Journal
module Config = Service.Config

let t name f = Alcotest.test_case name `Quick f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then (
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path

let tmpdir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "cal-journal-test-%d-%d" (Unix.getpid ()) !counter)
    in
    rm_rf dir;
    dir

let dur ?(segment_bytes = 4096) ?(flush_every = 1) ?(fsync_every = 0)
    ?(snapshot_every = 0) ?(keep_snapshots = 2) () =
  { Config.segment_bytes; flush_every; fsync_every; snapshot_every;
    keep_snapshots }

let mk_writer ?durability ?next_seq dir =
  let durability =
    match durability with Some d -> d | None -> dur ()
  in
  match Journal.create ~dir ~durability ?next_seq () with
  | Ok w -> w
  | Error m -> Alcotest.fail ("writer refused: " ^ m)

let recover dir =
  match Journal.recover ~dir with
  | Ok r -> r
  | Error m -> Alcotest.fail ("recover refused: " ^ m)

let record_eq (a : Journal.record) (b : Journal.record) = a = b

let check_records msg expected (actual : Journal.record list) =
  check_bool msg true
    (List.length expected = List.length actual
    && List.for_all2 record_eq expected actual)

let segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".seg")
  |> List.sort compare

let snapshots dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".snap")
  |> List.sort compare

(* The awkward payload shapes the daemon actually journals: blanks,
   comments, binary junk from hostile clients, over-long lines. *)
let sample_records =
  [
    Journal.Line "t1 inv C.incr ()";
    Journal.Tick;
    Journal.Line "";
    Journal.Line "# comment line";
    Journal.Line "payload with \xCA magic bytes \x00\xFF inside";
    Journal.Tick;
    Journal.Line (String.make 6000 'x');
    Journal.Line "t1 res C.incr 0";
  ]

(* ------------------------------------------------------------ basics -- *)

let test_crc32_known_answer () =
  Alcotest.(check int32) "IEEE crc32 check value" 0xCBF43926l
    (Journal.crc32 "123456789");
  Alcotest.(check int32) "empty string" 0l (Journal.crc32 "")

let test_roundtrip () =
  let dir = tmpdir () in
  let w = mk_writer dir in
  List.iter (fun r -> ignore (Journal.append w r)) sample_records;
  Alcotest.(check int) "last_seq counts appends"
    (List.length sample_records) (Journal.last_seq w);
  Journal.close w;
  let r = recover dir in
  check_records "all records recovered" sample_records r.Journal.records;
  Alcotest.(check int) "nothing dropped" 0 r.Journal.dropped_bytes;
  Alcotest.(check int) "no quarantine" 0 (List.length r.Journal.quarantined);
  Alcotest.(check int) "last seq" (List.length sample_records)
    r.Journal.last_seq

let test_rotation_spans_segments () =
  let dir = tmpdir () in
  let w = mk_writer ~durability:(dur ~segment_bytes:4096 ()) dir in
  let records =
    List.init 300 (fun i -> Journal.Line (Fmt.str "line %d %s" i (String.make 80 'p')))
  in
  List.iter (fun r -> ignore (Journal.append w r)) records;
  Journal.close w;
  check_bool "rotated into several segments" true
    (List.length (segments dir) > 3);
  let r = recover dir in
  check_records "records survive rotation" records r.Journal.records;
  Alcotest.(check int) "nothing dropped" 0 r.Journal.dropped_bytes

let test_writer_resumes_after_recovery () =
  let dir = tmpdir () in
  let w = mk_writer dir in
  let first = [ Journal.Line "a"; Journal.Tick; Journal.Line "b" ] in
  List.iter (fun r -> ignore (Journal.append w r)) first;
  Journal.close w;
  let r = recover dir in
  let w2 = mk_writer ~next_seq:(r.Journal.last_seq + 1) dir in
  let second = [ Journal.Line "c"; Journal.Tick ] in
  List.iter (fun rc -> ignore (Journal.append w2 rc)) second;
  Journal.close w2;
  let r2 = recover dir in
  check_records "both generations recovered" (first @ second)
    r2.Journal.records;
  Alcotest.(check int) "contiguous seqs" 5 r2.Journal.last_seq

(* ------------------------------------------- truncation and corruption -- *)

let write_then_close dir records =
  (* one big segment so the corruption tests have a single file to maul *)
  let w = mk_writer ~durability:(dur ~segment_bytes:65_536 ()) dir in
  List.iter (fun r -> ignore (Journal.append w r)) records;
  Journal.close w

let only_segment dir =
  match segments dir with
  | [ s ] -> Filename.concat dir s
  | ss -> Alcotest.fail (Fmt.str "expected one segment, got %d" (List.length ss))

let test_truncated_tail_every_cut_point () =
  let dir = tmpdir () in
  write_then_close dir sample_records;
  let seg = only_segment dir in
  let full = In_channel.with_open_bin seg In_channel.input_all in
  let n = String.length full in
  (* Every prefix of the segment must recover to a prefix of the
     records, without raising, and report any partial-frame bytes. *)
  for cut = 0 to n - 1 do
    let dir2 = tmpdir () in
    Sys.mkdir dir2 0o755;
    Out_channel.with_open_bin (Filename.concat dir2 (Filename.basename seg))
      (fun oc -> Out_channel.output_string oc (String.sub full 0 cut));
    let r = recover dir2 in
    check_bool "prefix only" true
      (r.Journal.replayed <= List.length sample_records);
    List.iteri
      (fun i rc ->
        check_bool "replayed records match the original prefix" true
          (record_eq rc (List.nth sample_records i)))
      r.Journal.records;
    check_bool "drop accounting matches the truncation" true
      (r.Journal.dropped_bytes >= 0 && r.Journal.dropped_bytes <= cut);
    rm_rf dir2
  done;
  rm_rf dir

let test_corrupt_byte_flip_is_contained () =
  let dir = tmpdir () in
  write_then_close dir sample_records;
  let seg = only_segment dir in
  let full = In_channel.with_open_bin seg In_channel.input_all in
  let n = String.length full in
  List.iter
    (fun pos ->
      let mutated = Bytes.of_string full in
      Bytes.set mutated pos (Char.chr (Char.code full.[pos] lxor 0x41));
      Out_channel.with_open_bin seg (fun oc ->
          Out_channel.output_string oc (Bytes.to_string mutated));
      let r = recover dir in
      check_bool "recovery is a prefix" true
        (r.Journal.replayed <= List.length sample_records);
      check_bool "corruption was noticed" true
        (r.Journal.replayed < List.length sample_records);
      check_bool "bad tail quarantined or dropped" true
        (r.Journal.dropped_bytes > 0);
      (* quarantine files from one probe must not confuse the next *)
      List.iter (fun q -> Sys.remove q) r.Journal.quarantined)
    [ 0; 1; 5; 9; n / 2; n - 1 ];
  rm_rf dir

let test_giant_declared_length_is_rejected_cheaply () =
  let dir = tmpdir () in
  write_then_close dir [ Journal.Line "good" ];
  let seg = only_segment dir in
  (* Append a frame whose header declares a multi-gigabyte body. *)
  let hostile = Buffer.create 16 in
  Buffer.add_char hostile '\xCA';
  Buffer.add_int32_be hostile 0x7FFFFFFFl;
  Buffer.add_int32_be hostile 0l;
  Buffer.add_string hostile "tiny";
  Out_channel.with_open_gen [ Open_append; Open_binary ] 0o644 seg (fun oc ->
      Out_channel.output_string oc (Buffer.contents hostile));
  let r = recover dir in
  check_records "valid prefix kept" [ Journal.Line "good" ] r.Journal.records;
  Alcotest.(check int) "hostile tail dropped" (Buffer.length hostile)
    r.Journal.dropped_bytes;
  Alcotest.(check int) "tail quarantined" 1
    (List.length r.Journal.quarantined);
  rm_rf dir

let test_interleaved_garbage_stops_the_chain () =
  let dir = tmpdir () in
  write_then_close dir [ Journal.Line "a"; Journal.Line "b" ];
  let seg = only_segment dir in
  let full = In_channel.with_open_bin seg In_channel.input_all in
  (* garbage spliced between the two frames: the first frame survives,
     everything after the splice point is quarantined *)
  let frame1_len = String.length full / 2 in
  Out_channel.with_open_bin seg (fun oc ->
      Out_channel.output_string oc (String.sub full 0 frame1_len);
      Out_channel.output_string oc "GARBAGE!";
      Out_channel.output_string oc
        (String.sub full frame1_len (String.length full - frame1_len)));
  let r = recover dir in
  check_records "first frame survives" [ Journal.Line "a" ] r.Journal.records;
  check_bool "garbage and orphaned tail dropped" true
    (r.Journal.dropped_bytes > 0);
  rm_rf dir

(* -------------------------------------------- snapshots and compaction -- *)

let test_snapshot_recovery_replays_only_the_suffix () =
  let dir = tmpdir () in
  let w = mk_writer dir in
  for i = 1 to 10 do
    ignore (Journal.append w (Journal.Line (Fmt.str "pre %d" i)))
  done;
  (match Journal.snapshot w ~core_snapshot:"STATE AT 10\n" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  for i = 1 to 4 do
    ignore (Journal.append w (Journal.Line (Fmt.str "post %d" i)))
  done;
  Journal.close w;
  let r = recover dir in
  Alcotest.(check (option string)) "snapshot payload intact"
    (Some "STATE AT 10\n") r.Journal.core_snapshot;
  Alcotest.(check int) "snapshot covers the prefix" 10 r.Journal.snapshot_seq;
  Alcotest.(check int) "only the suffix is replayed" 4 r.Journal.replayed;
  check_records "suffix records in order"
    (List.init 4 (fun i -> Journal.Line (Fmt.str "post %d" (i + 1))))
    r.Journal.records;
  rm_rf dir

let test_retention_prunes_snapshots_and_segments () =
  let dir = tmpdir () in
  let w = mk_writer ~durability:(dur ~segment_bytes:4096 ~keep_snapshots:2 ()) dir in
  let pad = String.make 100 's' in
  for round = 1 to 5 do
    for i = 1 to 50 do
      ignore (Journal.append w (Journal.Line (Fmt.str "r%d-%d %s" round i pad)))
    done;
    match Journal.snapshot w ~core_snapshot:(Fmt.str "STATE %d\n" round) with
    | Ok _ -> ()
    | Error m -> Alcotest.fail m
  done;
  Alcotest.(check int) "exactly keep_snapshots generations kept" 2
    (List.length (snapshots dir));
  (* Segments fully covered by the oldest retained snapshot are gone:
     with 5 rounds of 50 records each, everything below seq 150 is
     retired. *)
  check_bool "covered segments retired" true
    (List.length (segments dir) < 10);
  Journal.close w;
  let r = recover dir in
  Alcotest.(check (option string)) "newest snapshot wins" (Some "STATE 5\n")
    r.Journal.core_snapshot;
  Alcotest.(check int) "nothing to replay after the last snapshot" 0
    r.Journal.replayed;
  rm_rf dir

let test_corrupt_snapshot_falls_back_a_generation () =
  let dir = tmpdir () in
  let w = mk_writer ~durability:(dur ~keep_snapshots:2 ()) dir in
  for i = 1 to 6 do
    ignore (Journal.append w (Journal.Line (Fmt.str "x %d" i)))
  done;
  (match Journal.snapshot w ~core_snapshot:"OLD STATE\n" with
  | Ok _ -> () | Error m -> Alcotest.fail m);
  for i = 7 to 9 do
    ignore (Journal.append w (Journal.Line (Fmt.str "x %d" i)))
  done;
  (match Journal.snapshot w ~core_snapshot:"NEW STATE\n" with
  | Ok _ -> () | Error m -> Alcotest.fail m);
  ignore (Journal.append w (Journal.Line "x 10"));
  Journal.close w;
  (* Flip a payload byte of the newest snapshot: its CRC now fails. *)
  let newest =
    Filename.concat dir (List.nth (snapshots dir) 1)
  in
  let text = In_channel.with_open_bin newest In_channel.input_all in
  let mutated = Bytes.of_string text in
  Bytes.set mutated (Bytes.length mutated - 2) '?';
  Out_channel.with_open_bin newest (fun oc ->
      Out_channel.output_string oc (Bytes.to_string mutated));
  let r = recover dir in
  Alcotest.(check (option string)) "older generation used"
    (Some "OLD STATE\n") r.Journal.core_snapshot;
  Alcotest.(check int) "corrupt snapshot counted" 1
    r.Journal.snapshots_ignored;
  Alcotest.(check int) "longer replay from the older snapshot" 4
    r.Journal.replayed;
  Alcotest.(check int) "still reaches the journal head" 10
    r.Journal.last_seq;
  rm_rf dir

(* -------------------------------------------------------------- fuzz -- *)

let arb_hostile_dir_contents =
  let open QCheck.Gen in
  let chunk =
    oneof
      [
        string_size ~gen:(char_range '\000' '\255') (int_bound 64);
        (* fragments that look like real framing *)
        return "\xCA\x00\x00\x00\x09";
        return "\xCA\xFF\xFF\xFF\xFF\x00\x00\x00\x00";
        return "calserve-durable v1\nseq 3\ncrc 00000000\n";
        map
          (fun s -> s)
          (oneofl [ "seq "; "crc "; "L"; "T"; "\n\n\n" ]);
      ]
  in
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "(%S, %S)" a b)
    (pair
       (map (String.concat "") (list_size (int_bound 6) chunk))
       (map (String.concat "") (list_size (int_bound 6) chunk)))

let prop_recover_is_total (seg_bytes, snap_bytes) =
  let dir = tmpdir () in
  Sys.mkdir dir 0o755;
  Out_channel.with_open_bin
    (Filename.concat dir "wal-0000000000000001.seg")
    (fun oc -> Out_channel.output_string oc seg_bytes);
  Out_channel.with_open_bin
    (Filename.concat dir "snap-0000000000000003.snap")
    (fun oc -> Out_channel.output_string oc snap_bytes);
  let ok =
    match Journal.recover ~dir with
    | Ok r -> r.Journal.replayed >= 0 && r.Journal.dropped_bytes >= 0
    | Error _ -> true
    | exception _ -> false
  in
  rm_rf dir;
  ok

let () =
  Alcotest.run "journal"
    [
      ( "codec",
        [
          t "crc32 known answers" test_crc32_known_answer;
          t "roundtrip" test_roundtrip;
          t "rotation spans segments" test_rotation_spans_segments;
          t "writer resumes after recovery" test_writer_resumes_after_recovery;
        ] );
      ( "hostile",
        [
          t "truncated tail at every cut point"
            test_truncated_tail_every_cut_point;
          t "corrupt byte flips contained" test_corrupt_byte_flip_is_contained;
          t "giant declared length rejected cheaply"
            test_giant_declared_length_is_rejected_cheaply;
          t "interleaved garbage stops the chain"
            test_interleaved_garbage_stops_the_chain;
          qtest ~count:200 "recover is total on arbitrary directory bytes"
            arb_hostile_dir_contents prop_recover_is_total;
        ] );
      ( "snapshots",
        [
          t "recovery replays only the suffix"
            test_snapshot_recovery_replays_only_the_suffix;
          t "retention prunes snapshots and segments"
            test_retention_prunes_snapshots_and_segments;
          t "corrupt snapshot falls back a generation"
            test_corrupt_snapshot_falls_back_a_generation;
        ] );
    ]
