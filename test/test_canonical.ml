(* Tests for the canonical history form behind the shared verdict cache:
   permutations of maximal same-kind runs collapse to one representative
   (and one cache key), anything that can change a CAL verdict — ordering
   across kinds, crash boundaries, values, thread identities — never
   collapses, and the canonical structure survives the textual history
   format. *)

open Cal
open Test_support

let t name f = Alcotest.test_case name `Quick f
let h = History.of_list
let key hist = History.canonical_key hist

let check_canon_eq name a b =
  check_bool (name ^ ": canonical_equal") true (History.canonical_equal a b);
  Alcotest.(check string) (name ^ ": canonical_key") (key a) (key b)

let check_canon_neq name a b =
  check_bool (name ^ ": canonical_equal") false (History.canonical_equal a b);
  check_bool (name ^ ": canonical_key") false (String.equal (key a) (key b))

(* Two exchanges whose invocations race and whose responses race: the four
   histories that differ only in the order within each adjacent same-kind
   run are one canonical class. *)
let test_permuted_runs_collide () =
  let quad ia ib ra rb =
    h [ inv ia (vi (3 + ia)); inv ib (vi (3 + ib));
        res ra (ok_int (7 - ra)); res rb (ok_int (7 - rb)) ]
  in
  let base = quad 0 1 0 1 in
  List.iter
    (fun (name, other) ->
      check_bool (name ^ ": raw histories differ") false
        (History.equal base other);
      check_canon_eq name base other)
    [
      ("swapped invocations", quad 1 0 0 1);
      ("swapped responses", quad 0 1 1 0);
      ("both swapped", quad 1 0 1 0);
    ];
  check_bool "canonical form is well-formed" true
    (History.is_well_formed (History.canonicalize base))

(* The canonical form never reorders across kinds: a sequential history
   and the concurrent overlap of the same two operations are different
   CAL instances and must stay distinct. *)
let test_sequential_vs_concurrent_distinct () =
  let seq =
    h [ inv 0 (vi 3); res 0 (ok_int 4); inv 1 (vi 4); res 1 (ok_int 3) ]
  in
  let conc =
    h [ inv 0 (vi 3); inv 1 (vi 4); res 0 (ok_int 4); res 1 (ok_int 3) ]
  in
  check_canon_neq "sequential vs concurrent" seq conc

(* Crash markers are hard sort boundaries: the same invocations on the two
   sides of a crash are different eras, so exchanging them across the
   crash is a different canonical class — while permuting within one era
   still collapses. *)
let test_crash_is_a_boundary () =
  let crash = Action.crash ~epoch:1 in
  let a = h [ inv 0 (vi 3); crash; inv 1 (vi 4) ] in
  let b = h [ inv 1 (vi 4); crash; inv 0 (vi 3) ] in
  check_canon_neq "actions moved across the crash" a b;
  let c = h [ inv 0 (vi 3); inv 1 (vi 4); crash; inv 2 (vi 5) ] in
  let d = h [ inv 1 (vi 4); inv 0 (vi 3); crash; inv 2 (vi 5) ] in
  check_canon_eq "permuted within the pre-crash era" c d;
  check_canon_neq "crash epochs differ"
    (h [ Action.crash ~epoch:1 ])
    (h [ Action.crash ~epoch:2 ])

(* Everything the key serializes is discriminating: values, thread ids,
   function ids, pending vs completed. *)
let test_key_discriminates () =
  check_canon_neq "argument values"
    (h [ inv 0 (vi 3) ])
    (h [ inv 0 (vi 4) ]);
  check_canon_neq "thread identities"
    (h [ inv 0 (vi 3) ])
    (h [ inv 1 (vi 3) ]);
  check_canon_neq "return values"
    (h [ inv 0 (vi 3); res 0 (ok_int 4) ])
    (h [ inv 0 (vi 3); res 0 (fail_int 4) ]);
  check_canon_neq "pending vs completed"
    (h [ inv 0 (vi 3) ])
    (h [ inv 0 (vi 3); res 0 (ok_int 4) ])

let test_idempotent () =
  let sample =
    h [ inv 0 (vi 3); inv 1 (vi 4); res 1 (ok_int 3); Action.crash ~epoch:1;
        inv 2 (vi 5); res 2 (fail_int 0) ]
  in
  let c1 = History.canonicalize sample in
  let c2 = History.canonicalize c1 in
  check_bool "canonicalize is idempotent" true (History.equal c1 c2);
  Alcotest.(check string) "key is canonicalization-invariant" (key sample)
    (key c1);
  Alcotest.(check int) "length preserved" (History.length sample)
    (History.length c1)

(* Round-tripping through the textual history format preserves the
   canonical class: parse (print h) lands in the same cache bucket as h,
   for handmade histories and for every history of an explored scenario. *)
let test_format_round_trip_preserves_canonical () =
  let round_trip name hist =
    match History_format.parse_history (History_format.print_history hist) with
    | Error e -> Alcotest.failf "%s: round-trip failed to parse: %s" name e
    | Ok hist' ->
        Alcotest.(check string)
          (name ^ ": canonical key survives the format")
          (key hist) (key hist')
  in
  round_trip "handmade"
    (h [ inv 0 (vi 3); inv 1 (vi 4); res 1 (ok_int 3) ]);
  let s = Workloads.Scenarios.exchanger_pair () in
  let count = ref 0 in
  let (_ : Conc.Explore.stats) =
    Conc.Explore.exhaustive ~setup:s.setup ~fuel:10
      ~f:(fun (o : Conc.Runner.outcome) ->
        incr count;
        round_trip (Fmt.str "run %d" !count) o.history)
      ()
  in
  check_bool "explored at least one run" true (!count > 0)

(* On real explored histories, key equality and canonical equality are the
   same relation — the cache never conflates distinct classes and never
   splits one. *)
let test_key_iff_canonical_on_explored () =
  let s = Workloads.Scenarios.elim_stack_push_pop ~k:1 () in
  let hs = ref [] in
  let (_ : Conc.Explore.stats) =
    Conc.Explore.exhaustive ~setup:s.setup ~fuel:8
      ~f:(fun (o : Conc.Runner.outcome) -> hs := o.history :: !hs)
      ()
  in
  let hs = Array.of_list !hs in
  let n = Array.length hs in
  check_bool "explored at least two runs" true (n > 1);
  for i = 0 to min n 40 - 1 do
    for j = i to min n 40 - 1 do
      check_bool
        (Fmt.str "key equality iff canonical equality (%d, %d)" i j)
        (History.canonical_equal hs.(i) hs.(j))
        (String.equal (key hs.(i)) (key hs.(j)))
    done
  done

let () =
  Alcotest.run "canonical"
    [
      ( "canonical",
        [
          t "permuted same-kind runs collide" test_permuted_runs_collide;
          t "sequential vs concurrent stay distinct"
            test_sequential_vs_concurrent_distinct;
          t "crash markers are sort boundaries" test_crash_is_a_boundary;
          t "key discriminates values, threads, completion"
            test_key_discriminates;
          t "canonicalize is idempotent" test_idempotent;
          t "format round-trip preserves the canonical class"
            test_format_round_trip_preserves_canonical;
          t "key equality is canonical equality on explored histories"
            test_key_iff_canonical_on_explored;
        ] );
    ]
