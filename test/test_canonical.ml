(* Tests for the canonical history form behind the shared verdict cache:
   permutations of maximal same-kind runs collapse to one representative
   (and one cache key), anything that can change a CAL verdict — ordering
   across kinds, crash boundaries, values, thread identities — never
   collapses, and the canonical structure survives the textual history
   format. *)

open Cal
open Test_support

let t name f = Alcotest.test_case name `Quick f
let h = History.of_list
let key hist = History.canonical_key hist

let check_canon_eq name a b =
  check_bool (name ^ ": canonical_equal") true (History.canonical_equal a b);
  Alcotest.(check string) (name ^ ": canonical_key") (key a) (key b)

let check_canon_neq name a b =
  check_bool (name ^ ": canonical_equal") false (History.canonical_equal a b);
  check_bool (name ^ ": canonical_key") false (String.equal (key a) (key b))

(* Two exchanges whose invocations race and whose responses race: the four
   histories that differ only in the order within each adjacent same-kind
   run are one canonical class. *)
let test_permuted_runs_collide () =
  let quad ia ib ra rb =
    h [ inv ia (vi (3 + ia)); inv ib (vi (3 + ib));
        res ra (ok_int (7 - ra)); res rb (ok_int (7 - rb)) ]
  in
  let base = quad 0 1 0 1 in
  List.iter
    (fun (name, other) ->
      check_bool (name ^ ": raw histories differ") false
        (History.equal base other);
      check_canon_eq name base other)
    [
      ("swapped invocations", quad 1 0 0 1);
      ("swapped responses", quad 0 1 1 0);
      ("both swapped", quad 1 0 1 0);
    ];
  check_bool "canonical form is well-formed" true
    (History.is_well_formed (History.canonicalize base))

(* The canonical form never reorders across kinds: a sequential history
   and the concurrent overlap of the same two operations are different
   CAL instances and must stay distinct. *)
let test_sequential_vs_concurrent_distinct () =
  let seq =
    h [ inv 0 (vi 3); res 0 (ok_int 4); inv 1 (vi 4); res 1 (ok_int 3) ]
  in
  let conc =
    h [ inv 0 (vi 3); inv 1 (vi 4); res 0 (ok_int 4); res 1 (ok_int 3) ]
  in
  check_canon_neq "sequential vs concurrent" seq conc

(* Crash markers are hard sort boundaries: the same invocations on the two
   sides of a crash are different eras, so exchanging them across the
   crash is a different canonical class — while permuting within one era
   still collapses. *)
let test_crash_is_a_boundary () =
  let crash = Action.crash ~epoch:1 in
  let a = h [ inv 0 (vi 3); crash; inv 1 (vi 4) ] in
  let b = h [ inv 1 (vi 4); crash; inv 0 (vi 3) ] in
  check_canon_neq "actions moved across the crash" a b;
  let c = h [ inv 0 (vi 3); inv 1 (vi 4); crash; inv 2 (vi 5) ] in
  let d = h [ inv 1 (vi 4); inv 0 (vi 3); crash; inv 2 (vi 5) ] in
  check_canon_eq "permuted within the pre-crash era" c d;
  check_canon_neq "crash epochs differ"
    (h [ Action.crash ~epoch:1 ])
    (h [ Action.crash ~epoch:2 ])

(* Everything the key serializes is discriminating: values, thread ids,
   function ids, pending vs completed. *)
let test_key_discriminates () =
  check_canon_neq "argument values"
    (h [ inv 0 (vi 3) ])
    (h [ inv 0 (vi 4) ]);
  check_canon_neq "thread identities"
    (h [ inv 0 (vi 3) ])
    (h [ inv 1 (vi 3) ]);
  check_canon_neq "return values"
    (h [ inv 0 (vi 3); res 0 (ok_int 4) ])
    (h [ inv 0 (vi 3); res 0 (fail_int 4) ]);
  check_canon_neq "pending vs completed"
    (h [ inv 0 (vi 3) ])
    (h [ inv 0 (vi 3); res 0 (ok_int 4) ])

let test_idempotent () =
  let sample =
    h [ inv 0 (vi 3); inv 1 (vi 4); res 1 (ok_int 3); Action.crash ~epoch:1;
        inv 2 (vi 5); res 2 (fail_int 0) ]
  in
  let c1 = History.canonicalize sample in
  let c2 = History.canonicalize c1 in
  check_bool "canonicalize is idempotent" true (History.equal c1 c2);
  Alcotest.(check string) "key is canonicalization-invariant" (key sample)
    (key c1);
  Alcotest.(check int) "length preserved" (History.length sample)
    (History.length c1)

(* Round-tripping through the textual history format preserves the
   canonical class: parse (print h) lands in the same cache bucket as h,
   for handmade histories and for every history of an explored scenario. *)
let test_format_round_trip_preserves_canonical () =
  let round_trip name hist =
    match History_format.parse_history (History_format.print_history hist) with
    | Error e -> Alcotest.failf "%s: round-trip failed to parse: %s" name e
    | Ok hist' ->
        Alcotest.(check string)
          (name ^ ": canonical key survives the format")
          (key hist) (key hist')
  in
  round_trip "handmade"
    (h [ inv 0 (vi 3); inv 1 (vi 4); res 1 (ok_int 3) ]);
  let s = Workloads.Scenarios.exchanger_pair () in
  let count = ref 0 in
  let (_ : Conc.Explore.stats) =
    Conc.Explore.exhaustive ~setup:s.setup ~fuel:10
      ~f:(fun (o : Conc.Runner.outcome) ->
        incr count;
        round_trip (Fmt.str "run %d" !count) o.history)
      ()
  in
  check_bool "explored at least one run" true (!count > 0)

(* On real explored histories, key equality and canonical equality are the
   same relation — the cache never conflates distinct classes and never
   splits one. *)
let test_key_iff_canonical_on_explored () =
  let s = Workloads.Scenarios.elim_stack_push_pop ~k:1 () in
  let hs = ref [] in
  let (_ : Conc.Explore.stats) =
    Conc.Explore.exhaustive ~setup:s.setup ~fuel:8
      ~f:(fun (o : Conc.Runner.outcome) -> hs := o.history :: !hs)
      ()
  in
  let hs = Array.of_list !hs in
  let n = Array.length hs in
  check_bool "explored at least two runs" true (n > 1);
  for i = 0 to min n 40 - 1 do
    for j = i to min n 40 - 1 do
      check_bool
        (Fmt.str "key equality iff canonical equality (%d, %d)" i j)
        (History.canonical_equal hs.(i) hs.(j))
        (String.equal (key hs.(i)) (key hs.(j)))
    done
  done

(* ------------------------------------ bounded verdict cache (service) -- *)

(* A bounded cache must stay verdict-transparent: whatever the capacity,
   every lookup answers exactly what an uncached compute would, eviction
   only costing recomputation. Compute functions here are deterministic
   (as the cache contract requires), so transparency is observable as
   byte-equal verdicts against an unbounded reference. *)
let test_eviction_is_verdict_transparent () =
  let verdict_of k =
    if String.length k mod 3 = 0 then Error ("rejected " ^ k) else Ok ()
  in
  List.iter
    (fun capacity ->
      let bounded = Verdict_cache.create ?capacity () in
      let computes = ref 0 in
      let lookup k =
        Verdict_cache.find_or_compute bounded ~key:k (fun () ->
            incr computes;
            verdict_of k)
      in
      (* Two passes over more keys than any bound, so bounded instances
         must evict and re-compute. *)
      let keys = List.init 200 (fun i -> Fmt.str "key-%d" i) in
      List.iter
        (fun k ->
          let name = Fmt.str "cap=%s %s"
              (match capacity with None -> "none" | Some c -> string_of_int c)
              k
          in
          Alcotest.(check (result unit string)) name (verdict_of k) (lookup k))
        (keys @ keys);
      match capacity with
      | None ->
          Alcotest.(check int) "unbounded: one compute per key" 200 !computes;
          Alcotest.(check int) "unbounded: no evictions" 0
            (Verdict_cache.evictions bounded)
      | Some c ->
          check_bool "bounded: stays within capacity" true
            (Verdict_cache.size bounded <= c);
          check_bool "bounded: evicted" true
            (Verdict_cache.evictions bounded > 0))
    [ None; Some 1; Some 7; Some 64 ]

let test_capacity_below_shards () =
  (* Capacity 2 with the default 16 shards must still hold 2 entries
     (the shard count collapses), not cap each shard at zero. *)
  let c = Verdict_cache.create ~capacity:2 () in
  let hit = ref 0 in
  let lookup k =
    ignore (Verdict_cache.find_or_compute c ~key:k (fun () -> incr hit; Ok ()))
  in
  lookup "a";
  lookup "b";
  Alcotest.(check int) "both entries stored" 2 (Verdict_cache.size c);
  lookup "a";
  lookup "b";
  Alcotest.(check int) "no recompute within capacity" 2 !hit

(* The engines keep their default unbounded behaviour unless the
   environment knob is set; the knob itself parses defensively. *)
let test_tuning_capacity_knob () =
  let with_env v f =
    let old = Sys.getenv_opt "CAL_VERDICT_CACHE_CAP" in
    Unix.putenv "CAL_VERDICT_CACHE_CAP" v;
    Fun.protect f ~finally:(fun () ->
        Unix.putenv "CAL_VERDICT_CACHE_CAP"
          (match old with Some s -> s | None -> ""))
  in
  with_env "" (fun () ->
      check_bool "empty = unbounded" true (Tuning.verdict_cache_capacity () = None));
  with_env "512" (fun () ->
      check_bool "positive integer" true
        (Tuning.verdict_cache_capacity () = Some 512));
  with_env "-3" (fun () ->
      check_bool "negative rejected" true
        (Tuning.verdict_cache_capacity () = None));
  with_env "lots" (fun () ->
      check_bool "garbage rejected" true
        (Tuning.verdict_cache_capacity () = None))

let () =
  Alcotest.run "canonical"
    [
      ( "canonical",
        [
          t "permuted same-kind runs collide" test_permuted_runs_collide;
          t "sequential vs concurrent stay distinct"
            test_sequential_vs_concurrent_distinct;
          t "crash markers are sort boundaries" test_crash_is_a_boundary;
          t "key discriminates values, threads, completion"
            test_key_discriminates;
          t "canonicalize is idempotent" test_idempotent;
          t "format round-trip preserves the canonical class"
            test_format_round_trip_preserves_canonical;
          t "key equality is canonical equality on explored histories"
            test_key_iff_canonical_on_explored;
        ] );
      ( "verdict cache bounds",
        [
          t "eviction is verdict-transparent"
            test_eviction_is_verdict_transparent;
          t "capacity below shard count" test_capacity_below_shards;
          t "CAL_VERDICT_CACHE_CAP knob" test_tuning_capacity_knob;
        ] );
    ]
