(* The incremental DFS core shared by the sequential ({!Explore}) and
   parallel ({!Par_explore}) exploration fronts.

   One engine under every checker. The DFS keeps a single live execution
   and descends by {!Runner.step} — O(1) per tree edge. Backtracking to a
   sibling re-establishes the branch point with one prefix replay (the
   shared heap the program mutates cannot be checkpointed, so it is
   rebuilt by re-execution): the total work is O(runs × depth) program
   steps, against O(nodes × depth) for the seed's whole-prefix-replay
   engine. Per-path checker state (the liveness idle counters) is threaded
   through [step_path]/[leaf] as immutable values cloned on branch.

   For the parallel front the DFS is rooted at an arbitrary schedule
   prefix: the subtree task carries the [prefix] decisions together with
   the scheduling state accumulated along it — the last-scheduled thread
   ([last0]), the preemption count ([preemptions0]) and the sleep set
   ([sleep0]) — so a task explores exactly the subtree the sequential
   engine would have explored below that node. Two cross-domain hooks
   replace the local [max_runs] accounting there: [gate] is consulted
   before every delivery (a shared atomic run budget; refusal truncates),
   and [abort] before every node (the best-failure bound of the
   deterministic first-failure merge; refusal abandons the task). *)

type stats = {
  runs : int;
  truncated : bool;
  max_steps : int;
  nodes : int;
  replayed_steps : int;
  fingerprint_hits : int;
  sleep_pruned : int;
  races_found : int;
  backtrack_points : int;
  bound_hits : int;
  bounded : bool;
  cache_hits : int;
  tasks_stolen : int;
  domains_used : int;
  domains_requested : int;
  sampled_runs : int;
  violations_found : int;
  shrink_candidates : int;
  shrink_steps_removed : int;
}

let empty_stats =
  {
    runs = 0;
    truncated = false;
    max_steps = 0;
    nodes = 0;
    replayed_steps = 0;
    fingerprint_hits = 0;
    sleep_pruned = 0;
    races_found = 0;
    backtrack_points = 0;
    bound_hits = 0;
    bounded = false;
    cache_hits = 0;
    tasks_stolen = 0;
    domains_used = 1;
    domains_requested = 1;
    sampled_runs = 0;
    violations_found = 0;
    shrink_candidates = 0;
    shrink_steps_removed = 0;
  }

let merge_stats a b =
  {
    runs = a.runs + b.runs;
    truncated = a.truncated || b.truncated;
    max_steps = max a.max_steps b.max_steps;
    nodes = a.nodes + b.nodes;
    replayed_steps = a.replayed_steps + b.replayed_steps;
    fingerprint_hits = a.fingerprint_hits + b.fingerprint_hits;
    sleep_pruned = a.sleep_pruned + b.sleep_pruned;
    races_found = a.races_found + b.races_found;
    backtrack_points = a.backtrack_points + b.backtrack_points;
    bound_hits = a.bound_hits + b.bound_hits;
    bounded = a.bounded || b.bounded;
    cache_hits = a.cache_hits + b.cache_hits;
    tasks_stolen = a.tasks_stolen + b.tasks_stolen;
    domains_used = max a.domains_used b.domains_used;
    domains_requested = max a.domains_requested b.domains_requested;
    sampled_runs = a.sampled_runs + b.sampled_runs;
    violations_found = a.violations_found + b.violations_found;
    shrink_candidates = a.shrink_candidates + b.shrink_candidates;
    shrink_steps_removed = a.shrink_steps_removed + b.shrink_steps_removed;
  }

exception Stop
exception Abandoned

(* ------------------------------------------------- pruning controls --- *)

let env_flag v =
  match Sys.getenv_opt v with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

(* Pruning is an opt-in underapproximation of the run {e set} (it must
   preserve verdicts, not run counts), so the default is off; callers opt
   in per call ([~prune:true]) or globally (CAL_EXPLORE_PRUNE=1). The
   cross-check mode CAL_EXPLORE_NO_PRUNE=1 force-disables pruning even for
   explicit opt-ins: a pruned and an unpruned pass must reach identical
   verdicts. *)
let pruning_requested prune =
  if env_flag "CAL_EXPLORE_NO_PRUNE" then false
  else match prune with Some p -> p | None -> env_flag "CAL_EXPLORE_PRUNE"

(* Commutation heuristic for sleep sets, from the step labels: two steps
   commute when they touch distinct contended locations (the "…@loc" label
   convention of the structures) or when either is a pure yield. Steps
   without a location tag are conservatively treated as dependent. *)
let loc_of label =
  match String.index_opt label '@' with
  | Some i -> Some (String.sub label i (String.length label - i))
  | None -> None

let commutes l1 l2 =
  l1 = "yield" || l2 = "yield"
  ||
  match (loc_of l1, loc_of l2) with Some a, Some b -> a <> b | _ -> false

let independent ((d1 : Runner.decision), l1) ((d2 : Runner.decision), l2) =
  d1.thread <> d2.thread && commutes l1 l2

let threads_of exec = Array.length (Runner.outcome exec).Runner.results

(* --------------------------------------------- incremental DFS engine -- *)

(* With [prune] set, two reductions apply, both counted in the stats:
   - fingerprint memoization: a node whose {!Runner.fingerprint} was
     already visited is cut off (its subtree was explored from the
     equivalent state);
   - sleep sets: after exploring sibling [d1], the decision [d1] is put to
     sleep inside the later siblings' subtrees and skipped there until a
     dependent (non-commuting) step wakes it — the classic partial-order
     argument that exploring [d1;d2] and [d2;d1] twice is redundant when
     the two steps commute. *)
let dfs ~restart ~fuel ?max_runs ?preemption_bound ~prune ?(prefix = [])
    ?last0 ?(preemptions0 = 0) ?(sleep0 = []) ?gate ?abort ~init_path
    ~step_path ~leaf () =
  let exec = ref (restart ()) in
  let runs = ref 0 and truncated = ref false and max_steps = ref 0 in
  let nodes = ref 0 and replayed = ref 0 in
  let fp_hits = ref 0 and slept = ref 0 in
  let memo : (string, unit) Hashtbl.t =
    if prune then
      Hashtbl.create
        (Cal.Tuning.explore_memo_size ~fuel ~threads:(threads_of !exec))
    else Hashtbl.create 1
  in
  let within_budget used =
    match preemption_bound with None -> true | Some b -> used <= b
  in
  let deliver frontier path =
    (match gate with
    | Some admit when not (admit ()) ->
        truncated := true;
        raise Stop
    | _ -> ());
    let o = Runner.outcome !exec in
    leaf o frontier path;
    incr runs;
    if o.Runner.steps > !max_steps then max_steps := o.Runner.steps;
    match max_runs with
    | Some m when !runs >= m ->
        truncated := true;
        raise Stop
    | _ -> ()
  in
  (* Position the execution at the node reached by [prefix_rev]: free while
     descending along the spine; one fresh prefix replay after returning
     from an earlier sibling's subtree. *)
  let ensure_at depth prefix_rev =
    if Runner.steps_done !exec <> depth then begin
      let e = restart () in
      List.iter (fun d -> ignore (Runner.step e d)) (List.rev prefix_rev);
      replayed := !replayed + depth;
      exec := e
    end
  in
  let rec node ~prefix_rev ~depth ~last ~preemptions ~sleep ~path =
    (match abort with Some stop when stop () -> raise Abandoned | _ -> ());
    incr nodes;
    let frontier = Runner.frontier !exec in
    if frontier = [] || depth >= fuel then deliver frontier path
    else begin
      let pruned_here =
        prune
        &&
        let fp = Runner.fingerprint !exec in
        if Hashtbl.mem memo fp then true
        else begin
          Hashtbl.add memo fp ();
          false
        end
      in
      if pruned_here then incr fp_hits
      else begin
        let labelled =
          List.map
            (fun (d : Runner.decision) ->
              (d, Option.value ~default:"" (Runner.head_label !exec d.thread)))
            frontier
        in
        let last_enabled =
          List.exists (fun (d : Runner.decision) -> Some d.thread = last) frontier
        in
        let explored = ref [] in
        List.iter
          (fun ((d : Runner.decision), l) ->
            let cost =
              if last_enabled && Some d.thread <> last then preemptions + 1
              else preemptions
            in
            if within_budget cost then begin
              if
                prune
                && List.exists
                     (fun ((s : Runner.decision), _) ->
                       s.thread = d.thread && s.branch = d.branch)
                     sleep
              then incr slept
              else begin
                ensure_at depth prefix_rev;
                let path' = step_path path frontier d in
                ignore (Runner.step !exec d);
                let sleep' =
                  if prune then
                    List.filter
                      (fun s -> independent s (d, l))
                      (sleep @ List.rev !explored)
                  else []
                in
                node ~prefix_rev:(d :: prefix_rev) ~depth:(depth + 1)
                  ~last:(Some d.thread) ~preemptions:cost ~sleep:sleep'
                  ~path:path';
                explored := (d, l) :: !explored
              end
            end)
          labelled
      end
    end
  in
  let depth0 = List.length prefix in
  if depth0 > 0 then begin
    List.iter (fun d -> ignore (Runner.step !exec d)) prefix;
    replayed := !replayed + depth0
  end;
  (try
     node ~prefix_rev:(List.rev prefix) ~depth:depth0 ~last:last0
       ~preemptions:preemptions0 ~sleep:sleep0 ~path:init_path
   with Stop | Abandoned -> ());
  {
    empty_stats with
    runs = !runs;
    truncated = !truncated;
    max_steps = !max_steps;
    nodes = !nodes;
    replayed_steps = !replayed;
    fingerprint_hits = !fp_hits;
    sleep_pruned = !slept;
  }
