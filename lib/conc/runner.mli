(** Replay-based execution of multi-threaded programs.

    A {e schedule} is a sequence of decisions; replaying a schedule from a
    fresh setup is deterministic, which is what makes stateless model
    checking (see {!Explore}) possible. A run optionally carries a
    {!Fault.plan}: faults are interpreted against the run's deterministic
    step counters, so the pair (schedule, plan) reproduces a faulty
    execution byte-for-byte. *)

type decision = { thread : int; branch : int }
(** Step thread [thread]; when its next node is a [Choose], take alternative
    [branch] (otherwise [branch] must be [0]). *)

type schedule = decision list

(** What a setup yields: one program per thread, plus an optional observer
    invoked after every decision (used by the rely/guarantee checker to
    snapshot object state). *)
type program = {
  threads : Cal.Value.t Prog.t array;
  observe : (decision -> unit) option;
  on_label : (string -> unit) option;
      (** called with the label of every executed step (used by the metrics
          layer to charge location-dependent costs) *)
}

(** A durable program: the boot-epoch program, the {!Pcell.domain} holding
    its persistent cells, and a recovery-program factory — [recover ~epoch]
    is called when the [epoch]-th system crash fires (epochs count from 1)
    and yields the program of the post-crash era: typically each durable
    object's recovery procedure followed by a post-crash workload segment.
    Recovery programs run under the same context, so the history carries a
    {!Cal.Action.Crash} marker between the eras. *)
type durable = {
  boot : program;
  domain : Pcell.domain;
  recover : epoch:int -> program;
}

type outcome = {
  history : Cal.History.t;      (** the observable history of the run *)
  trace : Cal.Ca_trace.t;       (** the auxiliary trace [𝒯] of the run *)
  results : Cal.Value.t option array;
      (** per-thread return values ({e current-epoch} threads) *)
  complete : bool;              (** all (current-epoch) threads returned *)
  steps : int;                  (** decisions consumed *)
  schedule : schedule;          (** the schedule actually followed *)
  faults : Fault.plan;          (** the fault plan in force (empty if none) *)
  injected : Fault.plan;
      (** the plan faults that actually fired: a [Crash] whose thread was
          cut off before returning, a [Fail_step] whose matching step was
          forced, a [Stall] whose window opened, a [Crash_system] whose
          point the run reached *)
  fallible_steps : string list;
      (** labels of the {!Prog.Fallible} steps executed, in order — the
          forcible fault points of this run (used by
          {!Explore.exhaustive_with_faults} to enumerate CAS failures) *)
  epochs : int;
      (** eras the run went through: [1 +] the number of system crashes
          that fired *)
}

(** The frontier after replaying a schedule: the decisions enabled next.
    Empty iff every thread has returned, crashed, or is blocked/stalled. *)
type frontier = decision list

(** {1 Resumable execution}

    A live execution over explicit mutable state. {!Explore}'s incremental
    engine descends the DFS tree one {!step} at a time and re-establishes a
    branch point after backtracking with a single prefix replay — O(1)
    steps per tree edge instead of a whole-prefix replay per node. The
    shared heap that program closures mutate cannot be checkpointed
    generically, which is why backtracking re-executes the prefix (once per
    backtrack) rather than restoring a snapshot. *)

type exec

val start : ?plan:Fault.plan -> setup:(Ctx.t -> program) -> unit -> exec
(** Build a fresh program (fresh context, fresh shared structures) with no
    decision applied yet. Raises [Invalid_argument] when the plan fails
    {!Fault.validate}, or when it contains a [Crash_system] (a system
    crash needs durable state to survive it — use {!start_durable}). *)

val start_durable :
  ?plan:Fault.plan -> setup:(Ctx.t -> durable) -> unit -> exec
(** Like {!start} for a {!durable} program. When the plan's next
    [Crash_system] point is reached (checked after every applied decision,
    and once at start for [at_step = 0]), the runner atomically: records a
    {!Cal.Action.Crash} marker in the history, wipes the domain's volatile
    cell contents ({!Pcell.crash}), discards every in-flight thread
    program, and installs [recover ~epoch] as the new thread array. The
    crash transition consumes no decision, so replays stay byte-for-byte
    deterministic: the pair (schedule, plan) still identifies the
    execution. Crash-during-recovery is expressed by a plan with several
    [Crash_system] points. *)

val step : exec -> decision -> string
(** Apply one decision and return the label of the step taken. Raises
    [Invalid_argument] when the decision is not enabled (wrong thread
    state, branch out of range, or a thread the plan has crashed or
    stalled). *)

val frontier : exec -> frontier
(** The decisions enabled now. *)

val outcome : exec -> outcome
(** Snapshot the execution as an {!outcome} (cheap; the execution remains
    usable). *)

val steps_done : exec -> int
(** Decisions applied so far. *)

val head_label : exec -> int -> string option
(** The label of the thread's next step ([None] once it returned). *)

val fingerprint : exec -> string
(** A structural key of the execution state: per-thread program positions
    (head constructor + label, or returned value), per-thread rolling
    observation hashes (each step folds its label with the history/trace
    lengths it observed), fault counters and the clock. Equal fingerprints
    mean the engine cannot distinguish the two states; {!Explore} uses
    this for memoized subtree pruning, guarded by the
    [CAL_EXPLORE_NO_PRUNE=1] cross-check mode. *)

val ctx : exec -> Ctx.t
(** The execution's run context. *)

val last_step_accesses : exec -> (string list * string list) option
(** [(reads, writes)] recorded by the most recently applied decision
    (sorted, deduplicated), or [None] if the step ran uninstrumented code —
    see {!Ctx.step_accesses}. Valid until the next {!step}. The DPOR engine
    turns this into the step's dependency footprint. *)

val replay :
  ?plan:Fault.plan -> setup:(Ctx.t -> program) -> schedule -> outcome * frontier
(** [replay ~setup s] builds a fresh program and applies the decisions of
    [s] in order — a thin wrapper over {!start}/{!step} preserving
    byte-for-byte replay determinism. Raises [Invalid_argument] when a
    decision is not enabled (wrong thread state, branch out of range, or a
    thread the plan has crashed or stalled) or when the plan fails
    {!Fault.validate}. *)

val replay_durable :
  ?plan:Fault.plan -> setup:(Ctx.t -> durable) -> schedule -> outcome * frontier
(** {!replay} for durable programs: witnesses found by crash exploration
    replay against {!start_durable} with the same (schedule, plan) pair. *)

val run_random :
  ?plan:Fault.plan ->
  setup:(Ctx.t -> program) ->
  fuel:int ->
  rng:Rng.t ->
  unit ->
  outcome
(** Run to completion (or until [fuel] decisions) picking uniformly among
    enabled decisions. Crashed and stalled threads are never picked; if no
    thread is enabled the run stops early. *)

val run_random_durable :
  ?plan:Fault.plan ->
  setup:(Ctx.t -> durable) ->
  fuel:int ->
  rng:Rng.t ->
  unit ->
  outcome
(** {!run_random} for durable programs (used by the crash-recovery
    benchmark sweeps). *)

val pp_decision : Format.formatter -> decision -> unit

val outcome_equal : outcome -> outcome -> bool
(** Byte-for-byte equality of everything an outcome records: history,
    auxiliary trace, per-thread results, completion, step/era counts,
    schedule, fault plan, fired faults and fallible-step labels. The
    replay-determinism contract of this module is exactly
    [outcome_equal (fst (replay ~plan ~setup o.schedule)) o] for any
    outcome [o] produced under [plan] — the regression tests and the
    {!Shrink} revalidation lean on it. *)
