(** Replay-based execution of multi-threaded programs.

    A {e schedule} is a sequence of decisions; replaying a schedule from a
    fresh setup is deterministic, which is what makes stateless model
    checking (see {!Explore}) possible. A run optionally carries a
    {!Fault.plan}: faults are interpreted against the run's deterministic
    step counters, so the pair (schedule, plan) reproduces a faulty
    execution byte-for-byte. *)

type decision = { thread : int; branch : int }
(** Step thread [thread]; when its next node is a [Choose], take alternative
    [branch] (otherwise [branch] must be [0]). *)

type schedule = decision list

(** What a setup yields: one program per thread, plus an optional observer
    invoked after every decision (used by the rely/guarantee checker to
    snapshot object state). *)
type program = {
  threads : Cal.Value.t Prog.t array;
  observe : (decision -> unit) option;
  on_label : (string -> unit) option;
      (** called with the label of every executed step (used by the metrics
          layer to charge location-dependent costs) *)
}

type outcome = {
  history : Cal.History.t;      (** the observable history of the run *)
  trace : Cal.Ca_trace.t;       (** the auxiliary trace [𝒯] of the run *)
  results : Cal.Value.t option array;  (** per-thread return values *)
  complete : bool;              (** all threads returned *)
  steps : int;                  (** decisions consumed *)
  schedule : schedule;          (** the schedule actually followed *)
  faults : Fault.plan;          (** the fault plan in force (empty if none) *)
  injected : Fault.plan;
      (** the plan faults that actually fired: a [Crash] whose thread was
          cut off before returning, a [Fail_step] whose matching step was
          forced, a [Stall] whose window opened *)
  fallible_steps : string list;
      (** labels of the {!Prog.Fallible} steps executed, in order — the
          forcible fault points of this run (used by
          {!Explore.exhaustive_with_faults} to enumerate CAS failures) *)
}

(** The frontier after replaying a schedule: the decisions enabled next.
    Empty iff every thread has returned, crashed, or is blocked/stalled. *)
type frontier = decision list

(** {1 Resumable execution}

    A live execution over explicit mutable state. {!Explore}'s incremental
    engine descends the DFS tree one {!step} at a time and re-establishes a
    branch point after backtracking with a single prefix replay — O(1)
    steps per tree edge instead of a whole-prefix replay per node. The
    shared heap that program closures mutate cannot be checkpointed
    generically, which is why backtracking re-executes the prefix (once per
    backtrack) rather than restoring a snapshot. *)

type exec

val start : ?plan:Fault.plan -> setup:(Ctx.t -> program) -> unit -> exec
(** Build a fresh program (fresh context, fresh shared structures) with no
    decision applied yet. Raises [Invalid_argument] when the plan fails
    {!Fault.validate}. *)

val step : exec -> decision -> string
(** Apply one decision and return the label of the step taken. Raises
    [Invalid_argument] when the decision is not enabled (wrong thread
    state, branch out of range, or a thread the plan has crashed or
    stalled). *)

val frontier : exec -> frontier
(** The decisions enabled now. *)

val outcome : exec -> outcome
(** Snapshot the execution as an {!outcome} (cheap; the execution remains
    usable). *)

val steps_done : exec -> int
(** Decisions applied so far. *)

val head_label : exec -> int -> string option
(** The label of the thread's next step ([None] once it returned). *)

val fingerprint : exec -> string
(** A structural key of the execution state: per-thread program positions
    (head constructor + label, or returned value), per-thread rolling
    observation hashes (each step folds its label with the history/trace
    lengths it observed), fault counters and the clock. Equal fingerprints
    mean the engine cannot distinguish the two states; {!Explore} uses
    this for memoized subtree pruning, guarded by the
    [CAL_EXPLORE_NO_PRUNE=1] cross-check mode. *)

val ctx : exec -> Ctx.t
(** The execution's run context. *)

val replay :
  ?plan:Fault.plan -> setup:(Ctx.t -> program) -> schedule -> outcome * frontier
(** [replay ~setup s] builds a fresh program and applies the decisions of
    [s] in order — a thin wrapper over {!start}/{!step} preserving
    byte-for-byte replay determinism. Raises [Invalid_argument] when a
    decision is not enabled (wrong thread state, branch out of range, or a
    thread the plan has crashed or stalled) or when the plan fails
    {!Fault.validate}. *)

val run_random :
  ?plan:Fault.plan ->
  setup:(Ctx.t -> program) ->
  fuel:int ->
  rng:Rng.t ->
  unit ->
  outcome
(** Run to completion (or until [fuel] decisions) picking uniformly among
    enabled decisions. Crashed and stalled threads are never picked; if no
    thread is enabled the run stops early. *)

val pp_decision : Format.formatter -> decision -> unit
