(** Work-stealing parallel exploration over OCaml 5 domains.

    Splitting is dynamic: the whole schedule tree starts as one task, and
    while workers explore it they donate the remaining branches of their
    shallowest open DFS node to a shared pool whenever some worker is
    idle — signalled by one lock-free counter, so the descend/backtrack
    hot path pays a single atomic load per node and no locks. Donated
    chunks are claimed, resumed, and split further, recursively, so load
    balances itself whatever the tree's shape (see DESIGN §2.11).

    Determinism is preserved by construction: every task owns a
    contiguous interval of the canonical (sequential DFS) leaf order and
    carries its start {e rank} — the branch-index path from the root —
    so sorting per-task results by rank reproduces the sequential
    delivery order byte-for-byte, whatever the domain count or steal
    timing. First-failure searches share a monotonically lowering best
    start rank and abandon only tasks strictly after a failed interval,
    so the surviving lowest-rank witness is the sequential one.

    Most callers want {!Explore} with [~domains]; this module is the
    parallel engine room.

    A requested domain count is capped at
    [Domain.recommended_domain_count] ({!effective_domains}): domains
    beyond the hardware's cores buy no parallelism and pay stop-the-world
    minor-GC synchronisation for every collection. The cap never changes
    a report — verdicts, witnesses and run counts are domain-count
    invariant by construction — only wall-clock; the decision is
    surfaced as [domains_used] vs [domains_requested] in the returned
    stats. Setting [CAL_EXPLORE_OVERSUBSCRIBE=1] lifts the cap, which the
    equivalence test suite uses to genuinely exercise multi-domain
    stealing and verdict-cache sharing on any hardware. *)

val effective_domains : int -> int
(** [effective_domains requested] — the worker-domain count actually
    spawned for a request: [min requested (Domain.recommended_domain_count
    ())], or [requested] verbatim under [CAL_EXPLORE_OVERSUBSCRIBE=1];
    always at least [1]. *)

val explore :
  prune:bool ->
  domains:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  restart:(unit -> Runner.exec) ->
  fuel:int ->
  init:(unit -> 'acc) ->
  f:('acc -> Runner.outcome -> unit) ->
  ?stop_on:('acc -> Runner.outcome -> bool) ->
  unit ->
  Engine.stats * 'acc array
(** Explore the whole schedule tree of [restart] across [domains] worker
    domains. Each task gets its own accumulator ([init] runs once per
    task); the accumulators are returned in canonical rank order, so
    folding them left reproduces the sequential delivery order. [f] runs
    concurrently from several domains but only ever on its own task's
    accumulator. [stop_on] turns the sweep into a deterministic
    first-failure search: when it returns [true] the task stops and tasks
    ranked after it are abandoned; the first accumulator (in rank order)
    for which it fired holds the same witness the sequential engine
    reports. [max_runs] is a shared atomic budget — which runs are
    admitted under it is scheduling-dependent, unlike the sequential
    engine (callers that need run-set determinism pass no budget).
    With [prune] each task keeps a private fingerprint memo, so the
    delivered run {e set} of a pruned multi-domain sweep is
    timing-dependent (verdict coverage is unaffected); callers that need
    byte-deterministic pruned reports use one domain. *)

val map_tasks :
  domains:int -> f:(int -> 'a -> 'b) -> 'a array -> 'b array * int
(** Run [f] over an explicit task array claimed via one atomic counter
    (used for the fault-plan fan-out): results land at their task's
    index, so merging in index order is deterministic. Returns the
    results and the steal count — items that landed off their static
    round-robin worker. *)
