(** Work-stealing parallel exploration over OCaml 5 domains.

    The schedule tree is split at a frontier depth into independent
    subtree tasks; each worker domain replays a task's root prefix on its
    own private {!Runner} cursor and runs {!Engine.dfs} below it. Tasks
    are generated and merged in canonical DFS order, making full sweeps
    byte-identical to the sequential engine and first-failure searches
    return the sequential witness (see DESIGN §2.11).

    Most callers want {!Explore} with [~domains]; this module is the
    parallel engine room.

    A requested domain count is capped at
    [Domain.recommended_domain_count] ({!effective_domains}): domains
    beyond the hardware's cores buy no parallelism and pay stop-the-world
    minor-GC synchronisation for every collection. The cap never changes
    a report — verdicts, witnesses and run counts are domain-count
    invariant by construction — only wall-clock. Setting
    [CAL_EXPLORE_OVERSUBSCRIBE=1] lifts the cap, which the equivalence
    test suite uses to genuinely exercise multi-domain stealing and
    verdict-cache sharing on any hardware. *)

val effective_domains : int -> int
(** [effective_domains requested] — the worker-domain count actually
    spawned for a request: [min requested (Domain.recommended_domain_count
    ())], or [requested] verbatim under [CAL_EXPLORE_OVERSUBSCRIBE=1];
    always at least [1]. *)

val explore :
  prune:bool ->
  domains:int ->
  ?split_depth:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  restart:(unit -> Runner.exec) ->
  fuel:int ->
  init:(unit -> 'acc) ->
  f:('acc -> Runner.outcome -> unit) ->
  ?stop_on:('acc -> Runner.outcome -> bool) ->
  unit ->
  Engine.stats * 'acc array
(** Explore the whole schedule tree of [restart] across [domains] worker
    domains. Each subtree task gets its own accumulator ([init] runs once
    per task); the accumulators are returned in canonical task order, so
    folding them left reproduces the sequential delivery order. [f] runs
    concurrently from several domains but only ever on its own task's
    accumulator. [stop_on] turns the sweep into a deterministic
    first-failure search: when it returns [true] the task stops and tasks
    ordered after it are abandoned; the first accumulator (in task order)
    for which it fired holds the same witness the sequential engine
    reports. [max_runs] is a shared atomic budget — which runs are
    admitted under it is scheduling-dependent, unlike the sequential
    engine (callers that need run-set determinism pass no budget).
    [split_depth] overrides the automatic frontier choice. *)

val map_tasks :
  domains:int -> f:(int -> 'a -> 'b) -> 'a array -> 'b array * int
(** Run [f] over an explicit task array with the same deterministic
    work-stealing pool (used for the fault-plan fan-out): results land at
    their task's index. Returns the results and the steal count. *)
