(** Programs over shared memory with explicit atomic steps.

    The paper assumes an interleaving semantics where threads are sequential
    commands over shared heap cells (§2). A [Prog.t] is a tree of atomic
    steps: the scheduler executes exactly one {!atomic} (or resolves one
    {!choose}) per decision, so interleavings of a program are in 1:1
    correspondence with schedules. Programs are rebuilt from scratch for
    every run, so ordinary OCaml [ref]s created during setup serve as the
    shared heap. *)

type 'a t =
  | Return of 'a
  | Atomic of string * (unit -> 'a t)
      (** one atomic action; the closure performs the shared-memory effect
          and yields the continuation. The string is a debug label. *)
  | Choose of string * 'a t list
      (** bounded nondeterminism, resolved by the scheduler (used e.g. for
          the elimination array's slot choice under exhaustive
          exploration). *)
  | Guard of string * (unit -> 'a t option)
      (** a blocked thread: enabled only when the guard yields a
          continuation. The guard must be pure (it is evaluated both to
          test enabledness and to take the step). Models condition
          synchronisation — a waiting dual-queue consumer, a parked
          thread — without spin loops that blow up the schedule space. *)
  | Fallible of string * (unit -> 'a t) * (unit -> 'a t)
      (** one atomic action with an explicit {e failure branch}: normally
          the first closure runs, but a {!Fault.Fail_step} in the run's
          fault plan forces the second instead. Use for steps that may
          spuriously fail on real hardware (weak CAS / LL-SC): the failure
          closure must leave shared memory untouched and continue as the
          step's legitimate failure path would. Scheduling-wise a
          [Fallible] is one decision, exactly like [Atomic]. *)

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t

val atomic : ?label:string -> (unit -> 'a) -> 'a t
(** [atomic f] performs [f ()] as one atomic step. *)

val atomically : ?label:string -> (unit -> 'a t) -> 'a t
(** [atomically f] performs [f ()] as one atomic step whose result is the
    continuation — use when an atomic action decides the control flow (e.g.
    a CAS with different continuations on success and failure). *)

val yield : unit t
(** A no-op scheduling point (the paper's [sleep(50)]). *)

val choose : ?label:string -> 'a t list -> 'a t
(** Scheduler-resolved choice between alternatives. Raises
    [Invalid_argument] on the empty list. *)

val choose_int : ?label:string -> int -> int t
(** [choose_int n] chooses a value in [\[0, n)]. *)

val guard : ?label:string -> (unit -> 'a t option) -> 'a t
(** [guard g] blocks until [g ()] is [Some continuation]; the evaluation of
    [g] and the first step of the continuation happen in one atomic step.
    If every thread is blocked the run is a deadlock: the scheduler has no
    enabled decision and the outcome is incomplete. *)

val await : ?label:string -> 'b option ref -> 'b t
(** [await cell] blocks until [cell] holds [Some v], then returns [v]. *)

(** {1 Shared-memory primitives}

    All primitives cost exactly one atomic step. *)

val read : 'a ref -> 'a t
val write : 'a ref -> 'a -> unit t

val cas : eq:('a -> 'a -> bool) -> 'a ref -> expect:'a -> 'a -> bool t
(** Compare-and-swap with an explicit equality (use [( == )] for heap
    nodes). *)

val fallible : ?label:string -> on_fault:(unit -> 'a t) -> (unit -> 'a t) -> 'a t
(** [fallible ~on_fault f] performs [f ()] as one atomic step whose result
    is the continuation, unless the run's fault plan forces this step's
    failure branch, in which case [on_fault ()] runs instead. [on_fault]
    must be a semantic no-op on shared state (the step {e failing}, not a
    different effect). *)

val cas_weak : ?label:string -> eq:('a -> 'a -> bool) -> 'a ref -> expect:'a -> 'a -> bool t
(** {!cas} with weak-CAS semantics: a fault plan may force it to return
    [false] without comparing — only correct at call sites that retry or
    otherwise tolerate spurious failure. *)

val fetch_and_add : int ref -> int -> int t
(** Returns the previous value. *)

(** {1 Timed waiting}

    Deadlines are logical-clock values (see {!Ctx.now}); the closures below
    read the clock, so both primitives replay deterministically. *)

val timed :
  ?label:string ->
  expired:(unit -> bool) ->
  on_timeout:(unit -> 'a t) ->
  (unit -> 'a t option) ->
  'a t
(** [timed ~expired ~on_timeout g] is a {!guard} with a deadline: the thread
    blocks while [g () = None], but becomes enabled — continuing with
    [on_timeout ()] — once [expired ()] holds. Because a blocked thread
    takes no steps, the logical clock only advances through {e other}
    threads' decisions: a [timed] wait with no runnable peer never expires
    (the run deadlocks). Use it when a peer is expected to drive time
    forward; use {!poll} when the waiter must be able to abort alone. *)

val poll :
  ?label:string ->
  expired:(unit -> bool) ->
  on_timeout:(unit -> 'a t) ->
  (unit -> 'a t option) ->
  'a t
(** [poll ~expired ~on_timeout g] spins: each step evaluates [g ()] and
    continues with its result if [Some], with [on_timeout ()] if the
    deadline has passed, and otherwise loops for another step. The polling
    thread stays enabled, so its own steps advance the clock and a solo
    waiter still times out — the HSY elimination-array discipline. Each
    poll iteration costs one scheduling decision, so keep deadlines small
    under exhaustive exploration. *)

(** {1 Control} *)

val repeat_until : (unit -> 'a option t) -> 'a t
(** [repeat_until body] runs [body] until it produces [Some v]. The loop
    itself adds no steps beyond those of [body]; termination is bounded by
    the scheduler's fuel. *)

val seq : unit t list -> unit t

module Infix : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
  val ( >>= ) : 'a t -> ('a -> 'b t) -> 'b t
end
