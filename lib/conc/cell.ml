type 'a t = { mutable v : 'a; loc : string; ctx : Ctx.t }

let make ctx ~loc v = { v; loc; ctx }
let loc c = c.loc
let peek c = c.v
let poke c v = c.v <- v

let get c =
  Ctx.note_read c.ctx c.loc;
  c.v

let set c v =
  Ctx.note_write c.ctx c.loc;
  c.v <- v

let compare_and_set ~eq c ~expect v =
  Ctx.note_read c.ctx c.loc;
  if eq c.v expect then begin
    Ctx.note_write c.ctx c.loc;
    c.v <- v;
    true
  end
  else false

let read ?label c =
  let label = match label with Some l -> l | None -> "read@" ^ c.loc in
  Prog.atomic ~label (fun () -> get c)

let write ?label c v =
  let label = match label with Some l -> l | None -> "write@" ^ c.loc in
  Prog.atomic ~label (fun () -> set c v)

let cas ?label ~eq c ~expect v =
  let label = match label with Some l -> l | None -> "cas@" ^ c.loc in
  Prog.atomic ~label (fun () -> compare_and_set ~eq c ~expect v)

let cas_weak ?label ~eq c ~expect v =
  let label = match label with Some l -> l | None -> "cas@" ^ c.loc in
  Prog.fallible ~label
    ~on_fault:(fun () ->
      (* A spurious failure still observed the cell: record the read so the
         step stays ordered against writes when the scheduler fails it. *)
      Ctx.note_read c.ctx c.loc;
      Prog.return false)
    (fun () -> Prog.return (compare_and_set ~eq c ~expect v))

let fetch_and_add ?label c d =
  let label = match label with Some l -> l | None -> "faa@" ^ c.loc in
  Prog.atomic ~label (fun () ->
      let old = get c in
      set c (old + d);
      old)

let await ?label c =
  let label = match label with Some l -> l | None -> "await@" ^ c.loc in
  Prog.guard ~label (fun () -> Option.map Prog.return (get c))
