(** Source-DPOR and schedule-bounded iterative-deepening search engines.

    {!source} explores one interleaving per Mazurkiewicz trace of the
    over-approximated dependence relation ({!Deps}): it is {e complete} —
    every pruned schedule is equivalent to a delivered one with
    byte-identical history, trace and results, so verdicts are preserved
    exactly. {!bounded} is full enumeration within a preemption or delay
    budget, deepened level by level — an honest underapproximation, sound
    for bug-finding; its stats report [bounded = true] only when the bound
    actually cut an edge at the final level.

    Both engines accept a schedule [prefix] and are composed with
    {!Par_explore} by root-splitting ({!Explore.exhaustive_strategy}): the
    caller fully expands the root frontier (a superset of any backtrack
    set, so reversals never need to reach into the frozen prefix) and runs
    one engine instance per root decision as a rank-ordered task. *)

type cost_model = Preemption | Delay

val classify :
  thread:int ->
  n_decisions:int ->
  label:string ->
  recorded:(string list * string list) option ->
  Deps.eff
(** The effect of a just-applied decision: pure when the thread's head
    offered more than one decision (a [Choose] resolves structurally, no
    user code runs), else {!Deps.effect_of}. Shared with
    {!Explore.races_of}. *)

val source :
  restart:(unit -> Runner.exec) ->
  fuel:int ->
  ?max_runs:int ->
  ?prefix:Runner.decision list ->
  ?gate:(unit -> bool) ->
  ?abort:(unit -> bool) ->
  f:(Runner.outcome -> unit) ->
  unit ->
  Engine.stats
(** Source-DPOR from the state reached by [prefix] (default the initial
    state). [gate]/[abort] have {!Engine.dfs} semantics (shared run budget,
    cross-task first-failure bound). Stats report [races_found],
    [backtrack_points] and [sleep_pruned]; [bounded] is [false] — the
    reduction is verdict-complete. *)

val bounded :
  cost:cost_model ->
  bound:int ->
  restart:(unit -> Runner.exec) ->
  fuel:int ->
  ?max_runs:int ->
  ?prefix:Runner.decision list ->
  ?gate:(unit -> bool) ->
  ?abort:(unit -> bool) ->
  f:(Runner.outcome -> unit) ->
  unit ->
  Engine.stats
(** Iterative-deepening bounded search: level [c] (for [c = 0..bound])
    delivers exactly the runs whose schedule cost is [c] — a partition, so
    no run is delivered twice and delivery order is (cost, DFS)
    lexicographic. Preemption cost charges 1 when the previously scheduled
    thread could continue but another runs; delay cost charges 1 when the
    chosen thread deviates from the default continuation (last thread if
    enabled, else the first enabled). Branch choices are data
    nondeterminism: cost 0. *)
