type 'a t =
  | Return of 'a
  | Atomic of string * (unit -> 'a t)
  | Choose of string * 'a t list
  | Guard of string * (unit -> 'a t option)
  | Fallible of string * (unit -> 'a t) * (unit -> 'a t)

let return v = Return v

let rec bind m k =
  match m with
  | Return v -> k v
  | Atomic (l, f) -> Atomic (l, fun () -> bind (f ()) k)
  | Choose (l, ms) -> Choose (l, List.map (fun m -> bind m k) ms)
  | Guard (l, g) -> Guard (l, fun () -> Option.map (fun m -> bind m k) (g ()))
  | Fallible (l, f, h) ->
      Fallible (l, (fun () -> bind (f ()) k), fun () -> bind (h ()) k)

let map f m = bind m (fun v -> Return (f v))
let atomically ?(label = "step") f = Atomic (label, f)
let atomic ?(label = "step") f = Atomic (label, fun () -> Return (f ()))
let yield = atomic ~label:"yield" (fun () -> ())

let choose ?(label = "choose") = function
  | [] -> invalid_arg "Prog.choose: empty list"
  | [ m ] -> m
  | ms -> Choose (label, ms)

let choose_int ?label n = choose ?label (List.init n return)
let guard ?(label = "guard") g = Guard (label, g)

let await ?(label = "await") cell =
  guard ~label (fun () -> Option.map return !cell)
let read r = atomic ~label:"read" (fun () -> !r)
let write r v = atomic ~label:"write" (fun () -> r := v)

let cas ~eq r ~expect v =
  atomic ~label:"cas" (fun () ->
      if eq !r expect then begin
        r := v;
        true
      end
      else false)

let fallible ?(label = "fallible") ~on_fault f = Fallible (label, f, on_fault)

let cas_weak ?(label = "cas") ~eq r ~expect v =
  Fallible
    ( label,
      (fun () ->
        Return
          (if eq !r expect then begin
             r := v;
             true
           end
           else false)),
      fun () -> Return false )

let fetch_and_add r d =
  atomic ~label:"faa" (fun () ->
      let old = !r in
      r := old + d;
      old)

let timed ?(label = "timed") ~expired ~on_timeout g =
  Guard
    ( label,
      fun () ->
        match g () with
        | Some _ as r -> r
        | None -> if expired () then Some (on_timeout ()) else None )

let rec poll ?(label = "poll") ~expired ~on_timeout g =
  Atomic
    ( label,
      fun () ->
        match g () with
        | Some k -> k
        | None ->
            if expired () then on_timeout ()
            else poll ~label ~expired ~on_timeout g )

let rec repeat_until body =
  bind (body ()) (function Some v -> Return v | None -> repeat_until body)

let seq ms = List.fold_right (fun m acc -> bind m (fun () -> acc)) ms (Return ())

module Infix = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
  let ( >>= ) = bind
end
