(* Work-stealing parallel exploration over OCaml 5 domains (DESIGN §2.11).

   Dynamic cooperative splitting. There is no up-front task partition: the
   whole schedule tree starts as one task, and splitting happens on demand
   while workers explore. Each worker runs the incremental DFS with an
   explicit, worker-private stack of frames (one per open node: the
   branches not yet descended plus the scheduling state of that node). A
   shared [hungry] counter says how many workers currently have nothing to
   run; whenever it is positive, a busy worker that has descended at
   least one edge of its current task donates the {e entire remaining
   branch list of its shallowest open frame} — the biggest available
   chunk — as a new task into a small mutex-guarded pool. An
   idle worker claims it, reconstructs the frame by replaying the node's
   prefix on its own private {!Runner} cursor, and continues the
   iteration exactly where the donor would have — including further
   donations, so big subtrees keep splitting as long as anyone is idle.
   The only synchronisation on the hot descend/backtrack path is one
   atomic load per node.

   Determinism. Every task owns a {e contiguous interval} of the
   canonical (sequential DFS) leaf order: a donation always takes the
   canonical tail of the donor's remaining work (the shallowest frame's
   rest comes after everything below it), so intervals stay contiguous
   and disjoint by induction. Each task is labelled with its start {e
   rank} — the branch-index path from the global root to its first
   branch; ranks compare lexicographically ([int list] structural
   compare), and sorting the per-task accumulators by rank reproduces
   the sequential delivery order exactly, whatever the domain count or
   the steal timing. For first-failure searches the workers share a
   monotonically lowering [best] start rank: a task that finds a failure
   publishes its own start rank, and a task is abandoned only when
   [best] is strictly below its start — i.e. when a whole earlier
   interval already failed, so the sequential engine would never have
   reached it. The surviving failure with the lowest rank is the first
   failure in canonical schedule order — byte-identical to the
   sequential witness.

   Pruning caveat: with [prune] on, each task keeps its own fingerprint
   memo (sharing one across tasks could cut a subtree that a
   first-failure abort left unexplored). Since the task partition is
   timing-dependent, the delivered run {e set} of a pruned parallel
   sweep varies run to run; verdict coverage is preserved (same argument
   as sequential pruning), but callers that need byte-deterministic
   pruned reports use one domain. Unpruned sweeps — the default, and
   everything the report contract covers — are byte-identical across
   domain counts and executions. *)

type labelled = Runner.decision * string

(* A donated chunk: the tail of some node's branch list, plus everything
   needed to resume the node's iteration elsewhere — the prefix to replay,
   the node's scheduling state, the siblings already descended (feeding
   later sleep sets), and the global rank of the first donated branch. *)
type chunk = {
  k_rank : int list;            (* branch-index path to the first branch *)
  k_node_rank_rev : int list;   (* path to the node itself, newest first *)
  k_prefix : Runner.decision list;
  k_depth : int;
  k_last : int option;
  k_preemptions : int;
  k_last_enabled : bool;
  k_sleep : labelled list;
  k_explored : labelled list;   (* descended siblings, newest first *)
  k_rest : labelled list;       (* the branches this chunk owns, in order *)
  k_base : int;                 (* branch index of [hd k_rest] at the node *)
}

type task = Root | Chunk of chunk

(* One open node of a worker's DFS. The frame stack mirrors the native
   call stack; it exists so donation can scan for the shallowest frame
   with undescended branches. Owner-private: no locking. *)
type frame = {
  fr_depth : int;
  fr_prefix_rev : Runner.decision list;
  fr_rank_rev : int list;
  fr_last : int option;
  fr_preemptions : int;
  fr_last_enabled : bool;
  fr_sleep : labelled list;
  mutable fr_explored : labelled list;
  mutable fr_rest : labelled list;
  mutable fr_next : int;  (* branch index of [hd fr_rest] *)
}

(* The task pool. [p_hungry] is the lock-free donation signal (workers
   not currently executing a task); the queue, idle count and termination
   flag live under the mutex. Termination: every worker idle with an
   empty queue means no task is running, so nothing can be donated —
   done. *)
type pool = {
  p_mutex : Mutex.t;
  p_cond : Condition.t;
  mutable p_queue : chunk list;
  mutable p_idle : int;
  mutable p_finished : bool;
  mutable p_root_taken : bool;
  mutable p_stolen : int;  (* donated chunks claimed from the pool *)
  p_domains : int;
  p_hungry : int Atomic.t;
  p_pending : int Atomic.t;  (* donated chunks not yet claimed *)
  p_failure : exn option Atomic.t;
}

let new_pool ~domains =
  {
    p_mutex = Mutex.create ();
    p_cond = Condition.create ();
    p_queue = [];
    p_idle = 0;
    p_finished = false;
    p_root_taken = false;
    p_stolen = 0;
    p_domains = domains;
    p_hungry = Atomic.make domains;
    p_pending = Atomic.make 0;
    p_failure = Atomic.make None;
  }

let claim pool =
  Mutex.lock pool.p_mutex;
  let rec go () =
    if pool.p_finished || Atomic.get pool.p_failure <> None then None
    else if not pool.p_root_taken then begin
      pool.p_root_taken <- true;
      Some Root
    end
    else
      match pool.p_queue with
      | c :: rest ->
          pool.p_queue <- rest;
          pool.p_stolen <- pool.p_stolen + 1;
          Atomic.decr pool.p_pending;
          Some (Chunk c)
      | [] ->
          pool.p_idle <- pool.p_idle + 1;
          if pool.p_idle = pool.p_domains then begin
            pool.p_finished <- true;
            Condition.broadcast pool.p_cond
          end
          else
            while
              pool.p_queue = [] && not pool.p_finished
              && Atomic.get pool.p_failure = None
            do
              Condition.wait pool.p_cond pool.p_mutex
            done;
          pool.p_idle <- pool.p_idle - 1;
          go ()
  in
  let r = go () in
  (match r with Some _ -> Atomic.decr pool.p_hungry | None -> ());
  Mutex.unlock pool.p_mutex;
  r

let donate pool chunk =
  Mutex.lock pool.p_mutex;
  pool.p_queue <- pool.p_queue @ [ chunk ];
  Atomic.incr pool.p_pending;
  Condition.signal pool.p_cond;
  Mutex.unlock pool.p_mutex

let fail pool e =
  if Atomic.compare_and_set pool.p_failure None (Some e) then begin
    Mutex.lock pool.p_mutex;
    pool.p_finished <- true;
    Condition.broadcast pool.p_cond;
    Mutex.unlock pool.p_mutex
  end

(* ------------------------------------------------------ domain capping -- *)

(* Worker domains beyond the hardware's core count buy no parallelism and
   pay for it in stop-the-world minor-GC synchronisation (every domain
   must reach a safepoint for every collection), so a request is capped at
   [Domain.recommended_domain_count]. Reports are domain-count-invariant
   by construction, so the cap never changes a verdict — only wall-clock;
   the cap decision is surfaced as [domains_used] vs [domains_requested]
   in the stats. [CAL_EXPLORE_OVERSUBSCRIBE=1] lifts the cap: the
   determinism test suite uses it to genuinely exercise multi-domain
   stealing and cache sharing even on boxes with fewer cores than the
   requested domain count. *)
let effective_domains requested =
  if requested <= 1 then 1
  else if Engine.env_flag "CAL_EXPLORE_OVERSUBSCRIBE" then requested
  else min requested (Domain.recommended_domain_count ())

(* ----------------------------------------------------- parallel explore -- *)

let explore ~prune ~domains ?max_runs ?preemption_bound ~restart ~fuel ~init
    ~f ?stop_on () =
  let requested = max 1 domains in
  let domains = effective_domains requested in
  let donate_min = Cal.Tuning.explore_donation_min_height () in
  let budget = Option.map Atomic.make max_runs in
  let gate = Option.map (fun b () -> Atomic.fetch_and_add b (-1) > 0) budget in
  (* Deterministic first-failure bound: the lowest start rank of a task
     that found a failure ([None] = none yet). Strictly-later tasks are
     whole intervals the sequential engine would never reach. *)
  let best = Atomic.make (None : int list option) in
  let rec lower rank =
    match Atomic.get best with
    | Some b when compare b rank <= 0 -> ()
    | cur -> if not (Atomic.compare_and_set best cur (Some rank)) then lower rank
  in
  let pool = new_pool ~domains in
  let within_budget used =
    match preemption_bound with None -> true | Some b -> used <= b
  in
  let results = Array.make domains [] in
  let worker w () =
    let out = ref [] in
    let run_task task =
      let rank, prefix, depth0 =
        match task with
        | Root -> ([], [], 0)
        | Chunk c -> (c.k_rank, c.k_prefix, c.k_depth)
      in
      let exec = ref (restart ()) in
      List.iter (fun d -> ignore (Runner.step !exec d)) prefix;
      let runs = ref 0 and truncated = ref false and max_steps = ref 0 in
      let nodes = ref 0 and replayed = ref depth0 in
      let fp_hits = ref 0 and slept = ref 0 in
      let memo : (string, unit) Hashtbl.t =
        if prune then
          Hashtbl.create
            (Cal.Tuning.explore_memo_size ~fuel
               ~threads:(Engine.threads_of !exec))
        else Hashtbl.create 1
      in
      let acc = init () in
      let exception Task_done in
      let deliver () =
        (match gate with
        | Some admit when not (admit ()) ->
            truncated := true;
            raise Engine.Stop
        | _ -> ());
        let o = Runner.outcome !exec in
        f acc o;
        incr runs;
        if o.Runner.steps > !max_steps then max_steps := o.Runner.steps;
        match stop_on with
        | Some hit when hit acc o ->
            lower rank;
            raise Task_done
        | _ -> ()
      in
      let abandoned () =
        match stop_on with
        | None -> false
        | Some _ -> (
            match Atomic.get best with
            | Some b -> compare b rank < 0
            | None -> false)
      in
      (* Per-task frame stack, shallowest first. *)
      let frames = ref [||] and ntop = ref 0 in
      (* A task donates only after it has descended at least one edge.
         Without this, a freshly claimed chunk whose owner sees a hungry
         peer donates its {e entire} branch list back to the pool before
         doing any work — and with several workers timesharing few cores
         the chunk circulates as a hot potato, each hop burning a full
         prefix replay and a result entry while one worker does all the
         real work (observed: ~90 donations per delivered run). Requiring
         one descended edge first makes every hop shrink the interval, so
         total donations are bounded by the tree's edge count. *)
      let started = ref false in
      let push fr =
        let arr = !frames in
        let cap = Array.length arr in
        if !ntop >= cap then begin
          let arr' = Array.make (max 16 (2 * cap)) fr in
          Array.blit arr 0 arr' 0 cap;
          frames := arr'
        end;
        !frames.(!ntop) <- fr;
        incr ntop
      in
      let pop () = decr ntop in
      (* Donate the shallowest frame's remaining branches — the canonical
         tail of this task's remaining work — when there are more hungry
         workers than chunks already waiting for them (without the
         pending bound, oversubscribed runs over-split: some worker is
         always between tasks, and every busy worker would shed work on
         every node). Frames whose subtree height is below the grain
         threshold are skipped: handing out a few leaves costs more than
         running them. *)
      let maybe_donate () =
        if !started && Atomic.get pool.p_hungry > Atomic.get pool.p_pending
        then begin
          let arr = !frames and n = !ntop in
          let rec find i =
            if i >= n then ()
            else
              let fr = arr.(i) in
              if fr.fr_rest <> [] && fuel - fr.fr_depth >= donate_min then begin
                donate pool
                  {
                    k_rank = List.rev (fr.fr_next :: fr.fr_rank_rev);
                    k_node_rank_rev = fr.fr_rank_rev;
                    k_prefix = List.rev fr.fr_prefix_rev;
                    k_depth = fr.fr_depth;
                    k_last = fr.fr_last;
                    k_preemptions = fr.fr_preemptions;
                    k_last_enabled = fr.fr_last_enabled;
                    k_sleep = fr.fr_sleep;
                    k_explored = fr.fr_explored;
                    k_rest = fr.fr_rest;
                    k_base = fr.fr_next;
                  };
                fr.fr_rest <- []
              end
              else find (i + 1)
          in
          find 0
        end
      in
      let ensure_at depth prefix_rev =
        if Runner.steps_done !exec <> depth then begin
          let e = restart () in
          List.iter (fun d -> ignore (Runner.step e d)) (List.rev prefix_rev);
          replayed := !replayed + depth;
          exec := e
        end
      in
      let rec expand ~depth ~prefix_rev ~rank_rev ~last ~preemptions ~sleep =
        if abandoned () then raise Engine.Abandoned;
        incr nodes;
        let frontier = Runner.frontier !exec in
        if frontier = [] || depth >= fuel then deliver ()
        else begin
          let pruned_here =
            prune
            &&
            let fp = Runner.fingerprint !exec in
            if Hashtbl.mem memo fp then true
            else begin
              Hashtbl.add memo fp ();
              false
            end
          in
          if pruned_here then incr fp_hits
          else begin
            let labelled =
              List.map
                (fun (d : Runner.decision) ->
                  ( d,
                    Option.value ~default:""
                      (Runner.head_label !exec d.thread) ))
                frontier
            in
            let last_enabled =
              List.exists
                (fun (d : Runner.decision) -> Some d.thread = last)
                frontier
            in
            let fr =
              {
                fr_depth = depth;
                fr_prefix_rev = prefix_rev;
                fr_rank_rev = rank_rev;
                fr_last = last;
                fr_preemptions = preemptions;
                fr_last_enabled = last_enabled;
                fr_sleep = sleep;
                fr_explored = [];
                fr_rest = labelled;
                fr_next = 0;
              }
            in
            push fr;
            iterate fr;
            pop ()
          end
        end
      and iterate fr =
        maybe_donate ();
        match fr.fr_rest with
        | [] -> ()
        | (d, l) :: rest ->
            fr.fr_rest <- rest;
            let idx = fr.fr_next in
            fr.fr_next <- idx + 1;
            let cost =
              if fr.fr_last_enabled && Some d.thread <> fr.fr_last then
                fr.fr_preemptions + 1
              else fr.fr_preemptions
            in
            if within_budget cost then begin
              if
                prune
                && List.exists
                     (fun ((s : Runner.decision), _) ->
                       s.thread = d.thread && s.branch = d.branch)
                     fr.fr_sleep
              then incr slept
              else begin
                ensure_at fr.fr_depth fr.fr_prefix_rev;
                ignore (Runner.step !exec d);
                started := true;
                let sleep' =
                  if prune then
                    List.filter
                      (fun s -> Engine.independent s (d, l))
                      (fr.fr_sleep @ List.rev fr.fr_explored)
                  else []
                in
                expand ~depth:(fr.fr_depth + 1)
                  ~prefix_rev:(d :: fr.fr_prefix_rev)
                  ~rank_rev:(idx :: fr.fr_rank_rev) ~last:(Some d.thread)
                  ~preemptions:cost ~sleep:sleep';
                fr.fr_explored <- (d, l) :: fr.fr_explored
              end
            end;
            iterate fr
      in
      (try
         match task with
         | Root ->
             expand ~depth:0 ~prefix_rev:[] ~rank_rev:[] ~last:None
               ~preemptions:0 ~sleep:[]
         | Chunk c ->
             (* The donor counted (and, under pruning, memoized) this node
                when it expanded it; the chunk resumes mid-iteration. *)
             let fr =
               {
                 fr_depth = c.k_depth;
                 fr_prefix_rev = List.rev c.k_prefix;
                 fr_rank_rev = c.k_node_rank_rev;
                 fr_last = c.k_last;
                 fr_preemptions = c.k_preemptions;
                 fr_last_enabled = c.k_last_enabled;
                 fr_sleep = c.k_sleep;
                 fr_explored = c.k_explored;
                 fr_rest = c.k_rest;
                 fr_next = c.k_base;
               }
             in
             if abandoned () then raise Engine.Abandoned;
             push fr;
             iterate fr;
             pop ()
       with Engine.Stop | Engine.Abandoned | Task_done -> ());
      let stats =
        {
          Engine.empty_stats with
          Engine.runs = !runs;
          truncated = !truncated;
          max_steps = !max_steps;
          nodes = !nodes;
          replayed_steps = !replayed;
          fingerprint_hits = !fp_hits;
          sleep_pruned = !slept;
        }
      in
      (rank, stats, acc)
    in
    let rec loop () =
      match claim pool with
      | None -> ()
      | Some task ->
          (match (try Some (run_task task) with e -> fail pool e; None) with
          | Some r -> out := r :: !out
          | None -> ());
          Atomic.incr pool.p_hungry;
          loop ()
    in
    loop ();
    results.(w) <- !out
  in
  let spawned =
    List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1)))
  in
  worker 0 ();
  List.iter Domain.join spawned;
  (match Atomic.get pool.p_failure with Some e -> raise e | None -> ());
  let entries =
    Array.to_list results |> List.concat
    |> List.sort (fun (r1, _, _) (r2, _, _) -> compare r1 r2)
  in
  let merged =
    List.fold_left
      (fun m (_, s, _) -> Engine.merge_stats m s)
      Engine.empty_stats entries
  in
  let stats =
    {
      merged with
      Engine.tasks_stolen = pool.p_stolen;
      domains_used = domains;
      domains_requested = requested;
    }
  in
  (stats, Array.of_list (List.map (fun (_, _, a) -> a) entries))

(* Generic deterministic parallel map over an explicit task array (used by
   the plan fan-out of the fault sweep): items are claimed with one atomic
   fetch-and-add — no lock, no O(n) scan — and results land at their
   item's index, so merging in index order reproduces the sequential
   order. A claim is counted stolen when the item would not have landed on
   this worker under a static round-robin split. *)
let map_tasks ~domains ~f items =
  let n = Array.length items in
  if n = 0 then ([||], 0)
  else begin
    let domains = max 1 (min (effective_domains domains) n) in
    let results = Array.make n None in
    if domains = 1 then begin
      Array.iteri (fun i x -> results.(i) <- Some (f i x)) items;
      (Array.map Option.get results, 0)
    end
    else begin
      let next = Atomic.make 0 in
      let stolen = Atomic.make 0 in
      let failure = Atomic.make (None : exn option) in
      let worker w () =
        let rec loop () =
          if Atomic.get failure = None then begin
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              if i mod domains <> w then Atomic.incr stolen;
              (try results.(i) <- Some (f i items.(i))
               with e -> ignore (Atomic.compare_and_set failure None (Some e)));
              loop ()
            end
          end
        in
        loop ()
      in
      let spawned =
        List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1)))
      in
      worker 0 ();
      List.iter Domain.join spawned;
      (match Atomic.get failure with Some e -> raise e | None -> ());
      (Array.map Option.get results, Atomic.get stolen)
    end
  end
