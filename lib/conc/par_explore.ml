(* Work-stealing parallel exploration over OCaml 5 domains (DESIGN §2.11).

   The schedule tree is split at a frontier depth into independent subtree
   tasks, each carrying its root prefix plus the scheduling state
   accumulated along it (last thread, preemption count, sleep set). Every
   worker domain owns a private {!Runner} execution cursor — programs are
   pure values, so replaying a prefix in another domain reproduces the
   same subtree — and runs {!Engine.dfs} rooted at each task it claims.
   Tasks are statically owned round-robin and stolen when a worker's own
   share is exhausted; steals are counted in the stats.

   Determinism. Tasks are generated and merged in canonical DFS order, so
   for full sweeps the delivered run set, the per-task accumulators and
   the merged counters are exactly those of the sequential engine (only
   [replayed_steps] grows, by the task-prefix replays). For
   first-failure searches the workers share a monotonically lowering
   [best]-task bound: a worker that finds a failure publishes its task
   index and every worker abandons tasks ordered after the bound, so the
   surviving failure with the lowest task index is the first failure in
   canonical schedule order — byte-identical to the sequential witness. *)

type task = {
  t_prefix : Runner.decision list;
  t_last : int option;
  t_preemptions : int;
  t_sleep : (Runner.decision * string) list;
  t_terminal : bool;
      (* the prefix is itself a maximal run: deliver it, do not descend *)
}

(* ------------------------------------------------------- tree splitter -- *)

(* Mirror of the Engine.dfs descent down to [split_depth], emitting one
   task per surviving node at the split frontier and one terminal task per
   maximal run above it. Preemption budget, fingerprint memoization and
   sleep sets apply exactly as in the sequential descent, so the emitted
   task set covers exactly the subtrees the sequential engine would enter.
   Interior nodes (and terminal leaves) above the frontier are counted
   here; each task's own root node is counted by the worker that runs it. *)
let split ~restart ~fuel ~preemption_bound ~prune ~split_depth =
  let exec = ref (restart ()) in
  let nodes = ref 0 and replayed = ref 0 in
  let fp_hits = ref 0 and slept = ref 0 in
  let memo : (string, unit) Hashtbl.t =
    if prune then
      Hashtbl.create
        (Cal.Tuning.explore_memo_size ~fuel ~threads:(Engine.threads_of !exec))
    else Hashtbl.create 1
  in
  let tasks = ref [] in
  let within_budget used =
    match preemption_bound with None -> true | Some b -> used <= b
  in
  let ensure_at depth prefix_rev =
    if Runner.steps_done !exec <> depth then begin
      let e = restart () in
      List.iter (fun d -> ignore (Runner.step e d)) (List.rev prefix_rev);
      replayed := !replayed + depth;
      exec := e
    end
  in
  let emit ~prefix_rev ~last ~preemptions ~sleep ~terminal =
    tasks :=
      {
        t_prefix = List.rev prefix_rev;
        t_last = last;
        t_preemptions = preemptions;
        t_sleep = sleep;
        t_terminal = terminal;
      }
      :: !tasks
  in
  let rec node ~prefix_rev ~depth ~last ~preemptions ~sleep =
    if depth >= split_depth then
      emit ~prefix_rev ~last ~preemptions ~sleep ~terminal:false
    else begin
      incr nodes;
      let frontier = Runner.frontier !exec in
      if frontier = [] || depth >= fuel then
        (* [nodes] already counted this leaf; the worker only delivers. *)
        emit ~prefix_rev ~last ~preemptions ~sleep ~terminal:true
      else begin
        let pruned_here =
          prune
          &&
          let fp = Runner.fingerprint !exec in
          if Hashtbl.mem memo fp then true
          else begin
            Hashtbl.add memo fp ();
            false
          end
        in
        if pruned_here then incr fp_hits
        else begin
          let labelled =
            List.map
              (fun (d : Runner.decision) ->
                (d, Option.value ~default:"" (Runner.head_label !exec d.thread)))
              frontier
          in
          let last_enabled =
            List.exists
              (fun (d : Runner.decision) -> Some d.thread = last)
              frontier
          in
          let explored = ref [] in
          List.iter
            (fun ((d : Runner.decision), l) ->
              let cost =
                if last_enabled && Some d.thread <> last then preemptions + 1
                else preemptions
              in
              if within_budget cost then begin
                if
                  prune
                  && List.exists
                       (fun ((s : Runner.decision), _) ->
                         s.thread = d.thread && s.branch = d.branch)
                       sleep
                then incr slept
                else begin
                  ensure_at depth prefix_rev;
                  ignore (Runner.step !exec d);
                  let sleep' =
                    if prune then
                      List.filter
                        (fun s -> Engine.independent s (d, l))
                        (sleep @ List.rev !explored)
                    else []
                  in
                  node ~prefix_rev:(d :: prefix_rev) ~depth:(depth + 1)
                    ~last:(Some d.thread) ~preemptions:cost ~sleep:sleep';
                  explored := (d, l) :: !explored
                end
              end)
            labelled
        end
      end
    end
  in
  node ~prefix_rev:[] ~depth:0 ~last:None ~preemptions:0 ~sleep:[];
  let splitter_stats =
    {
      Engine.empty_stats with
      Engine.nodes = !nodes;
      replayed_steps = !replayed;
      fingerprint_hits = !fp_hits;
      sleep_pruned = !slept;
    }
  in
  (Array.of_list (List.rev !tasks), splitter_stats)

(* Deepen the split frontier until there are enough expandable subtrees to
   keep every domain busy (or the tree runs out). Re-splitting re-walks
   only the shallow top of the tree, so the final pass's counters are the
   ones reported. *)
let choose_split ~restart ~fuel ~preemption_bound ~prune ~domains =
  let target = 4 * domains in
  let rec go depth =
    let tasks, stats =
      split ~restart ~fuel ~preemption_bound ~prune ~split_depth:depth
    in
    let expandable =
      Array.fold_left (fun n t -> if t.t_terminal then n else n + 1) 0 tasks
    in
    if
      expandable >= target || expandable = 0 || depth >= fuel
      || Array.length tasks >= 64 * domains
    then (tasks, stats)
    else go (depth + 1)
  in
  go 1

(* ------------------------------------------------- work-stealing pool -- *)

(* Worker domains beyond the hardware's core count buy no parallelism and
   pay for it in stop-the-world minor-GC synchronisation (every domain
   must reach a safepoint for every collection), so a request is capped at
   [Domain.recommended_domain_count]. Reports are domain-count-invariant
   by construction, so the cap never changes a verdict — only wall-clock.
   [CAL_EXPLORE_OVERSUBSCRIBE=1] lifts the cap: the determinism test suite
   uses it to genuinely exercise multi-domain stealing and cache sharing
   even on boxes with fewer cores than the requested domain count. *)
let effective_domains requested =
  if requested <= 1 then 1
  else if Engine.env_flag "CAL_EXPLORE_OVERSUBSCRIBE" then requested
  else min requested (Domain.recommended_domain_count ())

(* Claim under one mutex: first an unclaimed task this worker owns
   (static round-robin ownership), else steal the earliest unclaimed one.
   A start barrier (the Condition) holds every worker until all domains
   are spawned, so ownership is meaningful and steal counts are honest. *)
let run_pool ~domains ~ntasks ~run =
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let ready = ref 0 in
  let go = ref false in
  let claimed = Array.make ntasks false in
  let stolen = Atomic.make 0 in
  let failure = Atomic.make (None : exn option) in
  let barrier () =
    Mutex.lock lock;
    incr ready;
    if !ready = domains then begin
      go := true;
      Condition.broadcast cond
    end
    else while not !go do Condition.wait cond lock done;
    Mutex.unlock lock
  in
  let claim w =
    Mutex.lock lock;
    let pick = ref None in
    (try
       for i = 0 to ntasks - 1 do
         if (not claimed.(i)) && i mod domains = w then begin
           pick := Some i;
           raise Exit
         end
       done;
       for i = 0 to ntasks - 1 do
         if not claimed.(i) then begin
           pick := Some i;
           raise Exit
         end
       done
     with Exit -> ());
    (match !pick with
    | Some i ->
        claimed.(i) <- true;
        if i mod domains <> w then Atomic.incr stolen
    | None -> ());
    Mutex.unlock lock;
    !pick
  in
  let worker w () =
    barrier ();
    let rec loop () =
      if Atomic.get failure = None then
        match claim w with
        | None -> ()
        | Some i ->
            (try run i
             with e -> ignore (Atomic.compare_and_set failure None (Some e)));
            loop ()
    in
    loop ()
  in
  let spawned =
    List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1)))
  in
  worker 0 ();
  List.iter Domain.join spawned;
  (match Atomic.get failure with Some e -> raise e | None -> ());
  Atomic.get stolen

(* Generic deterministic parallel map over an explicit task list (used by
   the plan fan-out of the fault sweep): results land at their task index,
   so merging in index order reproduces the sequential order. *)
let map_tasks ~domains ~f items =
  let n = Array.length items in
  if n = 0 then ([||], 0)
  else begin
    let domains = effective_domains domains in
    let results = Array.make n None in
    let stolen =
      run_pool ~domains:(max 1 (min domains n)) ~ntasks:n ~run:(fun i ->
          results.(i) <- Some (f i items.(i)))
    in
    (Array.map Option.get results, stolen)
  end

(* ----------------------------------------------------- parallel explore -- *)

let explore ~prune ~domains ?split_depth ?max_runs ?preemption_bound ~restart
    ~fuel ~init ~f ?stop_on () =
  let domains = effective_domains domains in
  let tasks, splitter_stats =
    match split_depth with
    | Some d ->
        split ~restart ~fuel ~preemption_bound ~prune
          ~split_depth:(max 1 (min d fuel))
    | None -> choose_split ~restart ~fuel ~preemption_bound ~prune ~domains
  in
  let ntasks = Array.length tasks in
  let budget = Option.map Atomic.make max_runs in
  let gate =
    Option.map (fun b () -> Atomic.fetch_and_add b (-1) > 0) budget
  in
  (* Deterministic first-failure bound: the lowest task index that found a
     failure; tasks ordered after it are abandoned. *)
  let best = Atomic.make max_int in
  let rec lower idx =
    let cur = Atomic.get best in
    if idx < cur && not (Atomic.compare_and_set best cur idx) then lower idx
  in
  let results = Array.make (max 1 ntasks) None in
  let run_task idx =
    let t = tasks.(idx) in
    let acc = init () in
    let exception Task_done in
    let deliver o =
      f acc o;
      match stop_on with
      | Some hit when hit acc o ->
          lower idx;
          raise Task_done
      | _ -> ()
    in
    let stats =
      if t.t_terminal then begin
        (* The splitter counted this leaf's node; just replay and deliver. *)
        let e = restart () in
        List.iter (fun d -> ignore (Runner.step e d)) t.t_prefix;
        let o = Runner.outcome e in
        let admitted = match gate with Some g -> g () | None -> true in
        if admitted then (try deliver o with Task_done -> ());
        {
          Engine.empty_stats with
          Engine.runs = (if admitted then 1 else 0);
          truncated = not admitted;
          max_steps = (if admitted then o.Runner.steps else 0);
          replayed_steps = List.length t.t_prefix;
        }
      end
      else
        let abort =
          match stop_on with
          | None -> None
          | Some _ -> Some (fun () -> Atomic.get best < idx)
        in
        try
          Engine.dfs ~restart ~fuel ?preemption_bound ~prune
            ~prefix:t.t_prefix ?last0:t.t_last ~preemptions0:t.t_preemptions
            ~sleep0:t.t_sleep ?gate ?abort ~init_path:()
            ~step_path:(fun () _ _ -> ())
            ~leaf:(fun o _ () -> deliver o)
            ()
        with Task_done ->
          (* the task stopped at its first failure; its partial counters
             are unavailable, which only affects cost accounting *)
          { Engine.empty_stats with Engine.runs = 1 }
    in
    results.(idx) <- Some (stats, acc)
  in
  let stolen =
    if ntasks = 0 then 0
    else run_pool ~domains:(max 1 domains) ~ntasks ~run:run_task
  in
  let merged = ref splitter_stats in
  let accs = ref [] in
  Array.iter
    (fun r ->
      match r with
      | None -> ()
      | Some (s, acc) ->
          merged := Engine.merge_stats !merged s;
          accs := acc :: !accs)
    results;
  let stats =
    {
      !merged with
      Engine.tasks_stolen = stolen;
      domains_used = max 1 domains;
    }
  in
  (stats, Array.of_list (List.rev !accs))
