type t =
  | Crash of { thread : int; at_step : int }
  | Fail_step of { label : string; nth : int }
  | Stall of { thread : int; at_step : int; for_steps : int }
  | Delay of { thread : int; factor : int }
  | Crash_system of { at_step : int }

type plan = t list

let crash ~thread ~at_step = Crash { thread; at_step }
let fail_step ~label ~nth = Fail_step { label; nth }
let stall ~thread ~at_step ~for_steps = Stall { thread; at_step; for_steps }
let delay ~thread ~factor = Delay { thread; factor }
let crash_system ~at_step = Crash_system { at_step }

let validate ?(max_crash_depth = 1) plan =
  let seen_crash = Hashtbl.create 4 in
  let seen_delay = Hashtbl.create 4 in
  let sys_crashes = ref 0 in
  let last_sys = ref (-1) in
  let rec go = function
    | [] -> Ok ()
    | Crash_system { at_step } :: rest ->
        if at_step < 0 then Error "Crash_system: negative at_step"
        else if at_step <= !last_sys && !sys_crashes > 0 then
          Error "Crash_system: crash points must be strictly increasing"
        else begin
          incr sys_crashes;
          last_sys := at_step;
          if !sys_crashes > max_crash_depth then
            Error
              (Fmt.str "Crash_system: %d system crashes exceed max_crash_depth %d"
                 !sys_crashes max_crash_depth)
          else go rest
        end
    | Crash { thread; at_step } :: rest ->
        if thread < 0 then Error "Crash: negative thread"
        else if at_step < 0 then Error "Crash: negative at_step"
        else if Hashtbl.mem seen_crash thread then
          Error (Fmt.str "two crashes of thread %d" thread)
        else begin
          Hashtbl.replace seen_crash thread ();
          go rest
        end
    | Fail_step { label; nth } :: rest ->
        if label = "" then Error "Fail_step: empty label"
        else if nth < 1 then Error "Fail_step: nth must be >= 1"
        else go rest
    | Stall { thread; at_step; for_steps } :: rest ->
        if thread < 0 then Error "Stall: negative thread"
        else if at_step < 0 then Error "Stall: negative at_step"
        else if for_steps < 1 then Error "Stall: for_steps must be >= 1"
        else go rest
    | Delay { thread; factor } :: rest ->
        if thread < 0 then Error "Delay: negative thread"
        else if factor < 2 then Error "Delay: factor must be >= 2"
        else if Hashtbl.mem seen_delay thread then
          Error (Fmt.str "two delays of thread %d" thread)
        else begin
          Hashtbl.replace seen_delay thread ();
          go rest
        end
  in
  go plan

let matches_label ~pattern label =
  String.equal pattern label
  ||
  let pl = String.length pattern in
  String.length label > pl && String.sub label 0 pl = pattern && label.[pl] = '@'

let crashed_threads plan =
  List.filter_map (function Crash { thread; _ } -> Some thread | _ -> None) plan
  |> List.sort_uniq Int.compare

let system_crash_points plan =
  List.filter_map
    (function Crash_system { at_step } -> Some at_step | _ -> None)
    plan

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let pp ppf = function
  | Crash { thread; at_step } -> Fmt.pf ppf "crash(t%d@%d)" thread at_step
  | Fail_step { label; nth } -> Fmt.pf ppf "fail(%s#%d)" label nth
  | Stall { thread; at_step; for_steps } ->
      Fmt.pf ppf "stall(t%d@%d+%d)" thread at_step for_steps
  | Delay { thread; factor } -> Fmt.pf ppf "delay(t%d*%d)" thread factor
  | Crash_system { at_step } -> Fmt.pf ppf "crash-system(@%d)" at_step

let pp_plan ppf = function
  | [] -> Fmt.pf ppf "(no faults)"
  | plan -> Fmt.pf ppf "@[<h>%a@]" (Fmt.list ~sep:(Fmt.any " ") pp) plan
