type t =
  | Crash of { thread : int; at_step : int }
  | Fail_step of { label : string; nth : int }
  | Stall of { thread : int; at_step : int; for_steps : int }
  | Delay of { thread : int; factor : int }

type plan = t list

let crash ~thread ~at_step = Crash { thread; at_step }
let fail_step ~label ~nth = Fail_step { label; nth }
let stall ~thread ~at_step ~for_steps = Stall { thread; at_step; for_steps }
let delay ~thread ~factor = Delay { thread; factor }

let validate plan =
  let seen_crash = Hashtbl.create 4 in
  let seen_delay = Hashtbl.create 4 in
  let rec go = function
    | [] -> Ok ()
    | Crash { thread; at_step } :: rest ->
        if thread < 0 then Error "Crash: negative thread"
        else if at_step < 0 then Error "Crash: negative at_step"
        else if Hashtbl.mem seen_crash thread then
          Error (Fmt.str "two crashes of thread %d" thread)
        else begin
          Hashtbl.replace seen_crash thread ();
          go rest
        end
    | Fail_step { label; nth } :: rest ->
        if label = "" then Error "Fail_step: empty label"
        else if nth < 1 then Error "Fail_step: nth must be >= 1"
        else go rest
    | Stall { thread; at_step; for_steps } :: rest ->
        if thread < 0 then Error "Stall: negative thread"
        else if at_step < 0 then Error "Stall: negative at_step"
        else if for_steps < 1 then Error "Stall: for_steps must be >= 1"
        else go rest
    | Delay { thread; factor } :: rest ->
        if thread < 0 then Error "Delay: negative thread"
        else if factor < 2 then Error "Delay: factor must be >= 2"
        else if Hashtbl.mem seen_delay thread then
          Error (Fmt.str "two delays of thread %d" thread)
        else begin
          Hashtbl.replace seen_delay thread ();
          go rest
        end
  in
  go plan

let matches_label ~pattern label =
  String.equal pattern label
  ||
  let pl = String.length pattern in
  String.length label > pl && String.sub label 0 pl = pattern && label.[pl] = '@'

let crashed_threads plan =
  List.filter_map (function Crash { thread; _ } -> Some thread | _ -> None) plan
  |> List.sort_uniq Int.compare

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let pp ppf = function
  | Crash { thread; at_step } -> Fmt.pf ppf "crash(t%d@%d)" thread at_step
  | Fail_step { label; nth } -> Fmt.pf ppf "fail(%s#%d)" label nth
  | Stall { thread; at_step; for_steps } ->
      Fmt.pf ppf "stall(t%d@%d+%d)" thread at_step for_steps
  | Delay { thread; factor } -> Fmt.pf ppf "delay(t%d*%d)" thread factor

let pp_plan ppf = function
  | [] -> Fmt.pf ppf "(no faults)"
  | plan -> Fmt.pf ppf "@[<h>%a@]" (Fmt.list ~sep:(Fmt.any " ") pp) plan
