(** Tracked shared cells: the instrumented replacement for the bare [ref]s
    that structure implementations share between threads.

    Every access made through a [Cell] inside an applied step is recorded in
    the run's {!Ctx}, giving the exploration engine a precise per-step
    read/write set — the raw material for the happens-before relation that
    source-DPOR reduces with. Accesses outside a step (setup code, guard
    evaluation during frontier computation) record nothing, because
    {!Ctx.note_read} is a no-op there.

    Labels of the step constructors keep the ["op@loc"] suffix convention so
    the engine's older label heuristics still apply to them as a fallback. *)

type 'a t

val make : Ctx.t -> loc:string -> 'a -> 'a t
(** [make ctx ~loc v] is a fresh cell named [loc] (e.g. ["S0.top"]).
    Creation records no access: a new cell is thread-local until its
    location is published through a tracked write. *)

val loc : 'a t -> string

val peek : 'a t -> 'a
(** Untracked read, for observers ([view], [contents]) and probe code that
    must not perturb the dependency record. *)

val poke : 'a t -> 'a -> unit
(** Untracked write, for setup and crash-recovery code running outside any
    scheduled step. *)

(** {1 In-step accesses} — for use inside existing [Prog] closures. *)

val get : 'a t -> 'a
(** Read the cell and record the read against the current step. *)

val set : 'a t -> 'a -> unit
(** Write the cell and record the write against the current step. *)

val compare_and_set : eq:('a -> 'a -> bool) -> 'a t -> expect:'a -> 'a -> bool
(** CAS: always records a read; records a write only when it succeeds. *)

(** {1 Step constructors} — one atomic step per access, mirroring
    {!Prog.read} and friends. Default labels are ["read@loc"] etc. *)

val read : ?label:string -> 'a t -> 'a Prog.t
val write : ?label:string -> 'a t -> 'a -> unit Prog.t
val cas : ?label:string -> eq:('a -> 'a -> bool) -> 'a t -> expect:'a -> 'a -> bool Prog.t

val cas_weak :
  ?label:string -> eq:('a -> 'a -> bool) -> 'a t -> expect:'a -> 'a -> bool Prog.t
(** Like {!cas} but [Fallible]: the scheduler may fail it spuriously. The
    faulted branch still records the read, so a scheduler-failed CAS stays
    ordered against conflicting writes. *)

val fetch_and_add : ?label:string -> int t -> int -> int Prog.t

val await : ?label:string -> 'a option t -> 'a Prog.t
(** Guard that blocks until the cell is [Some v]. Frontier-time evaluations
    are untracked; the passing evaluation (inside the applied step) records
    the read. *)
