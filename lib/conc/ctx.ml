type t = {
  mutable history_rev : Cal.Action.t list;
  mutable hist_len : int;
  mutable trace_rev : Cal.Ca_trace.element list;
  mutable trace_len : int;
  mutable clock : int;
  mutable skew : (int * int) list;
}

let create () =
  {
    history_rev = [];
    hist_len = 0;
    trace_rev = [];
    trace_len = 0;
    clock = 0;
    skew = [];
  }

let log_action t a =
  t.history_rev <- a :: t.history_rev;
  t.hist_len <- t.hist_len + 1

let history_length t = t.hist_len
let now t = t.clock
let tick t = t.clock <- t.clock + 1

let set_skew t ~thread ~factor =
  if thread < 0 then invalid_arg "Ctx.set_skew: negative thread";
  if factor < 1 then invalid_arg "Ctx.set_skew: factor must be >= 1";
  t.skew <- (thread, factor) :: List.remove_assoc thread t.skew

let skew_factor t ~thread =
  match List.assoc_opt thread t.skew with Some f -> f | None -> 1

let local_now t ~tid =
  t.clock * skew_factor t ~thread:(Cal.Ids.Tid.to_int tid)

let log_element t e =
  t.trace_rev <- e :: t.trace_rev;
  t.trace_len <- t.trace_len + 1

let log_elements t es = List.iter (log_element t) es
let history t = Cal.History.of_list (List.rev t.history_rev)
let trace t = List.rev t.trace_rev
let trace_length t = t.trace_len

let active_threads t ~oid =
  (* Scan newest-to-oldest: a response closes its thread's pending call. *)
  let closed = Hashtbl.create 8 in
  let active = ref [] in
  List.iter
    (fun a ->
      let tid = Cal.Action.tid a in
      match a with
      | Cal.Action.Res { oid = o; _ } when Cal.Ids.Oid.equal o oid ->
          Hashtbl.replace closed (Cal.Ids.Tid.to_int tid) ()
      | Cal.Action.Inv { oid = o; _ } when Cal.Ids.Oid.equal o oid ->
          if not (Hashtbl.mem closed (Cal.Ids.Tid.to_int tid)) then begin
            active := tid :: !active;
            (* older invocations of this thread are already answered *)
            Hashtbl.replace closed (Cal.Ids.Tid.to_int tid) ()
          end
      | _ -> ())
    t.history_rev;
  List.sort_uniq Cal.Ids.Tid.compare !active
