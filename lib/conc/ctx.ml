type t = {
  mutable history_rev : Cal.Action.t list;
  mutable hist_len : int;
  mutable trace_rev : Cal.Ca_trace.element list;
  mutable trace_len : int;
  mutable clock : int;
  mutable skew : (int * int) list;
  mutable crashes : int;
  (* Per-step access recording for happens-before analysis. [track] is on
     only while the runner applies a scheduling decision, so guard
     evaluations during frontier computation record nothing. *)
  mutable track : bool;
  mutable reads_rev : string list;
  mutable writes_rev : string list;
  mutable noted : bool;
}

(* Pseudo-locations for the checker-visible logs. The history quotient of
   {!Cal.History.canonicalize} — adjacent same-kind actions of different
   threads commute without changing entries, eras or [precedes], hence any
   verdict — is mirrored here as an access footprint: an invocation reads
   [hist_loc], a response writes it, so inv/inv and the log-order of a
   history step against a trace step commute while inv/res (the pairs that
   change [precedes]) and res/res conflict. Trace elements are consumed in
   order by the spec obligation, so trace-logging steps all conflict. *)
let hist_loc = "!hist"
let trace_loc = "!trace"

let create () =
  {
    history_rev = [];
    hist_len = 0;
    trace_rev = [];
    trace_len = 0;
    clock = 0;
    skew = [];
    crashes = 0;
    track = false;
    reads_rev = [];
    writes_rev = [];
    noted = false;
  }

let note_read t loc =
  if t.track then begin
    t.reads_rev <- loc :: t.reads_rev;
    t.noted <- true
  end

let note_write t loc =
  if t.track then begin
    t.writes_rev <- loc :: t.writes_rev;
    t.noted <- true
  end

let begin_step t =
  t.track <- true;
  t.reads_rev <- [];
  t.writes_rev <- [];
  t.noted <- false

let end_step t = t.track <- false

let step_accesses t =
  if not t.noted then None
  else
    Some
      ( List.sort_uniq String.compare t.reads_rev,
        List.sort_uniq String.compare t.writes_rev )

let log_action t a =
  (match a with
  | Cal.Action.Inv _ -> note_read t hist_loc
  | Cal.Action.Res _ -> note_write t hist_loc
  | Cal.Action.Crash _ ->
      (* era boundary: nothing may commute across it *)
      note_write t hist_loc;
      note_write t trace_loc);
  t.history_rev <- a :: t.history_rev;
  t.hist_len <- t.hist_len + 1

let history_length t = t.hist_len

let record_crash t =
  t.crashes <- t.crashes + 1;
  log_action t (Cal.Action.crash ~epoch:t.crashes)

let crash_count t = t.crashes
let now t = t.clock
let tick t = t.clock <- t.clock + 1

let set_skew t ~thread ~factor =
  if thread < 0 then invalid_arg "Ctx.set_skew: negative thread";
  if factor < 1 then invalid_arg "Ctx.set_skew: factor must be >= 1";
  t.skew <- (thread, factor) :: List.remove_assoc thread t.skew

let skew_factor t ~thread =
  match List.assoc_opt thread t.skew with Some f -> f | None -> 1

let clock_loc = "!clock"

let local_now t ~tid =
  (* Every step advances the clock, so a step whose behaviour consults it
     (timed guards, polls) is order-sensitive against *all* steps: record a
     read of the clock pseudo-location so dependency-based reduction never
     commutes anything past a deadline check. Frontier-time evaluations are
     outside the tracking window and record nothing. *)
  note_read t clock_loc;
  t.clock * skew_factor t ~thread:(Cal.Ids.Tid.to_int tid)

let log_element t e =
  note_write t trace_loc;
  t.trace_rev <- e :: t.trace_rev;
  t.trace_len <- t.trace_len + 1

let log_elements t es = List.iter (log_element t) es
let history t = Cal.History.of_rev_list t.history_rev
let trace t = List.rev t.trace_rev
let trace_length t = t.trace_len

let active_threads t ~oid =
  (* Scan newest-to-oldest: a response closes its thread's pending call. A
     crash marker ends the scan — every invocation before it was cut off by
     the crash, so none of those threads is still executing. *)
  let exception Done in
  let closed = Hashtbl.create 8 in
  let active = ref [] in
  (try
     List.iter
       (fun a ->
         match a with
         | Cal.Action.Crash _ -> raise Done
         | Cal.Action.Res { tid; oid = o; _ } when Cal.Ids.Oid.equal o oid ->
             Hashtbl.replace closed (Cal.Ids.Tid.to_int tid) ()
         | Cal.Action.Inv { tid; oid = o; _ } when Cal.Ids.Oid.equal o oid ->
             if not (Hashtbl.mem closed (Cal.Ids.Tid.to_int tid)) then begin
               active := tid :: !active;
               (* older invocations of this thread are already answered *)
               Hashtbl.replace closed (Cal.Ids.Tid.to_int tid) ()
             end
         | _ -> ())
       t.history_rev
   with Done -> ());
  List.sort_uniq Cal.Ids.Tid.compare !active
