(** Happens-before machinery for source-DPOR: per-step effects, a
    dependence relation, and vector clocks along one execution path.

    Dependence is always {e over}-approximated: a step whose footprint is
    unknown is opaque (dependent with every non-pure step), so reduction
    degrades towards full exploration but never prunes a genuinely distinct
    Mazurkiewicz trace. *)

type eff = {
  ef_thread : int;
  ef_reads : string list;  (** sorted, deduplicated *)
  ef_writes : string list;
  ef_pure : bool;  (** independent of everything (e.g. [yield]) *)
  ef_opaque : bool;  (** unknown footprint: dependent with every non-pure step *)
}

val effect_of :
  thread:int -> label:string -> recorded:(string list * string list) option -> eff
(** Classify a just-executed step: recorded accesses
    ({!Runner.last_step_accesses}) give a precise footprint; otherwise a
    ["…@loc"] label is a conservative read-write of [loc], ["yield"] is
    pure, and anything else is opaque. *)

val pure_eff : thread:int -> eff
(** The effect of a step that runs no shared code (e.g. resolving a
    [Choose] branch). *)

val conflicts : eff -> eff -> bool
(** Effect-level conflict (write/write or read/write overlap, or either
    side opaque); false if either side is pure. A step that read the
    logical clock (timed guards — {!Ctx.local_now} records the ["!clock"]
    pseudo-location) conflicts with {e everything}, pure yields included,
    because every step advances the clock. *)

val dependent : eff -> eff -> bool
(** [conflicts] or same thread (program order). *)

type clock = int array
(** [clock.(q)] = largest global step index of a [q]-step happens-before
    this point; [-1] (or out of range) if none. *)

val clock_get : clock -> int -> int
val clock_merge : clock -> clock -> clock

type step = {
  st_index : int;  (** global step index along the path (= tree depth) *)
  st_thread : int;
  st_eff : eff;
  st_clock : clock;  (** clock after the step; own entry = [st_index] *)
}

val happens_before : earlier:step -> step -> bool

type tracker
(** Immutable per-path state: last write and reads-since-last-write per
    location, last opaque step, per-thread clocks. The DFS threads one
    tracker value down each path; backtracking is free. *)

val tracker : unit -> tracker

val observe : tracker -> eff -> tracker * step * step list
(** Record one executed step. Returns the updated tracker, the step record,
    and the steps this one {e directly} races with (dependent, different
    thread, not ordered through intermediate dependence edges), ascending
    by index. *)

val race_loc : step -> step -> string
(** A location shared by a racing pair, for witness reports
    (["<opaque>"] when the conflict came from an opaque step). *)
