(* Happens-before machinery for source-DPOR: per-step effects (read/write
   footprints over named shared locations), a dependence relation, and
   vector clocks tracking the transitive closure of program order plus
   dependence edges along one execution path.

   Effects come from three sources, most to least precise: (1) locations
   recorded by the instrumentation ({!Cell}/{!Pcell}/{!Ctx.log_action})
   while the step applied; (2) the ["…@loc"] label convention, treated as a
   conservative read-write of that location; (3) everything else is opaque —
   dependent with every non-pure step. Opaque effects make DPOR degenerate
   towards full exploration but never unsound: dependence is always
   over-approximated, so the reduced run set still covers one interleaving
   per Mazurkiewicz trace of the true dependence.

   The tracker is immutable: the DFS engine threads one tracker value down
   each path and backtracking is free. *)

module Smap = Map.Make (String)
module Imap = Map.Make (Int)

type eff = {
  ef_thread : int;
  ef_reads : string list; (* sorted, deduplicated *)
  ef_writes : string list;
  ef_pure : bool;
  ef_opaque : bool;
}

let loc_of label =
  match String.index_opt label '@' with
  | Some i -> Some (String.sub label i (String.length label - i))
  | None -> None

let effect_of ~thread ~label ~recorded =
  match recorded with
  | Some (reads, writes) ->
      {
        ef_thread = thread;
        ef_reads = reads;
        ef_writes = writes;
        ef_pure = reads = [] && writes = [];
        ef_opaque = false;
      }
  | None -> (
      if label = "yield" then
        { ef_thread = thread; ef_reads = []; ef_writes = []; ef_pure = true; ef_opaque = false }
      else
        match loc_of label with
        | Some l ->
            (* Label heuristic: a "…@loc" step without instrumentation is a
               conservative read-write of that location. *)
            {
              ef_thread = thread;
              ef_reads = [ l ];
              ef_writes = [ l ];
              ef_pure = false;
              ef_opaque = false;
            }
        | None ->
            { ef_thread = thread; ef_reads = []; ef_writes = []; ef_pure = false; ef_opaque = true })

let clock_loc = "!clock"

let clock_sensitive e = List.mem clock_loc e.ef_reads
let pure_eff ~thread =
  { ef_thread = thread; ef_reads = []; ef_writes = []; ef_pure = true; ef_opaque = false }

(* both lists sorted ascending *)
let rec overlap a b =
  match (a, b) with
  | [], _ | _, [] -> false
  | x :: a', y :: b' ->
      let c = String.compare x y in
      if c = 0 then true else if c < 0 then overlap a' b else overlap a b'

let conflicts a b =
  (* Clock-sensitive steps conflict with everything — even pure yields
     advance the clock they read. *)
  if clock_sensitive a || clock_sensitive b then true
  else if a.ef_pure || b.ef_pure then false
  else if a.ef_opaque || b.ef_opaque then true
  else
    overlap a.ef_writes b.ef_writes
    || overlap a.ef_writes b.ef_reads
    || overlap a.ef_reads b.ef_writes

let dependent a b = a.ef_thread = b.ef_thread || conflicts a b

(* ------------------------------------------------------ vector clocks -- *)

(* clock.(q) = largest global step index of a q-step happens-before the
   point the clock describes; -1 (or absent) if none. *)
type clock = int array

let clock_get (c : clock) q = if q >= 0 && q < Array.length c then c.(q) else -1

let clock_merge (a : clock) (b : clock) : clock =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i -> max (clock_get a i) (clock_get b i))

let clock_set (c : clock) q v : clock =
  let n = max (Array.length c) (q + 1) in
  let out = Array.init n (fun i -> clock_get c i) in
  out.(q) <- v;
  out

type step = {
  st_index : int; (* global step index along the path (= depth) *)
  st_thread : int;
  st_eff : eff;
  st_clock : clock; (* after the step; own entry = st_index *)
}

let happens_before ~earlier later =
  clock_get later.st_clock earlier.st_thread >= earlier.st_index

type tracker = {
  tk_next : int;
  tk_last_write : step Smap.t; (* per location *)
  tk_reads_since : step list Smap.t; (* reads since last write, newest first *)
  tk_last_opaque : step option;
  tk_last_clock : step option; (* last clock-sensitive step *)
  tk_clock : clock Imap.t; (* per thread: clock of its last step *)
  tk_last : step Imap.t; (* per thread: its last non-pure step *)
  tk_last_any : step Imap.t; (* per thread: its last step, pure included *)
}

let tracker () =
  {
    tk_next = 0;
    tk_last_write = Smap.empty;
    tk_reads_since = Smap.empty;
    tk_last_opaque = None;
    tk_last_clock = None;
    tk_clock = Imap.empty;
    tk_last = Imap.empty;
    tk_last_any = Imap.empty;
  }

(* Record one executed step. Returns the updated tracker, the step record
   (with its clock), and the steps this one directly races with — dependent,
   different thread, not already happens-before-ordered through other
   edges — in ascending index order. Candidates are examined newest first
   and each candidate's clock is folded in before older ones are judged, so
   a pair ordered through an intermediate dependent step (w → r → e) is not
   reported as a direct race. *)
let observe tk eff =
  let t = eff.ef_thread in
  let index = tk.tk_next in
  let before =
    match Imap.find_opt t tk.tk_clock with Some c -> c | None -> [||]
  in
  let candidates =
    let m = ref Imap.empty in
    let add s = m := Imap.add s.st_index s !m in
    (* every step conflicts with the last clock-sensitive step (it advanced
       the clock that step read) *)
    (match tk.tk_last_clock with Some s -> add s | None -> ());
    if clock_sensitive eff then
      (* ... and a clock-sensitive step conflicts with every thread's last
         step, pure yields included *)
      Imap.iter (fun _ s -> add s) tk.tk_last_any
    else if eff.ef_pure then ()
    else if eff.ef_opaque then
      (* opaque: dependent with every thread's last non-pure step *)
      Imap.iter (fun _ s -> add s) tk.tk_last
    else begin
      List.iter
        (fun l ->
          match Smap.find_opt l tk.tk_last_write with
          | Some s -> add s
          | None -> ())
        eff.ef_reads;
      List.iter
        (fun l ->
          (match Smap.find_opt l tk.tk_last_write with
          | Some s -> add s
          | None -> ());
          match Smap.find_opt l tk.tk_reads_since with
          | Some ss -> List.iter add ss
          | None -> ())
        eff.ef_writes;
      match tk.tk_last_opaque with Some s -> add s | None -> ()
    end;
    Imap.fold (fun _ s acc -> s :: acc) !m []
  in
  (* both folds above yield candidates newest-first *)
  let acc = ref before in
  let races = ref [] in
  List.iter
    (fun s ->
      if s.st_thread <> t && s.st_index > clock_get !acc s.st_thread then
        races := s :: !races;
      acc := clock_merge !acc s.st_clock)
    candidates;
  let clock = clock_set !acc t index in
  let st = { st_index = index; st_thread = t; st_eff = eff; st_clock = clock } in
  let tk' =
    {
      tk with
      tk_next = index + 1;
      tk_clock = Imap.add t clock tk.tk_clock;
      tk_last_any = Imap.add t st tk.tk_last_any;
    }
  in
  let tk' =
    if clock_sensitive eff then { tk' with tk_last_clock = Some st } else tk'
  in
  let tk' =
    if eff.ef_pure then tk'
    else
      let tk' = { tk' with tk_last = Imap.add t st tk'.tk_last } in
      if eff.ef_opaque then { tk' with tk_last_opaque = Some st }
      else begin
        let lw =
          List.fold_left
            (fun m l -> Smap.add l st m)
            tk'.tk_last_write eff.ef_writes
        in
        let rs =
          List.fold_left (fun m l -> Smap.remove l m) tk'.tk_reads_since
            eff.ef_writes
        in
        let rs =
          List.fold_left
            (fun m l ->
              Smap.add l
                (st :: Option.value ~default:[] (Smap.find_opt l rs))
                m)
            rs eff.ef_reads
        in
        { tk' with tk_last_write = lw; tk_reads_since = rs }
      end
  in
  (tk', st, !races)

(* A human-readable location shared by the racing pair, for witness
   reports: the first overlapping written location, falling back to a
   placeholder for opaque steps. *)
let race_loc a b =
  let pick xs ys =
    List.find_opt (fun l -> List.mem l ys) xs
  in
  let a_eff = a.st_eff and b_eff = b.st_eff in
  match
    (match pick a_eff.ef_writes (b_eff.ef_writes @ b_eff.ef_reads) with
    | Some _ as r -> r
    | None -> pick a_eff.ef_reads b_eff.ef_writes)
  with
  | Some l -> l
  | None -> "<opaque>"
