type kind =
  | Random_walk
  | Pct of { d : int }
  | Preemption_bounded of { bound : int }

let kind_to_string = function
  | Random_walk -> "random-walk"
  | Pct { d } -> Fmt.str "pct:%d" d
  | Preemption_bounded { bound } -> Fmt.str "pbr:%d" bound

let pp_kind ppf k = Fmt.string ppf (kind_to_string k)

let kind_of_string s =
  let s = String.trim s in
  let int_after prefix =
    let n = String.length prefix in
    if String.length s > n && String.sub s 0 n = prefix then
      int_of_string_opt (String.sub s n (String.length s - n))
    else None
  in
  match s with
  | "random-walk" -> Ok Random_walk
  | _ -> (
      match int_after "pct:" with
      | Some d when d >= 1 -> Ok (Pct { d })
      | Some _ -> Error "pct:<d> needs d >= 1"
      | None -> (
          match int_after "pbr:" with
          | Some bound when bound >= 0 -> Ok (Preemption_bounded { bound })
          | Some _ -> Error "pbr:<bound> needs bound >= 0"
          | None ->
              Error
                (Fmt.str
                   "unknown sampler %S (expected random-walk, pct:<d> or \
                    pbr:<bound>)"
                   s)))

(* ------------------------------------------------------------ driving -- *)

(* Decisions of one thread at the frontier (a Choose contributes one
   decision per branch). *)
let thread_decisions frontier t =
  List.filter (fun (d : Runner.decision) -> d.thread = t) frontier

let frontier_threads frontier =
  List.sort_uniq Int.compare
    (List.map (fun (d : Runner.decision) -> d.thread) frontier)

(* PCT state: per-thread priorities (grown lazily — recovery programs can
   spawn new thread indices), plus the remaining change points. Initial
   priorities are random in a band strictly above every demotion value, so
   a demoted thread stays below every never-demoted one; ties break on the
   smaller thread id, deterministically. *)
type pct_state = {
  d : int;
  prio : (int, int) Hashtbl.t;
  mutable change_points : int list; (* ascending step numbers *)
  mutable next_demotion : int;      (* d - 1, d - 2, … *)
}

let pct_init ~d ~fuel ~rng =
  let points =
    List.init (max 0 (d - 1)) (fun _ -> 1 + Rng.int rng (max 1 fuel))
    |> List.sort_uniq Int.compare
  in
  { d; prio = Hashtbl.create 8; change_points = points; next_demotion = d - 1 }

let pct_priority st ~rng t =
  match Hashtbl.find_opt st.prio t with
  | Some p -> p
  | None ->
      (* the band [d + 1, d + 1024] sits above every demotion value *)
      let p = st.d + 1 + Rng.int rng 1024 in
      Hashtbl.replace st.prio t p;
      p

let pct_pick st ~rng ~step frontier =
  (match st.change_points with
  | s :: rest when s <= step ->
      (* demote the highest-priority enabled thread below everyone *)
      st.change_points <- rest;
      let ts = frontier_threads frontier in
      let best =
        List.fold_left
          (fun acc t ->
            let p = pct_priority st ~rng t in
            match acc with
            | Some (_, bp) when bp >= p -> acc
            | _ -> Some (t, p))
          None ts
      in
      Option.iter
        (fun (t, _) ->
          Hashtbl.replace st.prio t st.next_demotion;
          st.next_demotion <- st.next_demotion - 1)
        best
  | _ -> ());
  let ts = frontier_threads frontier in
  let chosen =
    List.fold_left
      (fun acc t ->
        let p = pct_priority st ~rng t in
        match acc with Some (_, bp) when bp >= p -> acc | _ -> Some (t, p))
      None ts
    |> Option.get |> fst
  in
  match thread_decisions frontier chosen with
  | [ d ] -> d
  | ds -> Rng.pick rng ds

let drive e ~kind ~fuel ~rng =
  (match kind with
  | Pct { d } when d < 1 -> invalid_arg "Sampler: Pct needs d >= 1"
  | Preemption_bounded { bound } when bound < 0 ->
      invalid_arg "Sampler: Preemption_bounded needs bound >= 0"
  | _ -> ());
  let pct =
    match kind with Pct { d } -> Some (pct_init ~d ~fuel ~rng) | _ -> None
  in
  let last = ref None and preemptions = ref 0 in
  let rec go remaining =
    if remaining = 0 then ()
    else
      match Runner.frontier e with
      | [] -> ()
      | frontier ->
          let d =
            match kind with
            | Random_walk -> Rng.pick rng frontier
            | Pct _ ->
                pct_pick (Option.get pct) ~rng
                  ~step:(Runner.steps_done e + 1)
                  frontier
            | Preemption_bounded { bound } -> (
                let last_ds =
                  match !last with
                  | Some t -> thread_decisions frontier t
                  | None -> []
                in
                match last_ds with
                | _ :: _ when !preemptions >= bound ->
                    (* budget spent: must keep running the current thread *)
                    Rng.pick rng last_ds
                | _ :: _ ->
                    let d = Rng.pick rng frontier in
                    if Some d.Runner.thread <> !last then incr preemptions;
                    d
                | [] -> Rng.pick rng frontier)
          in
          last := Some d.Runner.thread;
          ignore (Runner.step e d);
          go (remaining - 1)
  in
  go fuel;
  Runner.outcome e

let run ?(plan = []) ~kind ~setup ~fuel ~rng () =
  drive (Runner.start ~plan ~setup ()) ~kind ~fuel ~rng

let run_durable ?(plan = []) ~kind ~setup ~fuel ~rng () =
  drive (Runner.start_durable ~plan ~setup ()) ~kind ~fuel ~rng

(* ------------------------------------------------- joint plan sampling -- *)

type plan_space = {
  ps_threads : int;
  ps_thread_steps : int array;
  ps_fallible : (string * int) list;
  ps_max_steps : int;
}

let probe_outcomes outcomes =
  let threads =
    List.fold_left
      (fun n (o : Runner.outcome) -> max n (Array.length o.results))
      0 outcomes
  in
  let thread_steps = Array.make (max 1 threads) 0 in
  let fallible : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let max_steps = ref 0 in
  List.iter
    (fun (o : Runner.outcome) ->
      if o.steps > !max_steps then max_steps := o.steps;
      let per_thread = Array.make (max 1 threads) 0 in
      List.iter
        (fun (d : Runner.decision) ->
          if d.thread < threads then
            per_thread.(d.thread) <- per_thread.(d.thread) + 1)
        o.schedule;
      Array.iteri
        (fun t n -> if n > thread_steps.(t) then thread_steps.(t) <- n)
        per_thread;
      let counts = Hashtbl.create 8 in
      List.iter
        (fun l ->
          Hashtbl.replace counts l
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
        o.fallible_steps;
      Hashtbl.iter
        (fun l n ->
          if n > Option.value ~default:0 (Hashtbl.find_opt fallible l) then
            Hashtbl.replace fallible l n)
        counts)
    outcomes;
  {
    ps_threads = threads;
    ps_thread_steps = thread_steps;
    ps_fallible =
      Hashtbl.fold (fun l n acc -> (l, n) :: acc) fallible []
      |> List.sort compare;
    ps_max_steps = !max_steps;
  }

let probe ~setup ~fuel ~runs ~rng () =
  probe_outcomes
    (List.init (max 1 runs) (fun _ ->
         run ~kind:Random_walk ~setup ~fuel ~rng ()))

let probe_durable ~setup ~fuel ~runs ~rng () =
  probe_outcomes
    (List.init (max 1 runs) (fun _ ->
         run_durable ~kind:Random_walk ~setup ~fuel ~rng ()))

(* One random per-thread fault from the probed space, or None when the
   chosen category has no candidate point. *)
let sample_fault space ~delay_factors ~rng =
  let categories =
    [ `Crash; `Stall ]
    @ (if space.ps_fallible <> [] then [ `Fail ] else [])
    @ if delay_factors <> [] then [ `Delay ] else []
  in
  let thread () = Rng.int rng (max 1 space.ps_threads) in
  match Rng.pick rng categories with
  | `Crash ->
      let t = thread () in
      (* at_step beyond the thread's horizon never fires; stay within it *)
      Some (Fault.crash ~thread:t ~at_step:(Rng.int rng (space.ps_thread_steps.(t) + 1)))
  | `Stall ->
      let t = thread () in
      Some
        (Fault.stall ~thread:t
           ~at_step:(Rng.int rng (space.ps_thread_steps.(t) + 1))
           ~for_steps:(1 + Rng.int rng 4))
  | `Fail ->
      let label, occurrences = Rng.pick rng space.ps_fallible in
      Some (Fault.fail_step ~label ~nth:(1 + Rng.int rng occurrences))
  | `Delay ->
      let factor = Rng.pick rng delay_factors in
      if factor < 2 then None
      else Some (Fault.delay ~thread:(thread ()) ~factor)

let sample_plan ?(fault_bound = 1) ?(delay_factors = []) ?(crash_depth = 0)
    space ~rng =
  let faults = ref [] in
  let k = Rng.int rng (fault_bound + 1) in
  for _ = 1 to k do
    match sample_fault space ~delay_factors ~rng with
    | None -> ()
    | Some f ->
        (* keep plans valid: one Crash and one Delay per thread *)
        let clashes =
          List.exists
            (fun g ->
              match (f, g) with
              | Fault.Crash { thread = a; _ }, Fault.Crash { thread = b; _ }
              | Fault.Delay { thread = a; _ }, Fault.Delay { thread = b; _ } ->
                  a = b
              | _ -> Fault.equal f g)
            !faults
        in
        if not clashes then faults := f :: !faults
  done;
  let crashes =
    if crash_depth <= 0 then []
    else
      List.init (Rng.int rng (crash_depth + 1)) (fun _ ->
          Rng.int rng (space.ps_max_steps + 1))
      |> List.sort_uniq Int.compare
      |> List.map (fun at_step -> Fault.crash_system ~at_step)
  in
  let plan = List.rev !faults @ crashes in
  match Fault.validate ~max_crash_depth:(max 1 crash_depth) plan with
  | Ok () -> plan
  | Error _ -> (* unreachable by construction; stay total *) []
