(** Delta-debugging minimization of failing (schedule, fault plan) pairs.

    A sampled counterexample ({!Sampler}) is typically long and noisy:
    most of its decisions are irrelevant to the violation. This module
    minimizes it with ddmin (Zeller & Hildebrandt, {e Simplifying and
    isolating failure-inducing input}) over three axes jointly — schedule
    decisions, fault-plan elements, and run length (a removed suffix {e is}
    fuel reduction) — revalidating every candidate through a deterministic
    replay. Shrinking preserves the verdict by construction: a candidate is
    accepted {e only} when replaying it still fails the caller's [fails]
    predicate (the same checker that rejected the original run), so the
    minimal witness fails for the same reason class, never by accident.

    Candidate schedules are replayed {e tolerantly}: a decision that is no
    longer enabled after earlier removals is skipped rather than an error,
    and the witness is re-normalized to the decisions actually applied.
    Tolerant replay is still a deterministic function of
    (schedule, plan), so revalidation is sound; the final witness replays
    {e strictly} — byte-for-byte via {!Runner.replay} /
    {!Runner.replay_durable}.

    The result is {e 1-minimal} (locally minimal): removing any single
    schedule decision or any single plan element from the witness makes
    the failure disappear. ddmin guarantees this at termination of each
    axis; the outer loop iterates the axes to a joint fixpoint. *)

(** What to replay candidates against: the same [setup] the failing run
    used. *)
type target =
  | Program of (Ctx.t -> Runner.program)
  | Durable of (Ctx.t -> Runner.durable)

type stats = {
  candidates : int;      (** candidate replays tried (all revalidations) *)
  steps_removed : int;   (** schedule decisions removed from the original *)
  plan_removed : int;    (** fault-plan elements removed *)
  rounds : int;          (** outer schedule/plan alternations to fixpoint *)
}

type minimized = {
  m_schedule : Runner.schedule;  (** strictly replayable minimal schedule *)
  m_plan : Fault.plan;           (** minimal fault plan *)
  m_outcome : Runner.outcome;    (** the outcome of replaying the witness *)
  m_stats : stats;
}

val replay : target -> plan:Fault.plan -> Runner.schedule -> Runner.outcome
(** Strict replay against the target ({!Runner.replay} or
    {!Runner.replay_durable}); raises [Invalid_argument] on a decision
    that is not enabled. *)

val tolerant_replay :
  target -> plan:Fault.plan -> Runner.schedule -> Runner.outcome
(** Replay skipping decisions that are not enabled at their point; the
    outcome's [schedule] field holds the decisions actually applied. A
    deterministic function of (schedule, plan). *)

val minimize :
  target:target ->
  fails:(Runner.outcome -> bool) ->
  schedule:Runner.schedule ->
  ?plan:Fault.plan ->
  unit ->
  (minimized, string) result
(** Minimize the failing pair. [Error] when the input pair does not fail
    [fails] under (tolerant) replay — a caller bug, since the pair is
    supposed to come from an observed failing run. On [Ok m]:
    [fails m.m_outcome] holds, [m.m_outcome] is the strict replay of
    [(m.m_schedule, m.m_plan)], and the witness is 1-minimal: every
    single-decision and single-plan-element removal passes (or no longer
    reproduces a failing run). *)

val segments :
  target -> plan:Fault.plan -> Runner.schedule ->
  (int * bool * int) list
(** Per-thread schedule segments for rendering ({!Cal.Witness}): maximal
    runs of consecutive decisions by one thread as
    [(thread, preemptive, steps)], where [preemptive] means the previous
    thread was still enabled when the scheduler switched away from it (a
    dejafu-style [Pn] segment, against [Sn] for a voluntary switch).
    Replays the schedule to observe enabledness; raises
    [Invalid_argument] if the schedule is not strictly replayable. *)
