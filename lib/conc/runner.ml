type decision = { thread : int; branch : int }
type schedule = decision list

type program = {
  threads : Cal.Value.t Prog.t array;
  observe : (decision -> unit) option;
  on_label : (string -> unit) option;
}

type durable = {
  boot : program;
  domain : Pcell.domain;
  recover : epoch:int -> program;
}

type outcome = {
  history : Cal.History.t;
  trace : Cal.Ca_trace.t;
  results : Cal.Value.t option array;
  complete : bool;
  steps : int;
  schedule : schedule;
  faults : Fault.plan;
  injected : Fault.plan;
  fallible_steps : string list;
  epochs : int;
}

type frontier = decision list

let pp_decision ppf d =
  if d.branch = 0 then Fmt.pf ppf "t%d" d.thread
  else Fmt.pf ppf "t%d#%d" d.thread d.branch

(* Mutable interpretation state of a fault plan over one run. Every counter
   below is a deterministic function of (plan, schedule prefix), so a
   replayed faulty run fires exactly the same faults at the same points. *)
type fault_state = {
  plan : Fault.plan;
  mutable thread_steps : int array; (* decisions applied per thread *)
  mutable global_step : int;      (* decisions applied in total *)
  mutable crash_at : int array;   (* per-thread crash point, max_int if none *)
  mutable stall_until : int array; (* global step before which the thread sleeps *)
  mutable sys_pending : int list; (* remaining Crash_system points, ascending *)
  fail_seen : (string, int) Hashtbl.t;  (* pattern -> matching fallible steps *)
  mutable fired_rev : Fault.t list;     (* Fail_step and Stall firings, newest first *)
  mutable fallible_rev : string list;   (* labels of executed fallible steps *)
}

let fault_state ~threads plan =
  (* Depth is unbounded here: the runner executes any validated shape; the
     default depth-1 policy belongs to plan {e enumeration} (Explore). *)
  (match Fault.validate ~max_crash_depth:max_int plan with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Runner: invalid fault plan: " ^ reason));
  let crash_at = Array.make threads max_int in
  let stall_until = Array.make threads 0 in
  let fs =
    {
      plan;
      thread_steps = Array.make threads 0;
      global_step = 0;
      crash_at;
      stall_until;
      sys_pending = Fault.system_crash_points plan;
      fail_seen = Hashtbl.create 4;
      fired_rev = [];
      fallible_rev = [];
    }
  in
  List.iter
    (function
      | Fault.Crash { thread; at_step } ->
          if thread < threads then crash_at.(thread) <- at_step
      | Fault.Stall { thread; at_step = 0; for_steps } as f ->
          (* the stall window opens before the thread's first step *)
          if thread < threads then begin
            stall_until.(thread) <- for_steps;
            fs.fired_rev <- f :: fs.fired_rev
          end
      | Fault.Stall _ | Fault.Fail_step _ | Fault.Delay _
      | Fault.Crash_system _ ->
          ())
    plan;
  fs

(* Delay entries are interpreted by the context's clock, not by the step
   counters: install the per-thread skew before the first decision. *)
let apply_delays ctx plan =
  List.iter
    (function
      | Fault.Delay { thread; factor } -> Ctx.set_skew ctx ~thread ~factor
      | _ -> ())
    plan

let crashed fs i = fs.thread_steps.(i) >= fs.crash_at.(i)
let stalled fs i = fs.global_step < fs.stall_until.(i)

(* Decide whether the fallible step [label] about to execute is forced down
   its failure branch: it is when it is the [nth] matching fallible step of
   some Fail_step of the plan. Counters advance for every matching fallible
   step, forced or not — and for {e every} matching pattern: two plan
   entries whose patterns both match this label must both see it, so the
   counters are advanced for all matching patterns first (once per
   pattern), and only then is the forcing decision taken. A short-circuit
   here would make the second pattern's counter skip the step and fire its
   fault one occurrence late. *)
let forced_failure fs label =
  fs.fallible_rev <- label :: fs.fallible_rev;
  let bumped = Hashtbl.create 4 in
  List.iter
    (function
      | Fault.Fail_step { label = pattern; _ }
        when Fault.matches_label ~pattern label && not (Hashtbl.mem bumped pattern) ->
          Hashtbl.replace bumped pattern ();
          Hashtbl.replace fs.fail_seen pattern
            (1 + Option.value ~default:0 (Hashtbl.find_opt fs.fail_seen pattern))
      | _ -> ())
    fs.plan;
  List.fold_left
    (fun forced f ->
      match f with
      | Fault.Fail_step { label = pattern; nth }
        when Fault.matches_label ~pattern label
             && Option.value ~default:0 (Hashtbl.find_opt fs.fail_seen pattern) = nth ->
          fs.fired_rev <- f :: fs.fired_rev;
          true
      | _ -> forced)
    false fs.plan

(* Apply one decision to the mutable thread-state array; returns the label
   of the step taken. *)
let apply fs states d =
  if d.thread < 0 || d.thread >= Array.length states then
    invalid_arg (Fmt.str "Runner: no thread %d" d.thread);
  if crashed fs d.thread then
    invalid_arg (Fmt.str "Runner: thread %d has crashed" d.thread);
  if stalled fs d.thread then
    invalid_arg (Fmt.str "Runner: thread %d is stalled" d.thread);
  let label =
    match states.(d.thread) with
    | Prog.Return _ ->
        invalid_arg (Fmt.str "Runner: thread %d already returned" d.thread)
    | Prog.Atomic (label, f) ->
        if d.branch <> 0 then
          invalid_arg (Fmt.str "Runner: thread %d is not at a choice" d.thread);
        states.(d.thread) <- f ();
        label
    | Prog.Fallible (label, f, on_fault) ->
        if d.branch <> 0 then
          invalid_arg (Fmt.str "Runner: thread %d is not at a choice" d.thread);
        states.(d.thread) <- (if forced_failure fs label then on_fault () else f ());
        label
    | Prog.Choose (label, ms) ->
        if d.branch < 0 || d.branch >= List.length ms then
          invalid_arg (Fmt.str "Runner: thread %d: branch %d out of range" d.thread d.branch);
        states.(d.thread) <- List.nth ms d.branch;
        label
    | Prog.Guard (label, g) -> (
        if d.branch <> 0 then
          invalid_arg (Fmt.str "Runner: thread %d is not at a choice" d.thread);
        match g () with
        | Some cont ->
            states.(d.thread) <- cont;
            label
        | None -> invalid_arg (Fmt.str "Runner: thread %d is blocked" d.thread))
  in
  fs.thread_steps.(d.thread) <- fs.thread_steps.(d.thread) + 1;
  fs.global_step <- fs.global_step + 1;
  (* a Stall whose trigger point this step reached opens its window now *)
  List.iter
    (function
      | Fault.Stall { thread; at_step; for_steps } as f
        when thread = d.thread && at_step = fs.thread_steps.(d.thread) ->
          fs.stall_until.(thread) <- fs.global_step + for_steps;
          fs.fired_rev <- f :: fs.fired_rev
      | _ -> ())
    fs.plan;
  label

(* Built backwards in one pass (thread asc, branch asc) — this runs at
   every node of every exploration, so the per-thread intermediate lists
   of the obvious [mapi]+[concat] formulation are worth avoiding. *)
let enabled fs states =
  let acc = ref [] in
  for i = Array.length states - 1 downto 0 do
    if not (crashed fs i || stalled fs i) then
      match states.(i) with
      | Prog.Return _ -> ()
      | Prog.Atomic _ | Prog.Fallible _ ->
          acc := { thread = i; branch = 0 } :: !acc
      | Prog.Choose (_, ms) ->
          for b = List.length ms - 1 downto 0 do
            acc := { thread = i; branch = b } :: !acc
          done
      | Prog.Guard (_, g) -> (
          match g () with
          | None -> ()
          | Some _ -> acc := { thread = i; branch = 0 } :: !acc)
  done;
  !acc

(* -------------------------------------------- resumable execution API -- *)

(* A live execution: the mutable state a schedule prefix has built so far.
   {!Explore} descends one decision at a time along the DFS spine instead of
   replaying the whole prefix at every node; re-establishing a branch point
   after backtracking costs one prefix replay (the shared heap the program's
   closures mutate cannot be checkpointed generically, so it is rebuilt by
   re-execution — once per backtrack, not once per node). *)
type exec = {
  e_ctx : Ctx.t;
  mutable e_program : program;
  mutable e_states : Cal.Value.t Prog.t array;
  e_fs : fault_state;
  mutable e_obs : int array;
      (* per-thread rolling observation hash: folds, at each of the
         thread's steps, the step label with the history/trace lengths
         right after the step — a cheap proxy for "what this thread has
         seen of the shared structures", used by {!fingerprint} *)
  e_durable : (Pcell.domain * (epoch:int -> program)) option;
  mutable e_epoch : int; (* system crashes survived so far *)
  mutable e_applied_rev : decision list;
  mutable e_steps : int;
}

let grow arr n default =
  let old = Array.length arr in
  if n <= old then arr
  else begin
    let a = Array.make n default in
    Array.blit arr 0 a 0 old;
    a
  end

(* Recovery may launch more threads than the crashed epoch had: grow (never
   shrink) the per-thread fault counters, re-deriving per-thread fault
   trigger points from the plan for the new indices. Counters of surviving
   indices are kept — thread step counts are cumulative across epochs. *)
let extend_fs fs n =
  let old = Array.length fs.thread_steps in
  if n > old then begin
    fs.thread_steps <- grow fs.thread_steps n 0;
    fs.crash_at <- grow fs.crash_at n max_int;
    fs.stall_until <- grow fs.stall_until n 0;
    List.iter
      (function
        | Fault.Crash { thread; at_step } when thread >= old && thread < n ->
            fs.crash_at.(thread) <- at_step
        | Fault.Stall { thread; at_step = 0; for_steps } as f
          when thread >= old && thread < n ->
            fs.stall_until.(thread) <- fs.global_step + for_steps;
            fs.fired_rev <- f :: fs.fired_rev
        | _ -> ())
      fs.plan
  end

(* Fire any Crash_system whose point this run has reached: wipe the domain's
   volatile cells, drop every in-flight thread program, log the crash marker
   and install the recovery program for the next epoch. Recursive because a
   recovery epoch can itself be crashed (crash-during-recovery plans). *)
let rec maybe_crash e =
  match e.e_fs.sys_pending with
  | at :: rest when e.e_fs.global_step >= at -> (
      match e.e_durable with
      | None ->
          (* [start] rejects Crash_system plans on non-durable programs *)
          assert false
      | Some (domain, recover) ->
          e.e_fs.sys_pending <- rest;
          e.e_fs.fired_rev <-
            Fault.Crash_system { at_step = at } :: e.e_fs.fired_rev;
          Ctx.record_crash e.e_ctx;
          Pcell.crash domain;
          e.e_epoch <- e.e_epoch + 1;
          let program = recover ~epoch:e.e_epoch in
          let n = Array.length program.threads in
          extend_fs e.e_fs n;
          e.e_obs <- grow e.e_obs n 0;
          e.e_program <- program;
          e.e_states <- Array.copy program.threads;
          maybe_crash e)
  | _ -> ()

let make_exec ~plan ~ctx ~program ~e_durable () =
  let states = Array.copy program.threads in
  let fs = fault_state ~threads:(Array.length states) plan in
  apply_delays ctx plan;
  let e =
    {
      e_ctx = ctx;
      e_program = program;
      e_states = states;
      e_fs = fs;
      e_obs = Array.make (Array.length states) 0;
      e_durable;
      e_epoch = 0;
      e_applied_rev = [];
      e_steps = 0;
    }
  in
  maybe_crash e;
  e

let start ?(plan = []) ~setup () =
  if Fault.system_crash_points plan <> [] then
    invalid_arg
      "Runner.start: Crash_system plans need durable state; use start_durable";
  let ctx = Ctx.create () in
  make_exec ~plan ~ctx ~program:(setup ctx) ~e_durable:None ()

let start_durable ?(plan = []) ~setup () =
  let ctx = Ctx.create () in
  let d = setup ctx in
  Pcell.attach d.domain ctx;
  make_exec ~plan ~ctx ~program:d.boot
    ~e_durable:(Some (d.domain, d.recover))
    ()

let mix h x = (h * 0x01000193) lxor x

let step e d =
  (* Track shared-location accesses only while the decision itself applies:
     guard evaluations in [frontier] and the post-step hooks stay outside
     the window, so [last_step_accesses] describes exactly this step. *)
  Ctx.begin_step e.e_ctx;
  let label =
    match apply e.e_fs e.e_states d with
    | label ->
        Ctx.end_step e.e_ctx;
        label
    | exception exn ->
        Ctx.end_step e.e_ctx;
        raise exn
  in
  Ctx.tick e.e_ctx;
  e.e_applied_rev <- d :: e.e_applied_rev;
  e.e_steps <- e.e_steps + 1;
  e.e_obs.(d.thread) <-
    mix
      (mix (mix e.e_obs.(d.thread) (Hashtbl.hash label)) d.branch)
      ((Ctx.history_length e.e_ctx * 8191) + Ctx.trace_length e.e_ctx);
  (match e.e_program.on_label with None -> () | Some f -> f label);
  (match e.e_program.observe with None -> () | Some f -> f d);
  (* hooks run first: a crash firing at this step must not swallow the
     step's own observations (the monitor consumes them against the
     pre-crash acceptor before the marker resets it) *)
  maybe_crash e;
  label

let frontier e = enabled e.e_fs e.e_states
let steps_done e = e.e_steps
let ctx e = e.e_ctx
let last_step_accesses e = Ctx.step_accesses e.e_ctx

let head_label e thread =
  if thread < 0 || thread >= Array.length e.e_states then None
  else
    match e.e_states.(thread) with
    | Prog.Return _ -> None
    | Prog.Atomic (l, _) | Prog.Fallible (l, _, _) | Prog.Choose (l, _)
    | Prog.Guard (l, _) ->
        Some l

(* A structural key for the execution state, exact over everything the
   engine can observe: per-thread program position (head constructor and
   label, or the returned value), the per-thread observation hashes, the
   fault counters and the clock. Two prefixes with equal fingerprints have
   made the same observations in the same order, so their continuations
   explore the same subtree — the memoization ground of {!Explore}'s
   fingerprint pruning. The key is a string compared for equality (no
   silent hash-collision merging); the per-thread observation hash is the
   only lossy component, and the [CAL_EXPLORE_NO_PRUNE=1] cross-check mode
   exists to validate verdicts independently of it. *)
let fingerprint e =
  let b = Buffer.create 128 in
  if e.e_epoch > 0 then begin
    (* persistent-cell contents are not part of the key, so prefixes from
       different epochs must never merge; exploration over crash plans runs
       unpruned anyway (see Explore.exhaustive_with_crashes) *)
    Buffer.add_string b (string_of_int e.e_epoch);
    Buffer.add_char b '@'
  end;
  Buffer.add_string b (string_of_int e.e_fs.global_step);
  Array.iteri
    (fun i st ->
      Buffer.add_char b '|';
      Buffer.add_string b (string_of_int e.e_fs.thread_steps.(i));
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int e.e_obs.(i));
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int e.e_fs.stall_until.(i));
      Buffer.add_char b ':';
      (match st with
      | Prog.Return v -> Buffer.add_string b (Fmt.str "=%a" Cal.Value.pp v)
      | Prog.Atomic (l, _) -> Buffer.add_string b ("a" ^ l)
      | Prog.Fallible (l, _, _) -> Buffer.add_string b ("f" ^ l)
      | Prog.Choose (l, ms) ->
          Buffer.add_string b (Fmt.str "c%s/%d" l (List.length ms))
      | Prog.Guard (l, _) -> Buffer.add_string b ("g" ^ l)))
    e.e_states;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) e.e_fs.fail_seen []
  |> List.sort compare
  |> List.iter (fun (k, v) -> Buffer.add_string b (Fmt.str "|%s#%d" k v));
  Buffer.contents b

let snapshot e =
  let fs = e.e_fs and states = e.e_states in
  let results =
    Array.map (function Prog.Return v -> Some v | _ -> None) states
  in
  (* Crashes fire exactly when they cut a thread off: the thread reached its
     crash point without having returned. Fail_step and Stall firings were
     recorded as they happened. *)
  let fired = List.rev fs.fired_rev in
  let injected =
    List.filter
      (function
        | Fault.Crash { thread; at_step } ->
            thread < Array.length states
            && (match states.(thread) with Prog.Return _ -> false | _ -> true)
            && fs.thread_steps.(thread) >= at_step
        | Fault.Delay { thread; _ } ->
            (* a delay took effect iff the skewed thread ran at all *)
            thread < Array.length states && fs.thread_steps.(thread) > 0
        | f -> List.exists (Fault.equal f) fired)
      fs.plan
  in
  {
    history = Ctx.history e.e_ctx;
    trace = Ctx.trace e.e_ctx;
    results;
    complete = Array.for_all (fun st -> match st with Prog.Return _ -> true | _ -> false) states;
    steps = e.e_steps;
    schedule = List.rev e.e_applied_rev;
    faults = fs.plan;
    injected;
    fallible_steps = List.rev fs.fallible_rev;
    epochs = e.e_epoch + 1;
  }

let outcome = snapshot

let replay ?(plan = []) ~setup sched =
  let e = start ~plan ~setup () in
  List.iter (fun d -> ignore (step e d)) sched;
  (snapshot e, frontier e)

let replay_durable ?(plan = []) ~setup sched =
  let e = start_durable ~plan ~setup () in
  List.iter (fun d -> ignore (step e d)) sched;
  (snapshot e, frontier e)

let outcome_equal a b =
  let value_opt_equal x y =
    match (x, y) with
    | None, None -> true
    | Some v, Some w -> Cal.Value.equal v w
    | _ -> false
  in
  Cal.History.equal a.history b.history
  && Cal.Ca_trace.equal a.trace b.trace
  && Array.length a.results = Array.length b.results
  && Array.for_all2 value_opt_equal a.results b.results
  && a.complete = b.complete && a.steps = b.steps
  && a.schedule = b.schedule
  && List.equal Fault.equal a.faults b.faults
  && List.equal Fault.equal a.injected b.injected
  && List.equal String.equal a.fallible_steps b.fallible_steps
  && a.epochs = b.epochs

let drive_random e ~fuel ~rng =
  let rec go remaining =
    if remaining = 0 then ()
    else
      match frontier e with
      | [] -> ()
      | ds ->
          let d = Rng.pick rng ds in
          ignore (step e d);
          go (remaining - 1)
  in
  go fuel;
  snapshot e

let run_random ?(plan = []) ~setup ~fuel ~rng () =
  drive_random (start ~plan ~setup ()) ~fuel ~rng

let run_random_durable ?(plan = []) ~setup ~fuel ~rng () =
  drive_random (start_durable ~plan ~setup ()) ~fuel ~rng
