(* Source-DPOR (Abdulla, Aronis, Jonsson, Sagonas, POPL'14) over the
   incremental execution API, plus the preemption/delay-bounded
   iterative-deepening searches that layer schedule bounding on top of
   plain enumeration (dejafu's sctPreBound/sctDelayBound shape).

   The DPOR engine explores one interleaving per Mazurkiewicz trace of the
   (over-approximated) dependence relation from {!Deps}: instead of
   expanding every enabled decision at a node, it runs one thread and adds
   further threads to the node's backtrack set only when a later step is
   found to race with the step taken here — race reversal via source sets,
   with sleep sets suppressing redundant siblings. Dependence is always
   over-approximated (opaque steps conflict with everything non-pure,
   logging steps serialize the observable history, clock-sensitive steps
   serialize against every step), so the reduced run set preserves
   verdicts: every pruned schedule is Mazurkiewicz-equivalent to a
   delivered one, with byte-identical history, trace and results.

   Both engines can be rooted at a schedule [prefix]: the root-split
   composition ({!Explore.exhaustive_strategy}) fully expands the root
   frontier and hands each root decision to one rank-ordered task, so the
   parallel merge is deterministic and race reversals never need to reach
   into a frozen prefix node (the root is already fully expanded — a
   superset of any backtrack set). *)

type cost_model = Preemption | Delay

(* ---------------------------------------------------------- source-DPOR -- *)

type dnode = {
  dn_enabled : int list; (* distinct enabled threads, ascending *)
  dn_backtrack : (int, unit) Hashtbl.t;
  dn_done : (int, unit) Hashtbl.t;
  dn_frozen : bool; (* prefix node: owned by another root-split task *)
  mutable dn_taken : Deps.step option; (* step taken from here, current path *)
}

let threads_of_frontier frontier =
  List.sort_uniq compare
    (List.map (fun (d : Runner.decision) -> d.thread) frontier)

let decisions_of frontier t =
  List.filter (fun (d : Runner.decision) -> d.thread = t) frontier

(* The effect of applying [d] when the thread's head offered [n_decisions]
   alternatives: more than one decision means a [Choose] head, which runs
   no user code (the runner picks the branch structurally) — pure. *)
let classify ~thread ~n_decisions ~label ~recorded =
  if n_decisions > 1 then Deps.pure_eff ~thread
  else Deps.effect_of ~thread ~label ~recorded

let source ~restart ~fuel ?max_runs ?(prefix = []) ?gate ?abort ~f () =
  let exec = ref (restart ()) in
  let runs = ref 0 and truncated = ref false and max_steps = ref 0 in
  let nodes = ref 0 and replayed = ref 0 in
  let slept = ref 0 and races = ref 0 and backtracks = ref 0 in
  let spine : dnode option array = Array.make (fuel + 1) None in
  let deliver () =
    (match gate with
    | Some admit when not (admit ()) ->
        truncated := true;
        raise Engine.Stop
    | _ -> ());
    let o = Runner.outcome !exec in
    f o;
    incr runs;
    if o.Runner.steps > !max_steps then max_steps := o.Runner.steps;
    match max_runs with
    | Some m when !runs >= m ->
        truncated := true;
        raise Engine.Stop
    | _ -> ()
  in
  let ensure_at depth prefix_rev =
    if Runner.steps_done !exec <> depth then begin
      let e = restart () in
      List.iter (fun d -> ignore (Runner.step e d)) (List.rev prefix_rev);
      replayed := !replayed + depth;
      exec := e
    end
  in
  let add_backtrack nd t =
    if not (Hashtbl.mem nd.dn_backtrack t) then begin
      Hashtbl.replace nd.dn_backtrack t ();
      incr backtracks
    end
  in
  (* A race between [earlier] (taken from spine node j) and the step [st]
     just taken at depth [i]: compute v = notdep(earlier)·proc(st), find the
     initial threads of v, and make sure node j will explore one of them —
     an already-scheduled initial means the reversal is covered; otherwise
     prefer an enabled initial (source sets), falling back to every enabled
     thread when no initial is enabled there. *)
  let handle_race ~i st (earlier : Deps.step) =
    incr races;
    let j = earlier.Deps.st_index in
    match spine.(j) with
    | Some nd when not nd.dn_frozen ->
        let v =
          let rec gather k acc =
            if k >= i then List.rev acc
            else
              gather (k + 1)
                (match spine.(k) with
                | Some n -> (
                    match n.dn_taken with
                    | Some s when not (Deps.happens_before ~earlier s) ->
                        s :: acc
                    | _ -> acc)
                | None -> acc)
          in
          gather (j + 1) [] @ [ st ]
        in
        let firsts =
          List.fold_left
            (fun acc (s : Deps.step) ->
              if List.exists (fun (x : Deps.step) -> x.st_thread = s.st_thread) acc
              then acc
              else s :: acc)
            [] v
          |> List.rev
        in
        let initials =
          List.filter_map
            (fun (s : Deps.step) ->
              if
                List.for_all
                  (fun (m : Deps.step) ->
                    m.st_index >= s.st_index
                    || not (Deps.happens_before ~earlier:m s))
                  v
              then Some s.st_thread
              else None)
            firsts
        in
        if List.exists (Hashtbl.mem nd.dn_backtrack) initials then ()
        else begin
          match List.filter (fun t -> List.mem t nd.dn_enabled) initials with
          | t :: ts -> add_backtrack nd (List.fold_left min t ts)
          | [] -> List.iter (add_backtrack nd) nd.dn_enabled
        end
    | _ -> ()
  in
  let rec explore ~depth ~prefix_rev ~tracker ~sleep ~frontier =
    (match abort with
    | Some stop when stop () -> raise Engine.Abandoned
    | _ -> ());
    incr nodes;
    if frontier = [] || depth >= fuel then deliver ()
    else begin
      let enabled = threads_of_frontier frontier in
      let nd =
        {
          dn_enabled = enabled;
          dn_backtrack = Hashtbl.create 4;
          dn_done = Hashtbl.create 4;
          dn_frozen = false;
          dn_taken = None;
        }
      in
      spine.(depth) <- Some nd;
      let sleep_threads sl = List.map fst sl in
      (match
         List.find_opt (fun t -> not (List.mem t (sleep_threads sleep))) enabled
       with
      | Some t0 -> Hashtbl.replace nd.dn_backtrack t0 ()
      | None -> incr slept (* sleep-blocked node: nothing to explore *));
      let sleep_here = ref sleep in
      let rec loop () =
        match
          List.find_opt
            (fun t ->
              Hashtbl.mem nd.dn_backtrack t && not (Hashtbl.mem nd.dn_done t))
            enabled
        with
        | None -> ()
        | Some t ->
            if List.mem t (sleep_threads !sleep_here) then begin
              (* the reversal this thread would explore is covered by the
                 subtree that put it to sleep *)
              Hashtbl.replace nd.dn_done t ();
              incr slept;
              loop ()
            end
            else begin
              let decs = decisions_of frontier t in
              let n_decisions = List.length decs in
              let eff_taken = ref None in
              List.iter
                (fun (d : Runner.decision) ->
                  ensure_at depth prefix_rev;
                  let label = Runner.step !exec d in
                  let recorded = Runner.last_step_accesses !exec in
                  let eff = classify ~thread:t ~n_decisions ~label ~recorded in
                  eff_taken := Some eff;
                  let tracker', st, race_list = Deps.observe tracker eff in
                  nd.dn_taken <- Some st;
                  List.iter (handle_race ~i:depth st) race_list;
                  let child_frontier = Runner.frontier !exec in
                  (* a step may disable another thread (guard flips, clock
                     tick past a deadline): the reversal cannot be found by
                     race analysis, so conservatively schedule the disabled
                     thread here too *)
                  let child_threads = threads_of_frontier child_frontier in
                  List.iter
                    (fun q ->
                      if
                        q <> t
                        && (not (List.mem q child_threads))
                        && Runner.head_label !exec q <> None
                      then add_backtrack nd q)
                    enabled;
                  let sleep' =
                    List.filter
                      (fun (_, e) -> not (Deps.conflicts e eff))
                      !sleep_here
                  in
                  explore ~depth:(depth + 1) ~prefix_rev:(d :: prefix_rev)
                    ~tracker:tracker' ~sleep:sleep' ~frontier:child_frontier)
                decs;
              Hashtbl.replace nd.dn_done t ();
              (match !eff_taken with
              | Some e -> sleep_here := (t, e) :: !sleep_here
              | None -> ());
              loop ()
            end
      in
      loop ();
      spine.(depth) <- None
    end
  in
  (* Replay the prefix, feeding the tracker so clocks and race counting are
     exactly as if the sequential engine had walked it; prefix nodes are
     frozen — their alternatives belong to sibling root-split tasks. *)
  let tracker = ref (Deps.tracker ()) in
  let depth = ref 0 in
  List.iter
    (fun (d : Runner.decision) ->
      let frontier = Runner.frontier !exec in
      let nd =
        {
          dn_enabled = threads_of_frontier frontier;
          dn_backtrack = Hashtbl.create 1;
          dn_done = Hashtbl.create 1;
          dn_frozen = true;
          dn_taken = None;
        }
      in
      spine.(!depth) <- Some nd;
      let n_decisions = List.length (decisions_of frontier d.thread) in
      let label = Runner.step !exec d in
      let recorded = Runner.last_step_accesses !exec in
      let eff = classify ~thread:d.thread ~n_decisions ~label ~recorded in
      let tracker', st, race_list = Deps.observe !tracker eff in
      nd.dn_taken <- Some st;
      List.iter (handle_race ~i:!depth st) race_list;
      tracker := tracker';
      incr depth;
      replayed := !replayed + 1)
    prefix;
  (try
     explore ~depth:!depth
       ~prefix_rev:(List.rev prefix)
       ~tracker:!tracker ~sleep:[]
       ~frontier:(Runner.frontier !exec)
   with Engine.Stop | Engine.Abandoned -> ());
  {
    Engine.empty_stats with
    runs = !runs;
    truncated = !truncated;
    max_steps = !max_steps;
    nodes = !nodes;
    replayed_steps = !replayed;
    sleep_pruned = !slept;
    races_found = !races;
    backtrack_points = !backtracks;
  }

(* ------------------------------------- bounded iterative deepening ------ *)

(* Full enumeration within a schedule-cost budget, deepened level by level:
   level c delivers exactly the runs whose cost is c, so the union over
   c = 0..bound partitions the bounded run set with no duplicate delivery
   and first-failure order = (cost, DFS) lexicographic. An edge is counted
   in [bound_hits] only when the final level cuts it — if the whole space
   fits inside the bound, the search was complete and reports
   [bounded = false]. *)
let bounded ~cost ~bound ~restart ~fuel ?max_runs ?(prefix = []) ?gate ?abort
    ~f () =
  let exec = ref (restart ()) in
  let runs = ref 0 and truncated = ref false and max_steps = ref 0 in
  let nodes = ref 0 and replayed = ref 0 in
  let bound_hits = ref 0 in
  let deliver () =
    (match gate with
    | Some admit when not (admit ()) ->
        truncated := true;
        raise Engine.Stop
    | _ -> ());
    let o = Runner.outcome !exec in
    f o;
    incr runs;
    if o.Runner.steps > !max_steps then max_steps := o.Runner.steps;
    match max_runs with
    | Some m when !runs >= m ->
        truncated := true;
        raise Engine.Stop
    | _ -> ()
  in
  let ensure_at depth prefix_rev =
    if Runner.steps_done !exec <> depth then begin
      let e = restart () in
      List.iter (fun d -> ignore (Runner.step e d)) (List.rev prefix_rev);
      replayed := !replayed + depth;
      exec := e
    end
  in
  let thread_enabled t frontier =
    List.exists (fun (x : Runner.decision) -> x.thread = t) frontier
  in
  (* Preemption: +1 when the last thread could continue but another runs
     (the accounting of the existing ?preemption_bound engine). Delay: +1
     when the chosen thread deviates from the default continuation — the
     last thread if still enabled, else the first enabled thread. Branch
     choices of the default thread are data nondeterminism, not scheduler
     deviations: cost 0. *)
  let edge_cost ~last ~frontier (d : Runner.decision) =
    match cost with
    | Preemption ->
        let last_enabled =
          match last with Some t -> thread_enabled t frontier | None -> false
        in
        if last_enabled && Some d.thread <> last then 1 else 0
    | Delay ->
        let default_thread =
          match last with
          | Some t when thread_enabled t frontier -> t
          | _ -> (List.hd frontier).Runner.thread
        in
        if d.thread = default_thread then 0 else 1
  in
  (* replay the prefix, accumulating its cost under the same model *)
  let used0 = ref 0 and last0 = ref None in
  List.iter
    (fun (d : Runner.decision) ->
      let frontier = Runner.frontier !exec in
      used0 := !used0 + edge_cost ~last:!last0 ~frontier d;
      ignore (Runner.step !exec d);
      last0 := Some d.thread;
      replayed := !replayed + 1)
    prefix;
  let depth0 = List.length prefix in
  let prefix_rev0 = List.rev prefix in
  let rec go ~level ~depth ~prefix_rev ~last ~used =
    (match abort with
    | Some stop when stop () -> raise Engine.Abandoned
    | _ -> ());
    incr nodes;
    let frontier = Runner.frontier !exec in
    if frontier = [] || depth >= fuel then begin
      if used = level then deliver ()
    end
    else
      List.iter
        (fun (d : Runner.decision) ->
          let used' = used + edge_cost ~last ~frontier d in
          if used' > level then begin
            if level = bound then incr bound_hits
          end
          else begin
            ensure_at depth prefix_rev;
            ignore (Runner.step !exec d);
            go ~level ~depth:(depth + 1) ~prefix_rev:(d :: prefix_rev)
              ~last:(Some d.thread) ~used:used'
          end)
        frontier
  in
  (try
     for level = 0 to bound do
       if !used0 <= level then begin
         ensure_at depth0 prefix_rev0;
         go ~level ~depth:depth0 ~prefix_rev:prefix_rev0 ~last:!last0
           ~used:!used0
       end
     done
   with Engine.Stop | Engine.Abandoned -> ());
  {
    Engine.empty_stats with
    runs = !runs;
    truncated = !truncated;
    max_steps = !max_steps;
    nodes = !nodes;
    replayed_steps = !replayed;
    bound_hits = !bound_hits;
    bounded = !bound_hits > 0;
  }
