type target =
  | Program of (Ctx.t -> Runner.program)
  | Durable of (Ctx.t -> Runner.durable)

type stats = {
  candidates : int;
  steps_removed : int;
  plan_removed : int;
  rounds : int;
}

type minimized = {
  m_schedule : Runner.schedule;
  m_plan : Fault.plan;
  m_outcome : Runner.outcome;
  m_stats : stats;
}

let start target ~plan =
  match target with
  | Program setup -> Runner.start ~plan ~setup ()
  | Durable setup -> Runner.start_durable ~plan ~setup ()

let replay target ~plan sched =
  let e = start target ~plan in
  List.iter (fun d -> ignore (Runner.step e d)) sched;
  Runner.outcome e

let tolerant_replay target ~plan sched =
  let e = start target ~plan in
  List.iter
    (fun (d : Runner.decision) ->
      if List.mem d (Runner.frontier e) then ignore (Runner.step e d))
    sched;
  Runner.outcome e

(* ---------------------------------------------------------------- ddmin -- *)

(* Split [xs] into [n] chunks of near-equal size (the first [len mod n]
   chunks get the extra element). *)
let chunks n xs =
  let len = List.length xs in
  let base = len / n and extra = len mod n in
  let rec go i xs acc =
    if i >= n then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      let rec take k ys front =
        if k = 0 then (List.rev front, ys)
        else
          match ys with
          | [] -> (List.rev front, [])
          | y :: rest -> take (k - 1) rest (y :: front)
      in
      let chunk, rest = take size xs [] in
      go (i + 1) rest (chunk :: acc)
  in
  go 0 xs []

(* Classic ddmin: minimize [xs] such that [accept xs'] keeps holding.
   Termination: every accepted candidate is strictly shorter, and the
   granularity [n] only grows otherwise. At return, [accept] rejected the
   removal of every single element — 1-minimality. *)
let ddmin ~accept xs =
  let rec go xs n =
    let len = List.length xs in
    if len <= 1 then xs
    else
      let parts = chunks (min n len) xs in
      (* reduce to subset: some chunk alone still fails *)
      match List.find_opt accept parts with
      | Some subset -> go subset 2
      | None -> (
          (* reduce to complement: drop one chunk *)
          let complements =
            List.mapi
              (fun i _ ->
                List.concat (List.filteri (fun j _ -> j <> i) parts))
              parts
          in
          match
            List.find_opt (fun c -> List.length c < len && accept c) complements
          with
          | Some complement -> go complement (max 2 (min n len - 1))
          | None -> if min n len >= len then xs else go xs (min (2 * n) len))
  in
  go xs 2

(* ------------------------------------------------------------- minimize -- *)

let minimize ~target ~fails ~schedule ?(plan = []) () =
  let tried = ref 0 in
  let attempt ~plan sched =
    incr tried;
    tolerant_replay target ~plan sched
  in
  let o0 = attempt ~plan schedule in
  if not (fails o0) then
    Error
      (Fmt.str
         "Shrink.minimize: the input (schedule of %d, plan of %d) does not \
          fail under replay"
         (List.length schedule) (List.length plan))
  else begin
    (* normalize to the decisions actually applied *)
    let sched = ref o0.Runner.schedule in
    let plan = ref plan in
    let outcome = ref o0 in
    let rounds = ref 0 in
    let continue = ref true in
    while !continue && !rounds < 16 do
      incr rounds;
      let before = (List.length !sched, List.length !plan) in
      (* axis 1: schedule decisions (suffix chunks double as fuel cuts) *)
      let accept cand =
        let o = attempt ~plan:!plan cand in
        if fails o then begin
          (* keep the {e applied} decisions as the new witness *)
          sched := o.Runner.schedule;
          outcome := o;
          true
        end
        else false
      in
      let _ = ddmin ~accept !sched in
      (* axis 2: plan elements (removal keeps Fault.validate: dropping
         entries never breaks ordering or uniqueness constraints) *)
      let accept_plan cand =
        let o = attempt ~plan:cand !sched in
        if fails o then begin
          plan := cand;
          sched := o.Runner.schedule;
          outcome := o;
          true
        end
        else false
      in
      let _ = ddmin ~accept:accept_plan !plan in
      continue := (List.length !sched, List.length !plan) <> before
    done;
    (* The loop left a witness on which ddmin rejected every single-element
       removal on both axes: 1-minimal. Re-derive the outcome by strict
       replay (the applied decisions replay strictly by construction). *)
    let final = replay target ~plan:!plan !sched in
    if not (fails final) then
      Error
        "Shrink.minimize: strict replay of the minimized witness does not \
         fail (nondeterministic setup?)"
    else
      Ok
        {
          m_schedule = !sched;
          m_plan = !plan;
          m_outcome = final;
          m_stats =
            {
              candidates = !tried;
              steps_removed =
                List.length o0.Runner.schedule - List.length !sched;
              plan_removed = List.length o0.Runner.faults - List.length !plan;
              rounds = !rounds;
            };
        }
  end

(* ------------------------------------------------------------- segments -- *)

let segments target ~plan sched =
  let e = start target ~plan in
  let segs = ref [] in
  (* (thread, preemptive, count) of the open segment, newest at head *)
  List.iter
    (fun (d : Runner.decision) ->
      let frontier = Runner.frontier e in
      (match !segs with
      | (t, p, n) :: rest when t = d.thread -> segs := (t, p, n + 1) :: rest
      | (t, _, _) :: _ ->
          let preemptive =
            List.exists (fun (f : Runner.decision) -> f.thread = t) frontier
          in
          segs := (d.thread, preemptive, 1) :: !segs
      | [] -> segs := (d.thread, false, 1) :: !segs);
      ignore (Runner.step e d))
    sched;
  List.rev !segs
