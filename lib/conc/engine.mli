(** The incremental DFS core shared by {!Explore} (sequential front) and
    {!Par_explore} (work-stealing parallel front).

    Most callers want {!Explore}; this module is the engine room. The DFS
    keeps one live execution and descends the schedule tree one
    {!Runner.step} per edge, re-establishing a branch point after
    backtracking with a single prefix replay. It can be rooted at an
    arbitrary schedule [prefix] with the scheduling state accumulated
    along it ([last0], [preemptions0], [sleep0]), so a rooted DFS
    explores exactly the subtree the sequential engine would have.
    {!Par_explore} runs its own explicit-stack variant of the same
    traversal (it needs the open frames for work donation) but shares
    this module's stats, pruning controls and commutation heuristic. *)

type stats = {
  runs : int;           (** terminal outcomes delivered to the callback *)
  truncated : bool;     (** stopped early by [max_runs]/[gate] (or plans cap) *)
  max_steps : int;      (** longest schedule seen *)
  nodes : int;          (** schedule-tree nodes visited *)
  replayed_steps : int;
      (** program steps re-executed to re-establish branch points after
          backtracking, including task-prefix replays of the parallel
          front *)
  fingerprint_hits : int;  (** subtrees cut off by fingerprint memoization *)
  sleep_pruned : int;      (** sibling decisions skipped by sleep sets *)
  races_found : int;
      (** direct races detected by the vector-clock analysis of the DPOR
          engine ({!Dpor}); [0] for the label-heuristic engines *)
  backtrack_points : int;
      (** threads added to node backtrack sets by race reversal (source
          sets); [0] for the engines that expand every enabled decision *)
  bound_hits : int;
      (** edges cut by a preemption/delay bound — summed across the
          iterative-deepening levels, so one statically infeasible edge
          counts once per level that revisited it *)
  bounded : bool;
      (** the run {e set} is an underapproximation because a schedule bound
          actually cut at least one edge ([bound_hits > 0] somewhere); a
          bounded strategy whose bound never bit reports [false] — the
          exploration was complete *)
  cache_hits : int;
      (** verdict-cache hits, patched in by the caller that owns the cache
          ({!Verify.Obligations}); always [0] straight out of the engine *)
  tasks_stolen : int;
      (** parallel front: donated subtree chunks claimed from the shared
          pool (every task except the initial root) *)
  domains_used : int;   (** worker domains (1 for the sequential front) *)
  domains_requested : int;
      (** worker domains the caller asked for, before the
          [Domain.recommended_domain_count] cap of
          {!Par_explore.effective_domains}; [domains_used <
          domains_requested] means the request was capped by the
          hardware *)
  sampled_runs : int;
      (** randomly sampled executions delivered ({!Sampler}); always [0]
          straight out of the exhaustive engine *)
  violations_found : int;
      (** sampled runs failing the checked obligation; patched in by the
          sampled checks of {!Verify.Obligations} *)
  shrink_candidates : int;
      (** candidate replays tried by the {!Shrink} delta-debugger *)
  shrink_steps_removed : int;
      (** schedule decisions removed to reach the minimal witness *)
}

val empty_stats : stats
val merge_stats : stats -> stats -> stats

exception Stop
(** Raised internally to cut the search (budget, counterexample). *)

exception Abandoned
(** Raised when [abort] asks the current task to stop; the DFS returns
    its partial stats. *)

val env_flag : string -> bool
val pruning_requested : bool option -> bool
(** Resolve a [?prune] argument against [CAL_EXPLORE_PRUNE] /
    [CAL_EXPLORE_NO_PRUNE] (see {!Explore}). *)

val independent :
  Runner.decision * string -> Runner.decision * string -> bool
(** Sleep-set commutation heuristic on labelled decisions. *)

val threads_of : Runner.exec -> int
(** Thread count of the program under execution (sizes the memo table). *)

val dfs :
  restart:(unit -> Runner.exec) ->
  fuel:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  prune:bool ->
  ?prefix:Runner.decision list ->
  ?last0:int ->
  ?preemptions0:int ->
  ?sleep0:(Runner.decision * string) list ->
  ?gate:(unit -> bool) ->
  ?abort:(unit -> bool) ->
  init_path:'path ->
  step_path:('path -> Runner.decision list -> Runner.decision -> 'path) ->
  leaf:(Runner.outcome -> Runner.decision list -> 'path -> unit) ->
  unit ->
  stats
(** Explore the subtree rooted at [prefix] (default: the whole tree).
    [fuel] counts absolute schedule depth, prefix included. [gate]
    (parallel run budget) is consulted before each delivery — refusal
    truncates; [abort] (best-failure bound) before each node — refusal
    abandons with partial stats. [max_runs] is the sequential local
    budget; the parallel front passes [gate] instead. *)
