(** Persistent cells: the explicit write-back memory model of the durable
    structures.

    A [Pcell] has a {e volatile} value — what {!read}, and the CAS steps
    built from {!read}/{!write}, observe — and a {e durable} value — what
    survives a full-system crash. {!write} only updates the volatile copy
    and marks the cell dirty; {!flush} copies volatile to durable (the
    explicit persist step of a flush discipline, one program step like any
    other). When the runner fires a {!Fault.Crash_system}, it calls
    {!crash} on the program's domain: every cell reverts to its durable
    value, so exactly the unflushed (pending-persist) writes are lost.

    Because flushes are explicit steps and the crash-point enumeration of
    {!Explore.exhaustive_with_crashes} places a crash between {e every} pair
    of adjacent steps, the reachable persisted states cover the usual
    nondeterministic-truncation model of persistent memory: any prefix of
    the flush order can be the surviving state.

    Cells are registered with a {!domain} at creation; a durable program's
    setup creates one domain, allocates its cells in it, and hands the
    domain to the runner via {!Runner.durable}. *)

type domain
(** A persistence domain: the set of cells wiped together at a crash. *)

type 'a t
(** A persistent cell holding values of type ['a]. *)

val domain : unit -> domain

val attach : domain -> Ctx.t -> unit
(** Attach a run context: from now on, {!read}/{!write}/{!flush} record
    per-step accesses against the cell's location via {!Ctx.note_read} /
    {!Ctx.note_write} (no-ops outside an applied step). The runner attaches
    the context when a durable program starts; unattached domains record
    nothing. *)

val create : ?loc:string -> domain -> 'a -> 'a t
(** [create dom v] is a fresh cell with volatile and durable value [v],
    registered in [dom]. [loc] names the cell for the happens-before
    instrumentation (default ["pcell#N"], N per-domain sequential). *)

val loc : 'a t -> string

val read : 'a t -> 'a
(** The volatile value. *)

val write : 'a t -> 'a -> unit
(** Set the volatile value and mark the cell dirty. The durable value is
    unchanged until {!flush}. *)

val flush : 'a t -> unit
(** Persist: copy the volatile value to the durable one and clear the dirty
    bit. *)

val persisted : 'a t -> 'a
(** The durable value (what a crash right now would leave behind). *)

val dirty : 'a t -> bool
(** Whether the cell has an unflushed write. *)

val crash : domain -> unit
(** Wipe every cell of the domain back to its durable value — the
    full-system crash transition. Called by {!Runner}; tests may call it
    directly. *)

val crashes : domain -> int
(** Crashes fired on this domain so far. *)

val pending : domain -> int
(** Number of dirty cells — the size of the pending-persist set. *)
