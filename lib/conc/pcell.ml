(* Persistent cells with an explicit write-back model. A cell holds a
   volatile value (what reads and CASes see) and a durable value (what
   survives a crash); [write] only touches the volatile copy, [flush]
   copies it to the durable one. A system crash wipes every cell of a
   domain back to its durable value — exactly the unflushed writes are
   lost. All mutations are plain OCaml mutation: the cells are stepped
   inside Prog atomic/fallible steps, so determinism comes from the runner
   exactly as for [ref] cells. *)

type domain = {
  mutable cells : cell_ops list;  (* newest first; order is irrelevant *)
  mutable crashes : int;
}

and cell_ops = { wipe : unit -> unit; is_dirty : unit -> bool }

type 'a t = {
  mutable vol : 'a;
  mutable dur : 'a;
  mutable dirty : bool;
}

let domain () = { cells = []; crashes = 0 }

let create dom v =
  let c = { vol = v; dur = v; dirty = false } in
  dom.cells <-
    { wipe = (fun () -> c.vol <- c.dur; c.dirty <- false);
      is_dirty = (fun () -> c.dirty) }
    :: dom.cells;
  c

let read c = c.vol

let write c v =
  c.vol <- v;
  c.dirty <- true

let flush c =
  c.dur <- c.vol;
  c.dirty <- false

let persisted c = c.dur
let dirty c = c.dirty

let crash dom =
  List.iter (fun ops -> ops.wipe ()) dom.cells;
  dom.crashes <- dom.crashes + 1

let crashes dom = dom.crashes

let pending dom =
  List.fold_left (fun n ops -> if ops.is_dirty () then n + 1 else n) 0 dom.cells
