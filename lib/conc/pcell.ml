(* Persistent cells with an explicit write-back model. A cell holds a
   volatile value (what reads and CASes see) and a durable value (what
   survives a crash); [write] only touches the volatile copy, [flush]
   copies it to the durable one. A system crash wipes every cell of a
   domain back to its durable value — exactly the unflushed writes are
   lost. All mutations are plain OCaml mutation: the cells are stepped
   inside Prog atomic/fallible steps, so determinism comes from the runner
   exactly as for [ref] cells.

   When a run context is attached to the domain (the runner does this for
   durable programs), each read/write/flush additionally records a per-step
   access against the cell's location, feeding the same happens-before
   instrumentation as [Cell]. Unattached domains record nothing. *)

type domain = {
  mutable cells : cell_ops list;  (* newest first; order is irrelevant *)
  mutable crashes : int;
  mutable d_ctx : Ctx.t option;
  mutable next_id : int;
}

and cell_ops = { wipe : unit -> unit; is_dirty : unit -> bool }

type 'a t = {
  mutable vol : 'a;
  mutable dur : 'a;
  mutable dirty : bool;
  p_loc : string;
  p_dom : domain;
}

let domain () = { cells = []; crashes = 0; d_ctx = None; next_id = 0 }
let attach dom ctx = dom.d_ctx <- Some ctx

let create ?loc dom v =
  let p_loc =
    match loc with
    | Some l -> l
    | None ->
        let id = dom.next_id in
        dom.next_id <- id + 1;
        "pcell#" ^ string_of_int id
  in
  let c = { vol = v; dur = v; dirty = false; p_loc; p_dom = dom } in
  dom.cells <-
    { wipe = (fun () -> c.vol <- c.dur; c.dirty <- false);
      is_dirty = (fun () -> c.dirty) }
    :: dom.cells;
  c

let note_read c =
  match c.p_dom.d_ctx with
  | Some ctx -> Ctx.note_read ctx c.p_loc
  | None -> ()

let note_write c =
  match c.p_dom.d_ctx with
  | Some ctx -> Ctx.note_write ctx c.p_loc
  | None -> ()

let loc c = c.p_loc

let read c =
  note_read c;
  c.vol

let write c v =
  note_write c;
  c.vol <- v;
  c.dirty <- true

let flush c =
  (* A flush reads the volatile copy and writes the durable one; both live
     at the cell's location, so a flush conflicts with reads and writes of
     the same cell — its position matters for what a crash preserves. *)
  note_read c;
  note_write c;
  c.dur <- c.vol;
  c.dirty <- false

let persisted c = c.dur
let dirty c = c.dirty

let crash dom =
  List.iter (fun ops -> ops.wipe ()) dom.cells;
  dom.crashes <- dom.crashes + 1

let crashes dom = dom.crashes

let pending dom =
  List.fold_left (fun n ops -> if ops.is_dirty () then n + 1 else n) 0 dom.cells
