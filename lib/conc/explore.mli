(** Systematic and randomised exploration of interleavings.

    Exhaustive exploration enumerates {e every} schedule of a bounded
    program (stateless model checking by replay): the paper's claims are
    checked over the complete set of interleavings of each client program.
    Randomised exploration samples schedules for larger programs and for
    benchmarking.

    The exhaustive engine is {e incremental} ({!Engine}): it keeps one
    live execution ({!Runner.start}/{!Runner.step}) and descends the
    schedule tree one step per edge, re-establishing a branch point after
    backtracking with a single prefix replay — O(runs × depth) program
    steps in total, against O(nodes × depth) for a whole-prefix replay at
    every node (the seed engine, kept as {!exhaustive_via_replay} for
    cross-checks and benchmarks).

    Two optional sound-for-verdicts reductions prune the tree when [prune]
    is set (or the environment variable [CAL_EXPLORE_PRUNE=1] is):
    state-fingerprint memoization ({!Runner.fingerprint}) cuts off subtrees
    already explored from an indistinguishable state, and sleep sets skip
    re-exploring both orders of commuting steps of different threads.
    Pruning underapproximates the delivered run {e set} while preserving
    reachable-state coverage, so verdict-style callers ({!check_all},
    {!Verify.Obligations}) may opt in; run counts shrink. Setting
    [CAL_EXPLORE_NO_PRUNE=1] force-disables pruning even for explicit
    opt-ins — the cross-check mode: a pruned and an unpruned pass must
    reach identical verdicts.

    {b Parallel exploration.} Every exhaustive entry point takes
    [?domains] (default [1]): with [domains >= 2] the schedule tree is
    explored by that many OCaml 5 worker domains with dynamic work
    stealing — the tree starts as one task and busy workers donate the
    remaining branches of their shallowest open DFS node whenever a
    worker is idle, recursively, so load balances itself whatever the
    tree's shape ({!Par_explore}, DESIGN §2.11). Every task owns a
    contiguous interval of the canonical DFS leaf order and results are
    merged in rank order, so verdicts, witnesses and run counts match
    the sequential engine exactly (only [replayed_steps] grows, by the
    task-prefix replays) — except under [max_runs], where the shared run
    budget admits a scheduling-dependent run subset, and under [prune],
    where the per-task fingerprint memos make the pruned run set
    timing-dependent (verdicts preserved). Callbacks run concurrently
    from several domains; use the [_collect] variants (one accumulator
    per task, merged in rank order) unless the callback is
    thread-safe. *)

type stats = Engine.stats = {
  runs : int;           (** terminal outcomes delivered to the callback *)
  truncated : bool;     (** stopped early by [max_runs] (or [max_plans]) *)
  max_steps : int;      (** longest schedule seen *)
  nodes : int;          (** schedule-tree nodes visited *)
  replayed_steps : int;
      (** program steps re-executed to re-establish branch points after
          backtracking, including the parallel front's task-prefix replays
          (for {!exhaustive_via_replay}: every step it executed, since it
          replays the whole prefix at every node) *)
  fingerprint_hits : int;  (** subtrees cut off by fingerprint memoization *)
  sleep_pruned : int;      (** sibling decisions skipped by sleep sets *)
  races_found : int;
      (** direct races detected by the DPOR engine's vector-clock analysis
          ([0] for the label-heuristic engines) *)
  backtrack_points : int;
      (** threads added to backtrack sets by source-set race reversal *)
  bound_hits : int;
      (** edges cut by a preemption/delay bound, summed across the
          iterative-deepening levels *)
  bounded : bool;
      (** a schedule bound actually cut at least one edge: the run set is
          an honest underapproximation (sound for bug-finding only) *)
  cache_hits : int;
      (** canonical-history verdict-cache hits, patched in by
          {!Verify.Obligations}; always [0] straight out of the engine *)
  tasks_stolen : int;
      (** donated subtree chunks claimed from the parallel pool ([0] for
          the sequential engine) *)
  domains_used : int;   (** worker domains the search ran on *)
  domains_requested : int;
      (** worker domains the caller asked for; [domains_used <
          domains_requested] means {!Par_explore.effective_domains}
          capped the request at the hardware's core count *)
  sampled_runs : int;
      (** randomly sampled executions ({!Sampler}) delivered; always [0]
          straight out of the exhaustive engine — patched in by
          {!Verify.Obligations.check_sampled} and friends *)
  violations_found : int;
      (** sampled runs on which the checked obligation failed (with
          early-exit sampling this is [0] or [1]) *)
  shrink_candidates : int;
      (** candidate (schedule, plan) replays the delta-debugging shrinker
          ({!Shrink}) tried while minimizing a sampled counterexample *)
  shrink_steps_removed : int;
      (** schedule decisions the shrinker removed from the original
          failing run to reach the minimal witness *)
}

val empty_stats : stats

val merge_stats : stats -> stats -> stats
(** Counters sum, [truncated] ors, [max_steps]/[domains_used]/
    [domains_requested] max. *)

val env_flag : string -> bool
(** [env_flag v] is [true] iff the environment variable [v] is set to
    [1]/[true]/[yes]/[on]. *)

val exhaustive :
  ?plan:Fault.plan ->
  ?prune:bool ->
  ?domains:int ->
  setup:(Ctx.t -> Runner.program) ->
  fuel:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  f:(Runner.outcome -> unit) ->
  unit ->
  stats
(** [exhaustive ~setup ~fuel ~f ()] calls [f] on the outcome of every
    maximal schedule: one in which every thread returned, or which reached
    [fuel] decisions (the outcome then has pending operations). [max_runs]
    (default unlimited) aborts a blow-up; the result notes truncation.

    [preemption_bound] (default unlimited) restricts the search to
    schedules with at most that many {e preemptions} — context switches
    away from a thread that could still run (CHESS-style iterative context
    bounding, Musuvathi & Qadeer). Most concurrency bugs manifest within
    very few preemptions, so a small bound gives a dramatically smaller yet
    highly effective search; it is an underapproximation and is reported as
    such by the callers.

    [plan] (default none) runs every schedule under that {!Fault.plan}:
    crashed threads contribute no further decisions, so the faulty search
    space is a (usually much smaller) sibling of the fault-free one.

    [prune] (default off, see the module preamble for the environment
    overrides) enables fingerprint memoization and sleep-set pruning:
    fewer runs are delivered, but every reachable terminal {e state} is
    still represented, so property verdicts are preserved. Do not combine
    with callbacks that count runs.

    [domains] (default [1]) spreads the search over that many worker
    domains (module preamble); [f] then runs concurrently and must be
    thread-safe — or use {!exhaustive_collect}. *)

val exhaustive_collect :
  ?plan:Fault.plan ->
  ?prune:bool ->
  ?domains:int ->
  setup:(Ctx.t -> Runner.program) ->
  fuel:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  init:(unit -> 'acc) ->
  f:('acc -> Runner.outcome -> unit) ->
  unit ->
  stats * 'acc array
(** {!exhaustive} with per-task accumulators: [init] runs once per
    work-stealing task (once in total when [domains = 1]) and [f] only
    ever touches its own task's accumulator, so no callback
    synchronisation is needed. The accumulators come back in canonical
    rank order — folding them left visits the delivered outcomes in
    exactly the sequential delivery order. *)

val exhaustive_via_replay :
  ?plan:Fault.plan ->
  setup:(Ctx.t -> Runner.program) ->
  fuel:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  f:(Runner.outcome -> unit) ->
  unit ->
  stats
(** The seed's stateless engine: a whole-prefix {!Runner.replay} at every
    DFS node. Delivers exactly the same outcomes in exactly the same order
    as unpruned sequential {!exhaustive}; kept as the reference
    implementation for cross-checking and for the B12 before/after cost
    comparison ([replayed_steps] counts every program step it executes). *)

val random :
  setup:(Ctx.t -> Runner.program) ->
  fuel:int ->
  runs:int ->
  seed:int64 ->
  f:(Runner.outcome -> unit) ->
  unit ->
  stats
(** [random ~setup ~fuel ~runs ~seed ~f ()] samples [runs] uniformly
    scheduled executions. *)

val check_all :
  ?plan:Fault.plan ->
  ?prune:bool ->
  ?domains:int ->
  setup:(Ctx.t -> Runner.program) ->
  fuel:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  p:(Runner.outcome -> bool) ->
  unit ->
  (stats, Runner.outcome * stats) result
(** [check_all ~setup ~fuel ~p ()] explores exhaustively and returns
    [Error (o, _)] for the first outcome violating [p], short-circuiting
    the search. [truncated] in the returned stats means the [max_runs]
    budget capped the search, never that a counterexample stopped it — an
    [Error] with [truncated = false] is a definitive refutation, an [Ok]
    with [truncated = true] is inconclusive.

    With [domains >= 2] the witness is still deterministic: workers share
    a monotonically lowering best-failure task bound, so the surviving
    counterexample is the first failure in canonical schedule order —
    the same outcome the sequential search returns (the stats of an
    [Error] differ: abandoned tasks stop counting early). *)

(** {1 Exploration strategies}

    Beyond the incremental DFS (with its opt-in fingerprint/sleep-set
    pruning), exploration can run under an explicit {e strategy}:

    - {!Dpor}: source-DPOR over the vector-clock happens-before relation
      ({!Deps}/{!Dpor}) — explores one interleaving per Mazurkiewicz trace
      of the over-approximated dependence. {e Complete}: verdicts are
      preserved exactly (every pruned schedule has a delivered equivalent
      with byte-identical history, trace and results).
    - {!Preemption_bounded}/{!Delay_bounded}: full enumeration within a
      schedule-cost budget, iteratively deepened so level [c] delivers
      exactly the cost-[c] runs. Honest {e underapproximations}, sound for
      bug-finding; stats report [bounded = true] only if the bound
      actually cut an edge.

    Strategies compose with the parallel front by root-splitting: the root
    frontier is fully expanded (a superset of any backtrack set) and each
    root decision becomes one rank-ordered task, applied identically at
    [domains = 1] — so reports are byte-identical across domain counts by
    construction. *)

type strategy =
  | Dfs  (** the incremental DFS engine (with its env-controlled pruning) *)
  | Dpor  (** source-DPOR: complete, verdict-preserving reduction *)
  | Preemption_bounded of { bound : int }
      (** at most [bound] preemptive context switches per run *)
  | Delay_bounded of { bound : int }
      (** at most [bound] deviations from the default continuation *)

val strategy_of_string : string -> strategy option
(** Parse ["dfs"], ["dpor"], ["preemption:N"] / ["preempt:N"], ["delay:N"]
    (case-insensitive); [None] on anything else. The inverse of
    {!strategy_to_string}. *)

val strategy_to_string : strategy -> string

val exhaustive_strategy :
  ?plan:Fault.plan ->
  strategy:strategy ->
  ?domains:int ->
  setup:(Ctx.t -> Runner.program) ->
  fuel:int ->
  ?max_runs:int ->
  f:(Runner.outcome -> unit) ->
  unit ->
  stats
(** Explore under [strategy]. [Dfs] delegates to {!exhaustive}; the other
    strategies root-split as described above (even at [domains = 1]).
    [max_runs] is enforced through a shared delivery gate; combine it with
    [domains = 1] when the exact run {e set} must be deterministic. With
    [domains >= 2] the callback runs concurrently from several domains —
    use {!exhaustive_strategy_collect} unless it is thread-safe. *)

val exhaustive_strategy_collect :
  ?plan:Fault.plan ->
  strategy:strategy ->
  ?domains:int ->
  setup:(Ctx.t -> Runner.program) ->
  fuel:int ->
  ?max_runs:int ->
  init:(unit -> 'acc) ->
  f:('acc -> Runner.outcome -> unit) ->
  unit ->
  stats * 'acc array
(** Like {!exhaustive_strategy} with one accumulator per root-split task,
    returned in canonical rank order (task order = root frontier order),
    so merging accumulators in array order is deterministic and
    domain-count-invariant. *)

val races_of :
  ?plan:Fault.plan ->
  setup:(Ctx.t -> Runner.program) ->
  Runner.schedule ->
  Cal.Witness.race list
(** Replay a (witness) schedule through the vector-clock analysis and
    return its direct racing step pairs, in execution order — the "why
    this interleaving matters" annotation of a minimized counterexample. *)

val races_of_durable :
  ?plan:Fault.plan ->
  setup:(Ctx.t -> Runner.durable) ->
  Runner.schedule ->
  Cal.Witness.race list

(** {1 Fault exploration} *)

type fault_stats = {
  plans : int;          (** fault plans explored, including the empty plan *)
  fault_runs : int;     (** outcomes delivered across all plans *)
  fault_truncated : bool;  (** a plan hit [max_runs], or [max_plans] bit *)
  fault_max_steps : int;
  fault_nodes : int;             (** {!stats.nodes} summed over plans *)
  fault_replayed_steps : int;    (** {!stats.replayed_steps} summed *)
  fault_fingerprint_hits : int;  (** {!stats.fingerprint_hits} summed *)
  fault_sleep_pruned : int;      (** {!stats.sleep_pruned} summed *)
  fault_tasks_stolen : int;      (** {!stats.tasks_stolen} summed *)
  fault_domains_used : int;      (** {!stats.domains_used} maxed *)
  fault_domains_requested : int; (** {!stats.domains_requested} maxed *)
}

val exhaustive_with_faults :
  ?delay_factors:int list ->
  ?prune:bool ->
  ?domains:int ->
  setup:(Ctx.t -> Runner.program) ->
  fuel:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  ?max_plans:int ->
  fault_bound:int ->
  f:(Runner.outcome -> unit) ->
  unit ->
  fault_stats
(** The fault analog of CHESS-style context bounding: systematically
    enumerate fault plans of at most [fault_bound] faults and explore every
    schedule under each.

    The fault-free exhaustive pass that delivers the empty plan's outcomes
    {e also} learns the program's fault points (single pass — the
    fault-free state space is executed once): every (thread, step)
    position some schedule reaches becomes a candidate {!Fault.Crash}, and
    every executed {!Prog.Fallible} label occurrence a candidate
    {!Fault.Fail_step}. Then every plan combining at most [fault_bound] of
    these points is explored exhaustively; [f] receives each outcome,
    which carries its plan in [outcome.faults] and the faults that
    actually fired in [outcome.injected].

    Plans are enumerated lazily, smallest first; [max_plans] caps the
    enumeration before the exponential subset space is ever materialised
    (the stats record the cap as truncation, and the capped plan set is
    exactly the first [max_plans] of the full enumeration). [max_runs]
    bounds each per-plan exploration separately. Because a fault point
    found on {e any} interleaving of the fault-free pass is proposed, the
    enumeration is complete for bounded clients: [fault_bound:1] visits
    every single-crash and every single-CAS-failure execution.

    [delay_factors] (default none) additionally proposes a
    {!Fault.Delay}[ { thread; factor }] candidate for every thread that
    took a step in the fault-free pass and every listed factor (each must
    be [>= 2]), so the plan enumeration also covers skewed-clock
    executions in which a thread's deadlines fire early.

    [domains] (default [1]) parallelizes both the fault-free tree sweep
    and the plan fan-out (each plan explored whole by one worker). The
    per-task candidate learners bump-merge into the sequential learner
    exactly, so the proposed plan set is identical. When [max_runs] is
    set, the fault-free pass stays sequential: a racy shared budget could
    truncate a different run subset and learn different candidates. [f]
    must be thread-safe when [domains >= 2] — or use
    {!exhaustive_with_faults_collect}. *)

val exhaustive_with_faults_collect :
  ?delay_factors:int list ->
  ?prune:bool ->
  ?domains:int ->
  setup:(Ctx.t -> Runner.program) ->
  fuel:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  ?max_plans:int ->
  fault_bound:int ->
  init:(unit -> 'acc) ->
  f:('acc -> Runner.outcome -> unit) ->
  unit ->
  fault_stats * 'acc array
(** {!exhaustive_with_faults} with per-exploration-unit accumulators: one
    per subtree task of the fault-free pass followed by one per fault
    plan, in canonical order (see {!exhaustive_collect}). *)

val exhaustive_durable :
  plan:Fault.plan ->
  ?domains:int ->
  setup:(Ctx.t -> Runner.durable) ->
  fuel:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  f:(Runner.outcome -> unit) ->
  unit ->
  stats
(** {!exhaustive} for a durable program under one fixed (possibly
    crashing) plan — the engine behind {!exhaustive_with_crashes}, exposed
    for targeted tests. Always unpruned: persistent-cell contents are not
    part of the state fingerprint, so memoization across crash plans would
    be unsound. [domains] parallelizes the single plan's schedule tree;
    [f] must then be thread-safe. *)

val exhaustive_with_crashes :
  ?delay_factors:int list ->
  setup:(Ctx.t -> Runner.durable) ->
  fuel:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  ?max_plans:int ->
  ?max_crash_depth:int ->
  ?fault_bound:int ->
  f:(Runner.outcome -> unit) ->
  unit ->
  fault_stats
(** The crash analog of {!exhaustive_with_faults} for durable programs:
    enumerate {!Fault.Crash_system} plans and explore every schedule of
    the durable program under each.

    The crash-free pass runs first and reports the deepest run it saw;
    every global step [0..max] then becomes a candidate crash point —
    point [0] (the system dies before any decision) and point [max]
    (recovery runs against the completed workload) included. When
    [max_crash_depth] (default [1]) allows, each crash plan's own deepest
    run bounds a nested sweep of strictly later second crash points —
    crash-during-recovery executions. Enumeration is lazy and
    smallest-first (earlier points before later, depth 1 before depth 2),
    so a [max_plans] budget keeps a prefix of the cheapest plans and is
    recorded as truncation.

    [fault_bound] (default [0]) additionally crosses per-thread fault
    plans — learned from the crash-free pass exactly as in
    {!exhaustive_with_faults}, including [delay_factors] candidates — with
    the crash-point sweep, so a thread crash or forced CAS failure can be
    combined with a system crash.

    Always unpruned (see {!exhaustive_durable}) and deliberately
    sequential (no [domains]): each plan's crash-point horizon depends on
    the runs its parent plan delivered, so the plan enumeration is a
    data-dependent sequential sweep (DESIGN §2.11). Outcomes delivered to
    [f] carry their plan in [outcome.faults], the crashes that actually
    fired in [outcome.injected], and the era count in [outcome.epochs];
    the witness for any violation is the replayable pair
    ([outcome.schedule], [outcome.faults]) via {!Runner.replay_durable}. *)

(** {1 Liveness watchdog}

    The safety checkers silently accept a run in which nobody ever makes
    progress — an incomplete history with no response actions is trivially
    linearizable. The watchdog closes that gap with {e bounded-fairness}
    detection: a run is only held against the object when the schedule was
    fair to every thread, i.e. no enabled thread went unscheduled for
    [window] consecutive decisions. *)

(** Classification of one (schedule, plan) pair:

    - [Completed]: every thread returned — progress was made.
    - [Deadlocked]: the run is incomplete and no decision is enabled at the
      end; blocking structures legitimately deadlock when no peer exists
      (e.g. a lone [Prog.timed] waiter).
    - [Starved ts]: the run is incomplete, but some thread in [ts] was
      continuously enabled for at least [window] decisions without being
      scheduled — the schedule is unfair, so non-termination is excused.
      Starvation is {e sticky}: a thread whose idle stretch once reached
      [window] stays in [ts] even if it is scheduled afterwards (the
      schedule was unfair at some point, which excuses the whole run; see
      DESIGN §2.8).
    - [Livelocked]: the run is incomplete, decisions remain enabled, and no
      thread starved: every thread kept running and yet nobody finished.
      This is the verdict the watchdog flags — cancel-and-retry loops that
      spin forever under a fair schedule. *)
type run_verdict =
  | Completed
  | Deadlocked
  | Starved of int list
  | Livelocked

val pp_verdict : Format.formatter -> run_verdict -> unit

val watchdog :
  ?plan:Fault.plan ->
  setup:(Ctx.t -> Runner.program) ->
  window:int ->
  Runner.schedule ->
  run_verdict
(** [watchdog ~setup ~window sched] executes [sched] once (a single
    incremental pass — the frontier before each decision feeds the idle
    counters) and classifies it. The idle stretch of a thread is the
    number of consecutive decisions during which it was enabled but not
    chosen; it resets whenever the thread is scheduled or becomes
    disabled. Raises [Invalid_argument] if [window < 1]. *)

type liveness_stats = {
  live_runs : int;          (** terminal outcomes classified *)
  live_completed : int;
  live_deadlocked : int;
  live_starved : int;
  live_livelocked : int;
  livelocks : (Runner.schedule * Fault.plan) list;
      (** witnesses of livelocked runs, at most 10 *)
  live_truncated : bool;    (** stopped early by [max_runs] *)
}

val liveness :
  ?plan:Fault.plan ->
  setup:(Ctx.t -> Runner.program) ->
  fuel:int ->
  window:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  unit ->
  liveness_stats
(** Exhaustively explore (like {!exhaustive}) and classify every maximal
    run with the watchdog, threading the idle counters down each path as
    per-path state of the incremental engine (one pass, no per-prefix
    replays). Pruning never applies here: the idle counters are path state
    the fingerprints do not cover. Deliberately sequential (no [domains]):
    the witness cap and the fairness classification are order-dependent
    path state best left on the sequential engine (DESIGN §2.11). An
    object passes the liveness obligation when [live_livelocked = 0]: on
    every fair schedule it either finishes or genuinely blocks. *)

val liveness_with_faults :
  ?delay_factors:int list ->
  setup:(Ctx.t -> Runner.program) ->
  fuel:int ->
  window:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  ?max_plans:int ->
  fault_bound:int ->
  unit ->
  int * liveness_stats
(** {!liveness} over the fault sweep: the plan enumeration of
    {!exhaustive_with_faults} (including [delay_factors] candidates), each
    plan explored and classified by the watchdog. The fault-free
    classification pass doubles as the candidate learner, so the
    fault-free state space is executed once. Returns (plans explored,
    merged stats). Crashed and stalled threads are never enabled, so a run
    they cut short classifies as deadlocked or starved — never as a
    livelock of the object. *)

val failure_depth :
  setup:(Ctx.t -> Runner.program) ->
  fuel:int ->
  ?max_bound:int ->
  ?max_runs:int ->
  p:(Runner.outcome -> bool) ->
  unit ->
  [ `Fails_at of int * Runner.outcome | `Holds of stats ]
(** [failure_depth ~setup ~fuel ~p ()] searches for a violation with
    iteratively increasing preemption bounds (0, 1, …, [max_bound], default
    8). [`Fails_at (d, o)] means the property first fails with [d]
    preemptions — the counterexample [o] has a minimal number of context
    switches, which makes it far easier to read than an arbitrary failing
    schedule. [`Holds] means no violation was found within the bound (the
    stats are those of the largest bound explored). *)
