(** Run context: the observable history and the auxiliary trace variable
    [𝒯].

    Each run of a program gets a fresh context. The harness logs invocation
    and response actions into the history; instrumented implementations
    append CA-elements to [𝒯] inside their atomic steps — the paper's
    auxiliary assignments, fused with the shared-memory update they
    justify. *)

type t

val create : unit -> t

val log_action : t -> Cal.Action.t -> unit
val log_element : t -> Cal.Ca_trace.element -> unit

val log_elements : t -> Cal.Ca_trace.t -> unit
(** Append several elements atomically (used when one concrete step stands
    for a sequence of abstract operations). *)

val history : t -> Cal.History.t
(** The history logged so far, oldest first. *)

val trace : t -> Cal.Ca_trace.t
(** The auxiliary trace [𝒯] logged so far, oldest first. *)

val trace_length : t -> int

val history_length : t -> int
(** Number of actions logged so far (cheaper than materialising
    {!history}; used by the exploration engine's state fingerprints). *)

val record_crash : t -> unit
(** Log a {!Cal.Action.Crash} marker (with the next epoch number) into the
    history and bump the crash counter. Called by {!Runner} when a
    [Fault.Crash_system] fires; implementations must not call it. *)

val crash_count : t -> int
(** System crashes recorded so far in this run. *)

val now : t -> int
(** The logical clock: the number of scheduling decisions applied so far in
    this run. Advanced by the runner (never by programs), so a replayed
    schedule sees the identical sequence of clock values — deadlines are as
    reproducible as any other part of the run. *)

val tick : t -> unit
(** Advance the logical clock by one. Called by {!Runner} after each applied
    decision; implementations must not call it. *)

val set_skew : t -> thread:int -> factor:int -> unit
(** Stretch [thread]'s perceived time: its {!local_now} reads
    [factor * now]. Used by the runner to interpret a [Fault.Delay] plan
    entry. Raises [Invalid_argument] if [factor < 1] or [thread < 0]. *)

val skew_factor : t -> thread:int -> int
(** The skew factor currently applied to [thread] (1 if none). *)

val local_now : t -> tid:Cal.Ids.Tid.t -> int
(** The logical time as perceived by [tid]: [skew_factor * now]. A delayed
    thread perceives time passing faster, so its deadlines expire sooner —
    the deterministic analogue of a thread scheduled on a slow core hitting
    its timeout. *)

val note_read : t -> string -> unit
(** Record that the current step read the shared location named by the
    string. A no-op unless a step is being applied (between {!begin_step}
    and {!end_step}), so guard evaluations during frontier computation
    never pollute the access record. Called by {!Cell} and {!Pcell}. *)

val note_write : t -> string -> unit
(** Record that the current step wrote a shared location. See
    {!note_read}. *)

val begin_step : t -> unit
(** Open the per-step access record and enable {!note_read}/{!note_write}.
    Called by {!Runner.step} around each applied decision; implementations
    must not call it. *)

val end_step : t -> unit
(** Close the per-step access record ({!step_accesses} stays readable until
    the next {!begin_step}). *)

val step_accesses : t -> (string list * string list) option
(** [(reads, writes)] of the most recently applied step, each sorted and
    deduplicated — or [None] if the step recorded nothing (it ran
    uninstrumented code). History/trace logging counts as a write to a
    dedicated pseudo-location, so checker-visible ordering is never
    reordered by dependency-based reduction. *)

val active_threads : t -> oid:Cal.Ids.Oid.t -> Cal.Ids.Tid.t list
(** Threads currently executing a method of [oid] (the paper's [InE]):
    those with a pending invocation on [oid] in the history {e after} the
    last crash marker — invocations cut off by a system crash are dead,
    not active. *)
