type stats = { runs : int; truncated : bool; max_steps : int }

exception Stop

let exhaustive ?(plan = []) ~setup ~fuel ?max_runs ?preemption_bound ~f () =
  let runs = ref 0 in
  let truncated = ref false in
  let max_steps = ref 0 in
  let deliver outcome =
    f outcome;
    incr runs;
    if outcome.Runner.steps > !max_steps then max_steps := outcome.Runner.steps;
    match max_runs with
    | Some m when !runs >= m ->
        truncated := true;
        raise Stop
    | _ -> ()
  in
  let within_budget used = match preemption_bound with None -> true | Some b -> used <= b in
  (* [last] is the thread that took the previous step; switching away from
     it while it is still enabled costs one preemption. *)
  let rec explore prefix ~last ~preemptions =
    let outcome, frontier = Runner.replay ~plan ~setup prefix in
    if frontier = [] || outcome.Runner.steps >= fuel then deliver outcome
    else begin
      let last_enabled =
        List.exists (fun (d : Runner.decision) -> Some d.thread = last) frontier
      in
      List.iter
        (fun (d : Runner.decision) ->
          let cost =
            if last_enabled && Some d.thread <> last then preemptions + 1
            else preemptions
          in
          if within_budget cost then
            explore (prefix @ [ d ]) ~last:(Some d.thread) ~preemptions:cost)
        frontier
    end
  in
  (try explore [] ~last:None ~preemptions:0 with Stop -> ());
  { runs = !runs; truncated = !truncated; max_steps = !max_steps }

let random ~setup ~fuel ~runs ~seed ~f () =
  let rng = Rng.create ~seed in
  let max_steps = ref 0 in
  for _ = 1 to runs do
    let outcome = Runner.run_random ~setup ~fuel ~rng () in
    if outcome.Runner.steps > !max_steps then max_steps := outcome.Runner.steps;
    f outcome
  done;
  { runs; truncated = false; max_steps = !max_steps }

let check_all ?plan ~setup ~fuel ?max_runs ?preemption_bound ~p () =
  let bad = ref None in
  let wrapped outcome =
    if !bad = None && not (p outcome) then begin
      bad := Some outcome;
      raise Stop
    end
  in
  let stats = exhaustive ?plan ~setup ~fuel ?max_runs ?preemption_bound ~f:wrapped () in
  match !bad with
  | None -> Ok stats
  | Some o -> Error (o, { stats with truncated = true })

(* Iterative context bounding doubles as counterexample minimisation: the
   first bound at which a violation appears is the bug's preemption depth,
   and the witness schedule has that few context switches. *)
let failure_depth ~setup ~fuel ?(max_bound = 8) ?max_runs ~p () =
  let rec go bound last_stats =
    if bound > max_bound then `Holds last_stats
    else
      match check_all ~setup ~fuel ?max_runs ~preemption_bound:bound ~p () with
      | Error (outcome, _) -> `Fails_at (bound, outcome)
      | Ok stats -> go (bound + 1) stats
  in
  go 0 { runs = 0; truncated = false; max_steps = 0 }

(* ------------------------------------------------- fault exploration -- *)

type fault_stats = {
  plans : int;
  fault_runs : int;
  fault_truncated : bool;
  fault_max_steps : int;
}

(* Candidate fault points of a bounded program, learned from a fault-free
   exhaustive pass: every (thread, step) pair some schedule reaches is a
   crash (and stall) point, and every fallible label occurrence some
   schedule executes is a forcible CAS failure. The union over all
   schedules is what makes the enumeration complete for the bounded
   client — a fault point reachable on any interleaving is proposed. *)
let fault_candidates ~setup ~fuel ?max_runs ?preemption_bound () =
  let thread_max : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let label_max : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some old when old >= v -> ()
    | _ -> Hashtbl.replace tbl key v
  in
  let f (o : Runner.outcome) =
    let per_thread = Hashtbl.create 8 in
    List.iter
      (fun (d : Runner.decision) ->
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt per_thread d.thread) in
        Hashtbl.replace per_thread d.thread n;
        bump thread_max d.thread n)
      o.Runner.schedule;
    let per_label = Hashtbl.create 8 in
    List.iter
      (fun l ->
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt per_label l) in
        Hashtbl.replace per_label l n;
        bump label_max l n)
      o.Runner.fallible_steps
  in
  let _ = exhaustive ~setup ~fuel ?max_runs ?preemption_bound ~f () in
  let crashes =
    Hashtbl.fold (fun thread steps acc -> (thread, steps) :: acc) thread_max []
    |> List.sort compare
    |> List.concat_map (fun (thread, steps) ->
           List.init steps (fun at_step -> Fault.Crash { thread; at_step }))
  in
  let fails =
    Hashtbl.fold (fun label count acc -> (label, count) :: acc) label_max []
    |> List.sort compare
    |> List.concat_map (fun (label, count) ->
           List.init count (fun i -> Fault.Fail_step { label; nth = i + 1 }))
  in
  crashes @ fails

(* Subsets of [candidates] of size 1..bound, smallest first, skipping plans
   that crash the same thread twice (Fault.validate would reject them). *)
let plans_up_to ~bound candidates =
  let compatible plan = Result.is_ok (Fault.validate plan) in
  let rec subsets k = function
    | [] -> [ [] ]
    | x :: rest ->
        let without = subsets k rest in
        let with_x =
          if k = 0 then []
          else List.map (fun s -> x :: s) (subsets (k - 1) rest)
        in
        with_x @ without
  in
  subsets bound candidates
  |> List.filter (fun p -> p <> [] && compatible p)
  |> List.sort (fun a b -> Int.compare (List.length a) (List.length b))

let exhaustive_with_faults ~setup ~fuel ?max_runs ?preemption_bound ?max_plans
    ~fault_bound ~f () =
  if fault_bound < 0 then invalid_arg "Explore: fault_bound must be >= 0";
  let candidates =
    if fault_bound = 0 then []
    else fault_candidates ~setup ~fuel ?max_runs ?preemption_bound ()
  in
  let plans = [] :: plans_up_to ~bound:fault_bound candidates in
  let plans, capped =
    match max_plans with
    | Some m when List.length plans > m -> (List.filteri (fun i _ -> i < m) plans, true)
    | _ -> (plans, false)
  in
  let total_runs = ref 0 in
  let truncated = ref capped in
  let max_steps = ref 0 in
  List.iter
    (fun plan ->
      let stats = exhaustive ~plan ~setup ~fuel ?max_runs ?preemption_bound ~f () in
      total_runs := !total_runs + stats.runs;
      if stats.truncated then truncated := true;
      if stats.max_steps > !max_steps then max_steps := stats.max_steps)
    plans;
  {
    plans = List.length plans;
    fault_runs = !total_runs;
    fault_truncated = !truncated;
    fault_max_steps = !max_steps;
  }
