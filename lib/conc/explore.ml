type stats = { runs : int; truncated : bool; max_steps : int }

exception Stop

let exhaustive ?(plan = []) ~setup ~fuel ?max_runs ?preemption_bound ~f () =
  let runs = ref 0 in
  let truncated = ref false in
  let max_steps = ref 0 in
  let deliver outcome =
    f outcome;
    incr runs;
    if outcome.Runner.steps > !max_steps then max_steps := outcome.Runner.steps;
    match max_runs with
    | Some m when !runs >= m ->
        truncated := true;
        raise Stop
    | _ -> ()
  in
  let within_budget used = match preemption_bound with None -> true | Some b -> used <= b in
  (* [last] is the thread that took the previous step; switching away from
     it while it is still enabled costs one preemption. *)
  let rec explore prefix ~last ~preemptions =
    let outcome, frontier = Runner.replay ~plan ~setup prefix in
    if frontier = [] || outcome.Runner.steps >= fuel then deliver outcome
    else begin
      let last_enabled =
        List.exists (fun (d : Runner.decision) -> Some d.thread = last) frontier
      in
      List.iter
        (fun (d : Runner.decision) ->
          let cost =
            if last_enabled && Some d.thread <> last then preemptions + 1
            else preemptions
          in
          if within_budget cost then
            explore (prefix @ [ d ]) ~last:(Some d.thread) ~preemptions:cost)
        frontier
    end
  in
  (try explore [] ~last:None ~preemptions:0 with Stop -> ());
  { runs = !runs; truncated = !truncated; max_steps = !max_steps }

let random ~setup ~fuel ~runs ~seed ~f () =
  let rng = Rng.create ~seed in
  let max_steps = ref 0 in
  for _ = 1 to runs do
    let outcome = Runner.run_random ~setup ~fuel ~rng () in
    if outcome.Runner.steps > !max_steps then max_steps := outcome.Runner.steps;
    f outcome
  done;
  { runs; truncated = false; max_steps = !max_steps }

let check_all ?plan ~setup ~fuel ?max_runs ?preemption_bound ~p () =
  let bad = ref None in
  let wrapped outcome =
    if !bad = None && not (p outcome) then begin
      bad := Some outcome;
      raise Stop
    end
  in
  let stats = exhaustive ?plan ~setup ~fuel ?max_runs ?preemption_bound ~f:wrapped () in
  match !bad with
  | None -> Ok stats
  | Some o -> Error (o, { stats with truncated = true })

(* Iterative context bounding doubles as counterexample minimisation: the
   first bound at which a violation appears is the bug's preemption depth,
   and the witness schedule has that few context switches. *)
let failure_depth ~setup ~fuel ?(max_bound = 8) ?max_runs ~p () =
  let rec go bound last_stats =
    if bound > max_bound then `Holds last_stats
    else
      match check_all ~setup ~fuel ?max_runs ~preemption_bound:bound ~p () with
      | Error (outcome, _) -> `Fails_at (bound, outcome)
      | Ok stats -> go (bound + 1) stats
  in
  go 0 { runs = 0; truncated = false; max_steps = 0 }

(* ------------------------------------------------- fault exploration -- *)

type fault_stats = {
  plans : int;
  fault_runs : int;
  fault_truncated : bool;
  fault_max_steps : int;
}

(* Candidate fault points of a bounded program, learned from a fault-free
   exhaustive pass: every (thread, step) pair some schedule reaches is a
   crash (and stall) point, and every fallible label occurrence some
   schedule executes is a forcible CAS failure. The union over all
   schedules is what makes the enumeration complete for the bounded
   client — a fault point reachable on any interleaving is proposed. *)
let fault_candidates ?(delay_factors = []) ~setup ~fuel ?max_runs
    ?preemption_bound () =
  let thread_max : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let label_max : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some old when old >= v -> ()
    | _ -> Hashtbl.replace tbl key v
  in
  let f (o : Runner.outcome) =
    let per_thread = Hashtbl.create 8 in
    List.iter
      (fun (d : Runner.decision) ->
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt per_thread d.thread) in
        Hashtbl.replace per_thread d.thread n;
        bump thread_max d.thread n)
      o.Runner.schedule;
    let per_label = Hashtbl.create 8 in
    List.iter
      (fun l ->
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt per_label l) in
        Hashtbl.replace per_label l n;
        bump label_max l n)
      o.Runner.fallible_steps
  in
  let _ = exhaustive ~setup ~fuel ?max_runs ?preemption_bound ~f () in
  let crashes =
    Hashtbl.fold (fun thread steps acc -> (thread, steps) :: acc) thread_max []
    |> List.sort compare
    |> List.concat_map (fun (thread, steps) ->
           List.init steps (fun at_step -> Fault.Crash { thread; at_step }))
  in
  let fails =
    Hashtbl.fold (fun label count acc -> (label, count) :: acc) label_max []
    |> List.sort compare
    |> List.concat_map (fun (label, count) ->
           List.init count (fun i -> Fault.Fail_step { label; nth = i + 1 }))
  in
  let delays =
    Hashtbl.fold (fun thread _ acc -> thread :: acc) thread_max []
    |> List.sort Int.compare
    |> List.concat_map (fun thread ->
           List.map (fun factor -> Fault.Delay { thread; factor }) delay_factors)
  in
  crashes @ fails @ delays

(* Subsets of [candidates] of size 1..bound, smallest first, skipping plans
   that crash the same thread twice (Fault.validate would reject them). *)
let plans_up_to ~bound candidates =
  let compatible plan = Result.is_ok (Fault.validate plan) in
  let rec subsets k = function
    | [] -> [ [] ]
    | x :: rest ->
        let without = subsets k rest in
        let with_x =
          if k = 0 then []
          else List.map (fun s -> x :: s) (subsets (k - 1) rest)
        in
        with_x @ without
  in
  subsets bound candidates
  |> List.filter (fun p -> p <> [] && compatible p)
  |> List.sort (fun a b -> Int.compare (List.length a) (List.length b))

let exhaustive_with_faults ?delay_factors ~setup ~fuel ?max_runs
    ?preemption_bound ?max_plans ~fault_bound ~f () =
  if fault_bound < 0 then invalid_arg "Explore: fault_bound must be >= 0";
  let candidates =
    if fault_bound = 0 then []
    else fault_candidates ?delay_factors ~setup ~fuel ?max_runs ?preemption_bound ()
  in
  let plans = [] :: plans_up_to ~bound:fault_bound candidates in
  let plans, capped =
    match max_plans with
    | Some m when List.length plans > m -> (List.filteri (fun i _ -> i < m) plans, true)
    | _ -> (plans, false)
  in
  let total_runs = ref 0 in
  let truncated = ref capped in
  let max_steps = ref 0 in
  List.iter
    (fun plan ->
      let stats = exhaustive ~plan ~setup ~fuel ?max_runs ?preemption_bound ~f () in
      total_runs := !total_runs + stats.runs;
      if stats.truncated then truncated := true;
      if stats.max_steps > !max_steps then max_steps := stats.max_steps)
    plans;
  {
    plans = List.length plans;
    fault_runs = !total_runs;
    fault_truncated = !truncated;
    fault_max_steps = !max_steps;
  }

(* ------------------------------------------------- liveness watchdog -- *)

type run_verdict =
  | Completed
  | Deadlocked
  | Starved of int list
  | Livelocked

let pp_verdict ppf = function
  | Completed -> Fmt.pf ppf "completed"
  | Deadlocked -> Fmt.pf ppf "deadlocked"
  | Starved ts ->
      Fmt.pf ppf "starved(%a)" (Fmt.list ~sep:Fmt.comma Fmt.int) ts
  | Livelocked -> Fmt.pf ppf "livelocked"

let enabled_threads frontier =
  List.map (fun (d : Runner.decision) -> d.thread) frontier
  |> List.sort_uniq Int.compare

(* Advance the per-thread idle counters across one decision: a thread that
   was enabled but not chosen grows its stretch; the chosen thread and
   disabled threads reset. Returns the counters keyed by thread. *)
let bump_idle ~window idle enabled chosen starving =
  let idle' =
    List.filter_map
      (fun t ->
        if t = chosen then None
        else Some (t, 1 + Option.value ~default:0 (List.assoc_opt t idle)))
      enabled
  in
  let newly =
    List.filter_map (fun (t, n) -> if n >= window then Some t else None) idle'
  in
  (idle', List.sort_uniq Int.compare (newly @ starving))

let watchdog ?(plan = []) ~setup ~window sched =
  if window < 1 then invalid_arg "Explore.watchdog: window must be >= 1";
  let rec go prefix idle starving = function
    | [] ->
        let outcome, frontier = Runner.replay ~plan ~setup prefix in
        if outcome.Runner.complete then Completed
        else if frontier = [] then Deadlocked
        else if starving <> [] then Starved starving
        else Livelocked
    | d :: rest ->
        let _, frontier = Runner.replay ~plan ~setup prefix in
        let idle, starving =
          bump_idle ~window idle (enabled_threads frontier)
            d.Runner.thread starving
        in
        go (prefix @ [ d ]) idle starving rest
  in
  go [] [] [] sched

type liveness_stats = {
  live_runs : int;
  live_completed : int;
  live_deadlocked : int;
  live_starved : int;
  live_livelocked : int;
  livelocks : (Runner.schedule * Fault.plan) list;
  live_truncated : bool;
}

let liveness ?(plan = []) ~setup ~fuel ~window ?max_runs ?preemption_bound () =
  if window < 1 then invalid_arg "Explore.liveness: window must be >= 1";
  let runs = ref 0 in
  let completed = ref 0 in
  let deadlocked = ref 0 in
  let starved = ref 0 in
  let livelocked = ref 0 in
  let witnesses = ref [] in
  let truncated = ref false in
  let deliver (outcome : Runner.outcome) frontier starving =
    incr runs;
    if outcome.Runner.complete then incr completed
    else if frontier = [] then incr deadlocked
    else if starving <> [] then incr starved
    else begin
      incr livelocked;
      if List.length !witnesses < 10 then
        witnesses := (outcome.Runner.schedule, plan) :: !witnesses
    end;
    match max_runs with
    | Some m when !runs >= m ->
        truncated := true;
        raise Stop
    | _ -> ()
  in
  let within_budget used =
    match preemption_bound with None -> true | Some b -> used <= b
  in
  let rec explore prefix ~last ~preemptions ~idle ~starving =
    let outcome, frontier = Runner.replay ~plan ~setup prefix in
    if frontier = [] || outcome.Runner.steps >= fuel then
      deliver outcome frontier starving
    else begin
      let enabled = enabled_threads frontier in
      let last_enabled = List.exists (fun t -> Some t = last) enabled in
      List.iter
        (fun (d : Runner.decision) ->
          let cost =
            if last_enabled && Some d.thread <> last then preemptions + 1
            else preemptions
          in
          if within_budget cost then begin
            let idle', starving' =
              bump_idle ~window idle enabled d.thread starving
            in
            explore (prefix @ [ d ]) ~last:(Some d.thread) ~preemptions:cost
              ~idle:idle' ~starving:starving'
          end)
        frontier
    end
  in
  (try explore [] ~last:None ~preemptions:0 ~idle:[] ~starving:[]
   with Stop -> ());
  {
    live_runs = !runs;
    live_completed = !completed;
    live_deadlocked = !deadlocked;
    live_starved = !starved;
    live_livelocked = !livelocked;
    livelocks = List.rev !witnesses;
    live_truncated = !truncated;
  }

(* The watchdog over the fault sweep: classify every run of every plan of
   at most [fault_bound] faults (the plan enumeration of
   [exhaustive_with_faults]). Returns the number of plans explored and the
   merged stats; crashed and stalled threads are never enabled, so their
   non-termination classifies as deadlock, not livelock. *)
let liveness_with_faults ?delay_factors ~setup ~fuel ~window ?max_runs
    ?preemption_bound ?max_plans ~fault_bound () =
  if fault_bound < 0 then invalid_arg "Explore: fault_bound must be >= 0";
  let candidates =
    if fault_bound = 0 then []
    else fault_candidates ?delay_factors ~setup ~fuel ?max_runs ?preemption_bound ()
  in
  let plans = [] :: plans_up_to ~bound:fault_bound candidates in
  let plans, capped =
    match max_plans with
    | Some m when List.length plans > m -> (List.filteri (fun i _ -> i < m) plans, true)
    | _ -> (plans, false)
  in
  let merged =
    List.fold_left
      (fun acc plan ->
        let s = liveness ~plan ~setup ~fuel ~window ?max_runs ?preemption_bound () in
        {
          live_runs = acc.live_runs + s.live_runs;
          live_completed = acc.live_completed + s.live_completed;
          live_deadlocked = acc.live_deadlocked + s.live_deadlocked;
          live_starved = acc.live_starved + s.live_starved;
          live_livelocked = acc.live_livelocked + s.live_livelocked;
          livelocks =
            (let room = 10 - List.length acc.livelocks in
             acc.livelocks @ List.filteri (fun i _ -> i < room) s.livelocks);
          live_truncated = acc.live_truncated || s.live_truncated;
        })
      {
        live_runs = 0;
        live_completed = 0;
        live_deadlocked = 0;
        live_starved = 0;
        live_livelocked = 0;
        livelocks = [];
        live_truncated = capped;
      }
      plans
  in
  (List.length plans, merged)
