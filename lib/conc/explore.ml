type stats = Engine.stats = {
  runs : int;
  truncated : bool;
  max_steps : int;
  nodes : int;
  replayed_steps : int;
  fingerprint_hits : int;
  sleep_pruned : int;
  races_found : int;
  backtrack_points : int;
  bound_hits : int;
  bounded : bool;
  cache_hits : int;
  tasks_stolen : int;
  domains_used : int;
  domains_requested : int;
  sampled_runs : int;
  violations_found : int;
  shrink_candidates : int;
  shrink_steps_removed : int;
}

let empty_stats = Engine.empty_stats
let merge_stats = Engine.merge_stats

exception Stop = Engine.Stop

let pruning_requested = Engine.pruning_requested
let env_flag = Engine.env_flag

(* --------------------------------------------------- exploration fronts --
   The incremental DFS engine lives in {!Engine}; the work-stealing
   parallel front in {!Par_explore}. Every entry point below dispatches on
   [domains]: [1] (the default) is byte-for-byte the sequential engine,
   [>= 2] explores with that many worker domains splitting the schedule
   tree dynamically as workers go idle. Callbacks of the parallel paths
   run concurrently from several domains and must be thread-safe; the
   [_collect] variants side-step that by giving every task its own
   accumulator, merged in canonical rank order after the join. *)

let sequential_dfs ~restart ~fuel ?max_runs ?preemption_bound ~prune ~f () =
  Engine.dfs ~restart ~fuel ?max_runs ?preemption_bound ~prune ~init_path:()
    ~step_path:(fun () _ _ -> ())
    ~leaf:(fun o _ () -> f o)
    ()

let exhaustive ?(plan = []) ?prune ?(domains = 1) ~setup ~fuel ?max_runs
    ?preemption_bound ~f () =
  let prune = pruning_requested prune in
  let restart () = Runner.start ~plan ~setup () in
  if domains <= 1 then
    sequential_dfs ~restart ~fuel ?max_runs ?preemption_bound ~prune ~f ()
  else
    fst
      (Par_explore.explore ~prune ~domains ?max_runs ?preemption_bound
         ~restart ~fuel
         ~init:(fun () -> ())
         ~f:(fun () o -> f o)
         ())

let exhaustive_collect ?(plan = []) ?prune ?(domains = 1) ~setup ~fuel
    ?max_runs ?preemption_bound ~init ~f () =
  let prune = pruning_requested prune in
  let restart () = Runner.start ~plan ~setup () in
  if domains <= 1 then begin
    let acc = init () in
    let stats =
      sequential_dfs ~restart ~fuel ?max_runs ?preemption_bound ~prune
        ~f:(fun o -> f acc o)
        ()
    in
    (stats, [| acc |])
  end
  else
    Par_explore.explore ~prune ~domains ?max_runs ?preemption_bound ~restart
      ~fuel ~init ~f ()

(* Exhaustive exploration of one durable program under one (possibly
   crashing) plan. Always unpruned: persistent-cell contents are not part
   of the state fingerprint, so memoization across crash plans would be
   unsound. *)
let exhaustive_durable ~plan ?(domains = 1) ~setup ~fuel ?max_runs
    ?preemption_bound ~f () =
  let restart () = Runner.start_durable ~plan ~setup () in
  if domains <= 1 then
    sequential_dfs ~restart ~fuel ?max_runs ?preemption_bound ~prune:false ~f
      ()
  else
    fst
      (Par_explore.explore ~prune:false ~domains ?max_runs ?preemption_bound
         ~restart ~fuel
         ~init:(fun () -> ())
         ~f:(fun () o -> f o)
         ())

(* The seed's stateless engine — a whole-prefix replay at every DFS node —
   kept as the reference implementation for cross-checks and the B12
   before/after comparison. [replayed_steps] counts every program step it
   executes. *)
let exhaustive_via_replay ?(plan = []) ~setup ~fuel ?max_runs ?preemption_bound
    ~f () =
  let runs = ref 0 and truncated = ref false and max_steps = ref 0 in
  let nodes = ref 0 and replayed = ref 0 in
  let deliver outcome =
    f outcome;
    incr runs;
    if outcome.Runner.steps > !max_steps then max_steps := outcome.Runner.steps;
    match max_runs with
    | Some m when !runs >= m ->
        truncated := true;
        raise Stop
    | _ -> ()
  in
  let within_budget used =
    match preemption_bound with None -> true | Some b -> used <= b
  in
  let rec explore prefix ~last ~preemptions =
    incr nodes;
    replayed := !replayed + List.length prefix;
    let outcome, frontier = Runner.replay ~plan ~setup prefix in
    if frontier = [] || outcome.Runner.steps >= fuel then deliver outcome
    else begin
      let last_enabled =
        List.exists (fun (d : Runner.decision) -> Some d.thread = last) frontier
      in
      List.iter
        (fun (d : Runner.decision) ->
          let cost =
            if last_enabled && Some d.thread <> last then preemptions + 1
            else preemptions
          in
          if within_budget cost then
            explore (prefix @ [ d ]) ~last:(Some d.thread) ~preemptions:cost)
        frontier
    end
  in
  (try explore [] ~last:None ~preemptions:0 with Stop -> ());
  {
    empty_stats with
    runs = !runs;
    truncated = !truncated;
    max_steps = !max_steps;
    nodes = !nodes;
    replayed_steps = !replayed;
  }

let random ~setup ~fuel ~runs ~seed ~f () =
  let rng = Rng.create ~seed in
  let max_steps = ref 0 in
  for _ = 1 to runs do
    let outcome = Runner.run_random ~setup ~fuel ~rng () in
    if outcome.Runner.steps > !max_steps then max_steps := outcome.Runner.steps;
    f outcome
  done;
  { empty_stats with runs; max_steps = !max_steps }

let check_all ?plan ?prune ?(domains = 1) ~setup ~fuel ?max_runs
    ?preemption_bound ~p () =
  if domains <= 1 then begin
    let bad = ref None in
    let wrapped outcome =
      if !bad = None && not (p outcome) then begin
        bad := Some outcome;
        raise Stop
      end
    in
    let stats =
      exhaustive ?plan ?prune ~setup ~fuel ?max_runs ?preemption_bound
        ~f:wrapped ()
    in
    (* [truncated] means the budget capped the search, nothing else: a
       counterexample stop is reported by the [Error] constructor alone, so
       callers can tell an exhausted-but-failing search from a capped one. *)
    match !bad with None -> Ok stats | Some o -> Error (o, stats)
  end
  else begin
    let plan = Option.value plan ~default:[] in
    let prune = pruning_requested prune in
    let restart () = Runner.start ~plan ~setup () in
    let stats, accs =
      Par_explore.explore ~prune ~domains ?max_runs ?preemption_bound ~restart
        ~fuel
        ~init:(fun () -> ref None)
        ~f:(fun acc o -> if !acc = None && not (p o) then acc := Some o)
        ~stop_on:(fun acc _ -> !acc <> None)
        ()
    in
    (* first failing task in canonical order holds the sequential witness *)
    match Array.to_list accs |> List.find_map (fun acc -> !acc) with
    | None -> Ok stats
    | Some o -> Error (o, stats)
  end

(* Iterative context bounding doubles as counterexample minimisation: the
   first bound at which a violation appears is the bug's preemption depth,
   and the witness schedule has that few context switches. *)
let failure_depth ~setup ~fuel ?(max_bound = 8) ?max_runs ~p () =
  let rec go bound last_stats =
    if bound > max_bound then `Holds last_stats
    else
      match check_all ~setup ~fuel ?max_runs ~preemption_bound:bound ~p () with
      | Error (outcome, _) -> `Fails_at (bound, outcome)
      | Ok stats -> go (bound + 1) stats
  in
  go 0 empty_stats

(* ------------------------------------------------- strategy dispatch -- *)

type strategy =
  | Dfs
  | Dpor
  | Preemption_bounded of { bound : int }
  | Delay_bounded of { bound : int }

let strategy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "" | "dfs" -> Some Dfs
  | "dpor" -> Some Dpor
  | s -> (
      match String.index_opt s ':' with
      | None -> None
      | Some i -> (
          let kind = String.sub s 0 i
          and n = String.sub s (i + 1) (String.length s - i - 1) in
          match (kind, int_of_string_opt n) with
          | ("preemption" | "preempt"), Some b when b >= 0 ->
              Some (Preemption_bounded { bound = b })
          | "delay", Some b when b >= 0 -> Some (Delay_bounded { bound = b })
          | _ -> None))

let strategy_to_string = function
  | Dfs -> "dfs"
  | Dpor -> "dpor"
  | Preemption_bounded { bound } -> Fmt.str "preemption:%d" bound
  | Delay_bounded { bound } -> Fmt.str "delay:%d" bound

(* Root-split composition with the parallel front: fully expand the root
   frontier and hand each root decision to one engine instance as a
   rank-ordered task. Sound for DPOR because full expansion is a superset
   of any backtrack set the analysis could compute at the root, so race
   reversals never need to reach into a task's frozen prefix; the split is
   applied identically at [domains = 1], so reports are byte-identical
   across domain counts by construction (per-task run sets don't depend on
   which worker claims the task). The cost is bounded reduction loss at
   the root only: at most a factor of the root frontier width. *)
let exhaustive_strategy_collect ?(plan = []) ~strategy ?(domains = 1) ~setup
    ~fuel ?max_runs ~init ~f () =
  match strategy with
  | Dfs ->
      exhaustive_collect ~plan ~domains ~setup ~fuel ?max_runs ~init ~f ()
  | _ ->
      let restart () = Runner.start ~plan ~setup () in
      let roots = Runner.frontier (restart ()) in
      if roots = [] || fuel = 0 then begin
        let acc = init () in
        let o = Runner.outcome (restart ()) in
        f acc o;
        ( { empty_stats with runs = 1; nodes = 1; max_steps = o.Runner.steps },
          [| acc |] )
      end
      else begin
        let gate =
          match max_runs with
          | None -> None
          | Some m ->
              let remaining = Atomic.make m in
              Some (fun () -> Atomic.fetch_and_add remaining (-1) > 0)
        in
        let engine ~prefix ~f =
          match strategy with
          | Dfs -> assert false
          | Dpor -> Dpor.source ~restart ~fuel ~prefix ?gate ~f ()
          | Preemption_bounded { bound } ->
              Dpor.bounded ~cost:Dpor.Preemption ~bound ~restart ~fuel ~prefix
                ?gate ~f ()
          | Delay_bounded { bound } ->
              Dpor.bounded ~cost:Dpor.Delay ~bound ~restart ~fuel ~prefix
                ?gate ~f ()
        in
        let tasks = Array.of_list roots in
        let eff_domains =
          if domains <= 1 then 1
          else
            max 1
              (min (Par_explore.effective_domains domains) (Array.length tasks))
        in
        let run_task _rank d =
          let acc = init () in
          let stats = engine ~prefix:[ d ] ~f:(fun o -> f acc o) in
          (stats, acc)
        in
        let results, stolen =
          Par_explore.map_tasks ~domains:eff_domains ~f:run_task tasks
        in
        let stats =
          Array.fold_left
            (fun s (st, _) -> merge_stats s st)
            empty_stats results
        in
        let stats =
          {
            stats with
            tasks_stolen = stolen;
            domains_used = eff_domains;
            domains_requested = domains;
          }
        in
        (stats, Array.map snd results)
      end

let exhaustive_strategy ?plan ~strategy ?domains ~setup ~fuel ?max_runs ~f ()
    =
  fst
    (exhaustive_strategy_collect ?plan ~strategy ?domains ~setup ~fuel
       ?max_runs
       ~init:(fun () -> ())
       ~f:(fun () o -> f o)
       ())

(* Replay a (witness) schedule through the vector-clock analysis and report
   its direct racing step pairs — the "why this interleaving matters" data
   of a minimized counterexample. *)
let races_of_exec exec schedule =
  let tracker = ref (Deps.tracker ()) in
  let races = ref [] in
  List.iter
    (fun (d : Runner.decision) ->
      let frontier = Runner.frontier exec in
      let n_decisions =
        List.length
          (List.filter (fun (x : Runner.decision) -> x.thread = d.thread) frontier)
      in
      let label = Runner.step exec d in
      let recorded = Runner.last_step_accesses exec in
      let eff = Dpor.classify ~thread:d.thread ~n_decisions ~label ~recorded in
      let tracker', st, rs = Deps.observe !tracker eff in
      tracker := tracker';
      List.iter
        (fun (earlier : Deps.step) ->
          races :=
            {
              Cal.Witness.r_loc = Deps.race_loc earlier st;
              r_thread_a = earlier.Deps.st_thread;
              r_step_a = earlier.Deps.st_index;
              r_thread_b = st.Deps.st_thread;
              r_step_b = st.Deps.st_index;
            }
            :: !races)
        rs)
    schedule;
  List.rev !races

let races_of ?(plan = []) ~setup schedule =
  races_of_exec (Runner.start ~plan ~setup ()) schedule

let races_of_durable ?(plan = []) ~setup schedule =
  races_of_exec (Runner.start_durable ~plan ~setup ()) schedule

(* ------------------------------------------------- fault exploration -- *)

type fault_stats = {
  plans : int;
  fault_runs : int;
  fault_truncated : bool;
  fault_max_steps : int;
  fault_nodes : int;
  fault_replayed_steps : int;
  fault_fingerprint_hits : int;
  fault_sleep_pruned : int;
  fault_tasks_stolen : int;
  fault_domains_used : int;
  fault_domains_requested : int;
}

let fault_stats_of ~plans (s : stats) =
  {
    plans;
    fault_runs = s.runs;
    fault_truncated = s.truncated;
    fault_max_steps = s.max_steps;
    fault_nodes = s.nodes;
    fault_replayed_steps = s.replayed_steps;
    fault_fingerprint_hits = s.fingerprint_hits;
    fault_sleep_pruned = s.sleep_pruned;
    fault_tasks_stolen = s.tasks_stolen;
    fault_domains_used = s.domains_used;
    fault_domains_requested = s.domains_requested;
  }

(* Candidate fault points of a bounded program, learned from the fault-free
   exhaustive pass: every (thread, step) pair some schedule reaches is a
   crash (and stall) point, and every fallible label occurrence some
   schedule executes is a forcible CAS failure. The union over all
   schedules is what makes the enumeration complete for the bounded
   client — a fault point reachable on any interleaving is proposed. The
   learner consumes delivered outcomes, so the fault-free pass that feeds
   it is the same pass that delivers the empty plan's outcomes — the
   fault-free state space is executed exactly once. *)
type learner = {
  learn : Runner.outcome -> unit;
  candidates : unit -> Fault.t list;
  thread_tbl : (int, int) Hashtbl.t;
  label_tbl : (string, int) Hashtbl.t;
}

let bump tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some old when old >= v -> ()
  | _ -> Hashtbl.replace tbl key v

let candidate_learner ?(delay_factors = []) () =
  let thread_max : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let label_max : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let learn (o : Runner.outcome) =
    let per_thread = Hashtbl.create 8 in
    List.iter
      (fun (d : Runner.decision) ->
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt per_thread d.thread) in
        Hashtbl.replace per_thread d.thread n;
        bump thread_max d.thread n)
      o.Runner.schedule;
    let per_label = Hashtbl.create 8 in
    List.iter
      (fun l ->
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt per_label l) in
        Hashtbl.replace per_label l n;
        bump label_max l n)
      o.Runner.fallible_steps
  in
  let candidates () =
    let crashes =
      Hashtbl.fold (fun thread steps acc -> (thread, steps) :: acc) thread_max []
      |> List.sort compare
      |> List.concat_map (fun (thread, steps) ->
             List.init steps (fun at_step -> Fault.Crash { thread; at_step }))
    in
    let fails =
      Hashtbl.fold (fun label count acc -> (label, count) :: acc) label_max []
      |> List.sort compare
      |> List.concat_map (fun (label, count) ->
             List.init count (fun i -> Fault.Fail_step { label; nth = i + 1 }))
    in
    let delays =
      Hashtbl.fold (fun thread _ acc -> thread :: acc) thread_max []
      |> List.sort Int.compare
      |> List.concat_map (fun thread ->
             List.map (fun factor -> Fault.Delay { thread; factor }) delay_factors)
    in
    crashes @ fails @ delays
  in
  { learn; candidates; thread_tbl = thread_max; label_tbl = label_max }

(* Fold one learner's observations into another. The tables hold per-key
   maxima over all delivered runs, so a bump-merge of per-task learners is
   order-independent and equals the single sequential learner exactly. *)
let absorb_learner dst src =
  Hashtbl.iter (fun k v -> bump dst.thread_tbl k v) src.thread_tbl;
  Hashtbl.iter (fun k v -> bump dst.label_tbl k v) src.label_tbl

(* Size-k subsets of [xs] in positional (lexicographic) order, lazily. *)
let rec combinations k xs () =
  if k = 0 then Seq.Cons ([], Seq.empty)
  else
    match xs with
    | [] -> Seq.Nil
    | x :: rest ->
        Seq.append
          (Seq.map (fun s -> x :: s) (combinations (k - 1) rest))
          (combinations k rest)
          ()

(* Plans of size 1..bound, smallest size first, skipping plans that crash
   the same thread twice (Fault.validate would reject them). Lazy: a
   [max_plans] cap stops the enumeration before the exponential subset
   space is ever materialised. *)
let plans_up_to ~bound candidates =
  Seq.concat_map
    (fun k -> combinations k candidates)
    (Seq.init (max bound 0) (fun i -> i + 1))
  |> Seq.filter (fun p -> Result.is_ok (Fault.validate p))

(* Take at most [n] plans, recording whether the enumeration had more. *)
let cap_plans max_plans seq =
  match max_plans with
  | None -> (seq, fun () -> false)
  | Some n ->
      let capped = ref false in
      let rec go n s () =
        if n <= 0 then begin
          (match s () with Seq.Nil -> () | Seq.Cons _ -> capped := true);
          Seq.Nil
        end
        else
          match s () with
          | Seq.Nil -> Seq.Nil
          | Seq.Cons (x, rest) -> Seq.Cons (x, go (n - 1) rest)
      in
      (go n seq, fun () -> !capped)

(* The fault sweep with a per-exploration-unit accumulator: one accumulator
   for every subtree task of the (possibly parallel) fault-free pass,
   followed by one per fault plan, all returned in canonical order. The
   fault-free pass doubles as the candidate learner — per-task learners
   are bump-merged, which reproduces the sequential learner exactly — and
   the plan fan-out is spread over the domains with the same deterministic
   work-stealing pool as the tree split. When [max_runs] is set the
   fault-free pass stays sequential: a parallel race on the shared run
   budget could truncate a different run subset and learn different fault
   candidates. *)
let exhaustive_with_faults_collect ?delay_factors ?prune ?(domains = 1) ~setup
    ~fuel ?max_runs ?preemption_bound ?max_plans ~fault_bound ~init ~f () =
  if fault_bound < 0 then invalid_arg "Explore: fault_bound must be >= 0";
  let free_domains = if max_runs = None then domains else 1 in
  let learner = candidate_learner ?delay_factors () in
  let free_stats, free_accs =
    exhaustive_collect ?prune ~domains:free_domains ~setup ~fuel ?max_runs
      ?preemption_bound
      ~init:(fun () -> (init (), candidate_learner ?delay_factors ()))
      ~f:(fun (acc, l) o ->
        if fault_bound > 0 then l.learn o;
        f acc o)
      ()
  in
  Array.iter (fun (_, l) -> absorb_learner learner l) free_accs;
  let candidates = if fault_bound = 0 then [] else learner.candidates () in
  (* the empty plan was explored above and counts against [max_plans] *)
  let plan_seq, was_capped =
    cap_plans
      (Option.map (fun m -> max 0 (m - 1)) max_plans)
      (plans_up_to ~bound:fault_bound candidates)
  in
  let plans = Array.of_list (List.of_seq plan_seq) in
  let run_plan _idx plan =
    let acc = init () in
    let stats =
      Engine.dfs
        ~restart:(fun () -> Runner.start ~plan ~setup ())
        ~fuel ?max_runs ?preemption_bound
        ~prune:(pruning_requested prune)
        ~init_path:()
        ~step_path:(fun () _ _ -> ())
        ~leaf:(fun o _ () -> f acc o)
        ()
    in
    (stats, acc)
  in
  let plan_results, stolen =
    if domains <= 1 then
      (Array.mapi run_plan plans, 0)
    else Par_explore.map_tasks ~domains ~f:run_plan plans
  in
  let merged =
    Array.fold_left
      (fun acc (s, _) -> merge_stats acc s)
      free_stats plan_results
  in
  (* Record what actually ran, not what was asked for: the plan fan-out
     spawns at most [effective_domains domains] workers (and no more than
     there are plans), which a hardware cap may silently shrink — the
     used/requested pair makes that decision visible in every report. *)
  let fan_domains =
    if domains <= 1 || Array.length plans = 0 then 1
    else max 1 (min (Par_explore.effective_domains domains) (Array.length plans))
  in
  let merged =
    {
      merged with
      truncated = merged.truncated || was_capped ();
      tasks_stolen = merged.tasks_stolen + stolen;
      domains_used = max merged.domains_used fan_domains;
      domains_requested = max merged.domains_requested (max 1 domains);
    }
  in
  let accs =
    Array.append
      (Array.map fst free_accs)
      (Array.map snd plan_results)
  in
  (fault_stats_of ~plans:(1 + Array.length plans) merged, accs)

let exhaustive_with_faults ?delay_factors ?prune ?domains ~setup ~fuel
    ?max_runs ?preemption_bound ?max_plans ~fault_bound ~f () =
  fst
    (exhaustive_with_faults_collect ?delay_factors ?prune ?domains ~setup
       ~fuel ?max_runs ?preemption_bound ?max_plans ~fault_bound
       ~init:(fun () -> ())
       ~f:(fun () o -> f o)
       ())

(* ------------------------------------------------- crash exploration -- *)

(* Crash points of a durable program are enumerated against the observed
   run lengths: the crash-free pass (or, for nested crashes, the parent
   crash plan's pass) reports the deepest run it saw, and every global step
   0..max is a candidate [Crash_system] point — including the point right
   after the last decision, where recovery runs against the final state,
   and point 0, where the system dies before any decision. The enumeration
   is lazy and smallest-first: earlier crash points run before later ones,
   depth-1 plans before their depth-2 (crash-during-recovery) children, so
   a [max_plans] budget keeps a prefix of the cheapest plans. Per-thread
   fault plans (learned exactly as in [exhaustive_with_faults]) are crossed
   with the crash points when [fault_bound > 0].

   Deliberately sequential (no [domains] knob): each plan's crash-point
   horizon depends on the runs its parent plan delivered, so the plan
   enumeration itself is a data-dependent sequential sweep — see DESIGN
   §2.11 for why this never parallelizes. *)
let exhaustive_with_crashes ?delay_factors ~setup ~fuel ?max_runs
    ?preemption_bound ?max_plans ?(max_crash_depth = 1) ?(fault_bound = 0) ~f
    () =
  if fault_bound < 0 then invalid_arg "Explore: fault_bound must be >= 0";
  if max_crash_depth < 0 then
    invalid_arg "Explore: max_crash_depth must be >= 0";
  let budget = ref (match max_plans with Some m -> m | None -> max_int) in
  let capped = ref false in
  let exception Budget in
  let acc = ref empty_stats in
  let nplans = ref 0 in
  (* Run one plan exhaustively; returns the deepest run it delivered (the
     crash-point horizon for this plan's children). *)
  let run_plan ?(learn = fun _ -> ()) plan =
    if !budget <= 0 then begin
      capped := true;
      raise Budget
    end;
    decr budget;
    incr nplans;
    let smax = ref 0 in
    let s =
      exhaustive_durable ~plan ~setup ~fuel ?max_runs ?preemption_bound
        ~f:(fun o ->
          if o.Runner.steps > !smax then smax := o.Runner.steps;
          learn o;
          f o)
        ()
    in
    acc := merge_stats !acc s;
    !smax
  in
  let rec crash_sweep prefix ~last_at ~horizon ~depth =
    if depth <= max_crash_depth then
      for s = last_at + 1 to horizon do
        let plan = prefix @ [ Fault.Crash_system { at_step = s } ] in
        let horizon' = run_plan plan in
        crash_sweep plan ~last_at:s ~horizon:horizon' ~depth:(depth + 1)
      done
  in
  (try
     let learner = candidate_learner ?delay_factors () in
     let free_horizon = run_plan ~learn:learner.learn [] in
     crash_sweep [] ~last_at:(-1) ~horizon:free_horizon ~depth:1;
     if fault_bound > 0 then
       Seq.iter
         (fun fp ->
           let horizon = run_plan fp in
           crash_sweep fp ~last_at:(-1) ~horizon ~depth:1)
         (plans_up_to ~bound:fault_bound (learner.candidates ()))
   with Budget -> ());
  fault_stats_of ~plans:!nplans
    { !acc with truncated = !acc.truncated || !capped }

(* ------------------------------------------------- liveness watchdog -- *)

type run_verdict =
  | Completed
  | Deadlocked
  | Starved of int list
  | Livelocked

let pp_verdict ppf = function
  | Completed -> Fmt.pf ppf "completed"
  | Deadlocked -> Fmt.pf ppf "deadlocked"
  | Starved ts ->
      Fmt.pf ppf "starved(%a)" (Fmt.list ~sep:Fmt.comma Fmt.int) ts
  | Livelocked -> Fmt.pf ppf "livelocked"

let enabled_threads frontier =
  List.map (fun (d : Runner.decision) -> d.thread) frontier
  |> List.sort_uniq Int.compare

(* Advance the per-thread idle counters across one decision: a thread that
   was enabled but not chosen grows its stretch; the chosen thread and
   disabled threads reset. Returns the counters keyed by thread. A thread
   whose stretch ever reached [window] stays in the starving set even if
   it is scheduled later: the schedule was unfair at some point, which
   permanently excuses the run (see DESIGN §2.8). *)
let bump_idle ~window idle enabled chosen starving =
  let idle' =
    List.filter_map
      (fun t ->
        if t = chosen then None
        else Some (t, 1 + Option.value ~default:0 (List.assoc_opt t idle)))
      enabled
  in
  let newly =
    List.filter_map (fun (t, n) -> if n >= window then Some t else None) idle'
  in
  (idle', List.sort_uniq Int.compare (newly @ starving))

(* Single pass over the live execution: the frontier before each decision
   feeds the idle counters, no per-decision prefix replays. *)
let watchdog ?(plan = []) ~setup ~window sched =
  if window < 1 then invalid_arg "Explore.watchdog: window must be >= 1";
  let e = Runner.start ~plan ~setup () in
  let rec go idle starving = function
    | [] ->
        let outcome = Runner.outcome e in
        if outcome.Runner.complete then Completed
        else if Runner.frontier e = [] then Deadlocked
        else if starving <> [] then Starved starving
        else Livelocked
    | (d : Runner.decision) :: rest ->
        let idle, starving =
          bump_idle ~window idle
            (enabled_threads (Runner.frontier e))
            d.thread starving
        in
        ignore (Runner.step e d);
        go idle starving rest
  in
  go [] [] sched

type liveness_stats = {
  live_runs : int;
  live_completed : int;
  live_deadlocked : int;
  live_starved : int;
  live_livelocked : int;
  livelocks : (Runner.schedule * Fault.plan) list;
  live_truncated : bool;
}

(* The incremental DFS with the watchdog's idle counters as the per-path
   state: every maximal run is classified in the single pass that explores
   it. [on_outcome] additionally observes every delivered outcome (the
   fault sweep hooks the candidate learner in here). Pruning is disabled:
   the idle counters are path state the fingerprints do not cover.

   Deliberately sequential: the idle counters are per-path state threaded
   through the DFS spine, so a subtree task would need the exact counter
   state of its prefix — cheap to reconstruct, but the witness cap (first
   10 livelocks in canonical order) and the fairness classification are
   verdict-relevant order-dependent state; keeping the watchdog on the
   sequential engine preserves its behaviour exactly (DESIGN §2.11). *)
let liveness_core ?(plan = []) ~setup ~fuel ~window ?max_runs ?preemption_bound
    ?(on_outcome = fun _ -> ()) () =
  if window < 1 then invalid_arg "Explore.liveness: window must be >= 1";
  let completed = ref 0 and deadlocked = ref 0 in
  let starved = ref 0 and livelocked = ref 0 in
  let witnesses = ref [] in
  let leaf (o : Runner.outcome) frontier (_, starving) =
    on_outcome o;
    if o.Runner.complete then incr completed
    else if frontier = [] then incr deadlocked
    else if starving <> [] then incr starved
    else begin
      incr livelocked;
      if List.length !witnesses < 10 then
        witnesses := (o.Runner.schedule, plan) :: !witnesses
    end
  in
  let step_path (idle, starving) frontier (d : Runner.decision) =
    bump_idle ~window idle (enabled_threads frontier) d.thread starving
  in
  let stats =
    Engine.dfs
      ~restart:(fun () -> Runner.start ~plan ~setup ())
      ~fuel ?max_runs ?preemption_bound ~prune:false ~init_path:([], [])
      ~step_path ~leaf ()
  in
  {
    live_runs = stats.runs;
    live_completed = !completed;
    live_deadlocked = !deadlocked;
    live_starved = !starved;
    live_livelocked = !livelocked;
    livelocks = List.rev !witnesses;
    live_truncated = stats.truncated;
  }

let liveness ?plan ~setup ~fuel ~window ?max_runs ?preemption_bound () =
  liveness_core ?plan ~setup ~fuel ~window ?max_runs ?preemption_bound ()

let merge_liveness a b =
  {
    live_runs = a.live_runs + b.live_runs;
    live_completed = a.live_completed + b.live_completed;
    live_deadlocked = a.live_deadlocked + b.live_deadlocked;
    live_starved = a.live_starved + b.live_starved;
    live_livelocked = a.live_livelocked + b.live_livelocked;
    livelocks =
      (let room = 10 - List.length a.livelocks in
       a.livelocks @ List.filteri (fun i _ -> i < room) b.livelocks);
    live_truncated = a.live_truncated || b.live_truncated;
  }

(* The watchdog over the fault sweep: classify every run of every plan of
   at most [fault_bound] faults (the plan enumeration of
   [exhaustive_with_faults]). The fault-free classification pass doubles
   as the candidate learner, so the fault-free state space is executed
   once. Crashed and stalled threads are never enabled, so their
   non-termination classifies as deadlock, not livelock. *)
let liveness_with_faults ?delay_factors ~setup ~fuel ~window ?max_runs
    ?preemption_bound ?max_plans ~fault_bound () =
  if fault_bound < 0 then invalid_arg "Explore: fault_bound must be >= 0";
  let learner = candidate_learner ?delay_factors () in
  let free =
    liveness_core ~setup ~fuel ~window ?max_runs ?preemption_bound
      ~on_outcome:learner.learn ()
  in
  let candidates = if fault_bound = 0 then [] else learner.candidates () in
  let plan_seq, was_capped =
    cap_plans
      (Option.map (fun m -> max 0 (m - 1)) max_plans)
      (plans_up_to ~bound:fault_bound candidates)
  in
  let nplans = ref 1 in
  let merged =
    Seq.fold_left
      (fun acc plan ->
        incr nplans;
        merge_liveness acc
          (liveness_core ~plan ~setup ~fuel ~window ?max_runs ?preemption_bound
             ()))
      free plan_seq
  in
  (!nplans, { merged with live_truncated = merged.live_truncated || was_capped () })
