type stats = {
  runs : int;
  truncated : bool;
  max_steps : int;
  nodes : int;
  replayed_steps : int;
  fingerprint_hits : int;
  sleep_pruned : int;
}

let empty_stats =
  {
    runs = 0;
    truncated = false;
    max_steps = 0;
    nodes = 0;
    replayed_steps = 0;
    fingerprint_hits = 0;
    sleep_pruned = 0;
  }

exception Stop

(* ------------------------------------------------- pruning controls --- *)

let env_flag v =
  match Sys.getenv_opt v with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

(* Pruning is an opt-in underapproximation of the run {e set} (it must
   preserve verdicts, not run counts), so the default is off; callers opt
   in per call ([~prune:true]) or globally (CAL_EXPLORE_PRUNE=1). The
   cross-check mode CAL_EXPLORE_NO_PRUNE=1 force-disables pruning even for
   explicit opt-ins: a pruned and an unpruned pass must reach identical
   verdicts. *)
let pruning_requested prune =
  if env_flag "CAL_EXPLORE_NO_PRUNE" then false
  else match prune with Some p -> p | None -> env_flag "CAL_EXPLORE_PRUNE"

(* Commutation heuristic for sleep sets, from the step labels: two steps
   commute when they touch distinct contended locations (the "…@loc" label
   convention of the structures) or when either is a pure yield. Steps
   without a location tag are conservatively treated as dependent. *)
let loc_of label =
  match String.index_opt label '@' with
  | Some i -> Some (String.sub label i (String.length label - i))
  | None -> None

let commutes l1 l2 =
  l1 = "yield" || l2 = "yield"
  ||
  match (loc_of l1, loc_of l2) with Some a, Some b -> a <> b | _ -> false

let independent ((d1 : Runner.decision), l1) ((d2 : Runner.decision), l2) =
  d1.thread <> d2.thread && commutes l1 l2

(* --------------------------------------------- incremental DFS engine -- *)

(* One engine under every checker. The DFS keeps a single live execution
   and descends by {!Runner.step} — O(1) per tree edge. Backtracking to a
   sibling re-establishes the branch point with one prefix replay (the
   shared heap the program mutates cannot be checkpointed, so it is
   rebuilt by re-execution): the total work is O(runs × depth) program
   steps, against O(nodes × depth) for the seed's whole-prefix-replay
   engine. Per-path checker state (the liveness idle counters) is threaded
   through [step_path]/[leaf] as immutable values cloned on branch.

   With [prune] set, two reductions apply, both counted in the stats:
   - fingerprint memoization: a node whose {!Runner.fingerprint} was
     already visited is cut off (its subtree was explored from the
     equivalent state);
   - sleep sets: after exploring sibling [d1], the decision [d1] is put to
     sleep inside the later siblings' subtrees and skipped there until a
     dependent (non-commuting) step wakes it — the classic partial-order
     argument that exploring [d1;d2] and [d2;d1] twice is redundant when
     the two steps commute. *)
let dfs ~restart ~fuel ?max_runs ?preemption_bound ~prune ~init_path
    ~step_path ~leaf () =
  let exec = ref (restart ()) in
  let runs = ref 0 and truncated = ref false and max_steps = ref 0 in
  let nodes = ref 0 and replayed = ref 0 in
  let fp_hits = ref 0 and slept = ref 0 in
  let memo : (string, unit) Hashtbl.t = Hashtbl.create 512 in
  let within_budget used =
    match preemption_bound with None -> true | Some b -> used <= b
  in
  let deliver frontier path =
    let o = Runner.outcome !exec in
    leaf o frontier path;
    incr runs;
    if o.Runner.steps > !max_steps then max_steps := o.Runner.steps;
    match max_runs with
    | Some m when !runs >= m ->
        truncated := true;
        raise Stop
    | _ -> ()
  in
  (* Position the execution at the node reached by [prefix_rev]: free while
     descending along the spine; one fresh prefix replay after returning
     from an earlier sibling's subtree. *)
  let ensure_at depth prefix_rev =
    if Runner.steps_done !exec <> depth then begin
      let e = restart () in
      List.iter (fun d -> ignore (Runner.step e d)) (List.rev prefix_rev);
      replayed := !replayed + depth;
      exec := e
    end
  in
  let rec node ~prefix_rev ~depth ~last ~preemptions ~sleep ~path =
    incr nodes;
    let frontier = Runner.frontier !exec in
    if frontier = [] || depth >= fuel then deliver frontier path
    else begin
      let pruned_here =
        prune
        &&
        let fp = Runner.fingerprint !exec in
        if Hashtbl.mem memo fp then true
        else begin
          Hashtbl.add memo fp ();
          false
        end
      in
      if pruned_here then incr fp_hits
      else begin
        let labelled =
          List.map
            (fun (d : Runner.decision) ->
              (d, Option.value ~default:"" (Runner.head_label !exec d.thread)))
            frontier
        in
        let last_enabled =
          List.exists (fun (d : Runner.decision) -> Some d.thread = last) frontier
        in
        let explored = ref [] in
        List.iter
          (fun ((d : Runner.decision), l) ->
            let cost =
              if last_enabled && Some d.thread <> last then preemptions + 1
              else preemptions
            in
            if within_budget cost then begin
              if
                prune
                && List.exists
                     (fun ((s : Runner.decision), _) ->
                       s.thread = d.thread && s.branch = d.branch)
                     sleep
              then incr slept
              else begin
                ensure_at depth prefix_rev;
                let path' = step_path path frontier d in
                ignore (Runner.step !exec d);
                let sleep' =
                  if prune then
                    List.filter
                      (fun s -> independent s (d, l))
                      (sleep @ List.rev !explored)
                  else []
                in
                node ~prefix_rev:(d :: prefix_rev) ~depth:(depth + 1)
                  ~last:(Some d.thread) ~preemptions:cost ~sleep:sleep'
                  ~path:path';
                explored := (d, l) :: !explored
              end
            end)
          labelled
      end
    end
  in
  (try
     node ~prefix_rev:[] ~depth:0 ~last:None ~preemptions:0 ~sleep:[]
       ~path:init_path
   with Stop -> ());
  {
    runs = !runs;
    truncated = !truncated;
    max_steps = !max_steps;
    nodes = !nodes;
    replayed_steps = !replayed;
    fingerprint_hits = !fp_hits;
    sleep_pruned = !slept;
  }

let exhaustive ?(plan = []) ?prune ~setup ~fuel ?max_runs ?preemption_bound ~f
    () =
  dfs
    ~restart:(fun () -> Runner.start ~plan ~setup ())
    ~fuel ?max_runs ?preemption_bound ~prune:(pruning_requested prune)
    ~init_path:()
    ~step_path:(fun () _ _ -> ())
    ~leaf:(fun o _ () -> f o)
    ()

(* Exhaustive exploration of one durable program under one (possibly
   crashing) plan. Always unpruned: persistent-cell contents are not part
   of the state fingerprint, so memoization across crash plans would be
   unsound. *)
let exhaustive_durable ~plan ~setup ~fuel ?max_runs ?preemption_bound ~f () =
  dfs
    ~restart:(fun () -> Runner.start_durable ~plan ~setup ())
    ~fuel ?max_runs ?preemption_bound ~prune:false ~init_path:()
    ~step_path:(fun () _ _ -> ())
    ~leaf:(fun o _ () -> f o)
    ()

(* The seed's stateless engine — a whole-prefix replay at every DFS node —
   kept as the reference implementation for cross-checks and the B12
   before/after comparison. [replayed_steps] counts every program step it
   executes. *)
let exhaustive_via_replay ?(plan = []) ~setup ~fuel ?max_runs ?preemption_bound
    ~f () =
  let runs = ref 0 and truncated = ref false and max_steps = ref 0 in
  let nodes = ref 0 and replayed = ref 0 in
  let deliver outcome =
    f outcome;
    incr runs;
    if outcome.Runner.steps > !max_steps then max_steps := outcome.Runner.steps;
    match max_runs with
    | Some m when !runs >= m ->
        truncated := true;
        raise Stop
    | _ -> ()
  in
  let within_budget used =
    match preemption_bound with None -> true | Some b -> used <= b
  in
  let rec explore prefix ~last ~preemptions =
    incr nodes;
    replayed := !replayed + List.length prefix;
    let outcome, frontier = Runner.replay ~plan ~setup prefix in
    if frontier = [] || outcome.Runner.steps >= fuel then deliver outcome
    else begin
      let last_enabled =
        List.exists (fun (d : Runner.decision) -> Some d.thread = last) frontier
      in
      List.iter
        (fun (d : Runner.decision) ->
          let cost =
            if last_enabled && Some d.thread <> last then preemptions + 1
            else preemptions
          in
          if within_budget cost then
            explore (prefix @ [ d ]) ~last:(Some d.thread) ~preemptions:cost)
        frontier
    end
  in
  (try explore [] ~last:None ~preemptions:0 with Stop -> ());
  {
    runs = !runs;
    truncated = !truncated;
    max_steps = !max_steps;
    nodes = !nodes;
    replayed_steps = !replayed;
    fingerprint_hits = 0;
    sleep_pruned = 0;
  }

let random ~setup ~fuel ~runs ~seed ~f () =
  let rng = Rng.create ~seed in
  let max_steps = ref 0 in
  for _ = 1 to runs do
    let outcome = Runner.run_random ~setup ~fuel ~rng () in
    if outcome.Runner.steps > !max_steps then max_steps := outcome.Runner.steps;
    f outcome
  done;
  { empty_stats with runs; max_steps = !max_steps }

let check_all ?plan ?prune ~setup ~fuel ?max_runs ?preemption_bound ~p () =
  let bad = ref None in
  let wrapped outcome =
    if !bad = None && not (p outcome) then begin
      bad := Some outcome;
      raise Stop
    end
  in
  let stats =
    exhaustive ?plan ?prune ~setup ~fuel ?max_runs ?preemption_bound ~f:wrapped
      ()
  in
  (* [truncated] means the budget capped the search, nothing else: a
     counterexample stop is reported by the [Error] constructor alone, so
     callers can tell an exhausted-but-failing search from a capped one. *)
  match !bad with None -> Ok stats | Some o -> Error (o, stats)

(* Iterative context bounding doubles as counterexample minimisation: the
   first bound at which a violation appears is the bug's preemption depth,
   and the witness schedule has that few context switches. *)
let failure_depth ~setup ~fuel ?(max_bound = 8) ?max_runs ~p () =
  let rec go bound last_stats =
    if bound > max_bound then `Holds last_stats
    else
      match check_all ~setup ~fuel ?max_runs ~preemption_bound:bound ~p () with
      | Error (outcome, _) -> `Fails_at (bound, outcome)
      | Ok stats -> go (bound + 1) stats
  in
  go 0 empty_stats

(* ------------------------------------------------- fault exploration -- *)

type fault_stats = {
  plans : int;
  fault_runs : int;
  fault_truncated : bool;
  fault_max_steps : int;
  fault_nodes : int;
  fault_replayed_steps : int;
  fault_fingerprint_hits : int;
  fault_sleep_pruned : int;
}

let merge_stats a b =
  {
    runs = a.runs + b.runs;
    truncated = a.truncated || b.truncated;
    max_steps = max a.max_steps b.max_steps;
    nodes = a.nodes + b.nodes;
    replayed_steps = a.replayed_steps + b.replayed_steps;
    fingerprint_hits = a.fingerprint_hits + b.fingerprint_hits;
    sleep_pruned = a.sleep_pruned + b.sleep_pruned;
  }

(* Candidate fault points of a bounded program, learned from the fault-free
   exhaustive pass: every (thread, step) pair some schedule reaches is a
   crash (and stall) point, and every fallible label occurrence some
   schedule executes is a forcible CAS failure. The union over all
   schedules is what makes the enumeration complete for the bounded
   client — a fault point reachable on any interleaving is proposed. The
   learner consumes delivered outcomes, so the fault-free pass that feeds
   it is the same pass that delivers the empty plan's outcomes — the
   fault-free state space is executed exactly once. *)
type learner = {
  learn : Runner.outcome -> unit;
  candidates : unit -> Fault.t list;
}

let candidate_learner ?(delay_factors = []) () =
  let thread_max : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let label_max : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some old when old >= v -> ()
    | _ -> Hashtbl.replace tbl key v
  in
  let learn (o : Runner.outcome) =
    let per_thread = Hashtbl.create 8 in
    List.iter
      (fun (d : Runner.decision) ->
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt per_thread d.thread) in
        Hashtbl.replace per_thread d.thread n;
        bump thread_max d.thread n)
      o.Runner.schedule;
    let per_label = Hashtbl.create 8 in
    List.iter
      (fun l ->
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt per_label l) in
        Hashtbl.replace per_label l n;
        bump label_max l n)
      o.Runner.fallible_steps
  in
  let candidates () =
    let crashes =
      Hashtbl.fold (fun thread steps acc -> (thread, steps) :: acc) thread_max []
      |> List.sort compare
      |> List.concat_map (fun (thread, steps) ->
             List.init steps (fun at_step -> Fault.Crash { thread; at_step }))
    in
    let fails =
      Hashtbl.fold (fun label count acc -> (label, count) :: acc) label_max []
      |> List.sort compare
      |> List.concat_map (fun (label, count) ->
             List.init count (fun i -> Fault.Fail_step { label; nth = i + 1 }))
    in
    let delays =
      Hashtbl.fold (fun thread _ acc -> thread :: acc) thread_max []
      |> List.sort Int.compare
      |> List.concat_map (fun thread ->
             List.map (fun factor -> Fault.Delay { thread; factor }) delay_factors)
    in
    crashes @ fails @ delays
  in
  { learn; candidates }

(* Size-k subsets of [xs] in positional (lexicographic) order, lazily. *)
let rec combinations k xs () =
  if k = 0 then Seq.Cons ([], Seq.empty)
  else
    match xs with
    | [] -> Seq.Nil
    | x :: rest ->
        Seq.append
          (Seq.map (fun s -> x :: s) (combinations (k - 1) rest))
          (combinations k rest)
          ()

(* Plans of size 1..bound, smallest size first, skipping plans that crash
   the same thread twice (Fault.validate would reject them). Lazy: a
   [max_plans] cap stops the enumeration before the exponential subset
   space is ever materialised. *)
let plans_up_to ~bound candidates =
  Seq.concat_map
    (fun k -> combinations k candidates)
    (Seq.init (max bound 0) (fun i -> i + 1))
  |> Seq.filter (fun p -> Result.is_ok (Fault.validate p))

(* Take at most [n] plans, recording whether the enumeration had more. *)
let cap_plans max_plans seq =
  match max_plans with
  | None -> (seq, fun () -> false)
  | Some n ->
      let capped = ref false in
      let rec go n s () =
        if n <= 0 then begin
          (match s () with Seq.Nil -> () | Seq.Cons _ -> capped := true);
          Seq.Nil
        end
        else
          match s () with
          | Seq.Nil -> Seq.Nil
          | Seq.Cons (x, rest) -> Seq.Cons (x, go (n - 1) rest)
      in
      (go n seq, fun () -> !capped)

let exhaustive_with_faults ?delay_factors ?prune ~setup ~fuel ?max_runs
    ?preemption_bound ?max_plans ~fault_bound ~f () =
  if fault_bound < 0 then invalid_arg "Explore: fault_bound must be >= 0";
  (* The fault-free pass doubles as the candidate learner: its outcomes are
     the empty plan's outcomes, delivered to [f] as it learns. *)
  let candidates, free_stats =
    if fault_bound = 0 then
      ([], exhaustive ?prune ~setup ~fuel ?max_runs ?preemption_bound ~f ())
    else begin
      let learner = candidate_learner ?delay_factors () in
      let stats =
        exhaustive ?prune ~setup ~fuel ?max_runs ?preemption_bound
          ~f:(fun o ->
            learner.learn o;
            f o)
          ()
      in
      (learner.candidates (), stats)
    end
  in
  (* the empty plan was explored above and counts against [max_plans] *)
  let plan_seq, was_capped =
    cap_plans
      (Option.map (fun m -> max 0 (m - 1)) max_plans)
      (plans_up_to ~bound:fault_bound candidates)
  in
  let nplans = ref 1 in
  let acc = ref free_stats in
  Seq.iter
    (fun plan ->
      incr nplans;
      let s =
        exhaustive ~plan ?prune ~setup ~fuel ?max_runs ?preemption_bound ~f ()
      in
      acc := merge_stats !acc s)
    plan_seq;
  {
    plans = !nplans;
    fault_runs = !acc.runs;
    fault_truncated = !acc.truncated || was_capped ();
    fault_max_steps = !acc.max_steps;
    fault_nodes = !acc.nodes;
    fault_replayed_steps = !acc.replayed_steps;
    fault_fingerprint_hits = !acc.fingerprint_hits;
    fault_sleep_pruned = !acc.sleep_pruned;
  }

(* ------------------------------------------------- crash exploration -- *)

(* Crash points of a durable program are enumerated against the observed
   run lengths: the crash-free pass (or, for nested crashes, the parent
   crash plan's pass) reports the deepest run it saw, and every global step
   0..max is a candidate [Crash_system] point — including the point right
   after the last decision, where recovery runs against the final state,
   and point 0, where the system dies before any decision. The enumeration
   is lazy and smallest-first: earlier crash points run before later ones,
   depth-1 plans before their depth-2 (crash-during-recovery) children, so
   a [max_plans] budget keeps a prefix of the cheapest plans. Per-thread
   fault plans (learned exactly as in [exhaustive_with_faults]) are crossed
   with the crash points when [fault_bound > 0]. *)
let exhaustive_with_crashes ?delay_factors ~setup ~fuel ?max_runs
    ?preemption_bound ?max_plans ?(max_crash_depth = 1) ?(fault_bound = 0) ~f
    () =
  if fault_bound < 0 then invalid_arg "Explore: fault_bound must be >= 0";
  if max_crash_depth < 0 then
    invalid_arg "Explore: max_crash_depth must be >= 0";
  let budget = ref (match max_plans with Some m -> m | None -> max_int) in
  let capped = ref false in
  let exception Budget in
  let acc = ref empty_stats in
  let nplans = ref 0 in
  (* Run one plan exhaustively; returns the deepest run it delivered (the
     crash-point horizon for this plan's children). *)
  let run_plan ?(learn = fun _ -> ()) plan =
    if !budget <= 0 then begin
      capped := true;
      raise Budget
    end;
    decr budget;
    incr nplans;
    let smax = ref 0 in
    let s =
      exhaustive_durable ~plan ~setup ~fuel ?max_runs ?preemption_bound
        ~f:(fun o ->
          if o.Runner.steps > !smax then smax := o.Runner.steps;
          learn o;
          f o)
        ()
    in
    acc := merge_stats !acc s;
    !smax
  in
  let rec crash_sweep prefix ~last_at ~horizon ~depth =
    if depth <= max_crash_depth then
      for s = last_at + 1 to horizon do
        let plan = prefix @ [ Fault.Crash_system { at_step = s } ] in
        let horizon' = run_plan plan in
        crash_sweep plan ~last_at:s ~horizon:horizon' ~depth:(depth + 1)
      done
  in
  (try
     let learner = candidate_learner ?delay_factors () in
     let free_horizon = run_plan ~learn:learner.learn [] in
     crash_sweep [] ~last_at:(-1) ~horizon:free_horizon ~depth:1;
     if fault_bound > 0 then
       Seq.iter
         (fun fp ->
           let horizon = run_plan fp in
           crash_sweep fp ~last_at:(-1) ~horizon ~depth:1)
         (plans_up_to ~bound:fault_bound (learner.candidates ()))
   with Budget -> ());
  {
    plans = !nplans;
    fault_runs = !acc.runs;
    fault_truncated = !acc.truncated || !capped;
    fault_max_steps = !acc.max_steps;
    fault_nodes = !acc.nodes;
    fault_replayed_steps = !acc.replayed_steps;
    fault_fingerprint_hits = !acc.fingerprint_hits;
    fault_sleep_pruned = !acc.sleep_pruned;
  }

(* ------------------------------------------------- liveness watchdog -- *)

type run_verdict =
  | Completed
  | Deadlocked
  | Starved of int list
  | Livelocked

let pp_verdict ppf = function
  | Completed -> Fmt.pf ppf "completed"
  | Deadlocked -> Fmt.pf ppf "deadlocked"
  | Starved ts ->
      Fmt.pf ppf "starved(%a)" (Fmt.list ~sep:Fmt.comma Fmt.int) ts
  | Livelocked -> Fmt.pf ppf "livelocked"

let enabled_threads frontier =
  List.map (fun (d : Runner.decision) -> d.thread) frontier
  |> List.sort_uniq Int.compare

(* Advance the per-thread idle counters across one decision: a thread that
   was enabled but not chosen grows its stretch; the chosen thread and
   disabled threads reset. Returns the counters keyed by thread. A thread
   whose stretch ever reached [window] stays in the starving set even if
   it is scheduled later: the schedule was unfair at some point, which
   permanently excuses the run (see DESIGN §2.8). *)
let bump_idle ~window idle enabled chosen starving =
  let idle' =
    List.filter_map
      (fun t ->
        if t = chosen then None
        else Some (t, 1 + Option.value ~default:0 (List.assoc_opt t idle)))
      enabled
  in
  let newly =
    List.filter_map (fun (t, n) -> if n >= window then Some t else None) idle'
  in
  (idle', List.sort_uniq Int.compare (newly @ starving))

(* Single pass over the live execution: the frontier before each decision
   feeds the idle counters, no per-decision prefix replays. *)
let watchdog ?(plan = []) ~setup ~window sched =
  if window < 1 then invalid_arg "Explore.watchdog: window must be >= 1";
  let e = Runner.start ~plan ~setup () in
  let rec go idle starving = function
    | [] ->
        let outcome = Runner.outcome e in
        if outcome.Runner.complete then Completed
        else if Runner.frontier e = [] then Deadlocked
        else if starving <> [] then Starved starving
        else Livelocked
    | (d : Runner.decision) :: rest ->
        let idle, starving =
          bump_idle ~window idle
            (enabled_threads (Runner.frontier e))
            d.thread starving
        in
        ignore (Runner.step e d);
        go idle starving rest
  in
  go [] [] sched

type liveness_stats = {
  live_runs : int;
  live_completed : int;
  live_deadlocked : int;
  live_starved : int;
  live_livelocked : int;
  livelocks : (Runner.schedule * Fault.plan) list;
  live_truncated : bool;
}

(* The incremental DFS with the watchdog's idle counters as the per-path
   state: every maximal run is classified in the single pass that explores
   it. [on_outcome] additionally observes every delivered outcome (the
   fault sweep hooks the candidate learner in here). Pruning is disabled:
   the idle counters are path state the fingerprints do not cover. *)
let liveness_core ?(plan = []) ~setup ~fuel ~window ?max_runs ?preemption_bound
    ?(on_outcome = fun _ -> ()) () =
  if window < 1 then invalid_arg "Explore.liveness: window must be >= 1";
  let completed = ref 0 and deadlocked = ref 0 in
  let starved = ref 0 and livelocked = ref 0 in
  let witnesses = ref [] in
  let leaf (o : Runner.outcome) frontier (_, starving) =
    on_outcome o;
    if o.Runner.complete then incr completed
    else if frontier = [] then incr deadlocked
    else if starving <> [] then incr starved
    else begin
      incr livelocked;
      if List.length !witnesses < 10 then
        witnesses := (o.Runner.schedule, plan) :: !witnesses
    end
  in
  let step_path (idle, starving) frontier (d : Runner.decision) =
    bump_idle ~window idle (enabled_threads frontier) d.thread starving
  in
  let stats =
    dfs
      ~restart:(fun () -> Runner.start ~plan ~setup ())
      ~fuel ?max_runs ?preemption_bound ~prune:false ~init_path:([], [])
      ~step_path ~leaf ()
  in
  {
    live_runs = stats.runs;
    live_completed = !completed;
    live_deadlocked = !deadlocked;
    live_starved = !starved;
    live_livelocked = !livelocked;
    livelocks = List.rev !witnesses;
    live_truncated = stats.truncated;
  }

let liveness ?plan ~setup ~fuel ~window ?max_runs ?preemption_bound () =
  liveness_core ?plan ~setup ~fuel ~window ?max_runs ?preemption_bound ()

let merge_liveness a b =
  {
    live_runs = a.live_runs + b.live_runs;
    live_completed = a.live_completed + b.live_completed;
    live_deadlocked = a.live_deadlocked + b.live_deadlocked;
    live_starved = a.live_starved + b.live_starved;
    live_livelocked = a.live_livelocked + b.live_livelocked;
    livelocks =
      (let room = 10 - List.length a.livelocks in
       a.livelocks @ List.filteri (fun i _ -> i < room) b.livelocks);
    live_truncated = a.live_truncated || b.live_truncated;
  }

(* The watchdog over the fault sweep: classify every run of every plan of
   at most [fault_bound] faults (the plan enumeration of
   [exhaustive_with_faults]). The fault-free classification pass doubles
   as the candidate learner, so the fault-free state space is executed
   once. Crashed and stalled threads are never enabled, so their
   non-termination classifies as deadlock, not livelock. *)
let liveness_with_faults ?delay_factors ~setup ~fuel ~window ?max_runs
    ?preemption_bound ?max_plans ~fault_bound () =
  if fault_bound < 0 then invalid_arg "Explore: fault_bound must be >= 0";
  let learner = candidate_learner ?delay_factors () in
  let free =
    liveness_core ~setup ~fuel ~window ?max_runs ?preemption_bound
      ~on_outcome:learner.learn ()
  in
  let candidates = if fault_bound = 0 then [] else learner.candidates () in
  let plan_seq, was_capped =
    cap_plans
      (Option.map (fun m -> max 0 (m - 1)) max_plans)
      (plans_up_to ~bound:fault_bound candidates)
  in
  let nplans = ref 1 in
  let merged =
    Seq.fold_left
      (fun acc plan ->
        incr nplans;
        merge_liveness acc
          (liveness_core ~plan ~setup ~fuel ~window ?max_runs ?preemption_bound
             ()))
      free plan_seq
  in
  (!nplans, { merged with live_truncated = merged.live_truncated || was_capped () })
