(** Randomized schedulers for sampled checking (PCT-style).

    Exhaustive exploration caps out near fuel ~16–18 even pruned and
    parallel; beyond that, the only road is {e sampling}: run the program
    under a randomized scheduler many times and check every outcome. The
    schedulers here are deterministic functions of an explicit {!Rng.t},
    so a sampled run is exactly as reproducible as an exhaustive one — and
    because every run goes through the {!Runner} exec API, its outcome
    carries the (schedule, plan) pair that {!Runner.replay} reproduces
    byte-for-byte. Sampling never proves absence of bugs; it is the
    detection mode for spaces too big to exhaust, with
    {!Verify.Obligations.check_sampled} as the checking front and
    {!Shrink} as the witness minimizer.

    Three sampler kinds:

    - {!Random_walk}: uniform choice among enabled decisions at every
      step — the baseline; biased toward "fair" interleavings, weak at
      rare orderings.
    - {!Pct}: probabilistic concurrency testing (Burckhardt et al.,
      ASPLOS'10). Threads get random priorities; the scheduler always runs
      the highest-priority enabled thread, except at [d - 1] random
      {e priority-change points} where the currently highest enabled
      thread is demoted below everyone. A bug of preemption depth [d] is
      found with probability ≥ 1/(n·k^(d-1)) per run — dramatically better
      than uniform sampling for small [d].
    - {!Preemption_bounded}: a random walk that preempts (switches away
      from an enabled thread) at most [bound] times per run — the sampling
      analogue of CHESS iterative context bounding.

    The samplers also {e jointly} sample the adversity axes: {!sample_plan}
    draws a fault plan (thread crashes, forced CAS failures, stalls, clock
    delays, system crashes) from a {!plan_space} learned by {!probe}, so
    one sampled run covers a random point of
    schedule × fault plan × crash plan. *)

type kind =
  | Random_walk
  | Pct of { d : int }
      (** priority-based with [d - 1] priority-change points; [d >= 1] *)
  | Preemption_bounded of { bound : int }
      (** uniform random walk with at most [bound] preemptions *)

val pp_kind : Format.formatter -> kind -> unit

val kind_to_string : kind -> string
(** ["random-walk"], ["pct:3"], ["pbr:2"] — round-trips with
    {!kind_of_string}; embedded in failure reports so a printed
    counterexample names its scheduler exactly. *)

val kind_of_string : string -> (kind, string) result

val run :
  ?plan:Fault.plan ->
  kind:kind ->
  setup:(Ctx.t -> Runner.program) ->
  fuel:int ->
  rng:Rng.t ->
  unit ->
  Runner.outcome
(** One sampled execution: run to completion or until [fuel] decisions,
    scheduling per [kind]. Crashed/stalled threads are never picked; if no
    decision is enabled the run stops early. The outcome's
    (schedule, plan) pair replays byte-for-byte via {!Runner.replay}. *)

val run_durable :
  ?plan:Fault.plan ->
  kind:kind ->
  setup:(Ctx.t -> Runner.durable) ->
  fuel:int ->
  rng:Rng.t ->
  unit ->
  Runner.outcome
(** {!run} for durable programs (plans may contain
    {!Fault.Crash_system}); replays via {!Runner.replay_durable}. *)

(** {1 Joint plan sampling}

    Fault plans name concrete (thread, step) points and fallible-step
    occurrences, so sampling them needs the program's shape: which threads
    take how many steps, which fallible labels execute how often, how deep
    a run goes. {!probe} learns that shape from a few random-walk runs —
    the sampling analogue of the candidate learner inside
    {!Explore.exhaustive_with_faults}. *)

type plan_space = {
  ps_threads : int;              (** boot-program thread count *)
  ps_thread_steps : int array;   (** max steps each thread took in a probe run *)
  ps_fallible : (string * int) list;
      (** executed fallible-step labels with their max occurrence count in
          one run — the forcible {!Fault.Fail_step} points *)
  ps_max_steps : int;            (** deepest probe run (global decisions) *)
}

val probe :
  setup:(Ctx.t -> Runner.program) ->
  fuel:int ->
  runs:int ->
  rng:Rng.t ->
  unit ->
  plan_space
(** Learn a {!plan_space} from [runs] fault-free random walks. *)

val probe_durable :
  setup:(Ctx.t -> Runner.durable) ->
  fuel:int ->
  runs:int ->
  rng:Rng.t ->
  unit ->
  plan_space

val sample_plan :
  ?fault_bound:int ->
  ?delay_factors:int list ->
  ?crash_depth:int ->
  plan_space ->
  rng:Rng.t ->
  Fault.plan
(** Draw a random valid fault plan: up to [fault_bound] (default [1])
    per-thread faults — crashes, forced fallible-step failures, stalls,
    and (when [delay_factors] is non-empty) clock delays — plus up to
    [crash_depth] (default [0]) strictly increasing
    {!Fault.Crash_system} points within the probed depth. The empty plan
    is always in the support (sampling must also cover fault-free runs).
    The result satisfies {!Fault.validate} with the same [crash_depth]. *)
