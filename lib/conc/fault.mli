(** Deterministic fault plans.

    A fault plan is {e data}: it names, relative to the deterministic step
    counters of a run, the points at which the scheduler injects a failure.
    Because the plan is interpreted against the same counters on every
    replay, a faulty run is exactly as reproducible (and as minimisable) as
    a fault-free one — the pair (schedule, plan) identifies the execution.

    Five fault shapes are supported:

    - {!Crash}: the thread takes no further steps once it has taken
      [at_step] steps. Its operation, if one is in flight, stays pending
      forever — the history never receives the response action. [at_step =
      0] means the thread never runs at all.
    - {!Fail_step}: the [nth] (1-based) executed {e fallible} step whose
      label matches [label] is forced down its failure branch (see
      {!Prog.fallible}); this models weak-CAS / spurious-failure semantics.
      A label matches when it is equal to [label] or extends it with a
      ["@location"] suffix, so ["push-cas"] matches ["push-cas@S.top"].
    - {!Stall}: once the thread has taken [at_step] steps it is descheduled
      for the next [for_steps] {e global} steps — a de-prioritised or
      preempted thread that eventually resumes. A stalled thread with no
      runnable peer never resumes (global time cannot advance); such a plan
      deadlocks the run, which the explorer reports as an incomplete
      outcome.
    - {!Delay}: the thread's perceived logical time runs [factor] times
      faster than the global clock (see {!Ctx.local_now}), so its deadlines
      expire sooner — a deterministic model of a thread whose timer fires
      early relative to its peers' progress. A delay never changes which
      steps are enabled, only how timed operations on the delayed thread
      resolve their deadlines.
    - {!Crash_system}: the whole system crashes once [at_step] {e global}
      decisions have been applied — volatile state ({!Pcell} cells, thread
      programs) is wiped, durable state survives, and the run continues
      with the program's recovery segment (see {!Runner.durable}).
      [at_step = 0] crashes before any decision runs.

    {b Composition order.} Faults of one plan compose deterministically:

    - {e Delay before Crash} (same thread, same step): the skew of a
      [Delay] is installed when the run starts, before any step executes,
      so every step the thread takes — including the very step at which a
      [Crash] or [Crash_system] cuts it off — already perceives the skewed
      clock. A thread delayed and crashed at the same point therefore
      observes its deadlines through the skew first, and only then dies.
    - {e Crash before Stall} (same thread, same step): a thread whose crash
      point has been reached is dead even if a stall window would also have
      opened; it never wakes up.
    - A {!Crash_system} at global step [s] fires after the [s]-th decision
      (before the [s+1]-th); per-thread faults of later epochs keep their
      counters — thread step counts are cumulative across epochs. *)

type t =
  | Crash of { thread : int; at_step : int }
  | Fail_step of { label : string; nth : int }
  | Stall of { thread : int; at_step : int; for_steps : int }
  | Delay of { thread : int; factor : int }
  | Crash_system of { at_step : int }

type plan = t list

val crash : thread:int -> at_step:int -> t
val fail_step : label:string -> nth:int -> t
val stall : thread:int -> at_step:int -> for_steps:int -> t
val delay : thread:int -> factor:int -> t
val crash_system : at_step:int -> t

val validate : ?max_crash_depth:int -> plan -> (unit, string) result
(** Rejects negative counters, [nth < 1], [for_steps < 1], [factor < 2],
    two crashes of the same thread, and two delays of the same thread.
    [Crash_system] entries must appear with strictly increasing crash
    points (sorted, never two crashes at the same global step), and at most
    [max_crash_depth] of them (default [1]: nested crash-during-recovery
    plans must be requested explicitly — {!Runner} itself accepts any
    depth). *)

val matches_label : pattern:string -> string -> bool
(** [matches_label ~pattern l] holds when [l = pattern] or [l] is [pattern]
    followed immediately by ['@'] (the metrics layer's location suffix). *)

val crashed_threads : plan -> int list
(** The threads some [Crash] of the plan targets, sorted, deduplicated. *)

val system_crash_points : plan -> int list
(** The [at_step] points of the plan's [Crash_system] entries, in plan
    order (which {!validate} requires to be strictly increasing). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val pp_plan : Format.formatter -> plan -> unit
