open Cal
open Structures
open Conc.Prog.Infix
module Prog = Conc.Prog

type t = {
  name : string;
  description : string;
  threads : int;
  setup : Conc.Ctx.t -> Conc.Runner.program;
  spec : Cal.Spec.t;
  view : Cal.View.t;
  fuel : int;
  bound : int option;
  expect_ok : bool;
}

let tid = Ids.Tid.of_int
let no_observe threads = { Conc.Runner.threads; observe = None; on_label = None }

(* Views are pure functions of object names, so building them from an
   instance in a throwaway context is sound. *)
let dummy_ctx () = Conc.Ctx.create ()

let exchanger_pair () =
  {
    name = "exchanger-pair";
    description = "two threads exchange 3 and 4 (Fig. 1 object)";
    threads = 2;
    setup =
      (fun ctx ->
        let ex = Exchanger.create ctx in
        no_observe
          [|
            Exchanger.exchange ex ~tid:(tid 0) (Value.int 3);
            Exchanger.exchange ex ~tid:(tid 1) (Value.int 4);
          |]);
    spec = Spec_exchanger.spec ();
    view = View.identity;
    fuel = 60;
    bound = None;
    expect_ok = true;
  }

let exchanger_trio () =
  {
    name = "exchanger-trio";
    description = "the paper's program P (Fig. 3): exchg(3) || exchg(4) || exchg(7)";
    threads = 3;
    setup =
      (fun ctx ->
        let ex = Exchanger.create ctx in
        no_observe
          [|
            Exchanger.exchange ex ~tid:(tid 0) (Value.int 3);
            Exchanger.exchange ex ~tid:(tid 1) (Value.int 4);
            Exchanger.exchange ex ~tid:(tid 2) (Value.int 7);
          |]);
    spec = Spec_exchanger.spec ();
    view = View.identity;
    fuel = 90;
    bound = Some 4;
    expect_ok = true;
  }

let exchanger_timed_pair ?(deadline = 4) () =
  {
    name = "exchanger-timed-pair";
    description =
      Fmt.str
        "two threads exchange under deadline %d on the logical clock: every \
         run ends in a swap or in Timeout CA-elements"
        deadline;
    threads = 2;
    setup =
      (fun ctx ->
        let ex = Exchanger.create ~wait:1 ctx in
        no_observe
          [|
            Exchanger.exchange_timed ex ~tid:(tid 0) ~deadline (Value.int 3);
            Exchanger.exchange_timed ex ~tid:(tid 1) ~deadline (Value.int 4);
          |]);
    spec = Spec_exchanger.spec ();
    view = View.identity;
    fuel = 60;
    bound = None;
    expect_ok = true;
  }

let exchanger_abstract_pair () =
  {
    name = "exchanger-abstract-pair";
    description = "two threads against the specification-driven exchanger";
    threads = 2;
    setup =
      (fun ctx ->
        let ex = Abstract_exchanger.create ctx in
        no_observe
          [|
            Abstract_exchanger.exchange ex ~tid:(tid 0) (Value.int 3);
            Abstract_exchanger.exchange ex ~tid:(tid 1) (Value.int 4);
          |]);
    spec = Spec_exchanger.spec ();
    view = View.identity;
    fuel = 40;
    bound = None;
    expect_ok = true;
  }

let elim_array_pair ~k =
  let mk ctx = Elim_array.create ~k ~slot_strategy:Elim_array.All_slots ctx in
  let probe = mk (dummy_ctx ()) in
  {
    name = Fmt.str "elim-array-pair-k%d" k;
    description = "two threads exchange through the elimination array";
    threads = 2;
    setup =
      (fun ctx ->
        let ar = mk ctx in
        no_observe
          [|
            Elim_array.exchange ar ~tid:(tid 0) (Value.int 3);
            Elim_array.exchange ar ~tid:(tid 1) (Value.int 4);
          |]);
    spec = Elim_array.spec probe;
    view = Elim_array.view probe;
    fuel = 70;
    bound = None;
    expect_ok = true;
  }

let make_es ?(abstract = false) ~k ctx =
  let factory = if abstract then Elim_array.abstract else Elim_array.concrete in
  Elimination_stack.create ~factory ~k ~slot_strategy:Elim_array.All_slots ctx

let elim_stack_push_pop ?(abstract = false) ~k () =
  let probe = make_es ~abstract ~k (dummy_ctx ()) in
  {
    name =
      Fmt.str "elim-stack-push-pop-k%d%s" k (if abstract then "-abstract" else "");
    description = "push(5) || pop() on the elimination stack";
    threads = 2;
    setup =
      (fun ctx ->
        let es = make_es ~abstract ~k ctx in
        no_observe
          [|
            Elimination_stack.push es ~tid:(tid 0) (Value.int 5);
            Elimination_stack.pop es ~tid:(tid 1);
          |]);
    spec = Elimination_stack.spec probe;
    view = Elimination_stack.view probe;
    fuel = 26;
    bound = None;
    expect_ok = true;
  }

let elim_stack_two_two ?(abstract = false) ~k () =
  let probe = make_es ~abstract ~k (dummy_ctx ()) in
  {
    name =
      Fmt.str "elim-stack-two-two-k%d%s" k (if abstract then "-abstract" else "");
    description = "two pushers and two poppers on the elimination stack";
    threads = 4;
    setup =
      (fun ctx ->
        let es = make_es ~abstract ~k ctx in
        no_observe
          [|
            Elimination_stack.push es ~tid:(tid 0) (Value.int 1);
            Elimination_stack.push es ~tid:(tid 1) (Value.int 2);
            Elimination_stack.pop es ~tid:(tid 2);
            Elimination_stack.pop es ~tid:(tid 3);
          |]);
    spec = Elimination_stack.spec probe;
    view = Elimination_stack.view probe;
    fuel = 30;
    bound = Some 2;
    expect_ok = true;
  }

let elim_stack_sequential_then_pop ~k =
  let probe = make_es ~k (dummy_ctx ()) in
  {
    name = Fmt.str "elim-stack-lifo-k%d" k;
    description = "t0: push(1); push(2); pop()  ||  t1: pop() — exercises LIFO order";
    threads = 2;
    setup =
      (fun ctx ->
        let es = make_es ~k ctx in
        no_observe
          [|
            (let* _ = Elimination_stack.push es ~tid:(tid 0) (Value.int 1) in
             let* _ = Elimination_stack.push es ~tid:(tid 0) (Value.int 2) in
             Elimination_stack.pop es ~tid:(tid 0));
            Elimination_stack.pop es ~tid:(tid 1);
          |]);
    spec = Elimination_stack.spec probe;
    view = Elimination_stack.view probe;
    fuel = 34;
    bound = Some 2;
    expect_ok = true;
  }

let sync_queue_pair () =
  let probe = Sync_queue.create (dummy_ctx ()) in
  let mk ctx = Sync_queue.create ~attempts:1 ctx in
  {
    name = "sync-queue-pair";
    description = "put(7) || take() on the synchronous queue";
    threads = 2;
    setup =
      (fun ctx ->
        let q = mk ctx in
        no_observe
          [| Sync_queue.put q ~tid:(tid 0) (Value.int 7); Sync_queue.take q ~tid:(tid 1) |]);
    spec = Sync_queue.spec probe;
    view = Sync_queue.view probe;
    fuel = 40;
    bound = None;
    expect_ok = true;
  }

let sync_queue_two_producers () =
  let probe = Sync_queue.create (dummy_ctx ()) in
  {
    name = "sync-queue-two-producers";
    description = "put(1) || put(2) || take() — same-role meetings must not transfer";
    threads = 3;
    setup =
      (fun ctx ->
        let q = Sync_queue.create ~attempts:1 ctx in
        no_observe
          [|
            Sync_queue.put q ~tid:(tid 0) (Value.int 1);
            Sync_queue.put q ~tid:(tid 1) (Value.int 2);
            Sync_queue.take q ~tid:(tid 2);
          |]);
    spec = Sync_queue.spec probe;
    view = Sync_queue.view probe;
    fuel = 46;
    bound = Some 3;
    expect_ok = true;
  }

let dual_queue_enq_deq () =
  let probe = Dual_queue.create (dummy_ctx ()) in
  {
    name = "dual-queue-enq-deq";
    description = "enq(7) || deq() on the dual queue: the dequeue may wait";
    threads = 2;
    setup =
      (fun ctx ->
        let q = Dual_queue.create ctx in
        no_observe
          [| Dual_queue.enq q ~tid:(tid 0) (Value.int 7); Dual_queue.deq q ~tid:(tid 1) |]);
    spec = Dual_queue.spec probe;
    view = Dual_queue.view probe;
    fuel = 30;
    bound = None;
    expect_ok = true;
  }

let dual_queue_two_consumers () =
  let probe = Dual_queue.create (dummy_ctx ()) in
  {
    name = "dual-queue-two-consumers";
    description = "deq() || deq() || enq(1): one consumer is fulfilled, one keeps waiting";
    threads = 3;
    setup =
      (fun ctx ->
        let q = Dual_queue.create ctx in
        no_observe
          [|
            Dual_queue.deq q ~tid:(tid 0);
            Dual_queue.deq q ~tid:(tid 1);
            Dual_queue.enq q ~tid:(tid 2) (Value.int 1);
          |]);
    spec = Dual_queue.spec probe;
    view = Dual_queue.view probe;
    fuel = 24;
    bound = None;
    expect_ok = true;
  }

let elim_queue_enq_deq () =
  let probe = Elimination_queue.create (dummy_ctx ()) in
  {
    name = "elim-queue-enq-deq";
    description = "enq(7) || deq() on the elimination-backed FIFO queue";
    threads = 2;
    setup =
      (fun ctx ->
        let q = Elimination_queue.create ctx in
        no_observe
          [|
            Elimination_queue.enq q ~tid:(tid 0) (Value.int 7);
            Elimination_queue.deq q ~tid:(tid 1);
          |]);
    spec = Elimination_queue.spec probe;
    view = Elimination_queue.view probe;
    fuel = 30;
    bound = None;
    expect_ok = true;
  }

let elim_queue_fifo () =
  let probe = Elimination_queue.create (dummy_ctx ()) in
  {
    name = "elim-queue-fifo";
    description =
      "t0: enq(1); enq(2) || t1: deq(); deq() — elimination must not break FIFO";
    threads = 2;
    setup =
      (fun ctx ->
        let q = Elimination_queue.create ctx in
        no_observe
          [|
            (let* _ = Elimination_queue.enq q ~tid:(tid 0) (Value.int 1) in
             Elimination_queue.enq q ~tid:(tid 0) (Value.int 2));
            (let* a = Elimination_queue.deq q ~tid:(tid 1) in
             let* b = Elimination_queue.deq q ~tid:(tid 1) in
             Prog.return (Value.pair a b));
          |]);
    spec = Elimination_queue.spec probe;
    view = Elimination_queue.view probe;
    fuel = 44;
    bound = Some 3;
    expect_ok = true;
  }

let counter_incrs ~n =
  {
    name = Fmt.str "counter-incrs-%d" n;
    description = Fmt.str "%d threads increment a fetch-and-add counter" n;
    threads = n;
    setup =
      (fun ctx ->
        let c = Counter.create ctx in
        no_observe (Array.init n (fun i -> Counter.incr c ~tid:(tid i))));
    spec = Spec_counter.spec ();
    view = View.identity;
    fuel = 20 * n;
    bound = None;
    expect_ok = true;
  }

let register_write_read () =
  {
    name = "register-write-read";
    description = "write(1); read() || write(2); read()";
    threads = 2;
    setup =
      (fun ctx ->
        let r = Register.create ctx in
        no_observe
          [|
            (let* _ = Register.write r ~tid:(tid 0) (Value.int 1) in
             Register.read r ~tid:(tid 0));
            (let* _ = Register.write r ~tid:(tid 1) (Value.int 2) in
             Register.read r ~tid:(tid 1));
          |]);
    spec = Spec_register.spec ();
    view = View.identity;
    fuel = 40;
    bound = None;
    expect_ok = true;
  }

let treiber_push_pop () =
  {
    name = "treiber-push-pop";
    description = "push(1); pop() || push(2); pop() on the central stack";
    threads = 2;
    setup =
      (fun ctx ->
        let s = Treiber_stack.create ctx in
        no_observe
          [|
            (let* _ = Treiber_stack.push s ~tid:(tid 0) (Value.int 1) in
             Treiber_stack.pop s ~tid:(tid 0));
            (let* _ = Treiber_stack.push s ~tid:(tid 1) (Value.int 2) in
             Treiber_stack.pop s ~tid:(tid 1));
          |]);
    spec = Spec_stack.spec ~allow_spurious_failure:true ();
    view = View.identity;
    fuel = 40;
    bound = None;
    expect_ok = true;
  }

let ms_queue_enq_deq () =
  {
    name = "ms-queue-enq-deq";
    description = "enq(1); deq() || enq(2); deq() on the Michael-Scott queue";
    threads = 2;
    setup =
      (fun ctx ->
        let q = Ms_queue.create ctx in
        no_observe
          [|
            (let* _ = Ms_queue.enq q ~tid:(tid 0) (Value.int 1) in
             Ms_queue.deq q ~tid:(tid 0));
            (let* _ = Ms_queue.enq q ~tid:(tid 1) (Value.int 2) in
             Ms_queue.deq q ~tid:(tid 1));
          |]);
    spec = Spec_queue.spec ();
    view = View.identity;
    fuel = 44;
    bound = Some 3;
    expect_ok = true;
  }

let faulty_elim_queue () =
  let probe = Elimination_queue.create (dummy_ctx ()) in
  {
    name = "faulty-elim-queue";
    description =
      "elimination transfer without the emptiness check: breaks FIFO";
    threads = 2;
    setup =
      (fun ctx ->
        let q = Elimination_queue.create ~unsafe_skip_empty_check:true ctx in
        no_observe
          [|
            (let* _ = Elimination_queue.enq q ~tid:(tid 0) (Value.int 1) in
             Elimination_queue.enq q ~tid:(tid 0) (Value.int 2));
            (let* a = Elimination_queue.deq q ~tid:(tid 1) in
             let* b = Elimination_queue.deq q ~tid:(tid 1) in
             Prog.return (Value.pair a b));
          |]);
    spec = Elimination_queue.spec probe;
    view = Elimination_queue.view probe;
    fuel = 44;
    bound = Some 3;
    expect_ok = false;
  }

let faulty_elim_stack ?(pushers = 1) ?(poppers = 2) () =
  {
    name = Fmt.str "faulty-elim-stack-%dp%dc" pushers poppers;
    description =
      "elimination slot never cleared: racing pops eliminate the same push";
    threads = pushers + poppers;
    setup =
      (fun ctx ->
        let s = Faulty.Elim_stack_dup_elim.create ctx in
        no_observe
          (Array.init (pushers + poppers) (fun i ->
               if i < pushers then
                 Faulty.Elim_stack_dup_elim.push s ~tid:(tid i)
                   (Value.int (i + 1))
               else Faulty.Elim_stack_dup_elim.pop s ~tid:(tid i))));
    spec = Spec_stack.spec ~allow_spurious_failure:false ();
    view = View.identity;
    fuel = 14;
    bound = Some 2;
    expect_ok = false;
  }

let faulty_counter () =
  {
    name = "faulty-counter";
    description = "non-atomic increment: racing increments lose updates";
    threads = 2;
    setup =
      (fun ctx ->
        let c = Faulty.Counter_lost_update.create ctx in
        no_observe
          [|
            Faulty.Counter_lost_update.incr c ~tid:(tid 0);
            Faulty.Counter_lost_update.incr c ~tid:(tid 1);
          |]);
    spec = Spec_counter.spec ();
    view = View.identity;
    fuel = 40;
    bound = None;
    expect_ok = false;
  }

let faulty_stack () =
  {
    name = "faulty-stack";
    description = "pop without CAS: racing pops return the same element";
    threads = 2;
    setup =
      (fun ctx ->
        let s = Faulty.Stack_lost_pop.create ctx in
        no_observe
          [|
            (let* _ = Faulty.Stack_lost_pop.push s ~tid:(tid 0) (Value.int 1) in
             Faulty.Stack_lost_pop.pop s ~tid:(tid 0));
            Faulty.Stack_lost_pop.pop s ~tid:(tid 1);
          |]);
    spec = Spec_stack.spec ~allow_spurious_failure:true ();
    view = View.identity;
    fuel = 40;
    bound = None;
    expect_ok = false;
  }

let faulty_exchanger () =
  {
    name = "faulty-exchanger";
    description = "claims success without a partner, logging a failure element";
    threads = 2;
    setup =
      (fun ctx ->
        let e = Faulty.Exchanger_selfish.create ctx in
        no_observe
          [|
            Faulty.Exchanger_selfish.exchange e ~tid:(tid 0) (Value.int 1);
            Faulty.Exchanger_selfish.exchange e ~tid:(tid 1) (Value.int 2);
          |]);
    spec = Spec_exchanger.spec ();
    view = View.identity;
    fuel = 40;
    bound = None;
    expect_ok = false;
  }

(* ----------------------------------------------- durable scenarios ---- *)

(* Durable scenarios package a {!Conc.Runner.durable} program instead of a
   plain one, and are checked black-box ({!Verify.Obligations.check_durable})
   — no view. [d_max_crash_depth] bounds crash-during-recovery nesting. *)
type durable = {
  d_name : string;
  d_description : string;
  d_threads : int;
  d_setup : Conc.Ctx.t -> Conc.Runner.durable;
  d_spec : Cal.Spec.t;
  d_fuel : int;
  d_max_crash_depth : int;
  d_expect_ok : bool;
}

(* Recovery must run solo before the post-crash workload: it re-asserts the
   durable contents as the volatile state, so letting it race with new-era
   operations would resurrect removals that are still unflushed. Thread 0
   runs recovery and raises the flag; every other thread blocks on it. *)
let after_recovery flag p =
  Prog.guard ~label:"await-recovery" (fun () -> if !flag then Some p else None)

let recovery_done flag =
  Prog.atomic ~label:"recovery-done" (fun () -> flag := true)

let stack_crash_recovery () =
  {
    d_name = "stack-crash-recovery";
    d_description =
      "push(1); pop() || push(2) on the durable Treiber stack; after any \
       crash, thread 0 recovers and both threads pop what persisted";
    d_threads = 2;
    d_setup =
      (fun ctx ->
        let domain = Conc.Pcell.domain () in
        let s = Durable_treiber_stack.create ~domain ctx in
        {
          Conc.Runner.boot =
            no_observe
              [|
                (let* _ = Durable_treiber_stack.push s ~tid:(tid 0) (Value.int 1) in
                 Durable_treiber_stack.pop s ~tid:(tid 0));
                (Durable_treiber_stack.push s ~tid:(tid 1) (Value.int 2)
                 >>= Prog.return);
              |];
          domain;
          recover =
            (fun ~epoch:_ ->
              let ready = ref false in
              no_observe
                [|
                  (let* () = Durable_treiber_stack.recover s in
                   let* () = recovery_done ready in
                   Durable_treiber_stack.pop s ~tid:(tid 0));
                  after_recovery ready (Durable_treiber_stack.pop s ~tid:(tid 1));
                |]);
        });
    d_spec =
      Spec_stack.spec ~oid:(Ids.Oid.v "DS") ~allow_spurious_failure:true ();
    d_fuel = 40;
    d_max_crash_depth = 1;
    d_expect_ok = true;
  }

let queue_crash_recovery () =
  {
    d_name = "queue-crash-recovery";
    d_description =
      "enq(1); deq() || enq(2) on the durable MS queue; after any crash, \
       thread 0 recovers and both threads dequeue what persisted";
    d_threads = 2;
    d_setup =
      (fun ctx ->
        let domain = Conc.Pcell.domain () in
        let q = Durable_ms_queue.create ~domain ctx in
        {
          Conc.Runner.boot =
            no_observe
              [|
                (let* _ = Durable_ms_queue.enq q ~tid:(tid 0) (Value.int 1) in
                 Durable_ms_queue.deq q ~tid:(tid 0));
                (Durable_ms_queue.enq q ~tid:(tid 1) (Value.int 2)
                 >>= Prog.return);
              |];
          domain;
          recover =
            (fun ~epoch:_ ->
              let ready = ref false in
              no_observe
                [|
                  (let* () = Durable_ms_queue.recover q in
                   let* () = recovery_done ready in
                   Durable_ms_queue.deq q ~tid:(tid 0));
                  after_recovery ready (Durable_ms_queue.deq q ~tid:(tid 1));
                |]);
        });
    d_spec = Spec_queue.spec ~oid:(Ids.Oid.v "DQ") ();
    d_fuel = 48;
    d_max_crash_depth = 1;
    d_expect_ok = true;
  }

let faulty_durable_stack () =
  {
    d_name = "faulty-durable-stack";
    d_description =
      "pop responds without flushing its removal: a crash resurrects the \
       popped element and the post-crash pop returns it a second time";
    d_threads = 1;
    d_setup =
      (fun ctx ->
        let domain = Conc.Pcell.domain () in
        let s = Faulty.Durable_stack_missing_flush.create ~domain ctx in
        {
          Conc.Runner.boot =
            no_observe
              [|
                (let* _ =
                   Faulty.Durable_stack_missing_flush.push s ~tid:(tid 0)
                     (Value.int 1)
                 in
                 Faulty.Durable_stack_missing_flush.pop s ~tid:(tid 0));
              |];
          domain;
          recover =
            (fun ~epoch:_ ->
              no_observe
                [|
                  (let* () = Faulty.Durable_stack_missing_flush.recover s in
                   Faulty.Durable_stack_missing_flush.pop s ~tid:(tid 0));
                |]);
        });
    d_spec =
      Spec_stack.spec ~oid:(Ids.Oid.v "DS") ~allow_spurious_failure:true ();
    d_fuel = 30;
    d_max_crash_depth = 1;
    d_expect_ok = false;
  }

let durable_all () =
  [ stack_crash_recovery (); queue_crash_recovery (); faulty_durable_stack () ]

let all () =
  [
    exchanger_pair ();
    exchanger_trio ();
    exchanger_timed_pair ();
    exchanger_abstract_pair ();
    elim_array_pair ~k:1;
    elim_array_pair ~k:2;
    elim_stack_push_pop ~k:1 ();
    elim_stack_push_pop ~abstract:true ~k:1 ();
    elim_stack_sequential_then_pop ~k:1;
    sync_queue_pair ();
    sync_queue_two_producers ();
    dual_queue_enq_deq ();
    dual_queue_two_consumers ();
    elim_queue_enq_deq ();
    elim_queue_fifo ();
    counter_incrs ~n:2;
    counter_incrs ~n:3;
    register_write_read ();
    treiber_push_pop ();
    ms_queue_enq_deq ();
    faulty_counter ();
    faulty_elim_stack ();
    faulty_stack ();
    faulty_exchanger ();
    faulty_elim_queue ();
  ]

let find name = List.find_opt (fun s -> String.equal s.name name) (all ())
let faulty () = List.filter (fun s -> not s.expect_ok) (all ())
let durable_faulty () = List.filter (fun d -> not d.d_expect_ok) (durable_all ())
