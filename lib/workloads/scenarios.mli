(** Standard bounded client programs for exploration, verification, tests,
    the CLI and the benchmarks — one place, so every consumer checks the
    same thing.

    Each scenario packages the program with the specification and view
    function against which its object must be verified. Views and
    specifications depend only on (deterministic, default) object names, so
    they are valid for every run of [setup]. *)

type t = {
  name : string;
  description : string;
  threads : int;
  setup : Conc.Ctx.t -> Conc.Runner.program;
  spec : Cal.Spec.t;
  view : Cal.View.t;
  fuel : int;  (** enough decisions for every thread to finish, with slack *)
  bound : int option;
      (** default preemption bound: [Some b] for scenarios whose unbounded
          interleaving space is too large for routine exhaustive checking;
          consumers should pass it to the explorer *)
  expect_ok : bool;  (** [false] for the deliberately faulty scenarios *)
}

(** {1 Exchanger clients} *)

val exchanger_pair : unit -> t
(** Two threads exchanging 3 and 4. *)

val exchanger_trio : unit -> t
(** The paper's program [P] (Fig. 3): [exchg(3) ‖ exchg(4) ‖ exchg(7)]. *)

val exchanger_timed_pair : ?deadline:int -> unit -> t
(** Two threads exchanging under an absolute logical-clock [deadline]
    (default 4): exhaustive exploration finds both swap schedules and
    timeout schedules, and the extended exchanger specification accepts
    both. *)

val exchanger_abstract_pair : unit -> t
(** Two threads against the specification-driven exchanger. *)

(** {1 Elimination array and stack} *)

val elim_array_pair : k:int -> t
val elim_stack_push_pop : ?abstract:bool -> k:int -> unit -> t
val elim_stack_two_two : ?abstract:bool -> k:int -> unit -> t
(** Two pushers and two poppers — the heavier elimination-stack workload. *)

val elim_stack_sequential_then_pop : k:int -> t
(** One thread pushes twice then pops; one thread pops — exercises stack
    order (LIFO) across elimination. *)

(** {1 Synchronous queue} *)

val sync_queue_pair : unit -> t
val sync_queue_two_producers : unit -> t

(** {1 Dual queue} *)

val dual_queue_enq_deq : unit -> t
val dual_queue_two_consumers : unit -> t

(** {1 Elimination-backed FIFO queue} *)

val elim_queue_enq_deq : unit -> t
val elim_queue_fifo : unit -> t

(** {1 Simple objects} *)

val counter_incrs : n:int -> t
val register_write_read : unit -> t
val treiber_push_pop : unit -> t
val ms_queue_enq_deq : unit -> t

(** {1 Faulty objects (expected to fail verification)} *)

val faulty_counter : unit -> t
val faulty_stack : unit -> t
val faulty_exchanger : unit -> t

val faulty_elim_stack : ?pushers:int -> ?poppers:int -> unit -> t
(** {!Structures.Faulty.Elim_stack_dup_elim} under [pushers] pushing
    threads and [poppers] popping threads (defaults [1]/[2]): the sticky
    elimination slot lets racing pops eliminate the same push. Rejections
    dominate deep sweeps of this object, which makes it the checker-bound
    workload of bench B14 (larger thread counts there). *)

val faulty_elim_queue : unit -> t
(** The elimination queue with the transfer emptiness check removed —
    a FIFO violation (deq receives a fresh value while an older one is
    queued) that the obligations must detect. *)

val all : unit -> t list
(** Every scenario above, positives first. *)

val find : string -> t option
(** Look up by [name]. *)

val faulty : unit -> t list
(** The [expect_ok = false] subset of {!all}: the deliberately broken
    objects every detection mode (exhaustive, fault sweep, sampled) must
    catch. *)

(** {1 Durable scenarios}

    Bounded client programs over the durable structures, packaged as
    {!Conc.Runner.durable} (boot program, persistent domain, recovery
    program) for the crash sweep of {!Verify.Obligations.check_durable}.
    Durable checking is black-box, so there is no view field;
    [d_max_crash_depth] bounds crash-during-recovery nesting. *)

type durable = {
  d_name : string;
  d_description : string;
  d_threads : int;
  d_setup : Conc.Ctx.t -> Conc.Runner.durable;
  d_spec : Cal.Spec.t;
  d_fuel : int;
  d_max_crash_depth : int;
  d_expect_ok : bool;  (** [false] for the deliberately faulty scenario *)
}

val stack_crash_recovery : unit -> durable
(** [push(1); pop() ‖ push(2)] on {!Structures.Durable_treiber_stack};
    after any crash, thread 0 runs recovery and both threads pop whatever
    persisted. Accepted at every crash point — the flush-before-respond
    discipline keeps completed operations durable. *)

val queue_crash_recovery : unit -> durable
(** The FIFO analogue on {!Structures.Durable_ms_queue}. *)

val faulty_durable_stack : unit -> durable
(** {!Structures.Faulty.Durable_stack_missing_flush}: pop responds without
    flushing its removal, so a crash resurrects the popped element and the
    post-crash pop returns it a second time — rejected with a replayable
    (schedule, plan) witness. *)

val durable_all : unit -> durable list

val durable_faulty : unit -> durable list
(** The [d_expect_ok = false] subset of {!durable_all}. *)
