(** Simulated-time performance measurement.

    The simulator's base unit of time is one atomic step (one scheduler
    decision) under a uniformly random scheduler. On top of that, a
    contention cost model charges every CAS on a contended location extra
    time proportional to that location's recent access rate — the cache-
    line serialisation that a unit-cost interleaving simulator would
    otherwise miss entirely (a failed simulated CAS is free for everyone,
    a failed hardware CAS still bounces the line). With it, the benchmarks
    reproduce the {e shape} of the elimination-stack motivation (HSY 2004):
    the central stack's single hot line throttles throughput as threads are
    added, while elimination spreads accesses over [k] exchanger slots and
    completes two operations per rendezvous. *)

type result = {
  threads : int;
  steps : int;            (** scheduler decisions executed *)
  sim_time : float;       (** simulated time with contention costs *)
  ops_completed : int;    (** responses observed *)
  ops_succeeded : int;    (** operations whose result reports success *)
  ops_timed_out : int;    (** operations returning a [Value.timeout] result *)
  ops_cancelled : int;    (** operations returning a [Value.cancelled] result *)
  retries : int;          (** backoff pauses taken (failed attempts retried) *)
  ops_crashed : int;      (** threads crashed by the run's fault plan *)
  sys_crashes : int;      (** whole-system crashes fired ({!Conc.Fault.Crash_system}) *)
  recovery_steps : int;   (** post-crash recovery steps executed ("recover…" labels) *)
  throughput : float;     (** completed operations per 1000 simulated time units *)
}

type stack_impl =
  | Treiber_retry          (** Treiber stack, operations retried until done *)
  | Treiber_backoff        (** Treiber stack retrying under {!Structures.Backoff} *)
  | Elimination of int     (** elimination stack with [k] exchanger slots *)

val stack_throughput :
  impl:stack_impl -> threads:int -> fuel:int -> seed:int64 -> result
(** Each thread alternates [push]/[pop] as fast as the scheduler lets it,
    for [fuel] total decisions. *)

val stack_fault_sweep :
  impl:stack_impl -> threads:int -> crashes:int -> fuel:int -> seed:int64 -> result
(** {!stack_throughput} under an injected fault plan: [crashes] distinct
    threads crash at seeded points early in the run ({!Conc.Fault.Crash});
    the result reports the throughput the surviving threads still deliver
    and [ops_crashed] confirms how many crashes actually fired. Raises
    [Invalid_argument] if [crashes > threads]. *)

val durable_stack_crash_sweep :
  threads:int ->
  crashes:int ->
  recovery_cost:int ->
  fuel:int ->
  seed:int64 ->
  result
(** The B13 crash-recovery sweep: {!stack_throughput}'s workload on a
    {!Structures.Durable_treiber_stack} under [crashes] evenly spaced
    whole-system crashes ({!Conc.Fault.Crash_system}). After each crash,
    thread 0 runs the stack's recovery procedure with [recovery_cost] scan
    steps before rejoining the workload. [sys_crashes] reports the crashes
    that actually fired and [recovery_steps] the recovery work executed;
    throughput decays with both knobs — flush steps and recovery downtime
    are the price of durability. Raises [Invalid_argument] if
    [crashes < 0]. *)

val exchanger_success_rate :
  threads:int -> rounds:int -> fuel:int -> seed:int64 -> result
(** Each thread performs [rounds] exchanges; [ops_succeeded] counts the
    exchanges that found a partner. Success rates rise with the thread
    count — the concurrency-{e aware} behaviour. *)

val exchanger_timed_rate :
  ?plan:Conc.Fault.plan ->
  threads:int ->
  deadline:int ->
  fuel:int ->
  seed:int64 ->
  unit ->
  result
(** Each thread loops {!Structures.Exchanger.exchange_timed_body} forever,
    arming a fresh deadline [deadline] ticks ahead on its perceived clock
    each round, so every round ends in a swap ([ops_succeeded]) or a
    timeout ([ops_timed_out]) — never a stuck thread. Swap rates rise with
    the thread count and with [deadline]; a {!Conc.Fault.Delay} in [plan]
    makes the delayed thread's deadlines fire early, depressing its swap
    rate. Raises [Invalid_argument] if [deadline < 1]. *)

val sync_queue_handoffs :
  producers:int -> consumers:int -> rounds:int -> fuel:int -> seed:int64 -> result
(** Producers [put], consumers [take]; [ops_succeeded] counts
    rendezvous. *)

val pp_result : Format.formatter -> result -> unit

(** {1 Exploration engine cost}

    Cost counters of one exhaustive exploration, for the B12 engine
    comparison: the same state space explored by the seed's
    whole-prefix-replay engine ([`Replay]), the incremental engine
    ([`Incremental]) and the incremental engine with fingerprint/sleep-set
    pruning ([`Pruned]). [steps_executed] is the total number of program
    steps the engine actually executed — the replay engine's per-node
    whole-prefix replays versus the incremental engine's one step per tree
    edge plus its backtracking replays. *)

type explore_cost = {
  engine : string;
      (** "replay" | "incremental" | "incremental+prune" | "parallel-N"
          | "dpor" | "preemption:N" | "delay:N" *)
  explored_runs : int;    (** terminal outcomes delivered *)
  nodes : int;            (** schedule-tree nodes visited *)
  steps_executed : int;   (** program steps executed in total *)
  replayed_steps : int;   (** of which re-executed prefix steps *)
  fingerprint_hits : int;
  sleep_pruned : int;
  races_found : int;      (** dependent step pairs the HB analysis flagged *)
  backtrack_points : int; (** source-DPOR backtrack insertions *)
  bound_hits : int;       (** branches cut at the final deepening level *)
  explore_bounded : bool;
      (** the bound actually cut an edge — the run set is an
          underapproximation *)
  domains_used : int;     (** worker domains the exploration ran on *)
  domains_requested : int;
      (** worker domains asked for; differs from [domains_used] when the
          hardware capped the request
          ({!Conc.Par_explore.effective_domains}) *)
  tasks_stolen : int;     (** donated subtree chunks claimed by workers *)
  explore_truncated : bool;
}

val explore_cost :
  engine:
    [ `Replay
    | `Incremental
    | `Pruned
    | `Parallel of int
    | `Dpor
    | `Preemption_bounded of int
    | `Delay_bounded of int ] ->
  setup:(Conc.Ctx.t -> Conc.Runner.program) ->
  fuel:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  unit ->
  explore_cost
(** Explore [setup] exhaustively with the chosen engine (outcomes are
    discarded) and report the cost counters. Note [`Pruned] asks for
    pruning explicitly, so [CAL_EXPLORE_NO_PRUNE=1] turns it into
    [`Incremental]. [`Parallel d] is the unpruned incremental engine
    spread over [d] worker domains ({!Conc.Par_explore}) — same runs and
    nodes, [replayed_steps] grows by the task-prefix replays. [`Dpor]
    and the bounded engines run {!Conc.Explore.exhaustive_strategy}
    ([preemption_bound] is ignored there — the strategy defines the run
    set). *)

val pp_explore_cost : Format.formatter -> explore_cost -> unit

(** {1 Sampled-checking cost}

    One data point of the B15 sampling benchmark: run one sampled check
    ({!Verify.Obligations.check_sampled} / [check_sampled_durable]) on one
    scenario with one (sampler kind, seed, budget) triple and report
    whether it detected a violation, how many runs that took, and how
    small the shrunk witness came out. B15 aggregates these points into
    detection rate and mean witness size per (kind, budget) cell. *)

type sampling_cost = {
  sc_scenario : string;
  sc_sampler : string;       (** {!Conc.Sampler.kind_to_string} *)
  sc_seed : int64;
  sc_budget : int;           (** run budget given to the check *)
  sc_runs : int;             (** runs actually executed (early exit) *)
  sc_detected : bool;
  sc_witness_len : int;      (** minimal witness schedule length; [0] if none *)
  sc_shrink_candidates : int;
  sc_shrink_steps_removed : int;
}

val sampling_cost :
  kind:Conc.Sampler.kind ->
  seed:int64 ->
  budget:int ->
  ?fault_bound:int ->
  Scenarios.t ->
  sampling_cost
(** Sampled check of one scenario. With [fault_bound] (default absent),
    the fault-sampling variant is used instead of the schedule-only one. *)

val sampling_cost_durable :
  kind:Conc.Sampler.kind ->
  seed:int64 ->
  budget:int ->
  Scenarios.durable ->
  sampling_cost
(** The durable analogue, sampling system crashes to the scenario's
    [d_max_crash_depth]. *)

val pp_sampling_cost : Format.formatter -> sampling_cost -> unit
