open Cal

type t = { rng : Conc.Rng.t }

let create ~seed = { rng = Conc.Rng.create ~seed }
let int g n = Conc.Rng.int g.rng n
let rng g = g.rng

let two_distinct g n =
  let a = int g n in
  let b = (a + 1 + int g (n - 1)) mod n in
  (a, b)

let exchanger_trace g ~oid ~threads ~elements =
  if threads < 2 then invalid_arg "Gen.exchanger_trace: needs >= 2 threads";
  List.init elements (fun _ ->
      if int g 10 < 7 then begin
        let a, b = two_distinct g threads in
        Spec_exchanger.swap ~oid (Ids.Tid.of_int a)
          (Value.int (int g 10))
          (Ids.Tid.of_int b)
          (Value.int (int g 10))
      end
      else
        Spec_exchanger.failure ~oid (Ids.Tid.of_int (int g threads))
          (Value.int (int g 10)))

let stack_trace g ~oid ~threads ~elements =
  let stack = ref [] in
  List.init elements (fun _ ->
      let t = Ids.Tid.of_int (int g threads) in
      let choice = int g 10 in
      if choice < 5 then begin
        let v = Value.int (int g 10) in
        stack := v :: !stack;
        Ca_trace.singleton (Spec_stack.push_op ~oid t v ~ok:true)
      end
      else
        match !stack with
        | top :: rest when choice < 9 ->
            stack := rest;
            Ca_trace.singleton (Spec_stack.pop_op ~oid t (Some top))
        | [] -> Ca_trace.singleton (Spec_stack.pop_op ~oid t None)
        | _ :: _ ->
            (* spurious failure, legal for the central stack *)
            Ca_trace.singleton (Spec_stack.push_op ~oid t (Value.int (int g 10)) ~ok:false))

let counter_trace g ~oid ~threads ~elements =
  let count = ref 0 in
  List.init elements (fun _ ->
      let t = Ids.Tid.of_int (int g threads) in
      if int g 3 < 2 then begin
        let old = !count in
        incr count;
        Ca_trace.singleton (Spec_counter.incr_op ~oid t old)
      end
      else Ca_trace.singleton (Spec_counter.get_op ~oid t !count))

let sync_queue_trace g ~oid ~threads ~elements =
  if threads < 2 then invalid_arg "Gen.sync_queue_trace: needs >= 2 threads";
  List.init elements (fun _ ->
      let roll = int g 10 in
      if roll < 6 then begin
        let a, b = two_distinct g threads in
        Spec_sync_queue.rendezvous ~oid (Ids.Tid.of_int a)
          (Value.int (int g 10))
          (Ids.Tid.of_int b)
      end
      else if roll < 8 then
        Ca_trace.singleton
          (Spec_sync_queue.put_op ~oid (Ids.Tid.of_int (int g threads))
             (Value.int (int g 10))
             ~ok:false)
      else
        Ca_trace.singleton
          (Spec_sync_queue.take_op ~oid (Ids.Tid.of_int (int g threads)) None))

(* Realise a trace as a history: emit each element's invocations at its
   boundary; responses are emitted immediately or deferred past later
   boundaries. A deferred response must be flushed before its thread's next
   invocation to keep the history well-formed. Delaying responses only
   removes real-time orderings, so the result agrees with the trace. *)
let history_of_trace ?(delay = 0.5) g tr =
  let deferred : (int * Action.t) list ref = ref [] in
  (* (thread, response) pairs *)
  let out = ref [] in
  let emit a = out := a :: !out in
  let flush_thread t =
    let mine, rest = List.partition (fun (t', _) -> t' = t) !deferred in
    deferred := rest;
    List.iter (fun (_, a) -> emit a) mine
  in
  let flush_some () =
    let keep, flush =
      List.partition (fun _ -> int g 100 < int_of_float (delay *. 100.)) !deferred
    in
    deferred := keep;
    List.iter (fun (_, a) -> emit a) flush
  in
  List.iter
    (fun e ->
      let ops = Ca_trace.element_ops e in
      (* a thread appearing here must have answered its previous call *)
      List.iter (fun (o : Op.t) -> flush_thread (Ids.Tid.to_int o.tid)) ops;
      List.iter
        (fun (o : Op.t) -> emit (Action.inv ~tid:o.tid ~oid:o.oid ~fid:o.fid o.arg))
        ops;
      List.iter
        (fun (o : Op.t) ->
          let res = Action.res ~tid:o.tid ~oid:o.oid ~fid:o.fid o.ret in
          if int g 100 < int_of_float (delay *. 100.) then
            deferred := (Ids.Tid.to_int o.tid, res) :: !deferred
          else emit res)
        ops;
      flush_some ())
    tr;
  List.iter (fun (_, a) -> emit a) !deferred;
  History.of_list (List.rev !out)

let mutate_history g h =
  let actions = Array.of_list (History.to_list h) in
  let n = Array.length actions in
  if n = 0 then h
  else begin
    let strategy = int g 3 in
    (match strategy with
    | 0 -> (
        (* corrupt a return value *)
        let i = int g n in
        match actions.(i) with
        | Action.Res { tid; oid; fid; _ } ->
            actions.(i) <- Action.res ~tid ~oid ~fid (Value.int (1000 + int g 10))
        | Action.Inv _ | Action.Crash _ -> ())
    | 1 ->
        (* swap two adjacent actions of different threads *)
        if n >= 2 then begin
          let i = int g (n - 1) in
          if not (Ids.Tid.equal (Action.tid actions.(i)) (Action.tid actions.(i + 1)))
          then begin
            let tmp = actions.(i) in
            actions.(i) <- actions.(i + 1);
            actions.(i + 1) <- tmp
          end
        end
    | _ -> (
        (* retarget a response to a different thread's style: swap the
           values of two responses *)
        let res_idx =
          Array.to_list actions
          |> List.mapi (fun i a -> (i, a))
          |> List.filter (fun (_, a) -> Action.is_res a)
          |> List.map fst
        in
        match res_idx with
        | i :: j :: _ when i <> j -> (
            match (actions.(i), actions.(j)) with
            | Action.Res r1, Action.Res r2 ->
                actions.(i) <-
                  Action.res ~tid:r1.tid ~oid:r1.oid ~fid:r1.fid r2.ret;
                actions.(j) <-
                  Action.res ~tid:r2.tid ~oid:r2.oid ~fid:r2.fid r1.ret
            | _ -> ())
        | _ -> ()));
    History.of_list (Array.to_list actions)
  end
