open Cal
open Conc
open Structures
open Prog.Infix

type result = {
  threads : int;
  steps : int;
  sim_time : float;
  ops_completed : int;
  ops_succeeded : int;
  ops_timed_out : int;
  ops_cancelled : int;
  retries : int;
  ops_crashed : int;
  sys_crashes : int;
  recovery_steps : int;
  throughput : float;
}

type stack_impl = Treiber_retry | Treiber_backoff | Elimination of int

(* Contention cost model. A unit-cost interleaving simulator misses the
   dominant scalability effect on real hardware: every CAS on a contended
   cache line — successful or not — serialises on that line and costs more
   the hotter the line is. CAS steps are labelled "…@location"; we keep an
   exponentially decaying access rate per location and charge

     cost(CAS at L) = 1 + beta * min(rate_L, cap)      (other steps cost 1)

   so a CAS on a line hammered by many threads is proportionally more
   expensive, while CASes spread over k locations (the elimination array)
   stay cheap. beta, tau and cap are fixed here and recorded in
   EXPERIMENTS.md; the qualitative shape is insensitive to their exact
   values. *)
module Cost_model = struct
  type t = {
    mutable time : float;
    rates : (string, float * float) Hashtbl.t; (* location -> rate, last time *)
  }

  let beta = 0.8
  let tau = 64.
  let cap = 24.

  let create () = { time = 0.; rates = Hashtbl.create 8 }

  let location label =
    match String.index_opt label '@' with
    | Some i -> Some (String.sub label (i + 1) (String.length label - i - 1))
    | None -> None

  let charge t label =
    match location label with
    | None -> t.time <- t.time +. 1.
    | Some l ->
        let rate, last =
          match Hashtbl.find_opt t.rates l with
          | Some (r, last) -> (r, last)
          | None -> (0., t.time)
        in
        let decayed = rate *. exp (-.(t.time -. last) /. tau) in
        let rate' = decayed +. 1. in
        Hashtbl.replace t.rates l (rate', t.time);
        t.time <- t.time +. 1. +. (beta *. Float.min decayed cap)

  let time t = t.time
end

(* A thread body looping forever; operation completions are counted through
   shared cells rather than the history (cheaper and fuel-friendly). *)
let forever body =
  let rec loop () = body () >>= fun () -> loop () in
  (* the loop never returns; give it an unreachable result type *)
  loop () >>= fun () -> Prog.return Value.unit

type counters = {
  completed : int ref;
  succeeded : int ref;
  timed_out : int ref;
  cancelled : int ref;
}

let count cs result =
  Prog.atomic ~label:"count" (fun () ->
      incr cs.completed;
      (match result with
      | `Success -> incr cs.succeeded
      | `Timeout -> incr cs.timed_out
      | `Cancelled -> incr cs.cancelled
      | `Failure -> ());
      ())

(* Operation results follow the library-wide value conventions: [ok]/[fail]
   pairs, the [timeout]/[cancelled] tags of timed operations, or a bare
   boolean. *)
let classify v =
  if Value.is_timeout v then `Timeout
  else if Value.is_cancelled v then `Cancelled
  else
    match v with
    | Value.Bool b | Value.Pair (Value.Bool b, _) ->
        if b then `Success else `Failure
    | _ -> `Failure

(* Recovery programs label their steps "recover@…" / "recover-scan@…"; a
   prefix check catches both without enumerating locations. *)
let is_recovery_label label =
  String.length label >= 7 && String.sub label 0 7 = "recover"

type meter = {
  counters : counters;
  retries : int ref;
  recovery_steps : int ref;
  model : Cost_model.t;
  charge : string -> unit;
}

let meter () =
  let counters =
    { completed = ref 0; succeeded = ref 0; timed_out = ref 0; cancelled = ref 0 }
  in
  let retries = ref 0 in
  let recovery_steps = ref 0 in
  let model = Cost_model.create () in
  (* "backoff" steps are exactly the failed-attempt pauses, so their count
     is the retry count of the run. *)
  let charge label =
    if Fault.matches_label ~pattern:"backoff" label then incr retries;
    if is_recovery_label label then incr recovery_steps;
    Cost_model.charge model label
  in
  { counters; retries; recovery_steps; model; charge }

let result_of ~threads m (outcome : Runner.outcome) =
  let counters = m.counters in
  let count_faults p =
    List.length (List.filter p outcome.Runner.injected)
  in
  let ops_crashed = count_faults (function Fault.Crash _ -> true | _ -> false) in
  let sys_crashes =
    count_faults (function Fault.Crash_system _ -> true | _ -> false)
  in
  let sim_time = Cost_model.time m.model in
  {
    threads;
    steps = outcome.Runner.steps;
    sim_time;
    ops_completed = !(counters.completed);
    ops_succeeded = !(counters.succeeded);
    ops_timed_out = !(counters.timed_out);
    ops_cancelled = !(counters.cancelled);
    retries = !(m.retries);
    ops_crashed;
    sys_crashes;
    recovery_steps = !(m.recovery_steps);
    throughput =
      (if sim_time = 0. then 0.
       else 1000. *. float_of_int !(counters.completed) /. sim_time);
  }

let measure ?(plan = []) ~threads ~fuel ~seed ~setup () =
  let m = meter () in
  let outcome =
    Runner.run_random ~plan
      ~setup:(fun ctx ->
        let program = setup ctx ~counters:m.counters in
        { program with Runner.on_label = Some m.charge })
      ~fuel
      ~rng:(Rng.create ~seed)
      ()
  in
  result_of ~threads m outcome

(* {!measure} for durable programs: the cost/retry/recovery hook is
   installed on the boot program and re-installed on every recovery
   program, so post-crash work is charged like any other. *)
let measure_durable ?(plan = []) ~threads ~fuel ~seed ~setup () =
  let m = meter () in
  let with_charge (p : Runner.program) =
    { p with Runner.on_label = Some m.charge }
  in
  let outcome =
    Runner.run_random_durable ~plan
      ~setup:(fun ctx ->
        let d = setup ctx ~counters:m.counters in
        {
          d with
          Runner.boot = with_charge d.Runner.boot;
          recover = (fun ~epoch -> with_charge (d.Runner.recover ~epoch));
        })
      ~fuel
      ~rng:(Rng.create ~seed)
      ()
  in
  result_of ~threads m outcome

let stack_setup ~impl ~threads ~seed ctx ~counters =
  let push, pop =
    match impl with
    | Treiber_retry ->
        let s = Treiber_stack.create ~instrument:false ~log_history:false ctx in
        (Treiber_stack.push_retry s, Treiber_stack.pop_retry s)
    | Treiber_backoff ->
        let s = Treiber_stack.create ~instrument:false ~log_history:false ctx in
        let pol = Backoff.policy ~seed:(Int64.add seed 11L) () in
        (Treiber_stack.push_retry ~backoff:pol s, Treiber_stack.pop_retry ~backoff:pol s)
    | Elimination k ->
        let rng = Rng.create ~seed:(Int64.add seed 7L) in
        let es =
          Elimination_stack.create ~instrument:false ~log_history:false ~k
            ~factory:(Elim_array.concrete_waiting ~wait:8)
            ~slot_strategy:(Elim_array.Seeded rng) ctx
        in
        (Elimination_stack.push es, Elimination_stack.pop es)
  in
  {
    Runner.threads =
      Array.init threads (fun i ->
          let tid = Ids.Tid.of_int i in
          forever (fun () ->
              let* _ = push ~tid (Value.int i) in
              let* () = count counters `Success in
              let* _ = pop ~tid in
              count counters `Success));
    observe = None;
    on_label = None;
  }

let stack_throughput ~impl ~threads ~fuel ~seed =
  measure ~threads ~fuel ~seed ~setup:(stack_setup ~impl ~threads ~seed) ()

(* A fault sweep crashes [crashes] distinct threads at seeded points early
   in the run, then measures what the survivors still deliver. *)
let crash_plan ~threads ~crashes ~seed =
  if crashes > threads then
    invalid_arg "Metrics.crash_plan: more crashes than threads";
  let rng = Rng.create ~seed:(Int64.add seed 23L) in
  List.init crashes (fun i ->
      Fault.crash ~thread:i ~at_step:(1 + Rng.int rng 500))

let stack_fault_sweep ~impl ~threads ~crashes ~fuel ~seed =
  let plan = crash_plan ~threads ~crashes ~seed in
  measure ~plan ~threads ~fuel ~seed ~setup:(stack_setup ~impl ~threads ~seed) ()

(* The B13 crash-recovery sweep: a durable Treiber stack under [crashes]
   evenly spaced whole-system crashes. After each crash thread 0 runs the
   stack's recovery procedure ([recovery_cost] scan steps) solo — the other
   threads block on the recovery flag until it finishes, since recovery's
   re-assertion of durable state must not race with new-era removals — and
   then every thread resumes the workload. The spacing floor keeps the plan
   strictly increasing even at tiny fuel. *)
let durable_stack_crash_sweep ~threads ~crashes ~recovery_cost ~fuel ~seed =
  if crashes < 0 then
    invalid_arg "Metrics.durable_stack_crash_sweep: negative crash count";
  let spacing = max 1 (fuel / (crashes + 1)) in
  let plan =
    List.init crashes (fun i -> Fault.crash_system ~at_step:((i + 1) * spacing))
  in
  let setup ctx ~counters =
    let domain = Pcell.domain () in
    let stack =
      Durable_treiber_stack.create ~log_history:false ~domain ctx
    in
    let worker i =
      let tid = Ids.Tid.of_int i in
      forever (fun () ->
          let* _ = Durable_treiber_stack.push stack ~tid (Value.int i) in
          let* () = count counters `Success in
          let* _ = Durable_treiber_stack.pop stack ~tid in
          count counters `Success)
    in
    let program threads' =
      { Runner.threads = threads'; observe = None; on_label = None }
    in
    {
      Runner.boot = program (Array.init threads worker);
      domain;
      recover =
        (fun ~epoch:_ ->
          let ready = ref false in
          program
            (Array.init threads (fun i ->
                 if i = 0 then
                   Durable_treiber_stack.recover ~cost:recovery_cost stack
                   >>= fun () ->
                   Prog.atomic ~label:"recovery-done" (fun () -> ready := true)
                   >>= fun () -> worker i
                 else
                   Prog.guard ~label:"await-recovery" (fun () ->
                       if !ready then Some (worker i) else None))));
    }
  in
  measure_durable ~plan ~threads ~fuel ~seed ~setup ()

let exchanger_success_rate ~threads ~rounds ~fuel ~seed =
  let setup ctx ~counters =
    let ex = Exchanger.create ~instrument:false ~log_history:false ~wait:8 ctx in
    {
      Runner.threads =
        Array.init threads (fun i ->
            let tid = Ids.Tid.of_int i in
            let rec go k =
              if k = 0 then Prog.return Value.unit
              else
                let* r = Exchanger.exchange_body ex ~tid (Value.int i) in
                let ok, _ = Value.to_pair r in
                let* () =
                  count counters (if Value.to_bool ok then `Success else `Failure)
                in
                go (k - 1)
            in
            go rounds);
      observe = None;
      on_label = None;
    }
  in
  measure ~threads ~fuel ~seed ~setup ()

(* Each round arms a fresh absolute deadline on the thread's perceived
   clock, so a round either swaps or times out — no thread is ever stuck. *)
let exchanger_timed_rate ?(plan = []) ~threads ~deadline ~fuel ~seed () =
  if deadline < 1 then invalid_arg "Metrics.exchanger_timed_rate: deadline < 1";
  let setup ctx ~counters =
    let ex = Exchanger.create ~instrument:false ~log_history:false ~wait:8 ctx in
    {
      Runner.threads =
        Array.init threads (fun i ->
            let tid = Ids.Tid.of_int i in
            forever (fun () ->
                let* d =
                  Prog.atomic ~label:"arm-deadline" (fun () ->
                      Ctx.local_now ctx ~tid + deadline)
                in
                let* r = Exchanger.exchange_timed_body ex ~tid ~deadline:d (Value.int i) in
                count counters (classify r)));
      observe = None;
      on_label = None;
    }
  in
  measure ~plan ~threads ~fuel ~seed ~setup ()

let sync_queue_handoffs ~producers ~consumers ~rounds ~fuel ~seed =
  let threads = producers + consumers in
  let setup ctx ~counters =
    let q = Sync_queue.create ~instrument:false ~log_history:false ~wait:8 ctx in
    {
      Runner.threads =
        Array.init threads (fun i ->
            let tid = Ids.Tid.of_int i in
            let rec go k =
              if k = 0 then Prog.return Value.unit
              else
                let* r =
                  if i < producers then Sync_queue.put q ~tid (Value.int i)
                  else Sync_queue.take q ~tid
                in
                let success =
                  match r with
                  | Value.Bool b -> b
                  | Value.Pair (Value.Bool b, _) -> b
                  | _ -> false
                in
                let* () = count counters (if success then `Success else `Failure) in
                go (k - 1)
            in
            go rounds);
      observe = None;
      on_label = None;
    }
  in
  measure ~threads ~fuel ~seed ~setup ()

(* ------------------------------------------ exploration engine cost --- *)

type explore_cost = {
  engine : string;
  explored_runs : int;
  nodes : int;
  steps_executed : int;
  replayed_steps : int;
  fingerprint_hits : int;
  sleep_pruned : int;
  races_found : int;
  backtrack_points : int;
  bound_hits : int;
  explore_bounded : bool;
  domains_used : int;
  domains_requested : int;
  tasks_stolen : int;
  explore_truncated : bool;
}

let explore_cost ~engine ~setup ~fuel ?max_runs ?preemption_bound () =
  let name, stats =
    match engine with
    | `Replay ->
        ( "replay",
          Explore.exhaustive_via_replay ~setup ~fuel ?max_runs
            ?preemption_bound ~f:ignore () )
    | `Incremental ->
        ( "incremental",
          Explore.exhaustive ~prune:false ~setup ~fuel ?max_runs
            ?preemption_bound ~f:ignore () )
    | `Pruned ->
        ( "incremental+prune",
          Explore.exhaustive ~prune:true ~setup ~fuel ?max_runs
            ?preemption_bound ~f:ignore () )
    | `Parallel d ->
        ( Printf.sprintf "parallel-%d" d,
          Explore.exhaustive ~prune:false ~domains:d ~setup ~fuel ?max_runs
            ?preemption_bound ~f:ignore () )
    | `Dpor ->
        ( "dpor",
          Explore.exhaustive_strategy ~strategy:Explore.Dpor ~setup ~fuel
            ?max_runs ~f:ignore () )
    | `Preemption_bounded b ->
        ( Printf.sprintf "preemption:%d" b,
          Explore.exhaustive_strategy
            ~strategy:(Explore.Preemption_bounded { bound = b })
            ~setup ~fuel ?max_runs ~f:ignore () )
    | `Delay_bounded b ->
        ( Printf.sprintf "delay:%d" b,
          Explore.exhaustive_strategy
            ~strategy:(Explore.Delay_bounded { bound = b })
            ~setup ~fuel ?max_runs ~f:ignore () )
  in
  let steps_executed =
    match engine with
    | `Replay ->
        (* the replay engine executes exactly the steps it replays *)
        stats.Explore.replayed_steps
    | `Incremental | `Pruned | `Parallel _ | `Dpor | `Preemption_bounded _
    | `Delay_bounded _ ->
        (* one fresh step per tree edge, plus the backtracking replays *)
        max 0 (stats.Explore.nodes - 1) + stats.Explore.replayed_steps
  in
  {
    engine = name;
    explored_runs = stats.Explore.runs;
    nodes = stats.Explore.nodes;
    steps_executed;
    replayed_steps = stats.Explore.replayed_steps;
    fingerprint_hits = stats.Explore.fingerprint_hits;
    sleep_pruned = stats.Explore.sleep_pruned;
    races_found = stats.Explore.races_found;
    backtrack_points = stats.Explore.backtrack_points;
    bound_hits = stats.Explore.bound_hits;
    explore_bounded = stats.Explore.bounded;
    domains_used = stats.Explore.domains_used;
    domains_requested = stats.Explore.domains_requested;
    tasks_stolen = stats.Explore.tasks_stolen;
    explore_truncated = stats.Explore.truncated;
  }

let pp_explore_cost ppf c =
  Fmt.pf ppf
    "%-18s runs=%-6d nodes=%-7d steps=%-8d replayed=%-8d fp=%-5d sleep=%d%s%s%s%s"
    c.engine c.explored_runs c.nodes c.steps_executed c.replayed_steps
    c.fingerprint_hits c.sleep_pruned
    (if c.races_found > 0 || c.backtrack_points > 0 then
       Fmt.str " races=%d backtracks=%d" c.races_found c.backtrack_points
     else "")
    (if c.explore_bounded then Fmt.str " bound-hits=%d" c.bound_hits else "")
    (if c.domains_used > 1 || c.domains_requested > c.domains_used then
       Fmt.str " domains=%d%s stolen=%d" c.domains_used
         (if c.domains_requested > c.domains_used then
            Fmt.str "/%d-requested" c.domains_requested
          else "")
         c.tasks_stolen
     else "")
    (if c.explore_truncated then " [truncated]" else "")

(* ------------------------------------------- sampled-checking cost --- *)

type sampling_cost = {
  sc_scenario : string;
  sc_sampler : string;
  sc_seed : int64;
  sc_budget : int;
  sc_runs : int;
  sc_detected : bool;
  sc_witness_len : int;
  sc_shrink_candidates : int;
  sc_shrink_steps_removed : int;
}

let sampling_cost_of_report ~scenario ~kind ~seed ~budget
    (r : Verify.Obligations.report) =
  let witness_len =
    match r.Verify.Obligations.problems with
    | p :: _ -> List.length p.Verify.Obligations.schedule
    | [] -> 0
  in
  let candidates, removed =
    match r.Verify.Obligations.exploration with
    | Some s ->
        (s.Conc.Explore.shrink_candidates, s.Conc.Explore.shrink_steps_removed)
    | None -> (0, 0)
  in
  {
    sc_scenario = scenario;
    sc_sampler = Conc.Sampler.kind_to_string kind;
    sc_seed = seed;
    sc_budget = budget;
    sc_runs = r.Verify.Obligations.runs;
    sc_detected = not (Verify.Obligations.ok r);
    sc_witness_len = witness_len;
    sc_shrink_candidates = candidates;
    sc_shrink_steps_removed = removed;
  }

let sampling_cost ~kind ~seed ~budget ?fault_bound (s : Scenarios.t) =
  let report =
    match fault_bound with
    | None ->
        Verify.Obligations.check_sampled ~kind ~seed ~setup:s.Scenarios.setup
          ~spec:s.Scenarios.spec ~view:s.Scenarios.view ~fuel:s.Scenarios.fuel
          ~budget ()
    | Some fault_bound ->
        Verify.Obligations.check_sampled_with_faults ~kind ~seed ~fault_bound
          ~setup:s.Scenarios.setup ~spec:s.Scenarios.spec ~view:s.Scenarios.view
          ~fuel:s.Scenarios.fuel ~budget ()
  in
  sampling_cost_of_report ~scenario:s.Scenarios.name ~kind ~seed ~budget report

let sampling_cost_durable ~kind ~seed ~budget (d : Scenarios.durable) =
  let report =
    Verify.Obligations.check_sampled_durable ~kind ~seed
      ~max_crash_depth:d.Scenarios.d_max_crash_depth
      ~setup:d.Scenarios.d_setup ~spec:d.Scenarios.d_spec
      ~fuel:d.Scenarios.d_fuel ~budget ()
  in
  sampling_cost_of_report ~scenario:d.Scenarios.d_name ~kind ~seed ~budget
    report

let pp_sampling_cost ppf c =
  Fmt.pf ppf
    "%-28s %-12s seed=%-4Ld budget=%-5d runs=%-5d detected=%b witness=%d \
     shrink-candidates=%d removed=%d"
    c.sc_scenario c.sc_sampler c.sc_seed c.sc_budget c.sc_runs c.sc_detected
    c.sc_witness_len c.sc_shrink_candidates c.sc_shrink_steps_removed

let pp_result ppf r =
  Fmt.pf ppf
    "threads=%d steps=%d ops=%d ok=%d timeout=%d cancel=%d retries=%d crashed=%d \
     throughput=%.2f/1k-steps"
    r.threads r.steps r.ops_completed r.ops_succeeded r.ops_timed_out
    r.ops_cancelled r.retries r.ops_crashed r.throughput;
  if r.sys_crashes > 0 || r.recovery_steps > 0 then
    Fmt.pf ppf " sys-crashes=%d recovery-steps=%d" r.sys_crashes
      r.recovery_steps
