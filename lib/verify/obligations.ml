open Cal

type problem = {
  schedule : Conc.Runner.schedule;
  plan : Conc.Fault.plan;  (* [] unless the run was fault-injected *)
  message : string;
}

(* Reproduction metadata of a sampled check: the kind/seed/budget triple
   replays the identical run sequence. *)
type sampling = {
  s_kind : Conc.Sampler.kind;
  s_seed : int64;
  s_budget : int;
}

type report = {
  runs : int;
  complete_runs : int;
  problems : problem list;
  truncated : bool;
  exploration : Conc.Explore.stats option;
      (* engine cost counters of the underlying exploration, when the
         check ran on the exhaustive engine *)
  sampling : sampling option;  (* Some _ exactly for check_sampled* *)
}

(* ---------------------------------------------------- parallel knobs --- *)

(* Default worker-domain count, from CAL_EXPLORE_DOMAINS (>= 1). The env
   override is consumed here — the Obligations layer — and nowhere lower,
   so library callers of Conc.Explore are never surprised by it. *)
let env_domains () =
  match Sys.getenv_opt "CAL_EXPLORE_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)
  | None -> 1

(* Parallel checking is only used on untruncated sweeps: under a shared
   [max_runs] budget the admitted run subset is scheduling-dependent, and
   report determinism (runs, problems) is part of this module's contract. *)
let resolve_domains ~max_runs domains =
  if max_runs <> None then 1
  else match domains with Some d -> max 1 d | None -> env_domains ()

(* Default exploration strategy, from CAL_EXPLORE_STRATEGY ("dfs", "dpor",
   "preemption:N", "delay:N" — see {!Conc.Explore.strategy_of_string}).
   Consumed here for the same reason as CAL_EXPLORE_DOMAINS; unknown
   values fall back to the plain DFS. *)
let env_strategy () =
  match Sys.getenv_opt "CAL_EXPLORE_STRATEGY" with
  | None -> Conc.Explore.Dfs
  | Some s -> (
      match Conc.Explore.strategy_of_string (String.trim s) with
      | Some st -> st
      | None -> Conc.Explore.Dfs)

let resolve_strategy strategy =
  match strategy with Some s -> s | None -> env_strategy ()

let cache_default () = Conc.Explore.env_flag "CAL_VERDICT_CACHE"

let new_cache cache =
  let on = match cache with Some c -> c | None -> cache_default () in
  if on then
    Some (Verdict_cache.create ?capacity:(Tuning.verdict_cache_capacity ()) ())
  else None

(* Patch the cache counters into the report's exploration stats. *)
let patch_cache vc r =
  match (vc, r.exploration) with
  | Some c, Some (s : Conc.Explore.stats) ->
      { r with exploration = Some { s with cache_hits = Verdict_cache.hits c } }
  | _ -> r

(* ------------------------------------------------- outcome collection -- *)

(* One accumulator per exploration unit (subtree task / fault plan): the
   parallel engine gives every unit its own, so recording needs no
   synchronisation, and merging the units in canonical task order
   reproduces the sequential report exactly. *)
type acc = {
  mutable a_runs : int;
  mutable a_complete : int;
  mutable a_problems : problem list;  (* newest first, capped at 10 *)
}

let new_acc () = { a_runs = 0; a_complete = 0; a_problems = [] }

let record check acc (outcome : Conc.Runner.outcome) =
  acc.a_runs <- acc.a_runs + 1;
  if outcome.Conc.Runner.complete then acc.a_complete <- acc.a_complete + 1;
  match check outcome with
  | Ok () -> ()
  | Error message ->
      if List.length acc.a_problems < 10 then
        acc.a_problems <-
          { schedule = outcome.schedule; plan = outcome.faults; message }
          :: acc.a_problems

let cap10 l = List.filteri (fun i _ -> i < 10) l

(* Units are capped at 10 problems each and the concatenation re-capped:
   the first 10 problems in canonical delivery order, i.e. the sequential
   report's problem list. *)
let report_of ?exploration ~truncated accs =
  {
    runs = Array.fold_left (fun n a -> n + a.a_runs) 0 accs;
    complete_runs = Array.fold_left (fun n a -> n + a.a_complete) 0 accs;
    problems =
      cap10 (List.concat_map (fun a -> List.rev a.a_problems) (Array.to_list accs));
    truncated;
    exploration;
    sampling = None;
  }

(* Remove one occurrence of [op] from [ops]; None when absent. *)
let remove_one op ops =
  let rec go acc = function
    | [] -> None
    | o :: rest ->
        if Op.equal o op then Some (List.rev_append acc rest) else go (o :: acc) rest
  in
  go [] ops

let reconcile h trace =
  match History.validate h with
  | Error reason -> Error ("ill-formed history: " ^ reason)
  | Ok () ->
      let entries = History.entries h in
      let trace_ops = ref (Ca_trace.ops trace) in
      let errors = ref [] in
      (* account every completed operation *)
      List.iter
        (fun (e : History.entry) ->
          match History.op_of_entry e with
          | None -> ()
          | Some op -> (
              match remove_one op !trace_ops with
              | Some rest -> trace_ops := rest
              | None ->
                  errors :=
                    Fmt.str "completed operation %a missing from the trace" Op.pp op
                    :: !errors))
        entries;
      (* pending operations: adopt the trace's commitment or drop *)
      let dropped = ref [] in
      let appended = ref [] in
      List.iter
        (fun (e : History.entry) ->
          if e.ret = None then begin
            let matches (o : Op.t) =
              Ids.Tid.equal o.tid e.tid && Ids.Oid.equal o.oid e.oid
              && Ids.Fid.equal o.fid e.fid && Value.equal o.arg e.arg
            in
            match List.find_opt matches !trace_ops with
            | Some o ->
                trace_ops := Option.get (remove_one o !trace_ops);
                appended :=
                  Action.res ~tid:e.tid ~oid:e.oid ~fid:e.fid o.ret :: !appended
            | None -> dropped := e.inv_index :: !dropped
          end)
        entries;
      List.iter
        (fun (o : Op.t) ->
          errors :=
            Fmt.str "trace operation %a does not occur in the history" Op.pp o
            :: !errors)
        !trace_ops;
      if !errors <> [] then Error (String.concat "; " (List.rev !errors))
      else begin
        let kept =
          History.to_list h
          |> List.filteri (fun idx _ -> not (List.mem idx !dropped))
        in
        Ok (History.of_list (kept @ List.rev !appended))
      end

let check_outcome ~spec ~view (outcome : Conc.Runner.outcome) =
  let viewed = view outcome.trace in
  match Spec.explain_rejection spec viewed with
  | Some msg -> Error ("spec obligation: " ^ msg)
  | None -> (
      match reconcile outcome.history viewed with
      | Error msg -> Error ("reconciliation: " ^ msg)
      | Ok completion -> (
          match Agreement.check completion viewed with
          | Error msg -> Error ("agreement obligation: " ^ msg)
          | Ok _ -> Ok ()))

let collect ?domains ?strategy ~setup ~fuel ?max_runs ?preemption_bound
    ~check () =
  let domains = resolve_domains ~max_runs domains in
  let stats, accs =
    match resolve_strategy strategy with
    | Conc.Explore.Dfs ->
        Conc.Explore.exhaustive_collect ~domains ~setup ~fuel ?max_runs
          ?preemption_bound ~init:new_acc ~f:(record check) ()
    | strategy ->
        (* the legacy DFS [preemption_bound] pruner is subsumed by the
           [Preemption_bounded] strategy; off the Dfs path it is ignored
           rather than composed, so the strategy alone defines the run set *)
        Conc.Explore.exhaustive_strategy_collect ~strategy ~domains ~setup
          ~fuel ?max_runs ~init:new_acc ~f:(record check) ()
  in
  report_of ~exploration:stats ~truncated:stats.truncated accs

let check_object ?domains ?strategy ~setup ~spec ~view ~fuel ?max_runs
    ?preemption_bound () =
  collect ?domains ?strategy ~setup ~fuel ?max_runs ?preemption_bound
    ~check:(check_outcome ~spec ~view) ()

(* Collapse the per-plan counters of a fault/crash sweep into the single
   exploration stats slot of a report. *)
let fault_exploration (stats : Conc.Explore.fault_stats) =
  Conc.Explore.
    {
      Conc.Explore.empty_stats with
      runs = stats.fault_runs;
      truncated = stats.fault_truncated;
      max_steps = stats.fault_max_steps;
      nodes = stats.fault_nodes;
      replayed_steps = stats.fault_replayed_steps;
      fingerprint_hits = stats.fault_fingerprint_hits;
      sleep_pruned = stats.fault_sleep_pruned;
      tasks_stolen = stats.fault_tasks_stolen;
      domains_used = stats.fault_domains_used;
      domains_requested = stats.fault_domains_requested;
    }

let check_object_with_faults ?delay_factors ?domains ~setup ~spec ~view ~fuel
    ?max_runs ?preemption_bound ?max_plans ~fault_bound () =
  let domains = resolve_domains ~max_runs domains in
  let stats, accs =
    Conc.Explore.exhaustive_with_faults_collect ?delay_factors ~domains ~setup
      ~fuel ?max_runs ?preemption_bound ?max_plans ~fault_bound ~init:new_acc
      ~f:(record (check_outcome ~spec ~view))
      ()
  in
  report_of
    ~exploration:(fault_exploration stats)
    ~truncated:stats.Conc.Explore.fault_truncated accs

(* The liveness obligation (watchdog): on every fair schedule the object
   either finishes or genuinely blocks. A livelocked run — incomplete at
   fuel, decisions still enabled, no thread starved — is a problem; starved
   runs are excused (the schedule was unfair) and deadlocks are the
   blocking structures' legitimate behaviour. *)
let liveness_report ~fuel ~window (stats : Conc.Explore.liveness_stats) =
  let problems =
    List.map
      (fun (schedule, plan) ->
        {
          schedule;
          plan;
          message =
            Fmt.str
              "liveness obligation: livelock — incomplete at fuel %d with \
               enabled decisions and no thread starved (window %d)"
              fuel window;
        })
      stats.Conc.Explore.livelocks
  in
  {
    runs = stats.Conc.Explore.live_runs;
    complete_runs = stats.Conc.Explore.live_completed;
    problems;
    truncated = stats.Conc.Explore.live_truncated;
    exploration = None;
    sampling = None;
  }

let check_liveness ?plan ~setup ~fuel ~window ?max_runs ?preemption_bound () =
  liveness_report ~fuel ~window
    (Conc.Explore.liveness ?plan ~setup ~fuel ~window ?max_runs ?preemption_bound ())

let check_liveness_with_faults ?delay_factors ~setup ~fuel ~window ?max_runs
    ?preemption_bound ?max_plans ~fault_bound () =
  let _plans, stats =
    Conc.Explore.liveness_with_faults ?delay_factors ~setup ~fuel ~window
      ?max_runs ?preemption_bound ?max_plans ~fault_bound ()
  in
  liveness_report ~fuel ~window stats

(* Black-box checks decide the verdict on the history alone, so the verdict
   is a function of the canonical history ({!Cal.History.canonicalize}) —
   schedules that interleave the same operations with the same concurrency
   structure share one checker run through the verdict cache. Trace-based
   checks ({!check_object}) are never cached: their verdict also depends on
   the auxiliary trace, which the canonical key does not cover. *)
let check_black_box ?domains ?strategy ?cache ~setup ~spec ~fuel ?max_runs
    ?preemption_bound () =
  let vc = new_cache cache in
  let base (outcome : Conc.Runner.outcome) () =
    match Cal_checker.check ~spec outcome.history with
    | Cal_checker.Accepted _ -> Ok ()
    | Cal_checker.Rejected { reason; _ } -> Error reason
  in
  let check outcome =
    match vc with
    | None -> base outcome ()
    | Some c ->
        Verdict_cache.find_or_compute c
          ~key:(History.canonical_key outcome.Conc.Runner.history)
          (base outcome)
  in
  patch_cache vc
    (collect ?domains ?strategy ~setup ~fuel ?max_runs ?preemption_bound
       ~check ())

(* ------------------------------------------------ durable obligations -- *)

(* Durable checking is black-box on the history: the structures' explicit
   flush discipline means a {e peer's} flush can decide whether a pending
   write persisted, so reconciling a self-reported trace against the
   history would mis-attribute persistence (see DESIGN §2.10). The checker
   composes the crash-tolerant mode (threads crashed by the plan) with the
   durable era rules driven by the history's crash markers. *)
let crashed_tids (outcome : Conc.Runner.outcome) =
  List.filter_map
    (function
      | Conc.Fault.Crash { thread; _ } -> Some thread
      | _ -> None)
    outcome.injected
  |> List.sort_uniq Int.compare

let durable_check ~checker ~spec (outcome : Conc.Runner.outcome) =
  let crashed =
    match crashed_tids outcome with
    | [] -> None
    | tids -> Some (List.map Ids.Tid.of_int tids)
  in
  match checker with
  | `Cal -> (
      match Cal_checker.check ?crashed ~spec outcome.history with
      | Cal_checker.Accepted _ -> Ok ()
      | Cal_checker.Rejected { reason; _ } -> Error reason)
  | `Lin -> (
      match Lin_checker.check ?crashed ~spec outcome.history with
      | Lin_checker.Linearizable _ -> Ok ()
      | Lin_checker.Not_linearizable { reason; _ } -> Error reason)

(* Durable verdicts additionally depend on which threads the plan crashed
   (the checker's crash-tolerant mode) and on which checker runs, so both
   go into the cache key next to the canonical history. *)
let durable_key ~checker (outcome : Conc.Runner.outcome) =
  String.concat "|"
    ((match checker with `Cal -> "cal" | `Lin -> "lin")
    :: List.map string_of_int (crashed_tids outcome))
  ^ "\n"
  ^ History.canonical_key outcome.history

let check_durable_with_faults ?(checker = `Cal) ?cache ?delay_factors ~setup
    ~spec ~fuel ?max_runs ?preemption_bound ?max_plans ?max_crash_depth
    ~fault_bound () =
  let vc = new_cache cache in
  let check outcome =
    match vc with
    | None -> durable_check ~checker ~spec outcome
    | Some c ->
        Verdict_cache.find_or_compute c ~key:(durable_key ~checker outcome)
          (fun () -> durable_check ~checker ~spec outcome)
  in
  let acc = new_acc () in
  let stats =
    Conc.Explore.exhaustive_with_crashes ?delay_factors ~setup ~fuel ?max_runs
      ?preemption_bound ?max_plans ?max_crash_depth ~fault_bound
      ~f:(record check acc) ()
  in
  patch_cache vc
    (report_of
       ~exploration:(fault_exploration stats)
       ~truncated:stats.Conc.Explore.fault_truncated [| acc |])

let check_durable ?checker ?cache ~setup ~spec ~fuel ?max_runs
    ?preemption_bound ?max_plans ?max_crash_depth () =
  check_durable_with_faults ?checker ?cache ~setup ~spec ~fuel ?max_runs
    ?preemption_bound ?max_plans ?max_crash_depth ~fault_bound:0 ()

(* ------------------------------------------------- sampled obligations -- *)

(* Sampled checking (DESIGN §2.12): run the program [budget] times under a
   randomized Sampler scheduler, check every outcome with the same
   obligations as the exhaustive sweeps, exit at the first violation,
   minimize its (schedule, plan) witness with Shrink, and render a
   failure report that is a complete reproduction recipe on its own:
   sampler kind + seed + budget replay the run sequence, and the printed
   minimal schedule/plan replay the violation directly. *)

let default_kind = Conc.Sampler.Pct { d = 3 }

let sampled_stats ~runs ~max_steps ~violations ~shrink_candidates
    ~shrink_steps_removed =
  Conc.Explore.
    {
      Conc.Explore.empty_stats with
      runs;
      max_steps;
      sampled_runs = runs;
      violations_found = violations;
      shrink_candidates;
      shrink_steps_removed;
    }

let render_sampled_problem ~kind ~seed ~budget ~fuel ~run_index ~target ~plan
    ~schedule ~(outcome : Conc.Runner.outcome) ~message
    ~(shrink : Conc.Shrink.stats option) =
  let segs =
    Conc.Shrink.segments target ~plan schedule
    |> List.map (fun (thread, preemptive, steps) ->
           { Cal.Witness.thread; preemptive; steps })
  in
  let shrink_line =
    match shrink with
    | None -> "shrink: off (reporting the raw sampled witness)"
    | Some s ->
        Fmt.str
          "shrink: removed %d schedule decisions and %d plan elements (%d \
           candidate replays, %d rounds); the witness is 1-minimal"
          s.steps_removed s.plan_removed s.candidates s.rounds
  in
  (* The racing step pairs of the (minimized) witness: one replay through
     the vector-clock analysis, capped so a pathological schedule cannot
     flood the report. *)
  let races =
    match target with
    | Conc.Shrink.Program setup -> Conc.Explore.races_of ~plan ~setup schedule
    | Conc.Shrink.Durable setup ->
        Conc.Explore.races_of_durable ~plan ~setup schedule
  in
  let cap = Tuning.witness_race_cap () in
  let shown = List.filteri (fun i _ -> i < cap) races in
  let hidden = List.length races - List.length shown in
  let races_line =
    if races <> [] && shown = [] then
      Fmt.str "races: %d pairs (raise CAL_WITNESS_RACE_CAP to list them)"
        (List.length races)
    else
      Fmt.str "%a%s" Cal.Witness.pp_races shown
        (if hidden > 0 then Fmt.str " (+%d more)" hidden else "")
  in
  Fmt.str
    "@[<v>sampled violation at run %d/%d (sampler %s, seed %Ld, fuel %d)@,\
     verdict: %s@,\
     threads: %s (%d decisions)@,\
     %s@,\
     %s@,\
     history:@,  @[<v>%a@]@,\
     reproduce: rerun the sampled check with this sampler/seed/budget, or \
     replay the schedule/fault lines below@]"
    run_index budget
    (Conc.Sampler.kind_to_string kind)
    seed fuel message
    (Cal.Witness.schedule_string segs)
    (List.length schedule) races_line shrink_line Cal.Witness.pp_era_history
    outcome.history

let sampled_report ~kind ~seed ~budget ~fuel ~shrink ~target ~check
    ~sample_one () =
  let acc = new_acc () in
  let violations = ref 0 in
  let sh_cand = ref 0 and sh_removed = ref 0 in
  let max_steps = ref 0 in
  let stop = ref false in
  let run_index = ref 0 in
  while (not !stop) && !run_index < budget do
    incr run_index;
    let outcome = sample_one () in
    acc.a_runs <- acc.a_runs + 1;
    if outcome.Conc.Runner.complete then acc.a_complete <- acc.a_complete + 1;
    max_steps := max !max_steps outcome.Conc.Runner.steps;
    match check outcome with
    | Ok () -> ()
    | Error message ->
        (* early exit: sampling is a detection mode, one (minimized)
           counterexample is the deliverable *)
        incr violations;
        stop := true;
        let fails o = Result.is_error (check o) in
        let schedule, plan, final, sstats =
          if shrink then
            match
              Conc.Shrink.minimize ~target ~fails
                ~schedule:outcome.Conc.Runner.schedule
                ~plan:outcome.Conc.Runner.faults ()
            with
            | Ok m ->
                sh_cand := m.Conc.Shrink.m_stats.candidates;
                sh_removed := m.Conc.Shrink.m_stats.steps_removed;
                (m.m_schedule, m.m_plan, m.m_outcome, Some m.m_stats)
            | Error _ ->
                (outcome.Conc.Runner.schedule, outcome.Conc.Runner.faults,
                 outcome, None)
          else
            (outcome.Conc.Runner.schedule, outcome.Conc.Runner.faults,
             outcome, None)
        in
        (* the verdict of the minimal witness, not the original run's *)
        let message =
          match check final with Error m -> m | Ok () -> message
        in
        acc.a_problems <-
          {
            schedule;
            plan;
            message =
              render_sampled_problem ~kind ~seed ~budget ~fuel
                ~run_index:!run_index ~target ~plan ~schedule ~outcome:final
                ~message ~shrink:sstats;
          }
          :: acc.a_problems
  done;
  {
    runs = acc.a_runs;
    complete_runs = acc.a_complete;
    problems = List.rev acc.a_problems;
    truncated = false;
    exploration =
      Some
        (sampled_stats ~runs:acc.a_runs ~max_steps:!max_steps
           ~violations:!violations ~shrink_candidates:!sh_cand
           ~shrink_steps_removed:!sh_removed);
    sampling = Some { s_kind = kind; s_seed = seed; s_budget = budget };
  }

let check_sampled ?(kind = default_kind) ?(seed = 1L) ?(shrink = true) ~setup
    ~spec ~view ~fuel ~budget () =
  let rng = Conc.Rng.create ~seed in
  sampled_report ~kind ~seed ~budget ~fuel ~shrink
    ~target:(Conc.Shrink.Program setup)
    ~check:(check_outcome ~spec ~view)
    ~sample_one:(fun () -> Conc.Sampler.run ~kind ~setup ~fuel ~rng ())
    ()

let check_sampled_with_faults ?(kind = default_kind) ?(seed = 1L)
    ?(shrink = true) ?delay_factors ?(fault_bound = 1) ~setup ~spec ~view
    ~fuel ~budget () =
  let rng = Conc.Rng.create ~seed in
  let space = Conc.Sampler.probe ~setup ~fuel ~runs:4 ~rng () in
  sampled_report ~kind ~seed ~budget ~fuel ~shrink
    ~target:(Conc.Shrink.Program setup)
    ~check:(check_outcome ~spec ~view)
    ~sample_one:(fun () ->
      let plan =
        Conc.Sampler.sample_plan ~fault_bound ?delay_factors space ~rng
      in
      Conc.Sampler.run ~plan ~kind ~setup ~fuel ~rng ())
    ()

let check_sampled_durable ?(checker = `Cal) ?(kind = default_kind)
    ?(seed = 1L) ?(shrink = true) ?delay_factors ?(fault_bound = 0)
    ?(max_crash_depth = 1) ~setup ~spec ~fuel ~budget () =
  let rng = Conc.Rng.create ~seed in
  let space = Conc.Sampler.probe_durable ~setup ~fuel ~runs:4 ~rng () in
  let check o =
    Result.map_error
      (fun m ->
        (match checker with
        | `Cal -> "durable CAL obligation: "
        | `Lin -> "durable linearizability obligation: ")
        ^ m)
      (durable_check ~checker ~spec o)
  in
  sampled_report ~kind ~seed ~budget ~fuel ~shrink
    ~target:(Conc.Shrink.Durable setup) ~check
    ~sample_one:(fun () ->
      let plan =
        Conc.Sampler.sample_plan ~fault_bound ?delay_factors
          ~crash_depth:max_crash_depth space ~rng
      in
      Conc.Sampler.run_durable ~plan ~kind ~setup ~fuel ~rng ())
    ()

let ok r = r.problems = []

let pp_exploration ppf (s : Conc.Explore.stats) =
  Fmt.pf ppf " [nodes %d, replayed %d steps%s%s%s%s%s%s]" s.nodes
    s.replayed_steps
    (if s.fingerprint_hits > 0 || s.sleep_pruned > 0 then
       Fmt.str ", pruned %d fp + %d sleep" s.fingerprint_hits s.sleep_pruned
     else "")
    (if s.races_found > 0 || s.backtrack_points > 0 then
       Fmt.str ", %d races / %d backtrack points" s.races_found
         s.backtrack_points
     else "")
    (if s.bounded then Fmt.str ", bounded (%d bound hits)" s.bound_hits
     else "")
    (if s.domains_used > 1 || s.domains_requested > s.domains_used then
       Fmt.str ", %d domains%s (%d stolen)" s.domains_used
         (if s.domains_requested > s.domains_used then
            Fmt.str " of %d requested (hardware cap)" s.domains_requested
          else "")
         s.tasks_stolen
     else "")
    (if s.cache_hits > 0 then Fmt.str ", %d cache hits" s.cache_hits else "")
    (if s.sampled_runs > 0 then
       Fmt.str ", sampled %d (%d violations, shrink %d candidates/%d removed)"
         s.sampled_runs s.violations_found s.shrink_candidates
         s.shrink_steps_removed
     else "")

let pp_sampling ppf s =
  Fmt.pf ppf " [sampler %s, seed %Ld, budget %d]"
    (Conc.Sampler.kind_to_string s.s_kind)
    s.s_seed s.s_budget

let pp_report ppf r =
  if ok r then begin
    Fmt.pf ppf "OK: %d runs (%d complete)%s" r.runs r.complete_runs
      (if r.truncated then " [truncated]" else "");
    Option.iter (pp_sampling ppf) r.sampling;
    Option.iter (pp_exploration ppf) r.exploration
  end
  else
    Fmt.pf ppf "@[<v>%d PROBLEMS over %d runs:@,%a@]" (List.length r.problems) r.runs
      (Fmt.list ~sep:Fmt.cut (fun ppf (p : problem) ->
           Fmt.pf ppf "- %s@,  schedule: %a" p.message
             (Fmt.list ~sep:(Fmt.any " ") Conc.Runner.pp_decision)
             p.schedule;
           if p.plan <> [] then
             Fmt.pf ppf "@,  faults: %a" Conc.Fault.pp_plan p.plan))
      r.problems
