open Cal

type problem = {
  schedule : Conc.Runner.schedule;
  plan : Conc.Fault.plan;  (* [] unless the run was fault-injected *)
  message : string;
}

type report = {
  runs : int;
  complete_runs : int;
  problems : problem list;
  truncated : bool;
  exploration : Conc.Explore.stats option;
      (* engine cost counters of the underlying exploration, when the
         check ran on the exhaustive engine *)
}

(* Remove one occurrence of [op] from [ops]; None when absent. *)
let remove_one op ops =
  let rec go acc = function
    | [] -> None
    | o :: rest ->
        if Op.equal o op then Some (List.rev_append acc rest) else go (o :: acc) rest
  in
  go [] ops

let reconcile h trace =
  match History.validate h with
  | Error reason -> Error ("ill-formed history: " ^ reason)
  | Ok () ->
      let entries = History.entries h in
      let trace_ops = ref (Ca_trace.ops trace) in
      let errors = ref [] in
      (* account every completed operation *)
      List.iter
        (fun (e : History.entry) ->
          match History.op_of_entry e with
          | None -> ()
          | Some op -> (
              match remove_one op !trace_ops with
              | Some rest -> trace_ops := rest
              | None ->
                  errors :=
                    Fmt.str "completed operation %a missing from the trace" Op.pp op
                    :: !errors))
        entries;
      (* pending operations: adopt the trace's commitment or drop *)
      let dropped = ref [] in
      let appended = ref [] in
      List.iter
        (fun (e : History.entry) ->
          if e.ret = None then begin
            let matches (o : Op.t) =
              Ids.Tid.equal o.tid e.tid && Ids.Oid.equal o.oid e.oid
              && Ids.Fid.equal o.fid e.fid && Value.equal o.arg e.arg
            in
            match List.find_opt matches !trace_ops with
            | Some o ->
                trace_ops := Option.get (remove_one o !trace_ops);
                appended :=
                  Action.res ~tid:e.tid ~oid:e.oid ~fid:e.fid o.ret :: !appended
            | None -> dropped := e.inv_index :: !dropped
          end)
        entries;
      List.iter
        (fun (o : Op.t) ->
          errors :=
            Fmt.str "trace operation %a does not occur in the history" Op.pp o
            :: !errors)
        !trace_ops;
      if !errors <> [] then Error (String.concat "; " (List.rev !errors))
      else begin
        let kept =
          History.to_list h
          |> List.filteri (fun idx _ -> not (List.mem idx !dropped))
        in
        Ok (History.of_list (kept @ List.rev !appended))
      end

let check_outcome ~spec ~view (outcome : Conc.Runner.outcome) =
  let viewed = view outcome.trace in
  match Spec.explain_rejection spec viewed with
  | Some msg -> Error ("spec obligation: " ^ msg)
  | None -> (
      match reconcile outcome.history viewed with
      | Error msg -> Error ("reconciliation: " ^ msg)
      | Ok completion -> (
          match Agreement.check completion viewed with
          | Error msg -> Error ("agreement obligation: " ^ msg)
          | Ok _ -> Ok ()))

let collector check =
  let runs = ref 0 in
  let complete_runs = ref 0 in
  let problems = ref [] in
  let f (outcome : Conc.Runner.outcome) =
    incr runs;
    if outcome.complete then incr complete_runs;
    match check outcome with
    | Ok () -> ()
    | Error message ->
        if List.length !problems < 10 then
          problems :=
            { schedule = outcome.schedule; plan = outcome.faults; message }
            :: !problems
  in
  let report ?exploration truncated =
    {
      runs = !runs;
      complete_runs = !complete_runs;
      problems = List.rev !problems;
      truncated;
      exploration;
    }
  in
  (f, report)

let collect ~setup ~fuel ?max_runs ?preemption_bound ~check () =
  let f, report = collector check in
  let stats = Conc.Explore.exhaustive ~setup ~fuel ?max_runs ?preemption_bound ~f () in
  report ~exploration:stats stats.truncated

let check_object ~setup ~spec ~view ~fuel ?max_runs ?preemption_bound () =
  collect ~setup ~fuel ?max_runs ?preemption_bound ~check:(check_outcome ~spec ~view) ()

(* Collapse the per-plan counters of a fault/crash sweep into the single
   exploration stats slot of a report. *)
let fault_exploration (stats : Conc.Explore.fault_stats) =
  Conc.Explore.
    {
      runs = stats.fault_runs;
      truncated = stats.fault_truncated;
      max_steps = stats.fault_max_steps;
      nodes = stats.fault_nodes;
      replayed_steps = stats.fault_replayed_steps;
      fingerprint_hits = stats.fault_fingerprint_hits;
      sleep_pruned = stats.fault_sleep_pruned;
    }

let check_object_with_faults ?delay_factors ~setup ~spec ~view ~fuel ?max_runs
    ?preemption_bound ?max_plans ~fault_bound () =
  let f, report = collector (check_outcome ~spec ~view) in
  let stats =
    Conc.Explore.exhaustive_with_faults ?delay_factors ~setup ~fuel ?max_runs
      ?preemption_bound ?max_plans ~fault_bound ~f ()
  in
  report ~exploration:(fault_exploration stats)
    stats.Conc.Explore.fault_truncated

(* The liveness obligation (watchdog): on every fair schedule the object
   either finishes or genuinely blocks. A livelocked run — incomplete at
   fuel, decisions still enabled, no thread starved — is a problem; starved
   runs are excused (the schedule was unfair) and deadlocks are the
   blocking structures' legitimate behaviour. *)
let liveness_report ~fuel ~window (stats : Conc.Explore.liveness_stats) =
  let problems =
    List.map
      (fun (schedule, plan) ->
        {
          schedule;
          plan;
          message =
            Fmt.str
              "liveness obligation: livelock — incomplete at fuel %d with \
               enabled decisions and no thread starved (window %d)"
              fuel window;
        })
      stats.Conc.Explore.livelocks
  in
  {
    runs = stats.Conc.Explore.live_runs;
    complete_runs = stats.Conc.Explore.live_completed;
    problems;
    truncated = stats.Conc.Explore.live_truncated;
    exploration = None;
  }

let check_liveness ?plan ~setup ~fuel ~window ?max_runs ?preemption_bound () =
  liveness_report ~fuel ~window
    (Conc.Explore.liveness ?plan ~setup ~fuel ~window ?max_runs ?preemption_bound ())

let check_liveness_with_faults ?delay_factors ~setup ~fuel ~window ?max_runs
    ?preemption_bound ?max_plans ~fault_bound () =
  let _plans, stats =
    Conc.Explore.liveness_with_faults ?delay_factors ~setup ~fuel ~window
      ?max_runs ?preemption_bound ?max_plans ~fault_bound ()
  in
  liveness_report ~fuel ~window stats

let check_black_box ~setup ~spec ~fuel ?max_runs ?preemption_bound () =
  let check (outcome : Conc.Runner.outcome) =
    match Cal_checker.check ~spec outcome.history with
    | Cal_checker.Accepted _ -> Ok ()
    | Cal_checker.Rejected { reason; _ } -> Error reason
  in
  collect ~setup ~fuel ?max_runs ?preemption_bound ~check ()

(* ------------------------------------------------ durable obligations -- *)

(* Durable checking is black-box on the history: the structures' explicit
   flush discipline means a {e peer's} flush can decide whether a pending
   write persisted, so reconciling a self-reported trace against the
   history would mis-attribute persistence (see DESIGN §2.10). The checker
   composes the crash-tolerant mode (threads crashed by the plan) with the
   durable era rules driven by the history's crash markers. *)
let durable_check ~checker ~spec (outcome : Conc.Runner.outcome) =
  let crashed =
    match
      List.filter_map
        (function
          | Conc.Fault.Crash { thread; _ } -> Some (Ids.Tid.of_int thread)
          | _ -> None)
        outcome.injected
    with
    | [] -> None
    | tids -> Some tids
  in
  match checker with
  | `Cal -> (
      match Cal_checker.check ?crashed ~spec outcome.history with
      | Cal_checker.Accepted _ -> Ok ()
      | Cal_checker.Rejected { reason; _ } -> Error reason)
  | `Lin -> (
      match Lin_checker.check ?crashed ~spec outcome.history with
      | Lin_checker.Linearizable _ -> Ok ()
      | Lin_checker.Not_linearizable { reason; _ } -> Error reason)

let check_durable_with_faults ?(checker = `Cal) ?delay_factors ~setup ~spec
    ~fuel ?max_runs ?preemption_bound ?max_plans ?max_crash_depth ~fault_bound
    () =
  let f, report = collector (durable_check ~checker ~spec) in
  let stats =
    Conc.Explore.exhaustive_with_crashes ?delay_factors ~setup ~fuel ?max_runs
      ?preemption_bound ?max_plans ?max_crash_depth ~fault_bound ~f ()
  in
  report ~exploration:(fault_exploration stats)
    stats.Conc.Explore.fault_truncated

let check_durable ?checker ~setup ~spec ~fuel ?max_runs ?preemption_bound
    ?max_plans ?max_crash_depth () =
  check_durable_with_faults ?checker ~setup ~spec ~fuel ?max_runs
    ?preemption_bound ?max_plans ?max_crash_depth ~fault_bound:0 ()

let ok r = r.problems = []

let pp_exploration ppf (s : Conc.Explore.stats) =
  Fmt.pf ppf " [nodes %d, replayed %d steps%s]" s.nodes s.replayed_steps
    (if s.fingerprint_hits > 0 || s.sleep_pruned > 0 then
       Fmt.str ", pruned %d fp + %d sleep" s.fingerprint_hits s.sleep_pruned
     else "")

let pp_report ppf r =
  if ok r then begin
    Fmt.pf ppf "OK: %d runs (%d complete)%s" r.runs r.complete_runs
      (if r.truncated then " [truncated]" else "");
    Option.iter (pp_exploration ppf) r.exploration
  end
  else
    Fmt.pf ppf "@[<v>%d PROBLEMS over %d runs:@,%a@]" (List.length r.problems) r.runs
      (Fmt.list ~sep:Fmt.cut (fun ppf (p : problem) ->
           Fmt.pf ppf "- %s@,  schedule: %a" p.message
             (Fmt.list ~sep:(Fmt.any " ") Conc.Runner.pp_decision)
             p.schedule;
           if p.plan <> [] then
             Fmt.pf ppf "@,  faults: %a" Conc.Fault.pp_plan p.plan))
      r.problems
