open Cal
open Structures

type violation = { point : string; thread : int; message : string }
type report = { runs : int; probes_checked : int; violations : violation list }

(* TE|tid: the exchanger's trace projected to one thread (the thread sees
   every element mentioning it, including its partner's half of a swap). *)
let te_tid ctx ~oid ~tid =
  Ca_trace.proj_thread (Ca_trace.proj_object (Conc.Ctx.trace ctx) oid) tid

let trace_is t0 suffix te =
  Ca_trace.equal te (t0 @ suffix)

(* B: the swap between [waiter] and [active] has been logged and nothing
   else happened to this thread since T0. *)
let assertion_b ~oid ~t0 ~te ~waiter:(wt, wv) ~active:(at, av) =
  (not (Ids.Tid.equal wt at))
  && trace_is t0 [ Spec_exchanger.swap ~oid wt wv at av ] te

let check_probe ~oid ~ctx ~t0 (p : Exchanger.probe_point) =
  let tid = p.pp_tid in
  let v = p.pp_arg in
  let te = te_tid ctx ~oid ~tid in
  let unchanged = trace_is t0 [] te in
  let g_is_offer (o : Exchanger.offer_view) =
    match p.pp_g with Some g -> g.v_uid = o.v_uid | None -> false
  in
  match p.pp_name with
  | "init-installed" -> (
      (* Fig. 1 line 16: (TE|tid = T ∧ n.hole = null ∧ g = n) ∨ B(n.hole) *)
      match p.pp_n with
      | Some n -> (
          match n.v_hole with
          | `Empty ->
              if unchanged && g_is_offer n then Ok ()
              else Error "unsatisfied own offer, but trace changed or g <> n"
          | `Matched (_, partner, pdata) ->
              if assertion_b ~oid ~t0 ~te ~waiter:(tid, v) ~active:(partner, pdata)
              then Ok ()
              else Error "matched offer without the corresponding swap in TE|tid"
          | `Failed -> Error "own offer failed before the PASS cas"
          | `Cancelled -> Error "own offer cancelled in the untimed protocol")
      | None -> Error "no own offer at init-installed")
  | "pass-no-partner" -> (
      (* the wait failed: hole = fail, operation still unlogged *)
      match p.pp_n with
      | Some { v_hole = `Failed; _ } ->
          if unchanged then Ok ()
          else Error "trace changed although the exchange failed"
      | _ -> Error "hole not failed at pass-no-partner")
  | "pass-swapped" -> (
      (* Fig. 1 line 21-22: B(n.hole) *)
      match p.pp_n with
      | Some { v_hole = `Matched (_, partner, pdata); _ } ->
          if assertion_b ~oid ~t0 ~te ~waiter:(tid, v) ~active:(partner, pdata) then
            Ok ()
          else Error "B(n.hole) fails: swap not logged for this thread"
      | _ -> Error "hole not matched at pass-swapped")
  | "read-cur" -> (
      (* Fig. 1 line 26: A ∧ (g = cur ∨ cur.hole ≠ null) *)
      match p.pp_cur with
      | Some cur ->
          let a =
            unchanged
            &&
            match p.pp_g with
            | None -> true
            | Some g -> g.v_hole <> `Empty || not (Ids.Tid.equal g.v_owner tid)
          in
          let stable_read = g_is_offer cur || cur.v_hole <> `Empty in
          if a && stable_read then Ok ()
          else Error "A ∧ (g = cur ∨ cur.hole ≠ null) fails"
      | None -> Error "no cur at read-cur")
  | "xchg" -> (
      (* Fig. 1 line 30: (¬s ∧ A ∨ s ∧ B(cur)) ∧ cur.hole ≠ null *)
      match (p.pp_cur, p.pp_s) with
      | Some cur, Some s ->
          if cur.v_hole = `Empty then Error "cur.hole still null after the XCHG cas"
          else if s then
            if
              assertion_b ~oid ~t0 ~te ~waiter:(cur.v_owner, cur.v_data)
                ~active:(tid, v)
            then Ok ()
            else Error "s ∧ ¬B(cur): successful XCHG without the logged swap"
          else if unchanged then Ok ()
          else Error "¬s but the trace changed for this thread"
      | _ -> Error "missing cur or s at xchg")
  | "clean" -> (
      (* after line 31: cur is satisfied and no longer in g *)
      match p.pp_cur with
      | Some cur ->
          if cur.v_hole = `Empty then Error "cur unsatisfied after CLEAN"
          else if g_is_offer cur then Error "cur still in g after CLEAN"
          else Ok ()
      | None -> Error "no cur at clean")
  | other -> Error (Fmt.str "unknown probe point %S" other)

let check_program ~values ~fuel ?max_runs ?preemption_bound () =
  let runs = ref 0 in
  let probes = ref 0 in
  let violations = ref [] in
  let record point thread message =
    if List.length !violations < 20 then
      violations := !violations @ [ { point; thread; message } ]
  in
  let setup ctx =
    let ex = Exchanger.create ctx in
    let oid = Exchanger.oid ex in
    let t0s = Hashtbl.create 8 in
    let threads =
      List.mapi
        (fun i v ->
          let tid = Ids.Tid.of_int i in
          let open Conc.Prog.Infix in
          (* capture T0 = TE|tid just before the invocation (the Hoare
             precondition's logical variable T) *)
          let* () =
            Conc.Prog.atomic ~label:"capture-T0" (fun () ->
                Hashtbl.replace t0s i (te_tid ctx ~oid ~tid))
          in
          Exchanger.exchange_annotated ex ~tid
            ~probe:(fun p ->
              incr probes;
              let t0 = Option.value (Hashtbl.find_opt t0s i) ~default:[] in
              match check_probe ~oid ~ctx ~t0 p with
              | Ok () -> ()
              | Error message -> record p.Exchanger.pp_name i message)
            v)
        values
      |> Array.of_list
    in
    { Conc.Runner.threads; observe = None; on_label = None }
  in
  let _stats =
    Conc.Explore.exhaustive ~setup ~fuel ?max_runs ?preemption_bound
      ~f:(fun _ -> incr runs)
      ()
  in
  { runs = !runs; probes_checked = !probes; violations = !violations }

let ok r = r.violations = []

let pp_report ppf r =
  if ok r then
    Fmt.pf ppf "proof outline: OK (%d runs, %d assertions checked)" r.runs
      r.probes_checked
  else
    Fmt.pf ppf "@[<v>proof outline: %d VIOLATIONS (%d runs)@,%a@]"
      (List.length r.violations) r.runs
      (Fmt.list ~sep:Fmt.cut (fun ppf v ->
           Fmt.pf ppf "- at %s (thread %d): %s" v.point v.thread v.message))
      r.violations
