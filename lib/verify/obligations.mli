(** The modular verification method, end-to-end (§4–5).

    For an object [o] with view [𝔉_o] and specification [Spec_o], every
    execution must satisfy two obligations:

    + {b Spec}: the object's view of the logged auxiliary trace,
      [T_o = 𝔉_o(𝒯)], is accepted by [Spec_o] — the trace witnesses a legal
      behaviour;
    + {b Agreement}: the observable history agrees with the witness,
      [Hᶜ ⊑CAL T_o] for some completion [Hᶜ] — the trace actually explains
      what clients saw.

    Running both over the {e complete} set of interleavings of a bounded
    client program is the model-checking rendition of the paper's proof.
    For cross-validation, {!check_black_box} decides CAL directly on the
    history with {!Cal.Cal_checker}, ignoring the instrumentation — the
    two must agree on accept/reject.

    {b Parallel checking.} The exhaustive checks take [?domains]
    (default: the [CAL_EXPLORE_DOMAINS] environment variable, else [1]) to
    spread the exploration over OCaml 5 worker domains
    ({!Conc.Par_explore}): reports — runs, complete runs, problems,
    verdicts — are identical to the sequential check's. The knob is
    silently ignored when [max_runs] is set (a shared run budget admits a
    scheduling-dependent run subset, which would break report
    determinism), and the liveness and durable crash-sweep checks are
    deliberately sequential (DESIGN §2.11).

    {b Exploration strategies.} {!check_object} and {!check_black_box}
    take [?strategy] (default: the [CAL_EXPLORE_STRATEGY] environment
    variable parsed with {!Conc.Explore.strategy_of_string}, else
    {!Conc.Explore.Dfs}): [Dpor] runs the verdict-preserving source-DPOR
    reduction, [Preemption_bounded]/[Delay_bounded] run the iteratively
    deepened bounded searches — sound for bug-finding, with the report's
    [exploration] honestly flagging [bounded = true] whenever the bound
    actually cut an edge. Off the [Dfs] path the legacy
    [preemption_bound] pruner is ignored (the strategy alone defines the
    run set). The fault, durable and liveness sweeps always run the
    plain engine.

    {b Verdict cache.} The black-box checks ({!check_black_box},
    {!check_durable}, {!check_durable_with_faults}) take [?cache]
    (default: the [CAL_VERDICT_CACHE] environment variable): checker
    verdicts are memoized on the {e canonical} history
    ({!Cal.History.canonicalize}), shared across worker domains behind a
    sharded mutex table ({!Cal.Verdict_cache}), so schedules that
    interleave the same operations with the same concurrency structure pay
    for one checker run. Hits surface as
    {!Conc.Explore.stats.cache_hits} in the report's [exploration].
    Trace-based checks are never cached: their verdict also depends on the
    auxiliary trace, which the canonical key does not cover. *)

type problem = {
  schedule : Conc.Runner.schedule;
  plan : Conc.Fault.plan;
      (** the fault plan active in the failing run ([[]] for fault-free
          checks); replaying [schedule] under [plan] reproduces it *)
  message : string;
}

(** Reproduction metadata of a sampled check: re-running the same check
    with this sampler kind, seed and budget replays the identical run
    sequence, so a printed report alone suffices to reproduce a sampled
    failure (satellite of DESIGN §2.12). *)
type sampling = {
  s_kind : Conc.Sampler.kind;
  s_seed : int64;
  s_budget : int;  (** run budget the check was given *)
}

type report = {
  runs : int;            (** outcomes checked *)
  complete_runs : int;   (** outcomes in which every thread returned *)
  problems : problem list;  (** capped at 10 *)
  truncated : bool;
  exploration : Conc.Explore.stats option;
      (** engine cost counters of the underlying exploration — nodes
          visited, steps replayed on backtracking, pruning hits — when the
          check ran on the exhaustive engine; for sampled checks the
          [sampled_runs]/[violations_found]/[shrink_*] counters are live
          instead ([None] for liveness reports, whose stats live in
          {!Conc.Explore.liveness_stats}) *)
  sampling : sampling option;
      (** [Some _] exactly for the [check_sampled*] family *)
}

val reconcile : Cal.History.t -> Cal.Ca_trace.t -> (Cal.History.t, string) result
(** [reconcile h t] completes the (possibly incomplete) history [h] using
    the trace [t]: a pending operation that appears in [t] receives the
    return value the trace committed to; a pending operation absent from
    [t] is dropped; a completed operation missing from [t], or a trace
    operation missing from [h], is an error. *)

val check_outcome :
  spec:Cal.Spec.t -> view:Cal.View.t -> Conc.Runner.outcome -> (unit, string) result
(** Both obligations for a single execution. *)

val check_object :
  ?domains:int ->
  ?strategy:Conc.Explore.strategy ->
  setup:(Conc.Ctx.t -> Conc.Runner.program) ->
  spec:Cal.Spec.t ->
  view:Cal.View.t ->
  fuel:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  unit ->
  report
(** Exhaustively explore [setup] and check both obligations on every
    outcome. *)

val check_object_with_faults :
  ?delay_factors:int list ->
  ?domains:int ->
  setup:(Conc.Ctx.t -> Conc.Runner.program) ->
  spec:Cal.Spec.t ->
  view:Cal.View.t ->
  fuel:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  ?max_plans:int ->
  fault_bound:int ->
  unit ->
  report
(** Both obligations over {!Conc.Explore.exhaustive_with_faults}: every
    interleaving of every fault plan of size [<= fault_bound] (crashes and
    forced CAS failures learned from a fault-free pass), including the
    fault-free plan itself. A crashed operation stays pending forever;
    the reconciliation obligation then demands that it either took effect
    (the trace committed to it) or vanished (it is dropped) — the
    crash-tolerant completion construction. Failing runs report the fault
    plan alongside the schedule, so they replay byte-for-byte via
    [Conc.Runner.replay ~plan schedule]. [truncated] is set when
    [max_plans] cut enumeration short. [delay_factors] additionally
    proposes clock-skew {!Conc.Fault.Delay} candidates (see
    {!Conc.Explore.exhaustive_with_faults}). *)

val check_liveness :
  ?plan:Conc.Fault.plan ->
  setup:(Conc.Ctx.t -> Conc.Runner.program) ->
  fuel:int ->
  window:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  unit ->
  report
(** The liveness obligation, via {!Conc.Explore.liveness}: every maximal
    run is classified by the bounded-fairness watchdog, and each
    {e livelocked} run — incomplete at [fuel], decisions still enabled, no
    thread left enabled-but-unscheduled for [window] consecutive
    decisions — becomes a problem (with its witness schedule and plan).
    Starved runs are excused as scheduler unfairness; deadlocks are the
    legitimate blocking behaviour of timed/blocking structures.
    [complete_runs] counts the runs in which every thread returned. *)

val check_liveness_with_faults :
  ?delay_factors:int list ->
  setup:(Conc.Ctx.t -> Conc.Runner.program) ->
  fuel:int ->
  window:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  ?max_plans:int ->
  fault_bound:int ->
  unit ->
  report
(** {!check_liveness} over the fault sweep
    ({!Conc.Explore.liveness_with_faults}): no fault plan of at most
    [fault_bound] faults — crashes, forced CAS failures, clock delays —
    may drive the object into a fair non-terminating spin. *)

val check_black_box :
  ?domains:int ->
  ?strategy:Conc.Explore.strategy ->
  ?cache:bool ->
  setup:(Conc.Ctx.t -> Conc.Runner.program) ->
  spec:Cal.Spec.t ->
  fuel:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  unit ->
  report
(** Decide CAL on each outcome's history alone (Definition 6 via
    {!Cal.Cal_checker}), without using the auxiliary trace. [cache]
    memoizes verdicts on the canonical history (module preamble). *)

val check_durable :
  ?checker:[ `Cal | `Lin ] ->
  ?cache:bool ->
  setup:(Conc.Ctx.t -> Conc.Runner.durable) ->
  spec:Cal.Spec.t ->
  fuel:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  ?max_plans:int ->
  ?max_crash_depth:int ->
  unit ->
  report
(** The durable obligation: explore every interleaving of the durable
    program under every {!Conc.Fault.Crash_system} plan enumerated by
    {!Conc.Explore.exhaustive_with_crashes} (crash point swept over every
    step boundary, nested to [max_crash_depth], default [1]) and decide
    durable CA-linearizability — with [~checker:`Lin], durable
    linearizability — black-box on each outcome's history.

    Black-box deliberately: the durable structures' explicit flush
    discipline means a {e peer's} flush can decide whether an operation
    pending at the crash persisted, so reconciling a self-reported trace
    would mis-attribute persistence (DESIGN §2.10). The history's crash
    markers partition it into eras; the checker requires each era to be
    explainable in sequence, with crash-pending operations either
    persisted (ordered before the next era) or lost (dropped). A failing
    run reports the (schedule, plan) witness, replayable byte-for-byte
    via {!Conc.Runner.replay_durable}. *)

val check_durable_with_faults :
  ?checker:[ `Cal | `Lin ] ->
  ?cache:bool ->
  ?delay_factors:int list ->
  setup:(Conc.Ctx.t -> Conc.Runner.durable) ->
  spec:Cal.Spec.t ->
  fuel:int ->
  ?max_runs:int ->
  ?preemption_bound:int ->
  ?max_plans:int ->
  ?max_crash_depth:int ->
  fault_bound:int ->
  unit ->
  report
(** {!check_durable} with per-thread faults crossed in: every plan of at
    most [fault_bound] thread crashes / forced CAS failures / clock
    delays ([delay_factors]) is explored on its own and combined with the
    system-crash sweep, so e.g. a thread dying mid-operation {e and} the
    whole system crashing later is covered. Thread crashes feed the
    checker's crash-tolerant mode ([?crashed]); system crashes drive the
    durable era rules. *)

(** {1 Sampled checking}

    Beyond fuel ~16–18 the exhaustive sweeps stop being practical; the
    [check_sampled*] family trades completeness for reach: run the
    program [budget] times under a randomized {!Conc.Sampler} scheduler
    (jointly sampling schedule × fault plan × crash plan for the
    [_with_faults]/[_durable] variants) and check every outcome with the
    same obligations as the exhaustive checks. The loop exits early at
    the first violation; the witness is then minimized with
    {!Conc.Shrink} (unless [~shrink:false]) and rendered as a
    human-readable failure report — sampler kind, seed, budget, run
    index, the dejafu-style per-thread schedule string, the fault plan,
    the era-annotated history and the checker verdict — so the printed
    problem is a complete reproduction recipe. The raw minimal
    (schedule, plan) pair stays in {!problem} for programmatic replay,
    and the report's [sampling]/[exploration] fields carry the
    reproduction metadata and the sampling cost counters
    ([sampled_runs], [violations_found], [shrink_candidates],
    [shrink_steps_removed]).

    A sampled [ok] report is {e not} a proof: it only says no violation
    surfaced within the budget. *)

val check_sampled :
  ?kind:Conc.Sampler.kind ->
  ?seed:int64 ->
  ?shrink:bool ->
  setup:(Conc.Ctx.t -> Conc.Runner.program) ->
  spec:Cal.Spec.t ->
  view:Cal.View.t ->
  fuel:int ->
  budget:int ->
  unit ->
  report
(** Both obligations ({!check_outcome}) over [budget] fault-free sampled
    runs. Defaults: [kind = Pct {d = 3}], [seed = 1L], [shrink = true]. *)

val check_sampled_with_faults :
  ?kind:Conc.Sampler.kind ->
  ?seed:int64 ->
  ?shrink:bool ->
  ?delay_factors:int list ->
  ?fault_bound:int ->
  setup:(Conc.Ctx.t -> Conc.Runner.program) ->
  spec:Cal.Spec.t ->
  view:Cal.View.t ->
  fuel:int ->
  budget:int ->
  unit ->
  report
(** {!check_sampled} with a fault plan drawn per run from a
    {!Conc.Sampler.plan_space} learned by a few probe walks: up to
    [fault_bound] (default [1]) thread crashes / forced CAS failures /
    stalls / clock delays ([delay_factors]) per plan. The empty plan is
    in the support, so fault-free behaviour is covered too. *)

val check_sampled_durable :
  ?checker:[ `Cal | `Lin ] ->
  ?kind:Conc.Sampler.kind ->
  ?seed:int64 ->
  ?shrink:bool ->
  ?delay_factors:int list ->
  ?fault_bound:int ->
  ?max_crash_depth:int ->
  setup:(Conc.Ctx.t -> Conc.Runner.durable) ->
  spec:Cal.Spec.t ->
  fuel:int ->
  budget:int ->
  unit ->
  report
(** The durable obligation ({!check_durable}'s black-box checker) over
    sampled runs whose plans additionally draw up to [max_crash_depth]
    (default [1]) {!Conc.Fault.Crash_system} points; [fault_bound]
    defaults to [0] (system crashes only). Witnesses replay via
    {!Conc.Runner.replay_durable}. *)

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit
