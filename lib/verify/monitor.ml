type t = {
  spec : Cal.Spec.t;
  view : Cal.View.t;
  ctx : Conc.Ctx.t;
  mutable acceptor : Cal.Spec.acceptor option;  (* None after a violation *)
  mutable consumed : int;
  mutable step : int;
  mutable crashes_seen : int;
  mutable violation : (int * string) option;
}

let create ~spec ~view ~ctx =
  {
    spec;
    view;
    ctx;
    acceptor = Some spec.Cal.Spec.start;
    consumed = 0;
    step = 0;
    crashes_seen = 0;
    violation = None;
  }

let feed t element =
  match t.acceptor with
  | None -> ()
  | Some acc -> (
      match Cal.Spec.step acc element with
      | Some acc' -> t.acceptor <- Some acc'
      | None ->
          t.acceptor <- None;
          t.violation <-
            Some
              ( t.step,
                Fmt.str "element rejected by %s: %a" t.spec.Cal.Spec.name
                  Cal.Ca_trace.pp_element element ))

let observer t (_d : Conc.Runner.decision) =
  t.step <- t.step + 1;
  (* A system crash between the previous observation and this one reset the
     object to its recovered state: restart the acceptor for the new era.
     (The runner fires crashes {e after} the observer hook, so the crashing
     step's own elements were consumed against the pre-crash acceptor.)
     Violations latch — a crash never clears one. *)
  let crashes = Conc.Ctx.crash_count t.ctx in
  if crashes > t.crashes_seen then begin
    t.crashes_seen <- crashes;
    if t.violation = None then t.acceptor <- Some t.spec.Cal.Spec.start
  end;
  let len = Conc.Ctx.trace_length t.ctx in
  if len > t.consumed then begin
    let fresh =
      Conc.Ctx.trace t.ctx
      |> List.filteri (fun i _ -> i >= t.consumed)
    in
    t.consumed <- len;
    List.iter (feed t) (t.view fresh)
  end

let status t = match t.violation with None -> `Ok | Some (s, m) -> `Violated (s, m)
let consumed t = t.consumed

(* Compose the monitor's observer after a program's own observe hook. *)
let attach m (p : Conc.Runner.program) =
  {
    p with
    Conc.Runner.observe =
      Some
        (fun d ->
          (match p.Conc.Runner.observe with None -> () | Some f -> f d);
          observer m d);
  }

(* The exploration engines re-run setup on every backtrack replay, so the
   live monitor changes identity across a search; [wrap] stashes the newest
   one and reports its status. *)
let wrap ~spec ~view ~setup =
  let current = ref None in
  let wrapped ctx =
    let program = setup ctx in
    let m = create ~spec ~view ~ctx in
    current := Some m;
    attach m program
  in
  let status' () = match !current with None -> `Ok | Some m -> status m in
  (wrapped, status')

let wrap_durable ~spec ~view ~setup =
  let current = ref None in
  let wrapped ctx =
    let d : Conc.Runner.durable = setup ctx in
    let m = create ~spec ~view ~ctx in
    current := Some m;
    {
      d with
      Conc.Runner.boot = attach m d.Conc.Runner.boot;
      recover = (fun ~epoch -> attach m (d.Conc.Runner.recover ~epoch));
    }
  in
  let status' () = match !current with None -> `Ok | Some m -> status m in
  (wrapped, status')
