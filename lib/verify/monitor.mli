(** Online CAL monitoring.

    A monitor consumes the auxiliary trace [𝒯] as it grows during a run and
    feeds each new CA-element (through the object's view) to the
    specification acceptor, flagging the first step at which the trace
    leaves the specification. Installing it as a run observer gives early
    violation detection in long random explorations.

    The view must be element-wise (built from {!Cal.View.lift} /
    {!Cal.View.compose}, as all views in this library are) so that applying
    it to trace suffixes is equivalent to applying it to the whole trace.

    The monitor is {e crash-aware}: when a {!Conc.Fault.Crash_system}
    fires, the next observation restarts the acceptor for the new era —
    the recovered object starts over, exactly as the durable checkers
    partition the history at crash markers. The crashing step's own
    elements are still consumed against the pre-crash acceptor (the runner
    fires crashes after the observer hook), and a recorded violation
    latches across crashes. *)

type t

val create : spec:Cal.Spec.t -> view:Cal.View.t -> ctx:Conc.Ctx.t -> t

val observer : t -> Conc.Runner.decision -> unit

val status : t -> [ `Ok | `Violated of int * string ]
(** [`Violated (step, msg)]: the first decision index at which the viewed
    trace was rejected. *)

val consumed : t -> int
(** Raw trace elements consumed so far. *)

val wrap :
  spec:Cal.Spec.t ->
  view:Cal.View.t ->
  setup:(Conc.Ctx.t -> Conc.Runner.program) ->
  (Conc.Ctx.t -> Conc.Runner.program) * (unit -> [ `Ok | `Violated of int * string ])
(** [wrap ~spec ~view ~setup] is a setup that installs a fresh monitor on
    every run (composing its observer after the program's own [observe]
    hook), paired with a status accessor for the most recent run. The
    exploration engines re-run setup on every backtrack replay, so query
    the status from inside the per-outcome callback — it then refers to
    the run that produced the outcome. This is how the monitor rides
    {!Conc.Explore.exhaustive_with_faults}. *)

val wrap_durable :
  spec:Cal.Spec.t ->
  view:Cal.View.t ->
  setup:(Conc.Ctx.t -> Conc.Runner.durable) ->
  (Conc.Ctx.t -> Conc.Runner.durable) * (unit -> [ `Ok | `Violated of int * string ])
(** {!wrap} for durable programs: the monitor is installed on the boot
    program {e and} on every recovery program, so post-crash elements are
    checked against the restarted acceptor. *)
