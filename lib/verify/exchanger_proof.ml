open Cal
open Structures

type state = {
  g : Exchanger.offer_view option;
  trace : Ca_trace.t;
  active : Ids.Tid.t list;
}

(* Stutter equality deliberately ignores [active]: entering/leaving a method
   only changes the history, not the shared state the guarantee constrains. *)
let state_equal a b =
  (match (a.g, b.g) with
  | None, None -> true
  | Some x, Some y -> x = y
  | None, Some _ | Some _, None -> false)
  && Ca_trace.equal a.trace b.trace

(* [extension pre post] is [Some suffix] when [post.trace] extends
   [pre.trace]. *)
let extension pre post =
  let rec strip xs ys =
    match (xs, ys) with
    | [], rest -> Some rest
    | x :: xs', y :: ys' when Ca_trace.element_equal x y -> strip xs' ys'
    | _ -> None
  in
  strip pre.trace post.trace

let same_offer (a : Exchanger.offer_view) (b : Exchanger.offer_view) =
  a.v_uid = b.v_uid
  && Ids.Tid.equal a.v_owner b.v_owner
  && Value.equal a.v_data b.v_data

let actions ~oid : state Rg.action list =
  let trace_unchanged pre post = extension pre post = Some [] in
  [
    {
      Rg.name = "INIT";
      applies =
        (fun ~tid ~pre ~post ->
          trace_unchanged pre post
          && pre.g = None
          &&
          match post.g with
          | Some o -> Ids.Tid.equal o.v_owner tid && o.v_hole = `Empty
          | None -> false);
    };
    {
      Rg.name = "CLEAN";
      applies =
        (fun ~tid:_ ~pre ~post ->
          trace_unchanged pre post
          && post.g = None
          &&
          match pre.g with Some o -> o.v_hole <> `Empty | None -> false);
    };
    {
      Rg.name = "PASS";
      applies =
        (fun ~tid ~pre ~post ->
          trace_unchanged pre post
          &&
          match (pre.g, post.g) with
          | Some o, Some o' ->
              same_offer o o'
              && Ids.Tid.equal o.v_owner tid
              && o.v_hole = `Empty
              && o'.v_hole = `Failed
          | _ -> false);
    };
    {
      Rg.name = "XCHG";
      applies =
        (fun ~tid ~pre ~post ->
          match (pre.g, post.g) with
          | Some o, Some o' -> (
              same_offer o o'
              && (not (Ids.Tid.equal o.v_owner tid))
              && o.v_hole = `Empty
              &&
              match o'.v_hole with
              | `Matched (_, partner, partner_data) ->
                  Ids.Tid.equal partner tid
                  && extension pre post
                     = Some
                         [
                           Spec_exchanger.swap ~oid o.v_owner o.v_data tid partner_data;
                         ]
              | `Empty | `Failed | `Cancelled -> false)
          | _ -> false);
    };
    {
      Rg.name = "FAIL";
      applies =
        (fun ~tid ~pre ~post ->
          (match (pre.g, post.g) with
          | None, None -> true
          | Some a, Some b -> a = b
          | _ -> false)
          &&
          match extension pre post with
          | Some [ e ] -> (
              match Ca_trace.element_ops e with
              | [ op ] ->
                  Ids.Tid.equal op.tid tid
                  && Ids.Fid.equal op.fid Spec_exchanger.fid_exchange
                  && Value.equal op.ret (Value.fail op.arg)
              | _ -> false)
          | _ -> false);
    };
  ]

let invariant_j state =
  match state.g with
  | Some o when o.v_hole = `Empty ->
      List.exists (Ids.Tid.equal o.v_owner) state.active
  | _ -> true

let pp_state ppf s =
  let pp_offer ppf (o : Exchanger.offer_view) =
    Fmt.pf ppf "offer#%d{%a,%a,%s}" o.v_uid Ids.Tid.pp o.v_owner Value.pp o.v_data
      (match o.v_hole with
      | `Empty -> "null"
      | `Failed -> "fail"
      | `Cancelled -> "cancel"
      | `Matched (u, _, _) -> Fmt.str "#%d" u)
  in
  Fmt.pf ppf "g=%a, |T_E|=%d" (Fmt.option ~none:(Fmt.any "null") pp_offer) s.g
    (List.length s.trace)

let make ex ctx =
  let oid = Exchanger.oid ex in
  let snapshot () =
    {
      g = Exchanger.peek_g ex;
      trace = Ca_trace.proj_object (Conc.Ctx.trace ctx) oid;
      active = Conc.Ctx.active_threads ctx ~oid;
    }
  in
  Rg.create ~snapshot ~equal:state_equal ~actions:(actions ~oid)
    ~invariant:("J", invariant_j) ~pp_state ()

type report = { runs : int; steps_checked : int; violations : Rg.violation list }

let check_program ~threads ~fuel ?max_runs ?preemption_bound () =
  let runs = ref 0 in
  let steps = ref 0 in
  let violations = ref [] in
  let setup ctx =
    let ex = Exchanger.create ctx in
    let checker = make ex ctx in
    let thread_progs = threads ctx ex in
    let seen = ref 0 in
    {
      Conc.Runner.threads = thread_progs;
      observe =
        Some
          (fun d ->
            incr steps;
            Rg.observer checker d;
            let vs = Rg.violations checker in
            let n = List.length vs in
            if n > !seen then begin
              let fresh = List.filteri (fun i _ -> i >= !seen) vs in
              seen := n;
              if List.length !violations < 20 then violations := !violations @ fresh
            end);
      on_label = None;
    }
  in
  let _stats = Conc.Explore.exhaustive ~setup ~fuel ?max_runs ?preemption_bound ~f:(fun _ -> incr runs) () in
  { runs = !runs; steps_checked = !steps; violations = !violations }

let ok r = r.violations = []

let pp_report ppf r =
  if ok r then
    Fmt.pf ppf "exchanger R/G proof: OK (%d runs, %d transitions checked)" r.runs
      r.steps_checked
  else
    Fmt.pf ppf "@[<v>exchanger R/G proof: %d VIOLATIONS (%d runs)@,%a@]"
      (List.length r.violations) r.runs
      (Fmt.list ~sep:Fmt.cut Rg.pp_violation)
      r.violations
