(** The streaming monitor core: a pure, deterministic state machine over
    {!Proto.input} frames.

    The core shards one {!Session} per object id, routes every parsed
    action to its session, and contains every failure to the frame that
    caused it: a malformed, over-long, unknown-object or
    protocol-misusing frame produces a {!Proto.Rejected_frame} reply and
    changes nothing else — including a last-resort handler that turns an
    escaped exception into a rejected frame (legal because [feed] is
    pure: an exception cannot have mutated anything).

    Robustness machinery, all on the logical clock ({!Proto.Tick}):
    - {b admission}: at most [max_sessions] live sessions; under pressure
      a desynced session is evicted first, then frames are rejected;
    - {b reaping}: idle sessions are evicted after [idle_timeout] ticks
      (latched ones are retained — their violation must survive into a
      snapshot); evicted oids are remembered and readmitted
      conservatively, with a capacity cap that flips to global distrust;
    - {b degradation ladder}: retained-action load against
      [memory_budget] moves Full → Sampled → Count-only (shedding every
      window on the last step) and back up one level per cooldown once
      load falls below the low watermark;
    - {b snapshot/restore}: a printable dump that survives a daemon
      crash; the v2 format is exact (committed state, windows and
      pending invocations included), so a restored core is bisimilar to
      the one that wrote it. *)

type t

type metrics = {
  frames : int;
  rejected_frames : int;
  ops : int;
  commits : int;
  violations : int;
  crashes : int;
  ticks : int;
  sessions_created : int;
  sessions_evicted : int;
  desyncs : int;
  level_changes : int;
}

val create :
  ?cache:Cal.Verdict_cache.t ->
  config:Config.t ->
  spec_for:(Cal.Ids.Oid.t -> Cal.Spec.t option) ->
  unit ->
  (t, string) result
(** [spec_for] maps each object id to its specification instance (it
    must own the id); [None] makes frames for that object structured
    errors. [cache] memoises overflow verdicts across sessions. *)

val feed : t -> Proto.input -> t * Proto.event list
(** The single step function; total — never raises. *)

val level : t -> Proto.level
val load : t -> int
val clock : t -> int
val metrics : t -> metrics
val session : t -> Cal.Ids.Oid.t -> Session.t option
val session_count : t -> int
val pp_metrics : Format.formatter -> metrics -> unit

val snapshot : t -> string
(** A stable, line-oriented v2 dump of the whole recoverable state:
    clock, level, metrics, eviction memory, and per-session committed
    keys (via {!Cal.Spec.key}), retained windows, pending invocations,
    eras and latched violations. *)

val restore :
  ?cache:Cal.Verdict_cache.t ->
  config:Config.t ->
  spec_for:(Cal.Ids.Oid.t -> Cal.Spec.t option) ->
  string ->
  (t, string) result
(** Rebuild a core from {!snapshot} output. A v2 snapshot restores every
    session exactly (healthy acceptors are rebuilt via
    {!Cal.Spec.resume}; a spec without a resume parser falls back to a
    desynced session, honestly reported). The legacy v1 format is still
    accepted with its conservative semantics: latched violations
    verbatim, every other session desynced until the next era.
    Malformed snapshots are structured errors. *)
