(** Write-ahead event journal + snapshot store of the monitoring daemon.

    Every input frame ({!Proto.input}, i.e. one protocol line or one
    logical tick) is appended to a segmented, CRC-checksummed journal
    {e before} it is applied to {!Core}; recovery replays the journal
    suffix after the newest durable snapshot, so a daemon killed at any
    point resumes bisimilar to one that never died.

    Frame wire format (all integers big-endian):
    {v  0xCA | u32 body_len | u32 crc32(body) | body v}
    where [body = kind(1 byte: 'L'|'T') ++ u64 seq ++ payload] and
    sequence numbers start at 1 and increase by exactly 1 across segment
    boundaries. Segment files are [wal-<first-seq>.seg], rotated once
    they exceed the configured byte budget; snapshot files are
    [snap-<seq>.snap] carrying their own CRC, written atomically
    (tmp + fsync + rename) at [seq] = the last journaled frame they
    cover. Writing a snapshot prunes snapshot generations beyond
    [keep_snapshots] and retires every journal segment fully covered by
    the {e oldest retained} snapshot, so each retained generation can
    still replay contiguously if the ones after it turn out corrupt.

    Recovery is total: a truncated or corrupt frame never raises — the
    valid prefix is replayed, the bad tail is copied to a
    [quarantine-*.bin] file and honestly counted, and a corrupt snapshot
    is skipped in favour of an older generation (at the price of a
    longer replay). A declared frame length is validated against the
    bytes actually present before any allocation, so hostile journals
    cannot provoke giant allocations. *)

type record = Line of string | Tick

val record_of_input : Proto.input -> record
val input_of_record : record -> Proto.input

(* ------------------------------------------------------------ writer -- *)

type writer

val create :
  dir:string ->
  durability:Config.durability ->
  ?next_seq:int ->
  unit ->
  (writer, string) result
(** Open a writer appending to [dir] (created when missing) starting at
    [next_seq] (default 1; after a recovery pass it must be
    [last_seq recovery + 1]). A fresh segment is always started — the
    writer never appends into an existing segment file, so a quarantined
    tail can never swallow new frames. *)

val append : writer -> record -> int
(** Journal one record and return its sequence number. Durability
    follows the writer's {!Config.durability}: the channel is flushed
    every [flush_every] appends (and fsync'd every [fsync_every]
    flushes); segments rotate past [segment_bytes]. *)

val flush : writer -> unit
(** Force the channel flush (and the fsync cadence) now. *)

val last_seq : writer -> int
(** Sequence number of the last appended record; 0 before any append. *)

val snapshot : writer -> core_snapshot:string -> (string, string) result
(** Write a snapshot covering every frame journaled so far (the journal
    is flushed first so a snapshot can never be ahead of a lost tail),
    then retire covered segments and old snapshot generations. Returns
    the snapshot path. *)

val close : writer -> unit

(* ---------------------------------------------------------- recovery -- *)

type recovery = {
  core_snapshot : string option;  (** newest valid snapshot text *)
  snapshot_seq : int;  (** frames the snapshot covers; 0 when none *)
  records : record list;  (** replay suffix, ascending seq order *)
  last_seq : int;  (** last durable frame: snapshot_seq + replayed *)
  replayed : int;  (** [List.length records] *)
  dropped_bytes : int;  (** journal bytes lost to corruption/truncation *)
  quarantined : string list;  (** files holding the corrupt tail bytes *)
  snapshots_ignored : int;  (** corrupt/unreadable snapshots skipped *)
}

val recover : dir:string -> (recovery, string) result
(** Total: returns [Error] only when [dir] is unusable (missing or not a
    directory); any corruption inside it degrades to an honest
    [recovery] report instead. *)

val pp_recovery : Format.formatter -> recovery -> unit
(** One-line human summary of what was recovered and what was lost. *)

val crc32 : string -> int32
(** IEEE CRC-32 (the zlib polynomial) of a whole string; exposed for
    tests and for the snapshot self-check. *)
