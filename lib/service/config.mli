(** Tuning knobs of the streaming monitor core.

    Every limit is logical (counted in frames, actions and ticks), so the
    whole state machine — admission, trimming, degradation, reaping — runs
    deterministically under [dune runtest] with no wall clock anywhere. *)

type t = {
  max_sessions : int;
      (** admission cap: frames for a new object beyond this many live
          sessions are rejected with a structured error *)
  max_pending : int;
      (** per-session cap on simultaneously pending invocations; protects
          against stuck streams that invoke and never respond *)
  window_max : int;
      (** per-session cap on retained (uncommitted) actions; reaching it
          triggers the overflow path: one final verdict on the window,
          then the session degrades to count-only until the next era *)
  memory_budget : int;
      (** global budget on retained actions across all sessions; the
          degradation ladder is driven by load relative to this budget *)
  hi_watermark : float;  (** degrade one level when load >= hi * budget *)
  lo_watermark : float;  (** upgrade one level when load <= lo * budget *)
  cooldown : int;
      (** ticks that must pass after a level change before the ladder may
          move up again (hysteresis against oscillation) *)
  sample_period : int;
      (** under [Sampled] degradation, concurrent windows run the
          exhaustive checker only every this-many quiescent points *)
  idle_timeout : int;
      (** sessions with no frame for this many ticks are reaped *)
  max_evicted_remembered : int;
      (** cap on the set of evicted object ids remembered so their
          re-admission starts conservatively; past the cap {e every} new
          session starts conservatively instead *)
}

val default : t

type durability = {
  segment_bytes : int;
      (** journal segment rotation threshold in bytes (>= 4096) *)
  flush_every : int;
      (** frames per journal channel flush — 1 means every frame hits the
          OS before it is applied (true write-ahead against process
          death); larger values batch the [write(2)] (group commit,
          default 32) and honestly lose at most that many tail frames on
          a kill, which recovery reports *)
  fsync_every : int;
      (** flushes per [fsync(2)] for power-loss durability; 0 = never *)
  snapshot_every : int;
      (** logical ticks between snapshots; 0 = only the final snapshot *)
  keep_snapshots : int;
      (** retained snapshot generations — older ones (and the journal
          segments the newest durable snapshot covers) are retired *)
}

val default_durability : durability
val validate_durability : durability -> (durability, string) result

val checker_op_limit : int
(** Operation cap of {!Cal.Cal_checker.check}; [window_max] must stay at
    or below it. *)

val validate : t -> (t, string) result
(** Reject inconsistent knob combinations with a structured error. *)
