open Cal

module Oid_map = Map.Make (struct
  type t = Ids.Oid.t

  let compare = Ids.Oid.compare
end)

module Oid_set = Set.Make (struct
  type t = Ids.Oid.t

  let compare = Ids.Oid.compare
end)

type metrics = {
  frames : int;
  rejected_frames : int;
  ops : int;
  commits : int;
  violations : int;
  crashes : int;
  ticks : int;
  sessions_created : int;
  sessions_evicted : int;
  desyncs : int;
  level_changes : int;
}

let zero_metrics =
  {
    frames = 0;
    rejected_frames = 0;
    ops = 0;
    commits = 0;
    violations = 0;
    crashes = 0;
    ticks = 0;
    sessions_created = 0;
    sessions_evicted = 0;
    desyncs = 0;
    level_changes = 0;
  }

let pp_metrics ppf m =
  Fmt.pf ppf
    "frames=%d rejected=%d ops=%d commits=%d violations=%d crashes=%d \
     ticks=%d created=%d evicted=%d desyncs=%d level-changes=%d"
    m.frames m.rejected_frames m.ops m.commits m.violations m.crashes m.ticks
    m.sessions_created m.sessions_evicted m.desyncs m.level_changes

type t = {
  config : Config.t;
  spec_for : Ids.Oid.t -> Spec.t option;
  cache : Verdict_cache.t option;
  sessions : Session.t Oid_map.t;
  level : Proto.level;
  load : int;  (* total retained window actions across sessions *)
  clock : int;
  last_level_change : int;
  evicted : Oid_set.t;  (* evicted oids, readmitted conservatively *)
  unknown_history : bool;  (* evicted-set overflowed: distrust every oid *)
  metrics : metrics;
}

let create ?cache ~config ~spec_for () =
  Result.map
    (fun config ->
      {
        config;
        spec_for;
        cache;
        sessions = Oid_map.empty;
        level = Proto.Full;
        load = 0;
        clock = 0;
        last_level_change = 0;
        evicted = Oid_set.empty;
        unknown_history = false;
        metrics = zero_metrics;
      })
    (Config.validate config)

let level t = t.level
let load t = t.load
let clock t = t.clock
let metrics t = t.metrics
let session t oid = Oid_map.find_opt oid t.sessions
let session_count t = Oid_map.cardinal t.sessions

(* ------------------------------------------------ degradation ladder -- *)

let over t frac =
  float_of_int t.load >= frac *. float_of_int t.config.Config.memory_budget

let set_level t level =
  {
    t with
    level;
    last_level_change = t.clock;
    metrics = { t.metrics with level_changes = t.metrics.level_changes + 1 };
  }

(* Entering count-only drops every retained window in one sweep — the
   memory shed. Per-session desync events are folded into the single
   [Level_change] (a mass shed would emit thousands of lines). *)
let enter_count_only t =
  let desyncs = ref 0 in
  let sessions =
    Oid_map.map
      (fun s ->
        let s', evs = Session.shed s ~reason:"count-only degradation" in
        if evs <> [] || Session.is_desynced s' <> Session.is_desynced s then
          incr desyncs;
        s')
      t.sessions
  in
  let t = set_level { t with sessions; load = 0 } Proto.Count_only in
  { t with metrics = { t.metrics with desyncs = t.metrics.desyncs + !desyncs } }

let rec degrade t events =
  match t.level with
  | Proto.Full when over t t.config.Config.hi_watermark ->
      let t = set_level t Proto.Sampled in
      degrade t
        (Proto.Level_change { level = t.level; load = t.load } :: events)
  | Proto.Sampled when over t 1.0 ->
      let t = enter_count_only t in
      degrade t
        (Proto.Level_change { level = t.level; load = t.load } :: events)
  | _ -> (t, events)

let upgrade t =
  let under =
    float_of_int t.load
    <= t.config.Config.lo_watermark *. float_of_int t.config.Config.memory_budget
  in
  if
    Proto.level_order t.level > 0
    && under
    && t.clock - t.last_level_change >= t.config.Config.cooldown
  then
    let next =
      match t.level with
      | Proto.Count_only -> Proto.Sampled
      | _ -> Proto.Full
    in
    let t = set_level t next in
    (t, [ Proto.Level_change { level = next; load = t.load } ])
  else (t, [])

(* -------------------------------------------------------- admission -- *)

let remember_evicted t oid =
  let evicted = Oid_set.add oid t.evicted in
  if Oid_set.cardinal evicted > t.config.Config.max_evicted_remembered then
    (* Past the cap the set can no longer prove an oid was never seen:
       drop it and distrust every future admission instead. *)
    { t with evicted = Oid_set.empty; unknown_history = true }
  else { t with evicted }

let evict t oid ~reason =
  match Oid_map.find_opt oid t.sessions with
  | None -> (t, [])
  | Some s ->
      let t =
        {
          t with
          sessions = Oid_map.remove oid t.sessions;
          load = t.load - Session.window_len s;
          metrics =
            {
              t.metrics with
              sessions_evicted = t.metrics.sessions_evicted + 1;
            };
        }
      in
      (remember_evicted t oid, [ Proto.Session_evicted { oid; reason } ])

(* Under admission pressure a desynced session (pure counter, no window)
   is the cheapest thing to sacrifice: least-recently-active first, oid
   as the deterministic tie-break. *)
let shed_for_admission t =
  let victim =
    Oid_map.fold
      (fun oid s best ->
        if not (Session.is_desynced s) then best
        else
          match best with
          | Some (_, bs) when Session.last_active bs <= Session.last_active s
            ->
              best
          | _ -> Some (oid, s))
      t.sessions None
  in
  match victim with
  | None -> None
  | Some (oid, _) ->
      Some (evict t oid ~reason:Proto.Admission_pressure)

let admit t oid =
  match t.spec_for oid with
  | None -> Error (Fmt.str "unknown object %a" Ids.Oid.pp oid)
  | Some spec ->
      let full = Oid_map.cardinal t.sessions >= t.config.Config.max_sessions in
      let shed = if full then shed_for_admission t else None in
      let t, evs =
        match shed with Some (t, evs) -> (t, evs) | None -> (t, [])
      in
      if Oid_map.cardinal t.sessions >= t.config.Config.max_sessions then
        Error
          (Fmt.str "session table full (max %d)" t.config.Config.max_sessions)
      else
        let fresh =
          (not t.unknown_history)
          && (not (Oid_set.mem oid t.evicted))
          && t.level <> Proto.Count_only
        in
        let s = Session.create ~oid ~spec ~now:t.clock ~fresh in
        let evs =
          if fresh then evs
          else
            evs
            @ [
                Proto.Session_desynced
                  { oid; reason = "admitted with unknown prior history" };
              ]
        in
        let t =
          {
            t with
            sessions = Oid_map.add oid s t.sessions;
            metrics =
              {
                t.metrics with
                sessions_created = t.metrics.sessions_created + 1;
                desyncs = (t.metrics.desyncs + if fresh then 0 else 1);
              };
          }
        in
        Ok (t, s, evs)

(* ---------------------------------------------------------- feeding -- *)

let reject t ~frame reason =
  ( {
      t with
      metrics =
        { t.metrics with rejected_frames = t.metrics.rejected_frames + 1 };
    },
    [ Proto.Rejected_frame { frame; reason } ] )

let count_events t evs =
  let m =
    List.fold_left
      (fun m -> function
        | Proto.Committed _ -> { m with commits = m.commits + 1 }
        | Proto.Violation _ -> { m with violations = m.violations + 1 }
        | Proto.Session_desynced _ -> { m with desyncs = m.desyncs + 1 }
        | _ -> m)
      t.metrics evs
  in
  { t with metrics = m }

let feed_action t ~frame action =
  let oid = Action.oid action in
  let admitted =
    match Oid_map.find_opt oid t.sessions with
    | Some s -> Ok (t, s, [])
    | None -> admit t oid
  in
  match admitted with
  | Error reason -> reject t ~frame reason
  | Ok (t, s, admit_evs) -> (
      match
        Session.feed ~config:t.config ~level:t.level ?cache:t.cache
          ~now:t.clock s action
      with
      | Error reason ->
          (* The frame is rejected but the (possibly just-admitted)
             session stays — containment means the stream survives its
             own bad frames. *)
          let t, evs = reject t ~frame reason in
          (t, admit_evs @ evs)
      | Ok (s', evs) ->
          let t =
            {
              t with
              sessions = Oid_map.add oid s' t.sessions;
              load = t.load - Session.window_len s + Session.window_len s';
              metrics =
                {
                  t.metrics with
                  ops = t.metrics.ops + (Session.ops s' - Session.ops s);
                };
            }
          in
          let t = count_events t evs in
          let t, ladder_evs = degrade t [] in
          (t, admit_evs @ evs @ List.rev ladder_evs))

let feed_crash t ~epoch =
  let sessions = Oid_map.map Session.crash t.sessions in
  (* Every object rebooted, so prior-history distrust is moot: evicted
     oids may be readmitted fresh. *)
  ( {
      t with
      sessions;
      load = 0;
      evicted = Oid_set.empty;
      unknown_history = false;
      metrics = { t.metrics with crashes = t.metrics.crashes + 1 };
    },
    [ Proto.Crash_seen { epoch } ] )

let feed_line t line =
  let t = { t with metrics = { t.metrics with frames = t.metrics.frames + 1 } } in
  let frame = t.metrics.frames in
  let go () =
    match History_format.line_too_long line with
    | Some reason -> reject t ~frame reason
    | None -> (
        let body =
          String.trim
            (match String.index_opt line '#' with
            | Some i -> String.sub line 0 i
            | None -> line)
        in
        if body = "" then (t, [])
        else
          match History_format.parse_action body with
          | Error reason -> reject t ~frame reason
          | Ok (Action.Crash { epoch }) -> feed_crash t ~epoch
          | Ok action -> feed_action t ~frame action)
  in
  (* Last-resort containment: [feed] is pure, so an escaped exception has
     changed nothing — the frame is rejected and the daemon state stands. *)
  try go ()
  with exn ->
    reject t ~frame (Fmt.str "internal error: %s" (Printexc.to_string exn))

let reap t =
  let cutoff = t.clock - t.config.Config.idle_timeout in
  let idle =
    Oid_map.fold
      (fun oid s acc ->
        (* Latched sessions are retained: they hold no window memory and
           their violation record must survive until a snapshot. *)
        if Session.last_active s <= cutoff && Session.latched s = None then
          oid :: acc
        else acc)
      t.sessions []
    |> List.rev
  in
  List.fold_left
    (fun (t, evs) oid ->
      let t, e = evict t oid ~reason:Proto.Idle in
      (t, evs @ e))
    (t, []) idle

let tick t =
  let t =
    {
      t with
      clock = t.clock + 1;
      metrics = { t.metrics with ticks = t.metrics.ticks + 1 };
    }
  in
  let t, reap_evs = reap t in
  let t, up_evs = upgrade t in
  (t, reap_evs @ up_evs)

let feed t = function
  | Proto.Line line -> feed_line t line
  | Proto.Tick -> tick t

(* ------------------------------------------------ snapshot / restore -- *)

let snapshot t =
  let b = Buffer.create 1024 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "calserve-snapshot v1";
  line "clock %d" t.clock;
  line "frames %d" t.metrics.frames;
  line "level %s" (Proto.level_to_string t.level);
  line "unknown-history %b" t.unknown_history;
  Oid_set.iter (fun oid -> line "evicted %a" Ids.Oid.pp oid) t.evicted;
  Oid_map.iter
    (fun oid s ->
      match Session.latched s with
      | Some (op, reason) ->
          line "session %a ops=%d era=%d latched op=%d reason=%s" Ids.Oid.pp
            oid (Session.ops s) (Session.era s) op (Proto.one_line reason)
      | None ->
          line "session %a ops=%d era=%d ok" Ids.Oid.pp oid (Session.ops s)
            (Session.era s))
    t.sessions;
  line "end";
  Buffer.contents b

let int_field ~name s =
  let prefix = name ^ "=" in
  let n = String.length prefix in
  if String.length s > n && String.sub s 0 n = prefix then
    int_of_string_opt (String.sub s n (String.length s - n))
  else None

let restore ?cache ~config ~spec_for text =
  let ( let* ) = Result.bind in
  let* base = create ?cache ~config ~spec_for () in
  let err fmt = Fmt.kstr (fun s -> Error s) fmt in
  let parse_session t line rest =
    match rest with
    | oid_s :: fields -> (
        let* oid =
          match Ids.Oid.v oid_s with
          | oid -> Ok oid
          | exception Invalid_argument m -> err "%s: %s" line m
        in
        let* spec =
          match spec_for oid with
          | Some spec -> Ok spec
          | None -> err "%s: unknown object in snapshot" line
        in
        match fields with
        | [ ops_s; era_s; "ok" ] -> (
            match (int_field ~name:"ops" ops_s, int_field ~name:"era" era_s)
            with
            | Some ops, Some era ->
                let s = Session.of_snapshot ~oid ~spec ~now:t.clock ~ops ~era None in
                Ok { t with sessions = Oid_map.add oid s t.sessions }
            | _ -> err "%s: bad session fields" line)
        | ops_s :: era_s :: "latched" :: op_s :: rest -> (
            let reason =
              let joined = String.concat " " rest in
              let prefix = "reason=" in
              let n = String.length prefix in
              if String.length joined >= n && String.sub joined 0 n = prefix
              then Some (String.sub joined n (String.length joined - n))
              else None
            in
            match
              ( int_field ~name:"ops" ops_s,
                int_field ~name:"era" era_s,
                int_field ~name:"op" op_s,
                reason )
            with
            | Some ops, Some era, Some op, Some reason ->
                let s =
                  Session.of_snapshot ~oid ~spec ~now:t.clock ~ops ~era
                    (Some (op, reason))
                in
                Ok { t with sessions = Oid_map.add oid s t.sessions }
            | _ -> err "%s: bad latched session fields" line)
        | _ -> err "%s: bad session line" line)
    | [] -> err "%s: session line without an object" line
  in
  let parse_line t line =
    let parts =
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun s -> s <> "")
    in
    match parts with
    | [] | [ "end" ] -> Ok t
    | [ "clock"; n ] -> (
        match int_of_string_opt n with
        | Some clock -> Ok { t with clock; last_level_change = clock }
        | None -> err "bad clock %S" n)
    | [ "frames"; n ] -> (
        match int_of_string_opt n with
        | Some frames -> Ok { t with metrics = { t.metrics with frames } }
        | None -> err "bad frame count %S" n)
    | [ "level"; l ] -> (
        match Proto.level_of_string l with
        | Some level -> Ok { t with level }
        | None -> err "bad level %S" l)
    | [ "unknown-history"; b ] -> (
        match bool_of_string_opt b with
        | Some unknown_history -> Ok { t with unknown_history }
        | None -> err "bad unknown-history flag %S" b)
    | [ "evicted"; oid_s ] -> (
        match Ids.Oid.v oid_s with
        | oid -> Ok { t with evicted = Oid_set.add oid t.evicted }
        | exception Invalid_argument m -> err "bad evicted line: %s" m)
    | "session" :: rest -> parse_session t line rest
    | _ -> err "unrecognised snapshot line %S" line
  in
  match String.split_on_char '\n' text with
  | "calserve-snapshot v1" :: rest ->
      List.fold_left
        (fun acc line ->
          let* t = acc in
          parse_line t line)
        (Ok base) rest
  | _ -> Error "not a calserve snapshot (missing v1 header)"
