open Cal

module Oid_map = Map.Make (struct
  type t = Ids.Oid.t

  let compare = Ids.Oid.compare
end)

module Oid_set = Set.Make (struct
  type t = Ids.Oid.t

  let compare = Ids.Oid.compare
end)

type metrics = {
  frames : int;
  rejected_frames : int;
  ops : int;
  commits : int;
  violations : int;
  crashes : int;
  ticks : int;
  sessions_created : int;
  sessions_evicted : int;
  desyncs : int;
  level_changes : int;
}

let zero_metrics =
  {
    frames = 0;
    rejected_frames = 0;
    ops = 0;
    commits = 0;
    violations = 0;
    crashes = 0;
    ticks = 0;
    sessions_created = 0;
    sessions_evicted = 0;
    desyncs = 0;
    level_changes = 0;
  }

let pp_metrics ppf m =
  Fmt.pf ppf
    "frames=%d rejected=%d ops=%d commits=%d violations=%d crashes=%d \
     ticks=%d created=%d evicted=%d desyncs=%d level-changes=%d"
    m.frames m.rejected_frames m.ops m.commits m.violations m.crashes m.ticks
    m.sessions_created m.sessions_evicted m.desyncs m.level_changes

type t = {
  config : Config.t;
  spec_for : Ids.Oid.t -> Spec.t option;
  cache : Verdict_cache.t option;
  sessions : Session.t Oid_map.t;
  level : Proto.level;
  load : int;  (* total retained window actions across sessions *)
  clock : int;
  last_level_change : int;
  evicted : Oid_set.t;  (* evicted oids, readmitted conservatively *)
  unknown_history : bool;  (* evicted-set overflowed: distrust every oid *)
  metrics : metrics;
}

let create ?cache ~config ~spec_for () =
  Result.map
    (fun config ->
      {
        config;
        spec_for;
        cache;
        sessions = Oid_map.empty;
        level = Proto.Full;
        load = 0;
        clock = 0;
        last_level_change = 0;
        evicted = Oid_set.empty;
        unknown_history = false;
        metrics = zero_metrics;
      })
    (Config.validate config)

let level t = t.level
let load t = t.load
let clock t = t.clock
let metrics t = t.metrics
let session t oid = Oid_map.find_opt oid t.sessions
let session_count t = Oid_map.cardinal t.sessions

(* ------------------------------------------------ degradation ladder -- *)

let over t frac =
  float_of_int t.load >= frac *. float_of_int t.config.Config.memory_budget

let set_level t level =
  {
    t with
    level;
    last_level_change = t.clock;
    metrics = { t.metrics with level_changes = t.metrics.level_changes + 1 };
  }

(* Entering count-only drops every retained window in one sweep — the
   memory shed. Per-session desync events are folded into the single
   [Level_change] (a mass shed would emit thousands of lines). *)
let enter_count_only t =
  let desyncs = ref 0 in
  let sessions =
    Oid_map.map
      (fun s ->
        let s', evs = Session.shed s ~reason:"count-only degradation" in
        if evs <> [] || Session.is_desynced s' <> Session.is_desynced s then
          incr desyncs;
        s')
      t.sessions
  in
  let t = set_level { t with sessions; load = 0 } Proto.Count_only in
  { t with metrics = { t.metrics with desyncs = t.metrics.desyncs + !desyncs } }

let rec degrade t events =
  match t.level with
  | Proto.Full when over t t.config.Config.hi_watermark ->
      let t = set_level t Proto.Sampled in
      degrade t
        (Proto.Level_change { level = t.level; load = t.load } :: events)
  | Proto.Sampled when over t 1.0 ->
      let t = enter_count_only t in
      degrade t
        (Proto.Level_change { level = t.level; load = t.load } :: events)
  | _ -> (t, events)

let upgrade t =
  let under =
    float_of_int t.load
    <= t.config.Config.lo_watermark *. float_of_int t.config.Config.memory_budget
  in
  if
    Proto.level_order t.level > 0
    && under
    && t.clock - t.last_level_change >= t.config.Config.cooldown
  then
    let next =
      match t.level with
      | Proto.Count_only -> Proto.Sampled
      | _ -> Proto.Full
    in
    let t = set_level t next in
    (t, [ Proto.Level_change { level = next; load = t.load } ])
  else (t, [])

(* -------------------------------------------------------- admission -- *)

let remember_evicted t oid =
  let evicted = Oid_set.add oid t.evicted in
  if Oid_set.cardinal evicted > t.config.Config.max_evicted_remembered then
    (* Past the cap the set can no longer prove an oid was never seen:
       drop it and distrust every future admission instead. *)
    { t with evicted = Oid_set.empty; unknown_history = true }
  else { t with evicted }

let evict t oid ~reason =
  match Oid_map.find_opt oid t.sessions with
  | None -> (t, [])
  | Some s ->
      let t =
        {
          t with
          sessions = Oid_map.remove oid t.sessions;
          load = t.load - Session.window_len s;
          metrics =
            {
              t.metrics with
              sessions_evicted = t.metrics.sessions_evicted + 1;
            };
        }
      in
      (remember_evicted t oid, [ Proto.Session_evicted { oid; reason } ])

(* Under admission pressure a desynced session (pure counter, no window)
   is the cheapest thing to sacrifice: least-recently-active first, oid
   as the deterministic tie-break. *)
let shed_for_admission t =
  let victim =
    Oid_map.fold
      (fun oid s best ->
        if not (Session.is_desynced s) then best
        else
          match best with
          | Some (_, bs) when Session.last_active bs <= Session.last_active s
            ->
              best
          | _ -> Some (oid, s))
      t.sessions None
  in
  match victim with
  | None -> None
  | Some (oid, _) ->
      Some (evict t oid ~reason:Proto.Admission_pressure)

let admit t oid =
  match t.spec_for oid with
  | None -> Error (Fmt.str "unknown object %a" Ids.Oid.pp oid)
  | Some spec ->
      let full = Oid_map.cardinal t.sessions >= t.config.Config.max_sessions in
      let shed = if full then shed_for_admission t else None in
      let t, evs =
        match shed with Some (t, evs) -> (t, evs) | None -> (t, [])
      in
      if Oid_map.cardinal t.sessions >= t.config.Config.max_sessions then
        Error
          (Fmt.str "session table full (max %d)" t.config.Config.max_sessions)
      else
        let fresh =
          (not t.unknown_history)
          && (not (Oid_set.mem oid t.evicted))
          && t.level <> Proto.Count_only
        in
        let s = Session.create ~oid ~spec ~now:t.clock ~fresh in
        let evs =
          if fresh then evs
          else
            evs
            @ [
                Proto.Session_desynced
                  { oid; reason = "admitted with unknown prior history" };
              ]
        in
        let t =
          {
            t with
            sessions = Oid_map.add oid s t.sessions;
            metrics =
              {
                t.metrics with
                sessions_created = t.metrics.sessions_created + 1;
                desyncs = (t.metrics.desyncs + if fresh then 0 else 1);
              };
          }
        in
        Ok (t, s, evs)

(* ---------------------------------------------------------- feeding -- *)

let reject t ~frame reason =
  ( {
      t with
      metrics =
        { t.metrics with rejected_frames = t.metrics.rejected_frames + 1 };
    },
    [ Proto.Rejected_frame { frame; reason } ] )

let count_events t evs =
  let m =
    List.fold_left
      (fun m -> function
        | Proto.Committed _ -> { m with commits = m.commits + 1 }
        | Proto.Violation _ -> { m with violations = m.violations + 1 }
        | Proto.Session_desynced _ -> { m with desyncs = m.desyncs + 1 }
        | _ -> m)
      t.metrics evs
  in
  { t with metrics = m }

let feed_action t ~frame action =
  let oid = Action.oid action in
  let admitted =
    match Oid_map.find_opt oid t.sessions with
    | Some s -> Ok (t, s, [])
    | None -> admit t oid
  in
  match admitted with
  | Error reason -> reject t ~frame reason
  | Ok (t, s, admit_evs) -> (
      match
        Session.feed ~config:t.config ~level:t.level ?cache:t.cache
          ~now:t.clock s action
      with
      | Error reason ->
          (* The frame is rejected but the (possibly just-admitted)
             session stays — containment means the stream survives its
             own bad frames. *)
          let t, evs = reject t ~frame reason in
          (t, admit_evs @ evs)
      | Ok (s', evs) ->
          let t =
            {
              t with
              sessions = Oid_map.add oid s' t.sessions;
              load = t.load - Session.window_len s + Session.window_len s';
              metrics =
                {
                  t.metrics with
                  ops = t.metrics.ops + (Session.ops s' - Session.ops s);
                };
            }
          in
          let t = count_events t evs in
          let t, ladder_evs = degrade t [] in
          (t, admit_evs @ evs @ List.rev ladder_evs))

let feed_crash t ~epoch =
  let sessions = Oid_map.map Session.crash t.sessions in
  (* Every object rebooted, so prior-history distrust is moot: evicted
     oids may be readmitted fresh. *)
  ( {
      t with
      sessions;
      load = 0;
      evicted = Oid_set.empty;
      unknown_history = false;
      metrics = { t.metrics with crashes = t.metrics.crashes + 1 };
    },
    [ Proto.Crash_seen { epoch } ] )

let feed_line t line =
  let t = { t with metrics = { t.metrics with frames = t.metrics.frames + 1 } } in
  let frame = t.metrics.frames in
  let go () =
    match History_format.line_too_long line with
    | Some reason -> reject t ~frame reason
    | None -> (
        let body =
          String.trim
            (match String.index_opt line '#' with
            | Some i -> String.sub line 0 i
            | None -> line)
        in
        if body = "" then (t, [])
        else
          match History_format.parse_action body with
          | Error reason -> reject t ~frame reason
          | Ok (Action.Crash { epoch }) -> feed_crash t ~epoch
          | Ok action -> feed_action t ~frame action)
  in
  (* Last-resort containment: [feed] is pure, so an escaped exception has
     changed nothing — the frame is rejected and the daemon state stands. *)
  try go ()
  with exn ->
    reject t ~frame (Fmt.str "internal error: %s" (Printexc.to_string exn))

let reap t =
  let cutoff = t.clock - t.config.Config.idle_timeout in
  let idle =
    Oid_map.fold
      (fun oid s acc ->
        (* Latched sessions are retained: they hold no window memory and
           their violation record must survive until a snapshot. *)
        if Session.last_active s <= cutoff && Session.latched s = None then
          oid :: acc
        else acc)
      t.sessions []
    |> List.rev
  in
  List.fold_left
    (fun (t, evs) oid ->
      let t, e = evict t oid ~reason:Proto.Idle in
      (t, evs @ e))
    (t, []) idle

let tick t =
  let t =
    {
      t with
      clock = t.clock + 1;
      metrics = { t.metrics with ticks = t.metrics.ticks + 1 };
    }
  in
  let t, reap_evs = reap t in
  let t, up_evs = upgrade t in
  (t, reap_evs @ up_evs)

let feed t = function
  | Proto.Line line -> feed_line t line
  | Proto.Tick -> tick t

(* ------------------------------------------------ snapshot / restore -- *)

(* The v2 snapshot is exact: committed acceptors are carried as their
   [Spec.key] (resumable via [Spec.resume] for every built-in served
   specification), retained windows and pending invocations verbatim,
   plus the whole metrics block and ladder state — so a daemon restored
   from it is bisimilar to the one that wrote it, which is what makes
   kill-and-restart recovery byte-deterministic. The v1 (lossy) format
   is still accepted by {!restore} with its conservative era-reset
   semantics. *)
let snapshot t =
  let b = Buffer.create 1024 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "calserve-snapshot v2";
  line "clock %d" t.clock;
  line "last-level-change %d" t.last_level_change;
  line "level %s" (Proto.level_to_string t.level);
  line "unknown-history %b" t.unknown_history;
  let m = t.metrics in
  line
    "metrics frames=%d rejected=%d ops=%d commits=%d violations=%d \
     crashes=%d ticks=%d created=%d evicted=%d desyncs=%d level-changes=%d"
    m.frames m.rejected_frames m.ops m.commits m.violations m.crashes m.ticks
    m.sessions_created m.sessions_evicted m.desyncs m.level_changes;
  Oid_set.iter (fun oid -> line "evicted %a" Ids.Oid.pp oid) t.evicted;
  Oid_map.iter
    (fun oid s ->
      let head =
        Fmt.str "session %a ops=%d era=%d qpoints=%d high-water=%d \
                 last-active=%d"
          Ids.Oid.pp oid (Session.ops s) (Session.era s) (Session.qpoints s)
          (Session.high_water s) (Session.last_active s)
      in
      (match Session.mode s with
      | Session.Accepting ->
          line "%s accepting key=%s" head
            (Proto.one_line (Session.committed_key s))
      | Session.Latched { op; reason } ->
          line "%s latched op=%d reason=%s" head op (Proto.one_line reason)
      | Session.Desynced reason ->
          line "%s desynced reason=%s" head (Proto.one_line reason));
      List.iter
        (fun a -> line "window %a %s" Ids.Oid.pp oid
            (History_format.print_action a))
        (Session.window_actions s);
      List.iter
        (fun (tid, fid) ->
          line "pending %a %a %a" Ids.Oid.pp oid Ids.Tid.pp tid Ids.Fid.pp
            fid)
        (Session.pending s))
    t.sessions;
  line "end";
  Buffer.contents b

let int_field ~name s =
  let prefix = name ^ "=" in
  let n = String.length prefix in
  if String.length s > n && String.sub s 0 n = prefix then
    int_of_string_opt (String.sub s n (String.length s - n))
  else None

(* [rest_field ~name "a=..." ["a=x"; "y"; "z"]] takes everything after
   ["name="] in the raw line, so the field may contain spaces; it must be
   the last field of its line. [first] is the first remaining token. *)
let rest_field ~name ~line first =
  let prefix = name ^ "=" in
  if not (String.length first >= String.length prefix
          && String.sub first 0 (String.length prefix) = prefix)
  then None
  else
    match String.index_opt line '=' with
    | None -> None
    | Some _ ->
        (* find " name=" (or leading "name=") in the raw line *)
        let pat = " " ^ prefix in
        let n = String.length line and pn = String.length pat in
        let rec find i =
          if i + pn > n then None
          else if String.sub line i pn = pat then
            Some (String.sub line (i + pn) (n - i - pn))
          else find (i + 1)
        in
        find 0

let restore_v1 ~spec_for base rest =
  let ( let* ) = Result.bind in
  let err fmt = Fmt.kstr (fun s -> Error s) fmt in
  let parse_session t line rest =
    match rest with
    | oid_s :: fields -> (
        let* oid =
          match Ids.Oid.v oid_s with
          | oid -> Ok oid
          | exception Invalid_argument m -> err "%s: %s" line m
        in
        let* spec =
          match spec_for oid with
          | Some spec -> Ok spec
          | None -> err "%s: unknown object in snapshot" line
        in
        match fields with
        | [ ops_s; era_s; "ok" ] -> (
            match (int_field ~name:"ops" ops_s, int_field ~name:"era" era_s)
            with
            | Some ops, Some era ->
                let s = Session.of_snapshot ~oid ~spec ~now:t.clock ~ops ~era None in
                Ok { t with sessions = Oid_map.add oid s t.sessions }
            | _ -> err "%s: bad session fields" line)
        | ops_s :: era_s :: "latched" :: op_s :: rest -> (
            let reason =
              let joined = String.concat " " rest in
              let prefix = "reason=" in
              let n = String.length prefix in
              if String.length joined >= n && String.sub joined 0 n = prefix
              then Some (String.sub joined n (String.length joined - n))
              else None
            in
            match
              ( int_field ~name:"ops" ops_s,
                int_field ~name:"era" era_s,
                int_field ~name:"op" op_s,
                reason )
            with
            | Some ops, Some era, Some op, Some reason ->
                let s =
                  Session.of_snapshot ~oid ~spec ~now:t.clock ~ops ~era
                    (Some (op, reason))
                in
                Ok { t with sessions = Oid_map.add oid s t.sessions }
            | _ -> err "%s: bad latched session fields" line)
        | _ -> err "%s: bad session line" line)
    | [] -> err "%s: session line without an object" line
  in
  let parse_line t line =
    let parts =
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun s -> s <> "")
    in
    match parts with
    | [] | [ "end" ] -> Ok t
    | [ "clock"; n ] -> (
        match int_of_string_opt n with
        | Some clock -> Ok { t with clock; last_level_change = clock }
        | None -> err "bad clock %S" n)
    | [ "frames"; n ] -> (
        match int_of_string_opt n with
        | Some frames -> Ok { t with metrics = { t.metrics with frames } }
        | None -> err "bad frame count %S" n)
    | [ "level"; l ] -> (
        match Proto.level_of_string l with
        | Some level -> Ok { t with level }
        | None -> err "bad level %S" l)
    | [ "unknown-history"; b ] -> (
        match bool_of_string_opt b with
        | Some unknown_history -> Ok { t with unknown_history }
        | None -> err "bad unknown-history flag %S" b)
    | [ "evicted"; oid_s ] -> (
        match Ids.Oid.v oid_s with
        | oid -> Ok { t with evicted = Oid_set.add oid t.evicted }
        | exception Invalid_argument m -> err "bad evicted line: %s" m)
    | "session" :: rest -> parse_session t line rest
    | _ -> err "unrecognised snapshot line %S" line
  in
  List.fold_left
    (fun acc line ->
      let* t = acc in
      parse_line t line)
    (Ok base) rest

(* ------------------------------------------------------ v2 (exact) -- *)

(* Partially parsed session block: the [session] header line plus the
   [window]/[pending] continuation lines that must follow it. *)
type pending_session = {
  ps_oid : Ids.Oid.t;
  ps_spec : Spec.t;
  ps_ops : int;
  ps_era : int;
  ps_qpoints : int;
  ps_high_water : int;
  ps_last_active : int;
  ps_mode : [ `Accepting of string | `Mode of Session.mode_view ];
  ps_window_rev : Action.t list;
  ps_pending_rev : (Ids.Tid.t * Ids.Fid.t) list;
}

let finish_session t ps =
  let window = List.rev ps.ps_window_rev in
  let pending = List.rev ps.ps_pending_rev in
  let committed, mode, window, pending =
    match ps.ps_mode with
    | `Accepting key -> (
        match Spec.resume ps.ps_spec key with
        | Some acc -> (acc, Session.Accepting, window, pending)
        | None ->
            (* The specification cannot resume this key (no [~resume], or
               a key from a different version): fall back to the v1
               conservative semantics for this one session. *)
            ( ps.ps_spec.Spec.start,
              Session.Desynced "restored: committed state not resumable",
              [],
              [] ))
    | `Mode m -> (ps.ps_spec.Spec.start, m, [], [])
  in
  let s =
    Session.of_snapshot_exact ~oid:ps.ps_oid ~spec:ps.ps_spec ~committed
      ~window ~pending ~high_water:ps.ps_high_water ~qpoints:ps.ps_qpoints
      ~era:ps.ps_era ~ops:ps.ps_ops ~mode ~last_active:ps.ps_last_active
  in
  {
    t with
    sessions = Oid_map.add ps.ps_oid s t.sessions;
    load = t.load + Session.window_len s;
  }

(* Everything after the first [n] whitespace-separated tokens of [line]
   (for fields that may themselves contain spaces, e.g. action text). *)
let after_tokens ~line n =
  let len = String.length line in
  let rec skip_ws i = if i < len && line.[i] = ' ' then skip_ws (i + 1) else i in
  let rec skip_tok i = if i < len && line.[i] <> ' ' then skip_tok (i + 1) else i in
  let rec go i k =
    let i = skip_ws i in
    if k = 0 then if i < len then Some (String.sub line i (len - i)) else None
    else if i >= len then None
    else go (skip_tok i) (k - 1)
  in
  go 0 n

let restore_v2 ~spec_for base rest =
  let ( let* ) = Result.bind in
  let err fmt = Fmt.kstr (fun s -> Error s) fmt in
  let parse_oid line s =
    match Ids.Oid.v s with
    | oid -> Ok oid
    | exception Invalid_argument m -> err "%s: %s" line m
  in
  let parse_session line fields =
    match fields with
    | oid_s :: ops_s :: era_s :: qp_s :: hw_s :: la_s :: mode_s :: rest -> (
        let* oid = parse_oid line oid_s in
        let* spec =
          match spec_for oid with
          | Some spec -> Ok spec
          | None -> err "%s: unknown object in snapshot" line
        in
        match
          ( int_field ~name:"ops" ops_s,
            int_field ~name:"era" era_s,
            int_field ~name:"qpoints" qp_s,
            int_field ~name:"high-water" hw_s,
            int_field ~name:"last-active" la_s )
        with
        | Some ops, Some era, Some qpoints, Some high_water, Some last_active
          -> (
            let ps mode =
              Ok
                (Some
                   {
                     ps_oid = oid;
                     ps_spec = spec;
                     ps_ops = ops;
                     ps_era = era;
                     ps_qpoints = qpoints;
                     ps_high_water = high_water;
                     ps_last_active = last_active;
                     ps_mode = mode;
                     ps_window_rev = [];
                     ps_pending_rev = [];
                   })
            in
            match (mode_s, rest) with
            | "accepting", first :: _ -> (
                match rest_field ~name:"key" ~line first with
                | Some key -> ps (`Accepting key)
                | None -> err "%s: accepting session without key" line)
            | "latched", op_s :: first :: _ -> (
                match
                  (int_field ~name:"op" op_s, rest_field ~name:"reason" ~line first)
                with
                | Some op, Some reason ->
                    ps (`Mode (Session.Latched { op; reason }))
                | _ -> err "%s: bad latched session fields" line)
            | "desynced", first :: _ -> (
                match rest_field ~name:"reason" ~line first with
                | Some reason -> ps (`Mode (Session.Desynced reason))
                | None -> err "%s: desynced session without reason" line)
            | _ -> err "%s: bad session mode" line)
        | _ -> err "%s: bad session fields" line)
    | _ -> err "%s: bad session line" line
  in
  let parse_line (t, cur) line =
    let raw = line in
    let parts =
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun s -> s <> "")
    in
    let flush () = match cur with None -> t | Some ps -> finish_session t ps in
    match parts with
    | [] -> Ok (t, cur)
    | [ "end" ] -> Ok (flush (), None)
    | "session" :: fields ->
        let t = flush () in
        let* cur = parse_session raw fields in
        Ok (t, cur)
    | "window" :: oid_s :: _ -> (
        match cur with
        | Some ps when Ids.Oid.to_string ps.ps_oid = oid_s -> (
            let* action_text =
              match after_tokens ~line:(String.trim raw) 2 with
              | Some s -> Ok s
              | None -> err "%s: bad window line" raw
            in
            match History_format.parse_action action_text with
            | Ok a ->
                Ok (t, Some { ps with ps_window_rev = a :: ps.ps_window_rev })
            | Error m -> err "%s: %s" raw m)
        | _ -> err "%s: window line outside its session" raw)
    | [ "pending"; oid_s; tid_s; fid_s ] -> (
        match cur with
        | Some ps when Ids.Oid.to_string ps.ps_oid = oid_s -> (
            let tid =
              if String.length tid_s >= 2 && tid_s.[0] = 't' then
                Option.bind
                  (int_of_string_opt
                     (String.sub tid_s 1 (String.length tid_s - 1)))
                  (fun n -> if n >= 0 then Some (Ids.Tid.of_int n) else None)
              else None
            in
            let fid =
              match Ids.Fid.v fid_s with
              | f -> Some f
              | exception Invalid_argument _ -> None
            in
            match (tid, fid) with
            | Some tid, Some fid ->
                Ok
                  (t, Some { ps with ps_pending_rev = (tid, fid) :: ps.ps_pending_rev })
            | _ -> err "%s: bad pending line" raw)
        | _ -> err "%s: pending line outside its session" raw)
    | [ "clock"; n ] -> (
        match int_of_string_opt n with
        | Some clock -> Ok ({ t with clock }, cur)
        | None -> err "bad clock %S" n)
    | [ "last-level-change"; n ] -> (
        match int_of_string_opt n with
        | Some last_level_change -> Ok ({ t with last_level_change }, cur)
        | None -> err "bad last-level-change %S" n)
    | [ "level"; l ] -> (
        match Proto.level_of_string l with
        | Some level -> Ok ({ t with level }, cur)
        | None -> err "bad level %S" l)
    | [ "unknown-history"; b ] -> (
        match bool_of_string_opt b with
        | Some unknown_history -> Ok ({ t with unknown_history }, cur)
        | None -> err "bad unknown-history flag %S" b)
    | "metrics" :: fields ->
        let get name =
          List.find_map (fun f -> int_field ~name f) fields
        in
        (match
           ( get "frames", get "rejected", get "ops", get "commits",
             get "violations", get "crashes", get "ticks", get "created",
             get "evicted", get "desyncs", get "level-changes" )
         with
        | ( Some frames, Some rejected_frames, Some ops, Some commits,
            Some violations, Some crashes, Some ticks, Some sessions_created,
            Some sessions_evicted, Some desyncs, Some level_changes ) ->
            Ok
              ( {
                  t with
                  metrics =
                    {
                      frames;
                      rejected_frames;
                      ops;
                      commits;
                      violations;
                      crashes;
                      ticks;
                      sessions_created;
                      sessions_evicted;
                      desyncs;
                      level_changes;
                    };
                },
                cur )
        | _ -> err "bad metrics line %S" raw)
    | [ "evicted"; oid_s ] ->
        let* oid = parse_oid raw oid_s in
        Ok ({ t with evicted = Oid_set.add oid t.evicted }, cur)
    | _ -> err "unrecognised snapshot line %S" raw
  in
  let* t, cur =
    List.fold_left
      (fun acc line ->
        let* st = acc in
        parse_line st line)
      (Ok (base, None))
      rest
  in
  match cur with
  | None -> Ok t
  | Some ps -> Ok (finish_session t ps)

let restore ?cache ~config ~spec_for text =
  let ( let* ) = Result.bind in
  let* base = create ?cache ~config ~spec_for () in
  match String.split_on_char '\n' text with
  | "calserve-snapshot v1" :: rest -> restore_v1 ~spec_for base rest
  | "calserve-snapshot v2" :: rest -> restore_v2 ~spec_for base rest
  | _ -> Error "not a calserve snapshot (missing v1/v2 header)"
