(** Front-end plumbing of the daemon: the journalling pump and the
    Unix-domain-socket transport.

    The {!pump} is the single write path shared by every front-end (file
    loop, socket server, crash harness): each input frame is journalled
    {e before} it reaches {!Core}, logical ticks are injected on a
    per-frame cadence (and journalled like any other frame, so replay
    re-applies exactly the ticks the original run saw), and snapshots
    are cut on a tick cadence. The socket server is a single-threaded
    [select] loop: connections are independent failure domains — a
    hostile over-long line, a slow consumer or a dead peer costs that
    one connection and nothing else. *)

type pump

val create_pump :
  core:Core.t ->
  ?journal:Journal.writer ->
  ?tick_every:int ->
  ?snapshot_every:int ->
  ?kill_after:int ->
  ?lines_seen:int ->
  unit ->
  pump
(** [tick_every] injects a {!Proto.Tick} after every that-many lines
    (0: never); [snapshot_every] cuts a journal snapshot every that-many
    ticks (0: only the final one); [kill_after] SIGKILLs the process
    right after journalling (and flushing) frame number that-many — the
    deterministic kill point of the crash harness; [lines_seen] seeds
    the line counter on resume so the tick cadence stays aligned with
    the uninterrupted run. *)

val pump_line : pump -> string -> Proto.event list
(** Journal and apply one protocol line, plus the cadence tick it may
    trigger; returns every resulting event in order. *)

val pump_tick : pump -> Proto.event list

val catch_up_ticks : pump -> Proto.event list
(** Resume-boundary repair: if the crash fell between a journalled line
    that completed a tick period and its (never-journalled) tick, inject
    the owed tick now — journalled normally, so the repair itself is
    crash-safe. No-op when the cadence is off or nothing is owed. *)

val pump_core : pump -> Core.t

val finalize : pump -> (string option, string) result
(** Flush the journal and cut a final snapshot; returns its path, or
    [None] when the pump has no journal. *)

(* ------------------------------------------------------------ sockets -- *)

val max_line_bytes : int
(** Transport cap on one line (far above the protocol's own line limit,
    so the core still gets to reject over-long frames deterministically);
    a connection that exceeds it without a newline is dropped. *)

val max_out_bytes : int
(** Per-connection reply backlog cap; a consumer slower than this is
    dropped rather than allowed to wedge the daemon. *)

val serve_socket :
  pump:pump ->
  path:string ->
  max_conns:int ->
  unit ->
  (unit, string) result
(** Bind [path] and serve until SIGTERM/SIGINT. Each connection streams
    protocol lines in and gets its own frames' event lines back. Beyond
    [max_conns] concurrent connections, new ones are told ["busy"] and
    closed. Returns after the drain signal; the caller finalizes the
    pump and prints the summary. *)

val client : path:string -> In_channel.t -> (unit, string) result
(** Connect to a serving daemon, stream the channel's lines to it, print
    every reply line to stdout; returns once the daemon closes the
    connection after our end of stream. *)
