(* Write-ahead journal + snapshot store. See journal.mli for the frame
   wire format and the durability/retention contract. Everything here is
   deliberately paranoid on the read side: recovery treats the directory
   as hostile input and must never raise past [recover]. *)

type record = Line of string | Tick

let record_of_input = function
  | Proto.Line s -> Line s
  | Proto.Tick -> Tick

let input_of_record = function
  | Line s -> Proto.Line s
  | Tick -> Proto.Tick

(* ------------------------------------------------------------- crc32 -- *)

(* The hot loop runs over every journaled byte, so it works on plain
   (63-bit) ints — boxed [Int32] arithmetic allocates per byte — and
   converts to [int32] only at the edge. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c :=
             if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_sub s ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get table
        ((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
      lxor (!c lsr 8)
  done;
  Int32.of_int (!c lxor 0xFFFFFFFF)

let crc32 s = crc32_sub s ~pos:0 ~len:(String.length s)

(* ------------------------------------------------------- frame codec -- *)

let magic = '\xCA'
let header_len = 9 (* magic + u32 body_len + u32 crc *)
let body_overhead = 9 (* kind + u64 seq *)

let encode_frame ~seq record =
  let kind, payload =
    match record with Line s -> ('L', s) | Tick -> ('T', "")
  in
  let payload_len = String.length payload in
  let body_len = body_overhead + payload_len in
  let b = Bytes.create (header_len + body_len) in
  Bytes.unsafe_set b 0 magic;
  Bytes.set_int32_be b 1 (Int32.of_int body_len);
  Bytes.unsafe_set b header_len kind;
  Bytes.set_int64_be b (header_len + 1) (Int64.of_int seq);
  Bytes.blit_string payload 0 b (header_len + body_overhead) payload_len;
  let crc =
    crc32_sub (Bytes.unsafe_to_string b) ~pos:header_len ~len:body_len
  in
  Bytes.set_int32_be b 5 crc;
  Bytes.unsafe_to_string b

type decoded = {
  d_seq : int;
  d_record : record;
  d_len : int;  (* encoded frame length in bytes *)
}

(* Decode the frame at [pos]. [Error reason] marks the start of a
   corrupt/truncated tail; the declared body length is validated against
   the bytes actually present BEFORE any allocation, so a hostile giant
   length can never blow up memory. *)
let decode_frame buf pos =
  let remaining = String.length buf - pos in
  if remaining < header_len then Error "truncated frame header"
  else if buf.[pos] <> magic then Error "bad frame magic"
  else
    let body_len = Int32.to_int (String.get_int32_be buf (pos + 1)) in
    if body_len < body_overhead then Error "declared body length too small"
    else if body_len > remaining - header_len then
      Error "declared body length exceeds available bytes"
    else
      let crc_stored = String.get_int32_be buf (pos + 5) in
      let crc_actual = crc32_sub buf ~pos:(pos + header_len) ~len:body_len in
      if not (Int32.equal crc_stored crc_actual) then Error "crc mismatch"
      else
        let kind = buf.[pos + header_len] in
        let seq64 = String.get_int64_be buf (pos + header_len + 1) in
        let seq = Int64.to_int seq64 in
        if Int64.of_int seq <> seq64 || seq < 1 then
          Error "sequence number out of range"
        else
          let payload_len = body_len - body_overhead in
          let payload () =
            String.sub buf (pos + header_len + body_overhead) payload_len
          in
          match kind with
          | 'L' ->
              Ok { d_seq = seq; d_record = Line (payload ());
                   d_len = header_len + body_len }
          | 'T' when payload_len = 0 ->
              Ok { d_seq = seq; d_record = Tick; d_len = header_len + body_len }
          | 'T' -> Error "tick frame with payload"
          | _ -> Error "unknown frame kind"

(* ------------------------------------------------------- file naming -- *)

let segment_name seq = Printf.sprintf "wal-%016d.seg" seq
let snapshot_name seq = Printf.sprintf "snap-%016d.snap" seq

let parse_named ~prefix ~suffix name =
  let pn = String.length prefix and sn = String.length suffix in
  let n = String.length name in
  if n > pn + sn
     && String.sub name 0 pn = prefix
     && String.sub name (n - sn) sn = suffix
  then
    match int_of_string_opt (String.sub name pn (n - pn - sn)) with
    | Some seq when seq >= 0 -> Some seq
    | _ -> None
  else None

let parse_segment = parse_named ~prefix:"wal-" ~suffix:".seg"
let parse_snapshot = parse_named ~prefix:"snap-" ~suffix:".snap"

let list_dir dir ~parse =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             Option.map (fun seq -> (seq, Filename.concat dir name))
               (parse name))
      |> List.sort (fun (a, _) (b, _) -> compare a b)

let read_file path =
  try Some (In_channel.with_open_bin path In_channel.input_all)
  with Sys_error _ -> None

(* ------------------------------------------------------------ writer -- *)

type writer = {
  dir : string;
  durability : Config.durability;
  mutable fd : Unix.file_descr;
  mutable oc : Out_channel.t;
  mutable seg_bytes : int;
  mutable seq : int;  (* last appended sequence number *)
  mutable unflushed : int;  (* appends since the last channel flush *)
  mutable flushes : int;  (* flushes since the last fsync *)
  mutable closed : bool;
}

let open_segment dir seq =
  let path = Filename.concat dir (segment_name seq) in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (fd, Unix.out_channel_of_descr fd)

let create ~dir ~durability ?(next_seq = 1) () =
  match Config.validate_durability durability with
  | Error e -> Error e
  | Ok durability -> (
      try
        (if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
        if not (Sys.is_directory dir) then
          Error (Fmt.str "journal path %s is not a directory" dir)
        else if next_seq < 1 then Error "journal next_seq must be >= 1"
        else
          let fd, oc = open_segment dir next_seq in
          Ok
            {
              dir;
              durability;
              fd;
              oc;
              seg_bytes = 0;
              seq = next_seq - 1;
              unflushed = 0;
              flushes = 0;
              closed = false;
            }
      with
      | Sys_error e -> Error e
      | Unix.Unix_error (e, _, _) ->
          Error (Fmt.str "cannot open journal in %s: %s" dir
                   (Unix.error_message e)))

let last_seq w = w.seq

let fsync_cadence w =
  w.flushes <- w.flushes + 1;
  if w.durability.Config.fsync_every > 0
     && w.flushes >= w.durability.Config.fsync_every
  then (
    w.flushes <- 0;
    Unix.fsync w.fd)

let flush w =
  if not w.closed then (
    Out_channel.flush w.oc;
    w.unflushed <- 0;
    fsync_cadence w)

let rotate w =
  Out_channel.flush w.oc;
  if w.durability.Config.fsync_every > 0 then Unix.fsync w.fd;
  Out_channel.close w.oc;
  let fd, oc = open_segment w.dir (w.seq + 1) in
  w.fd <- fd;
  w.oc <- oc;
  w.seg_bytes <- 0;
  w.unflushed <- 0;
  w.flushes <- 0

let append w record =
  if w.closed then invalid_arg "Journal.append: writer is closed";
  if w.seg_bytes >= w.durability.Config.segment_bytes then rotate w;
  let seq = w.seq + 1 in
  let frame = encode_frame ~seq record in
  Out_channel.output_string w.oc frame;
  w.seq <- seq;
  w.seg_bytes <- w.seg_bytes + String.length frame;
  w.unflushed <- w.unflushed + 1;
  if w.unflushed >= w.durability.Config.flush_every then (
    Out_channel.flush w.oc;
    w.unflushed <- 0;
    fsync_cadence w);
  seq

let close w =
  if not w.closed then (
    w.closed <- true;
    Out_channel.flush w.oc;
    (try Unix.fsync w.fd with Unix.Unix_error _ -> ());
    Out_channel.close w.oc)

(* --------------------------------------------------------- snapshots -- *)

let snapshot_header = "calserve-durable v1"

let encode_snapshot ~seq payload =
  Fmt.str "%s\nseq %d\ncrc %08lx\n%s" snapshot_header seq (crc32 payload)
    payload

(* [Error] only for hard corruption; a well-formed file whose payload
   fails the CRC is also an [Error] (the caller falls back to an older
   generation). *)
let decode_snapshot text =
  let nl from = String.index_from_opt text from '\n' in
  match nl 0 with
  | None -> Error "missing snapshot header"
  | Some h when String.sub text 0 h <> snapshot_header ->
      Error "bad snapshot header"
  | Some h -> (
      match nl (h + 1) with
      | None -> Error "missing snapshot seq line"
      | Some s -> (
          let seq_line = String.sub text (h + 1) (s - h - 1) in
          match String.split_on_char ' ' seq_line with
          | [ "seq"; n ] -> (
              match int_of_string_opt n with
              | None -> Error "bad snapshot seq"
              | Some seq when seq < 0 -> Error "bad snapshot seq"
              | Some seq -> (
                  match nl (s + 1) with
                  | None -> Error "missing snapshot crc line"
                  | Some c -> (
                      let crc_line = String.sub text (s + 1) (c - s - 1) in
                      match String.split_on_char ' ' crc_line with
                      | [ "crc"; hex ] -> (
                          match Int32.of_string_opt ("0x" ^ hex) with
                          | None -> Error "bad snapshot crc"
                          | Some crc ->
                              let payload =
                                String.sub text (c + 1)
                                  (String.length text - c - 1)
                              in
                              if Int32.equal crc (crc32 payload) then
                                Ok (seq, payload)
                              else Error "snapshot payload crc mismatch")
                      | _ -> Error "bad snapshot crc line")))
          | _ -> Error "bad snapshot seq line"))

let write_snapshot_file ~dir ~seq payload =
  let path = Filename.concat dir (snapshot_name seq) in
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let oc = Unix.out_channel_of_descr fd in
  Out_channel.output_string oc (encode_snapshot ~seq payload);
  Out_channel.flush oc;
  Unix.fsync fd;
  Out_channel.close oc;
  Sys.rename tmp path;
  path

let quietly_remove path = try Sys.remove path with Sys_error _ -> ()

(* Retire snapshot generations past the retention cap, then every
   journal segment fully covered by the OLDEST snapshot we kept (so any
   retained generation still has a contiguous replay suffix). The
   writer's current segment is never removed. *)
let prune w =
  let snaps = List.rev (list_dir w.dir ~parse:parse_snapshot) in
  let keep, drop =
    List.filteri (fun i _ -> i < w.durability.Config.keep_snapshots) snaps,
    List.filteri (fun i _ -> i >= w.durability.Config.keep_snapshots) snaps
  in
  List.iter (fun (_, path) -> quietly_remove path) drop;
  match List.rev keep with
  | [] -> ()
  | (oldest_seq, _) :: _ ->
      let segs = list_dir w.dir ~parse:parse_segment in
      let current = Filename.concat w.dir (segment_name (w.seq + 1)) in
      let rec retire = function
        | (_, path) :: ((next_first, _) :: _ as rest) ->
            (* this segment's last record is next_first - 1 *)
            if next_first - 1 <= oldest_seq
               && not (String.equal path current) then
              quietly_remove path;
            retire rest
        | _ -> ()  (* never remove the last (open) segment *)
      in
      retire segs

let snapshot w ~core_snapshot =
  if w.closed then Error "journal writer is closed"
  else (
    flush w;
    try
      let path = write_snapshot_file ~dir:w.dir ~seq:w.seq core_snapshot in
      prune w;
      Ok path
    with
    | Sys_error e -> Error e
    | Unix.Unix_error (e, _, _) ->
        Error (Fmt.str "snapshot failed: %s" (Unix.error_message e)))

(* ---------------------------------------------------------- recovery -- *)

type recovery = {
  core_snapshot : string option;
  snapshot_seq : int;
  records : record list;
  last_seq : int;
  replayed : int;
  dropped_bytes : int;
  quarantined : string list;
  snapshots_ignored : int;
}

let quarantine ~dir ~seg_path ~offset buf =
  let name =
    Fmt.str "quarantine-%s-%d.bin" (Filename.basename seg_path) offset
  in
  let path = Filename.concat dir name in
  try
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc
          (String.sub buf offset (String.length buf - offset)));
    Some path
  with Sys_error _ -> None

(* Decode one segment's valid frame prefix; the first bad frame starts
   the quarantined tail. Returns the decoded frames in file order. *)
let decode_segment buf =
  let n = String.length buf in
  let rec go pos acc =
    if pos >= n then (List.rev acc, None)
    else
      match decode_frame buf pos with
      | Ok d -> go (pos + d.d_len) (d :: acc)
      | Error reason -> (List.rev acc, Some (pos, reason))
  in
  go 0 []

let pick_snapshot dir =
  let rec go ignored = function
    | [] -> (None, 0, ignored)
    | (_, path) :: rest -> (
        match read_file path with
        | None -> go (ignored + 1) rest
        | Some text -> (
            match decode_snapshot text with
            | Ok (seq, payload) -> (Some payload, seq, ignored)
            | Error _ -> go (ignored + 1) rest))
  in
  go 0 (List.rev (list_dir dir ~parse:parse_snapshot))

let recover ~dir =
  if not (Sys.file_exists dir) then
    Error (Fmt.str "journal directory %s does not exist" dir)
  else if not (Sys.is_directory dir) then
    Error (Fmt.str "journal path %s is not a directory" dir)
  else
    let core_snapshot, snapshot_seq, snapshots_ignored = pick_snapshot dir in
    let dropped = ref 0 in
    let quarantined = ref [] in
    (* Decode every segment's valid prefix, in ascending first-seq
       order, quarantining corrupt tails as they are found. *)
    let decoded =
      List.concat_map
        (fun (_, path) ->
          match read_file path with
          | None -> []
          | Some buf ->
              let frames, bad = decode_segment buf in
              (match bad with
              | Some (offset, _) when offset < String.length buf -> (
                  dropped := !dropped + (String.length buf - offset);
                  match quarantine ~dir ~seg_path:path ~offset buf with
                  | Some q -> quarantined := q :: !quarantined
                  | None -> ())
              | _ -> ());
              frames)
        (list_dir dir ~parse:parse_segment)
    in
    (* Keep the contiguous chain right after the snapshot; frames below
       it are already covered, frames past a gap are unreachable from
       any consistent state and are honestly counted as dropped. *)
    let expected = ref (snapshot_seq + 1) in
    let taken = ref [] in
    List.iter
      (fun d ->
        if d.d_seq = !expected then (
          taken := d.d_record :: !taken;
          incr expected)
        else if d.d_seq > !expected then dropped := !dropped + d.d_len)
      decoded;
    let records = List.rev !taken in
    let replayed = List.length records in
    Ok
      {
        core_snapshot;
        snapshot_seq;
        records;
        last_seq = snapshot_seq + replayed;
        replayed;
        dropped_bytes = !dropped;
        quarantined = List.rev !quarantined;
        snapshots_ignored;
      }

let pp_recovery ppf r =
  Fmt.pf ppf
    "recovered to seq %d (snapshot %d + %d replayed)%s%s%s"
    r.last_seq r.snapshot_seq r.replayed
    (if r.dropped_bytes > 0 then
       Fmt.str ", %d journal bytes dropped" r.dropped_bytes
     else "")
    (match r.quarantined with
     | [] -> ""
     | qs -> Fmt.str ", %d tail(s) quarantined" (List.length qs))
    (if r.snapshots_ignored > 0 then
       Fmt.str ", %d corrupt snapshot(s) ignored" r.snapshots_ignored
     else "")
