(** Wire-level types of the streaming monitor: inputs, verdict events and
    the degradation ladder.

    One input frame is one line of the {!Cal.History_format} history
    format (an [inv]/[res] action or a [crash <epoch>] marker); outputs
    are one-line events that {!print_event} renders byte-stably, so a
    fixture transcript can be asserted verbatim. *)

type level =
  | Full  (** exhaustive CAL verdict at every quiescent point *)
  | Sampled
      (** sequential windows still get exact verdicts via the fast path;
          concurrent windows batch until every [sample_period]-th
          quiescent point *)
  | Count_only
      (** verification suspended, frames only counted; retained windows
          are dropped on entry (the memory shed) *)

val level_order : level -> int
(** [Full] < [Sampled] < [Count_only] (increasing degradation). *)

val level_to_string : level -> string
val level_of_string : string -> level option

type input =
  | Line of string  (** one protocol frame, newline already stripped *)
  | Tick  (** logical clock advance: drives reaping and ladder upgrades *)

type evict_reason = Idle | Admission_pressure

type event =
  | Committed of { oid : Cal.Ids.Oid.t; ops : int }
      (** a session window was accepted and folded into committed state;
          [ops] is the session's completed-operation total *)
  | Violation of { oid : Cal.Ids.Oid.t; op : int; reason : string }
      (** CAL violation latched at the session's [op]-th operation *)
  | Rejected_frame of { frame : int; reason : string }
      (** structured error reply: the [frame]-th input line was rejected
          (parse error, admission, protocol misuse) without touching any
          session state *)
  | Crash_seen of { epoch : int }
      (** a full-system crash marker: every session entered a new era *)
  | Level_change of { level : level; load : int }
      (** the degradation ladder moved; [load] is retained actions *)
  | Session_evicted of { oid : Cal.Ids.Oid.t; reason : evict_reason }
  | Session_desynced of { oid : Cal.Ids.Oid.t; reason : string }
      (** the session can no longer verify (window overflow, count-only
          shed, conservative re-admission) and counts operations until
          the next era resyncs it *)

val print_event : event -> string
(** One event as one stable ASCII line (embedded newlines flattened). *)

val one_line : string -> string
(** Flatten newlines so an embedded reason cannot break the framing. *)
