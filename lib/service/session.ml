open Cal

(* One object instance's incremental monitor. The committed acceptor is
   the specification state reached by every already-verified action; the
   window holds the actions since. Windows are verified at quiescent
   points (no pending invocation), where the verdict of the exhaustive
   checker started from the committed state is exact — and on a
   sequential window the checker is bypassed entirely, because the only
   admissible CA-trace is the singleton elements in invocation order. *)

type mode =
  | Accepting
  | Desynced of string  (* counting only, until the next era *)
  | Latched of { op : int; reason : string }

type t = {
  oid : Ids.Oid.t;
  spec : Spec.t;
  committed : Spec.acceptor;
  window : Action.t list;  (* newest first *)
  window_len : int;
  pending : (Ids.Tid.t * Ids.Fid.t) list;
  high_water : int;  (* max concurrent pending since the last commit *)
  qpoints : int;  (* quiescent points since creation, for sampling *)
  era : int;
  ops : int;  (* completed operations over the session's whole life *)
  mode : mode;
  last_active : int;
}

let make ~oid ~spec ~now mode =
  {
    oid;
    spec;
    committed = spec.Spec.start;
    window = [];
    window_len = 0;
    pending = [];
    high_water = 0;
    qpoints = 0;
    era = 0;
    ops = 0;
    mode;
    last_active = now;
  }

let create ~oid ~spec ~now ~fresh =
  make ~oid ~spec ~now
    (if fresh then Accepting
     else Desynced "admitted with unknown prior history")

let of_snapshot ~oid ~spec ~now ~ops ~era latched =
  let mode =
    match latched with
    | Some (op, reason) -> Latched { op; reason }
    | None -> Desynced "restored after daemon restart"
  in
  { (make ~oid ~spec ~now mode) with ops; era }

type mode_view = mode =
  | Accepting
  | Desynced of string
  | Latched of { op : int; reason : string }

let mode t = t.mode

let of_snapshot_exact ~oid ~spec ~committed ~window ~pending ~high_water
    ~qpoints ~era ~ops ~mode ~last_active =
  {
    oid;
    spec;
    committed;
    window = List.rev window;
    window_len = List.length window;
    pending;
    high_water;
    qpoints;
    era;
    ops;
    mode;
    last_active;
  }

let committed_key t = Spec.key t.committed
let window_actions t = List.rev t.window
let pending t = t.pending
let high_water t = t.high_water
let qpoints t = t.qpoints

let oid t = t.oid
let ops t = t.ops
let era t = t.era
let window_len t = t.window_len
let last_active t = t.last_active

let latched t =
  match t.mode with Latched { op; reason } -> Some (op, reason) | _ -> None

let is_desynced t = match t.mode with Desynced _ -> true | _ -> false

(* A crash marker opens a new era: the object rebooted into its initial
   state, so the acceptor restarts and a desynced session resynchronises.
   Violations latch across eras. *)
let crash t =
  let mode = match t.mode with Latched _ as l -> l | _ -> Accepting in
  {
    t with
    committed = t.spec.Spec.start;
    window = [];
    window_len = 0;
    pending = [];
    high_water = 0;
    era = t.era + 1;
    mode;
  }

(* ------------------------------------------------- window verdicts -- *)

let window_history t = History.of_list (List.rev t.window)

let resumed_spec t = { t.spec with Spec.start = t.committed }

type verdict = Commit of Spec.acceptor | Violate of string | Defer

(* Exact fast path for sequential windows: with a total real-time order,
   [i ≺H j ⟹ π(i) < π(j)] forces every CA-element to be a singleton, so
   acceptance is one fold of [Spec.step]. *)
let check_sequential t =
  let entries = History.entries (window_history t) in
  let rec go acc = function
    | [] -> Commit acc
    | e :: rest -> (
        match History.op_of_entry e with
        | None -> Violate "internal: pending entry in a quiescent window"
        | Some op -> (
            let el = Ca_trace.element t.oid [ op ] in
            match Spec.step acc el with
            | Some acc' -> go acc' rest
            | None ->
                Violate
                  (Fmt.str "element rejected by %s: %a" t.spec.Spec.name
                     Ca_trace.pp_element el)))
  in
  go t.committed entries

let check_exhaustive t =
  match Cal_checker.check ~spec:(resumed_spec t) (window_history t) with
  | Cal_checker.Accepted { trace; _ } ->
      let acc =
        List.fold_left
          (fun acc el ->
            match Spec.step acc el with Some a -> a | None -> acc)
          t.committed trace
      in
      Commit acc
  | Cal_checker.Rejected { reason; _ } -> Violate reason

(* Verdict-only check for the overflow path (no acceptor to resume, so
   the bounded verdict cache applies: same committed state + canonically
   equal window = one checker call). *)
let check_verdict ?cache t =
  let compute () =
    match Cal_checker.check ~spec:(resumed_spec t) (window_history t) with
    | Cal_checker.Accepted _ -> Ok ()
    | Cal_checker.Rejected { reason; _ } -> Error reason
  in
  match cache with
  | None -> compute ()
  | Some c ->
      let key =
        Fmt.str "serve|%s|%s|%s" t.spec.Spec.name
          (Spec.key t.committed)
          (History.canonical_key (window_history t))
      in
      Verdict_cache.find_or_compute c ~key compute

(* ---------------------------------------------------------- feeding -- *)

let quiescent_verdict ~config ~level t =
  if t.high_water <= 1 then check_sequential t
  else
    match (level : Proto.level) with
    | Proto.Full -> check_exhaustive t
    | Proto.Sampled ->
        if t.qpoints mod config.Config.sample_period = 0 then
          check_exhaustive t
        else Defer
    | Proto.Count_only -> Defer

let committed_window t acc =
  {
    t with
    committed = acc;
    window = [];
    window_len = 0;
    high_water = 0;
  }

let latch t reason =
  ( {
      t with
      mode = Latched { op = t.ops; reason };
      window = [];
      window_len = 0;
      pending = [];
      high_water = 0;
    },
    [ Proto.Violation { oid = t.oid; op = t.ops; reason } ] )

let desync t reason =
  ( {
      t with
      mode = Desynced reason;
      window = [];
      window_len = 0;
      high_water = 0;
    },
    [ Proto.Session_desynced { oid = t.oid; reason } ] )

(* Entering count-only (or any forced shed): retained windows are
   dropped, so the session can no longer verify this era. *)
let shed t ~reason =
  match t.mode with
  | Accepting when t.window_len > 0 || t.pending <> [] ->
      let t, evs = desync t reason in
      ({ t with pending = [] }, evs)
  | Accepting -> ({ t with mode = Desynced reason; pending = [] }, [])
  | _ -> (t, [])

let feed ~config ~level ?cache ~now t action =
  let t = { t with last_active = now } in
  match t.mode with
  | Latched _ | Desynced _ ->
      (* Count-only: frames are not validated (the pending set is gone),
         operations are counted on responses. *)
      let t =
        if Action.is_res action then { t with ops = t.ops + 1 } else t
      in
      Ok (t, [])
  | Accepting -> (
      let overflowing = t.window_len + 1 > config.Config.window_max in
      let append t =
        { t with window = action :: t.window; window_len = t.window_len + 1 }
      in
      let overflow t =
        (* One final verdict over the overflowing window, then the
           session sheds it and counts until the next era. *)
        match check_verdict ?cache t with
        | Error reason -> latch t reason
        | Ok () ->
            desync t
              (Fmt.str "window overflow (%d actions)" t.window_len)
      in
      match action with
      | Action.Crash _ -> Error "internal: crash markers are handled globally"
      | Action.Inv { tid; fid; _ } ->
          if
            List.exists
              (fun (pt, _) -> Ids.Tid.equal pt tid)
              t.pending
          then
            Error
              (Fmt.str "thread %a already has a pending invocation on %a"
                 Ids.Tid.pp tid Ids.Oid.pp t.oid)
          else if List.length t.pending >= config.Config.max_pending then
            Error
              (Fmt.str "too many pending invocations on %a (max %d)"
                 Ids.Oid.pp t.oid config.Config.max_pending)
          else
            let t = append t in
            let t =
              {
                t with
                pending = (tid, fid) :: t.pending;
                high_water = max t.high_water (List.length t.pending + 1);
              }
            in
            if overflowing then Ok (overflow t) else Ok (t, [])
      | Action.Res { tid; fid; _ } -> (
          if
            not
              (List.exists
                 (fun (pt, pf) ->
                   Ids.Tid.equal pt tid && Ids.Fid.equal pf fid)
                 t.pending)
          then
            Error
              (Fmt.str "no pending %a invocation by %a on %a" Ids.Fid.pp fid
                 Ids.Tid.pp tid Ids.Oid.pp t.oid)
          else
            let t = append t in
            let t =
              {
                t with
                pending =
                  List.filter
                    (fun (pt, pf) ->
                      not (Ids.Tid.equal pt tid && Ids.Fid.equal pf fid))
                    t.pending;
                ops = t.ops + 1;
              }
            in
            if overflowing then Ok (overflow t)
            else if t.pending <> [] then Ok (t, [])
            else
              (* Quiescent point. *)
              let t = { t with qpoints = t.qpoints + 1 } in
              match quiescent_verdict ~config ~level t with
              | Commit acc ->
                  Ok
                    ( committed_window t acc,
                      [ Proto.Committed { oid = t.oid; ops = t.ops } ] )
              | Violate reason -> Ok (latch t reason)
              | Defer -> Ok (t, [])))
