open Cal

type level = Full | Sampled | Count_only

let level_order = function Full -> 0 | Sampled -> 1 | Count_only -> 2

let level_to_string = function
  | Full -> "full"
  | Sampled -> "sampled"
  | Count_only -> "count-only"

let level_of_string = function
  | "full" -> Some Full
  | "sampled" -> Some Sampled
  | "count-only" -> Some Count_only
  | _ -> None

type input = Line of string | Tick

type evict_reason = Idle | Admission_pressure

type event =
  | Committed of { oid : Ids.Oid.t; ops : int }
  | Violation of { oid : Ids.Oid.t; op : int; reason : string }
  | Rejected_frame of { frame : int; reason : string }
  | Crash_seen of { epoch : int }
  | Level_change of { level : level; load : int }
  | Session_evicted of { oid : Ids.Oid.t; reason : evict_reason }
  | Session_desynced of { oid : Ids.Oid.t; reason : string }

(* Event reasons are embedded in one-line replies, so newlines (which
   would break the framing) are flattened. *)
let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let print_event = function
  | Committed { oid; ops } ->
      Fmt.str "committed oid=%a ops=%d" Ids.Oid.pp oid ops
  | Violation { oid; op; reason } ->
      Fmt.str "violation oid=%a op=%d reason=%s" Ids.Oid.pp oid op
        (one_line reason)
  | Rejected_frame { frame; reason } ->
      Fmt.str "error frame=%d reason=%s" frame (one_line reason)
  | Crash_seen { epoch } -> Fmt.str "crash epoch=%d" epoch
  | Level_change { level; load } ->
      Fmt.str "level level=%s load=%d" (level_to_string level) load
  | Session_evicted { oid; reason } ->
      Fmt.str "evicted oid=%a reason=%s" Ids.Oid.pp oid
        (match reason with Idle -> "idle" | Admission_pressure -> "admission")
  | Session_desynced { oid; reason } ->
      Fmt.str "desynced oid=%a reason=%s" Ids.Oid.pp oid (one_line reason)
