type t = {
  max_sessions : int;
  max_pending : int;
  window_max : int;
  memory_budget : int;
  hi_watermark : float;
  lo_watermark : float;
  cooldown : int;
  sample_period : int;
  idle_timeout : int;
  max_evicted_remembered : int;
}

let default =
  {
    max_sessions = 4096;
    max_pending = 16;
    window_max = 48;
    memory_budget = 65_536;
    hi_watermark = 0.75;
    lo_watermark = 0.25;
    cooldown = 4;
    sample_period = 4;
    idle_timeout = 64;
    max_evicted_remembered = 16_384;
  }

(* The exhaustive checker refuses histories past 62 operations, and a
   window of [n] actions holds at most [n] operations (an op is two
   actions, but every pending invocation is a single one). Clamping here
   keeps [Session]'s overflow check always legal. *)
let checker_op_limit = 62

let validate t =
  if t.max_sessions < 1 then Error "max_sessions must be >= 1"
  else if t.max_pending < 1 then Error "max_pending must be >= 1"
  else if t.window_max < 2 then Error "window_max must be >= 2"
  else if t.window_max > checker_op_limit then
    Error (Fmt.str "window_max must be <= %d (checker op limit)" checker_op_limit)
  else if t.max_pending > t.window_max then
    Error "max_pending must be <= window_max"
  else if t.memory_budget < t.window_max then
    Error "memory_budget must be >= window_max"
  else if not (0. < t.lo_watermark && t.lo_watermark < t.hi_watermark
               && t.hi_watermark <= 1.) then
    Error "watermarks must satisfy 0 < lo < hi <= 1"
  else if t.cooldown < 0 then Error "cooldown must be >= 0"
  else if t.sample_period < 1 then Error "sample_period must be >= 1"
  else if t.idle_timeout < 1 then Error "idle_timeout must be >= 1"
  else if t.max_evicted_remembered < 0 then
    Error "max_evicted_remembered must be >= 0"
  else Ok t
