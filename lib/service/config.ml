type t = {
  max_sessions : int;
  max_pending : int;
  window_max : int;
  memory_budget : int;
  hi_watermark : float;
  lo_watermark : float;
  cooldown : int;
  sample_period : int;
  idle_timeout : int;
  max_evicted_remembered : int;
}

let default =
  {
    max_sessions = 4096;
    max_pending = 16;
    window_max = 48;
    memory_budget = 65_536;
    hi_watermark = 0.75;
    lo_watermark = 0.25;
    cooldown = 4;
    sample_period = 4;
    idle_timeout = 64;
    max_evicted_remembered = 16_384;
  }

(* The exhaustive checker refuses histories past 62 operations, and a
   window of [n] actions holds at most [n] operations (an op is two
   actions, but every pending invocation is a single one). Clamping here
   keeps [Session]'s overflow check always legal. *)
let checker_op_limit = 62

(* Durability knobs of the daemon front-ends (journal + snapshots); the
   pure core never sees them. [flush_every] is process-crash durability
   (frames per channel flush: 1 = write-ahead for every frame; the
   default batches 32 frames per write(2) — group commit — bounding the
   kill-window to 31 tail frames, which recovery reports honestly),
   [fsync_every] is power-loss durability (flushes per fsync: 0 = leave
   it to the OS). *)
type durability = {
  segment_bytes : int;  (* journal segment rotation threshold *)
  flush_every : int;
  fsync_every : int;
  snapshot_every : int;  (* logical ticks between snapshots; 0 = never *)
  keep_snapshots : int;  (* retained snapshot generations, >= 1 *)
}

let default_durability =
  {
    segment_bytes = 1 lsl 20;
    flush_every = 32;
    fsync_every = 0;
    snapshot_every = 8;
    keep_snapshots = 2;
  }

let validate_durability d =
  if d.segment_bytes < 4096 then Error "segment-bytes must be >= 4096"
  else if d.flush_every < 1 then Error "flush-every must be >= 1"
  else if d.fsync_every < 0 then Error "fsync-every must be >= 0"
  else if d.snapshot_every < 0 then Error "snapshot-every must be >= 0"
  else if d.keep_snapshots < 1 then Error "keep-snapshots must be >= 1"
  else Ok d

let validate t =
  if t.max_sessions < 1 then Error "max_sessions must be >= 1"
  else if t.max_pending < 1 then Error "max_pending must be >= 1"
  else if t.window_max < 2 then Error "window_max must be >= 2"
  else if t.window_max > checker_op_limit then
    Error (Fmt.str "window_max must be <= %d (checker op limit)" checker_op_limit)
  else if t.max_pending > t.window_max then
    Error "max_pending must be <= window_max"
  else if t.memory_budget < t.window_max then
    Error "memory_budget must be >= window_max"
  else if not (0. < t.lo_watermark && t.lo_watermark < t.hi_watermark
               && t.hi_watermark <= 1.) then
    Error "watermarks must satisfy 0 < lo < hi <= 1"
  else if t.cooldown < 0 then Error "cooldown must be >= 0"
  else if t.sample_period < 1 then Error "sample_period must be >= 1"
  else if t.idle_timeout < 1 then Error "idle_timeout must be >= 1"
  else if t.max_evicted_remembered < 0 then
    Error "max_evicted_remembered must be >= 0"
  else Ok t
