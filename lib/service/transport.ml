(* Journalling pump + select()-based Unix-domain-socket transport.
   See transport.mli for the contract. *)

(* ------------------------------------------------------------- pump -- *)

type pump = {
  mutable core : Core.t;
  journal : Journal.writer option;
  tick_every : int;
  snapshot_every : int;
  kill_after : int;  (* 0 = never *)
  mutable lines : int;  (* protocol lines applied over the run's life *)
}

let create_pump ~core ?journal ?(tick_every = 0) ?(snapshot_every = 0)
    ?(kill_after = 0) ?(lines_seen = 0) () =
  { core; journal; tick_every; snapshot_every; kill_after;
    lines = lines_seen }

let pump_core p = p.core

(* Journal first, apply second: a frame the core has seen is always a
   frame recovery can replay. [kill_after] fires between the two — the
   worst case the recovery argument must cover. *)
let journal_record p record =
  match p.journal with
  | None -> ()
  | Some w ->
      let seq = Journal.append w record in
      if p.kill_after > 0 && seq >= p.kill_after then (
        Journal.flush w;
        Unix.kill (Unix.getpid ()) Sys.sigkill)

let cut_snapshot p =
  match p.journal with
  | None -> ()
  | Some w -> (
      match Journal.snapshot w ~core_snapshot:(Core.snapshot p.core) with
      | Ok _ -> ()
      | Error e -> Fmt.epr "calc serve: snapshot failed: %s@." e)

let apply p input =
  let core, evs = Core.feed p.core input in
  p.core <- core;
  evs

let pump_tick p =
  journal_record p Journal.Tick;
  let evs = apply p Proto.Tick in
  if p.snapshot_every > 0
     && (Core.metrics p.core).Core.ticks mod p.snapshot_every = 0
  then cut_snapshot p;
  evs

let pump_line p line =
  journal_record p (Journal.Line line);
  let evs = apply p (Proto.Line line) in
  p.lines <- p.lines + 1;
  if p.tick_every > 0 && p.lines mod p.tick_every = 0 then
    evs @ pump_tick p
  else evs

let catch_up_ticks p =
  if p.tick_every = 0 then []
  else
    let owed =
      (p.lines / p.tick_every) - (Core.metrics p.core).Core.ticks
    in
    let rec go acc n = if n <= 0 then acc else go (acc @ pump_tick p) (n - 1) in
    go [] owed

let finalize p =
  match p.journal with
  | None -> Ok None
  | Some w -> (
      match Journal.snapshot w ~core_snapshot:(Core.snapshot p.core) with
      | Ok path ->
          Journal.close w;
          Ok (Some path)
      | Error e ->
          Journal.close w;
          Error e)

(* ---------------------------------------------------------- sockets -- *)

let max_line_bytes = 65_536
let max_out_bytes = 262_144

type conn = {
  fd : Unix.file_descr;
  mutable inacc : string;  (* bytes received, not yet split into lines *)
  mutable outbuf : string;  (* reply bytes not yet written *)
  mutable in_eof : bool;
}

let render_events evs =
  String.concat "" (List.map (fun e -> Proto.print_event e ^ "\n") evs)

(* Split complete lines out of the connection's accumulator and feed
   them; [Error ()] means the peer is hostile (unterminated line past
   the transport cap) and must be dropped. *)
let feed_conn pump c =
  let rec go () =
    match String.index_opt c.inacc '\n' with
    | Some i ->
        let line = String.sub c.inacc 0 i in
        c.inacc <-
          String.sub c.inacc (i + 1) (String.length c.inacc - i - 1);
        c.outbuf <- c.outbuf ^ render_events (pump_line pump line);
        go ()
    | None ->
        if String.length c.inacc > max_line_bytes then Error ()
        else if String.length c.outbuf > max_out_bytes then Error ()
        else Ok ()
  in
  go ()

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let write_some fd s =
  let b = Bytes.of_string s in
  let n = Unix.write fd b 0 (Bytes.length b) in
  String.sub s n (String.length s - n)

let serve_socket ~pump ~path ~max_conns () =
  if max_conns < 1 then Error "max-conns must be >= 1"
  else
    let stop = ref false in
    let old_term =
      Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true))
    in
    let old_int =
      Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
    in
    let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
    let restore_signals () =
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigpipe old_pipe
    in
    (try if Sys.file_exists path then Sys.remove path
     with Sys_error _ -> ());
    let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.bind listener (Unix.ADDR_UNIX path) with
    | exception Unix.Unix_error (e, _, _) ->
        restore_signals ();
        (try Unix.close listener with Unix.Unix_error _ -> ());
        Error (Fmt.str "cannot bind %s: %s" path (Unix.error_message e))
    | () ->
        Unix.listen listener max_conns;
        let conns = ref [] in
        let drop c =
          close_conn c;
          conns := List.filter (fun c' -> c'.fd != c.fd) !conns
        in
        let accept_one () =
          match Unix.accept listener with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              if List.length !conns >= max_conns then (
                (try ignore (Unix.write_substring fd "busy\n" 0 5)
                 with Unix.Unix_error _ -> ());
                try Unix.close fd with Unix.Unix_error _ -> ())
              else
                conns :=
                  { fd; inacc = ""; outbuf = ""; in_eof = false } :: !conns
        in
        let read_one c =
          let buf = Bytes.create 4096 in
          match Unix.read c.fd buf 0 4096 with
          | exception Unix.Unix_error _ -> drop c
          | 0 ->
              c.in_eof <- true;
              (* an unterminated final line still counts, like the last
                 line of a file *)
              if c.inacc <> "" then (
                c.inacc <- c.inacc ^ "\n";
                match feed_conn pump c with
                | Ok () -> ()
                | Error () -> drop c);
              if c.outbuf = "" then drop c
          | n -> (
              c.inacc <- c.inacc ^ Bytes.sub_string buf 0 n;
              match feed_conn pump c with
              | Ok () -> ()
              | Error () -> drop c)
        in
        let write_one c =
          match write_some c.fd c.outbuf with
          | exception Unix.Unix_error _ -> drop c
          | rest ->
              c.outbuf <- rest;
              if rest = "" && c.in_eof then drop c
        in
        while not !stop do
          let readers =
            listener
            :: List.filter_map
                 (fun c -> if c.in_eof then None else Some c.fd)
                 !conns
          in
          let writers =
            List.filter_map
              (fun c -> if c.outbuf <> "" then Some c.fd else None)
              !conns
          in
          match Unix.select readers writers [] 0.2 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | rs, ws, _ ->
              if List.memq listener rs then accept_one ();
              List.iter
                (fun c -> if List.memq c.fd rs then read_one c)
                !conns;
              List.iter
                (fun c -> if List.memq c.fd ws then write_one c)
                !conns
        done;
        List.iter close_conn !conns;
        (try Unix.close listener with Unix.Unix_error _ -> ());
        (try Sys.remove path with Sys_error _ -> ());
        restore_signals ();
        Ok ()

let client ~path ic =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Fmt.str "cannot connect to %s: %s" path (Unix.error_message e))
  | () ->
      let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      let outbuf = ref "" in
      let in_eof = ref false in
      let sent_fin = ref false in
      let server_eof = ref false in
      let refill () =
        while (not !in_eof) && String.length !outbuf < 65_536 do
          match In_channel.input_line ic with
          | None -> in_eof := true
          | Some line -> outbuf := !outbuf ^ line ^ "\n"
        done
      in
      let result =
        try
          while not !server_eof do
            refill ();
            if !outbuf = "" && !in_eof && not !sent_fin then (
              Unix.shutdown fd Unix.SHUTDOWN_SEND;
              sent_fin := true);
            let writers = if !outbuf <> "" then [ fd ] else [] in
            match Unix.select [ fd ] writers [] 0.2 with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | rs, ws, _ ->
                if ws <> [] then outbuf := write_some fd !outbuf;
                if rs <> [] then (
                  let buf = Bytes.create 4096 in
                  match Unix.read fd buf 0 4096 with
                  | 0 -> server_eof := true
                  | n -> print_string (Bytes.sub_string buf 0 n))
          done;
          Ok ()
        with Unix.Unix_error (e, _, _) ->
          Error (Fmt.str "connection to %s failed: %s" path
                   (Unix.error_message e))
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Sys.set_signal Sys.sigpipe old_pipe;
      result
