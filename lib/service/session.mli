(** One object instance's incremental monitor.

    A session splits the object's history into a {e committed} prefix —
    already verified, represented only by the specification acceptor
    state it reached — and a bounded {e window} of retained actions.
    Windows are verified at quiescent points (no pending invocation),
    where resuming the exhaustive checker from the committed state is
    exact; sequential windows bypass the checker entirely (with a total
    real-time order every CA-element is a singleton, so acceptance is one
    [Spec.step] fold). Violations latch for the session's lifetime,
    across eras and daemon restarts.

    Sessions are immutable values: [feed] returns the successor state, so
    the whole machine replays deterministically. *)

type t

val create :
  oid:Cal.Ids.Oid.t -> spec:Cal.Spec.t -> now:int -> fresh:bool -> t
(** [fresh:false] admits the object conservatively (unknown prior
    history): it only counts operations until a crash marker opens a new
    era and resynchronises the acceptor. *)

val of_snapshot :
  oid:Cal.Ids.Oid.t ->
  spec:Cal.Spec.t ->
  now:int ->
  ops:int ->
  era:int ->
  (int * string) option ->
  t
(** Rebuild a session from a v1 (lossy) snapshot: a latched violation
    (the [Some] case) is preserved verbatim; a healthy session restarts
    desynced, because the monitored object did {e not} restart. *)

type mode_view =
  | Accepting
  | Desynced of string
  | Latched of { op : int; reason : string }

val mode : t -> mode_view

val of_snapshot_exact :
  oid:Cal.Ids.Oid.t ->
  spec:Cal.Spec.t ->
  committed:Cal.Spec.acceptor ->
  window:Cal.Action.t list ->
  pending:(Cal.Ids.Tid.t * Cal.Ids.Fid.t) list ->
  high_water:int ->
  qpoints:int ->
  era:int ->
  ops:int ->
  mode:mode_view ->
  last_active:int ->
  t
(** Rebuild a session from a v2 (exact) snapshot: the committed acceptor
    is resumed via {!Cal.Spec.resume} by the caller, the retained window
    ([window], oldest action first) and pending invocations (newest
    first, as {!pending} reports them) are restored verbatim, so the
    restored daemon is bisimilar to the one that wrote the snapshot. *)

val committed_key : t -> string
(** {!Cal.Spec.key} of the committed acceptor (the snapshot form). *)

val window_actions : t -> Cal.Action.t list
(** Retained window, oldest action first (the snapshot form). *)

val pending : t -> (Cal.Ids.Tid.t * Cal.Ids.Fid.t) list
(** Pending invocations, newest first. *)

val high_water : t -> int
val qpoints : t -> int

val feed :
  config:Config.t ->
  level:Proto.level ->
  ?cache:Cal.Verdict_cache.t ->
  now:int ->
  t ->
  Cal.Action.t ->
  (t * Proto.event list, string) result
(** Feed one action already routed to this session. [Error reason] is a
    contained frame rejection — a protocol misuse (double invocation,
    unmatched response, pending cap) that leaves the session {e
    unchanged}. Crash markers must go through {!crash}, not [feed]. The
    optional [cache] memoises overflow verdicts only (commits need the
    witness trace, which the cache does not store). *)

val crash : t -> t
(** Open a new era: acceptor and window reset, pending invocations are
    cut off, desynced sessions resynchronise, violations stay latched. *)

val oid : t -> Cal.Ids.Oid.t
val ops : t -> int
val era : t -> int
val window_len : t -> int
val last_active : t -> int
val latched : t -> (int * string) option
val is_desynced : t -> bool

val shed : t -> reason:string -> t * Proto.event list
(** Forced memory shed (count-only entry): drop the retained window and
    desynchronise; no-op on already latched or desynced sessions. *)
