(** A synchronous (handoff) queue built on an exchanger — the second client
    of the exchanger discussed by the paper (§2, citing Scherer–Lea–Scott's
    scalable synchronous queues).

    [put] offers a tagged value, [take] offers a take token; a mixed
    exchange is a rendezvous transferring the value from producer to
    consumer. Same-role exchanges and failed exchanges are retried up to
    [attempts] times, after which the operation gives up and reports
    failure (logging the singleton failure CA-element itself — an object
    may append elements pertaining to its own operations).

    The view function [F_SQ] maps mixed exchanger swaps to rendezvous
    elements and erases everything else of the exchanger. *)

type t

val create :
  ?oid:Cal.Ids.Oid.t ->
  ?exchanger_oid:Cal.Ids.Oid.t ->
  ?attempts:int ->
  ?instrument:bool ->
  ?log_history:bool ->
  ?wait:int ->
  Conc.Ctx.t ->
  t
(** Defaults: object ["SQ"], exchanger ["SQ.E"], 2 attempts, pairing window
    [wait = 1] (see {!Exchanger.create}). *)

val oid : t -> Cal.Ids.Oid.t
val exchanger : t -> Exchanger.t

val put : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
(** Returns [Bool true] on a rendezvous, [Bool false] after exhausting the
    attempts. *)

val take : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t Conc.Prog.t
(** Returns [(true, v)] on a rendezvous, [(false, 0)] otherwise. *)

val put_timed :
  t -> tid:Cal.Ids.Tid.t -> deadline:int -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
(** Deadline-bounded [put]: retries exchanges until [tid]'s perceived
    logical clock ({!Conc.Ctx.local_now}) passes [deadline], then logs the
    singleton put-timeout CA-element and returns [("timeout", v)]. *)

val take_timed :
  t -> tid:Cal.Ids.Tid.t -> deadline:int -> Cal.Value.t Conc.Prog.t
(** Deadline-bounded [take]; gives up with [("timeout", ())]. *)

val spec : t -> Cal.Spec.t
val view : t -> Cal.View.t
