open Cal
open Conc
open Prog.Infix

type reservation = { r_tid : Ids.Tid.t; answer : Value.t option ref }

type state =
  | Items of Value.t list          (* oldest first; may be empty *)
  | Waiters of reservation list    (* oldest first; non-empty *)

type t = {
  dq_oid : Ids.Oid.t;
  cell : state ref;
  ctx : Ctx.t;
  instrument : bool;
  log_history : bool;
}

let create ?(oid = Ids.Oid.v "DQ") ?(instrument = true) ?(log_history = true) ctx =
  { dq_oid = oid; cell = ref (Items []); ctx; instrument; log_history }

let oid t = t.dq_oid
let log_elem t e = if t.instrument then Ctx.log_element t.ctx e

let enq_body t ~tid v =
  Prog.atomic ~label:("enq@" ^ Ids.Oid.to_string t.dq_oid) (fun () ->
      (match !(t.cell) with
      | Waiters (w :: rest) ->
          (* fulfil the oldest reservation: both operations take effect now *)
          w.answer := Some v;
          t.cell := (if rest = [] then Items [] else Waiters rest);
          log_elem t (Spec_dual_queue.fulfilment ~oid:t.dq_oid tid v w.r_tid)
      | Waiters [] | Items _ ->
          let items = match !(t.cell) with Items xs -> xs | Waiters _ -> [] in
          t.cell := Items (items @ [ v ]);
          log_elem t (Ca_trace.singleton (Spec_dual_queue.enq_op ~oid:t.dq_oid tid v)));
      Value.unit)

let deq_body t ~tid =
  let* claimed =
    Prog.atomically ~label:("deq@" ^ Ids.Oid.to_string t.dq_oid) (fun () ->
        match !(t.cell) with
        | Items (v :: rest) ->
            t.cell := Items rest;
            log_elem t (Ca_trace.singleton (Spec_dual_queue.deq_op ~oid:t.dq_oid tid v));
            Prog.return (`Value v)
        | Items [] ->
            let r = { r_tid = tid; answer = ref None } in
            t.cell := Waiters [ r ];
            Prog.return (`Wait r)
        | Waiters ws ->
            let r = { r_tid = tid; answer = ref None } in
            t.cell := Waiters (ws @ [ r ]);
            Prog.return (`Wait r))
  in
  match claimed with
  | `Value v -> Prog.return v
  | `Wait r ->
      (* block until an enqueue fulfils the reservation; the fulfilment
         element was logged by the enqueuer *)
      Prog.await ~label:"deq-wait" r.answer

(* Timed dequeue: claim as [deq_body], but a waiting consumer POLLS its
   reservation (staying enabled, so its own steps advance the clock and a
   solo consumer can abort) and withdraws it on deadline expiry. The
   withdrawal CAS atomically checks the answer slot and removes the
   reservation from the cell — it is fallible (a forced failure behaves as
   losing the race to a fulfilling enqueuer), while the cancel-acknowledge
   read after a lost cancel is not: a fulfilled answer slot is stable. *)
let deq_timed_body t ~tid ~deadline =
  let now () = Ctx.local_now t.ctx ~tid in
  let o = Ids.Oid.to_string t.dq_oid in
  let* claimed =
    Prog.atomically ~label:("deq@" ^ o) (fun () ->
        match !(t.cell) with
        | Items (v :: rest) ->
            t.cell := Items rest;
            log_elem t (Ca_trace.singleton (Spec_dual_queue.deq_op ~oid:t.dq_oid tid v));
            Prog.return (`Value v)
        | Items [] ->
            let r = { r_tid = tid; answer = ref None } in
            t.cell := Waiters [ r ];
            Prog.return (`Wait r)
        | Waiters ws ->
            let r = { r_tid = tid; answer = ref None } in
            t.cell := Waiters (ws @ [ r ]);
            Prog.return (`Wait r))
  in
  match claimed with
  | `Value v -> Prog.return v
  | `Wait r ->
      let rec cancel () =
        let* c =
          Prog.fallible ~label:("cancel-cas@" ^ o)
            (fun () ->
              match !(r.answer) with
              | Some v -> Prog.return (`Fulfilled v)
              | None ->
                  (* unanswered, so still queued: withdraw the reservation
                     and log the singleton cancellation in the same step *)
                  (match !(t.cell) with
                  | Waiters ws ->
                      let ws' = List.filter (fun w -> w != r) ws in
                      t.cell := (if ws' = [] then Items [] else Waiters ws')
                  | Items _ -> ());
                  log_elem t (Spec_dual_queue.deq_cancelled ~oid:t.dq_oid tid);
                  Prog.return `Cancelled)
            ~on_fault:(fun () -> Prog.return `Lost)
        in
        match c with
        | `Fulfilled v -> Prog.return v
        | `Cancelled -> Prog.return (Value.cancelled Value.unit)
        | `Lost -> ack ()
      and ack () =
        let* a = Prog.atomic ~label:("cancel-ack@" ^ o) (fun () -> !(r.answer)) in
        match a with Some v -> Prog.return v | None -> cancel ()
      in
      Prog.poll ~label:"deq-poll"
        ~expired:(fun () -> now () >= deadline)
        ~on_timeout:cancel
        (fun () -> Option.map Prog.return !(r.answer))

let enq t ~tid v =
  if t.log_history then
    Harness.call t.ctx ~tid ~oid:t.dq_oid ~fid:Spec_dual_queue.fid_enq ~arg:v
      (enq_body t ~tid v)
  else enq_body t ~tid v

let deq t ~tid =
  if t.log_history then
    Harness.call t.ctx ~tid ~oid:t.dq_oid ~fid:Spec_dual_queue.fid_deq ~arg:Value.unit
      (deq_body t ~tid)
  else deq_body t ~tid

let deq_timed t ~tid ~deadline =
  if t.log_history then
    Harness.call t.ctx ~tid ~oid:t.dq_oid ~fid:Spec_dual_queue.fid_deq ~arg:Value.unit
      (deq_timed_body t ~tid ~deadline)
  else deq_timed_body t ~tid ~deadline

let spec t = Spec_dual_queue.spec ~oid:t.dq_oid ()
let view _t = View.identity
