(** The elimination layer of Fig. 2: an array of [K] exchangers behaving,
    collectively, as a single exchanger (§5: "the elimination array
    exposes the same specification as a single exchanger").

    Its view function [F_AR] re-attributes any exchange on a sub-exchanger
    [E\[i\]] to the array itself: [F_AR(E\[i\].S) = (AR.S)].

    The sub-exchangers are pluggable: {!concrete} uses the offer/hole
    protocol of {!Exchanger} (Fig. 1), {!abstract} uses
    {!Abstract_exchanger}, the specification-driven object. Verifying a
    client with the abstract factory is the paper's modularity claim in
    action: the client proof depends only on the exchanger's
    specification. *)

type slot_strategy =
  | All_slots
      (** resolve the slot by scheduler choice — under exhaustive
          exploration, every slot is tried (replaces [random(0,K-1)]) *)
  | Seeded of Conc.Rng.t  (** deterministic pseudo-random slot choice *)

(** One slot of the array: an object name plus an exchange method and,
    when the underlying exchanger supports deadlines, a timed variant. *)
type slot = {
  slot_oid : Cal.Ids.Oid.t;
  slot_exchange : tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t;
  slot_exchange_timed :
    (tid:Cal.Ids.Tid.t -> deadline:int -> Cal.Value.t -> Cal.Value.t Conc.Prog.t)
    option;
}

type exchanger_factory = instrument:bool -> oid:Cal.Ids.Oid.t -> Conc.Ctx.t -> slot

val concrete : exchanger_factory
(** Fig. 1's exchanger (default pairing window). *)

val concrete_waiting : wait:int -> exchanger_factory
(** Fig. 1's exchanger with an explicit pairing window — the paper's
    [sleep(50)] — for throughput simulations. *)

val abstract : exchanger_factory
(** The specification-driven exchanger. *)

type t

val create :
  ?oid:Cal.Ids.Oid.t ->
  ?instrument:bool ->
  ?log_history:bool ->
  ?factory:exchanger_factory ->
  k:int ->
  slot_strategy:slot_strategy ->
  Conc.Ctx.t ->
  t
(** [oid] defaults to ["AR"]; sub-exchangers are named ["AR[0]"], … and
    never log interface history themselves. [factory] defaults to
    {!concrete}. *)

val oid : t -> Cal.Ids.Oid.t
val size : t -> int
val exchange : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
val exchange_body : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t

val exchange_timed :
  t -> tid:Cal.Ids.Tid.t -> deadline:int -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
(** Timed exchange on a scheduler-chosen slot (see
    {!Exchanger.exchange_timed}). Raises [Invalid_argument] when the chosen
    slot's factory provides no timed variant ({!abstract} does not). *)

val exchange_timed_body :
  t -> tid:Cal.Ids.Tid.t -> deadline:int -> Cal.Value.t -> Cal.Value.t Conc.Prog.t

val spec : t -> Cal.Spec.t
(** The exchanger specification, instantiated at the array's own [oid]. *)

val view : t -> Cal.View.t
(** [ð_AR]: renames every sub-exchanger element to [AR]. *)

val exchanger_oids : t -> Cal.Ids.Oid.t list
