(** Durable FIFO queue on {!Conc.Pcell} persistent cells with the same
    explicit flush discipline as {!Durable_treiber_stack}: every successful
    CAS is flushed before the operation responds, so completed operations
    are always persisted, and operations cut off between CAS and flush are
    crash-pending ("persisted or lost" — a peer's flush decides).

    - [enq v ⇒ ()] retries its CAS until it lands (the queue specification
      has no spurious enq failures), so only a crash leaves it pending;
    - [deq ⇒ (true, v)] on success, [(false, 0)] on empty or when the CAS
      lost its race.

    Not trace-instrumented: durable checking is black-box over the history
    (see {!Durable_treiber_stack}). *)

type t

val create :
  ?oid:Cal.Ids.Oid.t ->
  ?log_history:bool ->
  domain:Conc.Pcell.domain ->
  Conc.Ctx.t ->
  t
(** [oid] defaults to ["DQ"]. *)

val oid : t -> Cal.Ids.Oid.t
val enq : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
val deq : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t Conc.Prog.t

val recover : ?cost:int -> t -> unit Conc.Prog.t
(** Recovery procedure: re-asserts the durable contents as the volatile
    state, after [cost] (default [0]) no-op scan steps. Logs no history
    actions. *)

val contents : t -> Cal.Value.t list
(** Volatile contents, front first. *)

val persisted : t -> Cal.Value.t list
(** Durable contents — what a crash right now would leave. *)

val spec : t -> Cal.Spec.t
