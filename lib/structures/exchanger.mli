(** The wait-free exchanger of Fig. 1 (a simplified
    [java.util.concurrent.Exchanger]).

    A thread calls [exchange] with a value it offers to swap. If it pairs up
    with a concurrent partner it returns [(true, partner's value)];
    otherwise [(false, own value)]. Pairing goes through [Offer] records: a
    thread either installs its offer in the global slot [g] (the paper's
    CAS at line 15) and waits, or finds an installed offer and tries to
    satisfy it by CASing the offer's [hole] from null to its own offer
    (line 29, the [XCHG] action).

    The implementation carries the paper's auxiliary instrumentation: the
    successful [XCHG] CAS appends the [E.swap(t,v,t',v')] CA-element to the
    global trace [𝒯] {e in the same atomic step} — one concrete action
    logging the operations of {e two} threads — and every failing return
    appends the singleton failure element ([FAIL] action). The auxiliary
    [tid] field on offers (§5.1) is [owner]. *)

type hole_state =
  | Hole_empty              (** null: the offer is unsatisfied *)
  | Hole_matched of offer   (** a partner installed its offer *)
  | Hole_failed             (** the fail sentinel: owner gave up *)
  | Hole_cancelled          (** the cancel sentinel: a timed owner
                                withdrew the offer on deadline expiry *)

and offer = {
  uid : int;                (** unique id, for state snapshots *)
  owner : Cal.Ids.Tid.t;    (** the auxiliary [tid] field *)
  data : Cal.Value.t;
  hole : hole_state Conc.Cell.t;
      (** tracked shared cell: hole accesses feed the explorer's
          happens-before relation *)
}

type t

val create :
  ?oid:Cal.Ids.Oid.t ->
  ?instrument:bool ->
  ?log_history:bool ->
  ?wait:int ->
  ?backoff:Backoff.policy ->
  Conc.Ctx.t ->
  t
(** [create ctx] makes a fresh exchanger. [oid] defaults to ["E"];
    [instrument] (default [true]) controls the auxiliary-trace assignments;
    [log_history] (default [true]) controls interface-history logging —
    turn it off when the exchanger is encapsulated inside another object
    (§2's ownership discipline: sub-object interactions are internal).
    [wait] (default [1]) is the number of scheduling points an installed
    offer waits before giving up — the paper's [sleep(50)]; it must be
    [>= 0]. Keep it small for exhaustive exploration; raise it in
    throughput simulations so the pairing window is realistic. When
    [backoff] is given, the waiting window is drawn from the policy
    instead of being the fixed [wait] (see {!Backoff}): contended
    exchangers then adapt their pairing window instead of convoying.
    Passing both [~wait] and [~backoff] raises [Invalid_argument]: the
    two prescribe contradictory pairing windows and silently preferring
    one of them invites misconfigured experiments.

    Fault model: the [init-cas], [xchg-cas] and [clean-cas] steps are
    {!Conc.Prog.fallible} — a {!Conc.Fault.Fail_step} plan can force each
    down its failure branch (weak-CAS semantics: behave exactly as if the
    CAS lost a race). The [pass-cas] step is deliberately {e not} fallible:
    its failure branch is not a semantic no-op (it would report a swap that
    never happened), so forcing it would be unsound. *)

val oid : t -> Cal.Ids.Oid.t

val exchange : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
(** [exchange t ~tid v] is the full method: history-logged (if enabled)
    around {!exchange_body}. Returns [(true, v')] or [(false, v)]. *)

val exchange_body : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
(** The method body without interface logging, for use by containing
    objects. *)

val exchange_timed :
  t -> tid:Cal.Ids.Tid.t -> deadline:int -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
(** [exchange_timed t ~tid ~deadline v] is the timed exchange —
    [java.util.concurrent.Exchanger.exchange(x, timeout)]. [deadline] is
    an absolute logical-clock value in [tid]'s {e perceived} time
    ({!Conc.Ctx.local_now}; a {!Conc.Fault.Delay} makes it expire early).
    Until the deadline, the thread repeatedly installs its offer and polls
    the hole for [wait] ticks (staying enabled, so even a solo thread's
    clock advances); an unmatched round CASes the hole to {!Hole_cancelled}
    and withdraws the offer. Returns [(true, v')] on a swap and
    [("timeout", v)] — with the singleton timeout CA-element logged — on
    expiry; it never returns the untimed [(false, v)] shape.

    Fault model: [init-cas], [xchg-cas], [clean-cas] and [cancel-cas] are
    fallible; a forced [cancel-cas] failure behaves as losing the race to
    a matching partner, after which the cancel-{e acknowledge} read is not
    fallible (a matched hole is stable — only the owner writes the
    sentinels). *)

val exchange_timed_body :
  t -> tid:Cal.Ids.Tid.t -> deadline:int -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
(** {!exchange_timed} without interface logging. *)

(** {1 State inspection (for the rely/guarantee checker)} *)

type offer_view = {
  v_uid : int;
  v_owner : Cal.Ids.Tid.t;
  v_data : Cal.Value.t;
  v_hole :
    [ `Empty
    | `Matched of int * Cal.Ids.Tid.t * Cal.Value.t
    | `Failed
    | `Cancelled ];
}

val peek_g : t -> offer_view option
(** A structural snapshot of the global slot [g]. *)

(** {1 Proof-outline probes}

    A snapshot of the thread-local proof state at an annotated program
    point of Fig. 1. Probes are delivered as separate atomic steps, so by
    the time a probe observes the state, arbitrary interference has had a
    chance to run — an assertion that holds at every probe in every
    interleaving is thereby checked to be {e stable under the rely}, which
    is exactly what the paper's proof outline demands of it. *)
type probe_point = {
  pp_name : string;
      (** one of: [init-installed], [init-occupied], [pass-no-partner],
          [pass-swapped], [read-cur], [xchg], [clean] *)
  pp_tid : Cal.Ids.Tid.t;
  pp_arg : Cal.Value.t;  (** the value offered by this thread *)
  pp_n : offer_view option;  (** this thread's own offer, if allocated *)
  pp_cur : offer_view option;  (** the offer read from [g], if any *)
  pp_s : bool option;  (** the XCHG outcome, once decided *)
  pp_g : offer_view option;  (** current content of [g] *)
}

val exchange_annotated :
  t ->
  tid:Cal.Ids.Tid.t ->
  probe:(probe_point -> unit) ->
  Cal.Value.t ->
  Cal.Value.t Conc.Prog.t
(** {!exchange} with probe steps inserted after each annotated transition
    of Fig. 1; behaviourally identical apart from the extra no-op steps. *)

val spec : t -> Cal.Spec.t
(** The exchanger CA-specification instantiated at this object's [oid]. *)

val view : t -> Cal.View.t
(** [T_E = 𝒯|E]: the exchanger encapsulates no objects, so its view is the
    identity (§5.1: [F_E] is the completely undefined function). *)
