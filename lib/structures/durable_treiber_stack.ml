open Cal
open Conc
open Prog.Infix

type t = {
  st_oid : Ids.Oid.t;
  top : Value.t list Pcell.t;
  ctx : Ctx.t;
  log_history : bool;
}

let create ?(oid = Ids.Oid.v "DS") ?(log_history = true) ~domain ctx =
  { st_oid = oid; top = Pcell.create domain []; ctx; log_history }

let loc t = "@" ^ Ids.Oid.to_string t.st_oid ^ ".top"
let oid t = t.st_oid

(* Flush discipline: every successful CAS is followed by a flush of the
   written cell {e before} the operation responds, so a completed operation
   is always persisted. An operation cut off between its CAS and its flush
   is pending at the crash: its write survives iff some peer's later flush
   persisted the cell first — exactly the "persisted or lost" freedom the
   durable checker grants to crash-pending operations. *)
let push_body t v =
  let* h = Prog.atomic ~label:("push-read" ^ loc t) (fun () -> Pcell.read t.top) in
  let* ok =
    Prog.fallible
      ~label:("push-cas" ^ loc t)
      (fun () ->
        let ok = Pcell.read t.top == h in
        if ok then Pcell.write t.top (v :: h);
        Prog.return ok)
      ~on_fault:(fun () -> Prog.return false)
  in
  if not ok then Prog.return (Value.bool false)
  else
    let* () =
      Prog.atomic ~label:("push-flush" ^ loc t) (fun () -> Pcell.flush t.top)
    in
    Prog.return (Value.bool true)

let pop_body t =
  let* h = Prog.atomic ~label:("pop-read" ^ loc t) (fun () -> Pcell.read t.top) in
  match h with
  | [] -> Prog.atomic ~label:"pop-empty" (fun () -> Value.fail (Value.int 0))
  | x :: rest ->
      let* ok =
        Prog.fallible
          ~label:("pop-cas" ^ loc t)
          (fun () ->
            let ok = Pcell.read t.top == h in
            if ok then Pcell.write t.top rest;
            Prog.return ok)
          ~on_fault:(fun () -> Prog.return false)
      in
      if not ok then Prog.return (Value.fail (Value.int 0))
      else
        let* () =
          Prog.atomic ~label:("pop-flush" ^ loc t) (fun () -> Pcell.flush t.top)
        in
        Prog.return (Value.ok x)

let wrap t ~tid ~fid ~arg body =
  if t.log_history then Harness.call t.ctx ~tid ~oid:t.st_oid ~fid ~arg body
  else body

let push t ~tid v = wrap t ~tid ~fid:Spec_stack.fid_push ~arg:v (push_body t v)
let pop t ~tid = wrap t ~tid ~fid:Spec_stack.fid_pop ~arg:Value.unit (pop_body t)

(* Recovery re-reads the durable top; [cost] extra steps model log
   scanning / structure rebuilding work and let the benchmarks sweep
   recovery expense. Recovery is not an operation of the object: it logs
   no history actions. *)
let recover ?(cost = 0) t =
  let rec spin n =
    if n = 0 then
      Prog.atomic ~label:("recover" ^ loc t) (fun () ->
          (* the volatile state a fresh boot starts from is the durable one;
             re-assert it so a recovery is explicit in the step sequence *)
          Pcell.write t.top (Pcell.persisted t.top);
          Pcell.flush t.top)
    else
      let* () = Prog.atomic ~label:("recover-scan" ^ loc t) (fun () -> ()) in
      spin (n - 1)
  in
  spin cost

let contents t = Pcell.read t.top
let persisted t = Pcell.persisted t.top
let spec t = Spec_stack.spec ~oid:t.st_oid ~allow_spurious_failure:true ()
