(** The central stack of Fig. 2: a lock-free stack whose operations make a
    {e single} CAS attempt and report failure under contention — the
    elimination stack retries through the elimination layer instead.

    - [push v ⇒ true/false];
    - [pop ⇒ (true, v)] on success, [(false, 0)] when empty {e or} when the
      CAS lost a race (the paper's lines 18 and 23 return the same value).

    Instrumentation appends the singleton CA-element for an operation at
    its linearization point: the successful/failed CAS, or the read
    observing the empty stack. A retrying variant ({!push_retry},
    {!pop_retry}) loops until success, for use as a baseline in the
    contention benchmarks; with [?backoff] the loop pauses between attempts
    under a deterministic bounded-exponential policy instead of spinning.

    Both CAS steps are {!Conc.Prog.fallible}: a {!Conc.Fault.Fail_step}
    plan can force them down their failure branch, which logs and returns
    the ordinary contention failure (weak-CAS semantics). *)

type t

val create :
  ?oid:Cal.Ids.Oid.t -> ?instrument:bool -> ?log_history:bool -> Conc.Ctx.t -> t
(** [oid] defaults to ["S"]. *)

val oid : t -> Cal.Ids.Oid.t
val push : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
val pop : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t Conc.Prog.t
val push_body : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
val pop_body : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t Conc.Prog.t

val push_retry :
  ?backoff:Backoff.policy -> t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
(** Loop [push] until it succeeds; always returns [true]. [backoff]
    (default none: bare spinning) pauses between failed attempts. *)

val pop_retry :
  ?backoff:Backoff.policy -> t -> tid:Cal.Ids.Tid.t -> Cal.Value.t Conc.Prog.t
(** Loop [pop] until success or EMPTY; never reports a contention
    failure. *)

val contents : t -> Cal.Value.t list
(** Current contents, top first (for assertions in tests). *)

val spec : t -> Cal.Spec.t
(** Stack specification at this [oid], with spurious failures allowed. *)

val view : t -> Cal.View.t
(** Identity: the stack encapsulates no concurrent sub-objects. *)
