open Cal
open Conc
open Prog.Infix

type t = {
  sq_oid : Ids.Oid.t;
  ex : Exchanger.t;
  attempts : int;
  ctx : Ctx.t;
  instrument : bool;
  log_history : bool;
}

let put_tag = Value.str "put"
let take_token = Value.str "take"
let tag_put v = Value.pair put_tag v

let untag_put v =
  match v with
  | Value.Pair (t, payload) when Value.equal t put_tag -> Some payload
  | _ -> None

let create ?(oid = Ids.Oid.v "SQ") ?(exchanger_oid = Ids.Oid.v "SQ.E") ?(attempts = 2)
    ?(instrument = true) ?(log_history = true) ?(wait = 1) ctx =
  if attempts <= 0 then invalid_arg "Sync_queue.create: attempts must be positive";
  {
    sq_oid = oid;
    ex = Exchanger.create ~oid:exchanger_oid ~instrument ~log_history:false ~wait ctx;
    attempts;
    ctx;
    instrument;
    log_history;
  }

let oid t = t.sq_oid
let exchanger t = t.ex

let log_elem t e = if t.instrument then Ctx.log_element t.ctx e

(* Retry [attempts] exchanges; [decide] inspects a successful swap partner's
   value and returns the rendezvous result, if this swap is a rendezvous.
   [give_up] supplies the failure CA-element and the failure return. *)
let attempt_loop t ~tid ~offer ~decide ~give_up =
  let rec go k =
    if k = 0 then
      Prog.atomic ~label:"sq-fail" (fun () ->
          let elem, ret = give_up () in
          log_elem t elem;
          ret)
    else
      let* r = Exchanger.exchange_body t.ex ~tid offer in
      let ok, partner = Value.to_pair r in
      if Value.to_bool ok then
        match decide partner with
        | Some result -> Prog.return result
        | None -> go (k - 1)
      else go (k - 1)
  in
  go t.attempts

(* Deadline-bounded retry: instead of a fixed attempt count, keep
   exchanging until [tid]'s perceived clock passes [deadline]. Each round
   costs at least the exchange's own steps, so even a solo thread drives
   its clock to the deadline and gives up. *)
let timed_loop t ~tid ~deadline ~offer ~decide ~give_up =
  let now () = Ctx.local_now t.ctx ~tid in
  let rec go () =
    Prog.atomically ~label:"sq-deadline" (fun () ->
        if now () >= deadline then begin
          let elem, ret = give_up () in
          log_elem t elem;
          Prog.return ret
        end
        else
          let* r = Exchanger.exchange_body t.ex ~tid offer in
          let ok, partner = Value.to_pair r in
          if Value.to_bool ok then
            match decide partner with
            | Some result -> Prog.return result
            | None -> go ()
          else go ())
  in
  go ()

let put_timed t ~tid ~deadline v =
  let body =
    timed_loop t ~tid ~deadline ~offer:(tag_put v)
      ~decide:(fun partner ->
        if Value.equal partner take_token then Some (Value.bool true) else None)
      ~give_up:(fun () ->
        (Spec_sync_queue.put_timeout ~oid:t.sq_oid tid v, Value.timeout v))
  in
  if t.log_history then
    Harness.call t.ctx ~tid ~oid:t.sq_oid ~fid:Spec_sync_queue.fid_put ~arg:v body
  else body

let take_timed t ~tid ~deadline =
  let body =
    timed_loop t ~tid ~deadline ~offer:take_token
      ~decide:(fun partner -> Option.map Value.ok (untag_put partner))
      ~give_up:(fun () ->
        (Spec_sync_queue.take_timeout ~oid:t.sq_oid tid, Value.timeout Value.unit))
  in
  if t.log_history then
    Harness.call t.ctx ~tid ~oid:t.sq_oid ~fid:Spec_sync_queue.fid_take
      ~arg:Value.unit body
  else body

let put t ~tid v =
  let body =
    attempt_loop t ~tid ~offer:(tag_put v)
      ~decide:(fun partner ->
        if Value.equal partner take_token then Some (Value.bool true) else None)
      ~give_up:(fun () ->
        ( Ca_trace.singleton (Spec_sync_queue.put_op ~oid:t.sq_oid tid v ~ok:false),
          Value.bool false ))
  in
  if t.log_history then
    Harness.call t.ctx ~tid ~oid:t.sq_oid ~fid:Spec_sync_queue.fid_put ~arg:v body
  else body

let take t ~tid =
  let body =
    attempt_loop t ~tid ~offer:take_token
      ~decide:(fun partner -> Option.map Value.ok (untag_put partner))
      ~give_up:(fun () ->
        ( Ca_trace.singleton (Spec_sync_queue.take_op ~oid:t.sq_oid tid None),
          Value.fail (Value.int 0) ))
  in
  if t.log_history then
    Harness.call t.ctx ~tid ~oid:t.sq_oid ~fid:Spec_sync_queue.fid_take ~arg:Value.unit
      body
  else body

let spec t = Spec_sync_queue.spec ~oid:t.sq_oid ()

(* F_SQ: a mixed exchange is a rendezvous; everything else of the exchanger
   vanishes (failed exchanges and same-role swaps lead to retries or to the
   failure elements the queue logs itself). *)
let f_sq t e =
  if Ids.Oid.equal (Ca_trace.element_oid e) (Exchanger.oid t.ex) then
    match Ca_trace.element_ops e with
    | [ a; b ] -> (
        let rendezvous (producer : Op.t) (consumer : Op.t) =
          match untag_put producer.arg with
          | Some v when Value.equal consumer.arg take_token ->
              Some
                [
                  Spec_sync_queue.rendezvous ~oid:t.sq_oid producer.tid v consumer.tid;
                ]
          | _ -> None
        in
        match rendezvous a b with
        | Some tr -> Some tr
        | None -> (
            match rendezvous b a with Some tr -> Some tr | None -> Some []))
    | _ -> Some []
  else None

let view t = View.compose ~own:(f_sq t) ~subs:[ Exchanger.view t.ex ]
