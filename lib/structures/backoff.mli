(** Deterministic bounded-exponential backoff.

    A retry loop that spins straight back onto a contended location turns
    one failed CAS into a convoy: every loser re-collides on the next step.
    The standard remedy is randomised exponential backoff — pause for a
    random number of steps drawn from a window that doubles (up to a cap)
    after every failure. In this simulator a pause is a sequence of
    {!Conc.Prog.yield} scheduling points, and the randomness flows through
    a seeded {!Conc.Rng}, so runs remain reproducible.

    A {!policy} is the immutable configuration shared by an object (or a
    benchmark); {!start} derives the mutable per-operation state. Each
    [start] seeds its generator from the policy seed and a running counter,
    so distinct operations jitter differently while the whole execution
    stays a deterministic function of (policy seed, schedule).

    Exhaustive-exploration note: create the policy {e inside} the [setup]
    callback (alongside the object), otherwise the generator state leaks
    across replayed runs and replay determinism is lost. *)

type policy

val policy : ?init:int -> ?max:int -> ?seed:int64 -> unit -> policy
(** [init] (default 1) is the first window, [max] (default 16) the cap, in
    scheduling steps. Raises [Invalid_argument] unless
    [0 < init <= max]. *)

type t
(** Mutable backoff state for one retry loop. *)

val start : policy -> t

val pause : t -> unit Conc.Prog.t
(** One backoff pause: an atomic step (labelled ["backoff"], which the
    metrics layer counts as a retry) drawing [k] uniformly from
    [\[0, window\]], followed by [k] yields; the window then doubles up to
    the policy cap. *)

val reset : t -> unit
(** Shrink the window back to [init] (call after a success when reusing the
    state across operations). *)

val pauses : t -> int
(** Pauses taken so far. *)
