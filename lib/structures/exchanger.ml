open Cal
open Conc
open Prog.Infix

type hole_state =
  | Hole_empty
  | Hole_matched of offer
  | Hole_failed
  | Hole_cancelled

and offer = {
  uid : int;
  owner : Ids.Tid.t;
  data : Value.t;
  hole : hole_state Cell.t;
}

type t = {
  xc_oid : Ids.Oid.t;
  ctx : Ctx.t;
  g : offer option Cell.t;
  instrument : bool;
  log_history : bool;
  wait : int;
  backoff : Backoff.policy option;
  next_uid : int ref;
}

let create ?(oid = Ids.Oid.v "E") ?(instrument = true) ?(log_history = true) ?wait
    ?backoff ctx =
  (match (wait, backoff) with
  | Some _, Some _ ->
      invalid_arg
        "Exchanger.create: ~wait and ~backoff are mutually exclusive (the \
         pairing window is either fixed or drawn from the policy)"
  | Some w, None when w < 0 -> invalid_arg "Exchanger.create: wait must be >= 0"
  | _ -> ());
  {
    xc_oid = oid;
    ctx;
    g = Cell.make ctx ~loc:(Ids.Oid.to_string oid ^ ".g") None;
    instrument;
    log_history;
    wait = Option.value ~default:1 wait;
    backoff;
    next_uid = ref 0;
  }

(* CAS labels carry the contended location (after '@') so that the metrics
   layer can charge contention costs per cache line. *)
let loc t = "@" ^ Ids.Oid.to_string t.xc_oid

let oid t = t.xc_oid

(* Offer allocation happens inside a CAS step, thread-local until that very
   step publishes it; the hole gets its own tracked location. The uid
   counter is a plain ref on purpose — uids never reach the history, trace
   or results, so the explorer must not order steps around it. *)
let fresh_offer t ~tid v =
  let uid = !(t.next_uid) in
  incr t.next_uid;
  let hole =
    Cell.make t.ctx
      ~loc:(Ids.Oid.to_string t.xc_oid ^ ".hole#" ^ string_of_int uid)
      Hole_empty
  in
  { uid; owner = tid; data = v; hole }

type offer_view = {
  v_uid : int;
  v_owner : Ids.Tid.t;
  v_data : Value.t;
  v_hole :
    [ `Empty | `Matched of int * Ids.Tid.t * Value.t | `Failed | `Cancelled ];
}

(* Views are pure observations (probes, tests): [peek] keeps them out of
   the dependency record. *)
let view_of_offer (o : offer) =
  {
    v_uid = o.uid;
    v_owner = o.owner;
    v_data = o.data;
    v_hole =
      (match Cell.peek o.hole with
      | Hole_empty -> `Empty
      | Hole_matched m -> `Matched (m.uid, m.owner, m.data)
      | Hole_failed -> `Failed
      | Hole_cancelled -> `Cancelled);
  }

let peek_g t = Option.map view_of_offer (Cell.peek t.g)

type probe_point = {
  pp_name : string;
  pp_tid : Ids.Tid.t;
  pp_arg : Value.t;
  pp_n : offer_view option;
  pp_cur : offer_view option;
  pp_s : bool option;
  pp_g : offer_view option;
}

let log_fail t tid v =
  if t.instrument then
    Ctx.log_element t.ctx (Spec_exchanger.failure ~oid:t.xc_oid tid v)

let log_swap t ~waiter ~active =
  if t.instrument then
    let wt, wv = waiter and at, av = active in
    Ctx.log_element t.ctx (Spec_exchanger.swap ~oid:t.xc_oid wt wv at av)

(* Return (false, v), logging the FAIL auxiliary assignment at the return
   statement (lines 20 and 35 of Fig. 1). *)
let fail_return t ~tid v =
  Prog.atomic ~label:"fail-return" (fun () ->
      log_fail t tid v;
      Value.fail v)

let exchange_body ?probe t ~tid v =
  (* A probe is a separate atomic step observing the proof state at an
     annotated point of Fig. 1. Because the step is distinct, arbitrary
     interference may run before it: an assertion that holds at every probe
     of every interleaving is stable under the rely. Without [probe] no
     steps are added. *)
  let at name ?n ?cur ?s () =
    match probe with
    | None -> Prog.return ()
    | Some f ->
        Prog.atomic ~label:("probe-" ^ name) (fun () ->
            f
              {
                pp_name = name;
                pp_tid = tid;
                pp_arg = v;
                pp_n = Option.map view_of_offer n;
                pp_cur = Option.map view_of_offer cur;
                pp_s = s;
                pp_g = Option.map view_of_offer (Cell.peek t.g);
              })
  in
  (* lines 13+15: allocate the offer and attempt CAS(g, null, n) — the INIT
     action. The allocation is thread-local until the CAS publishes it, so
     fusing the two into one atomic step changes no observable behaviour
     and spares the exhaustive explorer a scheduling point. The CAS is
     fallible: a forced failure behaves exactly as if [g] was occupied
     (weak-CAS semantics — the thread proceeds down the active path). *)
  let* result =
    Prog.fallible ~label:("init-cas" ^ loc t)
      (fun () ->
        match Cell.get t.g with
        | None ->
            let n = fresh_offer t ~tid v in
            Cell.set t.g (Some n);
            Prog.return (`Installed n)
        | Some _ -> Prog.return `Occupied)
      ~on_fault:(fun () -> Prog.return `Occupied)
  in
  match result with
  | `Installed n ->
      (* line 16 of the proof outline *)
      let* () = at "init-installed" ~n () in
      (* line 17: sleep(50) — [wait] scheduling points during which a
         partner can match the offer; under a backoff policy the pairing
         window is adaptive instead of fixed *)
      let* () =
        match t.backoff with
        | None -> Prog.seq (List.init t.wait (fun _ -> Prog.yield))
        | Some pol -> Backoff.pause (Backoff.start pol)
      in
      (* line 18: CAS(n.hole, null, fail) — the PASS action *)
      let* outcome =
        Prog.atomically ~label:("pass-cas" ^ loc t) (fun () ->
            match Cell.get n.hole with
            | Hole_empty ->
                Cell.set n.hole Hole_failed;
                Prog.return `No_partner
            | Hole_matched m -> Prog.return (`Swapped m)
            | Hole_failed | Hole_cancelled ->
                assert false (* only the owner writes the sentinels *))
      in
      (match outcome with
      | `No_partner ->
          let* () = at "pass-no-partner" ~n () in
          fail_return t ~tid v (* line 20 *)
      | `Swapped m ->
          let* () = at "pass-swapped" ~n () in
          Prog.return (Value.ok m.data) (* line 22: n.hole.data *))
  | `Occupied -> (
      (* line 25: read g *)
      let* cur = Cell.read ~label:("read-g" ^ loc t) t.g in
      match cur with
      | None -> fail_return t ~tid v (* line 35 *)
      | Some cur ->
          (* line 26 of the proof outline *)
          let* () = at "read-cur" ~cur () in
          (* line 29: CAS(cur.hole, null, n) — the XCHG action, with the
             auxiliary trace assignment fused into the same atomic step. The
             active thread's own offer [n] is allocated here (thread-local
             until this very CAS publishes it). *)
          let* s =
            Prog.fallible ~label:("xchg-cas" ^ loc t)
              (fun () ->
                match Cell.get cur.hole with
                | Hole_empty ->
                    let n = fresh_offer t ~tid v in
                    Cell.set cur.hole (Hole_matched n);
                    log_swap t ~waiter:(cur.owner, cur.data) ~active:(tid, v);
                    Prog.return true
                | Hole_matched _ | Hole_failed | Hole_cancelled ->
                    Prog.return false)
              ~on_fault:(fun () -> Prog.return false)
          in
          (* line 30 of the proof outline *)
          let* () = at "xchg" ~cur ~s () in
          (* line 31: CAS(g, cur, null) — the CLEAN action (unconditional
             helping: remove the already-answered offer). A forced failure
             merely leaves the answered offer for the next helper. *)
          let* () =
            Prog.fallible ~label:("clean-cas" ^ loc t)
              (fun () ->
                (match Cell.get t.g with
                | Some o when o == cur -> Cell.set t.g None
                | _ -> ());
                Prog.return ())
              ~on_fault:(fun () -> Prog.return ())
          in
          let* () = at "clean" ~cur ~s () in
          if s then Prog.return (Value.ok cur.data) (* line 33 *)
          else fail_return t ~tid v (* line 35 *))

let log_timeout t tid v =
  if t.instrument then
    Ctx.log_element t.ctx (Spec_exchanger.timeout ~oid:t.xc_oid tid v)

(* Timed exchange — java.util.concurrent.Exchanger.exchange(x, timeout),
   expressed against the logical clock. [deadline] is in the {e perceived}
   time of [tid] (Ctx.local_now, so a Fault.Delay makes it fire early).
   Each round installs the offer and POLLS the hole for [wait] ticks: the
   waiter stays enabled, its own steps advance the clock, and a solo
   thread still times out — the HSY collision-slot discipline rather than
   blocking. An unmatched round withdraws the offer by CASing the hole to
   the cancelled sentinel; the CAS is fallible (a forced failure behaves
   as losing the race to a matching partner), but the cancel-acknowledge
   read that follows a lost cancel is not — a matched hole is stable, only
   the owner writes the sentinels. *)
let exchange_timed_body t ~tid ~deadline v =
  let now () = Ctx.local_now t.ctx ~tid in
  let rec attempt () =
    (* loop head doubles as the timeout return (its own CA-element: a
       timed-out exchange overlapped with nobody that mattered) *)
    Prog.atomically ~label:("deadline-check" ^ loc t) (fun () ->
        if now () >= deadline then begin
          log_timeout t tid v;
          Prog.return (Value.timeout v)
        end
        else install_or_help ())
  and install_or_help () =
    let* result =
      Prog.fallible ~label:("init-cas" ^ loc t)
        (fun () ->
          match Cell.get t.g with
          | None ->
              let n = fresh_offer t ~tid v in
              Cell.set t.g (Some n);
              Prog.return (`Installed (n, min (now () + t.wait) deadline))
          | Some _ -> Prog.return `Occupied)
        ~on_fault:(fun () -> Prog.return `Occupied)
    in
    match result with
    | `Installed (n, pair_until) -> wait_for_partner n pair_until
    | `Occupied -> (
        let* cur = Cell.read ~label:("read-g" ^ loc t) t.g in
        match cur with
        | None -> attempt () (* slot emptied under us: retry or time out *)
        | Some cur -> help cur)
  and wait_for_partner n pair_until =
    Prog.poll
      ~label:("pair-poll" ^ loc t)
      ~expired:(fun () -> now () >= pair_until)
      ~on_timeout:(fun () -> cancel n)
      (fun () ->
        match Cell.get n.hole with
        | Hole_matched m -> Some (Prog.return (Value.ok m.data))
        | _ -> None)
  and cancel n =
    let* r =
      Prog.fallible ~label:("cancel-cas" ^ loc t)
        (fun () ->
          match Cell.get n.hole with
          | Hole_empty ->
              Cell.set n.hole Hole_cancelled;
              Prog.return `Cancelled
          | Hole_matched m -> Prog.return (`Matched m)
          | Hole_failed | Hole_cancelled ->
              assert false (* only the owner writes the sentinels *))
        ~on_fault:(fun () -> Prog.return `Lost)
    in
    match r with
    | `Matched m ->
        (* lost the race: a partner matched first, take its value *)
        Prog.return (Value.ok m.data)
    | `Cancelled ->
        (* withdraw the cancelled offer from g, then retry or time out *)
        let* () =
          Prog.fallible ~label:("clean-cas" ^ loc t)
            (fun () ->
              (match Cell.get t.g with
              | Some o when o == n -> Cell.set t.g None
              | _ -> ());
              Prog.return ())
            ~on_fault:(fun () -> Prog.return ())
        in
        attempt ()
    | `Lost -> ack n
  and ack n =
    (* cancel-acknowledge: a plain read, deliberately NOT fallible. If the
       cancel CAS genuinely lost, the hole is matched and stable; if the
       forced failure was spurious (hole still empty) we retry the cancel. *)
    let* st =
      Prog.atomic ~label:("cancel-ack" ^ loc t) (fun () -> Cell.get n.hole)
    in
    match st with
    | Hole_matched m -> Prog.return (Value.ok m.data)
    | Hole_empty -> cancel n
    | Hole_failed | Hole_cancelled -> assert false
  and help cur =
    let* s =
      Prog.fallible ~label:("xchg-cas" ^ loc t)
        (fun () ->
          match Cell.get cur.hole with
          | Hole_empty ->
              let n = fresh_offer t ~tid v in
              Cell.set cur.hole (Hole_matched n);
              log_swap t ~waiter:(cur.owner, cur.data) ~active:(tid, v);
              Prog.return true
          | Hole_matched _ | Hole_failed | Hole_cancelled -> Prog.return false)
        ~on_fault:(fun () -> Prog.return false)
    in
    let* () =
      Prog.fallible ~label:("clean-cas" ^ loc t)
        (fun () ->
          (match Cell.get t.g with
          | Some o when o == cur -> Cell.set t.g None
          | _ -> ());
          Prog.return ())
        ~on_fault:(fun () -> Prog.return ())
    in
    if s then Prog.return (Value.ok cur.data) else attempt ()
  in
  attempt ()

let wrap t ~tid ~arg body =
  if t.log_history then
    Harness.call t.ctx ~tid ~oid:t.xc_oid ~fid:Spec_exchanger.fid_exchange ~arg body
  else body

let exchange t ~tid v = wrap t ~tid ~arg:v (exchange_body t ~tid v)

let exchange_timed t ~tid ~deadline v =
  wrap t ~tid ~arg:v (exchange_timed_body t ~tid ~deadline v)

let exchange_annotated t ~tid ~probe v =
  wrap t ~tid ~arg:v (exchange_body ~probe t ~tid v)

let exchange_body t ~tid v = exchange_body ?probe:None t ~tid v
let spec t = Spec_exchanger.spec ~oid:t.xc_oid ()
let view _t = View.identity
