(** Deliberately broken objects, used to validate that the checkers
    {e reject}: a verification method that accepts everything verifies
    nothing. Each object logs the trace its (wrong) implementation believes
    in, so the failures exercise different layers of the method:

    - {!Counter_lost_update}: a non-atomic increment (read, then write in a
      later step). Two racing increments both return the old value — the
      logged trace violates the counter specification.
    - {!Stack_lost_pop}: pop writes the new top without a CAS. Racing pops
      can both "succeed" with the same element — the trace violates the
      stack specification.
    - {!Elim_stack_dup_elim}: an elimination stack whose pop takes a parked
      value without clearing the slot, so racing pops all eliminate against
      the same push. Deep histories of it are {e rejection}-heavy — the
      checker must exhaust every drop subset of the pending pops before it
      can refuse — which makes it the checker-bound workload of the B14
      parallel-exploration benchmark.
    - {!Exchanger_selfish}: exchange immediately returns success with its
      own value while logging a {e failure} element — the history does not
      agree ([⊑CAL]) with the logged trace.
    - {!Durable_stack_missing_flush}: pop responds without flushing its
      removal, so a crash resurrects the popped element and a post-crash
      pop returns it again — two {e completed} pops of one push, which the
      durable checker rejects (no drop freedom excuses completed
      operations). *)

module Counter_lost_update : sig
  type t

  val create : ?oid:Cal.Ids.Oid.t -> Conc.Ctx.t -> t
  val incr : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t Conc.Prog.t
  val spec : t -> Cal.Spec.t
end

module Stack_lost_pop : sig
  type t

  val create : ?oid:Cal.Ids.Oid.t -> Conc.Ctx.t -> t
  val push : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
  val pop : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t Conc.Prog.t
  val spec : t -> Cal.Spec.t
end

module Elim_stack_dup_elim : sig
  type t

  val create : ?oid:Cal.Ids.Oid.t -> Conc.Ctx.t -> t
  val push : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
  val pop : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t Conc.Prog.t
  val spec : t -> Cal.Spec.t
end

module Durable_stack_missing_flush : sig
  type t

  val create :
    ?oid:Cal.Ids.Oid.t -> domain:Conc.Pcell.domain -> Conc.Ctx.t -> t

  val push : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
  val pop : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t Conc.Prog.t
  val recover : ?cost:int -> t -> unit Conc.Prog.t
  val spec : t -> Cal.Spec.t
end

module Exchanger_selfish : sig
  type t

  val create : ?oid:Cal.Ids.Oid.t -> Conc.Ctx.t -> t
  val exchange : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
  val spec : t -> Cal.Spec.t
end
