open Cal
open Conc
open Prog.Infix

type t = {
  st_oid : Ids.Oid.t;
  top : Value.t list Cell.t;
  ctx : Ctx.t;
  instrument : bool;
  log_history : bool;
}

let create ?(oid = Ids.Oid.v "S") ?(instrument = true) ?(log_history = true) ctx =
  {
    st_oid = oid;
    top = Cell.make ctx ~loc:(Ids.Oid.to_string oid ^ ".top") [];
    ctx;
    instrument;
    log_history;
  }

(* contended-location tag for the metrics layer *)
let loc t = "@" ^ Cell.loc t.top

let oid t = t.st_oid

let log_op t op = if t.instrument then Ctx.log_element t.ctx (Ca_trace.singleton op)

(* Fig. 2 lines 10–14: read the top, attempt one CAS. The CAS is the
   linearization point; success and failure are both logged there. The step
   is fallible: a fault plan may force the failure branch, which behaves
   exactly like losing the race (weak-CAS semantics). Going through [Cell]
   records each access against the step, so the explorer's happens-before
   relation sees the read and the CAS footprints exactly. *)
let push_body t ~tid v =
  let* h = Cell.read ~label:("read" ^ loc t) t.top in
  Prog.fallible ~label:("push-cas" ^ loc t)
    (fun () ->
      let ok = Cell.compare_and_set ~eq:( == ) t.top ~expect:h (v :: h) in
      log_op t (Spec_stack.push_op ~oid:t.st_oid tid v ~ok);
      Prog.return (Value.bool ok))
    ~on_fault:(fun () ->
      log_op t (Spec_stack.push_op ~oid:t.st_oid tid v ~ok:false);
      Prog.return (Value.bool false))

(* Fig. 2 lines 15–24. An empty read answers EMPTY at a separate return
   step; otherwise one CAS decides. *)
let pop_body t ~tid =
  let* h = Cell.read ~label:("read" ^ loc t) t.top in
  match h with
  | [] ->
      Prog.atomic ~label:"pop-empty" (fun () ->
          log_op t (Spec_stack.pop_op ~oid:t.st_oid tid None);
          Value.fail (Value.int 0))
  | x :: rest ->
      Prog.fallible ~label:("pop-cas" ^ loc t)
        (fun () ->
          let ok = Cell.compare_and_set ~eq:( == ) t.top ~expect:h rest in
          log_op t (Spec_stack.pop_op ~oid:t.st_oid tid (if ok then Some x else None));
          Prog.return (if ok then Value.ok x else Value.fail (Value.int 0)))
        ~on_fault:(fun () ->
          log_op t (Spec_stack.pop_op ~oid:t.st_oid tid None);
          Prog.return (Value.fail (Value.int 0)))

let wrap t ~tid ~fid ~arg body =
  if t.log_history then Harness.call t.ctx ~tid ~oid:t.st_oid ~fid ~arg body else body

let push t ~tid v = wrap t ~tid ~fid:Spec_stack.fid_push ~arg:v (push_body t ~tid v)
let pop t ~tid = wrap t ~tid ~fid:Spec_stack.fid_pop ~arg:Value.unit (pop_body t ~tid)

(* [pause_of backoff] is the per-operation backoff pause, or a no-op when
   the policy is absent (bare spinning, the historical behaviour). *)
let pause_of backoff =
  match Option.map Backoff.start backoff with
  | None -> fun () -> Prog.return ()
  | Some b -> fun () -> Backoff.pause b

let push_retry ?backoff t ~tid v =
  let pause = pause_of backoff in
  let body =
    Prog.repeat_until (fun () ->
        let* r = push_body t ~tid v in
        if Value.to_bool r then Prog.return (Some (Value.bool true))
        else
          let* () = pause () in
          Prog.return None)
  in
  wrap t ~tid ~fid:Spec_stack.fid_push ~arg:v body

let pop_retry ?backoff t ~tid =
  let pause = pause_of backoff in
  let body =
    Prog.repeat_until (fun () ->
        let* h = Cell.read ~label:("read" ^ loc t) t.top in
        match h with
        | [] ->
            Prog.atomic ~label:"pop-empty" (fun () ->
                log_op t (Spec_stack.pop_op ~oid:t.st_oid tid None);
                Some (Value.fail (Value.int 0)))
        | x :: rest ->
            let* popped =
              Prog.fallible ~label:("pop-cas" ^ loc t)
                (fun () ->
                  if Cell.compare_and_set ~eq:( == ) t.top ~expect:h rest then begin
                    log_op t (Spec_stack.pop_op ~oid:t.st_oid tid (Some x));
                    Prog.return (Some (Value.ok x))
                  end
                  else Prog.return None)
                ~on_fault:(fun () -> Prog.return None)
            in
            (match popped with
            | Some _ -> Prog.return popped
            | None ->
                let* () = pause () in
                Prog.return None))
  in
  wrap t ~tid ~fid:Spec_stack.fid_pop ~arg:Value.unit body

let contents t = Cell.peek t.top
let spec t = Spec_stack.spec ~oid:t.st_oid ~allow_spurious_failure:true ()
let view _t = View.identity
