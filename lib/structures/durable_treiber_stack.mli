(** Durable Treiber stack: the lock-free stack of Fig. 2 rebuilt on
    {!Conc.Pcell} persistent cells with an explicit flush discipline.

    Every successful CAS writes the {e volatile} copy of the top cell and
    is followed by a dedicated flush step persisting it {e before} the
    operation responds, so:

    - a {e completed} operation is always persisted — its effect survives
      any later crash;
    - an operation cut off by a crash {e between} its CAS and its flush is
      pending in the history; its effect survives iff a peer's flush
      persisted the cell first. Both outcomes are admissible for
      crash-pending operations under the durable checkers ("persisted or
      lost"), which is exactly why {!Verify.Obligations.check_durable}
      accepts this structure at every crash point.

    Operations make a single CAS attempt and report contention failure,
    like {!Treiber_stack} ([push ⇒ true/false], [pop ⇒ (true,v)/(false,0)]
    with spurious failures allowed by the spec). The structure is {e not}
    trace-instrumented: durable checking is black-box over the history
    (see DESIGN §2.10 — a peer's flush, not the logging operation's own
    step, can decide whether a pending write persists, so reconciling a
    self-reported trace would be unsound). *)

type t

val create :
  ?oid:Cal.Ids.Oid.t ->
  ?log_history:bool ->
  domain:Conc.Pcell.domain ->
  Conc.Ctx.t ->
  t
(** [oid] defaults to ["DS"]. The top cell is registered in [domain] —
    pass the same domain to {!Conc.Runner.durable} so crashes wipe it. *)

val oid : t -> Cal.Ids.Oid.t
val push : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
val pop : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t Conc.Prog.t

val recover : ?cost:int -> t -> unit Conc.Prog.t
(** The stack's recovery procedure, run as (part of) the post-crash
    program: re-asserts the durable top as the volatile state. [cost]
    (default [0]) prepends that many no-op scan steps, modelling log
    scanning or structure rebuilding — the knob the B13 benchmark sweeps.
    Recovery logs no history actions: it is not an operation of the
    object. *)

val contents : t -> Cal.Value.t list
(** Volatile contents, top first (for assertions in tests). *)

val persisted : t -> Cal.Value.t list
(** Durable contents — what a crash right now would leave. *)

val spec : t -> Cal.Spec.t
(** Stack specification at this [oid], spurious failures allowed. *)
