(** The elimination stack of Hendler, Shavit and Yerushalmi (Fig. 2).

    Push and pop first try the central stack; on contention failure they
    attempt to {e eliminate} against a concurrently running operation of
    the opposite kind through the elimination layer: a popping thread
    offers [pop_sentinel], a pushing thread offers its value, and a
    successful mixed exchange transfers the value directly. Same-kind
    exchanges and failed exchanges retry.

    The object logs nothing itself: its view function [F_ES] (§5)
    interprets the sub-objects' CA-elements —

    - [S.(t, push(n) ⇒ true)] and [S.(t, pop() ⇒ (true,n))] become the
      corresponding elimination-stack operations;
    - a successful exchange of [n ≠ ∞] against [∞] becomes the {e sequence}
      [ES.(t, push(n) ⇒ true) · ES.(t', pop() ⇒ (true,n))] — the push
      linearized immediately before the pop (one atomic action explained as
      two abstract operations by different threads);
    - everything else (failed stack attempts, failed or same-kind
      exchanges) is erased. *)

type t

val pop_sentinel : Cal.Value.t
(** The paper's [POP_SENTINAL = INFINITY]. Client values must differ from
    it. *)

val create :
  ?oid:Cal.Ids.Oid.t ->
  ?stack_oid:Cal.Ids.Oid.t ->
  ?array_oid:Cal.Ids.Oid.t ->
  ?instrument:bool ->
  ?log_history:bool ->
  ?factory:Elim_array.exchanger_factory ->
  ?backoff:Backoff.policy ->
  ?degrade_after:int ->
  k:int ->
  slot_strategy:Elim_array.slot_strategy ->
  Conc.Ctx.t ->
  t
(** [oid] defaults to ["ES"]; the central stack to ["S"]; the elimination
    array to ["AR"] with [k] slots. [factory] selects the exchanger
    implementation inside the elimination array (default
    {!Elim_array.concrete}); pass {!Elim_array.abstract} to verify the
    stack against the exchanger {e specification}.

    Robustness knobs (both default off, leaving behaviour unchanged):
    [backoff] pauses each operation between retry rounds under a
    deterministic bounded-exponential policy (see {!Backoff}).
    [degrade_after] is the graceful-degradation budget, in logical-clock
    ticks (see {!Conc.Ctx.now}): when an operation's first central-stack
    round fails, a deadline [degrade_after] ticks ahead is armed on the
    operation's perceived clock; once it passes, the operation stops
    visiting the elimination layer and retries on the central stack
    alone, so a faulty or crashed elimination partner degrades throughput
    instead of livelocking the operation. The deadline is per-operation.
    Raises [Invalid_argument] if [degrade_after <= 0]. *)

val oid : t -> Cal.Ids.Oid.t
val stack : t -> Treiber_stack.t
val elim_array : t -> Elim_array.t

val push : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
(** Always returns [true] (retries until it succeeds); termination is
    bounded by the scheduler's fuel. *)

val pop : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t Conc.Prog.t
(** Returns [(true, v)]; retries until a value is obtained. *)

val spec : t -> Cal.Spec.t
(** The sequential stack specification at the elimination stack's [oid] —
    {e without} spurious failures: the elimination stack is a real stack. *)

val view : t -> Cal.View.t
(** [𝔉_ES = F̂_ES ∘ 𝔉_AR ∘ 𝔉_S]. *)
