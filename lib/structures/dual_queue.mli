(** A dual queue (Scherer & Scott, DISC 2004) — the "operations that must
    wait for some other thread to establish a precondition" family the
    paper discusses in §6.

    [deq] on an empty queue installs a reservation and {e waits}; a later
    [enq] fulfils it, and the fulfilment is logged as a single CA-element
    containing both operations — one linearization point instead of the
    request/follow-up pair of the original dual-data-structure treatment.

    The shared state is one atomically-updated cell (either queued values
    or waiting reservations, never both non-empty); the waiting dequeuer
    spins on its reservation, so termination of [deq] is bounded by the
    scheduler's fuel when no enqueue arrives. *)

type t

val create :
  ?oid:Cal.Ids.Oid.t -> ?instrument:bool -> ?log_history:bool -> Conc.Ctx.t -> t
(** [oid] defaults to ["DQ"]. *)

val oid : t -> Cal.Ids.Oid.t

val enq : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t -> Cal.Value.t Conc.Prog.t
(** Returns [Unit]. *)

val deq : t -> tid:Cal.Ids.Tid.t -> Cal.Value.t Conc.Prog.t
(** Returns the dequeued value; waits (spins) on the empty queue. *)

val deq_timed : t -> tid:Cal.Ids.Tid.t -> deadline:int -> Cal.Value.t Conc.Prog.t
(** Timed dequeue: like {!deq}, but a waiting consumer polls its
    reservation and, once [tid]'s perceived logical clock passes
    [deadline], withdraws it (CAS-removing the reservation and logging the
    singleton cancelled CA-element in one step) and returns
    [("cancelled", ())]. The withdrawal CAS is fallible — a forced failure
    behaves as losing the race to a fulfilling enqueue, after which the
    cancel-acknowledge read (not fallible) takes the fulfilled value. *)

val spec : t -> Cal.Spec.t
val view : t -> Cal.View.t
