open Cal
open Conc
open Prog.Infix

type t = {
  q_oid : Ids.Oid.t;
  items : Value.t list Pcell.t; (* front first *)
  ctx : Ctx.t;
  log_history : bool;
}

let create ?(oid = Ids.Oid.v "DQ") ?(log_history = true) ~domain ctx =
  { q_oid = oid; items = Pcell.create domain []; ctx; log_history }

let loc t = "@" ^ Ids.Oid.to_string t.q_oid ^ ".items"
let oid t = t.q_oid

(* Same flush discipline as the durable stack: CAS the volatile copy, then
   flush before responding. Enqueue retries until its CAS lands (the queue
   spec has no spurious failures for enq), so only a crash can leave it
   pending. *)
let enq_body t v =
  Prog.repeat_until (fun () ->
      let* h =
        Prog.atomic ~label:("enq-read" ^ loc t) (fun () -> Pcell.read t.items)
      in
      Prog.fallible
        ~label:("enq-cas" ^ loc t)
        (fun () ->
          if Pcell.read t.items == h then begin
            Pcell.write t.items (h @ [ v ]);
            Prog.return (Some ())
          end
          else Prog.return None)
        ~on_fault:(fun () -> Prog.return None))
  >>= fun () ->
  let* () =
    Prog.atomic ~label:("enq-flush" ^ loc t) (fun () -> Pcell.flush t.items)
  in
  Prog.return Value.unit

let deq_body t =
  Prog.repeat_until (fun () ->
      let* h =
        Prog.atomic ~label:("deq-read" ^ loc t) (fun () -> Pcell.read t.items)
      in
      match h with
      | [] ->
          Prog.atomic ~label:"deq-empty" (fun () ->
              Some (Value.fail (Value.int 0)))
      | x :: rest ->
          Prog.fallible
            ~label:("deq-cas" ^ loc t)
            (fun () ->
              if Pcell.read t.items == h then begin
                Pcell.write t.items rest;
                Prog.return (Some x)
              end
              else Prog.return None)
            ~on_fault:(fun () -> Prog.return None)
          >>= (function
          | None -> Prog.return None
          | Some x ->
              let* () =
                Prog.atomic ~label:("deq-flush" ^ loc t) (fun () ->
                    Pcell.flush t.items)
              in
              Prog.return (Some (Value.ok x))))

let wrap t ~tid ~fid ~arg body =
  if t.log_history then Harness.call t.ctx ~tid ~oid:t.q_oid ~fid ~arg body
  else body

let enq t ~tid v = wrap t ~tid ~fid:Spec_queue.fid_enq ~arg:v (enq_body t v)
let deq t ~tid = wrap t ~tid ~fid:Spec_queue.fid_deq ~arg:Value.unit (deq_body t)

let recover ?(cost = 0) t =
  let rec spin n =
    if n = 0 then
      Prog.atomic ~label:("recover" ^ loc t) (fun () ->
          Pcell.write t.items (Pcell.persisted t.items);
          Pcell.flush t.items)
    else
      let* () = Prog.atomic ~label:("recover-scan" ^ loc t) (fun () -> ()) in
      spin (n - 1)
  in
  spin cost

let contents t = Pcell.read t.items
let persisted t = Pcell.persisted t.items
let spec t = Spec_queue.spec ~oid:t.q_oid ()
