open Conc

type policy = {
  init : int;
  max : int;
  seed : int64;
  mutable started : int;  (* per-start salt: distinct loops jitter apart *)
}

let policy ?(init = 1) ?(max = 16) ?(seed = 0x0FF5E7L) () =
  if init <= 0 || max < init then
    invalid_arg "Backoff.policy: need 0 < init <= max";
  { init; max; seed; started = 0 }

type t = { pol : policy; rng : Rng.t; mutable window : int; mutable pauses : int }

let start pol =
  pol.started <- pol.started + 1;
  let rng = Rng.create ~seed:(Int64.add pol.seed (Int64.of_int pol.started)) in
  { pol; rng; window = pol.init; pauses = 0 }

let pause b =
  Prog.atomically ~label:"backoff" (fun () ->
      let k = Rng.int b.rng (b.window + 1) in
      b.pauses <- b.pauses + 1;
      b.window <- min (b.window * 2) b.pol.max;
      Prog.seq (List.init k (fun _ -> Prog.yield)))

let reset b = b.window <- b.pol.init
let pauses b = b.pauses
