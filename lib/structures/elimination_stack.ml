open Cal
open Conc
open Prog.Infix

type t = {
  es_oid : Ids.Oid.t;
  stack : Treiber_stack.t;
  ar : Elim_array.t;
  ctx : Ctx.t;
  log_history : bool;
  backoff : Backoff.policy option;
  degrade_after : int option;
}

let pop_sentinel = Value.str "INF"

let create ?(oid = Ids.Oid.v "ES") ?(stack_oid = Ids.Oid.v "S")
    ?(array_oid = Ids.Oid.v "AR") ?(instrument = true) ?(log_history = true)
    ?(factory = Elim_array.concrete) ?backoff ?degrade_after ~k ~slot_strategy ctx =
  (match degrade_after with
  | Some k when k <= 0 -> invalid_arg "Elimination_stack.create: degrade_after <= 0"
  | _ -> ());
  {
    es_oid = oid;
    stack = Treiber_stack.create ~oid:stack_oid ~instrument ~log_history:false ctx;
    ar =
      Elim_array.create ~oid:array_oid ~instrument ~log_history:false ~factory ~k
        ~slot_strategy ctx;
    ctx;
    log_history;
    backoff;
    degrade_after;
  }

let oid t = t.es_oid
let stack t = t.stack
let elim_array t = t.ar

(* Graceful degradation, expressed on deadlines: [degrade_after] is a
   logical-time budget for the operation's elimination phase. The first
   degraded check — evaluated when the operation's first central-stack
   round fails — arms a deadline [degrade_after] ticks ahead on the
   operation's perceived clock (Ctx.local_now); once it passes, the
   operation stops visiting the elimination layer and retries on the
   central stack alone (pausing under the backoff policy, if any, so it
   does not convoy). The deadline is per-operation, so a single stuck
   rendezvous partner cannot poison later operations. *)
type round_state = { mutable deadline : int option; pause : unit -> unit Prog.t }

let round_state t =
  let pause =
    match Option.map Backoff.start t.backoff with
    | None -> fun () -> Prog.return ()
    | Some b -> fun () -> Backoff.pause b
  in
  { deadline = None; pause }

let degraded t ~tid rs =
  match t.degrade_after with
  | None -> false
  | Some budget -> (
      let now = Ctx.local_now t.ctx ~tid in
      match rs.deadline with
      | None ->
          rs.deadline <- Some (now + budget);
          false
      | Some d -> now >= d)

(* Fig. 2 lines 29–37 (with lines 33–36 skipped once degraded). *)
let push_body t ~tid v =
  let rs = round_state t in
  Prog.repeat_until (fun () ->
      let* b = Treiber_stack.push_body t.stack ~tid v in
      if Value.to_bool b then Prog.return (Some (Value.bool true))
      else if degraded t ~tid rs then
        let* () = rs.pause () in
        Prog.return None
      else
        let* r = Elim_array.exchange_body t.ar ~tid v in
        let _, d = Value.to_pair r in
        if Value.equal d pop_sentinel then Prog.return (Some (Value.bool true))
        else
          let* () = rs.pause () in
          Prog.return None)

(* Fig. 2 lines 38–47 (same degradation discipline). *)
let pop_body t ~tid =
  let rs = round_state t in
  Prog.repeat_until (fun () ->
      let* r = Treiber_stack.pop_body t.stack ~tid in
      let b, v = Value.to_pair r in
      if Value.to_bool b then Prog.return (Some (Value.ok v))
      else if degraded t ~tid rs then
        let* () = rs.pause () in
        Prog.return None
      else
        let* r = Elim_array.exchange_body t.ar ~tid pop_sentinel in
        let _, v = Value.to_pair r in
        if not (Value.equal v pop_sentinel) then Prog.return (Some (Value.ok v))
        else
          let* () = rs.pause () in
          Prog.return None)

let wrap t ~tid ~fid ~arg body =
  if t.log_history then Harness.call t.ctx ~tid ~oid:t.es_oid ~fid ~arg body else body

let push t ~tid v = wrap t ~tid ~fid:Spec_stack.fid_push ~arg:v (push_body t ~tid v)
let pop t ~tid = wrap t ~tid ~fid:Spec_stack.fid_pop ~arg:Value.unit (pop_body t ~tid)
let spec t = Spec_stack.spec ~oid:t.es_oid ~allow_spurious_failure:false ()

(* F_ES (§5): the successful central-stack operations and the mixed
   exchanges are linearization points; everything else vanishes. *)
let f_es t e =
  let es = t.es_oid in
  let o = Ca_trace.element_oid e in
  if Ids.Oid.equal o (Treiber_stack.oid t.stack) then
    match Ca_trace.element_ops e with
    | [ op ] -> (
        if Ids.Fid.equal op.fid Spec_stack.fid_push then
          match op.ret with
          | Value.Bool true ->
              Some [ Ca_trace.singleton (Spec_stack.push_op ~oid:es op.tid op.arg ~ok:true) ]
          | _ -> Some []
        else
          match op.ret with
          | Value.Pair (Value.Bool true, v) ->
              Some [ Ca_trace.singleton (Spec_stack.pop_op ~oid:es op.tid (Some v)) ]
          | _ -> Some [])
    | _ -> Some []
  else if Ids.Oid.equal o (Elim_array.oid t.ar) then
    match Ca_trace.element_ops e with
    | [ a; b ] -> (
        (* a successful swap; find the pushing side (argument ≠ ∞) *)
        let mixed =
          if Value.equal a.arg pop_sentinel && not (Value.equal b.arg pop_sentinel) then
            Some (b, a)
          else if Value.equal b.arg pop_sentinel && not (Value.equal a.arg pop_sentinel)
          then Some (a, b)
          else None
        in
        match mixed with
        | Some (pusher, popper) ->
            Some
              [
                Ca_trace.singleton (Spec_stack.push_op ~oid:es pusher.tid pusher.arg ~ok:true);
                Ca_trace.singleton (Spec_stack.pop_op ~oid:es popper.tid (Some pusher.arg));
              ]
        | None -> Some [])
    | _ -> Some []
  else None

let view t = View.compose ~own:(f_es t) ~subs:[ Elim_array.view t.ar ]
