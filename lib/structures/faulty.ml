open Cal
open Conc
open Prog.Infix

module Counter_lost_update = struct
  type t = { oid : Ids.Oid.t; cell : int ref; ctx : Ctx.t }

  let create ?(oid = Ids.Oid.v "C") ctx = { oid; cell = ref 0; ctx }

  (* BUG: the read and the write are separate steps, so two increments can
     interleave and both observe (and log) the same old value. *)
  let incr t ~tid =
    let body =
      let* old = Prog.read t.cell in
      Prog.atomic ~label:"bad-incr-write" (fun () ->
          t.cell := old + 1;
          Ctx.log_element t.ctx
            (Ca_trace.singleton (Spec_counter.incr_op ~oid:t.oid tid old));
          Value.int old)
    in
    Harness.call t.ctx ~tid ~oid:t.oid ~fid:Spec_counter.fid_incr ~arg:Value.unit body

  let spec t = Spec_counter.spec ~oid:t.oid ()
end

module Stack_lost_pop = struct
  type t = { oid : Ids.Oid.t; top : Value.t list ref; ctx : Ctx.t }

  let create ?(oid = Ids.Oid.v "S") ctx = { oid; top = ref []; ctx }

  let push t ~tid v =
    let body =
      Prog.atomic ~label:"bad-push" (fun () ->
          t.top := v :: !(t.top);
          Ctx.log_element t.ctx
            (Ca_trace.singleton (Spec_stack.push_op ~oid:t.oid tid v ~ok:true));
          Value.bool true)
    in
    Harness.call t.ctx ~tid ~oid:t.oid ~fid:Spec_stack.fid_push ~arg:v body

  (* BUG: pop reads the top and later writes the tail unconditionally, so
     two racing pops can both return the same element. *)
  let pop t ~tid =
    let body =
      let* h = Prog.read t.top in
      match h with
      | [] ->
          Prog.atomic ~label:"bad-pop-empty" (fun () ->
              Ctx.log_element t.ctx
                (Ca_trace.singleton (Spec_stack.pop_op ~oid:t.oid tid None));
              Value.fail (Value.int 0))
      | x :: rest ->
          Prog.atomic ~label:"bad-pop-write" (fun () ->
              t.top := rest;
              Ctx.log_element t.ctx
                (Ca_trace.singleton (Spec_stack.pop_op ~oid:t.oid tid (Some x)));
              Value.ok x)
    in
    Harness.call t.ctx ~tid ~oid:t.oid ~fid:Spec_stack.fid_pop ~arg:Value.unit body

  let spec t = Spec_stack.spec ~oid:t.oid ~allow_spurious_failure:true ()
end

module Elim_stack_dup_elim = struct
  type t = {
    oid : Ids.Oid.t;
    top : Value.t list ref;
    slot : Value.t option ref;
    ctx : Ctx.t;
  }

  let create ?(oid = Ids.Oid.v "ES") ctx =
    { oid; top = ref []; slot = ref None; ctx }

  (* push parks its value in the elimination slot (so a concurrent pop can
     take it directly) and then pushes onto the central list. *)
  let push t ~tid v =
    let body =
      let* () = Prog.atomic ~label:"park" (fun () -> t.slot := Some v) in
      let* old = Prog.read t.top in
      Prog.atomic ~label:"push-write" (fun () ->
          t.top := v :: old;
          Ctx.log_element t.ctx
            (Ca_trace.singleton (Spec_stack.push_op ~oid:t.oid tid v ~ok:true));
          Value.bool true)
    in
    Harness.call t.ctx ~tid ~oid:t.oid ~fid:Spec_stack.fid_push ~arg:v body

  (* BUG: a pop that finds a parked value takes it without clearing the
     slot, so every later pop can eliminate against the same push — one
     push explains two (or more) completed pops, which no completion of
     the history can excuse. Pops that find neither a parked value nor a
     central element retry, so they are pending at fuel exhaustion. *)
  let pop t ~tid =
    let body =
      Prog.repeat_until (fun () ->
          let* s = Prog.read t.slot in
          match s with
          | Some v ->
              let* r =
                Prog.atomic ~label:"elim-pop" (fun () ->
                    Ctx.log_element t.ctx
                      (Ca_trace.singleton
                         (Spec_stack.pop_op ~oid:t.oid tid (Some v)));
                    Value.ok v)
              in
              Prog.return (Some r)
          | None -> (
              let* h = Prog.read t.top in
              match h with
              | [] -> Prog.return None
              | x :: rest ->
                  let* r =
                    Prog.atomic ~label:"pop-write" (fun () ->
                        t.top := rest;
                        Ctx.log_element t.ctx
                          (Ca_trace.singleton
                             (Spec_stack.pop_op ~oid:t.oid tid (Some x)));
                        Value.ok x)
                  in
                  Prog.return (Some r)))
    in
    Harness.call t.ctx ~tid ~oid:t.oid ~fid:Spec_stack.fid_pop ~arg:Value.unit
      body

  let spec t = Spec_stack.spec ~oid:t.oid ~allow_spurious_failure:false ()
end

module Durable_stack_missing_flush = struct
  type t = { oid : Ids.Oid.t; top : Value.t list Pcell.t; ctx : Ctx.t }

  let create ?(oid = Ids.Oid.v "DS") ~domain ctx =
    { oid; top = Pcell.create domain []; ctx }

  let loc t = "@" ^ Ids.Oid.to_string t.oid ^ ".top"

  (* push follows the full discipline: CAS then flush before responding. *)
  let push t ~tid v =
    let body =
      let* h =
        Prog.atomic ~label:("push-read" ^ loc t) (fun () -> Pcell.read t.top)
      in
      let* ok =
        Prog.fallible
          ~label:("push-cas" ^ loc t)
          (fun () ->
            let ok = Pcell.read t.top == h in
            if ok then Pcell.write t.top (v :: h);
            Prog.return ok)
          ~on_fault:(fun () -> Prog.return false)
      in
      if not ok then Prog.return (Value.bool false)
      else
        let* () =
          Prog.atomic ~label:("push-flush" ^ loc t) (fun () ->
              Pcell.flush t.top)
        in
        Prog.return (Value.bool true)
    in
    Harness.call t.ctx ~tid ~oid:t.oid ~fid:Spec_stack.fid_push ~arg:v body

  (* BUG: pop responds right after its CAS, never flushing the removal. A
     crash after the response reverts the top to its durable value, which
     still holds the popped element — recovery resurrects it, and a
     post-crash pop returns it a second time. Both pops are {e completed}
     operations, so the durable checker has no drop freedom to excuse the
     duplicate. *)
  let pop t ~tid =
    let body =
      let* h =
        Prog.atomic ~label:("pop-read" ^ loc t) (fun () -> Pcell.read t.top)
      in
      match h with
      | [] -> Prog.atomic ~label:"pop-empty" (fun () -> Value.fail (Value.int 0))
      | x :: rest ->
          Prog.fallible
            ~label:("pop-cas" ^ loc t)
            (fun () ->
              let ok = Pcell.read t.top == h in
              if ok then Pcell.write t.top rest;
              Prog.return
                (if ok then Value.ok x else Value.fail (Value.int 0)))
            ~on_fault:(fun () -> Prog.return (Value.fail (Value.int 0)))
    in
    Harness.call t.ctx ~tid ~oid:t.oid ~fid:Spec_stack.fid_pop ~arg:Value.unit
      body

  let recover ?(cost = 0) t =
    let rec spin n =
      if n = 0 then
        Prog.atomic ~label:("recover" ^ loc t) (fun () ->
            Pcell.write t.top (Pcell.persisted t.top);
            Pcell.flush t.top)
      else
        let* () =
          Prog.atomic ~label:("recover-scan" ^ loc t) (fun () -> ())
        in
        spin (n - 1)
    in
    spin cost

  let spec t = Spec_stack.spec ~oid:t.oid ~allow_spurious_failure:true ()
end

module Exchanger_selfish = struct
  type t = { oid : Ids.Oid.t; ctx : Ctx.t }

  let create ?(oid = Ids.Oid.v "E") ctx = { oid; ctx }

  (* BUG: claims success with its own value, with no partner, while logging
     the failure element — the history disagrees with the trace. *)
  let exchange t ~tid v =
    let body =
      Prog.atomic ~label:"bad-exchange" (fun () ->
          Ctx.log_element t.ctx (Spec_exchanger.failure ~oid:t.oid tid v);
          Value.ok v)
    in
    Harness.call t.ctx ~tid ~oid:t.oid ~fid:Spec_exchanger.fid_exchange ~arg:v body

  let spec t = Spec_exchanger.spec ~oid:t.oid ()
end
