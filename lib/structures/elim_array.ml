open Cal
open Conc
open Prog.Infix

type slot_strategy = All_slots | Seeded of Rng.t

type slot = {
  slot_oid : Ids.Oid.t;
  slot_exchange : tid:Ids.Tid.t -> Value.t -> Value.t Prog.t;
  slot_exchange_timed :
    (tid:Ids.Tid.t -> deadline:int -> Value.t -> Value.t Prog.t) option;
}

type exchanger_factory = instrument:bool -> oid:Ids.Oid.t -> Conc.Ctx.t -> slot

let concrete ~instrument ~oid ctx =
  let ex = Exchanger.create ~oid ~instrument ~log_history:false ctx in
  {
    slot_oid = oid;
    slot_exchange = Exchanger.exchange_body ex;
    slot_exchange_timed = Some (Exchanger.exchange_timed_body ex);
  }

let concrete_waiting ~wait ~instrument ~oid ctx =
  let ex = Exchanger.create ~oid ~instrument ~log_history:false ~wait ctx in
  {
    slot_oid = oid;
    slot_exchange = Exchanger.exchange_body ex;
    slot_exchange_timed = Some (Exchanger.exchange_timed_body ex);
  }

let abstract ~instrument ~oid ctx =
  let ex = Abstract_exchanger.create ~oid ~instrument ~log_history:false ctx in
  {
    slot_oid = oid;
    slot_exchange = Abstract_exchanger.exchange_body ex;
    slot_exchange_timed = None;
  }

type t = {
  ar_oid : Ids.Oid.t;
  slots : slot array;
  strategy : slot_strategy;
  ctx : Ctx.t;
  log_history : bool;
}

let create ?(oid = Ids.Oid.v "AR") ?(instrument = true) ?(log_history = true)
    ?(factory = concrete) ~k ~slot_strategy ctx =
  if k <= 0 then invalid_arg "Elim_array.create: k must be positive";
  let slots =
    Array.init k (fun i ->
        let sub = Ids.Oid.v (Fmt.str "%a[%d]" Ids.Oid.pp oid i) in
        factory ~instrument ~oid:sub ctx)
  in
  { ar_oid = oid; slots; strategy = slot_strategy; ctx; log_history }

let oid t = t.ar_oid
let size t = Array.length t.slots

let pick_slot t =
  match t.strategy with
  | All_slots -> Prog.choose_int ~label:"slot" (Array.length t.slots)
  | Seeded rng ->
      Prog.atomic ~label:"slot" (fun () -> Rng.int rng (Array.length t.slots))

let exchange_body t ~tid v =
  let* slot = pick_slot t in
  t.slots.(slot).slot_exchange ~tid v

let exchange t ~tid v =
  let body = exchange_body t ~tid v in
  if t.log_history then
    Harness.call t.ctx ~tid ~oid:t.ar_oid ~fid:Spec_exchanger.fid_exchange ~arg:v body
  else body

let exchange_timed_body t ~tid ~deadline v =
  let* slot = pick_slot t in
  match t.slots.(slot).slot_exchange_timed with
  | Some f -> f ~tid ~deadline v
  | None ->
      invalid_arg
        (Fmt.str "Elim_array: slot %a does not support timed exchange"
           Ids.Oid.pp t.slots.(slot).slot_oid)

let exchange_timed t ~tid ~deadline v =
  let body = exchange_timed_body t ~tid ~deadline v in
  if t.log_history then
    Harness.call t.ctx ~tid ~oid:t.ar_oid ~fid:Spec_exchanger.fid_exchange ~arg:v body
  else body

let spec t = Spec_exchanger.spec ~oid:t.ar_oid ()
let exchanger_oids t = Array.to_list (Array.map (fun s -> s.slot_oid) t.slots)

let view t =
  let subs = exchanger_oids t in
  let f_ar e =
    let o = Ca_trace.element_oid e in
    if List.exists (Ids.Oid.equal o) subs then (View.rename ~from:o ~to_:t.ar_oid) e
    else None
  in
  View.lift f_ar
