type stats = { states_explored : int; memo_hits : int; drop_sets_tried : int }

type verdict =
  | Linearizable of { linearization : Op.t list; completion : History.t; stats : stats }
  | Not_linearizable of { reason : string; stats : stats }

let universe_of_entries entries =
  List.concat_map
    (fun (e : History.entry) ->
      Value.subvalues e.arg
      @ (match e.ret with None -> [] | Some r -> Value.subvalues r))
    entries
  |> List.sort_uniq Value.compare

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let check ?crashed ~spec h =
  (match History.validate h with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Lin_checker.check: " ^ reason));
  let entries = Array.of_list (History.entries h) in
  let n = Array.length entries in
  if n > 62 then invalid_arg "Lin_checker.check: more than 62 operations";
  let universe = universe_of_entries (Array.to_list entries) in
  let preds =
    Array.init n (fun j ->
        List.filter
          (fun i -> History.precedes entries.(i) entries.(j))
          (List.init n Fun.id))
  in
  (* Crash-tolerant and durable modes (mirror {!Cal_checker.check}): only
     crashed threads' pending operations are droppable, except that an
     operation pending at a system crash — any era before the final one —
     may always have been lost. *)
  let last_era = History.eras h - 1 in
  let droppable (e : History.entry) =
    e.era < last_era
    ||
    match crashed with
    | None -> true
    | Some tids -> List.exists (Ids.Tid.equal e.tid) tids
  in
  let pending_bits =
    List.filteri
      (fun i _ -> entries.(i).History.ret = None && droppable entries.(i))
      (List.init n Fun.id)
  in
  let states_explored = ref 0 in
  let memo_hits = ref 0 in
  let drop_sets = ref 0 in
  let stats () =
    {
      states_explored = !states_explored;
      memo_hits = !memo_hits;
      drop_sets_tried = !drop_sets;
    }
  in
  let search active =
    let failed = Hashtbl.create (Tuning.checker_table_size ~ops:n) in
    let rec dfs placed acc acc_ops =
      if placed = active then Some (List.rev acc_ops)
      else begin
        let memo_key = (placed, Spec.key acc) in
        if Hashtbl.mem failed memo_key then begin
          incr memo_hits;
          None
        end
        else begin
          incr states_explored;
          let avail =
            List.filter
              (fun i ->
                active land (1 lsl i) <> 0
                && placed land (1 lsl i) = 0
                && List.for_all
                     (fun p ->
                       active land (1 lsl p) = 0 || placed land (1 lsl p) <> 0)
                     preds.(i))
              (List.init n Fun.id)
          in
          let try_op i =
            let candidates =
              match History.op_of_entry entries.(i) with
              | Some op -> [ op ]
              | None ->
                  let p = History.pending_of_entry entries.(i) in
                  List.map
                    (fun ret -> Op.of_pending p ~ret)
                    (Spec.candidates acc ~universe p)
            in
            List.find_map
              (fun op ->
                match Spec.step acc (Ca_trace.singleton op) with
                | None -> None
                | Some acc' -> dfs (placed lor (1 lsl i)) acc' ((i, op) :: acc_ops))
              candidates
          in
          let result = List.find_map try_op avail in
          if result = None then Hashtbl.replace failed memo_key ();
          result
        end
      end
    in
    dfs 0 spec.Spec.start []
  in
  let p = List.length pending_bits in
  let full_mask = (1 lsl n) - 1 in
  let drop_masks =
    List.init (1 lsl p) Fun.id
    |> List.sort (fun a b -> Int.compare (popcount a) (popcount b))
  in
  let result =
    List.find_map
      (fun dm ->
        incr drop_sets;
        let dropped =
          List.filteri (fun k _ -> dm land (1 lsl k) <> 0) pending_bits
          |> List.fold_left (fun m i -> m lor (1 lsl i)) 0
        in
        Option.map (fun ops -> (ops, dropped)) (search (full_mask land lnot dropped)))
      drop_masks
  in
  match result with
  | Some (indexed_ops, dropped) ->
      let dropped_inv_indices =
        List.filteri (fun i _ -> dropped land (1 lsl i) <> 0) (Array.to_list entries)
        |> List.map (fun (e : History.entry) -> e.inv_index)
      in
      let kept_actions =
        History.to_list h
        |> List.filteri (fun idx _ -> not (List.mem idx dropped_inv_indices))
      in
      let appended =
        List.filter_map
          (fun (i, (op : Op.t)) ->
            if entries.(i).History.ret = None then
              Some
                ( entries.(i).History.era,
                  Action.res ~tid:op.tid ~oid:op.oid ~fid:op.fid op.ret )
            else None)
          indexed_ops
      in
      Linearizable
        {
          linearization = List.map snd indexed_ops;
          completion = History.with_responses kept_actions appended;
          stats = stats ();
        }
  | None ->
      Not_linearizable
        {
          reason =
            Fmt.str "no %scompletion has a sequential explanation in %s"
              (if crashed = None && History.crash_count h = 0 then ""
               else "crash-consistent ")
              spec.Spec.name;
          stats = stats ();
        }

let is_linearizable ?crashed ~spec h =
  match check ?crashed ~spec h with Linearizable _ -> true | Not_linearizable _ -> false

let pp_verdict ppf = function
  | Linearizable { linearization; stats; _ } ->
      Fmt.pf ppf "@[<v>LINEARIZABLE (states=%d)@,witness: %a@]" stats.states_explored
        (Fmt.list ~sep:(Fmt.any " · ") Op.pp)
        linearization
  | Not_linearizable { reason; stats } ->
      Fmt.pf ppf "NOT LINEARIZABLE (states=%d): %s" stats.states_explored reason
