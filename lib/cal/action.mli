(** Object actions: invocations and responses (Definition 1).

    An invocation [(t, inv o.f(n))] records that thread [t] started executing
    method [f] on object [o] with argument [n]; a response [(t, res o.f ⇒ n)]
    records that the execution terminated with return value [n].

    A {!Crash} marker records a full-system crash between two actions: every
    invocation pending at the marker is cut off (volatile state is wiped and
    the thread never resumes), and the actions after the marker belong to the
    post-recovery execution [epoch]. Crash markers carry no thread, object
    or method; {!tid}/{!oid}/{!fid} raise on them. *)

type t =
  | Inv of { tid : Ids.Tid.t; oid : Ids.Oid.t; fid : Ids.Fid.t; arg : Value.t }
  | Res of { tid : Ids.Tid.t; oid : Ids.Oid.t; fid : Ids.Fid.t; ret : Value.t }
  | Crash of { epoch : int }
      (** full-system crash ending era [epoch - 1]; the actions that follow
          run in era [epoch] *)

val inv : tid:Ids.Tid.t -> oid:Ids.Oid.t -> fid:Ids.Fid.t -> Value.t -> t
val res : tid:Ids.Tid.t -> oid:Ids.Oid.t -> fid:Ids.Fid.t -> Value.t -> t

val crash : epoch:int -> t
(** The system-crash marker opening era [epoch] (1-based: the [k]-th crash
    of a run carries [epoch = k]). *)

val tid : t -> Ids.Tid.t
(** [tid ψ] is the thread of the action, written [tid(ψ)] in the paper.
    Raises [Invalid_argument] on a {!Crash} marker. *)

val oid : t -> Ids.Oid.t
(** [oid ψ] is the object of the action, written [oid(ψ)]. Raises
    [Invalid_argument] on a {!Crash} marker. *)

val fid : t -> Ids.Fid.t
(** [fid ψ] is the method of the action, written [fid(ψ)]. Raises
    [Invalid_argument] on a {!Crash} marker. *)

val is_inv : t -> bool
val is_res : t -> bool
val is_crash : t -> bool

(** [matches ~inv ~res] holds when [res] is a candidate matching response for
    [inv]: same thread, object and method. *)
val matches : inv:t -> res:t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val show : t -> string
