open Ids

(* ----------------------------------------------------- value parsing -- *)

exception Parse_error of string

(* Adversarial-input bounds. The parsers below are exposed to the network
   by the streaming service ([Service.Core]), so both the per-line byte
   budget and the value-nesting depth are hard limits with structured
   errors: an unbounded line would let one frame hold the whole daemon's
   memory, and unbounded nesting turns the recursive-descent value parser
   into a stack overflow (a crash, not an [Error]). *)
let max_line_length = 4096
let max_value_depth = 64

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while peek c = Some ' ' || peek c = Some '\t' do
    advance c
  done

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> raise (Parse_error (Fmt.str "expected '%c', found '%c'" ch x))
  | None -> raise (Parse_error (Fmt.str "expected '%c', found end of input" ch))

let looking_at c s =
  let n = String.length s in
  c.pos + n <= String.length c.text && String.sub c.text c.pos n = s

let eat c s =
  if looking_at c s then begin
    c.pos <- c.pos + String.length s;
    true
  end
  else false

let rec parse_value_at ?(depth = 0) c =
  if depth > max_value_depth then
    raise
      (Parse_error
         (Fmt.str "value nesting deeper than %d levels" max_value_depth));
  let parse_value_at c = parse_value_at ~depth:(depth + 1) c in
  skip_ws c;
  match peek c with
  | None -> raise (Parse_error "expected a value, found end of input")
  | Some '(' ->
      advance c;
      skip_ws c;
      if eat c ")" then Value.unit
      else begin
        let a = parse_value_at c in
        expect c ',';
        let b = parse_value_at c in
        expect c ')';
        Value.pair a b
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if eat c "]" then Value.list []
      else begin
        let rec elems acc =
          let v = parse_value_at c in
          skip_ws c;
          if eat c ";" then elems (v :: acc)
          else begin
            expect c ']';
            List.rev (v :: acc)
          end
        in
        Value.list (elems [])
      end
  | Some '"' ->
      advance c;
      let start = c.pos in
      let rec scan () =
        match peek c with
        | Some '"' ->
            let s = String.sub c.text start (c.pos - start) in
            advance c;
            Value.str s
        | Some _ ->
            advance c;
            scan ()
        | None -> raise (Parse_error "unterminated string")
      in
      scan ()
  | Some _ when looking_at c "true" && eat c "true" -> Value.bool true
  | Some _ when looking_at c "false" && eat c "false" -> Value.bool false
  | Some ('-' | '0' .. '9') ->
      let start = c.pos in
      if peek c = Some '-' then advance c;
      let rec digits () =
        match peek c with
        | Some '0' .. '9' ->
            advance c;
            digits ()
        | _ -> ()
      in
      digits ();
      let s = String.sub c.text start (c.pos - start) in
      if s = "" || s = "-" then raise (Parse_error "expected digits");
      (* [int_of_string] raises [Failure] past [max_int]; a fuzzed digit
         string must come back as a structured error, not an exception *)
      (match int_of_string_opt s with
      | Some n -> Value.int n
      | None -> raise (Parse_error (Fmt.str "integer out of range: %s" s)))
  | Some ch -> raise (Parse_error (Fmt.str "unexpected character '%c'" ch))

let parse_value s =
  let c = { text = s; pos = 0 } in
  try
    let v = parse_value_at c in
    skip_ws c;
    if c.pos < String.length s then
      Error (Fmt.str "trailing input after value: %S" (String.sub s c.pos (String.length s - c.pos)))
    else Ok v
  with Parse_error msg -> Error msg

let print_value = Value.show

(* --------------------------------------------------- history parsing -- *)

let parse_tid s =
  if String.length s >= 2 && s.[0] = 't' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n when n >= 0 -> Ok (Tid.of_int n)
    | _ -> Error (Fmt.str "bad thread id %S" s)
  else Error (Fmt.str "bad thread id %S (expected tN)" s)

let split_target s =
  match String.rindex_opt s '.' with
  | Some i when i > 0 && i < String.length s - 1 ->
      Ok (Oid.v (String.sub s 0 i), Fid.v (String.sub s (i + 1) (String.length s - i - 1)))
  | _ -> Error (Fmt.str "bad target %S (expected object.method)" s)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_action line =
  let parts =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  match parts with
  | [ "crash"; epoch_s ] -> (
      match int_of_string_opt epoch_s with
      | Some epoch when epoch >= 1 -> Ok (Action.crash ~epoch)
      | _ -> Error (Fmt.str "bad crash epoch %S (expected a positive integer)" epoch_s))
  | tid_s :: kind :: target :: rest -> (
      let value_s = String.concat " " rest in
      match (parse_tid tid_s, split_target target, parse_value value_s) with
      | Ok tid, Ok (oid, fid), Ok v -> (
          match kind with
          | "inv" -> Ok (Action.inv ~tid ~oid ~fid v)
          | "res" -> Ok (Action.res ~tid ~oid ~fid v)
          | _ -> Error (Fmt.str "bad action kind %S (expected inv or res)" kind))
      | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
  | _ -> Error "expected: <tid> inv|res <object.method> <value>"

let line_too_long line =
  if String.length line > max_line_length then
    Some
      (Fmt.str "line too long (%d bytes, max %d)" (String.length line)
         max_line_length)
  else None

let parse_lines text ~f =
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match line_too_long line with
        | Some msg -> Error (Fmt.str "line %d: %s" n msg)
        | None ->
            let body = String.trim (strip_comment line) in
            if body = "" then go (n + 1) acc rest
            else begin
              match f body with
              | Ok x -> go (n + 1) (x :: acc) rest
              | Error msg -> Error (Fmt.str "line %d: %s" n msg)
            end)
  in
  go 1 [] lines

let parse_history text =
  Result.map History.of_list (parse_lines text ~f:parse_action)

let print_action a =
  let target oid fid = Fmt.str "%a.%a" Oid.pp oid Fid.pp fid in
  match a with
  | Action.Inv { tid; oid; fid; arg } ->
      Fmt.str "%a inv %s %s" Tid.pp tid (target oid fid) (Value.show arg)
  | Action.Res { tid; oid; fid; ret } ->
      Fmt.str "%a res %s %s" Tid.pp tid (target oid fid) (Value.show ret)
  | Action.Crash { epoch } -> Fmt.str "crash %d" epoch

let print_history h =
  String.concat "\n" (List.map print_action (History.to_list h)) ^ "\n"

(* ----------------------------------------------------- trace parsing -- *)

(* one element: OID: (tN, fid(arg) => ret) (tN, fid(arg) => ret) ... *)
let parse_op_at c ~oid =
  expect c '(';
  skip_ws c;
  let start = c.pos in
  let rec to_comma () =
    match peek c with
    | Some ',' -> ()
    | Some _ ->
        advance c;
        to_comma ()
    | None -> raise (Parse_error "expected ','")
  in
  to_comma ();
  let tid_s = String.trim (String.sub c.text start (c.pos - start)) in
  let tid =
    match parse_tid tid_s with Ok t -> t | Error e -> raise (Parse_error e)
  in
  expect c ',';
  skip_ws c;
  let fstart = c.pos in
  let rec to_paren () =
    match peek c with
    | Some '(' -> ()
    | Some _ ->
        advance c;
        to_paren ()
    | None -> raise (Parse_error "expected '('")
  in
  to_paren ();
  let fid = Fid.v (String.trim (String.sub c.text fstart (c.pos - fstart))) in
  expect c '(';
  let arg = parse_value_at c in
  expect c ')';
  skip_ws c;
  if not (eat c "=>") then raise (Parse_error "expected '=>'");
  let ret = parse_value_at c in
  expect c ')';
  Op.v ~tid ~oid ~fid ~arg ~ret

let parse_element line =
  match String.index_opt line ':' with
  | None -> Error "expected 'object: (op) (op) ...'"
  | Some i when String.trim (String.sub line 0 i) = "" ->
      Error "empty object name before ':'"
  | Some i -> (
      let oid = Oid.v (String.trim (String.sub line 0 i)) in
      let c = { text = line; pos = i + 1 } in
      try
        let rec ops acc =
          skip_ws c;
          if c.pos >= String.length line then List.rev acc
          else ops (parse_op_at c ~oid :: acc)
        in
        match ops [] with
        | [] -> Error "empty element"
        | ops -> Ok (Ca_trace.element oid ops)
      with
      | Parse_error msg -> Error msg
      | Invalid_argument msg -> Error msg)

let parse_trace text = parse_lines text ~f:parse_element

let print_element e =
  let oid = Ca_trace.element_oid e in
  let op (o : Op.t) =
    Fmt.str "(%a, %a(%s) => %s)" Tid.pp o.tid Fid.pp o.fid (Value.show o.arg)
      (Value.show o.ret)
  in
  Fmt.str "%a: %s" Oid.pp oid
    (String.concat " " (List.map op (Ca_trace.element_ops e)))

let print_trace tr = String.concat "\n" (List.map print_element tr) ^ "\n"

let load_history path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_history text
  | exception Sys_error msg -> Error msg
