open Ids

type t = Action.t array

type entry = {
  id : int;
  tid : Tid.t;
  oid : Oid.t;
  fid : Fid.t;
  arg : Value.t;
  ret : Value.t option;
  inv_index : int;
  res_index : int option;
  era : int;  (* crash markers before the invocation *)
}

let empty = [||]
let of_list = Array.of_list
let to_list = Array.to_list

(* Builders that accumulate newest-first (the runner's history) convert
   here without materialising the re-reversed list: fill backwards. *)
let of_rev_list = function
  | [] -> [||]
  | x :: _ as l ->
      let a = Array.make (List.length l) x in
      let rec fill i = function
        | [] -> ()
        | x :: tl ->
            a.(i) <- x;
            fill (i - 1) tl
      in
      fill (Array.length a - 1) l;
      a
let append h a = Array.append h [| a |]
let length = Array.length
let nth h i = h.(i)

let of_ops ops =
  let actions =
    List.concat_map
      (fun (o : Op.t) ->
        [
          Action.inv ~tid:o.tid ~oid:o.oid ~fid:o.fid o.arg;
          Action.res ~tid:o.tid ~oid:o.oid ~fid:o.fid o.ret;
        ])
      ops
  in
  of_list actions

(* Scan the history, pairing every response with the unique pending
   invocation of its thread. A crash marker cuts off every open invocation
   (the wiped threads never respond, so those calls stay pending) and opens
   the next era. Returns the entries in invocation order, or an error
   describing the first well-formedness violation. *)
let scan (h : t) : (entry list, string) result =
  let exception Bad of string in
  let open_inv : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let acc = ref [] in
  let era = ref 0 in
  try
    Array.iteri
      (fun i a ->
        match a with
        | Action.Crash { epoch } ->
            if epoch <> !era + 1 then
              raise
                (Bad
                   (Fmt.str "action %d: crash marker #%d out of order (expected #%d)"
                      i epoch (!era + 1)));
            Hashtbl.reset open_inv;
            era := epoch
        | Action.Inv { tid = t; oid; fid; arg } ->
            let tid = Tid.to_int t in
            if Hashtbl.mem open_inv tid then
              raise (Bad (Fmt.str "action %d: thread %a invokes while pending" i Tid.pp t));
            Hashtbl.replace open_inv tid i;
            acc :=
              {
                id = i;
                tid = t;
                oid;
                fid;
                arg;
                ret = None;
                inv_index = i;
                res_index = None;
                era = !era;
              }
              :: !acc
        | Action.Res { tid = t; oid; fid; ret } -> (
            let tid = Tid.to_int t in
            match Hashtbl.find_opt open_inv tid with
            | None ->
                raise (Bad (Fmt.str "action %d: thread %a responds with no pending invocation" i Tid.pp t))
            | Some j ->
                let matching =
                  match h.(j) with
                  | Action.Inv { oid = o'; fid = f'; _ } -> Oid.equal o' oid && Fid.equal f' fid
                  | Action.Res _ | Action.Crash _ -> false
                in
                if not matching then
                  raise (Bad (Fmt.str "action %d: response does not match invocation at %d" i j));
                Hashtbl.remove open_inv tid;
                acc :=
                  List.map
                    (fun e ->
                      if e.id = j then { e with ret = Some ret; res_index = Some i } else e)
                    !acc))
      h;
    Ok (List.rev !acc)
  with Bad reason -> Error reason

let validate h = Result.map (fun _ -> ()) (scan h)
let is_well_formed h = Result.is_ok (scan h)

let entries h =
  match scan h with
  | Ok es -> es
  | Error reason -> invalid_arg ("History.entries: " ^ reason)

let pending h = List.filter (fun e -> e.res_index = None) (entries h)

let is_sequential h =
  is_well_formed h
  &&
  (* Alternation inv, res, inv, res, … starting with an invocation; a
     trailing invocation (a final pending operation) is permitted. A crash
     marker closes the pending invocation, if any, and restarts the
     alternation. *)
  let ok = ref true in
  let open_inv = ref None in
  Array.iter
    (fun a ->
      match a with
      | Action.Crash _ -> open_inv := None
      | Action.Inv _ ->
          if !open_inv <> None then ok := false else open_inv := Some a
      | Action.Res _ -> (
          match !open_inv with
          | Some i when Action.matches ~inv:i ~res:a -> open_inv := None
          | _ -> ok := false))
    h;
  !ok

let is_complete h =
  match scan h with
  | Error _ -> false
  | Ok es -> List.for_all (fun e -> e.res_index <> None) es

(* Projections keep the crash markers: a crash is visible to every thread
   and every object (it is a whole-system event). *)
let proj_thread h t =
  of_list
    (List.filter
       (fun a -> Action.is_crash a || Tid.equal (Action.tid a) t)
       (to_list h))

let proj_object h o =
  of_list
    (List.filter
       (fun a -> Action.is_crash a || Oid.equal (Action.oid a) o)
       (to_list h))

let threads h =
  to_list h
  |> List.filter_map (fun a -> if Action.is_crash a then None else Some (Action.tid a))
  |> List.sort_uniq Tid.compare

let objects h =
  to_list h
  |> List.filter_map (fun a -> if Action.is_crash a then None else Some (Action.oid a))
  |> List.sort_uniq Oid.compare

let crash_count h =
  Array.fold_left (fun n a -> if Action.is_crash a then n + 1 else n) 0 h

let eras h = crash_count h + 1

let op_of_entry e =
  match e.ret with
  | None -> None
  | Some ret -> Some (Op.v ~tid:e.tid ~oid:e.oid ~fid:e.fid ~arg:e.arg ~ret)

let pending_of_entry e : Op.pending =
  { tid = e.tid; oid = e.oid; fid = e.fid; arg = e.arg }

(* A crash marker is a global synchronisation point: every operation of an
   earlier era precedes every operation of a later one, even when the
   earlier operation is pending (it can only have taken effect before the
   crash that cut it off). Within one era the order is the classic one. *)
let precedes a b =
  a.era < b.era
  || (a.era = b.era
     && match a.res_index with None -> false | Some r -> r < b.inv_index)

let concurrent a b = (not (precedes a b)) && not (precedes b a)

(* Insert each response at the end of its era: just before the crash marker
   closing era [k] for a pair [(k, r)], or at the very end for the final
   era. Appending blindly at the end would orphan a pre-crash response —
   the crash marker resets the pending set, so a response after it has no
   invocation to answer. *)
let with_responses base resps =
  let era = ref 0 in
  let out = ref [] in
  List.iter
    (fun a ->
      (match a with
      | Action.Crash { epoch } ->
          List.iter
            (fun (k, r) -> if k = epoch - 1 then out := r :: !out)
            resps;
          era := epoch
      | Action.Inv _ | Action.Res _ -> ());
      out := a :: !out)
    base;
  List.iter (fun (k, r) -> if k = !era then out := r :: !out) resps;
  of_list (List.rev !out)

(* Enumerate completions: every pending invocation is either dropped or
   completed with one of its candidate responses appended at the end. *)
let completions ~responses ?(max = 10_000) h =
  let pend = pending h in
  let base = to_list h in
  let choices =
    List.map
      (fun e ->
        let p = pending_of_entry e in
        let keep =
          List.map
            (fun ret ->
              `Complete (e.era, Action.res ~tid:e.tid ~oid:e.oid ~fid:e.fid ret))
            (responses p)
        in
        `Drop e.id :: keep)
      pend
  in
  (* Cartesian product over per-pending choices, lazily. *)
  let rec product = function
    | [] -> Seq.return []
    | cs :: rest ->
        Seq.concat_map
          (fun pick -> Seq.map (fun tail -> pick :: tail) (product rest))
          (List.to_seq cs)
  in
  let build picks =
    let dropped =
      List.filter_map (function `Drop id -> Some id | `Complete _ -> None) picks
    in
    let appended =
      List.filter_map (function `Complete (k, a) -> Some (k, a) | `Drop _ -> None) picks
    in
    let kept =
      List.filteri (fun i _ -> not (List.mem i dropped)) base
    in
    with_responses kept appended
  in
  Seq.take max (Seq.map build (product choices))

(* ------------------------------------------------- canonical form ----- *)

(* Schedule-interleaving normal form. Swapping two {e adjacent} actions of
   a history preserves the entries, the era structure and the real-time
   order [precedes] exactly when the two actions are of the same kind —
   both invocations or both responses (necessarily of different threads:
   adjacent same-kind actions of one thread are ill-formed). A response at
   index [r] precedes an invocation at index [i] iff [r < i], and a swap of
   two invocations (or two responses) moves no response across an
   invocation; an inv/res swap, by contrast, can create or destroy a
   [precedes] pair, and nothing may cross a crash marker (eras would
   change). The canonical form therefore sorts each maximal run of
   same-kind actions with {!Action.compare} — crash markers are hard run
   boundaries — reaching a unique representative of the equivalence class
   of histories that differ only by such swaps. Two schedules of the same
   client that produce the same operations with the same concurrency
   structure canonicalize to the same history, which is what makes the
   canonical key usable as a verdict-cache key ({!Verdict_cache}): every
   checker verdict (and its rejection reason, which depends only on the
   specification name and the crash structure) is invariant under the
   swaps above. Thread/object identifiers are already deterministic across
   runs of one client, so no renaming is needed. *)
(* In-place insertion sort of [a.(lo..hi-1)]: the maximal same-kind runs
   it is applied to are short (bounded by the thread count), where
   insertion sort beats [Array.sort] and allocates nothing. *)
let sort_range a lo hi =
  for i = lo + 1 to hi - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= lo && Action.compare a.(!j) x > 0 do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

let canonicalize h =
  let out = Array.copy h in
  let n = Array.length out in
  let same_kind a b =
    match (a, b) with
    | Action.Inv _, Action.Inv _ | Action.Res _, Action.Res _ -> true
    | _, _ -> false
  in
  let i = ref 0 in
  while !i < n do
    match out.(!i) with
    | Action.Crash _ -> incr i
    | a ->
        let j = ref (!i + 1) in
        while !j < n && same_kind a out.(!j) do incr j done;
        sort_range out !i !j;
        i := !j
  done;
  out

(* The key is built with a plain [Buffer] rather than [Action.show]: the
   cache pays the key cost on every outcome, hit or miss, so a Fmt-based
   key would cost as much as the checker call it saves. Strings are
   netstring-style length-prefixed, so distinct actions never collide. *)
let add_str buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let rec add_value buf v =
  match (v : Value.t) with
  | Unit -> Buffer.add_char buf 'u'
  | Bool true -> Buffer.add_char buf 'T'
  | Bool false -> Buffer.add_char buf 'F'
  | Int n ->
      Buffer.add_char buf 'i';
      Buffer.add_string buf (string_of_int n)
  | Str s ->
      Buffer.add_char buf 's';
      add_str buf s
  | Pair (a, b) ->
      Buffer.add_char buf 'p';
      add_value buf a;
      add_value buf b
  | List vs ->
      Buffer.add_char buf 'l';
      Buffer.add_string buf (string_of_int (List.length vs));
      Buffer.add_char buf ':';
      List.iter (add_value buf) vs

let add_action buf a =
  match (a : Action.t) with
  | Inv { tid; oid; fid; arg } ->
      Buffer.add_char buf 'I';
      Buffer.add_string buf (string_of_int (Tid.to_int tid));
      add_str buf (Oid.to_string oid);
      add_str buf (Fid.to_string fid);
      add_value buf arg
  | Res { tid; oid; fid; ret } ->
      Buffer.add_char buf 'R';
      Buffer.add_string buf (string_of_int (Tid.to_int tid));
      add_str buf (Oid.to_string oid);
      add_str buf (Fid.to_string fid);
      add_value buf ret
  | Crash { epoch } ->
      Buffer.add_char buf 'C';
      Buffer.add_string buf (string_of_int epoch)

let canonical_key h =
  let c = canonicalize h in
  let buf = Buffer.create (16 * Array.length c + 16) in
  Array.iter
    (fun a ->
      add_action buf a;
      Buffer.add_char buf '\n')
    c;
  Buffer.contents buf

let pp ppf h =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Action.pp) (to_list h)

let show h = Fmt.str "%a" pp h

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Action.equal a b

let canonical_equal a b = equal (canonicalize a) (canonicalize b)
