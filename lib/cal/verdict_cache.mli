(** A canonical-history verdict cache, shared across worker domains.

    Exploration delivers many schedules whose histories differ only by the
    interleaving of adjacent same-kind actions; {!History.canonical_key}
    collapses each such class to one key, and this cache stores the
    checker verdict for the class so it is computed once. The shared
    level is sharded and each shard is protected by its own [Mutex], so
    domains of the parallel explorer ({!Conc.Par_explore}) share it
    safely with short, mostly uncontended critical sections. When the
    cache is unbounded (the exploration default), each domain
    additionally keeps a private [Domain.DLS] front table duplicating
    the verdicts it has already seen, so repeat lookups — the vast
    majority under canonical-class collapse — take no lock and no atomic
    at all; the per-domain hit counters are folded into {!hits}. Bounded
    caches skip the front tables so {!size} and eviction stay exact.

    A cache instance is meant to live for one check invocation (one
    specification, one checker mode): the caller builds keys that are
    unique within that scope — typically
    [History.canonical_key h ^ crashed-set ^ checker-tag]. Rejection
    {e reasons} of the checkers depend only on the specification name and
    the crash structure of the history, both canonical-form-invariant, so
    caching the full [(unit, string) result] verdict is sound. *)

type verdict = (unit, string) result

type t

val create : ?shards:int -> ?capacity:int -> unit -> t
(** A fresh empty cache with [shards] (default 16) independently locked
    shards. [capacity] bounds the total number of stored verdicts:
    each shard evicts beyond its slice of the budget in insertion (FIFO)
    order. Eviction is verdict-transparent — re-lookups recompute the
    same deterministic verdict — so bounding only trades recomputation
    for memory; long-running callers (the streaming service) should
    bound, one-shot exploration need not. Small capacities reduce the
    shard count (each shard keeps at least four slots) so hash skew
    cannot evict far below the budget. *)

val find_or_compute : t -> key:string -> (unit -> verdict) -> verdict
(** [find_or_compute t ~key compute] returns the cached verdict for
    [key], or runs [compute ()] (outside any lock — it may run more than
    once under a parallel race, which is benign for deterministic
    verdicts), stores and returns it. *)

val hits : t -> int
(** Lookups answered from the cache — shared-table hits plus every
    domain's private front-table hits. Exact once the worker domains
    have joined (a concurrent reader may see a slightly stale sum). *)

val misses : t -> int
(** Lookups that ran [compute]. *)

val evictions : t -> int
(** Entries dropped to stay within [capacity] (0 when unbounded). *)

val size : t -> int
(** Distinct keys currently stored. *)
