type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list
[@@deriving eq, ord]

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Str s -> Fmt.pf ppf "%S" s
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | List vs -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") pp) vs

let show v = Fmt.str "%a" pp v
let unit = Unit
let bool b = Bool b
let int n = Int n
let str s = Str s
let pair a b = Pair (a, b)
let list vs = List vs
let ok v = Pair (Bool true, v)
let fail v = Pair (Bool false, v)
let timeout v = Pair (Str "timeout", v)
let cancelled v = Pair (Str "cancelled", v)
let is_timeout = function Pair (Str "timeout", _) -> true | _ -> false
let is_cancelled = function Pair (Str "cancelled", _) -> true | _ -> false

let to_bool = function
  | Bool b -> b
  | v -> invalid_arg (Fmt.str "Value.to_bool: %a" pp v)

let to_int = function
  | Int n -> n
  | v -> invalid_arg (Fmt.str "Value.to_int: %a" pp v)

let to_pair = function
  | Pair (a, b) -> (a, b)
  | v -> invalid_arg (Fmt.str "Value.to_pair: %a" pp v)

let rec subvalues v =
  v
  ::
  (match v with
  | Unit | Bool _ | Int _ | Str _ -> []
  | Pair (a, b) -> subvalues a @ subvalues b
  | List vs -> List.concat_map subvalues vs)

let rec hash = function
  | Unit -> 17
  | Bool b -> if b then 31 else 37
  | Int n -> 41 * n + 3
  | Str s -> Hashtbl.hash s
  | Pair (a, b) -> (hash a * 131071) + hash b
  | List vs -> List.fold_left (fun acc v -> (acc * 8191) + hash v) 53 vs
