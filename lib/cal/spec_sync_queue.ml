open Ids

let fid_put = Fid.v "put"
let fid_take = Fid.v "take"

let put_op ~oid t v ~ok = Op.v ~tid:t ~oid ~fid:fid_put ~arg:v ~ret:(Value.bool ok)

let take_op ~oid t = function
  | Some v -> Op.v ~tid:t ~oid ~fid:fid_take ~arg:Value.unit ~ret:(Value.ok v)
  | None ->
      Op.v ~tid:t ~oid ~fid:fid_take ~arg:Value.unit ~ret:(Value.fail (Value.int 0))

let rendezvous ~oid t v t' =
  Ca_trace.element oid [ put_op ~oid t v ~ok:true; take_op ~oid t' (Some v) ]

let put_timeout ~oid t v =
  Ca_trace.singleton
    (Op.v ~tid:t ~oid ~fid:fid_put ~arg:v ~ret:(Value.timeout v))

let take_timeout ~oid t =
  Ca_trace.singleton
    (Op.v ~tid:t ~oid ~fid:fid_take ~arg:Value.unit
       ~ret:(Value.timeout Value.unit))

let legal_element e =
  match Ca_trace.element_ops e with
  | [ o ] ->
      (Fid.equal o.fid fid_put
      && (Value.equal o.ret (Value.bool false)
         || Value.equal o.ret (Value.timeout o.arg)))
      || Fid.equal o.fid fid_take
         && (Value.equal o.ret (Value.fail (Value.int 0))
            || Value.equal o.ret (Value.timeout Value.unit))
  | [ a; b ] ->
      (* canonical op order is by Op.compare, so identify roles by fid *)
      let put, take =
        if Fid.equal a.fid fid_put then (a, b) else (b, a)
      in
      Fid.equal put.fid fid_put && Fid.equal take.fid fid_take
      && Value.equal put.ret (Value.bool true)
      && Value.equal take.ret (Value.ok put.arg)
  | _ -> false

let spec ?(oid = Oid.v "SQ") () =
  Spec.make
    ~name:(Fmt.str "sync-queue(%a)" Oid.pp oid)
    ~owns:(Oid.equal oid) ~max_element_size:2 ~init:()
    ~step:(fun () e -> if legal_element e then Some () else None)
    ~key:(fun () -> "")
    ~resume:(function "" -> Some () | _ -> None)
    ~candidates:(fun () ~universe (p : Op.pending) ->
      if Fid.equal p.fid fid_put then
        [ Value.bool true; Value.bool false; Value.timeout p.arg ]
      else if Fid.equal p.fid fid_take then
        Value.fail (Value.int 0)
        :: Value.timeout Value.unit
        :: List.map Value.ok universe
      else [])
    ()
