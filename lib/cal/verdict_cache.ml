(* A sharded, mutex-protected verdict cache shared across worker domains.

   Keys are caller-built strings (canonical history keys, possibly
   extended with crashed-thread sets and a checker tag); values are the
   per-outcome verdicts of the obligation checkers. Sharding by key hash
   keeps the critical sections short and mostly uncontended; a miss
   computes {e outside} the shard lock, so two domains may occasionally
   both compute the same verdict — harmless, since verdicts are
   deterministic functions of the key, and the first insert wins. *)

type verdict = (unit, string) result

type shard = { lock : Mutex.t; table : (string, verdict) Hashtbl.t }

type t = {
  shards : shard array;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create ?(shards = 16) () =
  {
    shards =
      Array.init (max 1 shards) (fun _ ->
          { lock = Mutex.create (); table = Hashtbl.create 64 });
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let shard_of t key =
  t.shards.(Hashtbl.hash key mod Array.length t.shards)

let find_or_compute t ~key compute =
  let s = shard_of t key in
  Mutex.lock s.lock;
  match Hashtbl.find_opt s.table key with
  | Some v ->
      Mutex.unlock s.lock;
      Atomic.incr t.hits;
      v
  | None ->
      Mutex.unlock s.lock;
      let v = compute () in
      Atomic.incr t.misses;
      Mutex.lock s.lock;
      if not (Hashtbl.mem s.table key) then Hashtbl.add s.table key v;
      Mutex.unlock s.lock;
      v

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses

let size t =
  Array.fold_left (fun n s -> n + Hashtbl.length s.table) 0 t.shards
