(* A sharded, mutex-protected verdict cache shared across worker domains.

   Keys are caller-built strings (canonical history keys, possibly
   extended with crashed-thread sets and a checker tag); values are the
   per-outcome verdicts of the obligation checkers. Sharding by key hash
   keeps the critical sections short and mostly uncontended; a miss
   computes {e outside} the shard lock, so two domains may occasionally
   both compute the same verdict — harmless, since verdicts are
   deterministic functions of the key, and the first insert wins.

   An optional capacity bounds the cache for long-running callers (the
   streaming service): each shard gets its slice of the budget and evicts
   in insertion (FIFO) order. Eviction is verdict-transparent — a later
   lookup of an evicted key recomputes the same deterministic verdict —
   so it only costs recomputation, never correctness. *)

type verdict = (unit, string) result

type shard = {
  lock : Mutex.t;
  table : (string, verdict) Hashtbl.t;
  order : string Queue.t;  (* insertion order, only kept when bounded *)
  cap : int option;  (* this shard's slice of the capacity *)
}

type t = {
  shards : shard array;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

let create ?(shards = 16) ?capacity () =
  let shards = max 1 shards in
  (* Small capacities collapse the shard count (at least 4 entries per
     shard): sharding exists for lock contention, and slicing a tiny
     budget 16 ways would let hash skew evict far below the budget. *)
  let shards =
    match capacity with Some c -> max 1 (min shards (c / 4)) | None -> shards
  in
  let cap i =
    match capacity with
    | None -> None
    | Some c ->
        let base = max 1 c / shards and extra = max 1 c mod shards in
        Some (base + if i < extra then 1 else 0)
  in
  {
    shards =
      Array.init shards (fun i ->
          {
            lock = Mutex.create ();
            table = Hashtbl.create 64;
            order = Queue.create ();
            cap = cap i;
          });
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let shard_of t key =
  t.shards.(Hashtbl.hash key mod Array.length t.shards)

let insert t s key v =
  if not (Hashtbl.mem s.table key) then begin
    Hashtbl.add s.table key v;
    match s.cap with
    | None -> ()
    | Some cap ->
        Queue.push key s.order;
        while Hashtbl.length s.table > cap do
          let victim = Queue.pop s.order in
          Hashtbl.remove s.table victim;
          Atomic.incr t.evictions
        done
  end

let find_or_compute t ~key compute =
  let s = shard_of t key in
  Mutex.lock s.lock;
  match Hashtbl.find_opt s.table key with
  | Some v ->
      Mutex.unlock s.lock;
      Atomic.incr t.hits;
      v
  | None ->
      Mutex.unlock s.lock;
      let v = compute () in
      Atomic.incr t.misses;
      Mutex.lock s.lock;
      insert t s key v;
      Mutex.unlock s.lock;
      v

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let evictions t = Atomic.get t.evictions

let size t =
  Array.fold_left (fun n s -> n + Hashtbl.length s.table) 0 t.shards
