(* A two-level verdict cache shared across worker domains.

   Keys are caller-built strings (canonical history keys, possibly
   extended with crashed-thread sets and a checker tag); values are the
   per-outcome verdicts of the obligation checkers.

   L2 — always present — is the shared sharded, mutex-protected table.
   Sharding by key hash keeps the critical sections short and mostly
   uncontended; a miss computes {e outside} the shard lock, so two
   domains may occasionally both compute the same verdict — harmless,
   since verdicts are deterministic functions of the key, and the first
   insert wins.

   L1 — only when the cache is unbounded — is a per-domain
   [Domain.DLS] hash table in front of L2. Parallel exploration delivers
   the same canonical class from many domains; once a domain has seen a
   verdict it re-reads it from its own L1 with no lock and no atomic,
   taking the shard mutexes off the hot lookup path entirely. An L1 is
   a plain duplicate of L2 entries, so it needs no invalidation; per-
   domain hit counters are registered at first use and summed into
   {!hits}. Bounded caches (the streaming service) skip L1: duplicated
   entries would make the capacity accounting lie, and eviction could
   not reach the per-domain copies.

   An optional capacity bounds the cache for long-running callers: each
   shard gets its slice of the budget and evicts in insertion (FIFO)
   order. Eviction is verdict-transparent — a later lookup of an evicted
   key recomputes the same deterministic verdict — so it only costs
   recomputation, never correctness. *)

type verdict = (unit, string) result

type shard = {
  lock : Mutex.t;
  table : (string, verdict) Hashtbl.t;
  order : string Queue.t;  (* insertion order, only kept when bounded *)
  cap : int option;  (* this shard's slice of the capacity *)
}

(* One domain's private L1: owner-only access, so a mutable int hit
   counter suffices. Other domains read [l_hits] only through {!hits},
   which tolerates a stale value (callers read stats after joining). *)
type local = { l_table : (string, verdict) Hashtbl.t; mutable l_hits : int }

type t = {
  shards : shard array;
  hits : int Atomic.t;       (* L2 hits *)
  misses : int Atomic.t;
  evictions : int Atomic.t;
  l1 : local Domain.DLS.key option;  (* [None] when bounded *)
  l1_registry : local list ref;      (* under [l1_lock] *)
  l1_lock : Mutex.t;
}

let create ?(shards = 16) ?capacity () =
  let shards = max 1 shards in
  (* Small capacities collapse the shard count (at least 4 entries per
     shard): sharding exists for lock contention, and slicing a tiny
     budget 16 ways would let hash skew evict far below the budget. *)
  let shards =
    match capacity with Some c -> max 1 (min shards (c / 4)) | None -> shards
  in
  let cap i =
    match capacity with
    | None -> None
    | Some c ->
        let base = max 1 c / shards and extra = max 1 c mod shards in
        Some (base + if i < extra then 1 else 0)
  in
  let l1_lock = Mutex.create () in
  let l1_registry = ref [] in
  let l1 =
    match capacity with
    | Some _ -> None
    | None ->
        Some
          (Domain.DLS.new_key (fun () ->
               let l = { l_table = Hashtbl.create 64; l_hits = 0 } in
               Mutex.lock l1_lock;
               l1_registry := l :: !l1_registry;
               Mutex.unlock l1_lock;
               l))
  in
  {
    shards =
      Array.init shards (fun i ->
          {
            lock = Mutex.create ();
            table = Hashtbl.create 64;
            order = Queue.create ();
            cap = cap i;
          });
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    l1;
    l1_registry;
    l1_lock;
  }

let shard_of t key =
  t.shards.(Hashtbl.hash key mod Array.length t.shards)

let insert t s key v =
  if not (Hashtbl.mem s.table key) then begin
    Hashtbl.add s.table key v;
    match s.cap with
    | None -> ()
    | Some cap ->
        Queue.push key s.order;
        while Hashtbl.length s.table > cap do
          let victim = Queue.pop s.order in
          Hashtbl.remove s.table victim;
          Atomic.incr t.evictions
        done
  end

let find_shared t ~key compute =
  let s = shard_of t key in
  Mutex.lock s.lock;
  match Hashtbl.find_opt s.table key with
  | Some v ->
      Mutex.unlock s.lock;
      Atomic.incr t.hits;
      v
  | None ->
      Mutex.unlock s.lock;
      let v = compute () in
      Atomic.incr t.misses;
      Mutex.lock s.lock;
      insert t s key v;
      Mutex.unlock s.lock;
      v

let find_or_compute t ~key compute =
  match t.l1 with
  | None -> find_shared t ~key compute
  | Some dls -> (
      let l = Domain.DLS.get dls in
      match Hashtbl.find_opt l.l_table key with
      | Some v ->
          l.l_hits <- l.l_hits + 1;
          v
      | None ->
          let v = find_shared t ~key compute in
          Hashtbl.add l.l_table key v;
          v)

let hits t =
  let l1 =
    Mutex.lock t.l1_lock;
    let n = List.fold_left (fun n l -> n + l.l_hits) 0 !(t.l1_registry) in
    Mutex.unlock t.l1_lock;
    n
  in
  Atomic.get t.hits + l1

let misses t = Atomic.get t.misses
let evictions t = Atomic.get t.evictions

let size t =
  Array.fold_left (fun n s -> n + Hashtbl.length s.table) 0 t.shards
