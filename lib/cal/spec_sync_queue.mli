(** Synchronous (handoff) queue CA-specification — the exchanger's second
    client in the paper (§2, citing Scherer–Lea–Scott). A producer and a
    consumer must {e meet}: a transfer is inherently a behaviour of two
    overlapping operations, so the synchronous queue is a CA-object.

    CA-elements:
    - [SQ.{(t, put(v) ⇒ true), (t', take() ⇒ (true, v))}] with [t ≠ t']:
      a successful rendezvous;
    - [SQ.{(t, put(v) ⇒ false)}] — a put that found no consumer;
    - [SQ.{(t, take() ⇒ (false, 0))}] — a take that found no producer;
    - [SQ.{(t, put(v) ⇒ ("timeout",v))}], [SQ.{(t, take() ⇒ ("timeout",()))}]
      — timed variants whose deadline expired before a partner arrived;
      always singletons, never half of a rendezvous. *)

val fid_put : Ids.Fid.t
val fid_take : Ids.Fid.t
val spec : ?oid:Ids.Oid.t -> unit -> Spec.t

val put_op : oid:Ids.Oid.t -> Ids.Tid.t -> Value.t -> ok:bool -> Op.t
val take_op : oid:Ids.Oid.t -> Ids.Tid.t -> Value.t option -> Op.t
val rendezvous : oid:Ids.Oid.t -> Ids.Tid.t -> Value.t -> Ids.Tid.t -> Ca_trace.element
(** [rendezvous ~oid t v t'] is the successful-transfer element where [t]
    puts [v] and [t'] takes it. *)

val put_timeout : oid:Ids.Oid.t -> Ids.Tid.t -> Value.t -> Ca_trace.element
val take_timeout : oid:Ids.Oid.t -> Ids.Tid.t -> Ca_trace.element
