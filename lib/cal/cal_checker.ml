type stats = { states_explored : int; memo_hits : int; drop_sets_tried : int }

type verdict =
  | Accepted of { trace : Ca_trace.t; completion : History.t; stats : stats }
  | Rejected of { reason : string; stats : stats }

(* Non-empty sublists of [xs] with at most [k] elements, each sublist in the
   original order. The enumeration order is part of the checker's contract
   (it decides which witness the search finds first): subsets containing
   the head come before subsets without it, exactly as the naive
   [with_x @ without] formulation — but built back-to-front onto an
   accumulator, so the cost is linear in the output size instead of
   quadratic in the [with_x] prefix lengths. *)
let subsets_up_to k xs =
  (* [go prefix_rev k xs tail] conses, in enumeration order, every subset
     [List.rev prefix_rev @ s] with [s] drawn from [xs], [|s| <= k], in
     front of [tail]. *)
  let rec go prefix_rev k xs tail =
    match xs with
    | [] -> List.rev prefix_rev :: tail
    | x :: rest ->
        let without = go prefix_rev k rest tail in
        if k = 0 then without else go (x :: prefix_rev) (k - 1) rest without
  in
  List.filter (fun s -> s <> []) (go [] k xs [])

(* All ways of assigning one candidate return to every pending entry of a
   tentative element. Produces lists aligned with [pendings]. *)
let rec ret_assignments = function
  | [] -> [ [] ]
  | cands :: rest ->
      List.concat_map
        (fun ret -> List.map (fun tail -> ret :: tail) (ret_assignments rest))
        cands

let universe_of_entries entries =
  let values =
    List.concat_map
      (fun (e : History.entry) ->
        Value.subvalues e.arg
        @ (match e.ret with None -> [] | Some r -> Value.subvalues r))
      entries
  in
  List.sort_uniq Value.compare values

let check ?crashed ~spec h =
  (match History.validate h with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Cal_checker.check: " ^ reason));
  let entries = Array.of_list (History.entries h) in
  let n = Array.length entries in
  if n > 62 then invalid_arg "Cal_checker.check: more than 62 operations";
  let universe = universe_of_entries (Array.to_list entries) in
  (* Crash-tolerant mode: only the pending operations of crashed threads
     may be dropped; a live thread's pending operation must be completed.
     Without [crashed] every pending operation is droppable (the classic
     completion construction). Durable mode composes with either: an
     operation pending at a {e system} crash (any era before the final
     one) either persisted — it is kept and must be explainable strictly
     before every later-era operation ({!History.precedes}) — or was lost,
     so it is always droppable. *)
  let last_era = History.eras h - 1 in
  let droppable (e : History.entry) =
    e.era < last_era
    ||
    match crashed with
    | None -> true
    | Some tids -> List.exists (Ids.Tid.equal e.tid) tids
  in
  let pending_ids =
    Array.to_list entries
    |> List.filter_map (fun (e : History.entry) ->
           if e.res_index = None && droppable e then Some e.id else None)
  in
  let entry_bit = Hashtbl.create 16 in
  Array.iteri (fun i (e : History.entry) -> Hashtbl.replace entry_bit e.id i) entries;
  let bit_of id = Hashtbl.find entry_bit id in
  (* Operation-level real-time order; pending operations precede nothing. *)
  let precedes i j = History.precedes entries.(i) entries.(j) in
  let preds =
    Array.init n (fun j ->
        List.filter (fun i -> precedes i j) (List.init n Fun.id))
  in
  let states_explored = ref 0 in
  let memo_hits = ref 0 in
  let drop_sets = ref 0 in
  let stats () =
    {
      states_explored = !states_explored;
      memo_hits = !memo_hits;
      drop_sets_tried = !drop_sets;
    }
  in
  (* Search one completion shape: [active] is the bitmask of operations kept
     (pending operations outside it are dropped). Returns the explaining
     trace (reversed) together with the chosen returns for kept pending
     operations. *)
  let search active =
    let failed = Hashtbl.create (Tuning.checker_table_size ~ops:n) in
    let chosen_rets = Hashtbl.create 8 in
    let rec dfs placed acc acc_trace =
      if placed = active then Some (List.rev acc_trace)
      else begin
        let memo_key = (placed, Spec.key acc) in
        if Hashtbl.mem failed memo_key then begin
          incr memo_hits;
          None
        end
        else begin
          incr states_explored;
          let avail =
            List.filter
              (fun i ->
                active land (1 lsl i) <> 0
                && placed land (1 lsl i) = 0
                && List.for_all
                     (fun p ->
                       active land (1 lsl p) = 0 || placed land (1 lsl p) <> 0)
                     preds.(i))
              (List.init n Fun.id)
          in
          (* Group by (object, era): a CA-element must never straddle a
             crash marker. The era-aware [precedes] already forces [avail]
             to be era-uniform (a later-era operation waits for every
             earlier-era one), but the key makes the invariant structural
             rather than a consequence of the search order. *)
          let by_oid =
            List.fold_left
              (fun groups i ->
                let key = (entries.(i).History.oid, entries.(i).History.era) in
                let cur = try List.assoc key groups with Not_found -> [] in
                (key, i :: cur) :: List.remove_assoc key groups)
              [] avail
          in
          let try_subset subset =
            let fixed, pend =
              List.partition (fun i -> entries.(i).History.ret <> None) subset
            in
            let fixed_ops =
              List.map (fun i -> Option.get (History.op_of_entry entries.(i))) fixed
            in
            let cand_lists =
              List.map
                (fun i ->
                  Spec.candidates acc ~universe
                    (History.pending_of_entry entries.(i)))
                pend
            in
            let try_assignment rets =
              let pend_ops =
                List.map2
                  (fun i ret ->
                    Op.of_pending (History.pending_of_entry entries.(i)) ~ret)
                  pend rets
              in
              let oid = entries.(List.hd subset).History.oid in
              let elem = Ca_trace.element oid (fixed_ops @ pend_ops) in
              match Spec.step acc elem with
              | None -> None
              | Some acc' ->
                  let placed' =
                    List.fold_left (fun m i -> m lor (1 lsl i)) placed subset
                  in
                  List.iter2 (fun i ret -> Hashtbl.replace chosen_rets i ret) pend rets;
                  let r = dfs placed' acc' (elem :: acc_trace) in
                  if r = None then
                    List.iter (fun i -> Hashtbl.remove chosen_rets i) pend;
                  r
            in
            List.find_map try_assignment (ret_assignments cand_lists)
          in
          let result =
            List.find_map
              (fun (_, group) ->
                List.find_map try_subset
                  (subsets_up_to spec.Spec.max_element_size group))
              by_oid
          in
          if result = None then Hashtbl.replace failed memo_key ();
          result
        end
      end
    in
    match dfs 0 spec.Spec.start [] with
    | None -> None
    | Some trace -> Some (trace, chosen_rets)
  in
  (* Enumerate drop subsets of pending invocations, fewest drops first: a
     completion that keeps more operations is a stronger witness. *)
  let p = List.length pending_ids in
  let full_mask = (1 lsl n) - 1 in
  let drop_masks =
    List.init (1 lsl p) Fun.id
    |> List.sort (fun a b ->
           (* fewer dropped operations first *)
           let pop x =
             let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
             go x 0
           in
           Int.compare (pop a) (pop b))
  in
  let result =
    List.find_map
      (fun dm ->
        incr drop_sets;
        let dropped_bits =
          List.filteri (fun i _ -> dm land (1 lsl i) <> 0) pending_ids
          |> List.fold_left (fun m id -> m lor (1 lsl bit_of id)) 0
        in
        let active = full_mask land lnot dropped_bits in
        Option.map (fun r -> (r, dropped_bits)) (search active))
      drop_masks
  in
  match result with
  | Some ((trace, chosen_rets), dropped_bits) ->
      (* Rebuild the completion: remove dropped invocations, append the
         chosen responses for kept pending operations. *)
      let dropped_ids =
        Array.to_list entries
        |> List.filter_map (fun (e : History.entry) ->
               if dropped_bits land (1 lsl bit_of e.id) <> 0 then Some e.id else None)
      in
      let kept_actions =
        History.to_list h
        |> List.filteri (fun idx _ -> not (List.mem idx dropped_ids))
      in
      let appended =
        Array.to_list entries
        |> List.filter_map (fun (e : History.entry) ->
               match Hashtbl.find_opt chosen_rets (bit_of e.id) with
               | Some ret ->
                   Some (e.era, Action.res ~tid:e.tid ~oid:e.oid ~fid:e.fid ret)
               | None -> None)
      in
      Accepted
        {
          trace;
          completion = History.with_responses kept_actions appended;
          stats = stats ();
        }
  | None ->
      Rejected
        {
          reason =
            Fmt.str "no %scompletion of the history is explained by any %s trace"
              (if crashed = None && History.crash_count h = 0 then ""
               else "crash-consistent ")
              spec.Spec.name;
          stats = stats ();
        }

let is_cal ?crashed ~spec h =
  match check ?crashed ~spec h with Accepted _ -> true | Rejected _ -> false

let pp_verdict ppf = function
  | Accepted { trace; stats; _ } ->
      Fmt.pf ppf "@[<v>ACCEPTED (states=%d, memo-hits=%d)@,witness: %a@]"
        stats.states_explored stats.memo_hits Ca_trace.pp trace
  | Rejected { reason; stats } ->
      Fmt.pf ppf "REJECTED (states=%d): %s" stats.states_explored reason
