open Ids

type round = { starting : Op.t list; continuing : Op.t list; ending : Op.t list }

type spec = {
  name : string;
  start_acceptor : acceptor;
  max_starts_per_round : int;
}

and acceptor = { a_step : round -> acceptor option; a_key : string }

let make_spec ~name ~init ~step ~key ~max_starts_per_round () =
  let rec acceptor s =
    { a_step = (fun r -> Option.map acceptor (step s r)); a_key = key s }
  in
  { name; start_acceptor = acceptor init; max_starts_per_round }

type verdict =
  | Interval_linearizable of {
      intervals : (History.entry * int * int) list;
      rounds : round list;
    }
  | Not_interval_linearizable of { reason : string }

(* Non-empty subsets of at most [k] elements. *)
let subsets_up_to k xs =
  let rec go k = function
    | [] -> [ [] ]
    | x :: rest ->
        let without = go k rest in
        let with_x = if k = 0 then [] else List.map (fun s -> x :: s) (go (k - 1) rest) in
        with_x @ without
  in
  go k xs

(* All subsets (for choosing which active operations end in a round). *)
let all_subsets xs = subsets_up_to (List.length xs) xs

let check ~spec h =
  (match History.validate h with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Interval_lin.check: " ^ reason));
  if not (History.is_complete h) then
    invalid_arg "Interval_lin.check: history must be complete";
  let entries = Array.of_list (History.entries h) in
  let n = Array.length entries in
  if n > 24 then invalid_arg "Interval_lin.check: more than 24 operations";
  let op_of = Array.map (fun e -> Option.get (History.op_of_entry e)) entries in
  let preds =
    Array.init n (fun j ->
        List.filter
          (fun i -> History.precedes entries.(i) entries.(j))
          (List.init n Fun.id))
  in
  let starts = Array.make n (-1) in
  let ends = Array.make n (-1) in
  let failed = Hashtbl.create (Tuning.checker_table_size ~ops:n) in
  (* state: [started] and [ended] masks; active = started \ ended. At each
     round: start a (possibly empty) set of ready unstarted ops — ready
     means all predecessors ended in strictly earlier rounds — and end a
     subset of the active ops, such that the round is non-empty. *)
  let full = (1 lsl n) - 1 in
  let rec search k started ended acc acc_rounds =
    if ended = full then Some (List.rev acc_rounds)
    else begin
      let memo_key = (started, ended, acc.a_key) in
      if Hashtbl.mem failed memo_key then None
      else begin
        let ready =
          List.filter
            (fun i ->
              started land (1 lsl i) = 0
              && List.for_all (fun p -> ended land (1 lsl p) <> 0) preds.(i))
            (List.init n Fun.id)
        in
        let active =
          List.filter
            (fun i -> started land (1 lsl i) <> 0 && ended land (1 lsl i) = 0)
            (List.init n Fun.id)
        in
        let start_choices =
          [] :: subsets_up_to spec.max_starts_per_round ready
          |> List.filter (fun s -> s <> [] || active <> [])
          |> List.sort_uniq compare
        in
        let try_choice (to_start, to_end) =
          if to_start = [] && to_end = [] then None
          else begin
            let started' =
              List.fold_left (fun m i -> m lor (1 lsl i)) started to_start
            in
            let ended' = List.fold_left (fun m i -> m lor (1 lsl i)) ended to_end in
            let r =
              {
                starting = List.map (fun i -> op_of.(i)) to_start;
                continuing =
                  List.filter_map
                    (fun i ->
                      if
                        started' land (1 lsl i) <> 0
                        && ended' land (1 lsl i) = 0
                        && not (List.mem i to_start)
                      then Some op_of.(i)
                      else None)
                    (List.init n Fun.id);
                ending = List.map (fun i -> op_of.(i)) to_end;
              }
            in
            match acc.a_step r with
            | None -> None
            | Some acc' ->
                List.iter (fun i -> starts.(i) <- k) to_start;
                List.iter (fun i -> ends.(i) <- k) to_end;
                let result = search (k + 1) started' ended' acc' (r :: acc_rounds) in
                if result = None then begin
                  List.iter (fun i -> starts.(i) <- -1) to_start;
                  List.iter (fun i -> ends.(i) <- -1) to_end
                end;
                result
          end
        in
        let result =
          List.find_map
            (fun to_start ->
              (* anything active or starting now may end now *)
              let endable = to_start @ active in
              List.find_map
                (fun to_end -> try_choice (to_start, to_end))
                (all_subsets endable))
            start_choices
        in
        if result = None then Hashtbl.replace failed memo_key ();
        result
      end
    end
  in
  match search 0 0 0 spec.start_acceptor [] with
  | Some rounds ->
      Interval_linearizable
        {
          intervals =
            List.init n (fun i -> (entries.(i), starts.(i), ends.(i)));
          rounds;
        }
  | None ->
      Not_interval_linearizable
        { reason = Fmt.str "no interval assignment satisfies %s" spec.name }

let is_interval_linearizable ~spec h =
  match check ~spec h with
  | Interval_linearizable _ -> true
  | Not_interval_linearizable _ -> false

(* ----------------------------------------------- example specifications *)

let fid_await = Fid.v "await"
let fid_tick = Fid.v "tick"
let fid_watch = Fid.v "watch"

let one_shot_barrier ~oid ~participants =
  (* state: how many have started, how many have ended; all must start
     before any ends, and each must return the participant count. *)
  let step (started, ended) r =
    let ok_op (o : Op.t) =
      Oid.equal o.oid oid && Fid.equal o.fid fid_await
      && Value.equal o.ret (Value.int participants)
    in
    if not (List.for_all ok_op (r.starting @ r.continuing @ r.ending)) then None
    else begin
      let started' = started + List.length r.starting in
      let ended' = ended + List.length r.ending in
      if started' > participants then None
      else if ended' > 0 && started' < participants then None
      else Some (started', ended')
    end
  in
  make_spec
    ~name:(Fmt.str "barrier(%d)" participants)
    ~init:(0, 0) ~step
    ~key:(fun (s, e) -> Fmt.str "%d/%d" s e)
    ~max_starts_per_round:participants ()

let observer_of_ticks ~oid =
  (* state: (watch ret if active, ticks seen while the watch is active).
     Only one watch at a time, for simplicity. *)
  let is_tick (o : Op.t) = Fid.equal o.fid fid_tick && Value.equal o.ret Value.unit in
  let is_watch (o : Op.t) = Fid.equal o.fid fid_watch in
  let step state r =
    if
      not
        (List.for_all
           (fun (o : Op.t) -> Oid.equal o.oid oid && (is_tick o || is_watch o))
           (r.starting @ r.continuing @ r.ending))
    then None
    else begin
      (* ticks are instantaneous: they must start and end in the same round *)
      let tick_ok =
        List.for_all
          (fun (o : Op.t) -> not (is_tick o) || List.exists (Op.equal o) r.ending)
          r.starting
        && List.for_all (fun (o : Op.t) -> not (is_tick o)) r.continuing
      in
      if not tick_ok then None
      else begin
        let ticks_here = List.length (List.filter is_tick r.starting) in
        let watch_starting = List.filter is_watch r.starting in
        let watch_ending = List.filter is_watch r.ending in
        match (state, watch_starting) with
        | None, [] -> if ticks_here > 0 then Some None else None
        | None, [ w ] ->
            let expected =
              match w.Op.ret with Value.Int k -> k | _ -> -1
            in
            if expected < 2 then None
            else begin
              let seen = ticks_here in
              if watch_ending <> [] then if seen = expected then Some None else None
              else Some (Some (expected, seen))
            end
        | Some (expected, seen), [] ->
            let seen' = seen + ticks_here in
            if seen' > expected then None
            else if watch_ending <> [] then
              if seen' = expected then Some None else None
            else if ticks_here = 0 && r.starting = [] && r.ending = [] then None
            else Some (Some (expected, seen'))
        | Some _, _ :: _ | None, _ :: _ :: _ -> None
      end
    end
  in
  make_spec ~name:"observer-of-ticks" ~init:None ~step
    ~key:(fun s ->
      match s with None -> "-" | Some (e, k) -> Fmt.str "%d/%d" k e)
    ~max_starts_per_round:2 ()
