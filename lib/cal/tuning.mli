(** Sizing heuristics for the search-side hash tables, in one place.

    Both the exploration engine ({!Conc.Explore}) and the checkers
    ({!Cal_checker}, {!Lin_checker}, {!Interval_lin}) memoize failed
    search states in hash tables. Their initial sizes are derived here
    from the parameters that drive the key population — fuel × threads
    for the schedule-tree fingerprint memo, the operation count for the
    checker state memos — instead of per-call-site magic literals. *)

val explore_memo_size : fuel:int -> threads:int -> int
(** Initial size for the explorer's fingerprint memo: proportional to
    [fuel × threads], clamped to [64, 8192]. *)

val checker_table_size : ops:int -> int
(** Initial size for a checker's failed-state memo over [ops]
    operations: [2^ops] clamped to [64, 8192]. *)

val verdict_cache_capacity : unit -> int option
(** The {!Verdict_cache} capacity bound from [CAL_VERDICT_CACHE_CAP]
    (a positive integer; unset, empty or invalid means unbounded).
    Exploration engines stay unbounded by default; long-running services
    set the variable to cap memo growth. *)

val witness_race_cap : unit -> int
(** Maximum racing step pairs printed per witness report
    ({!Verify.Obligations}'s renderers), from [CAL_WITNESS_RACE_CAP]
    (a non-negative integer; default [8]). The remainder is summarized
    as a count. *)

val explore_donation_min_height : unit -> int
(** Minimum remaining subtree height (fuel minus node depth) for a DFS
    node to be donated to an idle worker by the parallel explorer, from
    [CAL_EXPLORE_DONATE_MIN] (a non-negative integer; default [2]).
    Larger values make chunks coarser — fewer, bigger steals; [0] lets
    even pre-leaf nodes be donated. *)
