open Ids

let fid_incr = Fid.v "incr"
let fid_get = Fid.v "get"
let incr_op ~oid t n = Op.v ~tid:t ~oid ~fid:fid_incr ~arg:Value.unit ~ret:(Value.int n)
let get_op ~oid t n = Op.v ~tid:t ~oid ~fid:fid_get ~arg:Value.unit ~ret:(Value.int n)

let step_op count (o : Op.t) =
  if Fid.equal o.fid fid_incr then
    if Value.equal o.ret (Value.int count) then Some (count + 1) else None
  else if Fid.equal o.fid fid_get then
    if Value.equal o.ret (Value.int count) then Some count else None
  else None

let spec ?(oid = Oid.v "C") () =
  Spec.make
    ~name:(Fmt.str "counter(%a)" Oid.pp oid)
    ~owns:(Oid.equal oid) ~max_element_size:1 ~init:0
    ~step:(fun count e ->
      match Ca_trace.element_ops e with [ o ] -> step_op count o | _ -> None)
    ~key:string_of_int ~resume:int_of_string_opt
    ~candidates:(fun count ~universe:_ (p : Op.pending) ->
      if Fid.equal p.fid fid_incr || Fid.equal p.fid fid_get then [ Value.int count ]
      else [])
    ()
