(* One home for the search-side hash-table sizing heuristics. The memo
   tables used by the explorer and the checkers were previously created
   with magic literals (512/1024) regardless of the problem size; the
   helpers here scale the initial size with the quantity that actually
   drives the number of keys, clamped so tiny problems do not pay for
   8k-slot tables and huge ones do not start from a handful of buckets. *)

let clamp ~lo ~hi v = max lo (min hi v)

(* The explorer's fingerprint memo holds at most one entry per distinct
   interior state of the schedule tree, which grows with both the depth
   (fuel) and the branching (threads). *)
let explore_memo_size ~fuel ~threads =
  clamp ~lo:64 ~hi:8192 (max 1 fuel * max 1 threads * 8)

(* The checkers' failed-state memos are keyed by (placed-set, spec-state):
   the placed-set component alone ranges over subsets of the operations,
   so scale exponentially with the operation count up to a cap. *)
let checker_table_size ~ops = 1 lsl clamp ~lo:6 ~hi:13 ops

(* The shared verdict cache is unbounded by default — exploration runs
   are one-shot, and eviction there only buys recomputation. Long-running
   deployments bound it via the environment. *)
let verdict_cache_capacity () =
  match Sys.getenv_opt "CAL_VERDICT_CACHE_CAP" with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> Some n
      | _ -> None)

(* Racing-pair lines printed per witness report. A long witness schedule
   can race at every other step; the first few pairs carry the
   explanation, the rest is noise. *)
let witness_race_cap () =
  match Sys.getenv_opt "CAL_WITNESS_RACE_CAP" with
  | None | Some "" -> 8
  | Some s -> (
      match int_of_string_opt s with Some n when n >= 0 -> n | _ -> 8)

(* Donation grain for the work-stealing explorer: a frame is only donated
   when its subtree has at least this many levels left, so workers don't
   ship chunks worth a handful of leaves — the replay to reconstruct the
   node would cost more than running them locally. *)
let explore_donation_min_height () =
  match Sys.getenv_opt "CAL_EXPLORE_DONATE_MIN" with
  | None | Some "" -> 2
  | Some s -> (
      match int_of_string_opt s with Some n when n >= 0 -> n | _ -> 2)
