open Ids

let fid_enq = Fid.v "enq"
let fid_deq = Fid.v "deq"
let enq_op ~oid t v = Op.v ~tid:t ~oid ~fid:fid_enq ~arg:v ~ret:Value.unit

let deq_op ~oid t = function
  | Some v -> Op.v ~tid:t ~oid ~fid:fid_deq ~arg:Value.unit ~ret:(Value.ok v)
  | None ->
      Op.v ~tid:t ~oid ~fid:fid_deq ~arg:Value.unit ~ret:(Value.fail (Value.int 0))

(* State: queue contents, oldest first. *)
let step_op queue (o : Op.t) =
  if Fid.equal o.fid fid_enq then
    if Value.equal o.ret Value.unit then Some (queue @ [ o.arg ]) else None
  else if Fid.equal o.fid fid_deq then
    match o.ret with
    | Value.Pair (Value.Bool true, v) -> (
        match queue with
        | oldest :: rest when Value.equal oldest v -> Some rest
        | _ -> None)
    | Value.Pair (Value.Bool false, Value.Int 0) -> if queue = [] then Some [] else None
    | _ -> None
  else None

let spec ?(oid = Oid.v "Q") () =
  Spec.make
    ~name:(Fmt.str "queue(%a)" Oid.pp oid)
    ~owns:(Oid.equal oid) ~max_element_size:1 ~init:[]
    ~step:(fun queue e ->
      match Ca_trace.element_ops e with [ o ] -> step_op queue o | _ -> None)
    ~key:(fun queue -> Value.show (Value.list queue))
    ~resume:(fun k ->
      match History_format.parse_value k with
      | Ok (Value.List vs) -> Some vs
      | _ -> None)
    ~candidates:(fun queue ~universe:_ (p : Op.pending) ->
      if Fid.equal p.fid fid_enq then [ Value.unit ]
      else if Fid.equal p.fid fid_deq then
        match queue with
        | oldest :: _ -> [ Value.ok oldest ]
        | [] -> [ Value.fail (Value.int 0) ]
      else [])
    ()
