(** Histories (Definitions 2 and 3).

    A history is a finite sequence of invocation and response actions. It is
    {e well-formed} when the projection to every thread is sequential (an
    alternation of invocations and matching responses starting with an
    invocation); {e sequential} when the whole history is such an
    alternation; {e complete} when it is well-formed and every invocation
    has a matching response.

    [complete(H)] (Definition 2) extends a well-formed history with some
    response actions and removes some pending invocations; it is exposed
    here as {!completions}.

    The real-time order [≺H] (Definition 3) is exposed at the level of
    {e operations} ({!precedes}): operation [a] precedes operation [b] when
    [a]'s response occurs before [b]'s invocation. *)

type t

(** A resolved operation instance inside a history. [id] is the index of
    the invocation action and uniquely identifies the operation. [ret] is
    [None] for pending operations. [era] counts the {!Action.Crash} markers
    before the invocation: operations of era [k] ran between the [k]-th and
    [(k+1)]-th system crash ([0] for crash-free histories). *)
type entry = {
  id : int;
  tid : Ids.Tid.t;
  oid : Ids.Oid.t;
  fid : Ids.Fid.t;
  arg : Value.t;
  ret : Value.t option;
  inv_index : int;
  res_index : int option;
  era : int;
}

(** {1 Construction} *)

val empty : t
val of_list : Action.t list -> t

val of_rev_list : Action.t list -> t
(** [of_rev_list l] is [of_list (List.rev l)] without materialising the
    reversed list — for builders that accumulate newest-first (the
    runner does, once per delivered outcome). *)

val to_list : t -> Action.t list
val append : t -> Action.t -> t
val length : t -> int
val nth : t -> int -> Action.t

(** [of_ops ops] is the sequential history [inv₁·res₁·inv₂·res₂·…] executing
    [ops] back to back. *)
val of_ops : Op.t list -> t

(** {1 Classification} *)

val validate : t -> (unit, string) result
(** [validate h] is [Ok ()] when [h] is well-formed, and [Error reason]
    otherwise. *)

val is_well_formed : t -> bool

val is_sequential : t -> bool
(** Alternation inv, res, inv, res, … with matching pairs; a trailing
    pending invocation is permitted, and a crash marker closes the pending
    invocation (if any) and restarts the alternation. *)

val is_complete : t -> bool

val crash_count : t -> int
(** Number of {!Action.Crash} markers in the history. *)

val eras : t -> int
(** [crash_count h + 1]: the number of execution eras the crash markers
    partition the history into. *)

(** {1 Projections} *)

val proj_thread : t -> Ids.Tid.t -> t
(** [proj_thread h t] is [H|t]. Crash markers are kept in every thread
    projection (a system crash is visible to every thread). *)

val proj_object : t -> Ids.Oid.t -> t
(** [proj_object h o] is [H|o]. Crash markers are kept in every object
    projection. *)

val threads : t -> Ids.Tid.t list
(** Thread identifiers occurring in the history, sorted. *)

val objects : t -> Ids.Oid.t list
(** Object identifiers occurring in the history, sorted. *)

(** {1 Operations} *)

val entries : t -> entry list
(** [entries h] are the operation instances of [h] in invocation order.
    Raises [Invalid_argument] when [h] is not well-formed. *)

val pending : t -> entry list
(** The entries with no matching response. *)

val op_of_entry : entry -> Op.t option
(** [Some op] when the entry is complete. *)

val pending_of_entry : entry -> Op.pending

val precedes : entry -> entry -> bool
(** [precedes a b] holds when [a]'s response is before [b]'s invocation
    (the operation-level real-time order induced by [≺H]), or when [a]
    belongs to a strictly earlier era than [b]: a crash marker is a global
    synchronisation point, so even a pending earlier-era operation can only
    have taken effect before it. *)

val concurrent : entry -> entry -> bool
(** Neither precedes the other. *)

(** {1 Completions} *)

val completions :
  responses:(Op.pending -> Value.t list) -> ?max:int -> t -> t Seq.t
(** [completions ~responses h] enumerates [complete(H)]: every pending
    invocation is either removed or completed by appending a response whose
    value is drawn from [responses]. Appended responses land at the end of
    the pending operation's {e era} (see {!with_responses}) — for
    crash-free histories, after all original actions. [max] (default
    10_000) caps the number of completions produced. Raises
    [Invalid_argument] when [h] is not well-formed. *)

val with_responses : Action.t list -> (int * Action.t) list -> t
(** [with_responses base rs] inserts each response action of [rs] at the
    end of its era: a pair [(k, r)] lands just before the crash marker
    closing era [k], or at the very end for the final era. This keeps
    completions of crash histories well-formed — a response appended after
    a crash marker would have no pending invocation to answer, because the
    marker cuts off every open call. *)

(** {1 Canonical form}

    Different schedules of one client program frequently produce histories
    that differ only in the interleaving order of adjacent same-kind
    actions — two invocations, or two responses, of different threads.
    Such swaps change neither the operation entries, nor the era
    structure, nor the real-time order {!precedes} (a response crosses an
    invocation in neither direction), so every checker verdict is
    invariant under them. The canonical form picks one representative per
    equivalence class by sorting each maximal run of same-kind actions
    with {!Action.compare}; crash markers are hard boundaries that no
    action may cross. This is the key quotient behind the shared verdict
    cache ({!Verdict_cache}): schedule-permuted-but-equivalent histories
    collide on {!canonical_key} and pay one checker call. *)

val canonicalize : t -> t
(** The canonical representative: idempotent, well-formedness- and
    verdict-preserving, with identical entries, eras and [precedes]. *)

val canonical_key : t -> string
(** A printable key uniquely identifying [canonicalize h] — equal exactly
    for canonically equal histories. *)

val canonical_equal : t -> t -> bool
(** [equal (canonicalize a) (canonicalize b)]. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
