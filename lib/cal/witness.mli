(** Human-readable rendering of counterexample witnesses.

    Testing-based checkers live or die by readable, reproducible
    counterexamples. This module renders the two halves of a minimal
    witness:

    - the {e schedule} as a dejafu-style per-thread trace string —
      [S0---S1-P2--]: each token names the scheduled thread, [S] for a
      voluntary switch (the previous thread had blocked or returned), [P]
      for a preemptive one (the previous thread was still enabled), and
      one [-] per additional consecutive step of that thread;
    - the {e history} with explicit era annotations: the actions between
      crash markers grouped under [-- era k --] headers, one action per
      line in the {!History_format} syntax, so the printed witness is also
      machine-parseable.

    The switch kinds (and the schedule itself) live in the concurrency
    layer; this module only assembles text, so it can sit beside
    {!History_format} in [lib/cal] and be reused by the CLI. *)

type segment = {
  thread : int;
  preemptive : bool;
      (** the switch {e to} this segment preempted a still-enabled
          thread *)
  steps : int;  (** decisions in the segment, [>= 1] *)
}

val schedule_string : segment list -> string
(** [schedule_string segs] is the dejafu-style trace, e.g.
    [S0---S1-P2--] for 4 steps of thread 0, then 2 of thread 1 (voluntary
    switch), then 3 of thread 2 (preemptive switch). The empty list
    renders as ["<empty>"]. *)

type race = {
  r_loc : string;
      (** a shared location both steps touch (["<opaque>"] when the
          conflict came from a step with unknown footprint) *)
  r_thread_a : int;
  r_step_a : int;  (** step index within the schedule, 0-based *)
  r_thread_b : int;
  r_step_b : int;
}
(** A racing step pair of a witness schedule: two dependent steps of
    different threads not ordered by any other happens-before edge —
    reversing one of these pairs is what makes the interleaving matter. *)

val pp_race : Format.formatter -> race -> unit
(** One pair as [t0#2 ~ t1#5 @ S0.top]. *)

val pp_races : Format.formatter -> race list -> unit
(** The [races:] block of a witness report, one pair per line
    (["races: none detected"] when empty). *)

val pp_era_history : Format.formatter -> History.t -> unit
(** The history, one {!History_format} action line per action, grouped
    under [-- era k --] headers; a crash marker renders as its own
    [-- crash: era k ends --] line. Crash-free histories get the single
    [-- era 1 --] header. *)
