(** The exchanger CA-specification (§4 of the paper).

    Every CA-element is either
    - [E.swap(t,v,t',v')] — the pair
      [{(t, exchange(v) ⇒ (true,v')), (t', exchange(v') ⇒ (true,v))}] with
      [t ≠ t']: two overlapping operations succeed by swapping their
      arguments; or
    - [E.{(t, exchange(v) ⇒ (false,v))}] — a failed exchange that overlaps
      with no other operation and returns its own argument; or
    - [E.{(t, exchange(v) ⇒ ("timeout",v))}] — a timed exchange whose
      deadline expired: like a failure it is a {e singleton}, never half of
      a swap, but its distinct return shape records that the operation gave
      up on a deadline rather than on a spin count.

    This is the specification that {e cannot} be expressed sequentially
    (§3): any sequential history explaining a successful swap has a prefix
    in which one thread exchanged a value without a partner. *)

val fid_exchange : Ids.Fid.t
(** The method name ["exchange"]. *)

val spec : ?oid:Ids.Oid.t -> unit -> Spec.t
(** [spec ~oid ()] is the exchanger specification for object [oid]
    (default ["E"]). *)

val swap :
  oid:Ids.Oid.t ->
  Ids.Tid.t -> Value.t -> Ids.Tid.t -> Value.t -> Ca_trace.element
(** [swap ~oid t v t' v'] is the CA-element [E.swap(t,v,t',v')]. *)

val failure : oid:Ids.Oid.t -> Ids.Tid.t -> Value.t -> Ca_trace.element
(** [failure ~oid t v] is the singleton failed-exchange element. *)

val timeout : oid:Ids.Oid.t -> Ids.Tid.t -> Value.t -> Ca_trace.element
(** [timeout ~oid t v] is the singleton timed-out-exchange element. *)

val exchange_op : oid:Ids.Oid.t -> Ids.Tid.t -> arg:Value.t -> ret:Value.t -> Op.t
(** An [exchange] operation on [oid]. *)
