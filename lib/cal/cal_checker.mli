(** The CAL decision procedure (Definition 6).

    An object system [OS] is concurrency-aware linearizable w.r.t. a set of
    CA-traces [𝒯] when every history [H ∈ OS] has a completion
    [Hᶜ ∈ complete(H)] and a trace [T ∈ 𝒯] with [Hᶜ ⊑CAL T]. This module
    decides the per-history question for the acceptor-based specifications
    of {!Spec}.

    The search interleaves the choice of a completion with the construction
    of the explaining trace: pending operations are either dropped (their
    invocation removed) or completed with a specification-proposed return
    value at the moment they are placed into a CA-element. Placement
    proceeds front-to-back: a CA-element may only contain operations whose
    real-time predecessors have all been placed in strictly earlier
    elements, which realises the [i ≺H j ⟹ π(i) < π(j)] condition of
    Definition 5 by construction. Failed search states are memoised on
    (set of placed operations, specification state). *)

type stats = {
  states_explored : int;  (** DFS nodes visited *)
  memo_hits : int;        (** search states pruned by memoisation *)
  drop_sets_tried : int;  (** how many pending-drop subsets were attempted *)
}

type verdict =
  | Accepted of {
      trace : Ca_trace.t;      (** the explaining CA-trace [T] *)
      completion : History.t;  (** the completion [Hᶜ] with [Hᶜ ⊑CAL T] *)
      stats : stats;
    }
  | Rejected of { reason : string; stats : stats }

val check : ?crashed:Ids.Tid.t list -> spec:Spec.t -> History.t -> verdict
(** [check ~spec h] decides whether [h] is CAL w.r.t. [spec]'s trace set.
    Raises [Invalid_argument] when [h] is not well-formed or has more than
    62 operations (the exhaustive search is only meant for bounded
    histories).

    [crashed] switches on the crash-tolerant completion construction for
    histories produced under fault injection: only pending operations of
    the listed (crashed) threads may be {e dropped} by the completion —
    a crashed operation either took effect before the crash (it is
    completed with some return) or it did not (it is dropped). Pending
    operations of live threads must be completed, making the check
    strictly stronger than the default on such histories. Omitting
    [crashed] keeps the classic construction where any pending operation
    is droppable.

    {b Durable mode.} A history containing {!Action.Crash} markers is
    checked for durable CA-linearizability, composing with either mode
    above: an operation pending at a system crash (any era before the
    final one) either {e persisted} — it is kept, and the era-aware
    {!History.precedes} forces its element strictly before every
    later-era operation — or was {e lost} and is dropped, regardless of
    [crashed]. CA-elements never straddle a crash marker: candidate
    operations are grouped by (object, era), so every multi-party element
    is era-uniform. Completions insert chosen responses at the end of the
    pending operation's era ({!History.with_responses}). *)

val is_cal : ?crashed:Ids.Tid.t list -> spec:Spec.t -> History.t -> bool

val subsets_up_to : int -> 'a list -> 'a list list
(** Non-empty sublists with at most [k] elements, each in the original
    element order, subsets containing earlier elements first. The
    enumeration order decides which witness the search finds first, so it
    is part of the checker's contract; exposed for the tests and the B14
    micro-assertion that the accumulator-based rewrite preserved it. *)

val pp_verdict : Format.formatter -> verdict -> unit
